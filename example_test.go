package mascbgmp_test

import (
	"fmt"
	"time"

	"mascbgmp"
)

// Example builds the smallest complete internetwork — a backbone provider
// and two customer domains — and walks a multicast group through its whole
// life cycle: MASC range allocation, MAAS address lease, BGMP tree
// construction, and data delivery.
func Example() {
	clk := mascbgmp.NewSimClock(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{Clock: clk, Seed: 1, Synchronous: true})
	if err != nil {
		panic(err)
	}

	for _, dc := range []mascbgmp.DomainConfig{
		{ID: 1, Routers: []mascbgmp.RouterID{11, 12}, Protocol: mascbgmp.NewDVMRP(),
			TopLevel: true, HostPrefix: mascbgmp.MustParsePrefix("10.1.0.0/16")},
		{ID: 2, Routers: []mascbgmp.RouterID{21}, Protocol: mascbgmp.NewDVMRP(),
			HostPrefix: mascbgmp.MustParsePrefix("10.2.0.0/16")},
		{ID: 3, Routers: []mascbgmp.RouterID{31}, Protocol: mascbgmp.NewDVMRP(),
			HostPrefix: mascbgmp.MustParsePrefix("10.3.0.0/16")},
	} {
		if _, err := net.AddDomain(dc); err != nil {
			panic(err)
		}
	}
	_ = net.Link(21, 11)
	_ = net.Link(31, 12)
	_ = net.MASCPeerParentChild(1, 2)
	_ = net.MASCPeerParentChild(1, 3)

	// MASC: the backbone claims from 224/4; the customer claims within.
	net.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour) // the 48h collision waiting period
	net.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	fmt.Println("backbone range:", net.Domain(1).MASC().Holdings()[0].Prefix)
	fmt.Println("customer range:", net.Domain(2).MASC().Holdings()[0].Prefix)

	// MAAS + BGMP: lease a group in domain 2, join in 3, send from 1.
	lease, err := net.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		panic(err)
	}
	net.Domain(3).Join(lease.Addr, 0)
	net.Domain(1).Send(lease.Addr, net.Domain(1).HostAddr(1), "hello", 0)
	for _, d := range net.Domain(3).Received() {
		fmt.Printf("domain 3 got %q\n", d.Payload)
	}
	// Output:
	// backbone range: 224.0.0.0/16
	// customer range: 224.0.0.0/24
	// domain 3 got "hello"
}

// ExampleRunFig2 regenerates a scaled-down Figure 2 and prints the
// steady-state utilization band.
func ExampleRunFig2() {
	cfg := mascbgmp.DefaultFig2Config()
	cfg.TopLevel, cfg.ChildrenPer, cfg.Days = 8, 8, 150
	res := mascbgmp.RunFig2(cfg)
	var sum float64
	var n int
	for _, s := range res.Samples {
		if s.Day > 60 {
			sum += s.Utilization
			n++
		}
	}
	u := sum / float64(n)
	fmt.Printf("steady-state utilization near 50%%: %v\n", u > 0.40 && u < 0.65)
	// Output:
	// steady-state utilization near 50%: true
}

// ExampleRunFig4 regenerates a scaled-down Figure 4 and prints the tree
// quality ordering.
func ExampleRunFig4() {
	cfg := mascbgmp.DefaultFig4Config()
	cfg.Domains, cfg.ExtraPeering = 600, 80
	cfg.GroupSizes, cfg.Trials = []int{100}, 4
	p := mascbgmp.RunFig4(cfg)[0]
	fmt.Println("unidirectional worst:", p.UniAvg > p.BidirAvg)
	fmt.Println("hybrid at least as good as bidirectional:", p.HybridAvg <= p.BidirAvg)
	// Output:
	// unidirectional worst: true
	// hybrid at least as good as bidirectional: true
}
