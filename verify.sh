#!/bin/sh
# Full verification loop: format check, build, vet, lint, test, race-check
# everything, re-run the determinism suites twice so same-seed
# obs-snapshot diffs (chaos sweeps, session recovery, fig2/fig4 metrics)
# can't flake past CI, then smoke-run the benchmark suite and assert its
# JSON validates and is parallelism-independent.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go run ./cmd/masclint ./...
go test ./...
go test -race ./...
go test -race ./internal/lint
go test -run Determinism -count=2 ./...

# masclint determinism smoke: two runs over the same tree must emit
# byte-identical JSON (findings are stably sorted by position, and the
# memoized cross-package state — call graph, guard table — must not leak
# map order into the output).
LINT_TMP="$(mktemp -d)"
go run ./cmd/masclint -json ./... >"$LINT_TMP/l1.json" || true
go run ./cmd/masclint -json ./... >"$LINT_TMP/l2.json" || true
cmp "$LINT_TMP/l1.json" "$LINT_TMP/l2.json"
rm -rf "$LINT_TMP"

# benchsuite smoke: same suite seed at -parallel 1 and -parallel 2 must
# produce schema-valid results that match modulo the env/timing sections.
BENCH_TMP="$(mktemp -d)"
trap 'rm -rf "$BENCH_TMP"' EXIT
go run ./cmd/benchsuite -suite fig2-alloc -trials 2 -parallel 1 -out "$BENCH_TMP/a.json"
go run ./cmd/benchsuite -suite fig2-alloc -trials 2 -parallel 2 -out "$BENCH_TMP/b.json"
go run ./cmd/benchsuite -validate "$BENCH_TMP/a.json"
go run ./cmd/benchsuite -diff "$BENCH_TMP/a.json" "$BENCH_TMP/b.json"

# dataplane-compare smoke: the three-backend comparison must stay
# deterministic at any parallelism (delivery equivalence is asserted
# inside the trial itself).
go run ./cmd/benchsuite -suite dataplane-compare -trials 2 -parallel 1 -out "$BENCH_TMP/dp1.json"
go run ./cmd/benchsuite -suite dataplane-compare -trials 2 -parallel 2 -out "$BENCH_TMP/dp2.json"
go run ./cmd/benchsuite -validate "$BENCH_TMP/dp1.json"
go run ./cmd/benchsuite -diff "$BENCH_TMP/dp1.json" "$BENCH_TMP/dp2.json"

# chaos-recovery determinism smoke: two same-seed chaossim runs must be
# byte-identical, under both failure detectors (hold timers alone, and
# the fast-liveness plane with its sub-second probe cadence).
go run ./cmd/chaossim -loss 0.1 -packets 5 -crash 90s >"$BENCH_TMP/ch1.csv" 2>/dev/null
go run ./cmd/chaossim -loss 0.1 -packets 5 -crash 90s >"$BENCH_TMP/ch2.csv" 2>/dev/null
cmp "$BENCH_TMP/ch1.csv" "$BENCH_TMP/ch2.csv"
go run ./cmd/chaossim -liveness -loss 0.1 -packets 5 -crash 90s >"$BENCH_TMP/lv1.csv" 2>/dev/null
go run ./cmd/chaossim -liveness -loss 0.1 -packets 5 -crash 90s >"$BENCH_TMP/lv2.csv" 2>/dev/null
cmp "$BENCH_TMP/lv1.csv" "$BENCH_TMP/lv2.csv"

# trace-plane determinism smoke: two same-seed chaossim runs must write
# byte-identical Chrome trace JSON and Prometheus expositions — the
# causal span trees (detect → failover → reroute) are part of the
# deterministic surface.
go run ./cmd/chaossim -loss 0.1 -packets 5 -crash 90s \
    -trace-out "$BENCH_TMP/tr1.json" -metrics-out "$BENCH_TMP/m1.prom" >/dev/null 2>&1
go run ./cmd/chaossim -loss 0.1 -packets 5 -crash 90s \
    -trace-out "$BENCH_TMP/tr2.json" -metrics-out "$BENCH_TMP/m2.prom" >/dev/null 2>&1
cmp "$BENCH_TMP/tr1.json" "$BENCH_TMP/tr2.json"
cmp "$BENCH_TMP/m1.prom" "$BENCH_TMP/m2.prom"

# scenario-file parse golden: an unparseable scenario must exit 2 and
# point at the offending file:line, so CI failures name the bad key.
# Built binary, not `go run`: go run reports any non-zero child as its
# own exit 1, which would hide the documented 2-vs-3 code split.
go build -o "$BENCH_TMP/benchsuite" ./cmd/benchsuite
cat >"$BENCH_TMP/bad.toml" <<'EOF'
name = "bad"
[topology]
kind = "as"
domains = "lots"
[workload]
kind = "uniform"
EOF
rc=0
"$BENCH_TMP/benchsuite" -scenario "$BENCH_TMP/bad.toml" \
    >"$BENCH_TMP/bad.out" 2>&1 || rc=$?
test "$rc" -eq 2
grep -q 'bad.toml:4:' "$BENCH_TMP/bad.out"

# scenario-file determinism smoke: the checked-in diurnal scenario must
# produce byte-identical Metrics/Counters at -parallel 1 and -parallel 8,
# two runs each (same seed ⇒ same workload ⇒ same claims/collapses).
"$BENCH_TMP/benchsuite" -scenario scenarios/diurnal.toml -trials 1 -parallel 1 -out "$BENCH_TMP/sc1.json"
"$BENCH_TMP/benchsuite" -scenario scenarios/diurnal.toml -trials 1 -parallel 8 -out "$BENCH_TMP/sc2.json"
"$BENCH_TMP/benchsuite" -validate "$BENCH_TMP/sc1.json"
"$BENCH_TMP/benchsuite" -diff "$BENCH_TMP/sc1.json" "$BENCH_TMP/sc2.json"

# workloads suite smoke: the four-exemplar composite suite must stay
# parallelism-independent (the diurnal trial asserts >=1 expansion and
# >=1 collapse internally, so this also guards the §4.3.3 round trip).
"$BENCH_TMP/benchsuite" -suite workloads -trials 1 -parallel 1 -out "$BENCH_TMP/wl1.json"
"$BENCH_TMP/benchsuite" -suite workloads -trials 1 -parallel 2 -out "$BENCH_TMP/wl2.json"
"$BENCH_TMP/benchsuite" -validate "$BENCH_TMP/wl1.json"
"$BENCH_TMP/benchsuite" -diff "$BENCH_TMP/wl1.json" "$BENCH_TMP/wl2.json"

# topogen → scenario pipeline smoke: a generated topology file must feed
# a file-kind scenario end to end.
go run ./cmd/topogen -kind as -n 200 -peering 24 -seed 7 -out "$BENCH_TMP/net.topo"
cat >"$BENCH_TMP/filed.toml" <<'EOF'
name = "verify-filed"
description = "verify.sh pipeline smoke"
trials = 1
[topology]
kind = "file"
path = "net.topo"
[workload]
kind = "uniform"
groups = 16
root-domains = 2
duration = "10m"
step = "1m"
events-per-step = 20
sends-per-group = 1
EOF
"$BENCH_TMP/benchsuite" -scenario "$BENCH_TMP/filed.toml" -out "$BENCH_TMP/filed.json"
"$BENCH_TMP/benchsuite" -validate "$BENCH_TMP/filed.json"
