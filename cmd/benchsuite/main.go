// Command benchsuite runs the registered benchmark scenarios through the
// parallel deterministic trial runner and writes machine-readable results
// (schema mascbgmp-bench/v1) suitable for checking in as BENCH_<suite>.json
// baselines. The Metrics and Counters sections of a result are pure
// functions of (suite, trials, seed) — byte-identical at any -parallel —
// while the env and timing sections carry the host-dependent figures.
// Expected bands are recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchsuite -list
//	benchsuite -suite scale-churn [-trials 3] [-parallel 0] [-seed 1998]
//	           [-backend shared-tree|bier|map-encap]
//	           [-out BENCH_scale.json] [-compare old.json] [-tolerance 0.10]
//	           [-trace-out spans.json] [-metrics-out metrics.prom]
//	benchsuite -scenario scenarios/diurnal.toml [-trials ...] [-out ...]
//	benchsuite -validate BENCH_scale.json
//	benchsuite -diff a.json b.json
//
// -scenario loads a declarative scenario file (see DESIGN.md §14 and the
// scenarios/ directory) and registers it beside the built-in suites: it
// becomes the default -suite, and -list includes it. An unparseable file
// exits with status 2 and the parse error's file:line position.
//
// -trace-out attaches a deterministic tracer to every trial's observer
// and writes the recorded causal spans (trial order) as Chrome
// trace-event JSON. -metrics-out writes the deterministic counter and
// histogram totals in Prometheus text exposition format. Both files are
// byte-identical for the same (suite, trials, seed) at -parallel 1;
// histogram and counter sections stay identical at any parallelism.
//
// -backend runs a suite under a specific forwarding data plane; the
// scale-churn and chaos-recovery suites honor it (dataplane-compare
// always costs all three backends side by side). Unknown backend names
// exit with status 2.
//
// -compare gates the fresh run against a baseline file: any directional
// metric moving the wrong way by more than -tolerance (relative) is a
// regression. -diff compares two result files for determinism (strict
// equality ignoring the env and timing sections). -validate checks a
// file against the schema.
//
// Exit status:
//
//	0  success (no regressions, files match, file valid)
//	1  benchmark outcome failure: -compare found a regression, or -diff
//	   found a deterministic mismatch
//	2  usage or runtime error (bad flags, unknown suite, write failure)
//	3  schema error: a result file is unreadable or fails validation
//
// Distinct codes let CI tell "the code got slower" (1) from "the
// baseline file is broken" (3) without parsing stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mascbgmp"
	"mascbgmp/internal/bench"
)

func main() {
	var (
		suite      = flag.String("suite", "", "scenario to run (see -list)")
		scenFile   = flag.String("scenario", "", "scenario file (scenarios/*.toml) to load and register beside the built-ins; becomes the default -suite")
		trials     = flag.Int("trials", 0, "trials to run (0: the scenario's default)")
		parallel   = flag.Int("parallel", 0, "worker pool size (0: GOMAXPROCS)")
		seed       = flag.Int64("seed", 1998, "suite seed; per-trial seeds derive from it")
		backend    = flag.String("backend", "", "forwarding data plane for suites that model one (shared-tree, bier, map-encap; empty: suite default)")
		out        = flag.String("out", "", "write the result JSON to this file (default: stdout)")
		traceOut   = flag.String("trace-out", "", "record causal spans per trial and write Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write counter and histogram totals to this file in Prometheus text exposition format")
		compare    = flag.String("compare", "", "baseline result file to gate the run against")
		tolerance  = flag.Float64("tolerance", 0.10, "relative regression tolerance for -compare")
		list       = flag.Bool("list", false, "list the registered scenarios and exit")
		validate   = flag.String("validate", "", "validate a result file against the schema and exit")
		diff       = flag.Bool("diff", false, "compare two result files (args) modulo env/timing and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchsuite [flags]\n\n"+
			"Exit status: 0 success; 1 regression (-compare) or mismatch (-diff);\n"+
			"2 usage or runtime error; 3 unreadable or invalid result file.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Load the scenario file first: it registers beside the built-ins,
	// so -list shows it and -suite can name it. An unparseable file is a
	// usage error (exit 2) carrying the parse error's file:line position.
	if *scenFile != "" {
		loaded, err := mascbgmp.LoadBenchScenarioFile(*scenFile)
		if err != nil {
			fail(exitUsage, err.Error())
		}
		if *suite == "" {
			*suite = loaded.Name
		}
	}

	switch {
	case *list:
		for _, s := range mascbgmp.BenchScenarios() {
			fmt.Printf("%-16s trials=%d  %s\n", s.Name, s.DefaultTrials, s.Description)
			for _, m := range s.Metrics {
				fmt.Printf("    %-20s %-10s better=%-6s %s\n", m.Name, m.Unit, m.Better, m.Help)
			}
		}
		return

	case *validate != "":
		if _, err := bench.ReadFile(*validate); err != nil {
			fail(exitSchema, err.Error())
		}
		fmt.Printf("%s: valid (%s)\n", *validate, bench.SchemaID)
		return

	case *diff:
		if flag.NArg() != 2 {
			fail(exitUsage, "-diff needs exactly two result files")
		}
		a, err := bench.ReadFile(flag.Arg(0))
		if err != nil {
			fail(exitSchema, err.Error())
		}
		b, err := bench.ReadFile(flag.Arg(1))
		if err != nil {
			fail(exitSchema, err.Error())
		}
		if d := bench.DeterministicDiff(a, b); d != "" {
			fail(exitOutcome, "results differ: "+d)
		}
		fmt.Println("results match (modulo env/timing)")
		return
	}

	if *suite == "" {
		fmt.Fprintln(os.Stderr, "benchsuite: -suite or -scenario required (or -list/-validate/-diff)")
		flag.Usage()
		os.Exit(2)
	}
	if *backend != "" && !mascbgmp.ValidDataPlane(*backend) {
		fail(exitUsage, fmt.Sprintf("unknown -backend %q (valid: %s)",
			*backend, strings.Join(mascbgmp.DataPlaneNames(), ", ")))
	}

	res, err := mascbgmp.RunBenchScenario(*suite, mascbgmp.BenchOptions{
		Trials: *trials, Parallel: *parallel, Seed: *seed, Backend: *backend,
		Trace: *traceOut != "",
	})
	if err != nil {
		fail(exitUsage, err.Error())
	}

	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(res.PrometheusText()), 0o644); err != nil {
			fail(exitUsage, err.Error())
		}
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, mascbgmp.ChromeTrace(res.Spans), 0o644); err != nil {
			fail(exitUsage, err.Error())
		}
	}

	if *out != "" {
		if err := bench.WriteFile(*out, res); err != nil {
			fail(exitUsage, err.Error())
		}
		fmt.Fprintf(os.Stderr, "benchsuite: wrote %s\n", *out)
	} else {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fail(exitUsage, err.Error())
		}
		fmt.Println(string(data))
	}

	if *compare != "" {
		base, err := bench.ReadFile(*compare)
		if err != nil {
			fail(exitSchema, err.Error())
		}
		regs, err := bench.Compare(base, res, *tolerance)
		if err != nil {
			fail(exitSchema, err.Error())
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "benchsuite: REGRESSION %s\n", r)
			}
			os.Exit(exitOutcome)
		}
		fmt.Fprintf(os.Stderr, "benchsuite: no regressions vs %s (tolerance %.0f%%)\n",
			*compare, *tolerance*100)
	}
}

// Exit codes, documented in the command doc and -h output.
const (
	exitOutcome = 1 // regression found (-compare) or deterministic mismatch (-diff)
	exitUsage   = 2 // bad flags, unknown suite, or runtime failure
	exitSchema  = 3 // result file unreadable or schema-invalid
)

func fail(code int, msg string) {
	fmt.Fprintln(os.Stderr, "benchsuite: "+msg)
	os.Exit(code)
}
