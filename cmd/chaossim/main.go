// Command chaossim measures protocol recovery under injected failure: a
// three-domain internetwork with a redundant path runs with session
// supervision (hold timers, exponential-backoff reconnect) while the fault
// plane drops data and keepalives at a swept loss rate and crashes the
// direct-path border router. For each loss rate it reports the delivery
// ratio during the lossy steady state, the sim-time to detect the crash
// (first SessionDown for the victim), the sim-time to reroute onto the
// surviving path, and the sim-time to reconverge onto the direct path
// after the restart. Expected bands are recorded in EXPERIMENTS.md.
//
// The sweep is fully deterministic: a fixed -seed yields byte-identical
// event snapshots (-metrics) across runs.
//
// Usage:
//
//	chaossim [-seed 1998] [-loss 0,0.05,0.1,0.2] [-hold 30s] [-backoff 15s]
//	         [-crash 5m] [-groups 3] [-packets 50] [-parallel 1]
//	         [-backend shared-tree|bier|map-encap] [-liveness]
//	         [-liveness-floor 100ms] [-liveness-mult 3] [-metrics] [-trace]
//	         [-trace-out spans.json] [-metrics-out metrics.prom]
//
// -trace-out arms the causal trace plane: every point records its
// detect→failover→reroute chain as a span tree (trace IDs from the
// deterministic seed stream, timestamps from the sim clock) and the file
// gets Chrome trace-event JSON — load it in chrome://tracing or Perfetto.
// Same seed, byte-identical file. -metrics-out writes the final counter
// and histogram state in Prometheus text exposition format, also sorted
// and byte-deterministic.
//
// -liveness arms the BFD-style fast detector on every supervised session:
// probe intervals ramp from hold/3 down to -liveness-floor, detection
// fires after -liveness-mult consecutive missed intervals, and stable
// sessions quiesce into demand mode (probing at 10× the floor) until a
// miss re-arms fast probing. Hold timers keep running as the fallback.
// Paired with BGMP's precomputed backup parents, detection — not repair —
// is the only latency left, so time-to-reroute drops by an order of
// magnitude; the recovery probes step at 250ms instead of 5s so that
// resolves.
//
// -parallel fans the loss-rate points across a worker pool; each point is
// an independent seeded trial, so the measurements (and the -metrics
// counter totals) are identical at any value.
//
// -backend selects the forwarding data plane the routers run under fault
// injection: the default BGMP shared trees repair tree state through the
// supervised sessions, while the stateless backends (bier, map-encap)
// recover by following the RIBs — the crashed router's iBGP siblings
// withdraw its routes immediately, so their reroute time can be zero.
// Unknown backend names exit with status 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mascbgmp"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1998, "random seed")
		loss       = flag.String("loss", "", "comma-separated loss rates in [0,1) (default: the recorded 0,0.05,0.1,0.2 sweep)")
		hold       = flag.Duration("hold", 30*time.Second, "session hold time (keepalives every third)")
		backoff    = flag.Duration("backoff", 15*time.Second, "initial reconnect backoff (doubles per failure)")
		crash      = flag.Duration("crash", 5*time.Minute, "how long the crashed border router stays down")
		groups     = flag.Int("groups", 3, "multicast groups rooted in the source domain")
		packets    = flag.Int("packets", 50, "probe packets per group during the lossy phase")
		parallel   = flag.Int("parallel", 1, "worker pool size for the loss-rate points (0: GOMAXPROCS); measurements are identical at any value")
		backend    = flag.String("backend", mascbgmp.DataPlaneSharedTree, "forwarding data plane (shared-tree, bier, map-encap)")
		liveness   = flag.Bool("liveness", false, "arm the BFD-style fast-liveness detector beside the hold timers")
		lvFloor    = flag.Duration("liveness-floor", 0, "liveness probe-interval floor (0: the 100ms default)")
		lvMult     = flag.Int("liveness-mult", 0, "missed intervals before liveness declares a session dead (0: the ×3 default)")
		metrics    = flag.Bool("metrics", false, "dump protocol event counters to stderr at exit")
		trace      = flag.Bool("trace", false, "print every protocol event to stderr as it happens")
		traceOut   = flag.String("trace-out", "", "record causal span trees and write Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics-out", "", "write counters and latency histograms to this file in Prometheus text exposition format")
	)
	flag.Parse()

	if !mascbgmp.ValidDataPlane(*backend) {
		fmt.Fprintf(os.Stderr, "chaossim: unknown -backend %q (valid: %s)\n",
			*backend, strings.Join(mascbgmp.DataPlaneNames(), ", "))
		os.Exit(2)
	}

	cfg := mascbgmp.DefaultChaosConfig()
	cfg.Seed = *seed
	cfg.DataPlane = *backend
	cfg.HoldTime = *hold
	cfg.ReconnectBackoff = *backoff
	cfg.CrashFor = *crash
	cfg.Groups = *groups
	cfg.Packets = *packets
	cfg.Parallel = *parallel
	cfg.Liveness = *liveness
	cfg.LivenessFloor = *lvFloor
	cfg.LivenessMultiplier = *lvMult
	if *loss != "" {
		cfg.LossRates = nil
		for _, f := range strings.Split(*loss, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v < 0 || v >= 1 {
				fmt.Fprintf(os.Stderr, "chaossim: bad -loss entry %q\n", f)
				os.Exit(2)
			}
			cfg.LossRates = append(cfg.LossRates, v)
		}
	}

	// The observer is always on: the recovery-latency summary below reads
	// its histograms (RunChaos observes detect/reroute/reconverge there).
	ob := mascbgmp.NewObserver()
	cfg.Obs = ob
	cfg.Trace = *traceOut != ""
	if *trace {
		ob.Subscribe(func(e mascbgmp.Event) { fmt.Fprintln(os.Stderr, e) })
	}

	pts, err := mascbgmp.RunChaos(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaossim: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("loss,delivery_ratio,detect_s,reroute_s,reconverge_s,session_downs,session_ups,recovered")
	for _, p := range pts {
		fmt.Printf("%.2f,%.3f,%.2f,%.2f,%.2f,%d,%d,%t\n",
			p.Loss, p.DeliveryRatio, p.Detect.Seconds(), p.Reroute.Seconds(), p.Reconverge.Seconds(),
			p.SessionDowns, p.SessionUps, p.Recovered)
	}

	detector := "hold-timer"
	if *liveness {
		detector = "liveness"
	}
	fmt.Fprintf(os.Stderr, "\n# recovery vs loss rate (hold %v, backoff %v, crash %v, detector %s)\n",
		*hold, *backoff, *crash, detector)
	for _, p := range pts {
		state := "recovered"
		if !p.Recovered {
			state = "DEGRADED"
		}
		fmt.Fprintf(os.Stderr, "loss %4.0f%%: delivery %5.1f%%, detect %5.2fs, reroute %5.2fs after crash, reconverge %5.2fs after restart, %s\n",
			p.Loss*100, p.DeliveryRatio*100, p.Detect.Seconds(), p.Reroute.Seconds(), p.Reconverge.Seconds(), state)
	}

	// Recovery-latency distributions come from the obs histograms rather
	// than ad-hoc per-point aggregation: RunChaos observes every point's
	// detect/reroute/reconverge durations, so the percentiles here match
	// the histograms benchsuite serializes into BENCH_chaos.json.
	hists := ob.Snapshot().HistTotals()
	fmt.Fprintf(os.Stderr, "\n# recovery latency distributions (histogram p50/p95/p99 over %d points)\n", len(pts))
	for _, name := range []string{mascbgmp.HistDetect, mascbgmp.HistReroute, mascbgmp.HistReconverge} {
		h := hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-14s n=%d p50=%.2fs p95=%.2fs p99=%.2fs\n", name, h.Count,
			float64(h.Quantile(0.50))/1e9, float64(h.Quantile(0.95))/1e9, float64(h.Quantile(0.99))/1e9)
	}

	if *metrics {
		fmt.Fprintf(os.Stderr, "\n# protocol event counters\n%s", ob.Snapshot().Totals())
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(ob.Snapshot().Prometheus()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaossim: %v\n", err)
			os.Exit(2)
		}
	}
	if *traceOut != "" {
		var recs []mascbgmp.SpanRecord
		for _, p := range pts {
			recs = append(recs, p.Spans...)
		}
		if err := os.WriteFile(*traceOut, mascbgmp.ChromeTrace(recs), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaossim: %v\n", err)
			os.Exit(2)
		}
	}
}
