// Command topogen emits synthetic inter-domain topologies in a simple
// edge-list format, for use with treesim-style analyses or external tools.
//
// Two generators are provided: the AS-like preferential-attachment graph
// used as the stand-in for the paper's BGP-dump topology, and the regular
// provider hierarchy of the Figure 2 simulation.
//
// Usage:
//
//	topogen -kind as [-n 3326] [-peering 350] [-seed 1998] [-out net.topo]
//	topogen -kind hierarchy [-top 50] [-children 50] [-out net.topo]
//
// -out writes the edge list to a file instead of stdout; scenario files
// (DESIGN.md §14) reference such files with topology kind "file", so a
// generated topology and a declarative workload form one pipeline.
//
// -seed only applies to the "as" generator. The hierarchy generator is
// fully regular (no randomness), so passing -seed with -kind hierarchy is
// rejected rather than silently ignored.
//
// Output: one "a b" pair per link on stdout, preceded by a comment header
// with graph statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"mascbgmp/internal/topology"
)

func main() {
	var (
		kind     = flag.String("kind", "as", `generator: "as" or "hierarchy"`)
		n        = flag.Int("n", 3326, "domains (as)")
		peering  = flag.Int("peering", 350, "extra peering links (as)")
		seed     = flag.Int64("seed", 1998, "random seed (as only; rejected with -kind hierarchy)")
		top      = flag.Int("top", 50, "top-level domains (hierarchy)")
		children = flag.Int("children", 50, "children per top-level domain (hierarchy)")
		out      = flag.String("out", "", "write the edge list to this file instead of stdout (scenario files reference it via topology kind \"file\")")
	)
	flag.Parse()

	var g *topology.Graph
	switch *kind {
	case "as":
		g = topology.ASGraph(*n, *peering, *seed)
	case "hierarchy":
		// The hierarchy is deterministic by construction; a -seed here
		// would be silently ignored, which reads like a reproducibility
		// knob that does not exist. Reject it instead.
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		if seedSet {
			fmt.Fprintln(os.Stderr, "topogen: -seed has no effect with -kind hierarchy (the generator is fully regular); drop the flag")
			os.Exit(2)
		}
		g, _, _ = topology.Hierarchy(*top, *children)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen: "+err.Error())
			os.Exit(2)
		}
		dst = f
	}
	if err := topology.WriteEdgeList(dst, g, *kind); err != nil {
		fmt.Fprintln(os.Stderr, "topogen: "+err.Error())
		os.Exit(2)
	}
	if *out != "" {
		if err := dst.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "topogen: "+err.Error())
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "topogen: wrote %s (%d domains, %d links)\n",
			*out, g.NumDomains(), g.NumLinks())
	}
}
