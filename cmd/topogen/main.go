// Command topogen emits synthetic inter-domain topologies in a simple
// edge-list format, for use with treesim-style analyses or external tools.
//
// Two generators are provided: the AS-like preferential-attachment graph
// used as the stand-in for the paper's BGP-dump topology, and the regular
// provider hierarchy of the Figure 2 simulation.
//
// Usage:
//
//	topogen -kind as [-n 3326] [-peering 350] [-seed 1998]
//	topogen -kind hierarchy [-top 50] [-children 50]
//
// -seed only applies to the "as" generator. The hierarchy generator is
// fully regular (no randomness), so passing -seed with -kind hierarchy is
// rejected rather than silently ignored.
//
// Output: one "a b" pair per link on stdout, preceded by a comment header
// with graph statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mascbgmp/internal/topology"
)

func main() {
	var (
		kind     = flag.String("kind", "as", `generator: "as" or "hierarchy"`)
		n        = flag.Int("n", 3326, "domains (as)")
		peering  = flag.Int("peering", 350, "extra peering links (as)")
		seed     = flag.Int64("seed", 1998, "random seed (as only; rejected with -kind hierarchy)")
		top      = flag.Int("top", 50, "top-level domains (hierarchy)")
		children = flag.Int("children", 50, "children per top-level domain (hierarchy)")
	)
	flag.Parse()

	var g *topology.Graph
	switch *kind {
	case "as":
		g = topology.ASGraph(*n, *peering, *seed)
	case "hierarchy":
		// The hierarchy is deterministic by construction; a -seed here
		// would be silently ignored, which reads like a reproducibility
		// knob that does not exist. Reject it instead.
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		if seedSet {
			fmt.Fprintln(os.Stderr, "topogen: -seed has no effect with -kind hierarchy (the generator is fully regular); drop the flag")
			os.Exit(2)
		}
		g, _, _ = topology.Hierarchy(*top, *children)
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	maxDeg := 0
	for d := 0; d < g.NumDomains(); d++ {
		if deg := g.Degree(topology.DomainID(d)); deg > maxDeg {
			maxDeg = deg
		}
	}
	fmt.Fprintf(w, "# kind=%s domains=%d links=%d avg_degree=%.2f max_degree=%d connected=%v\n",
		*kind, g.NumDomains(), g.NumLinks(),
		2*float64(g.NumLinks())/float64(g.NumDomains()), maxDeg, g.Connected())
	for a := 0; a < g.NumDomains(); a++ {
		for _, e := range g.Neighbors(topology.DomainID(a)) {
			if int(e.To) > a {
				fmt.Fprintf(w, "%d %d\n", a, e.To)
			}
		}
	}
}
