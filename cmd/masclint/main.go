// Command masclint runs the repo's static-analysis pass (internal/lint)
// over the module: determinism (no wall-clock or global rand), layering
// (the documented internal import DAG), maporder (protocol map ranges
// must not leak iteration order), obsdiscipline (obs bus names come from
// constants), hotalloc (no avoidable allocation on forwarding hot paths),
// guarded (mutex-guarded fields accessed only under their lock),
// wireexhaustive (every wire message kind decodes and round-trips), and
// stalewaiver (lint waivers that suppress nothing must go).
//
// Usage:
//
//	masclint [-C dir] [-json] [-list] [-<analyzer>]... [packages]
//
// With no analyzer flags every analyzer runs; -list prints the analyzer
// registry and exits. Package arguments are module-relative directory
// prefixes ("internal/bgp"); "./..." or no arguments means the whole
// module.
//
// Output ordering is stable: findings sort by (package, file, line,
// column, analyzer), so two runs over the same tree produce identical
// output — -json included — and diffs between runs are meaningful.
//
// Exit status: 0 no findings, 1 findings reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mascbgmp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("masclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint (go.mod is found upward)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array (stably sorted by position)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer: "+a.Doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: masclint [flags] [packages]\n\n"+
			"Packages are module-relative path prefixes; \"./...\" or none means all.\n"+
			"Exit status: 0 clean, 1 findings, 2 usage or load error.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var selected []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = lint.Analyzers()
	}

	m, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "masclint: %v\n", err)
		return 2
	}

	findings := lint.RunAnalyzers(m, selected)
	findings = filterPackages(findings, m, fs.Args())

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "masclint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "masclint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// filterPackages keeps findings whose package matches one of the
// module-relative prefix patterns. "./..." (or no patterns) matches all.
func filterPackages(fs []lint.Finding, m *lint.Module, patterns []string) []lint.Finding {
	var prefixes []string
	for _, pat := range patterns {
		if pat == "./..." || pat == "." || pat == "all" {
			return fs
		}
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/...")
		prefixes = append(prefixes, pat)
	}
	if len(prefixes) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		rel := strings.TrimPrefix(f.Package, m.Path)
		rel = strings.TrimPrefix(rel, "/")
		for _, p := range prefixes {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
