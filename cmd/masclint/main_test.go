package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mascbgmp/internal/lint"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFindingsExitOne(t *testing.T) {
	code, out, errb := runCLI(t, "-C", fixture(t, "determinism"), "-determinism")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d findings, want 4:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, "[determinism]") {
			t.Errorf("unexpected finding line: %s", l)
		}
	}
	if !strings.Contains(errb, "4 finding(s)") {
		t.Errorf("stderr missing count: %q", errb)
	}
}

func TestAnalyzerSelection(t *testing.T) {
	// The determinism fixture is clean under every other analyzer.
	code, out, _ := runCLI(t, "-C", fixture(t, "determinism"), "-layering", "-maporder", "-obsdiscipline")
	if code != 0 || out != "" {
		t.Fatalf("exit = %d, out = %q; want clean run", code, out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-C", fixture(t, "obsdiscipline"), "-obsdiscipline", "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var fs []lint.Finding
	if err := json.Unmarshal([]byte(out), &fs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(fs) != 7 {
		t.Fatalf("got %d findings, want 7", len(fs))
	}
	for _, f := range fs {
		if f.Analyzer != "obsdiscipline" || f.Pos == "" || f.Package == "" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runCLI(t, "-C", fixture(t, "clean"), "-json")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("out = %q, want empty JSON array", out)
	}
}

func TestCleanExitZero(t *testing.T) {
	code, out, errb := runCLI(t, "-C", fixture(t, "clean"))
	if code != 0 || out != "" || errb != "" {
		t.Fatalf("exit = %d, out = %q, stderr = %q; want silent success", code, out, errb)
	}
}

func TestPackageFilter(t *testing.T) {
	code, out, _ := runCLI(t, "-C", fixture(t, "layering"), "-layering", "internal/wire")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "internal/wire") {
		t.Fatalf("filter kept wrong findings:\n%s", out)
	}

	// "./..." keeps everything.
	code, all, _ := runCLI(t, "-C", fixture(t, "layering"), "-layering", "./...")
	if code != 1 || len(strings.Split(strings.TrimSpace(all), "\n")) != 3 {
		t.Fatalf("./... filter dropped findings:\n%s", all)
	}
}

func TestLoadErrorExitTwo(t *testing.T) {
	code, _, errb := runCLI(t, "-C", filepath.Join(t.TempDir(), "nope"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "masclint:") {
		t.Errorf("stderr = %q, want load error", errb)
	}
}

func TestBadFlagExitTwo(t *testing.T) {
	code, _, _ := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
