// Command bgmpd runs a complete MASC/BGMP internetwork as concurrent
// border-router processes connected over real loopback TCP sessions, and
// drives the paper's Figure 1 / Figure 3 scenario through it end to end:
//
//  1. backbone domain A claims a /16 from 224/4 via MASC (claim-collide
//     with a configurable waiting period);
//  2. customer domains B and C claim sub-ranges of A's space;
//  3. a session in B leases a group address from B's MAAS, rooting the
//     group's shared tree in B;
//  4. members in C, D, F, and H join, building the bidirectional tree;
//  5. hosts in D (member) and E (non-member sender) transmit, and the
//     daemon reports which domains received each packet.
//
// Every control and data message crosses a framed TCP connection between
// router goroutines — the deployment shape of the architecture, shrunk
// onto one machine.
//
// Usage:
//
//	bgmpd [-wait 2s] [-branches] [-verbose] [-metrics] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mascbgmp"
)

func main() {
	var (
		wait     = flag.Duration("wait", 2*time.Second, "MASC collision waiting period (paper: 48h)")
		branches = flag.Bool("branches", true, "enable source-specific branches (§5.3)")
		verbose  = flag.Bool("verbose", false, "dump per-router G-RIB tables")
		metrics  = flag.Bool("metrics", false, "dump per-router protocol counters at exit")
		trace    = flag.Bool("trace", false, "print every protocol event to stderr as it happens")
	)
	flag.Parse()

	if err := run(*wait, *branches, *verbose, *metrics, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "bgmpd:", err)
		os.Exit(1)
	}
}

func run(wait time.Duration, branches, verbose, metrics, trace bool) error {
	var ob *mascbgmp.Observer
	if metrics || trace {
		ob = mascbgmp.NewObserver()
		if trace {
			ob.Subscribe(func(e mascbgmp.Event) { fmt.Fprintln(os.Stderr, e) })
		}
	}
	net, err := mascbgmp.NewNetwork(mascbgmp.Config{
		Seed:           1998,
		MASCWait:       wait,
		SourceBranches: branches,
		TCP:            true, // real loopback TCP between all routers
		Observer:       ob,
	})
	if err != nil {
		return err
	}

	type dom struct {
		id      mascbgmp.DomainID
		name    string
		routers []mascbgmp.RouterID
		top     bool
	}
	doms := []dom{
		{1, "A", []mascbgmp.RouterID{11, 12, 13, 14}, true},
		{2, "B", []mascbgmp.RouterID{21, 22}, false},
		{3, "C", []mascbgmp.RouterID{31, 32}, false},
		{4, "D", []mascbgmp.RouterID{41}, true},
		{5, "E", []mascbgmp.RouterID{51}, true},
		{6, "F", []mascbgmp.RouterID{61, 62}, false},
		{7, "G", []mascbgmp.RouterID{71, 72}, false},
		{8, "H", []mascbgmp.RouterID{81}, false},
	}
	names := map[mascbgmp.DomainID]string{}
	for _, d := range doms {
		names[d.id] = d.name
		if _, err := net.AddDomain(mascbgmp.DomainConfig{
			ID:            d.id,
			Routers:       d.routers,
			InteriorNodes: len(d.routers) + 2,
			Protocol:      mascbgmp.NewDVMRP(),
			TopLevel:      d.top,
			HostPrefix:    mascbgmp.MustParsePrefix(fmt.Sprintf("10.%d.0.0/16", d.id)),
		}); err != nil {
			return err
		}
	}
	links := [][2]mascbgmp.RouterID{
		{51, 11}, {31, 12}, {21, 13}, {41, 14},
		{61, 22}, {71, 32}, {81, 72}, {62, 14},
	}
	for _, l := range links {
		if err := net.Link(l[0], l[1]); err != nil {
			return err
		}
	}
	for _, s := range [][2]mascbgmp.DomainID{{1, 4}, {1, 5}, {4, 5}} {
		if err := net.MASCPeerSiblings(s[0], s[1]); err != nil {
			return err
		}
	}
	for _, pc := range [][2]mascbgmp.DomainID{{1, 2}, {1, 3}, {2, 6}, {3, 7}, {7, 8}} {
		if err := net.MASCPeerParentChild(pc[0], pc[1]); err != nil {
			return err
		}
	}
	fmt.Printf("built 8 domains, %d TCP-linked border routers\n", 4+2+2+1+1+2+2+1)

	// MASC address allocation, level by level.
	fmt.Printf("MASC: A claims a /16 from 224/4 (waiting period %v)...\n", wait)
	if !net.Domain(1).MASC().RequestSpace(1<<16, 48*time.Hour) {
		return fmt.Errorf("A's claim selection failed")
	}
	time.Sleep(wait + 500*time.Millisecond)
	holdings := net.Domain(1).MASC().Holdings()
	if len(holdings) == 0 {
		return fmt.Errorf("A's claim never matured")
	}
	fmt.Printf("MASC: A won %v\n", holdings[0].Prefix)

	for _, id := range []mascbgmp.DomainID{2, 3} {
		if !net.Domain(id).MASC().RequestSpace(256, 24*time.Hour) {
			return fmt.Errorf("%s's claim selection failed", names[id])
		}
	}
	time.Sleep(wait + 500*time.Millisecond)
	for _, id := range []mascbgmp.DomainID{2, 3} {
		hs := net.Domain(id).MASC().Holdings()
		if len(hs) == 0 {
			return fmt.Errorf("%s's claim never matured", names[id])
		}
		fmt.Printf("MASC: %s won %v (inside A's range)\n", names[id], hs[0].Prefix)
	}
	if err := net.Quiesce(3 * time.Second); err != nil {
		return err
	}

	// Lease a group in B: B becomes the root domain.
	lease, err := net.Domain(2).NewGroup(12 * time.Hour)
	if err != nil {
		return fmt.Errorf("lease: %w", err)
	}
	fmt.Printf("MAAS: session in B leased group %v (root domain: B)\n", lease.Addr)

	// Members join in B, C, D, F, H (Fig 3a).
	for _, id := range []mascbgmp.DomainID{2, 3, 4, 6, 8} {
		net.Domain(id).Join(lease.Addr, 1)
	}
	if err := net.Quiesce(3 * time.Second); err != nil {
		return err
	}
	fmt.Println("BGMP: members joined in B, C, D, F, H — bidirectional tree built")

	if verbose {
		for _, d := range doms {
			for _, r := range net.Domain(d.id).Routers() {
				parent, children, ok := r.BGMP().GroupEntry(lease.Addr)
				if ok {
					fmt.Printf("  router %d (%s): (*,G) parent=%v children=%v\n", r.ID, d.name, parent, children)
				}
			}
		}
	}

	send := func(from mascbgmp.DomainID, what string) {
		for _, d := range doms {
			net.Domain(d.id).ClearReceived()
		}
		src := net.Domain(from).HostAddr(1)
		net.Domain(from).Send(lease.Addr, src, what, 1)
		_ = net.Quiesce(3 * time.Second)
		fmt.Printf("data: host in %s sent %q → received in:", names[from], what)
		for _, d := range doms {
			if got := net.Domain(d.id).Received(); len(got) > 0 {
				fmt.Printf(" %s(x%d)", d.name, len(got))
			}
		}
		fmt.Println()
	}
	send(4, "hello from member domain D")
	send(5, "hello from non-member sender E") // §3: senders need not be members
	send(4, "second packet from D")           // source-specific branch in steady state

	if metrics {
		fmt.Printf("\n# per-router protocol counters\n%s", ob.Snapshot())
	}
	fmt.Println("done")
	return nil
}
