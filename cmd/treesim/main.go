// Command treesim regenerates the paper's Figure 4 (§5.4): path-length
// overhead of unidirectional, bidirectional, and hybrid inter-domain
// multicast trees relative to source-rooted shortest-path trees, as the
// number of receivers grows from 1 to 1000 on a 3326-domain topology.
//
// The paper derived its topology from Oregon route-views BGP dumps; this
// reproduction synthesizes an AS-like graph with the same node count (see
// DESIGN.md §2).
//
// Usage:
//
//	treesim [-domains 3326] [-peering 350] [-seed 1998] [-trials 5]
//	        [-parallel 1] [-sizes 1,2,5,...] [-random-root] [-summary]
//	        [-backend shared-tree|bier|map-encap]
//	        [-metrics] [-trace] [-trace-out spans.json]
//	        [-fault-links N] [-fault-loss P]
//
// -trace-out records one causal span per sampled group (the tree build
// plus its delivery sampling) and writes Chrome trace-event JSON. It
// requires -parallel 1: the file is byte-identical for the same seed.
//
// -parallel fans the per-size sweep across a worker pool; each size draws
// from its own seed-derived rng, so the output is identical at any value.
//
// -backend selects a data-plane backend to compare against the default
// shared trees: after the Figure 4 table, treesim appends a data-plane
// comparison (state, path stretch, per-packet header overhead) for the
// chosen backend on the same topology, via the scale-churn workload.
// Unknown backend names exit with status 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mascbgmp"
)

func main() {
	var (
		domains    = flag.Int("domains", 3326, "number of domains (paper: 3326)")
		peering    = flag.Int("peering", 350, "extra peering links in the synthetic topology")
		seed       = flag.Int64("seed", 1998, "random seed")
		trials     = flag.Int("trials", 5, "trials per group size")
		parallel   = flag.Int("parallel", 1, "worker pool size for the per-size sweep (0: GOMAXPROCS); results are identical at any value")
		sizes      = flag.String("sizes", "", "comma-separated receiver counts (default: the paper's 1..1000 sweep)")
		backend    = flag.String("backend", mascbgmp.DataPlaneSharedTree, "data-plane backend to compare against the shared tree (shared-tree, bier, map-encap)")
		randomRoot = flag.Bool("random-root", false, "ablation: root the bidirectional tree at a random domain instead of the initiator's")
		summary    = flag.Bool("summary", false, "print only the overall summary")
		metrics    = flag.Bool("metrics", false, "dump protocol event counters to stderr at exit")
		trace      = flag.Bool("trace", false, "print every protocol event to stderr as it happens")
		traceOut   = flag.String("trace-out", "", "record per-group tree-build spans and write Chrome trace-event JSON to this file (requires -parallel 1)")
		faultLinks = flag.Int("fault-links", 0, "remove N non-bridge links from the topology before the sweep")
		faultLoss  = flag.Float64("fault-loss", 0, "per-hop data loss probability on sampled deliveries (0..1)")
	)
	flag.Parse()

	cfg := mascbgmp.DefaultFig4Config()
	cfg.Domains = *domains
	cfg.ExtraPeering = *peering
	cfg.Seed = *seed
	cfg.Trials = *trials
	cfg.Parallel = *parallel
	cfg.RandomRoot = *randomRoot
	cfg.FaultLinks = *faultLinks
	cfg.FaultLoss = *faultLoss
	if *faultLoss < 0 || *faultLoss >= 1 {
		fmt.Fprintln(os.Stderr, "treesim: -fault-loss must be in [0, 1)")
		os.Exit(2)
	}
	if !mascbgmp.ValidDataPlane(*backend) {
		fmt.Fprintf(os.Stderr, "treesim: unknown -backend %q (valid: %s)\n",
			*backend, strings.Join(mascbgmp.DataPlaneNames(), ", "))
		os.Exit(2)
	}
	if *sizes != "" {
		cfg.GroupSizes = nil
		for _, f := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "treesim: bad -sizes entry %q\n", f)
				os.Exit(2)
			}
			cfg.GroupSizes = append(cfg.GroupSizes, n)
		}
	}

	var ob *mascbgmp.Observer
	var tr *mascbgmp.Tracer
	if *metrics || *trace || *traceOut != "" {
		ob = mascbgmp.NewObserver()
		cfg.Obs = ob
		if *trace {
			ob.Subscribe(func(e mascbgmp.Event) { fmt.Fprintln(os.Stderr, e) })
		}
		if *traceOut != "" {
			if *parallel != 1 {
				// Concurrent sizes would allocate span IDs in scheduling
				// order and break the byte determinism of the trace file.
				fmt.Fprintln(os.Stderr, "treesim: -trace-out requires -parallel 1")
				os.Exit(2)
			}
			tr = mascbgmp.NewTracer(*seed)
			ob.SetTracer(tr)
		}
	}

	pts := mascbgmp.RunFig4(cfg)

	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, mascbgmp.ChromeTrace(tr.Records()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "treesim: %v\n", err)
			os.Exit(2)
		}
	}

	if !*summary {
		if *faultLoss > 0 {
			fmt.Println("receivers,uni_avg,uni_max,bidir_avg,bidir_max,hybrid_avg,hybrid_max,tree_size,delivery_ratio")
		} else {
			fmt.Println("receivers,uni_avg,uni_max,bidir_avg,bidir_max,hybrid_avg,hybrid_max,tree_size")
		}
		for _, p := range pts {
			fmt.Printf("%d,%.3f,%.2f,%.3f,%.2f,%.3f,%.2f,%.0f",
				p.Receivers, p.UniAvg, p.UniMax, p.BidirAvg, p.BidirMax, p.HybridAvg, p.HybridMax, p.TreeSize)
			if *faultLoss > 0 {
				fmt.Printf(",%.3f", p.DeliveryRatio)
			}
			fmt.Println()
		}
	}

	// Overall averages across sizes ≥ 10 (the regime the paper's text
	// quotes: hybrid <1.2x avg / <=4x max, bidirectional <1.3x / <=4.5x,
	// unidirectional ~2x / <=6x).
	var uni, bidir, hybrid, uniMax, bidirMax, hybridMax float64
	n := 0
	for _, p := range pts {
		if p.Receivers < 10 {
			continue
		}
		uni += p.UniAvg
		bidir += p.BidirAvg
		hybrid += p.HybridAvg
		if p.UniMax > uniMax {
			uniMax = p.UniMax
		}
		if p.BidirMax > bidirMax {
			bidirMax = p.BidirMax
		}
		if p.HybridMax > hybridMax {
			hybridMax = p.HybridMax
		}
		n++
	}
	if n > 0 {
		uni /= float64(n)
		bidir /= float64(n)
		hybrid /= float64(n)
	}
	fmt.Fprintf(os.Stderr, "\n# overhead vs shortest-path tree, groups >= 10 receivers (avg / worst)\n")
	fmt.Fprintf(os.Stderr, "unidirectional (PIM-SM model):  %.2fx / %.1fx   (paper: ~2x / <=6x)\n", uni, uniMax)
	fmt.Fprintf(os.Stderr, "bidirectional  (BGMP):          %.2fx / %.1fx   (paper: <1.3x / <=4.5x)\n", bidir, bidirMax)
	fmt.Fprintf(os.Stderr, "hybrid (BGMP + src branches):   %.2fx / %.1fx   (paper: <1.2x / <=4x)\n", hybrid, hybridMax)

	// Data-plane comparison: cost the selected backend against the shared
	// tree on the same topology, via the churn workload (DESIGN.md §11).
	if *backend != mascbgmp.DataPlaneSharedTree {
		ccfg := mascbgmp.DefaultChurnConfig()
		ccfg.Domains = *domains
		ccfg.ExtraPeering = *peering
		ccfg.Seed = *seed
		dres := mascbgmp.RunDataPlane(ccfg)
		fmt.Fprintf(os.Stderr, "\n# data-plane comparison (%d groups, %d churn events)\n",
			ccfg.Groups, ccfg.Events)
		fmt.Fprintf(os.Stderr, "%-12s %14s %15s %13s %12s %14s\n",
			"backend", "group_entries", "overlay_entries", "hops/pkt", "hdr_B/pkt", "stretch avg/max")
		pkts := float64(dres.Churn.Packets)
		for _, name := range []string{mascbgmp.DataPlaneSharedTree, *backend} {
			c, ok := dres.Cost(name)
			if !ok {
				continue
			}
			fmt.Fprintf(os.Stderr, "%-12s %14d %15d %13.1f %12.1f %9.2f/%.1f\n",
				c.Backend, c.GroupEntries, c.OverlayEntries,
				float64(c.ForwardHops)/pkts, float64(c.HeaderBytes)/pkts,
				c.MeanStretch, c.MaxStretch)
		}
	}

	if *metrics {
		fmt.Fprintf(os.Stderr, "\n# protocol event counters\n%s", ob.Snapshot().Totals())
	}
}
