// Command mascsim regenerates the paper's Figure 2: the MASC claim
// algorithm simulation (§4.3.3) with 50 top-level domains × 50 children
// over 800 days.
//
// Output is a CSV time series (day, utilization, G-RIB avg, G-RIB max,
// globally advertised prefixes) plus a summary block reproducing the
// in-text numbers (steady-state utilization ≈ 50 %, ≈ 37,500 live block
// requests).
//
// Usage:
//
//	mascsim [-top 50] [-children 50] [-days 800] [-seed 1998]
//	        [-fig 2a|2b|csv] [-summary] [-metrics] [-trace]
//	        [-trace-out spans.json] [-metrics-out metrics.prom]
//	        [-trials 1] [-parallel 1]
//
// -trace-out records every claim round as a span timestamped from the
// simulation's event clock and writes Chrome trace-event JSON
// (single-run mode only — replicated trials share one observer, so span
// order would depend on scheduling). -metrics-out writes the final
// counter state in Prometheus text exposition format. Both files are
// byte-identical for the same seed.
//
// With -trials N > 1 the simulation is replicated N times across a worker
// pool, each replica with a seed derived from (-seed, trial index); the
// CSV series is skipped and a per-trial summary table plus the
// mean/min/max aggregate is printed instead. The per-trial results are
// identical at any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"

	"mascbgmp"
	"mascbgmp/internal/harness"
)

func main() {
	var (
		top        = flag.Int("top", 50, "number of top-level domains")
		children   = flag.Int("children", 50, "children per top-level domain")
		days       = flag.Int("days", 800, "simulated days")
		seed       = flag.Int64("seed", 1998, "random seed")
		fig        = flag.String("fig", "csv", `output: "2a" (utilization series), "2b" (G-RIB series), "csv" (both)`)
		summary    = flag.Bool("summary", false, "print only the steady-state summary")
		hetero     = flag.Bool("hetero", false, "heterogeneous topology: variable children per provider and block sizes")
		metrics    = flag.Bool("metrics", false, "dump protocol event counters to stderr at exit")
		trace      = flag.Bool("trace", false, "print every protocol event to stderr as it happens")
		traceOut   = flag.String("trace-out", "", "record allocator claim spans and write Chrome trace-event JSON to this file (single-run mode only)")
		metricsOut = flag.String("metrics-out", "", "write counters and histograms to this file in Prometheus text exposition format")
		trials     = flag.Int("trials", 1, "replicate the simulation N times with derived seeds (1: single legacy run)")
		parallel   = flag.Int("parallel", 1, "worker pool size for -trials replication (0: GOMAXPROCS)")
	)
	flag.Parse()

	if *traceOut != "" && *trials > 1 {
		// Replicated trials share one observer across workers, so span IDs
		// would allocate in scheduling order and break byte determinism.
		fmt.Fprintln(os.Stderr, "mascsim: -trace-out requires single-run mode (-trials 1)")
		os.Exit(2)
	}

	cfg := mascbgmp.DefaultFig2Config()
	cfg.TopLevel = *top
	cfg.ChildrenPer = *children
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Heterogeneous = *hetero

	var ob *mascbgmp.Observer
	var tr *mascbgmp.Tracer
	if *metrics || *trace || *traceOut != "" || *metricsOut != "" {
		ob = mascbgmp.NewObserver()
		cfg.Obs = ob
		if *trace {
			ob.Subscribe(func(e mascbgmp.Event) { fmt.Fprintln(os.Stderr, e) })
		}
		if *traceOut != "" {
			tr = mascbgmp.NewTracer(*seed)
			ob.SetTracer(tr)
		}
	}

	if *trials > 1 {
		runReplicated(cfg, *trials, *parallel, *days)
		if *metrics {
			fmt.Fprintf(os.Stderr, "\n# protocol event counters (all trials)\n%s", ob.Snapshot().Totals())
		}
		writeObsFiles(ob, tr, *metricsOut, *traceOut)
		return
	}

	res := mascbgmp.RunFig2(cfg)

	if !*summary {
		switch *fig {
		case "2a":
			fmt.Println("day,utilization_pct")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.2f\n", s.Day, s.Utilization*100)
			}
		case "2b":
			fmt.Println("day,grib_avg,grib_max")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.1f,%d\n", s.Day, s.GRIBAvg, s.GRIBMax)
			}
		case "csv":
			fmt.Println("day,utilization_pct,grib_avg,grib_max,global_prefixes,demand,claimed")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.2f,%.1f,%d,%d,%d,%d\n",
					s.Day, s.Utilization*100, s.GRIBAvg, s.GRIBMax, s.GlobalPrefixes, s.Demand, s.Claimed)
			}
		default:
			fmt.Fprintf(os.Stderr, "mascsim: unknown -fig %q\n", *fig)
			os.Exit(2)
		}
	}

	// Steady-state summary (after the startup transient).
	util, grib, gribMax, cut := steadyState(res.Samples, *days)
	fmt.Fprintf(os.Stderr, "\n# steady state after day %.0f (paper: util ~50%%, G-RIB mean ~175 / max <=180 at 50x50)\n", cut)
	fmt.Fprintf(os.Stderr, "domains:              %d top-level, %d children\n", *top, *top**children)
	fmt.Fprintf(os.Stderr, "utilization:          %.1f%%\n", util*100)
	fmt.Fprintf(os.Stderr, "G-RIB size:           mean %.1f, max %d\n", grib, gribMax)
	fmt.Fprintf(os.Stderr, "live block requests:  %d (paper: ~37500 at 50x50)\n", res.LiveBlocks)
	fmt.Fprintf(os.Stderr, "requests satisfied:   %d (failed: %d)\n", res.Satisfied, res.Failed)
	fmt.Fprintf(os.Stderr, "expansion events:     %d doublings, %d extra claims, %d replacements, %d releases\n",
		res.ChildStats.Doublings, res.ChildStats.ExtraClaims, res.ChildStats.Replacements, res.ChildStats.Releases)

	if *metrics {
		fmt.Fprintf(os.Stderr, "\n# protocol event counters\n%s", ob.Snapshot().Totals())
	}
	writeObsFiles(ob, tr, *metricsOut, *traceOut)
}

// writeObsFiles writes the optional -metrics-out Prometheus exposition and
// -trace-out Chrome trace JSON. Both are sorted and byte-deterministic for
// a given seed.
func writeObsFiles(ob *mascbgmp.Observer, tr *mascbgmp.Tracer, metricsOut, traceOut string) {
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, []byte(ob.Snapshot().Prometheus()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mascsim: %v\n", err)
			os.Exit(2)
		}
	}
	if traceOut != "" {
		if err := os.WriteFile(traceOut, mascbgmp.ChromeTrace(tr.Records()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mascsim: %v\n", err)
			os.Exit(2)
		}
	}
}

// steadyState averages the post-transient samples (after day
// min(days/4, 100)) and returns the cut day used.
func steadyState(samples []mascbgmp.Fig2Sample, days int) (util, grib float64, gribMax int, cut float64) {
	cut = float64(days) / 4
	if cut > 100 {
		cut = 100
	}
	n := 0
	for _, s := range samples {
		if s.Day > cut {
			util += s.Utilization
			grib += s.GRIBAvg
			if s.GRIBMax > gribMax {
				gribMax = s.GRIBMax
			}
			n++
		}
	}
	if n > 0 {
		util /= float64(n)
		grib /= float64(n)
	}
	return util, grib, gribMax, cut
}

// runReplicated runs the simulation trials times across a worker pool,
// each replica seeded from (cfg.Seed, trial index), and prints per-trial
// steady-state rows plus the aggregate. Per-trial results are identical
// at any parallelism.
func runReplicated(cfg mascbgmp.Fig2Config, trials, parallel, days int) {
	type row struct {
		seed              int64
		util, grib        float64
		gribMax, live     int
		satisfied, failed int
	}
	results, err := harness.Run(harness.Config{
		Trials:   trials,
		Parallel: parallel,
		Seed:     cfg.Seed,
		Run: func(t harness.Trial) (any, error) {
			c := cfg
			c.Seed = t.Seed
			res := mascbgmp.RunFig2(c)
			u, g, gm, _ := steadyState(res.Samples, days)
			return row{seed: t.Seed, util: u, grib: g, gribMax: gm,
				live: res.LiveBlocks, satisfied: res.Satisfied, failed: res.Failed}, nil
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mascsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("trial,seed,utilization_pct,grib_mean,grib_max,live_blocks,satisfied,failed")
	var uSum, uMin, uMax, gSum float64
	var liveSum int
	for i, r := range results {
		rw := r.Value.(row)
		fmt.Printf("%d,%d,%.2f,%.1f,%d,%d,%d,%d\n",
			i, rw.seed, rw.util*100, rw.grib, rw.gribMax, rw.live, rw.satisfied, rw.failed)
		if i == 0 || rw.util < uMin {
			uMin = rw.util
		}
		if i == 0 || rw.util > uMax {
			uMax = rw.util
		}
		uSum += rw.util
		gSum += rw.grib
		liveSum += rw.live
	}
	n := float64(len(results))
	fmt.Fprintf(os.Stderr, "\n# %d trials: utilization mean %.1f%% (min %.1f%%, max %.1f%%), G-RIB mean %.1f, live blocks mean %.0f\n",
		len(results), uSum/n*100, uMin*100, uMax*100, gSum/n, float64(liveSum)/n)
}
