// Command mascsim regenerates the paper's Figure 2: the MASC claim
// algorithm simulation (§4.3.3) with 50 top-level domains × 50 children
// over 800 days.
//
// Output is a CSV time series (day, utilization, G-RIB avg, G-RIB max,
// globally advertised prefixes) plus a summary block reproducing the
// in-text numbers (steady-state utilization ≈ 50 %, ≈ 37,500 live block
// requests).
//
// Usage:
//
//	mascsim [-top 50] [-children 50] [-days 800] [-seed 1998]
//	        [-fig 2a|2b|csv] [-summary] [-metrics] [-trace]
package main

import (
	"flag"
	"fmt"
	"os"

	"mascbgmp"
)

func main() {
	var (
		top      = flag.Int("top", 50, "number of top-level domains")
		children = flag.Int("children", 50, "children per top-level domain")
		days     = flag.Int("days", 800, "simulated days")
		seed     = flag.Int64("seed", 1998, "random seed")
		fig      = flag.String("fig", "csv", `output: "2a" (utilization series), "2b" (G-RIB series), "csv" (both)`)
		summary  = flag.Bool("summary", false, "print only the steady-state summary")
		hetero   = flag.Bool("hetero", false, "heterogeneous topology: variable children per provider and block sizes")
		metrics  = flag.Bool("metrics", false, "dump protocol event counters to stderr at exit")
		trace    = flag.Bool("trace", false, "print every protocol event to stderr as it happens")
	)
	flag.Parse()

	cfg := mascbgmp.DefaultFig2Config()
	cfg.TopLevel = *top
	cfg.ChildrenPer = *children
	cfg.Days = *days
	cfg.Seed = *seed
	cfg.Heterogeneous = *hetero

	var ob *mascbgmp.Observer
	if *metrics || *trace {
		ob = mascbgmp.NewObserver()
		cfg.Obs = ob
		if *trace {
			ob.Subscribe(func(e mascbgmp.Event) { fmt.Fprintln(os.Stderr, e) })
		}
	}

	res := mascbgmp.RunFig2(cfg)

	if !*summary {
		switch *fig {
		case "2a":
			fmt.Println("day,utilization_pct")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.2f\n", s.Day, s.Utilization*100)
			}
		case "2b":
			fmt.Println("day,grib_avg,grib_max")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.1f,%d\n", s.Day, s.GRIBAvg, s.GRIBMax)
			}
		case "csv":
			fmt.Println("day,utilization_pct,grib_avg,grib_max,global_prefixes,demand,claimed")
			for _, s := range res.Samples {
				fmt.Printf("%.0f,%.2f,%.1f,%d,%d,%d,%d\n",
					s.Day, s.Utilization*100, s.GRIBAvg, s.GRIBMax, s.GlobalPrefixes, s.Demand, s.Claimed)
			}
		default:
			fmt.Fprintf(os.Stderr, "mascsim: unknown -fig %q\n", *fig)
			os.Exit(2)
		}
	}

	// Steady-state summary (after the startup transient).
	var util, grib float64
	var gribMax, n int
	cut := float64(*days) / 4
	if cut > 100 {
		cut = 100
	}
	for _, s := range res.Samples {
		if s.Day > cut {
			util += s.Utilization
			grib += s.GRIBAvg
			if s.GRIBMax > gribMax {
				gribMax = s.GRIBMax
			}
			n++
		}
	}
	if n > 0 {
		util /= float64(n)
		grib /= float64(n)
	}
	fmt.Fprintf(os.Stderr, "\n# steady state after day %.0f (paper: util ~50%%, G-RIB mean ~175 / max <=180 at 50x50)\n", cut)
	fmt.Fprintf(os.Stderr, "domains:              %d top-level, %d children\n", *top, *top**children)
	fmt.Fprintf(os.Stderr, "utilization:          %.1f%%\n", util*100)
	fmt.Fprintf(os.Stderr, "G-RIB size:           mean %.1f, max %d\n", grib, gribMax)
	fmt.Fprintf(os.Stderr, "live block requests:  %d (paper: ~37500 at 50x50)\n", res.LiveBlocks)
	fmt.Fprintf(os.Stderr, "requests satisfied:   %d (failed: %d)\n", res.Satisfied, res.Failed)
	fmt.Fprintf(os.Stderr, "expansion events:     %d doublings, %d extra claims, %d replacements, %d releases\n",
		res.ChildStats.Doublings, res.ChildStats.ExtraClaims, res.ChildStats.Replacements, res.ChildStats.Releases)

	if *metrics {
		fmt.Fprintf(os.Stderr, "\n# protocol event counters\n%s", ob.Snapshot().Totals())
	}
}
