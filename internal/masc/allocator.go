package masc

import (
	"fmt"
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Strategy holds the tunables of the paper's claim algorithm (§4.3.3).
// The zero value is not useful; use DefaultStrategy.
type Strategy struct {
	// TargetOccupancy is the utilization a domain aims to stay at or
	// above; the paper uses 75 %.
	TargetOccupancy float64
	// MaxActivePrefixes is the number of prefixes a domain tries not to
	// exceed; the paper uses 2.
	MaxActivePrefixes int
	// ClaimLifetime is the lifetime requested for new claims; the Fig 2
	// simulation uses 30 days.
	ClaimLifetime time.Duration
	// RelaxedDoubling drops the post-double ≥TargetOccupancy test.
	// Provider domains sizing space for their children use it: a parent
	// that has filled 75 % of its single prefix could never pass the
	// strict test (doubling halves utilization), so strict doubling
	// would fragment parents into many small prefixes and defeat
	// aggregation.
	RelaxedDoubling bool
}

// DefaultStrategy returns the paper's parameters.
func DefaultStrategy() Strategy {
	return Strategy{
		TargetOccupancy:   0.75,
		MaxActivePrefixes: 2,
		ClaimLifetime:     30 * 24 * time.Hour,
	}
}

// Holding is one claimed prefix with its allocation state.
type Holding struct {
	Prefix addr.Prefix
	// Active marks a prefix from which new addresses are assigned;
	// inactive prefixes drain as their allocations expire (§4.3.3).
	Active  bool
	Expires time.Time
	// Used counts addresses currently allocated out of this holding.
	Used uint64
}

// Block is an allocated address block, as leased to a MAAS.
type Block struct {
	Prefix  addr.Prefix // the covering holding's prefix at allocation time
	Size    uint64
	Expires time.Time
}

// BlockAllocator is the allocation engine of a leaf domain: it satisfies
// block requests from the domain's MAAS out of claimed prefixes, expanding
// them with the paper's rules. It is driven by a Ledger shared with (or
// synchronized to) the sibling domains.
type BlockAllocator struct {
	strat    Strategy
	ledger   *Ledger
	rng      *rand.Rand
	holdings []*Holding
	blocks   []*allocBlock

	obs       *obs.Observer
	obsDomain wire.DomainID

	// Stats counts expansion events for the ablation benchmarks.
	Stats AllocStats
}

// SetObserver routes the allocator's events (claims, collisions, wins,
// renewals, releases, MAAS leases, and the mirrored BGP route injections)
// to o, scoped to domain. Nil disables observation.
func (a *BlockAllocator) SetObserver(o *obs.Observer, domain wire.DomainID) {
	a.obs, a.obsDomain = o, domain
}

func (a *BlockAllocator) emit(kind obs.Kind, p addr.Prefix) {
	if a.obs != nil {
		a.obs.Emit(obs.Event{Kind: kind, Domain: a.obsDomain, Prefix: p})
	}
}

// AllocStats counts allocator events.
type AllocStats struct {
	Doublings    int
	ExtraClaims  int
	Replacements int
	Failures     int
	Releases     int
}

type allocBlock struct {
	size    uint64
	expires time.Time
	holding *Holding
}

// NewBlockAllocator returns an allocator claiming from ledger with the
// given strategy. rng drives the random choice among shortest-free blocks.
func NewBlockAllocator(strat Strategy, ledger *Ledger, rng *rand.Rand) *BlockAllocator {
	return &BlockAllocator{strat: strat, ledger: ledger, rng: rng}
}

// Holdings returns copies of the current holdings, sorted by prefix.
func (a *BlockAllocator) Holdings() []Holding {
	out := make([]Holding, 0, len(a.holdings))
	for _, h := range a.holdings {
		out = append(out, *h)
	}
	return out
}

// Demand returns the number of addresses in live blocks.
func (a *BlockAllocator) Demand() uint64 {
	var n uint64
	for _, b := range a.blocks {
		n += b.size
	}
	return n
}

// Capacity returns the number of addresses across all holdings.
func (a *BlockAllocator) Capacity() uint64 {
	var n uint64
	for _, h := range a.holdings {
		n += h.Prefix.Size()
	}
	return n
}

// Utilization returns Demand/Capacity, or 0 with no holdings.
func (a *BlockAllocator) Utilization() float64 {
	c := a.Capacity()
	if c == 0 {
		return 0
	}
	return float64(a.Demand()) / float64(c)
}

// Tick expires blocks and holdings as of now: expired blocks free their
// addresses; holdings that are past expiry and empty are released back to
// the ledger; non-empty holdings at expiry are renewed (active) or extended
// until their blocks drain (inactive).
func (a *BlockAllocator) Tick(now time.Time) {
	live := a.blocks[:0]
	for _, b := range a.blocks {
		if b.expires.After(now) {
			live = append(live, b)
		} else {
			b.holding.Used -= b.size
		}
	}
	a.blocks = live
	kept := a.holdings[:0]
	for _, h := range a.holdings {
		if !h.Expires.After(now) {
			if h.Used == 0 {
				a.ledger.Release(h.Prefix)
				a.Stats.Releases++
				a.emit(obs.MASCReleased, h.Prefix)
				a.emit(obs.BGPWithdraw, h.Prefix)
				continue
			}
			// Renewal: the claim must outlive its allocations.
			h.Expires = now.Add(a.strat.ClaimLifetime)
			a.emit(obs.MASCRenewed, h.Prefix)
		}
		kept = append(kept, h)
	}
	a.holdings = kept
}

// Request satisfies a block request of n addresses with the given lifetime,
// expanding holdings if needed. It returns the allocated block and true, or
// a zero Block and false when no space could be claimed.
func (a *BlockAllocator) Request(n uint64, lifetime time.Duration, now time.Time) (Block, bool) {
	a.Tick(now)
	if h := a.fit(n); h != nil {
		b := a.place(h, n, lifetime, now)
		a.emit(obs.MAASLease, b.Prefix)
		return b, true
	}
	if h := a.expand(n, now); h != nil {
		b := a.place(h, n, lifetime, now)
		a.emit(obs.MAASLease, b.Prefix)
		return b, true
	}
	a.Stats.Failures++
	return Block{}, false
}

// fit finds an active holding with room for n more addresses.
func (a *BlockAllocator) fit(n uint64) *Holding {
	var best *Holding
	for _, h := range a.holdings {
		if !h.Active || h.Used+n > h.Prefix.Size() {
			continue
		}
		// Prefer the fullest holding that still fits, packing tightly.
		if best == nil || h.Used > best.Used {
			best = h
		}
	}
	return best
}

func (a *BlockAllocator) place(h *Holding, n uint64, lifetime time.Duration, now time.Time) Block {
	h.Used += n
	exp := now.Add(lifetime)
	if exp.After(h.Expires) {
		// Applications may need the address longer than the claim; the
		// claim is renewed rather than cutting the lease short (§4.3.1).
		h.Expires = exp
	}
	a.blocks = append(a.blocks, &allocBlock{size: n, expires: exp, holding: h})
	return Block{Prefix: h.Prefix, Size: n, Expires: exp}
}

// activeCount returns the number of active holdings.
func (a *BlockAllocator) activeCount() int {
	c := 0
	for _, h := range a.holdings {
		if h.Active {
			c++
		}
	}
	return c
}

// expand implements the §4.3.3 expansion rules and returns a holding that
// can fit n addresses, or nil.
func (a *BlockAllocator) expand(n uint64, now time.Time) *Holding {
	demand := a.Demand() + n

	// Option 1: double an active prefix — typically the smallest — while
	// the post-double utilization stays at or above target (strict mode).
	if h := a.tryDouble(demand, n); h != nil {
		return h
	}

	// Option 2: an additional small prefix just sufficient for the
	// demand, while we hold fewer than MaxActivePrefixes.
	if a.activeCount() < a.strat.MaxActivePrefixes {
		if h := a.claimNew(addr.MaskLenFor(n), now); h != nil {
			if h.Prefix.Size() >= n {
				a.Stats.ExtraClaims++
				return h
			}
			a.removeHolding(h) // best-effort block too small for the request
		}
	}

	// Option 3: at the prefix limit and nothing doubled — claim a single
	// replacement prefix large enough for the whole current usage; old
	// prefixes become inactive and drain away.
	if h := a.claimNew(addr.MaskLenFor(demand), now); h != nil {
		if h.Prefix.Size() >= demand {
			for _, old := range a.holdings {
				if old != h {
					old.Active = false
				}
			}
			a.Stats.Replacements++
			return h
		}
		// The claim was a best-effort smaller block; keep it only if the
		// new block alone fits the request.
		if h.Prefix.Size() >= n {
			a.Stats.ExtraClaims++
			return h
		}
		a.removeHolding(h)
	}

	// Fallback: exceed the prefix-count target rather than fail the
	// request (the target is a goal, not a hard limit).
	if h := a.claimNew(addr.MaskLenFor(n), now); h != nil && h.Prefix.Size() >= n {
		a.Stats.ExtraClaims++
		return h
	} else if h != nil {
		a.removeHolding(h)
	}
	return nil
}

// tryDouble doubles active holdings (smallest first) until the request
// fits, subject to the occupancy test and ledger availability.
func (a *BlockAllocator) tryDouble(demand, n uint64) *Holding {
	for {
		var smallest *Holding
		for _, h := range a.holdings {
			if !h.Active || !a.ledger.CanDouble(h.Prefix) {
				continue
			}
			if smallest == nil || h.Prefix.Size() < smallest.Prefix.Size() {
				smallest = h
			}
		}
		if smallest == nil {
			return nil
		}
		newSize := a.Capacity() + smallest.Prefix.Size()
		if !a.strat.RelaxedDoubling &&
			float64(demand) < a.strat.TargetOccupancy*float64(newSize) {
			return nil
		}
		d, ok := a.ledger.Double(smallest.Prefix)
		if !ok {
			a.emit(obs.MASCCollision, smallest.Prefix)
			return nil
		}
		old := smallest.Prefix
		smallest.Prefix = d
		a.Stats.Doublings++
		// The model-level claim round is instantaneous; the span still
		// lands in the trace so allocation activity lines up with the
		// protocol spans on the same timeline.
		sp := a.obs.Tracer().Begin(obs.SpanClaim, obs.Event{Domain: a.obsDomain, Prefix: d})
		a.emit(obs.MASCClaim, d)
		a.emit(obs.MASCWon, d)
		sp.End()
		a.emit(obs.BGPWithdraw, old)
		a.emit(obs.BGPAnnounce, d)
		if smallest.Used+n <= smallest.Prefix.Size() {
			return smallest
		}
		// Doubled but still too small (tiny prefix, large block): loop.
	}
}

// claimNew claims a fresh prefix of the desired mask length via the ledger
// and records it as an active holding.
func (a *BlockAllocator) claimNew(maskLen int, now time.Time) *Holding {
	if maskLen < 0 {
		return nil
	}
	p, ok := a.ledger.PickClaim(maskLen, a.rng)
	if !ok {
		a.emit(obs.MASCCollision, addr.Prefix{})
		return nil
	}
	if !a.ledger.Claim(p) {
		a.emit(obs.MASCCollision, p)
		return nil
	}
	h := &Holding{Prefix: p, Active: true, Expires: now.Add(a.strat.ClaimLifetime)}
	a.holdings = append(a.holdings, h)
	sp := a.obs.Tracer().Begin(obs.SpanClaim, obs.Event{Domain: a.obsDomain, Prefix: p})
	a.emit(obs.MASCClaim, p)
	a.emit(obs.MASCWon, p)
	a.emit(obs.BGPAnnounce, p)
	sp.End()
	return h
}

func (a *BlockAllocator) removeHolding(h *Holding) {
	a.ledger.Release(h.Prefix)
	a.emit(obs.MASCReleased, h.Prefix)
	a.emit(obs.BGPWithdraw, h.Prefix)
	for i, x := range a.holdings {
		if x == h {
			a.holdings = append(a.holdings[:i], a.holdings[i+1:]...)
			return
		}
	}
}

// AdvertisedPrefixes returns the domain's claimed prefixes as they would be
// injected into BGP after CIDR aggregation — the per-domain contribution to
// the G-RIB.
func (a *BlockAllocator) AdvertisedPrefixes() []addr.Prefix {
	s := addr.NewSet()
	for _, h := range a.holdings {
		s.Add(h.Prefix)
	}
	return s.Aggregated().Prefixes()
}

// String aids debugging.
func (a *BlockAllocator) String() string {
	return fmt.Sprintf("alloc{demand=%d cap=%d holdings=%d}", a.Demand(), a.Capacity(), len(a.holdings))
}
