package masc

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	wirepkg "mascbgmp/internal/wire"
)

func BenchmarkPickClaimLoadedLedger(b *testing.B) {
	// A ledger with ~100 sibling claims, the per-parent scale of the
	// paper's 50-child simulation.
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/8"))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if p, ok := l.PickClaim(24, rng); ok {
			l.Claim(p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := l.PickClaim(24, rng); !ok {
			b.Fatal("space exhausted")
		}
	}
}

func BenchmarkBlockAllocatorSteadyState(b *testing.B) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/8"))
	a := NewBlockAllocator(DefaultStrategy(), l, rand.New(rand.NewSource(2)))
	now := allocT0
	life := 30 * 24 * time.Hour
	// Warm to steady state.
	for i := 0; i < 500; i++ {
		a.Request(256, life, now)
		now = now.Add(2 * time.Hour)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Request(256, life, now)
		now = now.Add(2 * time.Hour)
	}
}

func BenchmarkProviderEnsureRoom(b *testing.B) {
	// Reset the provider periodically: otherwise accumulated child claims
	// make each iteration quadratically slower and the space exhausts.
	up := NewLedger(addr.MulticastSpace)
	sp := NewSpaceProvider(DefaultStrategy(), up, rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			b.StopTimer()
			up = NewLedger(addr.MulticastSpace)
			sp = NewSpaceProvider(DefaultStrategy(), up, rand.New(rand.NewSource(3)))
			b.StartTimer()
		}
		if !sp.EnsureRoom(256, allocT0) {
			b.Fatal("no room")
		}
		if p, ok := sp.ChildLedger().PickClaim(24, rng); ok {
			sp.ChildLedger().Claim(p)
		}
	}
}

// TestManySiblingsConcurrentClaimsDisjoint is a property test on the
// message-driven claim-collide protocol: 12 top-level siblings all claim
// simultaneously from 224/4; after retries settle, every won range is
// pairwise disjoint.
func TestManySiblingsConcurrentClaimsDisjoint(t *testing.T) {
	nn := newNodeNet(t)
	const siblings = 12
	for i := 1; i <= siblings; i++ {
		nn.add(dom(i), true, int64(i))
	}
	for i := 1; i <= siblings; i++ {
		for j := 1; j <= siblings; j++ {
			if i != j {
				nn.nodes[dom(i)].AddSibling(dom(j))
			}
		}
	}
	// All claim at the same instant (worst-case simultaneous claims; the
	// paper: "the nth domain might have to make up to n claims").
	for i := 1; i <= siblings; i++ {
		nn.nodes[dom(i)].RequestSpace(1<<20, 30*24*time.Hour)
	}
	// Enough time for waiting periods plus retry rounds.
	nn.run(30 * 24 * time.Hour)

	var all []addr.Prefix
	for i := 1; i <= siblings; i++ {
		for _, h := range nn.nodes[dom(i)].Holdings() {
			all = append(all, h.Prefix)
		}
	}
	if len(all) < siblings/2 {
		t.Fatalf("too few wins: %d (retry starvation?)", len(all))
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Overlaps(all[j]) {
				t.Fatalf("won ranges overlap: %v / %v", all[i], all[j])
			}
		}
	}
}

// dom converts an int to a DomainID tersely for the sibling test.
func dom(i int) wirepkg.DomainID { return wirepkg.DomainID(i) }
