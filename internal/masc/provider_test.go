package masc

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
)

func newTestProvider() (*SpaceProvider, *Ledger) {
	up := NewLedger(addr.MulticastSpace)
	sp := NewSpaceProvider(DefaultStrategy(), up, rand.New(rand.NewSource(4)))
	return sp, up
}

func TestProviderStartsEmpty(t *testing.T) {
	sp, _ := newTestProvider()
	if sp.Capacity() != 0 || sp.ChildDemand() != 0 || sp.Utilization() != 0 {
		t.Fatal("fresh provider should be empty")
	}
	if len(sp.ChildLedger().Spaces()) != 0 {
		t.Fatal("child ledger should have no spaces yet")
	}
}

func TestEnsureRoomClaimsInitialSpace(t *testing.T) {
	sp, up := newTestProvider()
	if !sp.EnsureRoom(256, allocT0) {
		t.Fatal("EnsureRoom should claim initial space")
	}
	if sp.Capacity() == 0 {
		t.Fatal("provider should now hold space")
	}
	// Initial claim is sized with headroom: ≥ need/target.
	if sp.Capacity() < 342 {
		t.Fatalf("capacity = %d, want >= need/0.75", sp.Capacity())
	}
	if len(up.Claims()) == 0 {
		t.Fatal("claim must be recorded upstream")
	}
	// A child can now claim from the provider's space.
	child := sp.ChildLedger()
	p, ok := child.PickClaim(24, rand.New(rand.NewSource(1)))
	if !ok || !child.Claim(p) {
		t.Fatal("child claim should fit")
	}
}

func TestProviderGrowsByDoubling(t *testing.T) {
	sp, _ := newTestProvider()
	child := sp.ChildLedger()
	rng := rand.New(rand.NewSource(2))
	claims := 0
	for i := 0; i < 40; i++ {
		if !sp.EnsureRoom(256, allocT0) {
			t.Fatalf("EnsureRoom failed at child claim %d", i)
		}
		p, ok := child.PickClaim(24, rng)
		if !ok || !child.Claim(p) {
			t.Fatalf("child claim %d failed", i)
		}
		claims++
	}
	if sp.Stats.Doublings == 0 {
		t.Fatal("provider growth should use doubling")
	}
	// Provider's advertised prefixes stay few thanks to doubling +
	// aggregation.
	if adv := sp.AdvertisedPrefixes(); len(adv) > 3 {
		t.Fatalf("advertised prefixes = %v, aggregation failed", adv)
	}
	if sp.Utilization() > sp.strat.TargetOccupancy+0.01 {
		t.Fatalf("utilization %.2f exceeds target after EnsureRoom", sp.Utilization())
	}
}

func TestProviderDoublingBlockedFallsBackToExtraClaim(t *testing.T) {
	sp, up := newTestProvider()
	if !sp.EnsureRoom(4096, allocT0) {
		t.Fatal("initial claim failed")
	}
	// Occupy the sibling of every provider holding upstream to block
	// doubling.
	for _, h := range sp.Holdings() {
		sib := h.Prefix.Sibling()
		if up.CanClaim(sib) {
			up.Claim(sib)
		}
	}
	// Fill the current space with child claims until EnsureRoom must
	// expand again.
	child := sp.ChildLedger()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		if !sp.EnsureRoom(1024, allocT0) {
			t.Fatalf("EnsureRoom failed at %d", i)
		}
		p, ok := child.PickClaim(22, rng)
		if !ok || !child.Claim(p) {
			t.Fatalf("child claim %d failed", i)
		}
	}
	if sp.Stats.ExtraClaims < 2 {
		t.Fatalf("expected extra claims when doubling is blocked, got stats %+v", sp.Stats)
	}
}

func TestProviderTickReleasesEmptyExpiredHoldings(t *testing.T) {
	sp, up := newTestProvider()
	sp.EnsureRoom(256, allocT0)
	before := len(up.Claims())
	if before == 0 {
		t.Fatal("setup: provider should hold a claim")
	}
	sp.Tick(allocT0.Add(31 * 24 * time.Hour))
	if len(up.Claims()) != before-1 && len(up.Claims()) != 0 {
		t.Fatalf("expired empty holding not released: %v", up.Claims())
	}
	if len(sp.Holdings()) != 0 {
		t.Fatal("holdings should be gone")
	}
	if len(sp.ChildLedger().Spaces()) != 0 {
		t.Fatal("child spaces must shrink with the holdings")
	}
}

func TestProviderTickRenewsOccupiedHoldings(t *testing.T) {
	sp, _ := newTestProvider()
	sp.EnsureRoom(256, allocT0)
	child := sp.ChildLedger()
	p, _ := child.PickClaim(24, rand.New(rand.NewSource(1)))
	child.Claim(p)
	sp.Tick(allocT0.Add(31 * 24 * time.Hour))
	if len(sp.Holdings()) == 0 {
		t.Fatal("occupied holding must be renewed")
	}
	if !sp.Holdings()[0].Expires.After(allocT0.Add(31 * 24 * time.Hour)) {
		t.Fatal("renewal should extend expiry")
	}
}

func TestShedIdle(t *testing.T) {
	sp, _ := newTestProvider()
	// Give the provider three active holdings by repeated blocked growth.
	sp.holdings = append(sp.holdings,
		&Holding{Prefix: addr.MustParsePrefix("225.0.0.0/24"), Active: true, Expires: allocT0.Add(time.Hour)},
		&Holding{Prefix: addr.MustParsePrefix("226.0.0.0/24"), Active: true, Expires: allocT0.Add(time.Hour)},
		&Holding{Prefix: addr.MustParsePrefix("227.0.0.0/24"), Active: true, Expires: allocT0.Add(time.Hour)},
	)
	sp.syncSpaces()
	// One holding has a child claim; the others are idle.
	sp.ChildLedger().Claim(addr.MustParsePrefix("225.0.0.0/26"))
	sp.ShedIdle()
	active := 0
	occupiedStillActive := false
	for _, h := range sp.Holdings() {
		if h.Active {
			active++
			if h.Prefix.String() == "225.0.0.0/24" {
				occupiedStillActive = true
			}
		}
	}
	if active != sp.strat.MaxActivePrefixes {
		t.Fatalf("active after shed = %d, want %d", active, sp.strat.MaxActivePrefixes)
	}
	if !occupiedStillActive {
		t.Fatal("the occupied holding must stay active")
	}
}

func TestTwoProvidersShareGlobalSpaceDisjointly(t *testing.T) {
	up := NewLedger(addr.MulticastSpace)
	a := NewSpaceProvider(DefaultStrategy(), up, rand.New(rand.NewSource(1)))
	b := NewSpaceProvider(DefaultStrategy(), up, rand.New(rand.NewSource(2)))
	for i := 0; i < 10; i++ {
		if !a.EnsureRoom(4096, allocT0) || !b.EnsureRoom(4096, allocT0) {
			t.Fatal("EnsureRoom failed")
		}
		a.ChildLedger().Claim(mustPick(a.ChildLedger(), 20))
		b.ChildLedger().Claim(mustPick(b.ChildLedger(), 20))
	}
	for _, ha := range a.Holdings() {
		for _, hb := range b.Holdings() {
			if ha.Prefix.Overlaps(hb.Prefix) {
				t.Fatalf("providers overlap: %v vs %v", ha.Prefix, hb.Prefix)
			}
		}
	}
}

func mustPick(l *Ledger, maskLen int) addr.Prefix {
	p, ok := l.PickClaim(maskLen, rand.New(rand.NewSource(9)))
	if !ok {
		panic("pick failed")
	}
	return p
}
