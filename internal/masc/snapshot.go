package masc

import (
	"sort"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
)

// Node restart survival. A MASC node's claim state is expensive: a pending
// claim has been listening for collisions for up to 48 hours, and a lost
// waiting period means lost time for the whole domain (§4.1). Snapshot
// captures the durable protocol state — holdings with their absolute
// expiries, pending claims with the absolute end of their waiting periods,
// and both ledger views — and Restore rebuilds it on a freshly configured
// node, re-arming every timer with its remaining duration. A restarted
// allocator therefore resumes mid-wait instead of starting its claims
// over.

// PendingSnapshot is one in-flight claim's durable state.
type PendingSnapshot struct {
	Prefix   addr.Prefix
	ClaimID  uint64
	Lifetime time.Duration
	// Size and Attempts restore the retry bookkeeping (original request
	// size, attempts consumed so far).
	Size     uint64
	Attempts int
	// MatureAt is the absolute instant the waiting period ends.
	MatureAt time.Time
}

// Snapshot is a Node's durable claim state, with all slices in canonical
// (sorted) order so equal states snapshot identically.
type Snapshot struct {
	Holdings    []Holding
	Pending     []PendingSnapshot
	NextClaimID uint64
	// Spaces is the claimable space (parent-advertised, or 224/4).
	Spaces []addr.Prefix
	// Heard is the node's view of taken space: sibling claims, own
	// pending claims, and own holdings.
	Heard []addr.Prefix
	// ChildClaims is the recorded set of claims by child domains.
	ChildClaims []addr.Prefix
}

// Snapshot captures the node's claim state for a later Restore.
func (n *Node) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := Snapshot{NextClaimID: n.nextClaimID}
	for _, h := range n.holdings {
		s.Holdings = append(s.Holdings, *h)
	}
	sort.Slice(s.Holdings, func(i, j int) bool {
		return addr.Compare(s.Holdings[i].Prefix, s.Holdings[j].Prefix) < 0
	})
	for p, pc := range n.pending {
		s.Pending = append(s.Pending, PendingSnapshot{
			Prefix:   p,
			ClaimID:  pc.claimID,
			Lifetime: pc.life,
			Size:     pc.size,
			Attempts: pc.attempts,
			MatureAt: pc.matureAt,
		})
	}
	sort.Slice(s.Pending, func(i, j int) bool {
		return addr.Compare(s.Pending[i].Prefix, s.Pending[j].Prefix) < 0
	})
	s.Spaces = n.heard.Spaces()
	s.Heard = n.heard.Claims()
	s.ChildClaims = n.childClaims.Claims()
	return s
}

// Restore loads a snapshot into a freshly configured node, modeling a
// restart that kept its durable allocation state: holdings come back with
// their original expiries (and re-armed lifetime timers), pending claims
// resume their waiting periods with the time already served still
// counting, and the ledgers are rebuilt so future claim selection avoids
// everything the pre-crash node knew was taken. Emits one masc.restored
// event per restored node.
//
// Restore replaces any claim state the node already holds; peerings
// (parent, siblings, children) are configuration, not state, and must be
// re-established by the owner as on first boot.
func (n *Node) Restore(s Snapshot) {
	now := n.cfg.Clock.Now()
	n.mu.Lock()
	n.heard = NewLedger(s.Spaces...)
	for _, p := range s.Heard {
		n.heard.Record(p)
	}
	n.childClaims = NewLedger()
	for _, p := range s.ChildClaims {
		n.childClaims.Record(p)
	}
	n.nextClaimID = s.NextClaimID
	n.holdings = nil
	for i := range s.Holdings {
		h := s.Holdings[i]
		n.holdings = append(n.holdings, &h)
		life := h.Expires.Sub(now)
		if life < 0 {
			life = 0
		}
		n.scheduleExpiry(h.Prefix, life)
	}
	n.pending = map[addr.Prefix]*pendingClaim{}
	for _, ps := range s.Pending {
		pc := &pendingClaim{
			prefix:   ps.Prefix,
			claimID:  ps.ClaimID,
			life:     ps.Lifetime,
			size:     ps.Size,
			attempts: ps.Attempts,
			matureAt: ps.MatureAt,
		}
		remaining := ps.MatureAt.Sub(now)
		if remaining < 0 {
			remaining = 0
		}
		p := ps.Prefix
		pc.timer = n.cfg.Clock.AfterFunc(remaining, func() { n.claimMatured(p) })
		n.pending[ps.Prefix] = pc
	}
	n.eventLocked(obs.MASCRestored, addr.Prefix{})
	_, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(nil, evs)
}
