package masc

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// restart replaces domain d's node in the net with a fresh one restored
// from snap — the node crashed and came back with its durable state.
func (nn *nodeNet) restart(d wire.DomainID, topLevel bool, seed int64, snap Snapshot) *Node {
	if old := nn.nodes[d]; old != nil {
		old.Shutdown()
	}
	delete(nn.nodes, d)
	n := nn.add(d, topLevel, seed)
	n.Restore(snap)
	return n
}

func TestSnapshotRestoreMidWaitClaimStillMatures(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	if !a.RequestSpace(65536, 30*24*time.Hour) {
		t.Fatal("claim selection failed")
	}
	// Half the waiting period passes, then the node restarts.
	nn.run(24 * time.Hour)
	snap := a.Snapshot()
	if len(snap.Pending) != 1 {
		t.Fatalf("pending snapshot = %v, want 1 claim", snap.Pending)
	}
	a2 := nn.restart(1, true, 1, snap)

	// The time already served counts: the claim matures after the
	// REMAINING 24 hours, not a fresh 48.
	nn.run(24*time.Hour + time.Second)
	if len(nn.won[1]) != 1 {
		t.Fatalf("restored claim did not mature on schedule: won=%v", nn.won[1])
	}
	if len(a2.Holdings()) != 1 {
		t.Fatal("holding missing after restored claim matured")
	}
}

func TestSnapshotRestoreKeepsHoldings(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	a.RequestSpace(65536, 30*24*time.Hour)
	nn.run(49 * time.Hour)
	held := a.Holdings()
	if len(held) != 1 {
		t.Fatalf("setup: holdings = %v", held)
	}

	a2 := nn.restart(1, true, 1, a.Snapshot())
	got := a2.Holdings()
	if len(got) != 1 || got[0].Prefix != held[0].Prefix || !got[0].Expires.Equal(held[0].Expires) {
		t.Fatalf("restored holdings = %v, want %v", got, held)
	}
	// The expiry timer survives the restart: the holding lapses at its
	// original lifetime, announcing the release.
	nn.run(31 * 24 * time.Hour)
	if len(a2.Holdings()) != 0 {
		t.Fatal("restored holding did not expire at its original lifetime")
	}
	if len(nn.lost[1]) != 1 {
		t.Fatalf("lost = %v, want the expired range", nn.lost[1])
	}
}

func TestSnapshotRestoreKeepsSiblingView(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	b := nn.add(2, true, 2)
	a.AddSibling(2)
	b.AddSibling(1)
	// B claims; A hears it. After A restarts, its next claim must still
	// avoid B's (pending) range.
	if !b.RequestSpace(1<<16, 30*24*time.Hour) {
		t.Fatal("sibling claim failed")
	}
	snap := a.Snapshot()
	if len(snap.Heard) == 0 {
		t.Fatal("sibling claim not in snapshot")
	}
	a2 := nn.restart(1, true, 1, snap)
	a2.AddSibling(2)
	if !a2.RequestSpace(1<<16, 30*24*time.Hour) {
		t.Fatal("post-restart claim failed")
	}
	nn.run(49 * time.Hour)
	if len(nn.won[1]) != 1 || len(nn.won[2]) != 1 {
		t.Fatalf("won: a=%v b=%v", nn.won[1], nn.won[2])
	}
	if nn.won[1][0].Overlaps(nn.won[2][0]) {
		t.Fatalf("restored node forgot sibling claim: %v overlaps %v", nn.won[1][0], nn.won[2][0])
	}
}

func TestRestoreEmitsObservableEvent(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	ob := obs.NewObserver()
	n := NewNode(NodeConfig{
		Domain:   1,
		Clock:    clk,
		Rand:     rand.New(rand.NewSource(1)),
		TopLevel: true,
		Obs:      ob,
	})
	n.RequestSpace(1<<12, 24*time.Hour)
	n2 := NewNode(NodeConfig{
		Domain:   1,
		Clock:    clk,
		Rand:     rand.New(rand.NewSource(1)),
		TopLevel: true,
		Obs:      ob,
	})
	n2.Restore(n.Snapshot())
	if ob.Snapshot().Total("masc.restored") != 1 {
		t.Fatalf("masc.restored missing:\n%s", ob.Snapshot())
	}
}

func TestSnapshotIsCanonical(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 7)
	a.RequestSpace(1<<12, 30*24*time.Hour)
	a.RequestSpace(1<<10, 30*24*time.Hour)
	nn.run(49 * time.Hour)
	s1, s2 := a.Snapshot(), a.Snapshot()
	for i := range s1.Pending {
		if s1.Pending[i] != s2.Pending[i] {
			t.Fatal("pending order not canonical")
		}
	}
	for i := range s1.Holdings {
		if s1.Holdings[i] != s2.Holdings[i] {
			t.Fatal("holdings order not canonical")
		}
	}
	for i := range s1.Heard {
		if s1.Heard[i] != s2.Heard[i] {
			t.Fatal("heard order not canonical")
		}
	}
	_ = addr.Prefix{}
}
