// Package masc implements the Multicast Address-Set Claim protocol
// (paper §4): hierarchical, dynamic allocation of multicast address ranges
// to domains using a listen-and-claim-with-collision-detection mechanism.
//
// The package is layered:
//
//   - Ledger records the claims a domain has heard (its own, its siblings',
//     its children's) within the parent's address space and implements the
//     claim-selection algorithm of §4.3.3: find the free prefixes of
//     shortest mask length, pick one uniformly at random, and claim the
//     first sub-prefix of the desired size inside it.
//   - BlockAllocator is the per-domain allocation engine a leaf (customer)
//     domain runs: it satisfies MAAS block requests out of the domain's
//     claimed prefixes and expands them with the paper's rules (75 %
//     target occupancy, at most two active prefixes, prefix doubling,
//     just-sufficient additional claims, replacement claims).
//   - SpaceProvider is the engine a parent (provider) domain runs: it
//     claims space (from its own parent or, for a top-level domain, from
//     all of 224/4) sized to its children's aggregate claims.
//   - Node is the message-driven claim-collide state machine run between
//     domains: claims propagate to parent and siblings, a waiting period
//     spans network partitions, collisions force re-selection, and won
//     ranges are handed to BGP as group routes.
package masc

import (
	"math/rand"
	"sort"

	"mascbgmp/internal/addr"
)

// Ledger tracks which prefixes are taken within a set of parent address
// spaces. In the real protocol every domain keeps its own ledger built from
// heard claims; simulations without partitions share one ledger per
// sibling group. Ledger is not safe for concurrent use.
type Ledger struct {
	spaces []addr.Prefix
	taken  *addr.Set
}

// NewLedger returns a ledger over the given claimable spaces.
func NewLedger(spaces ...addr.Prefix) *Ledger {
	return &Ledger{spaces: append([]addr.Prefix(nil), spaces...), taken: addr.NewSet()}
}

// SetSpaces replaces the claimable spaces (a parent domain's ranges change
// as it expands). Existing claims are retained even if they fall outside
// the new spaces; the owner decides when to retract them.
func (l *Ledger) SetSpaces(spaces []addr.Prefix) {
	l.spaces = append(l.spaces[:0:0], spaces...)
}

// Spaces returns the claimable spaces.
func (l *Ledger) Spaces() []addr.Prefix { return append([]addr.Prefix(nil), l.spaces...) }

// Taken returns the total number of addresses claimed within the spaces.
func (l *Ledger) Taken() uint64 {
	var n uint64
	for _, p := range l.taken.Prefixes() {
		for _, s := range l.spaces {
			if s.ContainsPrefix(p) {
				n += p.Size()
				break
			}
		}
	}
	return n
}

// TakenWithin returns the number of claimed addresses inside p.
func (l *Ledger) TakenWithin(p addr.Prefix) uint64 {
	var n uint64
	for _, q := range l.taken.Prefixes() {
		if p.ContainsPrefix(q) {
			n += q.Size()
		} else if q.ContainsPrefix(p) {
			n += p.Size()
		}
	}
	return n
}

// Capacity returns the total number of addresses in the spaces.
func (l *Ledger) Capacity() uint64 {
	var n uint64
	for _, s := range l.spaces {
		n += s.Size()
	}
	return n
}

// CanClaim reports whether p lies inside a space and overlaps no existing
// claim.
func (l *Ledger) CanClaim(p addr.Prefix) bool {
	inSpace := false
	for _, s := range l.spaces {
		if s.ContainsPrefix(p) {
			inSpace = true
			break
		}
	}
	return inSpace && !l.taken.OverlapsPrefix(p)
}

// Claim records p as taken, reporting success. Claims that overlap existing
// claims or fall outside every space fail.
func (l *Ledger) Claim(p addr.Prefix) bool {
	if !l.CanClaim(p) {
		return false
	}
	return l.taken.Add(p)
}

// Record marks p taken without the space check — used for heard sibling
// claims that may lie outside the local view of the parent's space.
func (l *Ledger) Record(p addr.Prefix) { l.taken.Add(p) }

// Release frees an exact previously claimed prefix.
func (l *Ledger) Release(p addr.Prefix) bool { return l.taken.Remove(p) }

// Claims returns the taken prefixes in sorted order.
func (l *Ledger) Claims() []addr.Prefix { return l.taken.Prefixes() }

// PickClaim runs the §4.3.3 claim-selection algorithm: among the free
// prefixes of the shortest mask length across all spaces, choose one
// uniformly at random and return its first sub-prefix of the desired mask
// length. When the desired prefix (maskLen) is larger than the largest free
// block, the largest free block itself is returned (best effort). ok is
// false when every space is fully taken.
//
// The returned prefix is NOT claimed; call Claim to record it.
func (l *Ledger) PickClaim(maskLen int, rng *rand.Rand) (addr.Prefix, bool) {
	var candidates []addr.Prefix
	best := 33
	for _, s := range l.spaces {
		free, ok := l.taken.ShortestFree(s)
		if !ok {
			continue
		}
		if free[0].Len < best {
			best = free[0].Len
			candidates = candidates[:0]
		}
		if free[0].Len == best {
			candidates = append(candidates, free...)
		}
	}
	if len(candidates) == 0 {
		return addr.Prefix{}, false
	}
	sort.Slice(candidates, func(i, j int) bool { return addr.Compare(candidates[i], candidates[j]) < 0 })
	chosen := candidates[rng.Intn(len(candidates))]
	if maskLen < chosen.Len {
		// Demand exceeds the largest free block: take the whole block.
		return chosen, true
	}
	sub, err := chosen.FirstSub(maskLen)
	if err != nil {
		return addr.Prefix{}, false
	}
	return sub, true
}

// CanDouble reports whether claim p can expand into its covering parent
// prefix: the sibling half must be entirely free and the doubled prefix
// must still lie inside a space.
func (l *Ledger) CanDouble(p addr.Prefix) bool {
	d, err := p.Double()
	if err != nil {
		return false
	}
	inSpace := false
	for _, s := range l.spaces {
		if s.ContainsPrefix(d) {
			inSpace = true
			break
		}
	}
	if !inSpace {
		return false
	}
	sib := p.Sibling()
	for _, q := range l.taken.Prefixes() {
		if q != p && q.Overlaps(sib) {
			return false
		}
		if q != p && q.Overlaps(d) && !p.ContainsPrefix(q) {
			return false
		}
	}
	return true
}

// Double atomically replaces claim p with its doubled parent prefix,
// reporting success.
func (l *Ledger) Double(p addr.Prefix) (addr.Prefix, bool) {
	if !l.CanDouble(p) {
		return addr.Prefix{}, false
	}
	d, err := p.Double()
	if err != nil {
		return addr.Prefix{}, false
	}
	l.taken.Remove(p)
	l.taken.Add(d)
	return d, true
}
