package masc

import (
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// SpaceProvider is the allocation engine of a provider (parent) domain: it
// claims address ranges from its own parent space — the global 224/4 for a
// top-level domain — sized so its children's claims fit below the target
// occupancy, and exposes its ranges as the space its children claim from.
//
// "The parent domain keeps track of how much of its current space has been
// allocated to itself and to its children. It claims more address space
// when the utilization exceeds a given threshold." (paper §4.1)
type SpaceProvider struct {
	strat    Strategy
	up       *Ledger // the space we claim from (parent's or global)
	down     *Ledger // the space our children claim from (our holdings)
	rng      *rand.Rand
	holdings []*Holding

	obs       *obs.Observer
	obsDomain wire.DomainID

	// Stats counts expansion events.
	Stats AllocStats
}

// SetObserver routes the provider's allocation events (claims, collisions,
// wins, renewals, releases, and the mirrored BGP route injections) to o,
// scoped to domain. Nil disables observation.
func (sp *SpaceProvider) SetObserver(o *obs.Observer, domain wire.DomainID) {
	sp.obs, sp.obsDomain = o, domain
}

func (sp *SpaceProvider) emit(kind obs.Kind, p addr.Prefix) {
	if sp.obs != nil {
		sp.obs.Emit(obs.Event{Kind: kind, Domain: sp.obsDomain, Prefix: p})
	}
}

// NewSpaceProvider returns a provider claiming from up. Children claim from
// the provider's ChildLedger. Providers use relaxed doubling regardless of
// strat.RelaxedDoubling (see Strategy).
func NewSpaceProvider(strat Strategy, up *Ledger, rng *rand.Rand) *SpaceProvider {
	strat.RelaxedDoubling = true
	return &SpaceProvider{strat: strat, up: up, down: NewLedger(), rng: rng}
}

// ChildLedger returns the ledger the provider's children claim from. Its
// spaces track the provider's holdings.
func (sp *SpaceProvider) ChildLedger() *Ledger { return sp.down }

// Holdings returns copies of the provider's claimed ranges.
func (sp *SpaceProvider) Holdings() []Holding {
	out := make([]Holding, 0, len(sp.holdings))
	for _, h := range sp.holdings {
		out = append(out, *h)
	}
	return out
}

// Capacity returns the total size of the provider's ranges.
func (sp *SpaceProvider) Capacity() uint64 {
	var n uint64
	for _, h := range sp.holdings {
		n += h.Prefix.Size()
	}
	return n
}

// ChildDemand returns the number of addresses claimed by children within
// the provider's ranges.
func (sp *SpaceProvider) ChildDemand() uint64 { return sp.down.Taken() }

// Utilization returns ChildDemand/Capacity, or 0 with no holdings.
func (sp *SpaceProvider) Utilization() float64 {
	c := sp.Capacity()
	if c == 0 {
		return 0
	}
	return float64(sp.ChildDemand()) / float64(c)
}

// EnsureRoom expands the provider's space until a child claim of `need`
// addresses fits with overall utilization at or below target. It reports
// whether the headroom now exists. Call it before a child claim when the
// child's claim attempt failed or would push utilization over target.
func (sp *SpaceProvider) EnsureRoom(need uint64, now time.Time) bool {
	for tries := 0; tries < 34; tries++ {
		if sp.roomFor(need) {
			return true
		}
		if !sp.expandOnce(need, now) {
			return sp.roomFor(need)
		}
	}
	return sp.roomFor(need)
}

// roomFor reports whether a contiguous free block of `need` addresses
// exists in the child ledger and the post-claim utilization meets target.
func (sp *SpaceProvider) roomFor(need uint64) bool {
	maskLen := addr.MaskLenFor(need)
	if maskLen < 0 {
		return false
	}
	fits := false
	for _, h := range sp.holdings {
		free, ok := sp.down.taken.ShortestFree(h.Prefix)
		if ok && free[0].Len <= maskLen {
			fits = true
			break
		}
	}
	if !fits {
		return false
	}
	cap := sp.Capacity()
	if cap == 0 {
		return false
	}
	return float64(sp.ChildDemand()+need) <= sp.strat.TargetOccupancy*float64(cap)
}

// expandOnce performs one expansion step: double the smallest holding if
// the up-ledger allows, otherwise claim an additional just-sufficient
// prefix. It reports whether anything changed.
func (sp *SpaceProvider) expandOnce(need uint64, now time.Time) bool {
	// Grow enough for the pending child claim plus target headroom.
	var smallest *Holding
	for _, h := range sp.holdings {
		if !h.Active || !sp.up.CanDouble(h.Prefix) {
			continue
		}
		if smallest == nil || h.Prefix.Size() < smallest.Prefix.Size() {
			smallest = h
		}
	}
	if smallest != nil {
		if d, ok := sp.up.Double(smallest.Prefix); ok {
			old := smallest.Prefix
			smallest.Prefix = d
			sp.Stats.Doublings++
			sp.syncSpaces()
			// A doubling is a claim that succeeds immediately in the
			// engine model; the route swap mirrors BGP re-injection.
			sp.emit(obs.MASCClaim, d)
			sp.emit(obs.MASCWon, d)
			sp.emit(obs.BGPWithdraw, old)
			sp.emit(obs.BGPAnnounce, d)
			return true
		}
	}
	// Claim an additional prefix sized for the need plus headroom.
	want := need
	if sp.strat.TargetOccupancy > 0 {
		want = uint64(float64(need)/sp.strat.TargetOccupancy) + 1
	}
	maskLen := addr.MaskLenFor(want)
	if maskLen < 0 {
		return false
	}
	p, ok := sp.up.PickClaim(maskLen, sp.rng)
	if !ok || !sp.up.Claim(p) {
		sp.emit(obs.MASCCollision, p)
		return false
	}
	sp.holdings = append(sp.holdings, &Holding{
		Prefix:  p,
		Active:  true,
		Expires: now.Add(sp.strat.ClaimLifetime),
	})
	sp.Stats.ExtraClaims++
	sp.syncSpaces()
	sp.emit(obs.MASCClaim, p)
	sp.emit(obs.MASCWon, p)
	sp.emit(obs.BGPAnnounce, p)
	return true
}

// Tick renews or releases holdings as of now: holdings past expiry with no
// child claims inside are released; occupied ones are renewed.
func (sp *SpaceProvider) Tick(now time.Time) {
	kept := sp.holdings[:0]
	for _, h := range sp.holdings {
		if !h.Expires.After(now) {
			if sp.down.TakenWithin(h.Prefix) == 0 {
				sp.up.Release(h.Prefix)
				sp.Stats.Releases++
				sp.emit(obs.MASCReleased, h.Prefix)
				sp.emit(obs.BGPWithdraw, h.Prefix)
				continue
			}
			h.Expires = now.Add(sp.strat.ClaimLifetime)
			sp.emit(obs.MASCRenewed, h.Prefix)
		}
		kept = append(kept, h)
	}
	sp.holdings = kept
	sp.syncSpaces()
}

// ShedIdle marks holdings with no child claims inactive when the provider
// holds more than MaxActivePrefixes, letting them expire — the recycling
// that lets aggregation recover after the startup transient.
func (sp *SpaceProvider) ShedIdle() {
	active := 0
	for _, h := range sp.holdings {
		if h.Active {
			active++
		}
	}
	for _, h := range sp.holdings {
		if active <= sp.strat.MaxActivePrefixes {
			return
		}
		if h.Active && sp.down.TakenWithin(h.Prefix) == 0 {
			h.Active = false
			active--
		}
	}
}

func (sp *SpaceProvider) syncSpaces() {
	spaces := make([]addr.Prefix, 0, len(sp.holdings))
	for _, h := range sp.holdings {
		if h.Active {
			spaces = append(spaces, h.Prefix)
		}
	}
	sp.down.SetSpaces(spaces)
}

// AdvertisedPrefixes returns the provider's prefixes as they would be
// injected into BGP after CIDR aggregation — the per-domain contribution to
// the G-RIB.
func (sp *SpaceProvider) AdvertisedPrefixes() []addr.Prefix {
	s := addr.NewSet()
	for _, h := range sp.holdings {
		s.Add(h.Prefix)
	}
	return s.Aggregated().Prefixes()
}
