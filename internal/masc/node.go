package masc

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// NodeConfig configures a claim-collide Node.
type NodeConfig struct {
	// Domain is the MASC domain this node allocates for.
	Domain wire.DomainID
	// Clock drives the waiting period and lifetimes.
	Clock simclock.Clock
	// Rand drives claim selection; must not be nil.
	Rand *rand.Rand
	// Strategy tunes claim sizing; zero value replaced by DefaultStrategy.
	Strategy Strategy
	// WaitPeriod is how long a claim listens for collisions before it is
	// won — 48 hours in the paper, shortened in tests via the sim clock.
	WaitPeriod time.Duration
	// RetryDelay spaces successive claim attempts after a collision.
	// Defaults to one hour.
	RetryDelay time.Duration
	// MaxAttempts caps claim retries for one RequestSpace call; defaults
	// to 16. In the worst case of n simultaneous claimers the paper notes
	// the nth domain may need up to n attempts.
	MaxAttempts int
	// AutoRenew keeps won ranges alive: shortly before a holding's
	// lifetime expires it is renewed for another lifetime and
	// re-announced (§4.3.1: "the address range claimed by the domain
	// becomes invalid once the lifetime expires unless the request is
	// renewed before expiration"). Disabled, holdings expire and are
	// given up.
	AutoRenew bool
	// OnRenewed runs when a holding's lifetime is extended, so the owner
	// can refresh the BGP route expiry and the MAAS range.
	OnRenewed func(p addr.Prefix, expires time.Time)
	// TopLevel marks a domain with no MASC parent: it claims from the
	// entire multicast space against its top-level siblings (§4.1).
	TopLevel bool
	// MaxClaim, when nonzero, is the largest prefix size (in addresses) a
	// parent tolerates from this node's children before sending explicit
	// CollideTooLarge collisions — the §7 fair-use disincentive.
	MaxClaim uint64
	// Send transmits a MASC message to another domain's node. Called
	// without internal locks held.
	Send func(to wire.DomainID, msg wire.Message)
	// Obs observes claim-collide protocol activity (claims announced,
	// collisions suffered, ranges won/expired/renewed/released), scoped
	// by Domain. Nil disables observation.
	Obs *obs.Observer
	// OnWon runs when a claim survives its waiting period, with the won
	// prefix and its expiry; the owner injects it into BGP and hands it
	// to the MAASes. Called without locks held.
	OnWon func(p addr.Prefix, expires time.Time)
	// OnLost runs when a previously won prefix is given up (released or
	// superseded); the owner withdraws the BGP route.
	OnLost func(p addr.Prefix)
}

// Node is the message-driven MASC protocol engine for one domain. It
// implements the claim-collide mechanism of §4.1: claims go to the parent
// and all (directly connected) siblings; any of them may answer with a
// collision during the waiting period; surviving claims become allocations.
//
// Node is safe for concurrent use.
type Node struct {
	cfg NodeConfig

	mu        sync.Mutex
	dead      bool                   // guarded by mu
	parent    wire.DomainID          // guarded by mu
	hasParent bool                   // guarded by mu
	siblings  map[wire.DomainID]bool // guarded by mu
	children  map[wire.DomainID]bool // guarded by mu
	// heard is this node's view of claimed space: parent's advertised
	// ranges define the spaces; sibling claims and own holdings are
	// recorded as taken. guarded by mu
	heard *Ledger
	// childClaims tracks claims by children inside our space.
	// guarded by mu
	childClaims *Ledger
	holdings    []*Holding                    // guarded by mu
	pending     map[addr.Prefix]*pendingClaim // guarded by mu
	nextClaimID uint64                        // guarded by mu
	outbox      []outMsg                      // guarded by mu
	// evbuf collects events under the lock; they are emitted with the
	// outbox after release so observers may call back into the node.
	// guarded by mu
	evbuf []obs.Event
}

type pendingClaim struct {
	prefix   addr.Prefix
	claimID  uint64
	life     time.Duration
	size     uint64 // original request, for retry
	attempts int
	// matureAt is the absolute end of the waiting period, kept so a
	// snapshot can re-arm the maturity timer with the remaining wait.
	matureAt time.Time
	timer    simclock.Timer
	lost     bool
	// span traces the claim round from announcement to win/abandon; the
	// announced Claim messages carry its context to siblings and parent.
	span obs.Span
}

// NewNode returns a Node. For top-level domains the claimable space is
// 224/4; otherwise it is empty until the parent's RangeAdvert arrives.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Strategy == (Strategy{}) {
		cfg.Strategy = DefaultStrategy()
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.WaitPeriod == 0 {
		cfg.WaitPeriod = 48 * time.Hour
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = time.Hour
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 16
	}
	heard := NewLedger()
	if cfg.TopLevel {
		heard.SetSpaces([]addr.Prefix{addr.MulticastSpace})
	}
	return &Node{
		cfg:         cfg,
		siblings:    map[wire.DomainID]bool{},
		children:    map[wire.DomainID]bool{},
		heard:       heard,
		childClaims: NewLedger(),
		pending:     map[addr.Prefix]*pendingClaim{},
	}
}

// Shutdown models the node's process dying: pending-claim timers stop and
// every later timer or message callback becomes a no-op. A successor node
// (usually built from a Snapshot via Restore) takes over the domain's
// allocation duties. Irreversible.
func (n *Node) Shutdown() {
	n.mu.Lock()
	n.dead = true
	for _, pc := range n.pending {
		if pc.timer != nil {
			pc.timer.Stop()
		}
	}
	n.mu.Unlock()
}

// SetParent configures the node's MASC parent (chosen among its providers,
// §4.1). Ignored for top-level nodes.
func (n *Node) SetParent(d wire.DomainID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.TopLevel {
		return
	}
	n.parent = d
	n.hasParent = true
}

// AddSibling registers a sibling domain (same parent, or another top-level
// domain) to which claims are propagated.
func (n *Node) AddSibling(d wire.DomainID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d != n.cfg.Domain {
		n.siblings[d] = true
	}
}

// AddChild registers a child domain; the node advertises its ranges to
// children and arbitrates their claims.
func (n *Node) AddChild(d wire.DomainID) {
	n.mu.Lock()
	ranges := n.rangesLocked()
	n.children[d] = true
	n.mu.Unlock()
	if len(ranges) > 0 {
		n.send(d, &wire.RangeAdvert{Owner: n.cfg.Domain, Ranges: ranges})
	}
}

// Holdings returns copies of the node's won allocations.
func (n *Node) Holdings() []Holding {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Holding, 0, len(n.holdings))
	for _, h := range n.holdings {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return addr.Compare(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// RequestSpace starts the claim process for a range of at least `size`
// addresses. The result arrives asynchronously through OnWon after the
// waiting period, or the claim silently retries on collision. It reports
// whether a claim could be selected and sent.
func (n *Node) RequestSpace(size uint64, lifetime time.Duration) bool {
	n.mu.Lock()
	ok := n.claimLocked(size, lifetime, 0)
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
	return ok
}

// outbox collects messages to send after the lock is released.
type outMsg struct {
	to  wire.DomainID
	msg wire.Message
}

// claimLocked selects and announces a claim. Caller holds n.mu.
func (n *Node) claimLocked(size uint64, lifetime time.Duration, attempts int) bool {
	if attempts >= n.cfg.MaxAttempts {
		return false
	}
	maskLen := addr.MaskLenFor(size)
	if maskLen < 0 {
		return false
	}
	p, ok := n.heard.PickClaim(maskLen, n.cfg.Rand)
	if !ok {
		return false
	}
	if !n.heard.Claim(p) {
		return false
	}
	n.nextClaimID++
	pc := &pendingClaim{
		prefix: p, claimID: n.nextClaimID, life: lifetime, size: size, attempts: attempts,
		matureAt: n.cfg.Clock.Now().Add(n.cfg.WaitPeriod),
	}
	n.pending[p] = pc
	pc.span = n.cfg.Obs.Tracer().Begin(obs.SpanClaim, obs.Event{Domain: n.cfg.Domain, Prefix: p})
	claim := &wire.Claim{
		Claimer:  n.cfg.Domain,
		ClaimID:  pc.claimID,
		Prefix:   p,
		LifeSecs: uint32(lifetime / time.Second),
	}
	wire.Stamp(claim, pc.span.Context())
	for _, s := range n.sortedSiblingsLocked() {
		n.outbox = append(n.outbox, outMsg{s, claim})
	}
	if n.hasParent {
		n.outbox = append(n.outbox, outMsg{n.parent, claim})
	}
	pc.timer = n.cfg.Clock.AfterFunc(n.cfg.WaitPeriod, func() { n.claimMatured(p) })
	n.eventLocked(obs.MASCClaim, p)
	return true
}

// claimMatured runs when the waiting period for a claim elapses without a
// collision: the range is won.
func (n *Node) claimMatured(p addr.Prefix) {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	pc, ok := n.pending[p]
	if !ok || pc.lost {
		n.mu.Unlock()
		return
	}
	delete(n.pending, p)
	expires := n.cfg.Clock.Now().Add(pc.life)
	n.holdings = append(n.holdings, &Holding{Prefix: p, Active: true, Expires: expires})
	n.scheduleExpiry(p, pc.life)
	n.eventLocked(obs.MASCWon, p)
	n.observeClaimConverge(pc)
	ranges := n.rangesLocked()
	children := n.sortedChildrenLocked()
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
	// Advertise the grown space to children.
	adv := &wire.RangeAdvert{Owner: n.cfg.Domain, Ranges: ranges}
	for _, c := range children {
		n.send(c, adv)
	}
	if n.cfg.OnWon != nil {
		n.cfg.OnWon(p, expires)
	}
}

// Release gives up a held range before expiry, informing parent, siblings,
// and children.
func (n *Node) Release(p addr.Prefix) {
	n.mu.Lock()
	found := false
	for i, h := range n.holdings {
		if h.Prefix == p {
			n.holdings = append(n.holdings[:i], n.holdings[i+1:]...)
			found = true
			break
		}
	}
	if found {
		n.heard.Release(p)
		rel := &wire.Release{Claimer: n.cfg.Domain, Prefix: p}
		for _, s := range n.sortedSiblingsLocked() {
			n.outbox = append(n.outbox, outMsg{s, rel})
		}
		if n.hasParent {
			n.outbox = append(n.outbox, outMsg{n.parent, rel})
		}
		n.eventLocked(obs.MASCReleased, p)
	}
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
	if found && n.cfg.OnLost != nil {
		n.cfg.OnLost(p)
	}
}

// HandleMessage processes a MASC message from another domain.
func (n *Node) HandleMessage(from wire.DomainID, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.RangeAdvert:
		n.handleRangeAdvert(from, m)
	case *wire.Claim:
		n.handleClaim(from, m)
	case *wire.Collision:
		n.handleCollision(from, m)
	case *wire.Release:
		n.handleRelease(from, m)
	}
}

func (n *Node) handleRangeAdvert(from wire.DomainID, m *wire.RangeAdvert) {
	n.mu.Lock()
	if !n.cfg.TopLevel && n.hasParent && from == n.parent {
		spaces := make([]addr.Prefix, 0, len(m.Ranges))
		for _, rl := range m.Ranges {
			spaces = append(spaces, rl.Prefix)
		}
		n.heard.SetSpaces(spaces)
	}
	n.mu.Unlock()
}

// handleClaim arbitrates a sibling's or child's claim against our state.
func (n *Node) handleClaim(from wire.DomainID, m *wire.Claim) {
	n.mu.Lock()
	fromChild := n.children[from]
	var collide *wire.Collision
	switch {
	case fromChild && n.cfg.MaxClaim > 0 && m.Prefix.Size() > n.cfg.MaxClaim:
		// §7 disincentive: the parent rejects excessive claims.
		collide = &wire.Collision{From: n.cfg.Domain, Loser: m.Claimer, Prefix: m.Prefix, Conflict: m.Prefix, Reason: wire.CollideTooLarge}
	case fromChild && !n.containsLocked(m.Prefix):
		// Child claimed outside our (current) space (§4.4).
		collide = &wire.Collision{From: n.cfg.Domain, Loser: m.Claimer, Prefix: m.Prefix, Conflict: m.Prefix, Reason: wire.CollideOutsideParent}
	case n.overlapsHoldingLocked(m.Prefix):
		conflict := m.Prefix
		for _, h := range n.holdings {
			if h.Prefix.Overlaps(m.Prefix) {
				conflict = h.Prefix
				break
			}
		}
		collide = &wire.Collision{From: n.cfg.Domain, Loser: m.Claimer, Prefix: m.Prefix, Conflict: conflict, Reason: wire.CollideInUse}
	default:
		if winner := n.pendingConflictLocked(m); winner != nil {
			collide = winner
		}
	}
	if collide != nil {
		n.outbox = append(n.outbox, outMsg{m.Claimer, collide})
	} else if fromChild {
		n.childClaims.Record(m.Prefix)
		// Parent relays child claims to its other children (§4.1: "A then
		// propagates this claim information to its other children").
		for _, c := range n.sortedChildrenLocked() {
			if c != from {
				n.outbox = append(n.outbox, outMsg{c, m})
			}
		}
	} else {
		// Sibling claim: record it so our future claims avoid it.
		n.heard.Record(m.Prefix)
	}
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
}

// pendingConflictLocked resolves a competing claim against our pending
// claims: the lower (ClaimID, Domain) pair wins (§4.1 footnote). If we
// lose, the pending claim is abandoned and retried. If we win, a collision
// for the competitor is returned.
func (n *Node) pendingConflictLocked(m *wire.Claim) *wire.Collision {
	for p, pc := range n.pending {
		if !p.Overlaps(m.Prefix) {
			continue
		}
		weWin := pc.claimID < m.ClaimID ||
			(pc.claimID == m.ClaimID && n.cfg.Domain < m.Claimer)
		if weWin {
			return &wire.Collision{From: n.cfg.Domain, Loser: m.Claimer, Prefix: m.Prefix, Conflict: p, Reason: wire.CollideInUse}
		}
		// We lose: abandon and re-claim elsewhere after a delay.
		n.abandonLocked(p, pc)
		n.heard.Record(m.Prefix)
		n.scheduleRetry(pc)
		return nil
	}
	return nil
}

func (n *Node) handleCollision(from wire.DomainID, m *wire.Collision) {
	n.mu.Lock()
	if m.Loser != n.cfg.Domain {
		n.mu.Unlock()
		return
	}
	var lostHolding bool
	if pc, ok := n.pending[m.Prefix]; ok {
		n.eventLocked(obs.MASCCollision, m.Prefix)
		n.abandonLocked(m.Prefix, pc)
		if m.Reason == wire.CollideInUse && m.Conflict.Valid() {
			// Avoid the objector's conflicting range — and only it —
			// on the retry.
			n.heard.Record(m.Conflict)
		}
		n.scheduleRetry(pc)
	} else {
		// A collision can arrive for an already-won range after a
		// partition heals; the loser must give it up.
		for i, h := range n.holdings {
			if h.Prefix == m.Prefix {
				n.holdings = append(n.holdings[:i], n.holdings[i+1:]...)
				n.heard.Release(m.Prefix)
				n.heard.Record(m.Conflict) // still taken — by the winner
				n.eventLocked(obs.MASCCollision, m.Prefix)
				lostHolding = true
				break
			}
		}
	}
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
	if lostHolding && n.cfg.OnLost != nil {
		n.cfg.OnLost(m.Prefix)
	}
}

func (n *Node) handleRelease(from wire.DomainID, m *wire.Release) {
	n.mu.Lock()
	n.heard.Release(m.Prefix)
	n.childClaims.Release(m.Prefix)
	n.mu.Unlock()
}

// scheduleRetry re-runs claim selection for a lost claim after RetryDelay,
// breaking the synchronous collide-reclaim recursion. Caller holds n.mu.
func (n *Node) scheduleRetry(pc *pendingClaim) {
	if pc.attempts+1 >= n.cfg.MaxAttempts {
		return
	}
	size, life, attempts := pc.size, pc.life, pc.attempts+1
	n.cfg.Clock.AfterFunc(n.cfg.RetryDelay, func() {
		n.mu.Lock()
		if n.dead {
			n.mu.Unlock()
			return
		}
		n.claimLocked(size, life, attempts)
		msgs, evs := n.drainOutboxLocked()
		n.mu.Unlock()
		n.flush(msgs, evs)
	})
}

func (n *Node) abandonLocked(p addr.Prefix, pc *pendingClaim) {
	pc.lost = true
	if pc.timer != nil {
		pc.timer.Stop()
	}
	pc.span.End()
	delete(n.pending, p)
	n.heard.Release(p)
}

// observeClaimConverge closes the claim's span and records the
// announce-to-win latency in the domain-scoped claim_converge histogram.
func (n *Node) observeClaimConverge(pc *pendingClaim) {
	pc.span.End()
	start := pc.span.Context().Start
	if start == 0 {
		return
	}
	now := n.cfg.Obs.Tracer().Now()
	if now < start {
		return
	}
	n.cfg.Obs.Histogram(obs.HistClaimConverge, n.cfg.Domain, 0).Observe(now - start)
}

func (n *Node) containsLocked(p addr.Prefix) bool {
	for _, h := range n.holdings {
		if h.Prefix.ContainsPrefix(p) {
			return true
		}
	}
	return false
}

func (n *Node) overlapsHoldingLocked(p addr.Prefix) bool {
	for _, h := range n.holdings {
		if h.Prefix.Overlaps(p) && !h.Prefix.ContainsPrefix(p) {
			return true
		}
		if h.Prefix == p || p.ContainsPrefix(h.Prefix) {
			return true
		}
	}
	return false
}

func (n *Node) rangesLocked() []wire.RangeLife {
	now := n.cfg.Clock.Now()
	out := make([]wire.RangeLife, 0, len(n.holdings))
	for _, h := range n.holdings {
		life := h.Expires.Sub(now)
		if life < 0 {
			continue
		}
		out = append(out, wire.RangeLife{Prefix: h.Prefix, LifeSecs: uint32(life / time.Second)})
	}
	return out
}

// drainOutboxLocked empties the under-lock message queue for post-unlock delivery.
// scheduleExpiry arms the lifetime timer for a holding: renewal (when
// AutoRenew) or expiry-release. Caller holds n.mu.
func (n *Node) scheduleExpiry(p addr.Prefix, life time.Duration) {
	n.cfg.Clock.AfterFunc(life, func() { n.lifetimeDue(p, life) })
}

// lifetimeDue runs when a holding's lifetime elapses.
func (n *Node) lifetimeDue(p addr.Prefix, life time.Duration) {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return
	}
	var h *Holding
	for _, x := range n.holdings {
		if x.Prefix == p {
			h = x
			break
		}
	}
	if h == nil || h.Expires.After(n.cfg.Clock.Now()) {
		// Released meanwhile, or already renewed by a longer lease.
		n.mu.Unlock()
		return
	}
	if n.cfg.AutoRenew && h.Active {
		h.Expires = n.cfg.Clock.Now().Add(life)
		expires := h.Expires
		ranges := n.rangesLocked()
		children := n.sortedChildrenLocked()
		n.scheduleExpiry(p, life)
		n.eventLocked(obs.MASCRenewed, p)
		_, evs := n.drainOutboxLocked()
		n.mu.Unlock()
		n.flush(nil, evs)
		adv := &wire.RangeAdvert{Owner: n.cfg.Domain, Ranges: ranges}
		for _, c := range children {
			n.send(c, adv)
		}
		if n.cfg.OnRenewed != nil {
			n.cfg.OnRenewed(p, expires)
		}
		return
	}
	// Expiry: the range is given up; siblings and parent treat it as
	// unallocated once their own view of the lifetime lapses.
	for i, x := range n.holdings {
		if x == h {
			n.holdings = append(n.holdings[:i], n.holdings[i+1:]...)
			break
		}
	}
	n.heard.Release(p)
	rel := &wire.Release{Claimer: n.cfg.Domain, Prefix: p}
	for _, s := range n.sortedSiblingsLocked() {
		n.outbox = append(n.outbox, outMsg{s, rel})
	}
	if n.hasParent {
		n.outbox = append(n.outbox, outMsg{n.parent, rel})
	}
	n.eventLocked(obs.MASCExpired, p)
	msgs, evs := n.drainOutboxLocked()
	n.mu.Unlock()
	n.flush(msgs, evs)
	if n.cfg.OnLost != nil {
		n.cfg.OnLost(p)
	}
}

// eventLocked queues an observability event for post-unlock emission. Caller
// holds n.mu.
func (n *Node) eventLocked(kind obs.Kind, p addr.Prefix) {
	if n.cfg.Obs == nil {
		return
	}
	n.evbuf = append(n.evbuf, obs.Event{Kind: kind, Domain: n.cfg.Domain, Prefix: p})
}

func (n *Node) drainOutboxLocked() ([]outMsg, []obs.Event) {
	msgs, evs := n.outbox, n.evbuf
	n.outbox, n.evbuf = nil, nil
	return msgs, evs
}

func (n *Node) flush(msgs []outMsg, evs []obs.Event) {
	for _, m := range msgs {
		n.send(m.to, m.msg)
	}
	for _, e := range evs {
		n.cfg.Obs.Emit(e)
	}
}

func (n *Node) send(to wire.DomainID, msg wire.Message) {
	if n.cfg.Send != nil {
		n.cfg.Send(to, msg)
	}
}

// sortedSiblingsLocked returns the sibling domain IDs in ascending order.
// Outbound message order is part of the protocol's observable behavior,
// so it must never depend on map iteration. Caller holds n.mu.
func (n *Node) sortedSiblingsLocked() []wire.DomainID {
	out := make([]wire.DomainID, 0, len(n.siblings))
	for s := range n.siblings {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedChildrenLocked returns the child domain IDs in ascending order. Caller
// holds n.mu.
func (n *Node) sortedChildrenLocked() []wire.DomainID {
	out := make([]wire.DomainID, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
