package masc

import (
	"math/rand"
	"testing"

	"mascbgmp/internal/addr"
)

func TestLedgerClaimRelease(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	p := addr.MustParsePrefix("224.0.1.0/24")
	if !l.CanClaim(p) || !l.Claim(p) {
		t.Fatal("first claim should succeed")
	}
	if l.Claim(p) {
		t.Fatal("duplicate claim must fail")
	}
	if l.Claim(addr.MustParsePrefix("224.0.1.0/25")) {
		t.Fatal("overlapping claim must fail")
	}
	if l.Claim(addr.MustParsePrefix("225.0.0.0/24")) {
		t.Fatal("claim outside space must fail")
	}
	if !l.Release(p) {
		t.Fatal("release should succeed")
	}
	if l.Release(p) {
		t.Fatal("double release must fail")
	}
	if !l.Claim(p) {
		t.Fatal("re-claim after release should succeed")
	}
}

func TestLedgerTakenAccounting(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	l.Claim(addr.MustParsePrefix("224.0.1.0/24"))
	l.Claim(addr.MustParsePrefix("224.0.2.0/24"))
	if l.Taken() != 512 {
		t.Fatalf("Taken = %d, want 512", l.Taken())
	}
	if l.Capacity() != 65536 {
		t.Fatalf("Capacity = %d", l.Capacity())
	}
	if got := l.TakenWithin(addr.MustParsePrefix("224.0.0.0/23")); got != 256 {
		t.Fatalf("TakenWithin(/23 covering one /24) = %d, want 256", got)
	}
	if got := l.TakenWithin(addr.MustParsePrefix("224.0.1.0/25")); got != 128 {
		t.Fatalf("TakenWithin(/25 inside taken /24) = %d, want 128", got)
	}
	// Record outside space counts claims but not Taken (outside spaces).
	l.Record(addr.MustParsePrefix("239.0.0.0/24"))
	if l.Taken() != 512 {
		t.Fatalf("out-of-space record changed Taken: %d", l.Taken())
	}
	if len(l.Claims()) != 3 {
		t.Fatalf("Claims = %v", l.Claims())
	}
}

// TestPickClaimPaperExample reproduces the §4.3.3 worked example: with
// 224.0.1/24 and 239/8 taken out of 224/4, a domain needing 1024 addresses
// randomly chooses 228.0.0.0/22 or 232.0.0.0/22.
func TestPickClaimPaperExample(t *testing.T) {
	l := NewLedger(addr.MulticastSpace)
	l.Claim(addr.MustParsePrefix("224.0.1.0/24"))
	l.Claim(addr.MustParsePrefix("239.0.0.0/8"))
	want := map[string]bool{"228.0.0.0/22": false, "232.0.0.0/22": false}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		p, ok := l.PickClaim(addr.MaskLenFor(1024), rng)
		if !ok {
			t.Fatal("pick should succeed")
		}
		if _, expected := want[p.String()]; !expected {
			t.Fatalf("picked %v, want one of 228.0.0.0/22 / 232.0.0.0/22", p)
		}
		want[p.String()] = true
	}
	if !want["228.0.0.0/22"] || !want["232.0.0.0/22"] {
		t.Fatalf("random choice never hit both candidates: %v", want)
	}
}

func TestPickClaimBestEffortWhenFragmented(t *testing.T) {
	// Only a /26 is free; a request needing a /22 gets the /26.
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/24"))
	l.Claim(addr.MustParsePrefix("224.0.0.0/25"))
	l.Claim(addr.MustParsePrefix("224.0.0.128/26"))
	rng := rand.New(rand.NewSource(1))
	p, ok := l.PickClaim(22, rng)
	if !ok || p.String() != "224.0.0.192/26" {
		t.Fatalf("best-effort pick = %v ok=%v", p, ok)
	}
}

func TestPickClaimFullSpace(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/24"))
	l.Claim(addr.MustParsePrefix("224.0.0.0/24"))
	if _, ok := l.PickClaim(30, rand.New(rand.NewSource(1))); ok {
		t.Fatal("full space must not yield a claim")
	}
}

func TestPickClaimMultipleSpaces(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/24"), addr.MustParsePrefix("230.0.0.0/16"))
	rng := rand.New(rand.NewSource(2))
	// The /16 space offers the shortest free prefix; claims should come
	// from it.
	p, ok := l.PickClaim(24, rng)
	if !ok || !addr.MustParsePrefix("230.0.0.0/16").ContainsPrefix(p) {
		t.Fatalf("pick = %v, want inside 230.0.0.0/16", p)
	}
}

func TestCanDoubleAndDouble(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	p := addr.MustParsePrefix("224.0.0.0/24")
	l.Claim(p)
	if !l.CanDouble(p) {
		t.Fatal("sibling free: doubling should be possible")
	}
	d, ok := l.Double(p)
	if !ok || d.String() != "224.0.0.0/23" {
		t.Fatalf("Double = %v ok=%v", d, ok)
	}
	// Now occupy the new sibling and verify doubling is blocked.
	l.Claim(addr.MustParsePrefix("224.0.2.0/23"))
	if l.CanDouble(d) {
		t.Fatal("doubling into occupied sibling must fail")
	}
	if _, ok := l.Double(d); ok {
		t.Fatal("Double should fail")
	}
}

func TestCanDoubleOutsideSpace(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/24"))
	p := addr.MustParsePrefix("224.0.0.0/24")
	l.Claim(p)
	if l.CanDouble(p) {
		t.Fatal("doubling beyond the space must fail")
	}
}

func TestSetSpacesAffectsClaims(t *testing.T) {
	l := NewLedger()
	if l.Claim(addr.MustParsePrefix("224.0.0.0/24")) {
		t.Fatal("claim with no spaces must fail")
	}
	l.SetSpaces([]addr.Prefix{addr.MustParsePrefix("224.0.0.0/16")})
	if !l.Claim(addr.MustParsePrefix("224.0.0.0/24")) {
		t.Fatal("claim within new space should succeed")
	}
	if got := l.Spaces(); len(got) != 1 {
		t.Fatalf("Spaces = %v", got)
	}
}

// Property: repeated PickClaim+Claim never yields overlapping claims and
// eventually exhausts the space exactly.
func TestPickClaimExhaustionProperty(t *testing.T) {
	space := addr.MustParsePrefix("224.0.0.0/20") // 4096 addresses
	l := NewLedger(space)
	rng := rand.New(rand.NewSource(9))
	var total uint64
	for {
		p, ok := l.PickClaim(24, rng) // 256-address chunks
		if !ok {
			break
		}
		if !l.Claim(p) {
			t.Fatalf("pick returned unclaimable prefix %v", p)
		}
		total += p.Size()
		if total > space.Size() {
			t.Fatal("claimed more than the space holds")
		}
	}
	if total != space.Size() {
		t.Fatalf("exhaustion left gaps: claimed %d of %d", total, space.Size())
	}
	claims := l.Claims()
	for i := range claims {
		for j := i + 1; j < len(claims); j++ {
			if claims[i].Overlaps(claims[j]) {
				t.Fatalf("claims overlap: %v %v", claims[i], claims[j])
			}
		}
	}
}

// Property: the first-sub-prefix rule keeps space aggregatable — a sequence
// of claims and doublings never produces a claim whose sibling is also free
// but unclaimable.
func TestDoublingAfterFirstSubProperty(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	rng := rand.New(rand.NewSource(10))
	p, _ := l.PickClaim(24, rng)
	l.Claim(p)
	// With an otherwise empty space the first claim must be expandable
	// many times (first-sub placement leaves the sibling free).
	cur := p
	for i := 0; i < 6; i++ {
		if !l.CanDouble(cur) {
			t.Fatalf("doubling step %d blocked for %v", i, cur)
		}
		cur, _ = l.Double(cur)
	}
}
