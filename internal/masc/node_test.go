package masc

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// nodeNet wires Nodes together with synchronous in-process delivery.
type nodeNet struct {
	clk   *simclock.Sim
	nodes map[wire.DomainID]*Node
	won   map[wire.DomainID][]addr.Prefix
	lost  map[wire.DomainID][]addr.Prefix
}

func newNodeNet(t *testing.T) *nodeNet {
	t.Helper()
	return &nodeNet{
		clk:   simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)),
		nodes: map[wire.DomainID]*Node{},
		won:   map[wire.DomainID][]addr.Prefix{},
		lost:  map[wire.DomainID][]addr.Prefix{},
	}
}

func (nn *nodeNet) add(d wire.DomainID, topLevel bool, seed int64) *Node {
	n := NewNode(NodeConfig{
		Domain:     d,
		Clock:      nn.clk,
		Rand:       rand.New(rand.NewSource(seed)),
		WaitPeriod: 48 * time.Hour,
		TopLevel:   topLevel,
		Send: func(to wire.DomainID, msg wire.Message) {
			if peer, ok := nn.nodes[to]; ok {
				peer.HandleMessage(d, msg)
			}
		},
		OnWon:  func(p addr.Prefix, _ time.Time) { nn.won[d] = append(nn.won[d], p) },
		OnLost: func(p addr.Prefix) { nn.lost[d] = append(nn.lost[d], p) },
	})
	nn.nodes[d] = n
	return n
}

// run advances simulated time past the waiting period.
func (nn *nodeNet) run(d time.Duration) { nn.clk.RunFor(d) }

func TestTopLevelClaimWins(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	if !a.RequestSpace(65536, 30*24*time.Hour) {
		t.Fatal("claim selection failed")
	}
	if len(nn.won[1]) != 0 {
		t.Fatal("claim must not be won before the waiting period")
	}
	nn.run(48*time.Hour + time.Second)
	if len(nn.won[1]) != 1 {
		t.Fatalf("won = %v", nn.won[1])
	}
	p := nn.won[1][0]
	if p.Size() < 65536 || !p.IsMulticast() {
		t.Fatalf("won prefix %v unsuitable", p)
	}
	if len(a.Holdings()) != 1 {
		t.Fatal("holding missing")
	}
}

func TestSiblingClaimsAvoidEachOther(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	b := nn.add(2, true, 2)
	a.AddSibling(2)
	b.AddSibling(1)
	a.RequestSpace(65536, 30*24*time.Hour)
	nn.run(time.Hour)
	// B hears A's claim before choosing.
	b.RequestSpace(65536, 30*24*time.Hour)
	nn.run(49 * time.Hour)
	if len(nn.won[1]) != 1 || len(nn.won[2]) != 1 {
		t.Fatalf("wins: %v / %v", nn.won[1], nn.won[2])
	}
	if nn.won[1][0].Overlaps(nn.won[2][0]) {
		t.Fatalf("sibling claims overlap: %v / %v", nn.won[1][0], nn.won[2][0])
	}
}

func TestCollisionOnHeldRange(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	b := nn.add(2, true, 2)
	a.AddSibling(2)
	b.AddSibling(1)
	a.RequestSpace(65536, 30*24*time.Hour)
	nn.run(49 * time.Hour)
	held := nn.won[1][0]

	// B (who somehow didn't hear the claim — e.g. joined later) claims the
	// exact same range; A must send a collision and B must re-claim
	// elsewhere.
	b.HandleMessage(0, &wire.RangeAdvert{Owner: 0}) // no-op, B is top-level
	bClaim := &wire.Claim{Claimer: 2, ClaimID: 99, Prefix: held, LifeSecs: 3600}
	// Simulate B sending by injecting into A and letting A's collision
	// flow back to B; first record B's own pending state by using the
	// real path: force B's ledger empty of A's claim.
	b2 := nn.add(3, true, 3) // fresh sibling with no knowledge of A
	a.AddSibling(3)
	b2.AddSibling(1)
	_ = bClaim
	// b2 deterministically picks the same first-fit region as A did if
	// its shortest-free search finds the same block; to guarantee an
	// overlap we claim the entire multicast space.
	if !b2.RequestSpace(addr.MulticastSpace.Size(), 30*24*time.Hour) {
		t.Fatal("b2 claim selection failed")
	}
	nn.run(49 * time.Hour)
	if len(nn.won[3]) == 0 {
		t.Fatal("b2 should eventually win a (re-selected) range")
	}
	for _, p := range nn.won[3] {
		if p.Overlaps(held) {
			t.Fatalf("b2 won %v overlapping A's held %v", p, held)
		}
	}
}

func TestSimultaneousClaimsOneWins(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 5)
	b := nn.add(2, true, 5) // same seed: same first pick
	a.AddSibling(2)
	b.AddSibling(1)
	// Both claim the whole space concurrently — guaranteed overlap.
	a.RequestSpace(addr.MulticastSpace.Size(), 30*24*time.Hour)
	b.RequestSpace(addr.MulticastSpace.Size(), 30*24*time.Hour)
	nn.run(100 * time.Hour)
	// Exactly one of them holds 224/4; the loser re-claimed and, with the
	// space exhausted by the winner, holds nothing.
	aWon, bWon := len(nn.won[1]), len(nn.won[2])
	if aWon+bWon != 1 {
		t.Fatalf("wins: a=%d b=%d, want exactly 1", aWon, bWon)
	}
}

func TestParentChildRangeAdvertAndClaim(t *testing.T) {
	nn := newNodeNet(t)
	parent := nn.add(1, true, 1)
	child := nn.add(10, false, 2)
	child.SetParent(1)
	parent.AddChild(10)

	parent.RequestSpace(65536, 60*24*time.Hour)
	nn.run(49 * time.Hour)
	if len(nn.won[1]) != 1 {
		t.Fatal("parent claim failed")
	}
	parentRange := nn.won[1][0]

	// The RangeAdvert after maturation gave the child its spaces.
	if !child.RequestSpace(256, 30*24*time.Hour) {
		t.Fatal("child claim selection failed — did the RangeAdvert arrive?")
	}
	nn.run(49 * time.Hour)
	if len(nn.won[10]) != 1 {
		t.Fatal("child claim failed")
	}
	if !parentRange.ContainsPrefix(nn.won[10][0]) {
		t.Fatalf("child won %v outside parent range %v", nn.won[10][0], parentRange)
	}
}

func TestParentRejectsOutsideClaim(t *testing.T) {
	nn := newNodeNet(t)
	parent := nn.add(1, true, 1)
	child := nn.add(10, false, 2)
	child.SetParent(1)
	parent.AddChild(10)
	parent.RequestSpace(65536, 60*24*time.Hour)
	nn.run(49 * time.Hour)

	// Inject a child claim outside the parent's space.
	outside := addr.MustParsePrefix("239.255.0.0/24")
	parent.HandleMessage(10, &wire.Claim{Claimer: 10, ClaimID: 1, Prefix: outside, LifeSecs: 60})
	nn.run(time.Hour)
	// The child must have received a collision; since it had no matching
	// pending claim nothing explodes, but the parent must not have
	// recorded it as a child claim.
	if parent.childClaims.taken.ContainsPrefix(outside) {
		t.Fatal("out-of-space child claim must not be recorded")
	}
}

func TestParentTooLargeDisincentive(t *testing.T) {
	nn := newNodeNet(t)
	clk := nn.clk
	parent := NewNode(NodeConfig{
		Domain: 1, Clock: clk, Rand: rand.New(rand.NewSource(1)),
		TopLevel: true, MaxClaim: 1 << 16,
		Send: func(to wire.DomainID, msg wire.Message) {
			if p, ok := nn.nodes[to]; ok {
				p.HandleMessage(1, msg)
			}
		},
	})
	nn.nodes[1] = parent
	child := nn.add(10, false, 2)
	child.SetParent(1)
	parent.AddChild(10)
	parent.RequestSpace(1<<20, 60*24*time.Hour)
	nn.run(49 * time.Hour)

	// Child claims an excessive /12 (2^20 addresses > MaxClaim 2^16).
	if !child.RequestSpace(1<<20, 30*24*time.Hour) {
		t.Fatal("child claim selection failed")
	}
	nn.run(time.Hour)
	// The too-large collision forces a retry, which picks ... the same
	// size again (the node retries the original size); it keeps losing.
	nn.run(49 * time.Hour)
	for _, p := range nn.won[10] {
		if p.Size() > 1<<16 {
			t.Fatalf("child won an excessive range %v despite MaxClaim", p)
		}
	}
}

func TestReleasePropagates(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	b := nn.add(2, true, 2)
	a.AddSibling(2)
	b.AddSibling(1)
	a.RequestSpace(65536, 30*24*time.Hour)
	nn.run(49 * time.Hour)
	held := nn.won[1][0]

	a.Release(held)
	if len(nn.lost[1]) != 1 || nn.lost[1][0] != held {
		t.Fatalf("OnLost = %v", nn.lost[1])
	}
	if len(a.Holdings()) != 0 {
		t.Fatal("holding should be gone")
	}
	// B's ledger must have freed the range: B can now claim it.
	if !b.heard.CanClaim(held) {
		t.Fatal("release did not free the range at the sibling")
	}
}

func TestRequestSpaceFailsWithNoSpaces(t *testing.T) {
	nn := newNodeNet(t)
	child := nn.add(10, false, 2)
	child.SetParent(1)
	if child.RequestSpace(256, time.Hour) {
		t.Fatal("claim with no advertised parent ranges must fail")
	}
}

func TestAutoRenewExtendsHolding(t *testing.T) {
	nn := newNodeNet(t)
	var renewed []addr.Prefix
	n := NewNode(NodeConfig{
		Domain: 1, Clock: nn.clk, Rand: rand.New(rand.NewSource(1)),
		TopLevel: true, AutoRenew: true, WaitPeriod: 48 * time.Hour,
		OnRenewed: func(p addr.Prefix, _ time.Time) { renewed = append(renewed, p) },
		OnLost:    func(p addr.Prefix) { t.Errorf("auto-renewed holding lost: %v", p) },
	})
	nn.nodes[1] = n
	life := 10 * 24 * time.Hour
	n.RequestSpace(65536, life)
	nn.run(49 * time.Hour)
	if len(n.Holdings()) != 1 {
		t.Fatal("claim failed")
	}
	// Run well past several lifetimes: the holding must persist.
	nn.run(35 * 24 * time.Hour)
	if len(n.Holdings()) != 1 {
		t.Fatal("holding lapsed despite auto-renew")
	}
	if len(renewed) < 2 {
		t.Fatalf("renewals = %d, want several", len(renewed))
	}
	if !n.Holdings()[0].Expires.After(nn.clk.Now()) {
		t.Fatal("renewed expiry not in the future")
	}
}

func TestExpiryReleasesWithoutAutoRenew(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	b := nn.add(2, true, 2)
	a.AddSibling(2)
	b.AddSibling(1)
	life := 5 * 24 * time.Hour
	a.RequestSpace(65536, life)
	nn.run(49 * time.Hour)
	held := nn.won[1][0]
	// After the lifetime, the range is given up and the sibling may
	// claim it.
	nn.run(life + time.Hour)
	if len(a.Holdings()) != 0 {
		t.Fatalf("holdings after expiry = %v", a.Holdings())
	}
	if len(nn.lost[1]) != 1 || nn.lost[1][0] != held {
		t.Fatalf("OnLost = %v", nn.lost[1])
	}
	if !b.heard.CanClaim(held) {
		t.Fatal("expired range not freed at the sibling")
	}
}

func TestReleasedHoldingNotRenewedByTimer(t *testing.T) {
	nn := newNodeNet(t)
	a := nn.add(1, true, 1)
	life := 5 * 24 * time.Hour
	a.RequestSpace(65536, life)
	nn.run(49 * time.Hour)
	held := nn.won[1][0]
	a.Release(held)
	// The pending lifetime timer must be a no-op for the released range.
	nn.run(life + time.Hour)
	if len(a.Holdings()) != 0 {
		t.Fatal("released holding resurrected")
	}
	if len(nn.lost[1]) != 1 {
		t.Fatalf("lost events = %v", nn.lost[1])
	}
}
