package masc

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
)

var allocT0 = time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

func newTestAllocator(spaces ...addr.Prefix) (*BlockAllocator, *Ledger) {
	l := NewLedger(spaces...)
	a := NewBlockAllocator(DefaultStrategy(), l, rand.New(rand.NewSource(3)))
	return a, l
}

func TestFirstRequestClaimsJustSufficientPrefix(t *testing.T) {
	a, l := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	b, ok := a.Request(256, 30*24*time.Hour, allocT0)
	if !ok {
		t.Fatal("request should succeed")
	}
	if b.Prefix.Size() != 256 {
		t.Fatalf("first claim size = %d, want 256 (just sufficient)", b.Prefix.Size())
	}
	if len(l.Claims()) != 1 {
		t.Fatalf("ledger claims = %v", l.Claims())
	}
	if a.Demand() != 256 || a.Capacity() != 256 {
		t.Fatalf("demand/capacity = %d/%d", a.Demand(), a.Capacity())
	}
}

func TestGrowthByDoubling(t *testing.T) {
	a, _ := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	now := allocT0
	// Repeated 256-blocks: 256 → double to 512 → double to 1024 (768/1024
	// = 75% exactly at the third block) ...
	for i := 0; i < 4; i++ {
		if _, ok := a.Request(256, 30*24*time.Hour, now); !ok {
			t.Fatalf("request %d failed", i)
		}
		now = now.Add(time.Hour)
	}
	if a.Stats.Doublings == 0 {
		t.Fatal("growth should have used doubling")
	}
	// Doubling keeps a single prefix while the 75% rule allows it.
	hs := a.Holdings()
	if len(hs) != 1 {
		t.Fatalf("holdings = %v, want a single doubled prefix", hs)
	}
	if a.Utilization() < 0.74 {
		t.Fatalf("utilization = %.2f, want >= 75%%", a.Utilization())
	}
}

func TestSecondPrefixWhenDoublingWouldUnderfill(t *testing.T) {
	a, _ := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	now := allocT0
	// Fill to a /22 (1024 addresses = 4 blocks), then the 5th block:
	// doubling to /21 gives 1280/2048 = 62.5% < 75%, so the allocator
	// claims a second small prefix instead.
	for i := 0; i < 5; i++ {
		if _, ok := a.Request(256, 30*24*time.Hour, now); !ok {
			t.Fatalf("request %d failed", i)
		}
		now = now.Add(time.Hour)
	}
	hs := a.Holdings()
	if len(hs) != 2 {
		t.Fatalf("want 2 holdings, got %v", hs)
	}
	if a.Stats.ExtraClaims == 0 {
		t.Fatal("expected an additional just-sufficient claim")
	}
	var sizes []uint64
	for _, h := range hs {
		sizes = append(sizes, h.Prefix.Size())
	}
	if sizes[0]+sizes[1] != 1024+256 {
		t.Fatalf("holding sizes = %v", sizes)
	}
}

func TestReplacementWhenAtPrefixLimitAndBlocked(t *testing.T) {
	// Block every doubling by pre-claiming the siblings, forcing the
	// allocator at 2 prefixes to claim a replacement.
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	a := NewBlockAllocator(DefaultStrategy(), l, rand.New(rand.NewSource(3)))
	now := allocT0
	for i := 0; i < 5; i++ {
		if _, ok := a.Request(256, 30*24*time.Hour, now); !ok {
			t.Fatalf("request %d failed", i)
		}
		now = now.Add(time.Hour)
	}
	// Two holdings now. Claim both siblings to block doubling.
	for _, h := range a.Holdings() {
		sib := h.Prefix.Sibling()
		if l.CanClaim(sib) {
			l.Claim(sib)
		}
	}
	if _, ok := a.Request(256, 30*24*time.Hour, now); !ok {
		t.Fatal("request should still succeed via replacement")
	}
	if a.Stats.Replacements == 0 {
		t.Fatal("expected a replacement claim")
	}
	active := 0
	for _, h := range a.Holdings() {
		if h.Active {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("after replacement exactly one active holding expected, got %d", active)
	}
}

func TestBlocksExpireAndFreeCapacity(t *testing.T) {
	a, _ := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	life := 30 * 24 * time.Hour
	a.Request(256, life, allocT0)
	if a.Demand() != 256 {
		t.Fatal("demand should be 256")
	}
	a.Tick(allocT0.Add(life + time.Second))
	if a.Demand() != 0 {
		t.Fatalf("demand after expiry = %d", a.Demand())
	}
}

func TestEmptyHoldingReleasedAtExpiry(t *testing.T) {
	a, l := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	life := 30 * 24 * time.Hour
	a.Request(256, life, allocT0)
	// After the blocks and the claim itself expire, the prefix returns to
	// the ledger.
	a.Tick(allocT0.Add(2*life + time.Second))
	if len(a.Holdings()) != 0 {
		t.Fatalf("holdings = %v, want none", a.Holdings())
	}
	if len(l.Claims()) != 0 {
		t.Fatalf("ledger claims = %v, want none", l.Claims())
	}
	if a.Stats.Releases == 0 {
		t.Fatal("release should be counted")
	}
}

func TestOccupiedHoldingRenewedAtExpiry(t *testing.T) {
	a, l := newTestAllocator(addr.MustParsePrefix("224.0.0.0/16"))
	a.Request(256, 90*24*time.Hour, allocT0) // block outlives the 30d claim
	a.Tick(allocT0.Add(31 * 24 * time.Hour))
	if len(a.Holdings()) != 1 {
		t.Fatal("occupied holding must be renewed, not released")
	}
	if len(l.Claims()) != 1 {
		t.Fatal("ledger must still show the claim")
	}
}

func TestRequestFailsWhenSpaceExhausted(t *testing.T) {
	a, _ := newTestAllocator(addr.MustParsePrefix("224.0.0.0/24")) // 256 addrs
	if _, ok := a.Request(256, time.Hour, allocT0); !ok {
		t.Fatal("first request should fit exactly")
	}
	if _, ok := a.Request(256, time.Hour, allocT0); ok {
		t.Fatal("second request must fail in exhausted space")
	}
	if a.Stats.Failures != 1 {
		t.Fatalf("failures = %d", a.Stats.Failures)
	}
}

func TestUtilizationStaysNearTargetUnderChurn(t *testing.T) {
	// Long-run churn: random requests with 30-day lifetimes; utilization
	// (averaged once warm) should sit in a band around the paper's ~50%
	// two-level result — for a single level we expect >= 50%.
	a, _ := newTestAllocator(addr.MustParsePrefix("224.0.0.0/12"))
	rng := rand.New(rand.NewSource(42))
	now := allocT0
	life := 30 * 24 * time.Hour
	var utilSum float64
	var samples int
	for day := 0; day < 200; day++ {
		for r := 0; r < 3; r++ {
			a.Request(256, life, now)
			now = now.Add(time.Duration(1+rng.Intn(8)) * time.Hour)
		}
		a.Tick(now)
		if day > 60 {
			utilSum += a.Utilization()
			samples++
		}
	}
	avg := utilSum / float64(samples)
	if avg < 0.5 || avg > 1.0 {
		t.Fatalf("steady-state utilization = %.2f, want in [0.5, 1.0]", avg)
	}
	// The 2-prefix target should roughly hold.
	if len(a.Holdings()) > 4 {
		t.Fatalf("holdings grew to %d; aggregation target badly violated", len(a.Holdings()))
	}
}

func TestAdvertisedPrefixesAggregated(t *testing.T) {
	l := NewLedger(addr.MustParsePrefix("224.0.0.0/16"))
	a := NewBlockAllocator(DefaultStrategy(), l, rand.New(rand.NewSource(3)))
	// Force two sibling claims by manipulating holdings directly through
	// requests in a tight space.
	a.holdings = append(a.holdings,
		&Holding{Prefix: addr.MustParsePrefix("224.0.0.0/24"), Active: true},
		&Holding{Prefix: addr.MustParsePrefix("224.0.1.0/24"), Active: true},
	)
	adv := a.AdvertisedPrefixes()
	if len(adv) != 1 || adv[0].String() != "224.0.0.0/23" {
		t.Fatalf("advertised = %v, want aggregated /23", adv)
	}
}

func TestDemandAccountingProperty(t *testing.T) {
	// Invariant under random request/expiry churn: Demand == Σ holdings.Used
	// and every holding's Used ≤ its size.
	a, l := newTestAllocator(addr.MustParsePrefix("224.0.0.0/12"))
	rng := rand.New(rand.NewSource(77))
	now := allocT0
	for i := 0; i < 2000; i++ {
		n := uint64(64 << rng.Intn(3))
		life := time.Duration(1+rng.Intn(72)) * time.Hour
		a.Request(n, life, now)
		now = now.Add(time.Duration(rng.Intn(7)) * time.Hour)
		var sum uint64
		for _, h := range a.Holdings() {
			if h.Used > h.Prefix.Size() {
				t.Fatalf("holding %v over-filled: %d", h.Prefix, h.Used)
			}
			sum += h.Used
		}
		if sum != a.Demand() {
			t.Fatalf("demand %d != Σ used %d", a.Demand(), sum)
		}
		// All holdings must be registered in the ledger.
		for _, h := range a.Holdings() {
			if l.CanClaim(h.Prefix) {
				t.Fatalf("holding %v not recorded in ledger", h.Prefix)
			}
		}
	}
}
