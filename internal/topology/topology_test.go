package topology

import (
	"math/rand"
	"sort"
	"testing"
)

func TestAddLinkBasics(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1)
	g.AddLink(0, 1) // duplicate ignored
	g.AddLink(1, 1) // self-loop ignored
	if g.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", g.NumLinks())
	}
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Fatal("link should be symmetric")
	}
	if g.HasLink(0, 2) {
		t.Fatal("0-2 must not be linked")
	}
	if g.HasLink(-1, 0) || g.HasLink(0, 99) {
		t.Fatal("out-of-range HasLink must be false")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("bad degrees")
	}
}

func TestAddDomains(t *testing.T) {
	g := New(2)
	first := g.AddDomains(3)
	if first != 2 || g.NumDomains() != 5 {
		t.Fatalf("AddDomains: first=%d n=%d", first, g.NumDomains())
	}
}

func TestProviderRelations(t *testing.T) {
	g := New(3)
	g.AddProviderLink(0, 1)
	g.AddLink(1, 2)
	if !g.IsProviderOf(0, 1) {
		t.Fatal("0 should be provider of 1")
	}
	if g.IsProviderOf(1, 0) {
		t.Fatal("customer is not provider")
	}
	if g.IsProviderOf(1, 2) {
		t.Fatal("peers are not providers")
	}
	ps := g.Providers(1)
	if len(ps) != 1 || ps[0] != 0 {
		t.Fatalf("Providers(1) = %v", ps)
	}
	if g.Neighbors(0)[0].Rel != RelProviderCustomer {
		t.Fatal("edge should carry the transit relation")
	}
}

func TestRelationString(t *testing.T) {
	if RelPeer.String() != "peer" || RelProviderCustomer.String() != "provider-customer" {
		t.Fatal("bad Relation strings")
	}
	if Relation(9).String() == "" {
		t.Fatal("unknown relation should still format")
	}
}

func TestBFSAndPath(t *testing.T) {
	// 0-1-2-3 chain plus shortcut 0-3
	g := New(4)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 3)
	g.AddLink(0, 3)
	dist, parent := g.BFS(0)
	want := []int{0, 1, 2, 1}
	for i, d := range want {
		if dist[i] != d {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], d)
		}
	}
	if parent[0] != NoDomain {
		t.Fatal("source has no parent")
	}
	p := g.Path(1, 3)
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Fatalf("Path(1,3) = %v", p)
	}
	if got := g.Path(0, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Path to self = %v", got)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1)
	dist, _ := g.BFS(0)
	if dist[2] != -1 {
		t.Fatal("isolated node should be unreachable")
	}
	if g.Path(0, 2) != nil {
		t.Fatal("Path to unreachable should be nil")
	}
	if g.Connected() {
		t.Fatal("graph with isolated node is not connected")
	}
}

func TestConnectedEmptyAndSingle(t *testing.T) {
	if !New(0).Connected() {
		t.Fatal("empty graph is connected")
	}
	if !New(1).Connected() {
		t.Fatal("single node is connected")
	}
}

func TestHierarchyShape(t *testing.T) {
	g, tops, children := Hierarchy(5, 4)
	if g.NumDomains() != 5+5*4 {
		t.Fatalf("NumDomains = %d", g.NumDomains())
	}
	if len(tops) != 5 {
		t.Fatalf("tops = %v", tops)
	}
	// Top-level full mesh: C(5,2)=10 links, plus 20 provider links.
	if g.NumLinks() != 10+20 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	for _, top := range tops {
		if len(children[top]) != 4 {
			t.Fatalf("children of %d = %v", top, children[top])
		}
		for _, c := range children[top] {
			if !g.IsProviderOf(top, c) {
				t.Fatalf("%d should be provider of %d", top, c)
			}
		}
	}
	if !g.Connected() {
		t.Fatal("hierarchy should be connected")
	}
}

func TestASGraphProperties(t *testing.T) {
	const n = 3326
	g := ASGraph(n, 200, 42)
	if g.NumDomains() != n {
		t.Fatalf("NumDomains = %d", g.NumDomains())
	}
	if !g.Connected() {
		t.Fatal("ASGraph must be connected")
	}
	// Sparse like the 1998 AS graph: average degree between 2 and 5.
	avg := 2 * float64(g.NumLinks()) / float64(n)
	if avg < 2 || avg > 5 {
		t.Fatalf("average degree = %.2f, want sparse (2..5)", avg)
	}
	// Skewed degrees: the max degree should be far above the average.
	maxDeg := 0
	for d := 0; d < n; d++ {
		if g.Degree(DomainID(d)) > maxDeg {
			maxDeg = g.Degree(DomainID(d))
		}
	}
	if float64(maxDeg) < 10*avg {
		t.Fatalf("max degree %d not skewed vs avg %.2f", maxDeg, avg)
	}
	// Small diameter sample: typical AS path lengths in 1998 were < 15 hops.
	dist, _ := g.BFS(0)
	for i, d := range dist {
		if d > 25 {
			t.Fatalf("dist[%d] = %d, too deep for an AS-like graph", i, d)
		}
	}
}

func TestASGraphDeterministic(t *testing.T) {
	a := ASGraph(500, 50, 7)
	b := ASGraph(500, 50, 7)
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed must give same link count")
	}
	for d := 0; d < 500; d++ {
		ea, eb := a.Neighbors(DomainID(d)), b.Neighbors(DomainID(d))
		if len(ea) != len(eb) {
			t.Fatalf("degree mismatch at %d", d)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("edge mismatch at %d[%d]", d, i)
			}
		}
	}
	c := ASGraph(500, 50, 8)
	same := a.NumLinks() == c.NumLinks()
	if same {
		// Link counts can coincide; check adjacency differs somewhere.
		diff := false
		for d := 0; d < 500 && !diff; d++ {
			ea, ec := a.Neighbors(DomainID(d)), c.Neighbors(DomainID(d))
			if len(ea) != len(ec) {
				diff = true
				break
			}
			for i := range ea {
				if ea[i] != ec[i] {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestASGraphTiny(t *testing.T) {
	if g := ASGraph(0, 10, 1); g.NumDomains() != 0 {
		t.Fatal("n=0")
	}
	if g := ASGraph(1, 10, 1); g.NumDomains() != 1 || g.NumLinks() != 0 {
		t.Fatal("n=1")
	}
	g := ASGraph(2, 10, 1) // extraPeering clamped: only 1 possible link
	if g.NumLinks() != 1 {
		t.Fatalf("n=2 links = %d", g.NumLinks())
	}
}

// Property: BFS distances satisfy the triangle property along edges —
// |dist[u]-dist[v]| <= 1 for every edge (u,v).
func TestBFSEdgeConsistencyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		g := ASGraph(200, 30, r.Int63())
		src := DomainID(r.Intn(200))
		dist, parent := g.BFS(src)
		for u := 0; u < 200; u++ {
			for _, e := range g.Neighbors(DomainID(u)) {
				du, dv := dist[u], dist[e.To]
				if du < 0 || dv < 0 {
					t.Fatal("ASGraph should be connected")
				}
				if du-dv > 1 || dv-du > 1 {
					t.Fatalf("edge (%d,%d) with dists %d,%d", u, e.To, du, dv)
				}
			}
			if DomainID(u) != src {
				p := parent[u]
				if p == NoDomain || dist[p] != dist[u]-1 {
					t.Fatalf("parent invariant broken at %d", u)
				}
			}
		}
	}
}

// Property: Path length equals BFS distance and consecutive hops are edges.
func TestPathMatchesDistProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := ASGraph(300, 40, 99)
	dist, _ := g.BFS(17)
	for iter := 0; iter < 200; iter++ {
		b := DomainID(r.Intn(300))
		p := g.Path(17, b)
		if len(p)-1 != dist[b] {
			t.Fatalf("path len %d != dist %d", len(p)-1, dist[b])
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasLink(p[i], p[i+1]) {
				t.Fatalf("path hop %v-%v is not an edge", p[i], p[i+1])
			}
		}
	}
}

func TestDegreeDistributionSorted(t *testing.T) {
	// Sanity: sorting degrees of an ASGraph yields a long tail of 1s/2s.
	g := ASGraph(1000, 100, 5)
	degs := make([]int, 1000)
	for i := range degs {
		degs[i] = g.Degree(DomainID(i))
	}
	sort.Ints(degs)
	if degs[len(degs)/2] > 3 {
		t.Fatalf("median degree %d too high for AS-like graph", degs[len(degs)/2])
	}
}

func TestRemoveLink(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1)
	g.AddProviderLink(2, 3)
	if !g.RemoveLink(1, 0) {
		t.Fatal("RemoveLink(1,0) = false, want true")
	}
	if g.HasLink(0, 1) || g.HasLink(1, 0) || g.NumLinks() != 1 {
		t.Fatal("link survived removal")
	}
	if g.RemoveLink(0, 1) {
		t.Fatal("second removal must report false")
	}
	if !g.RemoveLink(2, 3) {
		t.Fatal("provider link removal failed")
	}
	if g.IsProviderOf(2, 3) {
		t.Fatal("provider record survived removal")
	}
	if g.RemoveLink(-1, 5) {
		t.Fatal("out-of-range RemoveLink must be false")
	}
}
