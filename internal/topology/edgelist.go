package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Edge-list IO: the topogen interchange format. One "a b" pair per
// link, preceded by a "# key=value ..." comment header with graph
// statistics. WriteEdgeList is the single producer (cmd/topogen calls
// it for both stdout and -out), ReadEdgeList the single consumer
// (file-kind scenario topologies), so the two stay round-trip exact.

// WriteEdgeList writes g in the edge-list format. kind labels the
// header (the generator name; informational only).
func WriteEdgeList(w io.Writer, g *Graph, kind string) error {
	bw := bufio.NewWriter(w)
	maxDeg := 0
	for d := 0; d < g.NumDomains(); d++ {
		if deg := g.Degree(DomainID(d)); deg > maxDeg {
			maxDeg = deg
		}
	}
	fmt.Fprintf(bw, "# kind=%s domains=%d links=%d avg_degree=%.2f max_degree=%d connected=%v\n",
		kind, g.NumDomains(), g.NumLinks(),
		2*float64(g.NumLinks())/float64(g.NumDomains()), maxDeg, g.Connected())
	for a := 0; a < g.NumDomains(); a++ {
		for _, e := range g.Neighbors(DomainID(a)) {
			if int(e.To) > a {
				fmt.Fprintf(bw, "%d %d\n", a, e.To)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list format back into a Graph. The
// domain count comes from the header's domains= field when present
// (preserving isolated trailing domains); otherwise it is inferred as
// the highest endpoint + 1. Errors carry the 1-based line number.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	domains := -1
	type link struct{ a, b DomainID }
	var links []link
	maxID := -1
	ln := 0
	for sc.Scan() {
		ln++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if domains < 0 {
				domains = headerDomains(text)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: expected \"a b\" link, got %q", ln, text)
		}
		a, errA := strconv.Atoi(fields[0])
		b, errB := strconv.Atoi(fields[1])
		if errA != nil || errB != nil || a < 0 || b < 0 {
			return nil, fmt.Errorf("line %d: link endpoints must be non-negative integers, got %q", ln, text)
		}
		if a == b {
			return nil, fmt.Errorf("line %d: self-loop %d-%d", ln, a, b)
		}
		if a > maxID {
			maxID = a
		}
		if b > maxID {
			maxID = b
		}
		links = append(links, link{DomainID(a), DomainID(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("line %d: %v", ln, err)
	}
	if maxID < 0 && domains <= 0 {
		return nil, fmt.Errorf("edge list has no links")
	}
	if domains <= maxID {
		domains = maxID + 1
	}
	g := New(domains)
	for _, l := range links {
		g.AddLink(l.a, l.b)
	}
	return g, nil
}

// headerDomains extracts the domains= field from a header comment,
// returning -1 when absent or malformed (the caller falls back to
// inference).
func headerDomains(text string) int {
	for _, f := range strings.Fields(text) {
		if v, ok := strings.CutPrefix(f, "domains="); ok {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				return n
			}
		}
	}
	return -1
}
