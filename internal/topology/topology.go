// Package topology models the inter-domain (Autonomous System) graph that
// MASC/BGMP operate over.
//
// Nodes are domains; edges are inter-domain links between their border
// routers. The paper measures tree quality in inter-domain hops, so paths
// here are unweighted (BFS).
//
// The paper's evaluation topology was a 3326-node graph derived from BGP
// routing-table dumps at Oregon route-views. That data is not available to
// this reproduction, so the ASGraph generator synthesizes a deterministic
// graph with the same node count and the sparse, highly skewed degree
// distribution of the 1998 AS graph (preferential attachment with a small
// number of extra peering edges). See DESIGN.md §2 for the substitution
// rationale.
package topology

import (
	"fmt"
	"math/rand"
)

// DomainID identifies a domain (node) in a Graph. IDs are dense indices in
// [0, NumDomains).
type DomainID int

// NoDomain is the invalid DomainID, used where "no parent"/"unreachable"
// must be represented.
const NoDomain DomainID = -1

// Relation classifies a link for routing-policy purposes.
type Relation int

const (
	// RelPeer links two domains with no transit obligations.
	RelPeer Relation = iota
	// RelProviderCustomer marks a transit link; which side is the
	// provider is recorded in the graph and queried with IsProviderOf.
	RelProviderCustomer
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case RelPeer:
		return "peer"
	case RelProviderCustomer:
		return "provider-customer"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Edge is one directed half of an inter-domain adjacency as stored in the
// adjacency lists.
type Edge struct {
	To  DomainID
	Rel Relation
}

// Graph is an undirected domain graph without duplicate links or self
// loops. Construct with New; the zero value is an empty graph.
type Graph struct {
	adj       [][]Edge
	providers map[DomainID]map[DomainID]bool // providers[c][p]: p is a provider of c
}

// New returns a graph with n isolated domains.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// NumDomains returns the number of domains.
func (g *Graph) NumDomains() int { return len(g.adj) }

// AddDomains appends n new domains and returns the ID of the first.
func (g *Graph) AddDomains(n int) DomainID {
	first := DomainID(len(g.adj))
	g.adj = append(g.adj, make([][]Edge, n)...)
	return first
}

// AddLink connects a and b as peers. Self-loops and duplicate links are
// ignored.
func (g *Graph) AddLink(a, b DomainID) { g.addLink(a, b, RelPeer) }

// AddProviderLink connects provider p and customer c, recording the
// provider-customer relation used by export policies.
func (g *Graph) AddProviderLink(p, c DomainID) {
	if g.addLink(p, c, RelProviderCustomer) {
		if g.providers == nil {
			g.providers = map[DomainID]map[DomainID]bool{}
		}
		m := g.providers[c]
		if m == nil {
			m = map[DomainID]bool{}
			g.providers[c] = m
		}
		m[p] = true
	}
}

func (g *Graph) addLink(a, b DomainID, rel Relation) bool {
	if a == b || g.HasLink(a, b) {
		return false
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Rel: rel})
	g.adj[b] = append(g.adj[b], Edge{To: a, Rel: rel})
	return true
}

// RemoveLink disconnects a and b (either order), reporting whether a link
// existed. Provider-customer records for the pair are dropped with it. The
// fault experiments use this to model long-lived link failures at the
// topology level; transient faults belong to the faultinject plane.
func (g *Graph) RemoveLink(a, b DomainID) bool {
	if !g.HasLink(a, b) {
		return false
	}
	g.adj[a] = dropEdge(g.adj[a], b)
	g.adj[b] = dropEdge(g.adj[b], a)
	delete(g.providers[a], b)
	delete(g.providers[b], a)
	return true
}

func dropEdge(es []Edge, to DomainID) []Edge {
	for i, e := range es {
		if e.To == to {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// HasLink reports whether a and b are adjacent.
func (g *Graph) HasLink(a, b DomainID) bool {
	if a < 0 || b < 0 || int(a) >= len(g.adj) || int(b) >= len(g.adj) {
		return false
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// IsProviderOf reports whether p is a direct provider of c.
func (g *Graph) IsProviderOf(p, c DomainID) bool { return g.providers[c][p] }

// Providers returns c's direct providers in unspecified order.
func (g *Graph) Providers(c DomainID) []DomainID {
	var out []DomainID
	for p := range g.providers[c] {
		out = append(out, p)
	}
	return out
}

// Neighbors returns the adjacency list of d. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(d DomainID) []Edge { return g.adj[d] }

// Degree returns the number of links at d.
func (g *Graph) Degree(d DomainID) int { return len(g.adj[d]) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// BFS computes hop distances and BFS parents from src. Unreachable domains
// have dist -1 and parent NoDomain. Neighbor order is deterministic
// (insertion order), so the shortest-path tree is reproducible.
func (g *Graph) BFS(src DomainID) (dist []int, parent []DomainID) {
	n := len(g.adj)
	dist = make([]int, n)
	parent = make([]DomainID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = NoDomain
	}
	dist[src] = 0
	queue := make([]DomainID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return dist, parent
}

// Path returns the hop-shortest path from a to b inclusive, or nil when b is
// unreachable.
func (g *Graph) Path(a, b DomainID) []DomainID {
	dist, parent := g.BFS(a)
	if dist[b] < 0 {
		return nil
	}
	path := []DomainID{b}
	for cur := b; cur != a; {
		cur = parent[cur]
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is a single connected component.
// The empty graph is connected.
func (g *Graph) Connected() bool {
	if len(g.adj) == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Hierarchy builds the regular provider hierarchy of the paper's Fig 2
// simulation: topLevel backbone domains, fully meshed with each other (as at
// an exchange), each with childrenPer customer domains attached by
// provider-customer links. It returns the graph, the top-level IDs, and a
// map from each top-level ID to its children.
func Hierarchy(topLevel, childrenPer int) (g *Graph, tops []DomainID, children map[DomainID][]DomainID) {
	g = New(0)
	children = map[DomainID][]DomainID{}
	tops = make([]DomainID, topLevel)
	for i := range tops {
		tops[i] = g.AddDomains(1)
	}
	for i := 0; i < topLevel; i++ {
		for j := i + 1; j < topLevel; j++ {
			g.AddLink(tops[i], tops[j])
		}
	}
	for _, t := range tops {
		for c := 0; c < childrenPer; c++ {
			id := g.AddDomains(1)
			g.AddProviderLink(t, id)
			children[t] = append(children[t], id)
		}
	}
	return g, tops, children
}

// ASGraph synthesizes an AS-like inter-domain topology with n domains using
// linear preferential attachment: each new domain attaches to 1 or 2
// existing domains chosen proportionally to degree (70 % single-homed,
// 30 % dual-homed, matching the sparsity of 1998 BGP-table graphs), then
// extraPeering additional random peering links are added between distinct
// non-adjacent domains. The result is connected and deterministic for a
// given seed.
func ASGraph(n int, extraPeering int, seed int64) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	r := rand.New(rand.NewSource(seed))
	g.AddLink(0, 1)
	// endpoints holds one entry per edge endpoint; sampling uniformly from
	// it is degree-proportional sampling.
	endpoints := []DomainID{0, 1}
	for v := DomainID(2); v < DomainID(n); v++ {
		m := 1
		if r.Float64() < 0.3 {
			m = 2
		}
		attached := map[DomainID]bool{}
		for len(attached) < m {
			u := endpoints[r.Intn(len(endpoints))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
			g.AddProviderLink(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	maxExtra := n*(n-1)/2 - g.NumLinks()
	if extraPeering > maxExtra {
		extraPeering = maxExtra
	}
	for added := 0; added < extraPeering; {
		a := DomainID(r.Intn(n))
		b := DomainID(r.Intn(n))
		if a == b || g.HasLink(a, b) {
			continue
		}
		g.AddLink(a, b)
		added++
	}
	return g
}
