package topology

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := ASGraph(200, 40, 7)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, "as"); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	if !strings.HasPrefix(buf.String(), "# kind=as domains=200 ") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	back, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if back.NumDomains() != g.NumDomains() || back.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip: %d domains / %d links, want %d / %d",
			back.NumDomains(), back.NumLinks(), g.NumDomains(), g.NumLinks())
	}
	for a := 0; a < g.NumDomains(); a++ {
		for _, e := range g.Neighbors(DomainID(a)) {
			if !back.HasLink(DomainID(a), e.To) {
				t.Fatalf("round trip lost link %d-%d", a, e.To)
			}
		}
	}
	// A second write must reproduce the original bytes (modulo the
	// kind label, which Write takes as an argument).
	var buf2 bytes.Buffer
	if err := WriteEdgeList(&buf2, back, "as"); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("write-read-write is not byte-stable")
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n\n2 3\n"))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumDomains() != 4 || g.NumLinks() != 3 {
		t.Errorf("inferred %d domains / %d links, want 4 / 3", g.NumDomains(), g.NumLinks())
	}
}

func TestReadEdgeListHeaderPreservesIsolatedDomains(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# kind=as domains=10 links=1\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumDomains() != 10 {
		t.Errorf("domains = %d, want 10 from header", g.NumDomains())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"0 1 2\n", `line 1: expected "a b" link`},
		{"0 1\nx y\n", "line 2: link endpoints"},
		{"0 1\n2 -3\n", "line 2: link endpoints"},
		{"0 1\n\n4 4\n", "line 3: self-loop"},
		{"# header only\n", "no links"},
	}
	for _, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("accepted %q", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not mention %q", err, tc.want)
		}
	}
}
