package topology

import "testing"

func BenchmarkASGraph3326(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ASGraph(3326, 350, int64(i))
	}
}

func BenchmarkBFS3326(b *testing.B) {
	g := ASGraph(3326, 350, 1998)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(DomainID(i % 3326))
	}
}

func BenchmarkPath(b *testing.B) {
	g := ASGraph(1000, 100, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g.Path(0, DomainID(1+i%999)) == nil {
			b.Fatal("unreachable")
		}
	}
}
