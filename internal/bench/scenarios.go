package bench

import (
	"fmt"
	"time"

	"mascbgmp/internal/core"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/experiments"
)

// The built-in suites. Each trial re-runs the underlying experiment with
// the trial's derived seed, so the trials are independent samples of the
// same workload and the percentile spread is the seed-to-seed variance.

func init() {
	Register(Scenario{
		Name:          "fig2-alloc",
		Description:   "MASC claim-algorithm allocation on the paper's 50x50 hierarchy (Fig 2)",
		DefaultTrials: 3,
		Metrics: []MetricDef{
			{Name: "utilization", Unit: "fraction", Better: Info,
				Help: "steady-state (day > 60) address-space utilization; paper band ~0.5"},
			{Name: "grib_final", Unit: "routes", Better: Lower,
				Help: "mean G-RIB size at the end of the run"},
			{Name: "live_blocks", Unit: "blocks", Better: Info,
				Help: "live block allocations at the end"},
			{Name: "failed", Unit: "requests", Better: Lower,
				Help: "block requests the allocator could not satisfy"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			cfg := experiments.DefaultFig2Config()
			cfg.Days = 150
			cfg.Seed = ctx.Seed
			cfg.Obs = ctx.Obs
			res := experiments.RunFig2(cfg)
			var uSum float64
			var n int
			for _, s := range res.Samples {
				if s.Day > 60 {
					uSum += s.Utilization
					n++
				}
			}
			util := 0.0
			if n > 0 {
				util = uSum / float64(n)
			}
			return TrialOutput{
				Values: map[string]float64{
					"utilization": util,
					"grib_final":  res.Samples[len(res.Samples)-1].GRIBAvg,
					"live_blocks": float64(res.LiveBlocks),
					"failed":      float64(res.Failed),
				},
				Rates: map[string]float64{"requests": float64(res.Satisfied + res.Failed)},
			}, nil
		},
	})

	Register(Scenario{
		Name:          "fig4-trees",
		Description:   "shared-tree path-length overhead sweep over the synthetic AS graph (Fig 4)",
		DefaultTrials: 5,
		Metrics: []MetricDef{
			{Name: "uni_avg", Unit: "ratio", Better: Info,
				Help: "unidirectional (PIM-SM-style RP) overhead vs shortest path, mean over sizes"},
			{Name: "bidir_avg", Unit: "ratio", Better: Lower,
				Help: "bidirectional BGMP tree overhead vs shortest path, mean over sizes"},
			{Name: "hybrid_avg", Unit: "ratio", Better: Lower,
				Help: "hybrid (source-branch) overhead vs shortest path, mean over sizes"},
			{Name: "tree_size", Unit: "domains", Better: Info,
				Help: "mean on-tree domain count at the largest group size"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			cfg := experiments.DefaultFig4Config()
			cfg.Domains = 1000
			cfg.ExtraPeering = 120
			cfg.GroupSizes = []int{10, 50, 200, 600}
			cfg.Trials = 3
			cfg.Seed = ctx.Seed
			cfg.Obs = ctx.Obs
			pts := experiments.RunFig4(cfg)
			var uni, bidir, hybrid float64
			for _, p := range pts {
				uni += p.UniAvg
				bidir += p.BidirAvg
				hybrid += p.HybridAvg
			}
			n := float64(len(pts))
			return TrialOutput{
				Values: map[string]float64{
					"uni_avg":    uni / n,
					"bidir_avg":  bidir / n,
					"hybrid_avg": hybrid / n,
					"tree_size":  pts[len(pts)-1].TreeSize,
				},
			}, nil
		},
	})

	Register(Scenario{
		Name: "scale-churn",
		Description: "join/leave churn over thousands of groups on the paper-scale " +
			"3326-domain AS graph, then a steady-state forwarding phase",
		DefaultTrials: 3,
		Metrics: []MetricDef{
			{Name: "grib_size", Unit: "routes", Better: Lower,
				Help: "aggregated G-RIB routes covering all group blocks"},
			{Name: "forwarding_entries", Unit: "entries", Better: Lower,
				Help: "total (group, domain) forwarding state after churn"},
			{Name: "mean_tree_size", Unit: "domains", Better: Info,
				Help: "mean on-tree domains per group after churn"},
			{Name: "joins", Unit: "ops", Better: Info,
				Help: "join operations processed during the churn phase"},
			{Name: "delivered", Unit: "packets", Better: Info,
				Help: "member deliveries during the forwarding phase"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			cfg := experiments.DefaultChurnConfig()
			cfg.Seed = ctx.Seed
			cfg.Obs = ctx.Obs
			cfg.DataPlane = ctx.Backend
			res := experiments.RunChurn(cfg)
			return TrialOutput{
				Values: map[string]float64{
					"grib_size":          float64(res.GRIBSize),
					"forwarding_entries": float64(res.ForwardingEntries),
					"mean_tree_size":     res.MeanTreeSize,
					"joins":              float64(res.Joins),
					"delivered":          float64(res.Delivered),
				},
				Rates: map[string]float64{
					"joins":     float64(res.Joins),
					"forwarded": float64(res.ForwardHops),
				},
			}, nil
		},
	})

	Register(Scenario{
		Name: "dataplane-compare",
		Description: "the three forwarding backends costed side by side on the " +
			"scale-churn workload: state, path stretch, per-packet header overhead",
		DefaultTrials: 3,
		Metrics: []MetricDef{
			{Name: "shared_entries", Unit: "entries", Better: Lower,
				Help: "shared-tree per-group forwarding entries across all domains"},
			{Name: "bier_transit_entries", Unit: "entries", Better: Lower,
				Help: "BIER per-group entries outside root domains (zero by design)"},
			{Name: "mapencap_transit_entries", Unit: "entries", Better: Lower,
				Help: "map-and-encap per-group entries outside root domains (zero by design)"},
			{Name: "overlay_entries", Unit: "entries", Better: Info,
				Help: "(group, member-domain) records in the root domains' overlay stores"},
			{Name: "shared_stretch", Unit: "ratio", Better: Lower,
				Help: "shared tree: mean delivery path length over shortest path"},
			{Name: "bier_stretch", Unit: "ratio", Better: Lower,
				Help: "BIER: mean delivery path length over shortest path (root detour)"},
			{Name: "mapencap_stretch", Unit: "ratio", Better: Lower,
				Help: "map-and-encap: mean delivery path length over shortest path"},
			{Name: "shared_hdr_pkt", Unit: "bytes", Better: Lower,
				Help: "shared tree: extra header bytes per packet (native forwarding: 0)"},
			{Name: "bier_hdr_pkt", Unit: "bytes", Better: Lower,
				Help: "BIER: bitstring plus climb-tunnel header bytes per packet"},
			{Name: "mapencap_hdr_pkt", Unit: "bytes", Better: Lower,
				Help: "map-and-encap: outer-header bytes per packet across all tunnels"},
			{Name: "shared_hops_pkt", Unit: "hops", Better: Info,
				Help: "shared tree: inter-domain link crossings per packet"},
			{Name: "bier_hops_pkt", Unit: "hops", Better: Info,
				Help: "BIER: inter-domain link crossings per packet"},
			{Name: "mapencap_hops_pkt", Unit: "hops", Better: Info,
				Help: "map-and-encap: inter-domain link crossings per packet"},
			{Name: "delivered", Unit: "packets", Better: Info,
				Help: "member deliveries (identical for every backend by construction)"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			cfg := experiments.DefaultChurnConfig()
			cfg.Seed = ctx.Seed
			cfg.Obs = ctx.Obs
			res := experiments.RunDataPlane(cfg)
			st, _ := res.Cost(dataplane.SharedTreeName)
			bier, _ := res.Cost(dataplane.BIERName)
			me, _ := res.Cost(dataplane.MapEncapName)
			if bier.Delivered != st.Delivered || me.Delivered != st.Delivered {
				return TrialOutput{}, fmt.Errorf(
					"delivery equivalence broken: shared=%d bier=%d map-encap=%d",
					st.Delivered, bier.Delivered, me.Delivered)
			}
			pkts := float64(res.Churn.Packets)
			return TrialOutput{
				Values: map[string]float64{
					"shared_entries":           float64(st.GroupEntries),
					"bier_transit_entries":     float64(bier.TransitEntries + bier.GroupEntries),
					"mapencap_transit_entries": float64(me.TransitEntries + me.GroupEntries),
					"overlay_entries":          float64(bier.OverlayEntries),
					"shared_stretch":           st.MeanStretch,
					"bier_stretch":             bier.MeanStretch,
					"mapencap_stretch":         me.MeanStretch,
					"shared_hdr_pkt":           float64(st.HeaderBytes) / pkts,
					"bier_hdr_pkt":             float64(bier.HeaderBytes) / pkts,
					"mapencap_hdr_pkt":         float64(me.HeaderBytes) / pkts,
					"shared_hops_pkt":          float64(st.ForwardHops) / pkts,
					"bier_hops_pkt":            float64(bier.ForwardHops) / pkts,
					"mapencap_hops_pkt":        float64(me.ForwardHops) / pkts,
					"delivered":                float64(st.Delivered),
				},
				Rates: map[string]float64{"packets": pkts},
			}, nil
		},
	})

	Register(Scenario{
		Name: "chaos-recovery",
		Description: "fault-injected border-router crash under 10% loss: time to reroute " +
			"onto the surviving path and to reconverge after restart",
		DefaultTrials: 5,
		Metrics: []MetricDef{
			{Name: "detect_s", Unit: "sim-seconds", Better: Lower,
				Help: "crash to the first SessionDown for the crashed router"},
			{Name: "reroute_s", Unit: "sim-seconds", Better: Lower,
				Help: "crash to all groups delivering over the transit path"},
			{Name: "reconverge_s", Unit: "sim-seconds", Better: Lower,
				Help: "restart to all groups re-attached on the direct path"},
			{Name: "delivery_ratio", Unit: "fraction", Better: Higher,
				Help: "probe deliveries surviving the lossy steady-state phase"},
			{Name: "recovered", Unit: "bool", Better: Info,
				Help: "1 when the end state is fully healthy"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			cfg := core.DefaultChaosConfig()
			cfg.LossRates = []float64{0.10}
			cfg.Packets = 15
			cfg.CrashFor = 3 * time.Minute
			cfg.Seed = ctx.Seed
			cfg.Obs = ctx.Obs
			cfg.DataPlane = ctx.Backend
			pts, err := core.RunChaos(cfg)
			if err != nil {
				return TrialOutput{}, err
			}
			pt := pts[0]
			recovered := 0.0
			if pt.Recovered {
				recovered = 1
			}
			return TrialOutput{
				Values: map[string]float64{
					"detect_s":       pt.Detect.Seconds(),
					"reroute_s":      pt.Reroute.Seconds(),
					"reconverge_s":   pt.Reconverge.Seconds(),
					"delivery_ratio": pt.DeliveryRatio,
					"recovered":      recovered,
				},
			}, nil
		},
	})

	Register(Scenario{
		Name: "chaos-detectors",
		Description: "the chaos-recovery crash measured under both failure detectors: " +
			"hold timers alone vs the BFD-style liveness plane with precomputed " +
			"backup parents (shared-tree plane; detection/reroute/reconverge split)",
		DefaultTrials: 5,
		Metrics: []MetricDef{
			{Name: "hold_detect_s", Unit: "sim-seconds", Better: Lower,
				Help: "hold-timer detector: crash to the first SessionDown"},
			{Name: "hold_reroute_s", Unit: "sim-seconds", Better: Lower,
				Help: "hold-timer detector: crash to all groups delivering over transit"},
			{Name: "hold_reconverge_s", Unit: "sim-seconds", Better: Lower,
				Help: "hold-timer detector: restart to all groups back on the direct path"},
			{Name: "live_detect_s", Unit: "sim-seconds", Better: Lower,
				Help: "liveness detector: crash to the first SessionDown"},
			{Name: "live_reroute_s", Unit: "sim-seconds", Better: Lower,
				Help: "liveness detector: crash to all groups delivering over transit"},
			{Name: "live_reconverge_s", Unit: "sim-seconds", Better: Lower,
				Help: "liveness detector: restart to all groups back on the direct path"},
			{Name: "reroute_speedup", Unit: "ratio", Better: Higher,
				Help: "hold_reroute_s / live_reroute_s — the time-to-reroute gain"},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			// Both runs share the trial seed so the only difference is the
			// detector. The data plane stays shared-tree: the stateless
			// backends reroute on the iBGP withdrawal regardless of the
			// detector, which is not the comparison being made here.
			run := func(live bool) (core.ChaosPoint, error) {
				cfg := core.DefaultChaosConfig()
				cfg.LossRates = []float64{0.10}
				cfg.Packets = 15
				cfg.CrashFor = 3 * time.Minute
				cfg.Seed = ctx.Seed
				cfg.Obs = ctx.Obs
				cfg.Liveness = live
				pts, err := core.RunChaos(cfg)
				if err != nil {
					return core.ChaosPoint{}, err
				}
				return pts[0], nil
			}
			hold, err := run(false)
			if err != nil {
				return TrialOutput{}, fmt.Errorf("hold-timer run: %w", err)
			}
			live, err := run(true)
			if err != nil {
				return TrialOutput{}, fmt.Errorf("liveness run: %w", err)
			}
			if !hold.Recovered || !live.Recovered {
				return TrialOutput{}, fmt.Errorf(
					"trial did not recover: hold=%t live=%t", hold.Recovered, live.Recovered)
			}
			if live.Reroute <= 0 {
				return TrialOutput{}, fmt.Errorf("liveness reroute time %v, want > 0", live.Reroute)
			}
			return TrialOutput{
				Values: map[string]float64{
					"hold_detect_s":     hold.Detect.Seconds(),
					"hold_reroute_s":    hold.Reroute.Seconds(),
					"hold_reconverge_s": hold.Reconverge.Seconds(),
					"live_detect_s":     live.Detect.Seconds(),
					"live_reroute_s":    live.Reroute.Seconds(),
					"live_reconverge_s": live.Reconverge.Seconds(),
					"reroute_speedup":   hold.Reroute.Seconds() / live.Reroute.Seconds(),
				},
			}, nil
		},
	})
}
