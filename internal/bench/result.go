package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"mascbgmp/internal/obs"
)

// SchemaID identifies the result-file format; bump on breaking changes.
const SchemaID = "mascbgmp-bench/v1"

// Percentiles summarizes a per-trial series.
type Percentiles struct {
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// MetricSummary is one metric aggregated over all trials. Series keeps
// the raw per-trial values in trial order so a baseline file carries
// enough information to re-derive any statistic later.
type MetricSummary struct {
	Name        string      `json:"name"`
	Unit        string      `json:"unit,omitempty"`
	Better      Direction   `json:"better"`
	Help        string      `json:"help,omitempty"`
	Mean        float64     `json:"mean"`
	Percentiles Percentiles `json:"percentiles"`
	Series      []float64   `json:"series"`
}

// HistogramSummary is one obs histogram merged across all trials: exact
// count/sum plus bucket-interpolated percentiles. Deterministic — the
// merge is commutative addition, so worker scheduling cannot change it.
type HistogramSummary struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Mean  uint64 `json:"mean"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
}

// Env records where and how the suite ran. Volatile: stripped before
// determinism comparison.
type Env struct {
	GoVersion string `json:"go_version,omitempty"`
	OS        string `json:"os,omitempty"`
	Arch      string `json:"arch,omitempty"`
	// Revision is the VCS revision from the build info, when the binary
	// was built from a checkout (absent under plain `go run` of a dirty
	// tree — callers must tolerate the empty string).
	Revision string `json:"revision,omitempty"`
	Parallel int    `json:"parallel,omitempty"`
	Started  string `json:"started,omitempty"`
}

// Timing holds everything wall-clock- or allocator-derived. Volatile:
// stripped before determinism comparison.
type Timing struct {
	TotalWallNS int64       `json:"total_wall_ns,omitempty"`
	Wall        Percentiles `json:"wall_ns,omitempty"`
	AllocBytes  Percentiles `json:"alloc_bytes,omitempty"`
	PeakHeap    Percentiles `json:"peak_heap_bytes,omitempty"`
	// Rates maps "<name>_per_sec" to the mean per-trial rate for every
	// rate counter the scenario reports (e.g. joins_per_sec).
	Rates map[string]float64 `json:"rates,omitempty"`
}

// SuiteResult is the machine-readable outcome of one suite run — the
// contents of a BENCH_<suite>.json file.
type SuiteResult struct {
	Schema      string            `json:"schema"`
	Suite       string            `json:"suite"`
	Description string            `json:"description,omitempty"`
	Trials      int               `json:"trials"`
	Seed        int64             `json:"seed"`
	Metrics     []MetricSummary   `json:"metrics"`
	Counters    map[string]uint64 `json:"counters,omitempty"`
	// Histograms carries the obs latency/work distributions the trials
	// recorded (join→graft, detect→reroute, forwarding fan-out, …),
	// merged across trials. Deterministic: part of the determinism view.
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
	// Spans holds the causal spans recorded when Options.Trace is set,
	// concatenated in trial order. Not serialized into the JSON baseline
	// — cmd/benchsuite renders them separately via -trace-out.
	Spans  []obs.SpanRecord `json:"-"`
	Env    Env              `json:"env"`
	Timing Timing           `json:"timing"`
}

// summarize computes mean and percentiles over a non-empty series.
func summarize(series []float64) (float64, Percentiles) {
	sorted := append([]float64(nil), series...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pct := func(p float64) float64 {
		// Nearest-rank on the sorted series.
		i := int(math.Round(p / 100 * float64(len(sorted)-1)))
		return sorted[i]
	}
	return sum / float64(len(sorted)), Percentiles{
		Min: sorted[0],
		P50: pct(50),
		P90: pct(90),
		P99: pct(99),
		Max: sorted[len(sorted)-1],
	}
}

// Validate checks the structural invariants of a result: schema tag,
// suite name, positive trial count, and per-metric series of the right
// length with ordered percentiles.
func (r SuiteResult) Validate() error {
	if r.Schema != SchemaID {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, SchemaID)
	}
	if r.Suite == "" {
		return fmt.Errorf("bench: empty suite name")
	}
	if r.Trials <= 0 {
		return fmt.Errorf("bench: trials = %d", r.Trials)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("bench: no metrics")
	}
	for _, m := range r.Metrics {
		if m.Name == "" {
			return fmt.Errorf("bench: unnamed metric")
		}
		switch m.Better {
		case Lower, Higher, Info:
		default:
			return fmt.Errorf("bench: metric %s: bad direction %q", m.Name, m.Better)
		}
		if len(m.Series) != r.Trials {
			return fmt.Errorf("bench: metric %s: %d series points for %d trials",
				m.Name, len(m.Series), r.Trials)
		}
		p := m.Percentiles
		if !(p.Min <= p.P50 && p.P50 <= p.P90 && p.P90 <= p.P99 && p.P99 <= p.Max) {
			return fmt.Errorf("bench: metric %s: percentiles out of order: %+v", m.Name, p)
		}
	}
	return nil
}

// StripVolatile returns a copy with the Env and Timing sections zeroed —
// the determinism view of a result: everything left must be a pure
// function of (suite, trials, seed).
func StripVolatile(r SuiteResult) SuiteResult {
	r.Env = Env{}
	r.Timing = Timing{}
	return r
}

// DeterministicDiff compares two results modulo their volatile sections
// and returns "" when identical, or a human-readable description of the
// first difference.
func DeterministicDiff(a, b SuiteResult) string {
	ja, err := json.Marshal(StripVolatile(a))
	if err != nil {
		return "marshal a: " + err.Error()
	}
	jb, err := json.Marshal(StripVolatile(b))
	if err != nil {
		return "marshal b: " + err.Error()
	}
	if string(ja) == string(jb) {
		return ""
	}
	// Localize the divergence for the error message.
	if a.Suite != b.Suite {
		return fmt.Sprintf("suite %q vs %q", a.Suite, b.Suite)
	}
	if a.Trials != b.Trials || a.Seed != b.Seed {
		return fmt.Sprintf("trials/seed (%d,%d) vs (%d,%d)", a.Trials, a.Seed, b.Trials, b.Seed)
	}
	for i := range a.Metrics {
		if i >= len(b.Metrics) {
			break
		}
		ma, mb := a.Metrics[i], b.Metrics[i]
		if ma.Name != mb.Name || ma.Mean != mb.Mean || fmt.Sprint(ma.Series) != fmt.Sprint(mb.Series) {
			return fmt.Sprintf("metric %s: %v vs %v", ma.Name, ma.Series, mb.Series)
		}
	}
	for k, va := range a.Counters {
		if vb := b.Counters[k]; va != vb {
			return fmt.Sprintf("counter %s: %d vs %d", k, va, vb)
		}
	}
	for k, va := range a.Histograms {
		if vb := b.Histograms[k]; va != vb {
			return fmt.Sprintf("histogram %s: %+v vs %+v", k, va, vb)
		}
	}
	return "results differ (structure)"
}

// PrometheusText renders the deterministic sections — counter sums and
// merged histograms — in Prometheus text exposition format: counters as
// `_total` counters, histograms as summaries with p50/p95/p99 quantile
// lines. Sorted, so equal results render to identical bytes.
func (r SuiteResult) PrometheusText() string {
	var b strings.Builder
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := obs.PromName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, r.Counters[k])
	}
	names = names[:0]
	for k := range r.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := r.Histograms[k]
		n := obs.PromName(k)
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %d\n", n, h.P50)
		fmt.Fprintf(&b, "%s{quantile=\"0.95\"} %d\n", n, h.P95)
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %d\n", n, h.P99)
		fmt.Fprintf(&b, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
	}
	return b.String()
}

// Regression is one metric that moved the wrong way past the tolerance.
type Regression struct {
	Metric   string
	Baseline float64
	Current  float64
	// Delta is the signed relative change, positive = grew.
	Delta float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g (%+.1f%%)", r.Metric, r.Baseline, r.Current, r.Delta*100)
}

// Compare gates current against baseline: every directional metric
// (Better == Lower or Higher) present in both must not move the wrong
// way by more than tolerance (relative, e.g. 0.10 = 10%). Info metrics
// are ignored. Returns the regressions found.
func Compare(baseline, current SuiteResult, tolerance float64) ([]Regression, error) {
	if baseline.Suite != current.Suite {
		return nil, fmt.Errorf("bench: comparing suite %q against baseline %q",
			current.Suite, baseline.Suite)
	}
	base := make(map[string]MetricSummary, len(baseline.Metrics))
	for _, m := range baseline.Metrics {
		base[m.Name] = m
	}
	var regs []Regression
	for _, m := range current.Metrics {
		b, ok := base[m.Name]
		if !ok || m.Better == Info {
			continue
		}
		var bad bool
		switch m.Better {
		case Lower:
			bad = m.Mean > b.Mean*(1+tolerance)+1e-12
		case Higher:
			bad = m.Mean < b.Mean*(1-tolerance)-1e-12
		}
		if bad {
			delta := 0.0
			if b.Mean != 0 {
				delta = (m.Mean - b.Mean) / math.Abs(b.Mean)
			}
			regs = append(regs, Regression{Metric: m.Name, Baseline: b.Mean, Current: m.Mean, Delta: delta})
		}
	}
	return regs, nil
}

// WriteFile serializes a result as indented JSON (trailing newline, so
// the file is diff- and cat-friendly).
func WriteFile(path string, r SuiteResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a result file.
func ReadFile(path string) (SuiteResult, error) {
	var r SuiteResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("bench: %s: %w", path, err)
	}
	return r, nil
}
