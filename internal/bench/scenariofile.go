package bench

import (
	"fmt"

	"mascbgmp/internal/experiments"
	"mascbgmp/internal/scenario"
)

// File-loaded scenarios: a parsed scenario.Spec becomes a registered
// Scenario with the generic workload metric set, runnable by name
// exactly like a built-in suite (benchsuite -scenario <file>).

// workloadMetrics is the metric set every scenario-file suite (and each
// sub-run of the workloads suite) reports. prefix namespaces the names
// when several workloads share one suite ("" for a standalone suite).
func workloadMetrics(prefix string) []MetricDef {
	return []MetricDef{
		{Name: prefix + "fanin", Unit: "ratio", Better: Higher,
			Help: "joins absorbed per join that grafted all the way to the root (§5.2 aggregation)"},
		{Name: prefix + "occ_max", Unit: "fraction", Better: Info,
			Help: "peak allocator occupancy (demand/capacity) over the run"},
		{Name: prefix + "occ_trough", Unit: "fraction", Better: Info,
			Help: "minimum occupancy after first reaching the 75% target (0 until reached)"},
		{Name: prefix + "expansions", Unit: "events", Better: Info,
			Help: "MASC prefix doublings driven by the workload"},
		{Name: prefix + "claims", Unit: "events", Better: Info,
			Help: "new prefix claims beyond doubling (extra + replacement)"},
		{Name: prefix + "collapses", Unit: "events", Better: Info,
			Help: "drained prefixes released back to the ledger"},
		{Name: prefix + "grib_final", Unit: "routes", Better: Lower,
			Help: "live claimed prefixes across roots at the end"},
		{Name: prefix + "forwarding_entries", Unit: "entries", Better: Lower,
			Help: "total (group, domain) forwarding state at the end"},
		{Name: prefix + "mean_tree_size", Unit: "domains", Better: Info,
			Help: "mean on-tree domains per group at the end"},
		{Name: prefix + "joins", Unit: "ops", Better: Info,
			Help: "join operations applied"},
		{Name: prefix + "delivered", Unit: "packets", Better: Higher,
			Help: "member deliveries in the forwarding phase"},
	}
}

// workloadValues flattens a WorkloadResult into the metric map, under
// the same prefix workloadMetrics declared.
func workloadValues(prefix string, res experiments.WorkloadResult, vals map[string]float64) {
	vals[prefix+"fanin"] = res.FanIn
	vals[prefix+"occ_max"] = res.OccMax
	vals[prefix+"occ_trough"] = res.OccTrough
	vals[prefix+"expansions"] = float64(res.Expansions)
	vals[prefix+"claims"] = float64(res.Claims)
	vals[prefix+"collapses"] = float64(res.Collapses)
	vals[prefix+"grib_final"] = float64(res.GRIBFinal)
	vals[prefix+"forwarding_entries"] = float64(res.ForwardingEntries)
	vals[prefix+"mean_tree_size"] = res.MeanTreeSize
	vals[prefix+"joins"] = float64(res.Joins)
	vals[prefix+"delivered"] = float64(res.Delivered)
}

// FileScenario wraps a parsed spec as a runnable Scenario (without
// registering it).
func FileScenario(spec scenario.Spec) Scenario {
	desc := spec.Description
	if desc == "" {
		desc = fmt.Sprintf("scenario file: %s workload on a %s topology", spec.Workload.Kind, spec.Topology.Kind)
	}
	return Scenario{
		Name:          spec.Name,
		Description:   desc,
		DefaultTrials: spec.Trials,
		Metrics:       workloadMetrics(""),
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			res, err := experiments.RunWorkload(experiments.WorkloadConfig{
				Spec:      spec,
				Seed:      ctx.Seed,
				DataPlane: ctx.Backend,
				Obs:       ctx.Obs,
			})
			if err != nil {
				return TrialOutput{}, err
			}
			vals := map[string]float64{}
			workloadValues("", res, vals)
			return TrialOutput{
				Values: vals,
				Rates: map[string]float64{
					"membership_ops": float64(res.Joins + res.Leaves),
					"packets":        float64(res.Packets),
				},
			}, nil
		},
	}
}

// LoadScenarioFile parses a scenario file and registers it beside the
// built-in suites, returning the registered Scenario. A name collision
// with an existing suite (built-in or previously loaded) is an error,
// not a panic: the name comes from user input.
func LoadScenarioFile(path string) (Scenario, error) {
	spec, err := scenario.ParseFile(path)
	if err != nil {
		return Scenario{}, err
	}
	if _, exists := Lookup(spec.Name); exists {
		return Scenario{}, fmt.Errorf("%s: scenario name %q is already registered; rename it in the file", path, spec.Name)
	}
	s := FileScenario(spec)
	Register(s)
	return s, nil
}
