package bench

import (
	"fmt"

	"mascbgmp/internal/experiments"
	"mascbgmp/internal/scenario"
)

// The workloads suite: every exemplar scenario file (flash-crowd,
// diurnal, zipf, affinity) run back to back in one trial, with each
// workload's metrics reported under its own prefix. The diurnal
// sub-run doubles as an in-trial invariant: the demand wave must drive
// the MASC allocators through at least one prefix expansion and one
// collapse, or the trial fails — BENCH_workloads.json is the recorded
// proof that the §4.3.3 machinery responds to workload shape alone.

func init() {
	builtins := scenario.Builtins()
	var metrics []MetricDef
	for _, b := range builtins {
		metrics = append(metrics, workloadMetrics(b.Name+"_")...)
	}
	Register(Scenario{
		Name: "workloads",
		Description: "the exemplar scenario files (flash-crowd, diurnal, zipf, affinity) " +
			"through the scenario engine: occupancy excursions, claim/collapse counts, join fan-in",
		DefaultTrials: 3,
		Metrics:       metrics,
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			vals := map[string]float64{}
			var ops, packets float64
			for k, b := range builtins {
				spec := scenario.MustParseBuiltin(b)
				res, err := experiments.RunWorkload(experiments.WorkloadConfig{
					Spec: spec,
					// Offset the sub-run seeds so the workloads draw
					// independent streams from one trial seed.
					Seed:      ctx.Seed + int64(k)*7919,
					DataPlane: ctx.Backend,
					Obs:       ctx.Obs,
				})
				if err != nil {
					return TrialOutput{}, fmt.Errorf("workload %s: %w", b.Name, err)
				}
				if b.Name == scenario.KindDiurnal {
					if res.Expansions < 1 || res.Collapses < 1 {
						return TrialOutput{}, fmt.Errorf(
							"diurnal wave drove %d expansions and %d collapses; want >= 1 of each",
							res.Expansions, res.Collapses)
					}
				}
				workloadValues(b.Name+"_", res, vals)
				ops += float64(res.Joins + res.Leaves)
				packets += float64(res.Packets)
			}
			return TrialOutput{
				Values: vals,
				Rates:  map[string]float64{"membership_ops": ops, "packets": packets},
			}, nil
		},
	})
}
