package bench

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// synthetic is a cheap scenario whose output is a pure function of the
// trial rng — ideal for exercising the runner without real workloads.
func synthetic() Scenario {
	return Scenario{
		Name:          "synthetic",
		Description:   "test-only",
		DefaultTrials: 4,
		Metrics: []MetricDef{
			{Name: "draw", Better: Info},
			{Name: "cost", Better: Lower},
		},
		Trial: func(ctx TrialContext) (TrialOutput, error) {
			v := ctx.Rng.Float64()
			ctx.Obs.Emit(obs.Event{Kind: obs.MASCClaim, Domain: wire.DomainID(ctx.Index + 1)})
			return TrialOutput{
				Values: map[string]float64{"draw": v, "cost": v * 10},
				Rates:  map[string]float64{"draws": 1},
			}, nil
		},
	}
}

func TestRunScenarioDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallel int) SuiteResult {
		res, err := RunScenario(synthetic(), Options{Trials: 16, Parallel: parallel, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8, 0} {
		if diff := DeterministicDiff(serial, run(p)); diff != "" {
			t.Fatalf("parallel=%d diverged from serial: %s", p, diff)
		}
	}
	// The JSON bytes themselves must match modulo the volatile sections.
	a, _ := json.Marshal(StripVolatile(serial))
	b, _ := json.Marshal(StripVolatile(run(8)))
	if string(a) != string(b) {
		t.Fatalf("stripped JSON differs:\n%s\n%s", a, b)
	}
	// Counters aggregated across trials, one claim per trial.
	if serial.Counters["masc.claim"] != 16 {
		t.Fatalf("counters = %v, want masc.claim=16", serial.Counters)
	}
	if serial.Timing.Rates["draws_per_sec"] <= 0 {
		t.Fatalf("rates = %v", serial.Timing.Rates)
	}
}

func TestRunScenarioSeedPerturbs(t *testing.T) {
	a, _ := RunScenario(synthetic(), Options{Trials: 8, Seed: 1})
	b, _ := RunScenario(synthetic(), Options{Trials: 8, Seed: 2})
	if DeterministicDiff(a, b) == "" {
		t.Fatal("different suite seeds produced identical results")
	}
}

func TestRunScenarioTrialError(t *testing.T) {
	s := synthetic()
	boom := errors.New("boom")
	s.Trial = func(ctx TrialContext) (TrialOutput, error) { return TrialOutput{}, boom }
	if _, err := RunScenario(s, Options{Trials: 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunScenarioMissingMetric(t *testing.T) {
	s := synthetic()
	s.Trial = func(ctx TrialContext) (TrialOutput, error) {
		return TrialOutput{Values: map[string]float64{"draw": 1}}, nil // no "cost"
	}
	if _, err := RunScenario(s, Options{Trials: 2}); err == nil {
		t.Fatal("missing declared metric must error")
	}
}

func TestResultRoundTripAndValidate(t *testing.T) {
	res, err := RunScenario(synthetic(), Options{Trials: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_synthetic.json")
	if err := WriteFile(path, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DeterministicDiff(res, back); diff != "" {
		t.Fatalf("round trip changed result: %s", diff)
	}
	if back.Env.GoVersion == "" || back.Timing.TotalWallNS <= 0 {
		t.Fatalf("volatile sections missing after round trip: %+v %+v", back.Env, back.Timing)
	}

	bad := res
	bad.Schema = "nope"
	if bad.Validate() == nil {
		t.Fatal("bad schema validated")
	}
	bad = res
	bad.Metrics = append([]MetricSummary(nil), res.Metrics...)
	bad.Metrics[0].Series = bad.Metrics[0].Series[:1]
	if bad.Validate() == nil {
		t.Fatal("truncated series validated")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base, err := RunScenario(synthetic(), Options{Trials: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cur := base
	cur.Metrics = append([]MetricSummary(nil), base.Metrics...)

	// Within tolerance: clean.
	regs, err := Compare(base, cur, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("self-compare: regs=%v err=%v", regs, err)
	}

	// "cost" (Better: Lower) grows 50%: flagged. "draw" (Info) grows too:
	// ignored.
	for i := range cur.Metrics {
		m := &cur.Metrics[i]
		m.Mean *= 1.5
	}
	regs, err = Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "cost" {
		t.Fatalf("regs = %v, want exactly [cost]", regs)
	}
	if regs[0].Delta < 0.45 || regs[0].Delta > 0.55 {
		t.Fatalf("delta = %v, want ~0.5", regs[0].Delta)
	}

	// Suite mismatch is an error, not a silent pass.
	other := cur
	other.Suite = "different"
	if _, err := Compare(base, other, 0.10); err == nil {
		t.Fatal("cross-suite compare must error")
	}
}

func TestBuiltinScenariosRegistered(t *testing.T) {
	for _, name := range []string{"fig2-alloc", "fig4-trees", "scale-churn",
		"chaos-recovery", "chaos-detectors", "dataplane-compare"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("suite %q not registered", name)
		}
	}
	names := Scenarios()
	for i := 1; i < len(names); i++ {
		if names[i-1].Name >= names[i].Name {
			t.Fatal("Scenarios() not sorted")
		}
	}
}

func TestRunScenarioRejectsUnknownBackend(t *testing.T) {
	if _, err := RunScenario(synthetic(), Options{Trials: 1, Backend: "flooding"}); err == nil {
		t.Fatal("unknown backend must error")
	}
	// A valid backend reaches the trial context.
	s := synthetic()
	var seen string
	s.Trial = func(ctx TrialContext) (TrialOutput, error) {
		seen = ctx.Backend
		return TrialOutput{Values: map[string]float64{"draw": 0, "cost": 0}}, nil
	}
	if _, err := RunScenario(s, Options{Trials: 1, Backend: dataplane.BIERName}); err != nil {
		t.Fatal(err)
	}
	if seen != dataplane.BIERName {
		t.Fatalf("trial saw backend %q, want %q", seen, dataplane.BIERName)
	}
}

func TestChaosRecoverySuiteRuns(t *testing.T) {
	// The cheapest real suite end-to-end: JSON-valid, deterministic at
	// different parallelism.
	run := func(parallel int) SuiteResult {
		res, err := RunSuite("chaos-recovery", Options{Trials: 2, Parallel: parallel, Seed: 1998})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if diff := DeterministicDiff(a, b); diff != "" {
		t.Fatalf("chaos-recovery diverged across parallelism: %s", diff)
	}
	for _, m := range a.Metrics {
		if m.Name == "recovered" && m.Mean != 1 {
			t.Fatalf("recovered mean = %v, want 1", m.Mean)
		}
	}
	if a.Counters["session.down"] == 0 {
		t.Fatalf("counters = %v, want session.down > 0", a.Counters)
	}
}
