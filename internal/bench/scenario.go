// Package bench is the scenario-driven benchmark layer: named workloads
// (suites) registered once, run through the internal/harness parallel
// trial runner, and reported as a machine-readable SuiteResult that
// serializes to BENCH_<suite>.json. Scenario outputs are deterministic
// functions of the suite seed — identical at any parallelism — while
// wall-clock, allocation, and rate figures live in the volatile Env and
// Timing sections that determinism comparisons strip.
//
// Layering: bench sits above core (it drives both the experiments
// harnesses and the full-network chaos sweep) and below the facade
// package, which re-exports the registry for cmd/benchsuite and the root
// microbenchmarks.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"mascbgmp/internal/obs"
)

// Direction says which way a metric should move to be "better", so the
// -compare regression gate knows what to flag.
type Direction string

const (
	// Lower means smaller values are better (latencies, table sizes).
	Lower Direction = "lower"
	// Higher means larger values are better (delivery ratios).
	Higher Direction = "higher"
	// Info marks a descriptive metric that is recorded and checked for
	// determinism but never gated on (counts, sizes with no preference).
	Info Direction = "info"
)

// MetricDef declares one metric a scenario reports every trial.
type MetricDef struct {
	Name   string
	Unit   string
	Better Direction
	Help   string
}

// TrialContext is what a scenario's Trial func gets: the trial index, a
// seed and rng derived from (suite seed, index) — so results are
// bit-identical regardless of worker count — and a fresh per-trial
// observer whose counter totals are summed into SuiteResult.Counters.
// Backend carries Options.Backend: the data-plane backend the suite was
// asked to run under (empty: the scenario's default). Scenarios that
// model forwarding honor it; others may ignore it.
type TrialContext struct {
	Index   int
	Seed    int64
	Rng     *rand.Rand
	Obs     *obs.Observer
	Backend string
}

// TrialOutput is one trial's measurements. Values must contain exactly
// the scenario's declared metric names. Rates holds operation counts
// (events completed during the trial); the runner divides them by the
// trial's wall time and reports the mean as Timing.Rates["<name>_per_sec"]
// — kept out of Values because anything wall-clock-derived is
// nondeterministic by nature.
type TrialOutput struct {
	Values map[string]float64
	Rates  map[string]float64
}

// Scenario is a named, registered benchmark workload.
type Scenario struct {
	Name        string
	Description string
	// DefaultTrials is used when Options.Trials is zero.
	DefaultTrials int
	Metrics       []MetricDef
	Trial         func(TrialContext) (TrialOutput, error)
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{} // guarded by regMu
)

// Register adds a scenario to the global registry. It panics on a
// duplicate or malformed scenario — registration happens in init funcs
// and a bad entry is a programming error.
func Register(s Scenario) {
	if s.Name == "" || s.Trial == nil || len(s.Metrics) == 0 {
		panic(fmt.Sprintf("bench: malformed scenario %+v", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("bench: duplicate scenario " + s.Name)
	}
	registry[s.Name] = s
}

// Scenarios returns all registered scenarios sorted by name.
func Scenarios() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup finds a registered scenario by name.
func Lookup(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}
