package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/harness"
	"mascbgmp/internal/obs"
)

// Options parameterize a suite run.
type Options struct {
	// Trials overrides the scenario's DefaultTrials when positive.
	Trials int
	// Parallel bounds the worker pool; <= 0 uses GOMAXPROCS.
	Parallel int
	// Seed is the suite seed every trial's seed derives from.
	Seed int64
	// Backend selects the data-plane backend for scenarios that model
	// forwarding (scale-churn, chaos-recovery). Empty keeps each
	// scenario's default; otherwise it must be one of dataplane.Names().
	Backend string
	// Trace attaches a deterministic tracer (seeded from the trial seed)
	// to every trial's observer; recorded spans concatenate in trial
	// order into SuiteResult.Spans. Suites that drive traced subsystems
	// (network builds, allocator claims) produce span trees; others
	// produce none.
	Trace bool
}

// RunSuite runs a registered scenario by name.
func RunSuite(name string, opts Options) (SuiteResult, error) {
	s, ok := Lookup(name)
	if !ok {
		return SuiteResult{}, fmt.Errorf("bench: unknown suite %q (try -list)", name)
	}
	return RunScenario(s, opts)
}

// RunScenario runs a scenario (registered or not) through the harness
// and aggregates the trials into a SuiteResult. The Metrics and Counters
// sections are pure functions of (scenario, trials, seed); Env and
// Timing carry everything host- or wall-clock-dependent.
func RunScenario(s Scenario, opts Options) (SuiteResult, error) {
	if opts.Backend != "" && !dataplane.ValidName(opts.Backend) {
		return SuiteResult{}, fmt.Errorf("bench: unknown backend %q (valid: %s)",
			opts.Backend, strings.Join(dataplane.Names(), ", "))
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = s.DefaultTrials
	}
	if trials <= 0 {
		trials = 1
	}

	type trialRecord struct {
		out   TrialOutput
		obs   map[string]uint64
		hists map[string]obs.HistSnapshot
		spans []obs.SpanRecord
	}
	start := time.Now()
	results, err := harness.Run(harness.Config{
		Trials:   trials,
		Parallel: opts.Parallel,
		Seed:     opts.Seed,
		Run: func(t harness.Trial) (any, error) {
			ob := obs.NewObserver()
			var tr *obs.Tracer
			if opts.Trace {
				tr = obs.NewTracer(t.Seed)
				ob.SetTracer(tr)
			}
			out, err := s.Trial(TrialContext{
				Index: t.Index, Seed: t.Seed, Rng: t.Rng, Obs: ob,
				Backend: opts.Backend,
			})
			if err != nil {
				return nil, err
			}
			for _, m := range s.Metrics {
				if _, ok := out.Values[m.Name]; !ok {
					return nil, fmt.Errorf("trial output missing metric %q", m.Name)
				}
			}
			snap := ob.Snapshot()
			return trialRecord{out: out, obs: snap.NameTotals(), hists: snap.HistTotals(),
				spans: tr.Records()}, nil
		},
	})
	if err != nil {
		return SuiteResult{}, fmt.Errorf("bench: suite %s: %w", s.Name, err)
	}
	totalWall := time.Since(start)

	res := SuiteResult{
		Schema:      SchemaID,
		Suite:       s.Name,
		Description: s.Description,
		Trials:      trials,
		Seed:        opts.Seed,
		Counters:    map[string]uint64{},
		Env:         captureEnv(opts.Parallel, start),
	}

	// Deterministic sections: metric series in trial order, counter sums.
	for _, def := range s.Metrics {
		series := make([]float64, trials)
		for i, r := range results {
			series[i] = r.Value.(trialRecord).out.Values[def.Name]
		}
		mean, pct := summarize(series)
		res.Metrics = append(res.Metrics, MetricSummary{
			Name: def.Name, Unit: def.Unit, Better: def.Better, Help: def.Help,
			Mean: mean, Percentiles: pct, Series: series,
		})
	}
	for _, r := range results {
		for k, v := range r.Value.(trialRecord).obs {
			res.Counters[k] += v
		}
	}
	if len(res.Counters) == 0 {
		res.Counters = nil
	}
	// Histograms merge by bucket addition (commutative), so the summary is
	// identical at any parallelism, like the counters above.
	merged := map[string]obs.HistSnapshot{}
	for _, r := range results {
		for name, h := range r.Value.(trialRecord).hists {
			m := merged[name]
			m.Merge(h)
			merged[name] = m
		}
	}
	if len(merged) > 0 {
		res.Histograms = make(map[string]HistogramSummary, len(merged))
		for name, h := range merged {
			res.Histograms[name] = HistogramSummary{
				Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
		}
	}
	for _, r := range results {
		res.Spans = append(res.Spans, r.Value.(trialRecord).spans...)
	}

	// Volatile sections: wall/alloc/heap percentiles and mean rates.
	walls := make([]float64, trials)
	allocs := make([]float64, trials)
	heaps := make([]float64, trials)
	rateSums := map[string]float64{}
	for i, r := range results {
		walls[i] = float64(r.Wall)
		allocs[i] = float64(r.AllocBytes)
		heaps[i] = float64(r.PeakHeapBytes)
		secs := r.Wall.Seconds()
		if secs <= 0 {
			continue
		}
		for k, count := range r.Value.(trialRecord).out.Rates {
			rateSums[k] += count / secs
		}
	}
	res.Timing.TotalWallNS = totalWall.Nanoseconds()
	_, res.Timing.Wall = summarize(walls)
	_, res.Timing.AllocBytes = summarize(allocs)
	_, res.Timing.PeakHeap = summarize(heaps)
	if len(rateSums) > 0 {
		res.Timing.Rates = make(map[string]float64, len(rateSums))
		for k, sum := range rateSums {
			res.Timing.Rates[k+"_per_sec"] = sum / float64(trials)
		}
	}
	return res, nil
}

// captureEnv snapshots the host metadata. The VCS revision comes from
// the build info and is best-effort: absent under `go run` of a dirty
// tree or a non-VCS build.
func captureEnv(parallel int, started time.Time) Env {
	env := Env{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Parallel:  parallel,
		Started:   started.UTC().Format(time.RFC3339),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				env.Revision = kv.Value
			}
		}
	}
	return env
}
