package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mascbgmp/internal/scenario"
)

// writeScenario drops scenario-file bytes in a temp dir.
func writeScenario(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// smallScenario is a fast file scenario for runner tests (unique name
// per call site to keep the global registry conflict-free).
func smallScenario(name string) string {
	return `name = "` + name + `"
description = "test scenario"
trials = 2

[topology]
kind = "as"
domains = 96
peering = 12

[workload]
kind = "zipf"
groups = 24
root-domains = 2
duration = "20m"
step = "1m"
events-per-step = 30
zipf-s = 1.4
zipf-v = 1.0
sends-per-group = 1
`
}

func TestLoadScenarioFileRegistersAndRuns(t *testing.T) {
	path := writeScenario(t, "s.toml", smallScenario("filetest-zipf"))
	s, err := LoadScenarioFile(path)
	if err != nil {
		t.Fatalf("LoadScenarioFile: %v", err)
	}
	if s.Name != "filetest-zipf" || s.DefaultTrials != 2 {
		t.Errorf("loaded %q trials=%d", s.Name, s.DefaultTrials)
	}
	if _, ok := Lookup("filetest-zipf"); !ok {
		t.Fatal("loaded scenario not in registry")
	}

	// The -parallel 1 vs 8 determinism contract, through the real runner.
	a, err := RunSuite("filetest-zipf", Options{Trials: 4, Parallel: 1, Seed: 9})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	b, err := RunSuite("filetest-zipf", Options{Trials: 4, Parallel: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if d := DeterministicDiff(a, b); d != "" {
		t.Fatalf("parallel 1 vs 8 differ: %s", d)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("result does not validate: %v", err)
	}
}

func TestLoadScenarioFileRejectsDuplicates(t *testing.T) {
	path := writeScenario(t, "s.toml", smallScenario("filetest-dup"))
	if _, err := LoadScenarioFile(path); err != nil {
		t.Fatalf("first load: %v", err)
	}
	_, err := LoadScenarioFile(path)
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate load: err = %v", err)
	}
	// A collision with a built-in suite is the same error.
	path2 := writeScenario(t, "s2.toml", strings.Replace(smallScenario("x"), `name = "x"`, `name = "workloads"`, 1))
	if _, err := LoadScenarioFile(path2); err == nil {
		t.Fatal("shadowing a built-in suite did not error")
	}
}

func TestLoadScenarioFileParseErrorHasLine(t *testing.T) {
	path := writeScenario(t, "bad.toml", "name = \"b\"\n[topology]\nkind = \"as\"\ndomains = \"lots\"\n[workload]\nkind = \"uniform\"\n")
	_, err := LoadScenarioFile(path)
	if err == nil {
		t.Fatal("bad file loaded")
	}
	pe, ok := err.(*scenario.ParseError)
	if !ok {
		t.Fatalf("error type %T, want *scenario.ParseError", err)
	}
	if pe.Line != 4 || !strings.Contains(err.Error(), "bad.toml:4:") {
		t.Errorf("error = %v, want bad.toml:4: position", err)
	}
}

// TestWorkloadsSuiteDeterministic runs the real workloads suite (one
// trial) at two parallelism levels. One trial is ~four engine runs at
// exemplar scale, so keep the count minimal.
func TestWorkloadsSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workloads suite trial is relatively heavy")
	}
	a, err := RunSuite("workloads", Options{Trials: 1, Parallel: 1, Seed: 5})
	if err != nil {
		t.Fatalf("RunSuite(workloads): %v", err)
	}
	b, err := RunSuite("workloads", Options{Trials: 1, Parallel: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := DeterministicDiff(a, b); d != "" {
		t.Fatalf("workloads parallel 1 vs 8 differ: %s", d)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("workloads result invalid: %v", err)
	}
	// The acceptance invariant, visible in the recorded metrics too.
	for _, name := range []string{"diurnal_expansions", "diurnal_collapses"} {
		found := false
		for _, m := range a.Metrics {
			if m.Name == name {
				found = true
				if m.Mean < 1 {
					t.Errorf("%s mean = %v, want >= 1", name, m.Mean)
				}
			}
		}
		if !found {
			t.Errorf("metric %s missing from workloads result", name)
		}
	}
}
