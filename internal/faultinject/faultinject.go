// Package faultinject is the deterministic fault plane for the transport
// layer: per-link message drop/duplicate/reorder/delay, link partitions
// with scheduled heal, and peer crash/restart.
//
// The paper's stability requirement (§3) and BGMP's tree-repair machinery
// (§5.4) only matter when links actually flap and peers actually crash.
// The plane sits between a sender and its delivery function: every message
// crossing an instrumented link is offered to Deliver, which applies the
// link's configured faults before (or instead of) invoking the delivery.
//
// Determinism: all randomness derives from the configured *rand.Rand and
// all time from the configured simclock.Clock. Each directed link gets its
// own rand stream, seeded from the master seed and the link's endpoints,
// so the nth message on a link always sees the same draws no matter how
// traffic on other links interleaves with it. Driven from a synchronous
// network over a simulated clock, the same seed reproduces the same faults
// byte-for-byte — the property the chaossim experiment and the determinism
// tests assert.
//
// Layering: faultinject sits beside transport — it imports only simclock,
// wire, obs, and the standard library.
package faultinject

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// Class partitions traffic so faults can target a subset of it: control
// messages ride the (notionally TCP) peering and usually fail as a session,
// while data and keepalives see per-message loss.
type Class uint8

const (
	// Control is BGP/BGMP/MASC protocol traffic.
	Control Class = iota
	// Data is multicast data-plane traffic.
	Data
	// Keepalive is session-liveness traffic (core's session supervision).
	Keepalive
	// Liveness is BFD-style fast-liveness probe traffic (internal/liveness).
	// It is classed apart from keepalives so experiments can fail the two
	// detectors independently.
	Liveness
)

// ClassMask selects which classes a link's faults apply to.
type ClassMask uint8

const (
	// MaskControl selects protocol control messages.
	MaskControl ClassMask = 1 << iota
	// MaskData selects data-plane messages.
	MaskData
	// MaskKeepalive selects session keepalives.
	MaskKeepalive
	// MaskLiveness selects fast-liveness probes.
	MaskLiveness
	// MaskAll selects every class. A zero ClassMask in LinkFaults is
	// treated as MaskAll.
	MaskAll = MaskControl | MaskData | MaskKeepalive | MaskLiveness
)

func (m ClassMask) has(c Class) bool {
	if m == 0 {
		m = MaskAll
	}
	switch c {
	case Data:
		return m&MaskData != 0
	case Keepalive:
		return m&MaskKeepalive != 0
	case Liveness:
		return m&MaskLiveness != 0
	default:
		return m&MaskControl != 0
	}
}

// LinkFaults is the fault profile of one (bidirectional) link.
type LinkFaults struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Reorder is the probability a message is held back and delivered
	// after the link's next message (a pairwise swap).
	Reorder float64
	// Delay, when positive, defers every delivery by this duration through
	// the plane's clock.
	Delay time.Duration
	// Classes selects which traffic classes the faults apply to; zero
	// means all classes.
	Classes ClassMask
}

// zero reports an all-zero profile (no faults).
func (f LinkFaults) zero() bool { return f == LinkFaults{} }

// Config parameterizes a Plane.
type Config struct {
	// Clock schedules delays, partition heals, and peer restarts.
	// Defaults to the real clock; simulations must pass a *simclock.Sim.
	Clock simclock.Clock
	// Rand drives every probabilistic fault decision. Required: a plane
	// without an explicit seed cannot be reproduced.
	Rand *rand.Rand
	// Default is the fault profile applied to links without a SetLink
	// override.
	Default LinkFaults
	// Obs observes every applied fault (fault.drop, fault.dup, …),
	// partitions/heals, and peer crash/restart. Nil disables observation.
	Obs *obs.Observer
}

// ErrNoRand is returned by New when Config.Rand is nil.
var ErrNoRand = errors.New("faultinject: Config.Rand is required (explicit seeds only)")

// Stats counts the faults a plane has applied.
type Stats struct {
	Delivered  uint64 // messages delivered unharmed (possibly delayed)
	Dropped    uint64 // messages discarded (probability or partition)
	Duplicated uint64 // messages delivered twice
	Reordered  uint64 // messages swapped with their successor
	Delayed    uint64 // messages deferred through the clock
}

// linkKey canonicalizes an unordered router pair.
type linkKey struct{ a, b wire.RouterID }

func keyOf(a, b wire.RouterID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// Plane is a fault plane. Safe for concurrent use; deterministic when
// driven from a single goroutine (synchronous networks).
type Plane struct {
	cfg Config

	mu       sync.Mutex
	seedBase int64                  // guarded by mu
	links    map[linkKey]LinkFaults // guarded by mu
	// linksDir holds one-direction overrides (SetLinkDirected); they take
	// precedence over the bidirectional profile for their direction only,
	// so asymmetric failures (A hears B, B never hears A) are expressible.
	// guarded by mu
	linksDir    map[directedKey]LinkFaults
	partitioned map[linkKey]bool       // guarded by mu
	crashed     map[wire.RouterID]bool // guarded by mu
	// rngs holds one rand stream per directed link, lazily seeded from
	// seedBase and the endpoints: per-link fault sequences are then
	// independent of how traffic on other links interleaves. guarded by mu
	rngs map[directedKey]*rand.Rand
	// held buffers one reordered message per directed link. guarded by mu
	held  map[directedKey]func()
	stats Stats // guarded by mu

	onCrash, onRestart func(wire.RouterID)
}

type directedKey struct{ from, to wire.RouterID }

// New returns a Plane, or ErrNoRand when no Rand is configured.
func New(cfg Config) (*Plane, error) {
	if cfg.Rand == nil {
		return nil, ErrNoRand
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	return &Plane{
		cfg:         cfg,
		seedBase:    cfg.Rand.Int63(),
		links:       map[linkKey]LinkFaults{},
		linksDir:    map[directedKey]LinkFaults{},
		partitioned: map[linkKey]bool{},
		crashed:     map[wire.RouterID]bool{},
		rngs:        map[directedKey]*rand.Rand{},
		held:        map[directedKey]func(){},
	}, nil
}

// rng returns the directed link's rand stream, creating it on first use
// from the plane's seed and the endpoints. Caller holds p.mu.
func (p *Plane) rngLocked(k directedKey) *rand.Rand {
	r, ok := p.rngs[k]
	if !ok {
		r = rand.New(rand.NewSource(p.seedBase ^ (int64(k.from)<<32 | int64(k.to))))
		p.rngs[k] = r
	}
	return r
}

// SetDefault replaces the profile applied to links without an override.
func (p *Plane) SetDefault(f LinkFaults) {
	p.mu.Lock()
	p.cfg.Default = f
	p.mu.Unlock()
}

// SetLink sets the fault profile of the a–b link (both directions).
func (p *Plane) SetLink(a, b wire.RouterID, f LinkFaults) {
	p.mu.Lock()
	p.links[keyOf(a, b)] = f
	p.mu.Unlock()
}

// ClearLink removes the a–b override, restoring the default profile.
func (p *Plane) ClearLink(a, b wire.RouterID) {
	p.mu.Lock()
	delete(p.links, keyOf(a, b))
	p.mu.Unlock()
}

// SetLinkDirected sets the fault profile of the from→to direction only;
// the reverse direction keeps its bidirectional (or default) profile.
func (p *Plane) SetLinkDirected(from, to wire.RouterID, f LinkFaults) {
	p.mu.Lock()
	p.linksDir[directedKey{from, to}] = f
	p.mu.Unlock()
}

// ClearLinkDirected removes the from→to directed override.
func (p *Plane) ClearLinkDirected(from, to wire.RouterID) {
	p.mu.Lock()
	delete(p.linksDir, directedKey{from, to})
	p.mu.Unlock()
}

// Partition severs the a–b link: every message in either direction is
// dropped until Heal.
func (p *Plane) Partition(a, b wire.RouterID) {
	p.mu.Lock()
	p.partitioned[keyOf(a, b)] = true
	p.mu.Unlock()
	p.emit(obs.Event{Kind: obs.FaultPartition, Router: a, Peer: b})
}

// Heal restores the a–b link.
func (p *Plane) Heal(a, b wire.RouterID) {
	p.mu.Lock()
	healed := p.partitioned[keyOf(a, b)]
	delete(p.partitioned, keyOf(a, b))
	p.mu.Unlock()
	if healed {
		p.emit(obs.Event{Kind: obs.FaultHeal, Router: a, Peer: b})
	}
}

// PartitionFor partitions the a–b link and schedules its heal after d.
func (p *Plane) PartitionFor(a, b wire.RouterID, d time.Duration) {
	p.Partition(a, b)
	p.cfg.Clock.AfterFunc(d, func() { p.Heal(a, b) })
}

// Partitioned reports whether the a–b link is currently partitioned.
func (p *Plane) Partitioned(a, b wire.RouterID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned[keyOf(a, b)]
}

// SetPeerHooks registers callbacks invoked (without plane locks held) when
// a peer crashes or restarts. The network assembly uses them to tear down
// and re-establish the peer's sessions.
func (p *Plane) SetPeerHooks(onCrash, onRestart func(wire.RouterID)) {
	p.mu.Lock()
	p.onCrash, p.onRestart = onCrash, onRestart
	p.mu.Unlock()
}

// CrashPeer marks router r crashed: every message from or to it is dropped
// and the crash hook runs (the router loses its volatile protocol state).
// Crashing a crashed peer is a no-op.
func (p *Plane) CrashPeer(r wire.RouterID) {
	p.mu.Lock()
	if p.crashed[r] {
		p.mu.Unlock()
		return
	}
	p.crashed[r] = true
	hook := p.onCrash
	p.mu.Unlock()
	p.emit(obs.Event{Kind: obs.FaultCrash, Router: r})
	if hook != nil {
		hook(r)
	}
}

// RestartPeer clears r's crashed state and runs the restart hook (sessions
// may re-establish). Restarting a live peer is a no-op.
func (p *Plane) RestartPeer(r wire.RouterID) {
	p.mu.Lock()
	if !p.crashed[r] {
		p.mu.Unlock()
		return
	}
	delete(p.crashed, r)
	hook := p.onRestart
	p.mu.Unlock()
	p.emit(obs.Event{Kind: obs.FaultRestart, Router: r})
	if hook != nil {
		hook(r)
	}
}

// CrashPeerFor crashes r and schedules its restart after d.
func (p *Plane) CrashPeerFor(r wire.RouterID, d time.Duration) {
	p.CrashPeer(r)
	p.cfg.Clock.AfterFunc(d, func() { p.RestartPeer(r) })
}

// Crashed reports whether r is currently crashed.
func (p *Plane) Crashed(r wire.RouterID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed[r]
}

// Stats returns a copy of the fault counters.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Deliver offers one message on the from→to link to the fault plane and
// reports whether it was (or will be) delivered at least once. The
// deliver callback runs zero, one, or two times — synchronously, or later
// through the clock when the link delays or reorders. Deliver never holds
// the plane's lock while running the callback, so deliveries may cascade
// back into the plane.
func (p *Plane) Deliver(from, to wire.RouterID, class Class, deliver func()) bool {
	k := keyOf(from, to)
	p.mu.Lock()
	if p.crashed[from] || p.crashed[to] || p.partitioned[k] {
		p.stats.Dropped++
		p.mu.Unlock()
		p.emit(obs.Event{Kind: obs.FaultDrop, Router: from, Peer: to})
		return false
	}
	f, ok := p.linksDir[directedKey{from, to}]
	if !ok {
		if f, ok = p.links[k]; !ok {
			f = p.cfg.Default
		}
	}
	if f.zero() || !f.Classes.has(class) {
		p.stats.Delivered++
		p.mu.Unlock()
		deliver()
		return true
	}
	// One rand draw per decision, in a fixed order, from the directed
	// link's own stream: the nth message on a link sees the same fate on
	// every same-seed run, regardless of other links' traffic.
	dk := directedKey{from, to}
	rng := p.rngLocked(dk)
	if f.Drop > 0 && rng.Float64() < f.Drop {
		p.stats.Dropped++
		p.mu.Unlock()
		p.emit(obs.Event{Kind: obs.FaultDrop, Router: from, Peer: to})
		return false
	}
	dup := f.Dup > 0 && rng.Float64() < f.Dup
	reorder := f.Reorder > 0 && rng.Float64() < f.Reorder
	if dup {
		p.stats.Duplicated++
	}

	// A message selected for reorder is parked; the link's next message
	// releases it afterwards (a pairwise swap). A second reorder pick
	// while one is parked releases the parked message instead — the swap.
	final := deliver
	if dup {
		final = func() { deliver(); deliver() }
	}
	var run func()
	switch {
	case reorder && p.held[dk] == nil:
		p.stats.Reordered++
		p.held[dk] = final
		p.mu.Unlock()
		p.emit(obs.Event{Kind: obs.FaultReorder, Router: from, Peer: to})
		if dup {
			p.emit(obs.Event{Kind: obs.FaultDup, Router: from, Peer: to})
		}
		return true
	case p.held[dk] != nil:
		parked := p.held[dk]
		delete(p.held, dk)
		here := final
		run = func() { here(); parked() }
	default:
		run = final
	}
	p.stats.Delivered++
	delay := f.Delay
	if delay > 0 {
		p.stats.Delayed++
	}
	p.mu.Unlock()
	if dup {
		p.emit(obs.Event{Kind: obs.FaultDup, Router: from, Peer: to})
	}
	if delay > 0 {
		p.emit(obs.Event{Kind: obs.FaultDelay, Router: from, Peer: to})
		p.cfg.Clock.AfterFunc(delay, run)
		return true
	}
	run()
	return true
}

// FlushHeld releases any parked (reordered) messages on every link — call
// at the end of a traffic burst so swapped messages are not stranded.
func (p *Plane) FlushHeld() {
	p.mu.Lock()
	parked := make([]func(), 0, len(p.held))
	keys := make([]directedKey, 0, len(p.held))
	for k := range p.held {
		keys = append(keys, k)
	}
	// Deterministic release order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && less(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		parked = append(parked, p.held[k])
	}
	p.held = map[directedKey]func(){}
	p.mu.Unlock()
	for _, fn := range parked {
		fn()
	}
}

func less(a, b directedKey) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	return a.to < b.to
}

func (p *Plane) emit(e obs.Event) { p.cfg.Obs.Emit(e) }
