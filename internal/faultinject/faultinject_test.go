package faultinject

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

func newPlane(t *testing.T, cfg Config) *Plane {
	t.Helper()
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(7))
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRequiresRand(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Rand must fail")
	}
}

func TestCleanLinkDeliversEverything(t *testing.T) {
	p := newPlane(t, Config{})
	n := 0
	for i := 0; i < 100; i++ {
		if !p.Deliver(1, 2, Control, func() { n++ }) {
			t.Fatal("clean link dropped a message")
		}
	}
	if n != 100 {
		t.Fatalf("delivered %d of 100", n)
	}
	if s := p.Stats(); s.Delivered != 100 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropProbability(t *testing.T) {
	p := newPlane(t, Config{Default: LinkFaults{Drop: 0.5}})
	delivered := 0
	for i := 0; i < 1000; i++ {
		p.Deliver(1, 2, Data, func() { delivered++ })
	}
	if delivered < 400 || delivered > 600 {
		t.Fatalf("0.5 drop delivered %d of 1000", delivered)
	}
	s := p.Stats()
	if s.Dropped+s.Delivered != 1000 {
		t.Fatalf("stats don't add up: %+v", s)
	}
}

func TestDropIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		p := newPlane(t, Config{Rand: rand.New(rand.NewSource(42)), Default: LinkFaults{Drop: 0.3}})
		out := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			out = append(out, p.Deliver(1, 2, Data, func() {}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
}

func TestDuplicate(t *testing.T) {
	p := newPlane(t, Config{Default: LinkFaults{Dup: 1.0}})
	n := 0
	p.Deliver(1, 2, Data, func() { n++ })
	if n != 2 {
		t.Fatalf("dup=1.0 delivered %d times, want 2", n)
	}
}

func TestReorderSwapsAdjacentMessages(t *testing.T) {
	// First message always reordered (held), second releases it after
	// itself: delivery order is 2, 1.
	p := newPlane(t, Config{Default: LinkFaults{Reorder: 1.0}})
	var order []int
	p.Deliver(1, 2, Data, func() { order = append(order, 1) })
	p.Deliver(1, 2, Data, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", order)
	}
}

func TestFlushHeldReleasesParked(t *testing.T) {
	p := newPlane(t, Config{Default: LinkFaults{Reorder: 1.0}})
	n := 0
	p.Deliver(1, 2, Data, func() { n++ })
	if n != 0 {
		t.Fatal("reordered message delivered immediately")
	}
	p.FlushHeld()
	if n != 1 {
		t.Fatalf("flush delivered %d, want 1", n)
	}
}

func TestDelayGoesThroughClock(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	p := newPlane(t, Config{Clock: clk, Default: LinkFaults{Delay: time.Second}})
	n := 0
	p.Deliver(1, 2, Data, func() { n++ })
	if n != 0 {
		t.Fatal("delayed message delivered synchronously")
	}
	clk.RunFor(time.Second)
	if n != 1 {
		t.Fatalf("after delay n=%d, want 1", n)
	}
}

func TestPartitionDropsAndHeals(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	p := newPlane(t, Config{Clock: clk})
	p.PartitionFor(1, 2, time.Minute)
	n := 0
	if p.Deliver(1, 2, Control, func() { n++ }) || p.Deliver(2, 1, Control, func() { n++ }) {
		t.Fatal("partitioned link delivered")
	}
	if !p.Partitioned(1, 2) || !p.Partitioned(2, 1) {
		t.Fatal("Partitioned not symmetric")
	}
	// Other links are unaffected.
	if !p.Deliver(1, 3, Control, func() {}) {
		t.Fatal("unrelated link affected by partition")
	}
	clk.RunFor(time.Minute)
	if p.Partitioned(1, 2) {
		t.Fatal("partition did not heal")
	}
	if !p.Deliver(1, 2, Control, func() { n++ }) || n != 1 {
		t.Fatal("healed link does not deliver")
	}
}

func TestCrashAndRestartHooks(t *testing.T) {
	clk := simclock.NewSim(time.Unix(0, 0))
	p := newPlane(t, Config{Clock: clk})
	var crashes, restarts []int
	p.SetPeerHooks(
		func(r wire.RouterID) { crashes = append(crashes, int(r)) },
		func(r wire.RouterID) { restarts = append(restarts, int(r)) },
	)
	p.CrashPeerFor(5, time.Hour)
	if !p.Crashed(5) {
		t.Fatal("peer not crashed")
	}
	if p.Deliver(5, 2, Control, func() {}) || p.Deliver(2, 5, Control, func() {}) {
		t.Fatal("crashed peer exchanged traffic")
	}
	p.CrashPeer(5) // idempotent
	clk.RunFor(time.Hour)
	if p.Crashed(5) {
		t.Fatal("peer did not restart")
	}
	if len(crashes) != 1 || crashes[0] != 5 || len(restarts) != 1 || restarts[0] != 5 {
		t.Fatalf("hooks: crashes=%v restarts=%v", crashes, restarts)
	}
}

func TestClassMaskExemptsControl(t *testing.T) {
	p := newPlane(t, Config{Default: LinkFaults{Drop: 1.0, Classes: MaskData}})
	if !p.Deliver(1, 2, Control, func() {}) {
		t.Fatal("control message dropped despite MaskData")
	}
	if !p.Deliver(1, 2, Keepalive, func() {}) {
		t.Fatal("keepalive dropped despite MaskData")
	}
	if p.Deliver(1, 2, Data, func() {}) {
		t.Fatal("data message survived drop=1.0")
	}
}

func TestLinkOverrideBeatsDefault(t *testing.T) {
	p := newPlane(t, Config{Default: LinkFaults{Drop: 1.0}})
	p.SetLink(1, 2, LinkFaults{}) // clean override
	if !p.Deliver(1, 2, Data, func() {}) {
		t.Fatal("override ignored")
	}
	if p.Deliver(1, 3, Data, func() {}) {
		t.Fatal("default ignored")
	}
	p.ClearLink(1, 2)
	if p.Deliver(1, 2, Data, func() {}) {
		t.Fatal("ClearLink did not restore the default")
	}
}

func TestFaultEventsAreObservable(t *testing.T) {
	ob := obs.NewObserver()
	p := newPlane(t, Config{Obs: ob, Default: LinkFaults{Drop: 1.0}})
	p.Deliver(1, 2, Data, func() {})
	p.Partition(3, 4)
	p.Heal(3, 4)
	s := ob.Snapshot()
	for _, name := range []string{"fault.drop", "fault.partition", "fault.heal"} {
		if s.Total(name) == 0 {
			t.Fatalf("counter %q is zero:\n%s", name, s)
		}
	}
}
