// Package liveness is a BFD-style fast failure detector (RFC 5880 in
// spirit) for supervised peering sessions: each monitored peering
// exchanges small liveness probes at an adaptive transmit interval that
// ramps down from the session's keepalive cadence (HoldTime/3) toward a
// configured floor, declares the peering dead after a multiplier of
// consecutive missed intervals, and — once the session has proven stable
// at the floor — quiesces into demand mode, probing at a slow poll
// interval until the first missed round re-arms fast probing.
//
// The monitor is driven entirely by the configured simclock.Clock and
// routes every probe through the fault plane as its own message class
// (faultinject.Liveness), so partitions, crashes, directed loss, and
// delay all apply to it exactly as to real traffic. It is a detector,
// not a supervisor: a detection is reported once through OnDown and the
// owning session supervisor (internal/core) tears the peering down; hold
// timers remain the fallback when no monitor is configured.
//
// Layering: liveness sits beside bgmp — it imports wire, obs, simclock,
// faultinject, and the standard library only.
package liveness

import (
	"sync"
	"time"

	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// Params tunes the detector. The zero value takes defaults suitable for
// the chaos experiments; see the field comments.
type Params struct {
	// Floor is the minimum transmit interval the adaptive ramp converges
	// to. Defaults to 100ms.
	Floor time.Duration
	// Multiplier is the number of consecutive missed intervals in either
	// direction before the peering is declared dead. Defaults to 3.
	Multiplier int
	// DemandAfter is the number of consecutive clean rounds at the floor
	// before the monitor quiesces into demand mode; zero disables demand
	// mode (the monitor probes at the floor forever).
	DemandAfter int
	// DemandInterval is the slow poll cadence in demand mode. Defaults to
	// 10× the floor.
	DemandInterval time.Duration
}

// normalized fills defaulted fields.
func (p Params) normalized() Params {
	if p.Floor <= 0 {
		p.Floor = 100 * time.Millisecond
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 3
	}
	if p.DemandInterval <= 0 {
		p.DemandInterval = 10 * p.Floor
	}
	return p
}

// Config parameterizes a Monitor. One Monitor supervises one peering and
// probes both directions, mirroring the session supervisor it feeds.
type Config struct {
	// Clock drives the probe timers. Required.
	Clock simclock.Clock
	// Initial is the starting transmit interval, conventionally the
	// session's keepalive cadence (HoldTime/3); the ramp negotiates it
	// down to Params.Floor. Values below the floor are clamped up.
	Initial time.Duration
	// Params tunes detection; zero fields take defaults.
	Params Params
	// Domain and A, B scope the monitored peering for events: A and B are
	// the two session endpoints, probed in both directions.
	Domain wire.DomainID
	A, B   wire.RouterID
	// Faults, when non-nil, carries every probe as its own message class
	// (faultinject.Liveness). Nil delivers probes synchronously unharmed.
	Faults *faultinject.Plane
	// OnDown fires once per Start when detection trips, with no monitor
	// lock held. The monitor disarms itself first, so OnDown may call
	// back into Stop or Start freely. ctx is the detection's trace
	// context (the root of the repair chain); zero when tracing is off.
	OnDown func(ctx wire.TraceContext)
	// Obs observes liveness.detect / liveness.demand / liveness.resume.
	Obs *obs.Observer
}

// Monitor is one peering's fast-liveness detector. Safe for concurrent
// use; deterministic when driven from a simulated clock.
type Monitor struct {
	cfg Config
	prm Params

	mu      sync.Mutex
	running bool // guarded by mu
	// gen is the monitoring incarnation; probes stamped with an earlier
	// generation (delayed past a Stop/Start cycle) are discarded on
	// receipt rather than crediting the new incarnation. guarded by mu
	gen      uint32
	interval time.Duration // guarded by mu
	demand   bool          // guarded by mu
	stable   int           // consecutive clean rounds at the floor; guarded by mu
	rounds   uint64        // guarded by mu
	// gotA/gotB record a probe received this round by A (from B) and by
	// B (from A); missA/missB count consecutive missed rounds per
	// direction. guarded by mu
	gotA, gotB bool
	// guarded by mu
	missA, missB int
	timer        simclock.Timer // guarded by mu
}

// New returns a Monitor for the configured peering. Start arms it.
func New(cfg Config) *Monitor {
	return &Monitor{cfg: cfg, prm: cfg.Params.normalized()}
}

// Start (re-)arms the monitor for a fresh session incarnation: the ramp
// restarts from Config.Initial and a new probe generation begins.
func (m *Monitor) Start() {
	m.mu.Lock()
	m.gen++
	m.running = true
	m.interval = m.cfg.Initial
	if m.interval < m.prm.Floor {
		m.interval = m.prm.Floor
	}
	m.demand = false
	m.stable = 0
	m.rounds = 0
	m.gotA, m.gotB = false, false
	m.missA, m.missB = 0, 0
	if m.timer != nil {
		m.timer.Stop()
	}
	m.timer = m.cfg.Clock.AfterFunc(m.interval, m.onTick)
	m.mu.Unlock()
}

// Stop disarms the monitor. Idempotent; a later Start re-arms it.
func (m *Monitor) Stop() {
	m.mu.Lock()
	m.running = false
	if m.timer != nil {
		m.timer.Stop()
	}
	m.mu.Unlock()
}

// State is a snapshot of the monitor's detector state, for tests and
// introspection.
type State struct {
	Running  bool
	Interval time.Duration
	Demand   bool
	Stable   int
}

// State returns a snapshot of the detector state.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return State{Running: m.running, Interval: m.interval, Demand: m.demand, Stable: m.stable}
}

// onTick closes the previous probe round and opens the next: evaluate
// which directions heard a probe, detect or adapt, then probe again.
func (m *Monitor) onTick() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	var detect, resumed, quiesced bool
	if m.rounds > 0 {
		missed := false
		if m.gotA {
			m.missA = 0
		} else {
			m.missA++
			missed = true
		}
		if m.gotB {
			m.missB = 0
		} else {
			m.missB++
			missed = true
		}
		detect = m.missA >= m.prm.Multiplier || m.missB >= m.prm.Multiplier
		switch {
		case detect:
			// Disarm before reporting: the supervisor restarts us on
			// reconnect with a fresh generation.
			m.running = false
		case missed && m.demand:
			// First miss ends the quiesce: return to fast probing so the
			// multiplier counts floor intervals, not poll intervals.
			m.demand = false
			m.stable = 0
			m.interval = m.prm.Floor
			resumed = true
		case !missed && !m.demand:
			// Clean round: ramp the interval down toward the floor, and
			// after enough stable floor rounds, quiesce.
			if m.interval > m.prm.Floor {
				m.interval /= 2
				if m.interval < m.prm.Floor {
					m.interval = m.prm.Floor
				}
			} else if m.prm.DemandAfter > 0 {
				m.stable++
				if m.stable >= m.prm.DemandAfter {
					m.demand = true
					quiesced = true
				}
			}
		}
	}
	m.gotA, m.gotB = false, false
	m.rounds++
	gen, interval, demand := m.gen, m.interval, m.demand
	if !detect {
		next := interval
		if demand {
			next = m.prm.DemandInterval
		}
		m.timer = m.cfg.Clock.AfterFunc(next, m.onTick)
	}
	m.mu.Unlock()

	switch {
	case detect:
		// The detection roots the causal chain every repair action hangs
		// under: session teardown, BGP withdrawal, tree failover all parent
		// (transitively) under this span.
		sp := m.cfg.Obs.Tracer().Begin(obs.SpanLivenessDetect,
			obs.Event{Domain: m.cfg.Domain, Router: m.cfg.A, Peer: m.cfg.B})
		m.emit(obs.LivenessDetect)
		if m.cfg.OnDown != nil {
			m.cfg.OnDown(sp.Context())
		}
		sp.End()
		return
	case quiesced:
		m.emit(obs.LivenessDemand)
	case resumed:
		m.emit(obs.LivenessResume)
	}
	m.probe(m.cfg.A, m.cfg.B, gen, interval, demand)
	m.probe(m.cfg.B, m.cfg.A, gen, interval, demand)
}

// probe sends one liveness control packet from→to through the fault
// plane, round-tripping it through the wire codec like real traffic.
func (m *Monitor) probe(from, to wire.RouterID, gen uint32, interval time.Duration, demand bool) {
	frame := wire.Encode(&wire.LivenessCtl{
		Generation: gen,
		IntervalUS: uint32(interval / time.Microsecond),
		Multiplier: uint8(m.prm.Multiplier),
		Demand:     demand,
	})
	deliver := func() {
		msg, err := wire.Decode(frame)
		if err != nil {
			return
		}
		if ctl, ok := msg.(*wire.LivenessCtl); ok {
			m.rx(to, ctl)
		}
	}
	if p := m.cfg.Faults; p != nil {
		p.Deliver(from, to, faultinject.Liveness, deliver)
		return
	}
	deliver()
}

// rx credits the receiving end's current round. Probes from an earlier
// monitoring incarnation (delayed past a Stop/Start cycle) are discarded.
func (m *Monitor) rx(at wire.RouterID, ctl *wire.LivenessCtl) {
	m.mu.Lock()
	if m.running && ctl.Generation == m.gen {
		if at == m.cfg.A {
			m.gotA = true
		} else if at == m.cfg.B {
			m.gotB = true
		}
	}
	m.mu.Unlock()
}

func (m *Monitor) emit(k obs.Kind) {
	m.cfg.Obs.Emit(obs.Event{Kind: k, Domain: m.cfg.Domain, Router: m.cfg.A, Peer: m.cfg.B})
}
