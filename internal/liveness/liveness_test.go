package liveness

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

var simStart = time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

// harness bundles one monitored peering on a simulated clock with a
// seeded fault plane, mirroring how core wires a session's monitor.
type harness struct {
	clk   *simclock.Sim
	plane *faultinject.Plane
	ob    *obs.Observer
	mon   *Monitor
	downs int
}

func newHarness(t *testing.T, seed int64, p Params) *harness {
	t.Helper()
	h := &harness{clk: simclock.NewSim(simStart), ob: obs.NewObserver()}
	plane, err := faultinject.New(faultinject.Config{
		Clock: h.clk,
		Rand:  rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		t.Fatalf("faultinject.New: %v", err)
	}
	h.plane = plane
	h.mon = New(Config{
		Clock:   h.clk,
		Initial: 10 * time.Second, // HoldTime 30s / 3
		Params:  p,
		Domain:  1,
		A:       11,
		B:       21,
		Faults:  plane,
		OnDown:  func(wire.TraceContext) { h.downs++ },
		Obs:     h.ob,
	})
	return h
}

func (h *harness) total(name string) uint64 { return h.ob.Snapshot().Total(name) }

// TestRampToFloorAndDemand drives a clean session and checks the adaptive
// ramp: the interval halves from Initial down to the floor, and after
// DemandAfter stable floor rounds the monitor quiesces into demand mode.
func TestRampToFloorAndDemand(t *testing.T) {
	h := newHarness(t, 1, Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 4})
	h.mon.Start()

	// The first tick only fires at Initial (10s), then each clean round
	// halves: 10s → 5s → 2.5s → 1.25s → 625ms → 312.5ms → 156.25ms →
	// 100ms, reaching the floor at ~30s; 4 more floor rounds quiesce.
	h.clk.RunFor(35 * time.Second)

	st := h.mon.State()
	if !st.Running {
		t.Fatalf("monitor stopped on a clean session: %+v", st)
	}
	if st.Interval != 100*time.Millisecond {
		t.Fatalf("interval did not converge to the floor: %v", st.Interval)
	}
	if !st.Demand {
		t.Fatalf("monitor did not quiesce after %d stable rounds: %+v", 4, st)
	}
	if got := h.total("liveness.demand"); got != 1 {
		t.Fatalf("liveness.demand = %d, want 1", got)
	}
	if got := h.total("liveness.detect"); got != 0 {
		t.Fatalf("false detection on a clean session: liveness.detect = %d", got)
	}
	if h.downs != 0 {
		t.Fatalf("OnDown fired %d times on a clean session", h.downs)
	}

	// Demand mode probes at DemandInterval (10× floor = 1s), not the
	// floor: a 10s quiet stretch should see ~10 more rounds, not ~100.
	before := h.plane.Stats().Delivered
	h.clk.RunFor(10 * time.Second)
	delivered := h.plane.Stats().Delivered - before
	if delivered > 24 { // 2 probes/round, ≤ ~11 rounds + slack
		t.Fatalf("demand mode did not quiesce probing: %d deliveries in 10s", delivered)
	}
}

// TestDetectAfterSilence kills the link (liveness class only) under a
// quiesced monitor and checks detection within the worst-case bound:
// one demand poll to notice the miss and resume fast probing, then
// Multiplier-1 further floor rounds to trip the multiplier.
func TestDetectAfterSilence(t *testing.T) {
	h := newHarness(t, 2, Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 4})
	h.mon.Start()
	h.clk.RunFor(35 * time.Second)
	if st := h.mon.State(); !st.Demand {
		t.Fatalf("precondition: monitor not in demand mode: %+v", st)
	}

	h.plane.SetLink(11, 21, faultinject.LinkFaults{Drop: 1, Classes: faultinject.MaskLiveness})
	cut := h.clk.Now()
	var detectAt time.Time
	cancel := h.ob.Subscribe(func(e obs.Event) {
		if e.Kind == obs.LivenessDetect && detectAt.IsZero() {
			detectAt = h.clk.Now()
		}
	})
	defer cancel()

	h.clk.RunFor(10 * time.Second)

	if h.downs != 1 {
		t.Fatalf("OnDown fired %d times, want 1", h.downs)
	}
	if got := h.total("liveness.detect"); got != 1 {
		t.Fatalf("liveness.detect = %d, want 1", got)
	}
	if st := h.mon.State(); st.Running {
		t.Fatalf("monitor still running after detection: %+v", st)
	}
	// Worst case: the probes that die first were sent just after a poll,
	// so the first missed evaluation is ~2 polls after the cut, then two
	// more floor rounds: 2×1s + 2×100ms.
	bound := 2*time.Second + 200*time.Millisecond
	if d := detectAt.Sub(cut); d <= 0 || d > bound {
		t.Fatalf("detection took %v, want within (0, %v]", d, bound)
	}
}

// TestDemandExitWithoutFalseDown drops a short burst of polls — fewer
// than Multiplier consecutive floor rounds — and checks the monitor
// resumes fast probing without declaring the session dead, then
// re-quiesces once the link heals.
func TestDemandExitWithoutFalseDown(t *testing.T) {
	h := newHarness(t, 3, Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 4})
	h.mon.Start()
	h.clk.RunFor(35 * time.Second)
	if st := h.mon.State(); !st.Demand {
		t.Fatalf("precondition: monitor not in demand mode: %+v", st)
	}

	// One demand poll round dies, then the link heals: the monitor must
	// resume floor-rate probing (liveness.resume), count at most two
	// missed rounds, and recover.
	h.plane.SetLink(11, 21, faultinject.LinkFaults{Drop: 1, Classes: faultinject.MaskLiveness})
	h.clk.RunFor(1100 * time.Millisecond)
	h.plane.SetLink(11, 21, faultinject.LinkFaults{})
	h.clk.RunFor(10 * time.Second)

	if got := h.total("liveness.detect"); got != 0 {
		t.Fatalf("false detection on a transient loss burst: liveness.detect = %d", got)
	}
	if h.downs != 0 {
		t.Fatalf("OnDown fired %d times on a transient loss burst", h.downs)
	}
	if got := h.total("liveness.resume"); got == 0 {
		t.Fatal("monitor never resumed fast probing after the missed poll")
	}
	st := h.mon.State()
	if !st.Running || !st.Demand {
		t.Fatalf("monitor did not recover and re-quiesce: %+v", st)
	}
	if got := h.total("liveness.demand"); got != 2 {
		t.Fatalf("liveness.demand = %d, want 2 (initial quiesce + re-quiesce)", got)
	}
}

// TestStaleGenerationIgnored delays probes across a Stop/Start cycle and
// checks the old incarnation's probes do not credit the new one: with
// every fresh probe dropped, detection must still fire on schedule even
// while stale delayed probes keep arriving.
func TestStaleGenerationIgnored(t *testing.T) {
	h := newHarness(t, 4, Params{Floor: 100 * time.Millisecond, Multiplier: 3})
	// First incarnation: delay probes by 5s so a stream of them is in
	// flight when the incarnation ends.
	h.plane.SetLink(11, 21, faultinject.LinkFaults{Delay: 5 * time.Second, Classes: faultinject.MaskLiveness})
	h.mon.Start()
	h.clk.RunFor(2 * time.Second)
	h.mon.Stop()

	// Second incarnation: every *new* probe is dropped, but the first
	// incarnation's delayed probes are still queued for delivery inside
	// the detection window. If generations were not checked they would
	// keep crediting the round and suppress detection.
	h.plane.SetLink(11, 21, faultinject.LinkFaults{Drop: 1, Classes: faultinject.MaskLiveness})
	h.mon.Start()
	h.clk.RunFor(40 * time.Second)

	if h.downs != 1 {
		t.Fatalf("OnDown fired %d times, want 1 (stale probes must not credit the new incarnation)", h.downs)
	}
	if got := h.total("liveness.detect"); got != 1 {
		t.Fatalf("liveness.detect = %d, want 1", got)
	}
}

// TestLivenessDeterminism runs the same lossy scenario twice from the
// same seed and requires byte-identical event snapshots.
func TestLivenessDeterminism(t *testing.T) {
	run := func() string {
		h := newHarness(t, 1998, Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 4})
		h.plane.SetLink(11, 21, faultinject.LinkFaults{Drop: 0.3, Classes: faultinject.MaskLiveness})
		h.mon.Start()
		h.clk.RunFor(2 * time.Minute)
		return h.ob.Snapshot().String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
