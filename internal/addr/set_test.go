package addr

import (
	"math/rand"
	"testing"
)

func TestSetAddAbsorbs(t *testing.T) {
	s := NewSet()
	if !s.Add(MustParsePrefix("224.0.1.0/24")) {
		t.Error("first add should change the set")
	}
	if s.Add(MustParsePrefix("224.0.1.0/25")) {
		t.Error("adding a covered prefix should be a no-op")
	}
	if !s.Add(MustParsePrefix("224.0.0.0/16")) {
		t.Error("adding a covering prefix should change the set")
	}
	if s.Len() != 1 {
		t.Errorf("covering add should absorb members; len = %d", s.Len())
	}
	if s.Prefixes()[0].String() != "224.0.0.0/16" {
		t.Errorf("unexpected member %v", s.Prefixes()[0])
	}
}

func TestSetRemove(t *testing.T) {
	p := MustParsePrefix("224.0.1.0/24")
	s := NewSet(p)
	if s.Remove(MustParsePrefix("224.0.1.0/25")) {
		t.Error("removing a non-member overlap should fail")
	}
	if !s.Remove(p) {
		t.Error("removing an exact member should succeed")
	}
	if s.Len() != 0 {
		t.Error("set should be empty")
	}
	if s.Remove(p) {
		t.Error("removing from empty set should fail")
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(MustParsePrefix("224.0.1.0/24"), MustParsePrefix("239.0.0.0/8"))
	if !s.Contains(MakeAddr(224, 0, 1, 9)) {
		t.Error("should contain 224.0.1.9")
	}
	if s.Contains(MakeAddr(224, 0, 2, 9)) {
		t.Error("should not contain 224.0.2.9")
	}
	if !s.ContainsPrefix(MustParsePrefix("239.1.0.0/16")) {
		t.Error("should cover 239.1/16")
	}
	if s.ContainsPrefix(MustParsePrefix("224.0.0.0/16")) {
		t.Error("must not cover 224.0/16")
	}
	if !s.OverlapsPrefix(MustParsePrefix("224.0.0.0/16")) {
		t.Error("should overlap 224.0/16")
	}
}

func TestSetSize(t *testing.T) {
	s := NewSet(MustParsePrefix("224.0.1.0/24"), MustParsePrefix("224.0.2.0/24"))
	if s.Size() != 512 {
		t.Errorf("Size = %d, want 512", s.Size())
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(MustParsePrefix("224.0.1.0/24"))
	c := s.Clone()
	c.Add(MustParsePrefix("224.0.2.0/24"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone must be independent")
	}
}

func TestSetAggregated(t *testing.T) {
	s := NewSet(
		MustParsePrefix("224.0.0.0/24"),
		MustParsePrefix("224.0.1.0/24"),
		MustParsePrefix("224.0.2.0/24"),
		MustParsePrefix("224.0.3.0/24"),
	)
	agg := s.Aggregated()
	if agg.Len() != 1 || agg.Prefixes()[0].String() != "224.0.0.0/22" {
		t.Errorf("Aggregated = %v", agg.Prefixes())
	}
	// Non-aggregatable pair stays apart.
	s2 := NewSet(MustParsePrefix("224.0.1.0/24"), MustParsePrefix("224.0.2.0/24"))
	if s2.Aggregated().Len() != 2 {
		t.Error("224.0.1/24 + 224.0.2/24 are not siblings and must not merge")
	}
}

// TestFreeWithinPaperExample reproduces the paper's §4.3.3 worked example:
// with 224.0.1/24 and 239/8 allocated out of 224/4, the largest free
// sub-prefixes are 228/6 and 232/6.
func TestFreeWithinPaperExample(t *testing.T) {
	s := NewSet(MustParsePrefix("224.0.1.0/24"), MustParsePrefix("239.0.0.0/8"))
	shortest, ok := s.ShortestFree(MulticastSpace)
	if !ok {
		t.Fatal("space should not be full")
	}
	if len(shortest) != 2 {
		t.Fatalf("want 2 shortest-free prefixes, got %v", shortest)
	}
	if shortest[0].String() != "228.0.0.0/6" || shortest[1].String() != "232.0.0.0/6" {
		t.Errorf("shortest free = %v, want [228.0.0.0/6 232.0.0.0/6]", shortest)
	}
	// And the claim itself: the first /22 inside a chosen /6.
	claim, err := shortest[0].FirstSub(22)
	if err != nil {
		t.Fatal(err)
	}
	if claim.String() != "228.0.0.0/22" {
		t.Errorf("claim = %v, want 228.0.0.0/22", claim)
	}
}

func TestFreeWithinEmptyAndFull(t *testing.T) {
	empty := NewSet()
	free := empty.FreeWithin(MulticastSpace)
	if len(free) != 1 || free[0] != MulticastSpace {
		t.Errorf("free of empty set = %v", free)
	}
	full := NewSet(MulticastSpace)
	if got := full.FreeWithin(MulticastSpace); len(got) != 0 {
		t.Errorf("free of full set = %v", got)
	}
	if _, ok := full.ShortestFree(MulticastSpace); ok {
		t.Error("ShortestFree of full space must report false")
	}
}

func TestFreeWithinHostGranularity(t *testing.T) {
	space := MustParsePrefix("224.0.0.0/30") // 4 addresses
	s := NewSet(MustParsePrefix("224.0.0.1/32"))
	free := s.FreeWithin(space)
	// Free: 224.0.0.0/32 and 224.0.0.2/31.
	if len(free) != 2 {
		t.Fatalf("free = %v", free)
	}
	if free[0].String() != "224.0.0.0/32" || free[1].String() != "224.0.0.2/31" {
		t.Errorf("free = %v", free)
	}
}

// Property: FreeWithin's result is disjoint from the set, disjoint from
// itself, lies inside the space, and sizes account for every address.
func TestFreeWithinCoverageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		s := NewSet()
		space := MustParsePrefix("224.0.0.0/8")
		for i := 0; i < r.Intn(8); i++ {
			l := 8 + r.Intn(12)
			p := Prefix{Base: space.Base | Addr(r.Uint32()&0x00ffffff), Len: l}.Canonical()
			s.Add(p)
		}
		free := s.FreeWithin(space)
		var freeSize, allocSize uint64
		for i, f := range free {
			if !space.ContainsPrefix(f) {
				t.Fatalf("free prefix %v outside space", f)
			}
			if s.OverlapsPrefix(f) {
				t.Fatalf("free prefix %v overlaps allocation", f)
			}
			for j := i + 1; j < len(free); j++ {
				if f.Overlaps(free[j]) {
					t.Fatalf("free prefixes %v and %v overlap", f, free[j])
				}
			}
			freeSize += f.Size()
		}
		for _, p := range s.prefixes {
			if space.ContainsPrefix(p) {
				allocSize += p.Size()
			}
		}
		if freeSize+allocSize != space.Size() {
			t.Fatalf("free %d + alloc %d != space %d (alloc %v)",
				freeSize, allocSize, space.Size(), s.prefixes)
		}
	}
}

// Property: set members remain pairwise disjoint and sorted under random
// add/remove churn.
func TestSetDisjointInvariantProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := NewSet()
	for i := 0; i < 3000; i++ {
		p := randPrefix(r)
		if r.Intn(3) == 0 && s.Len() > 0 {
			s.Remove(s.prefixes[r.Intn(s.Len())])
		} else {
			s.Add(p)
		}
		for j := 0; j < s.Len(); j++ {
			for k := j + 1; k < s.Len(); k++ {
				if s.prefixes[j].Overlaps(s.prefixes[k]) {
					t.Fatalf("members %v and %v overlap", s.prefixes[j], s.prefixes[k])
				}
			}
			if k := j + 1; k < s.Len() && Compare(s.prefixes[j], s.prefixes[k]) >= 0 {
				t.Fatal("members out of order")
			}
		}
	}
}

// Property: aggregation preserves the covered address set (same total size,
// covers every original member).
func TestAggregatedPreservesCoverageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		s := NewSet()
		// Dense sibling-rich allocations to trigger aggregation.
		base := MustParsePrefix("230.0.0.0/16")
		for i := 0; i < 16; i++ {
			sub := Prefix{Base: base.Base + Addr(r.Intn(64))<<8, Len: 24}.Canonical()
			s.Add(sub)
		}
		agg := s.Aggregated()
		if agg.Size() != s.Size() {
			t.Fatalf("aggregation changed size: %d -> %d", s.Size(), agg.Size())
		}
		for _, p := range s.Prefixes() {
			if !agg.ContainsPrefix(p) {
				t.Fatalf("aggregation lost member %v", p)
			}
		}
		if agg.Len() > s.Len() {
			t.Fatal("aggregation must not grow the set")
		}
	}
}
