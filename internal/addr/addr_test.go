package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"224.0.1.0", MakeAddr(224, 0, 1, 0), true},
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"128.9.0.1", MakeAddr(128, 9, 0, 1), true},
		{"256.0.0.0", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrIsMulticast(t *testing.T) {
	if !MakeAddr(224, 0, 0, 1).IsMulticast() {
		t.Error("224.0.0.1 should be multicast")
	}
	if !MakeAddr(239, 255, 255, 255).IsMulticast() {
		t.Error("239.255.255.255 should be multicast")
	}
	if MakeAddr(223, 255, 255, 255).IsMulticast() {
		t.Error("223.255.255.255 should not be multicast")
	}
	if MakeAddr(240, 0, 0, 0).IsMulticast() {
		t.Error("240.0.0.0 should not be multicast")
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"224.0.1.0/24", true},
		{"224.0.0.0/4", true},
		{"0.0.0.0/0", true},
		{"1.2.3.4/32", true},
		{"224.0.1.1/24", false}, // host bits set
		{"224.0.1.0/33", false},
		{"224.0.1.0/-1", false},
		{"224.0.1.0", false},
		{"x/24", false},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.String() != c.in {
			t.Errorf("ParsePrefix(%q).String() = %q", c.in, p.String())
		}
	}
}

func TestMustParsePrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePrefix on bad input should panic")
		}
	}()
	MustParsePrefix("not-a-prefix")
}

func TestPrefixSizeFirstLast(t *testing.T) {
	p := MustParsePrefix("224.0.1.0/24")
	if p.Size() != 256 {
		t.Errorf("Size = %d, want 256", p.Size())
	}
	if p.First() != MakeAddr(224, 0, 1, 0) {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MakeAddr(224, 0, 1, 255) {
		t.Errorf("Last = %v", p.Last())
	}
	if got := (Prefix{Len: 0}).Size(); got != 1<<32 {
		t.Errorf("/0 Size = %d", got)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("224.0.1.0/24")
	if !p.Contains(MakeAddr(224, 0, 1, 77)) {
		t.Error("should contain 224.0.1.77")
	}
	if p.Contains(MakeAddr(224, 0, 2, 0)) {
		t.Error("should not contain 224.0.2.0")
	}
}

func TestContainsPrefixAndOverlap(t *testing.T) {
	a16 := MustParsePrefix("224.0.0.0/16")
	b24 := MustParsePrefix("224.0.128.0/24")
	c24 := MustParsePrefix("224.1.0.0/24")
	if !a16.ContainsPrefix(b24) {
		t.Error("/16 should contain its /24")
	}
	if b24.ContainsPrefix(a16) {
		t.Error("/24 must not contain its /16")
	}
	if !a16.Overlaps(b24) || !b24.Overlaps(a16) {
		t.Error("overlap should be symmetric and true")
	}
	if a16.Overlaps(c24) {
		t.Error("disjoint prefixes must not overlap")
	}
	if !a16.ContainsPrefix(a16) {
		t.Error("a prefix contains itself")
	}
}

func TestHalvesAndParent(t *testing.T) {
	p := MustParsePrefix("228.0.0.0/6")
	lo, hi, err := p.Halves()
	if err != nil {
		t.Fatal(err)
	}
	if lo.String() != "228.0.0.0/7" || hi.String() != "230.0.0.0/7" {
		t.Errorf("halves = %v, %v", lo, hi)
	}
	if lo.Parent() != p || hi.Parent() != p {
		t.Error("halves' parent should be the original")
	}
	if _, _, err := (Prefix{Len: 32}).Halves(); err != ErrCannotSplit {
		t.Errorf("splitting /32: err = %v, want ErrCannotSplit", err)
	}
	z := Prefix{Len: 0}
	if z.Parent() != z {
		t.Error("parent of /0 is itself")
	}
}

func TestSibling(t *testing.T) {
	p := MustParsePrefix("128.8.0.0/16")
	q := MustParsePrefix("128.9.0.0/16")
	if p.Sibling() != q || q.Sibling() != p {
		t.Errorf("sibling of %v = %v, want %v", p, p.Sibling(), q)
	}
	z := Prefix{Len: 0}
	if z.Sibling() != z {
		t.Error("sibling of /0 is itself")
	}
}

// TestAggregatePaperExample checks the paper's §2 CIDR example:
// 128.8.0.0/16 + 128.9.0.0/16 aggregate to 128.8.0.0/15.
func TestAggregatePaperExample(t *testing.T) {
	p := MustParsePrefix("128.8.0.0/16")
	q := MustParsePrefix("128.9.0.0/16")
	agg, ok := Aggregate(p, q)
	if !ok || agg.String() != "128.8.0.0/15" {
		t.Errorf("Aggregate = %v, %v; want 128.8.0.0/15, true", agg, ok)
	}
	if _, ok := Aggregate(p, MustParsePrefix("128.10.0.0/16")); ok {
		t.Error("non-siblings must not aggregate")
	}
	if _, ok := Aggregate(p, MustParsePrefix("128.9.0.0/17")); ok {
		t.Error("different lengths must not aggregate")
	}
}

// TestMaskLenForPaperExample checks the paper's §4.3.3 example: a domain
// requiring 1024 addresses needs a /22.
func TestMaskLenForPaperExample(t *testing.T) {
	if got := MaskLenFor(1024); got != 22 {
		t.Errorf("MaskLenFor(1024) = %d, want 22", got)
	}
	if got := MaskLenFor(256); got != 24 {
		t.Errorf("MaskLenFor(256) = %d, want 24", got)
	}
	if got := MaskLenFor(1); got != 32 {
		t.Errorf("MaskLenFor(1) = %d, want 32", got)
	}
	if got := MaskLenFor(0); got != 32 {
		t.Errorf("MaskLenFor(0) = %d, want 32", got)
	}
	if got := MaskLenFor(257); got != 23 {
		t.Errorf("MaskLenFor(257) = %d, want 23", got)
	}
	if got := MaskLenFor(1 << 33); got != -1 {
		t.Errorf("MaskLenFor(2^33) = %d, want -1", got)
	}
}

func TestFirstSub(t *testing.T) {
	p := MustParsePrefix("228.0.0.0/6")
	sub, err := p.FirstSub(22)
	if err != nil {
		t.Fatal(err)
	}
	if sub.String() != "228.0.0.0/22" {
		t.Errorf("FirstSub = %v", sub)
	}
	if _, err := p.FirstSub(4); err == nil {
		t.Error("FirstSub shorter than the space must fail")
	}
}

func TestDouble(t *testing.T) {
	p := MustParsePrefix("224.0.1.0/24")
	d, err := p.Double()
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "224.0.0.0/23" {
		t.Errorf("Double = %v", d)
	}
	if !d.ContainsPrefix(p) {
		t.Error("doubled prefix must cover the original")
	}
	if _, err := (Prefix{Len: 0}).Double(); err == nil {
		t.Error("doubling /0 must fail")
	}
}

func TestCanonical(t *testing.T) {
	p := Prefix{Base: MakeAddr(224, 0, 1, 77), Len: 24}
	if p.Valid() {
		t.Error("prefix with host bits should be invalid")
	}
	c := p.Canonical()
	if !c.Valid() || c.String() != "224.0.1.0/24" {
		t.Errorf("Canonical = %v", c)
	}
	if got := (Prefix{Len: 40}).Canonical(); got.Len != 32 {
		t.Errorf("Canonical clamps Len: got %d", got.Len)
	}
	if got := (Prefix{Len: -3}).Canonical(); got.Len != 0 {
		t.Errorf("Canonical clamps negative Len: got %d", got.Len)
	}
}

func TestCompare(t *testing.T) {
	a := MustParsePrefix("224.0.0.0/16")
	b := MustParsePrefix("224.0.0.0/24")
	c := MustParsePrefix("224.1.0.0/16")
	if Compare(a, b) != -1 || Compare(b, a) != 1 {
		t.Error("shorter mask sorts first at same base")
	}
	if Compare(a, c) != -1 || Compare(c, a) != 1 {
		t.Error("lower base sorts first")
	}
	if Compare(a, a) != 0 {
		t.Error("equal prefixes compare 0")
	}
}

// randPrefix generates a canonical prefix within the multicast space.
func randPrefix(r *rand.Rand) Prefix {
	l := 4 + r.Intn(29) // /4../32
	p := Prefix{Base: MulticastSpace.Base | Addr(r.Uint32())>>4, Len: l}
	return p.Canonical()
}

// Property: canonicalization is idempotent and the result is valid.
func TestCanonicalIdempotentProperty(t *testing.T) {
	f := func(v uint32, l int) bool {
		p := Prefix{Base: Addr(v), Len: l % 64}.Canonical()
		return p.Valid() && p.Canonical() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a prefix's halves are disjoint, contained in it, and exactly
// cover it by size.
func TestHalvesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := randPrefix(r)
		if p.Len == 32 {
			continue
		}
		lo, hi, err := p.Halves()
		if err != nil {
			t.Fatal(err)
		}
		if lo.Overlaps(hi) {
			t.Fatalf("halves of %v overlap", p)
		}
		if !p.ContainsPrefix(lo) || !p.ContainsPrefix(hi) {
			t.Fatalf("halves of %v not contained", p)
		}
		if lo.Size()+hi.Size() != p.Size() {
			t.Fatalf("halves of %v don't cover it", p)
		}
	}
}

// Property: Overlaps is symmetric and equivalent to one containing the other.
func TestOverlapSymmetryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		p, q := randPrefix(r), randPrefix(r)
		if p.Overlaps(q) != q.Overlaps(p) {
			t.Fatalf("overlap not symmetric for %v, %v", p, q)
		}
		want := p.ContainsPrefix(q) || q.ContainsPrefix(p)
		if p.Overlaps(q) != want {
			t.Fatalf("overlap(%v,%v) = %v, want %v", p, q, p.Overlaps(q), want)
		}
	}
}

// Property: prefix String/Parse round-trips.
func TestPrefixRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := randPrefix(r)
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %v failed: %v %v", p, back, err)
		}
	}
}
