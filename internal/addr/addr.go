// Package addr implements IPv4 multicast address and CIDR prefix arithmetic
// for the MASC/BGMP architecture.
//
// MASC allocates multicast address ranges as classless prefixes out of the
// IPv4 multicast space 224.0.0.0/4. The package provides a compact Prefix
// value type, containment/overlap tests, aggregation, splitting, and the
// free-space searches the MASC claim algorithm (paper §4.3.3) is built on.
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address held in host byte order (most significant byte is
// the first dotted quad). The zero value is 0.0.0.0.
type Addr uint32

// MakeAddr assembles an Addr from four dotted-quad bytes.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "224.0.1.0".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("addr: %q is not a dotted-quad IPv4 address", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("addr: %q is not a dotted-quad IPv4 address", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsMulticast reports whether the address lies in 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a>>28 == 0xe }

// Prefix is a CIDR address range: all addresses sharing the first Len bits
// of Base. Bits of Base below the mask must be zero (see Canonical and
// Valid). The zero value is 0.0.0.0/0, the full IPv4 space.
type Prefix struct {
	Base Addr
	Len  int
}

// MulticastSpace is the entire IPv4 multicast address space, 224.0.0.0/4,
// from which top-level MASC domains claim.
var MulticastSpace = Prefix{Base: MakeAddr(224, 0, 0, 0), Len: 4}

// MustParsePrefix is ParsePrefix that panics on error; for tests and
// package-level variables with known-good literals.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "224.0.1.0/24". The base address
// must have all host bits zero.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("addr: %q is not CIDR notation", s)
	}
	base, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("addr: bad mask length in %q", s)
	}
	p := Prefix{Base: base, Len: n}
	if !p.Valid() {
		return Prefix{}, fmt.Errorf("addr: %q has nonzero host bits", s)
	}
	return p, nil
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Base, p.Len) }

// Valid reports whether the mask length is in range and all host bits of the
// base address are zero.
func (p Prefix) Valid() bool {
	if p.Len < 0 || p.Len > 32 {
		return false
	}
	return p.Base&^p.mask() == 0
}

// Canonical returns p with host bits of the base address cleared and the
// mask length clamped to [0,32]. The result is always Valid.
func (p Prefix) Canonical() Prefix {
	if p.Len < 0 {
		p.Len = 0
	}
	if p.Len > 32 {
		p.Len = 32
	}
	p.Base &= p.mask()
	return p
}

func (p Prefix) mask() Addr {
	if p.Len == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - p.Len))
}

// Size returns the number of addresses covered by the prefix. A /0 covers
// 2^32 addresses, which does not fit in uint32, so the result is uint64.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Len) }

// First returns the lowest address in the prefix (its base).
func (p Prefix) First() Addr { return p.Base }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Base | ^p.mask() }

// Contains reports whether address a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool { return a&p.mask() == p.Base }

// ContainsPrefix reports whether q is entirely inside p (p covers q).
// A prefix contains itself.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Base)
}

// Overlaps reports whether p and q share any address. Because prefixes are
// aligned power-of-two ranges, overlap implies one contains the other.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// IsMulticast reports whether the entire prefix lies within 224.0.0.0/4.
func (p Prefix) IsMulticast() bool { return MulticastSpace.ContainsPrefix(p) }

// ErrCannotSplit is returned by Halves when a host prefix (/32) is split.
var ErrCannotSplit = errors.New("addr: cannot split a /32 prefix")

// Halves splits the prefix into its two equal halves, low then high.
func (p Prefix) Halves() (lo, hi Prefix, err error) {
	if p.Len >= 32 {
		return Prefix{}, Prefix{}, ErrCannotSplit
	}
	lo = Prefix{Base: p.Base, Len: p.Len + 1}
	hi = Prefix{Base: p.Base | Addr(1)<<(31-p.Len), Len: p.Len + 1}
	return lo, hi, nil
}

// Parent returns the prefix one bit shorter that covers p. Calling Parent on
// a /0 returns the /0 itself.
func (p Prefix) Parent() Prefix {
	if p.Len == 0 {
		return p
	}
	q := Prefix{Base: p.Base, Len: p.Len - 1}
	return q.Canonical()
}

// Sibling returns the other half of p's parent: the prefix of the same
// length with the last network bit flipped. The sibling of a /0 is itself.
func (p Prefix) Sibling() Prefix {
	if p.Len == 0 {
		return p
	}
	return Prefix{Base: p.Base ^ Addr(1)<<(32-p.Len), Len: p.Len}
}

// FirstSub returns the first (lowest) sub-prefix of the given mask length
// inside p. The claim algorithm picks "the first sub-prefix of the desired
// size within the chosen space" (paper §4.3.3).
func (p Prefix) FirstSub(length int) (Prefix, error) {
	if length < p.Len || length > 32 {
		return Prefix{}, fmt.Errorf("addr: no /%d inside %s", length, p)
	}
	return Prefix{Base: p.Base, Len: length}, nil
}

// Double returns the prefix covering p and its sibling — the allocation
// "doubling" step of the MASC expansion rules. Doubling fails on a /0.
func (p Prefix) Double() (Prefix, error) {
	if p.Len == 0 {
		return Prefix{}, errors.New("addr: cannot double a /0 prefix")
	}
	return p.Parent(), nil
}

// Aggregate combines p and q into their common parent when they are exact
// siblings (e.g. 128.8/16 + 128.9/16 → 128.8/15, the paper's CIDR example).
// ok is false when they cannot be aggregated.
func Aggregate(p, q Prefix) (agg Prefix, ok bool) {
	if p.Len != q.Len || p.Len == 0 {
		return Prefix{}, false
	}
	if p.Sibling() != q {
		return Prefix{}, false
	}
	return p.Parent(), true
}

// MaskLenFor returns the shortest mask length whose prefix covers at least n
// addresses: MaskLenFor(1024) == 22 (the paper's "/22" example). n must be
// at least 1; requests beyond 2^32 are unsatisfiable and return -1.
func MaskLenFor(n uint64) int {
	if n == 0 {
		n = 1
	}
	for l := 32; l >= 0; l-- {
		if (Prefix{Len: l}).Size() >= n {
			return l
		}
	}
	return -1
}

// Compare orders prefixes by base address, then by mask length (shorter
// first). It returns -1, 0, or +1.
func Compare(p, q Prefix) int {
	switch {
	case p.Base < q.Base:
		return -1
	case p.Base > q.Base:
		return 1
	case p.Len < q.Len:
		return -1
	case p.Len > q.Len:
		return 1
	}
	return 0
}
