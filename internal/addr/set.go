package addr

import "sort"

// Set is a collection of pairwise-disjoint prefixes, kept sorted by base
// address. The zero value is an empty set ready to use.
//
// Set is the bookkeeping structure behind both the MASC allocation state
// (which ranges a domain currently holds) and the sibling-claim record a
// claimer consults before picking a new range.
type Set struct {
	prefixes []Prefix // sorted by Compare, pairwise disjoint
}

// NewSet builds a set from the given prefixes. Prefixes covered by other
// members are absorbed; overlapping entries are legal on input and reduced
// to their covering prefix.
func NewSet(prefixes ...Prefix) *Set {
	s := &Set{}
	for _, p := range prefixes {
		s.Add(p)
	}
	return s
}

// Len returns the number of disjoint prefixes in the set.
func (s *Set) Len() int { return len(s.prefixes) }

// Prefixes returns a copy of the set's prefixes in sorted order.
func (s *Set) Prefixes() []Prefix {
	out := make([]Prefix, len(s.prefixes))
	copy(out, s.prefixes)
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{prefixes: s.Prefixes()}
}

// Add inserts prefix p. Members covered by p are removed; if p is already
// covered by a member, the set is unchanged. Add reports whether the set
// changed.
func (s *Set) Add(p Prefix) bool {
	p = p.Canonical()
	for _, q := range s.prefixes {
		if q.ContainsPrefix(p) {
			return false
		}
	}
	kept := s.prefixes[:0]
	for _, q := range s.prefixes {
		if !p.ContainsPrefix(q) {
			kept = append(kept, q)
		}
	}
	s.prefixes = append(kept, p)
	sort.Slice(s.prefixes, func(i, j int) bool { return Compare(s.prefixes[i], s.prefixes[j]) < 0 })
	return true
}

// Remove deletes the exact prefix p from the set, reporting whether it was
// present. Removing a prefix that merely overlaps a member is a no-op.
func (s *Set) Remove(p Prefix) bool {
	for i, q := range s.prefixes {
		if q == p {
			s.prefixes = append(s.prefixes[:i], s.prefixes[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether address a is covered by any member.
func (s *Set) Contains(a Addr) bool {
	for _, q := range s.prefixes {
		if q.Contains(a) {
			return true
		}
	}
	return false
}

// ContainsPrefix reports whether p is entirely covered by a single member.
func (s *Set) ContainsPrefix(p Prefix) bool {
	for _, q := range s.prefixes {
		if q.ContainsPrefix(p) {
			return true
		}
	}
	return false
}

// OverlapsPrefix reports whether p shares any address with a member.
func (s *Set) OverlapsPrefix(p Prefix) bool {
	for _, q := range s.prefixes {
		if q.Overlaps(p) {
			return true
		}
	}
	return false
}

// Size returns the total number of addresses covered by the set.
func (s *Set) Size() uint64 {
	var n uint64
	for _, q := range s.prefixes {
		n += q.Size()
	}
	return n
}

// Aggregated returns a copy of the set with adjacent sibling prefixes merged
// into their parents, repeatedly, until no aggregation is possible. This is
// the CIDR aggregation BGP applies to group routes (paper §2, §4.3.2).
func (s *Set) Aggregated() *Set {
	out := s.Clone()
	for {
		merged := false
		for i := 0; i+1 < len(out.prefixes); i++ {
			if agg, ok := Aggregate(out.prefixes[i], out.prefixes[i+1]); ok {
				out.prefixes[i] = agg
				out.prefixes = append(out.prefixes[:i+1], out.prefixes[i+2:]...)
				merged = true
				break
			}
		}
		if !merged {
			return out
		}
	}
}

// FreeWithin returns the maximal free prefixes inside space not overlapped
// by any member of s, in sorted order. "Maximal" means no returned prefix's
// parent is also fully free: the result is the canonical free-space
// decomposition the claim algorithm searches.
func (s *Set) FreeWithin(space Prefix) []Prefix {
	var free []Prefix
	var walk func(p Prefix)
	walk = func(p Prefix) {
		if !s.OverlapsPrefix(p) {
			free = append(free, p)
			return
		}
		if s.ContainsPrefix(p) {
			return
		}
		lo, hi, err := p.Halves()
		if err != nil {
			return // a /32 overlapped by a member is fully allocated
		}
		walk(lo)
		walk(hi)
	}
	walk(space.Canonical())
	sort.Slice(free, func(i, j int) bool { return Compare(free[i], free[j]) < 0 })
	return free
}

// ShortestFree returns the free prefixes inside space whose mask length is
// the shortest available (the largest free blocks), per the claim algorithm:
// "it finds all the remaining prefixes of the shortest possible mask length"
// (paper §4.3.3). The boolean is false when space is fully allocated.
func (s *Set) ShortestFree(space Prefix) ([]Prefix, bool) {
	free := s.FreeWithin(space)
	if len(free) == 0 {
		return nil, false
	}
	best := 33
	for _, p := range free {
		if p.Len < best {
			best = p.Len
		}
	}
	out := free[:0:0]
	for _, p := range free {
		if p.Len == best {
			out = append(out, p)
		}
	}
	return out, true
}
