package addr

import (
	"math/rand"
	"testing"
)

func BenchmarkSetAdd(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ps := make([]Prefix, 256)
	for i := range ps {
		ps[i] = randPrefix(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSet()
		for _, p := range ps {
			s.Add(p)
		}
	}
}

func BenchmarkFreeWithin(b *testing.B) {
	s := NewSet()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		s.Add(Prefix{Base: MulticastSpace.Base | Addr(r.Uint32()&0x0fffff00), Len: 24}.Canonical())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FreeWithin(MulticastSpace)
	}
}

func BenchmarkShortestFree(b *testing.B) {
	s := NewSet()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		s.Add(Prefix{Base: MulticastSpace.Base | Addr(r.Uint32()&0x0fffff00), Len: 24}.Canonical())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.ShortestFree(MulticastSpace); !ok {
			b.Fatal("full")
		}
	}
}

func BenchmarkAggregated(b *testing.B) {
	s := NewSet()
	for i := 0; i < 128; i++ {
		s.Add(Prefix{Base: MakeAddr(230, 0, byte(i), 0), Len: 24})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Aggregated()
	}
}

func BenchmarkMaskLenFor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if MaskLenFor(uint64(i%100000+1)) < 0 {
			b.Fatal("impossible")
		}
	}
}
