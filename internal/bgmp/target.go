// Package bgmp implements the Border Gateway Multicast Protocol (paper §5):
// construction of inter-domain bidirectional shared trees rooted at each
// group's root domain, plus source-specific branches.
//
// A Component runs on each border router next to the BGP-lite speaker and
// the domain's MIGP (Multicast Interior Gateway Protocol). Multicast
// forwarding state is kept as (*,G) entries — a parent target toward the
// root domain plus child targets — and (S,G) entries for source-specific
// branches. Data received from any target is forwarded to all other targets
// in the entry (bidirectional forwarding).
package bgmp

import (
	"fmt"
	"sort"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// Target identifies where a forwarding entry sends data: an external BGMP
// peer, or the domain's MIGP component. An MIGP target may carry the
// internal border router it leads toward (used when relaying joins through
// the domain); for forwarding purposes all MIGP targets are one target.
type Target struct {
	// MIGP marks the domain-interior target.
	MIGP bool
	// Router is the external peer, or for MIGP targets the internal
	// border router the join must reach (zero when not applicable).
	Router wire.RouterID
}

// MIGPTarget is the generic domain-interior target.
var MIGPTarget = Target{MIGP: true}

// PeerTarget returns the target for an external BGMP peer.
func PeerTarget(r wire.RouterID) Target { return Target{Router: r} }

// MIGPToward returns the interior target leading to border router r.
func MIGPToward(r wire.RouterID) Target { return Target{MIGP: true, Router: r} }

// key normalizes the target for set membership: all MIGP targets collapse
// into one, because the domain interior is a single forwarding target.
func (t Target) key() Target {
	if t.MIGP {
		return MIGPTarget
	}
	return t
}

// String implements fmt.Stringer.
func (t Target) String() string {
	if t.MIGP {
		if t.Router != 0 {
			return fmt.Sprintf("migp(->%d)", t.Router)
		}
		return "migp"
	}
	return fmt.Sprintf("peer(%d)", t.Router)
}

// entry is shared bookkeeping for (*,G) and (S,G) state: a parent target
// and a set of child targets. Children are tracked exactly (an MIGP child
// toward border X is distinct from the generic interior-member child) so
// prunes from one internal path do not erase another's interest; the
// forwarding view deduplicates MIGP-kind targets.
type entry struct {
	parent   Target
	children map[Target]bool
	// root marks a (*,G) entry in the group's root domain (no BGP next
	// hop; the parent target is the MIGP component).
	root bool
	// sharedClone marks (S,G) state instantiated from the (*,G) entry —
	// shared-tree prune state rather than a source-specific branch. When
	// its child list empties it becomes a negative cache (drop S's
	// packets here) instead of being torn down.
	sharedClone bool
	// backup is the precomputed fallback parent for a (*,G) entry — the
	// runner-up G-RIB candidate, resolved at join time and refreshed on
	// every RouteChanged — valid when hasBackup. PeerDown switches the
	// parent to it without re-querying the G-RIB (1:1 protection).
	backup    Target
	hasBackup bool
	// targetCache is the memoized result of targets(), rebuilt lazily
	// after any parent/child mutation. Entries see one mutation per
	// join/prune but many forwarding lookups, so caching turns the
	// per-packet sort+dedup into a slice read.
	targetCache []Target
}

func newEntry(parent Target, root bool) *entry {
	return &entry{parent: parent, children: make(map[Target]bool, 2), root: root}
}

func (e *entry) addChild(t Target) {
	e.children[t] = true
	e.targetCache = nil
}

func (e *entry) removeChild(t Target) {
	delete(e.children, t)
	e.targetCache = nil
}

// setParent reparents the entry (failover or G-RIB change).
func (e *entry) setParent(t Target) {
	e.parent = t
	e.targetCache = nil
}

// removeMIGPChildren drops every interior-side child: a source-specific
// prune from the domain interior means the interior as a whole gets S via
// another border now.
func (e *entry) removeMIGPChildren() {
	for t := range e.children {
		if t.MIGP {
			delete(e.children, t)
		}
	}
	e.targetCache = nil
}

// targets returns the deduplicated full target list (parent + children).
// Callers must not mutate the returned slice: it is the shared cache.
func (e *entry) targets() []Target {
	if e.targetCache != nil {
		return e.targetCache
	}
	seen := make(map[Target]bool, len(e.children)+1)
	seen[e.parent.key()] = true
	out := make([]Target, 1, len(e.children)+1)
	out[0] = e.parent.key()
	for c := range e.children {
		k := c.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MIGP != out[j].MIGP {
			return out[i].MIGP
		}
		return out[i].Router < out[j].Router
	})
	e.targetCache = out
	return out
}

// forwardTargets returns every target except `from` (bidirectional rule).
func (e *entry) forwardTargets(from Target) []Target {
	fk := from.key()
	ts := e.targets()
	out := make([]Target, 0, len(ts))
	for _, t := range ts {
		if t != fk {
			out = append(out, t)
		}
	}
	return out
}

// clone copies the entry into (S,G) shared-tree state (used when source-
// specific state is instantiated from the (*,G) entry, per §5.3).
func (e *entry) clone() *entry {
	c := newEntry(e.parent, e.root)
	c.sharedClone = true
	for t := range e.children {
		c.children[t] = true
	}
	return c
}

// sgKey indexes (S,G) entries.
type sgKey struct {
	src   addr.Addr
	group addr.Addr
}
