package bgmp

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/wire"
)

// buildManyGroups creates n (*,G) entries inside 224.0.128.0/24 with
// identical target lists (parent 7, child 8).
func buildManyGroups(rig *testRig, n int) []addr.Addr {
	var gs []addr.Addr
	for i := 0; i < n; i++ {
		g := addr.MakeAddr(224, 0, 128, byte(i))
		rig.groups[g] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
		rig.comp.HandlePeer(8, &wire.GroupJoin{Group: g})
		gs = append(gs, g)
	}
	rig.sent = nil
	return gs
}

func TestCompressStateMergesIdenticalEntries(t *testing.T) {
	rig := newRig(1, 5, false)
	gs := buildManyGroups(rig, 10)

	groups, _, prefixes := rig.comp.StateSize()
	if groups != 10 || prefixes != 0 {
		t.Fatalf("before: groups=%d prefixes=%d", groups, prefixes)
	}
	merged := rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))
	if merged != 10 {
		t.Fatalf("merged = %d, want 10", merged)
	}
	groups, _, prefixes = rig.comp.StateSize()
	if groups != 0 || prefixes != 1 {
		t.Fatalf("after: groups=%d prefixes=%d", groups, prefixes)
	}
	// Forwarding still works for every covered group via the prefix entry.
	for _, g := range gs {
		rig.sent = nil
		rig.comp.Deliver(PeerTarget(7), &wire.Data{Group: g, Source: sourceS, TTL: 16})
		found := false
		for _, s := range rig.sent {
			if d, ok := s.msg.(*wire.Data); ok && s.to == 8 && d.Group == g {
				found = true
			}
		}
		if !found {
			t.Fatalf("group %v not forwarded from prefix state", g)
		}
	}
}

func TestCompressStateSkipsDifferingTargets(t *testing.T) {
	rig := newRig(1, 5, false)
	buildManyGroups(rig, 4)
	// A fifth group with a different child set.
	odd := addr.MakeAddr(224, 0, 128, 200)
	rig.groups[odd] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(9, &wire.GroupJoin{Group: odd})

	merged := rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))
	if merged != 4 {
		t.Fatalf("merged = %d, want 4 (the odd one stays)", merged)
	}
	groups, _, prefixes := rig.comp.StateSize()
	if groups != 1 || prefixes != 1 {
		t.Fatalf("after: groups=%d prefixes=%d", groups, prefixes)
	}
	// The odd group keeps its own entry and forwarding.
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), &wire.Data{Group: odd, Source: sourceS, TTL: 16})
	found := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.Data); ok && s.to == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("odd group lost its specific forwarding")
	}
}

func TestCompressStateTooFewEntriesIsNoop(t *testing.T) {
	rig := newRig(1, 5, false)
	buildManyGroups(rig, 1)
	if merged := rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24")); merged != 0 {
		t.Fatalf("merged = %d, want 0", merged)
	}
}

func TestJoinMaterializesFromPrefixState(t *testing.T) {
	rig := newRig(1, 5, false)
	gs := buildManyGroups(rig, 5)
	rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))

	// A new child joins one covered group: it gets a materialized exact
	// entry (inheriting the prefix entry's targets) plus the new child,
	// and no join is propagated (the parent state already exists).
	rig.sent = nil
	rig.comp.HandlePeer(9, &wire.GroupJoin{Group: gs[2]})
	if len(rig.sent) != 0 {
		t.Fatalf("materialized join must not re-propagate: %v", rig.sent)
	}
	parent, children, ok := rig.comp.GroupEntry(gs[2])
	if !ok || parent != PeerTarget(7) {
		t.Fatalf("materialized entry parent = %v ok=%v", parent, ok)
	}
	has := map[Target]bool{}
	for _, c := range children {
		has[c] = true
	}
	if !has[PeerTarget(8)] || !has[PeerTarget(9)] {
		t.Fatalf("materialized children = %v", children)
	}
	// Data to that group now reaches both children; sibling groups are
	// unaffected (still prefix-served, child 8 only).
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), &wire.Data{Group: gs[2], Source: sourceS, TTL: 16})
	got := map[wire.RouterID]bool{}
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.Data); ok {
			got[s.to] = true
		}
	}
	if !got[8] || !got[9] {
		t.Fatalf("materialized forwarding peers = %v", got)
	}
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), &wire.Data{Group: gs[3], Source: sourceS, TTL: 16})
	for _, s := range rig.sent {
		if s.to == 9 {
			t.Fatal("sibling group leaked to the new child")
		}
	}
}

func TestPruneMaterializesFromPrefixState(t *testing.T) {
	rig := newRig(1, 5, false)
	gs := buildManyGroups(rig, 3)
	rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))

	// Child 8 prunes one covered group: that group materializes, loses
	// its last child, and a prune propagates upstream — without touching
	// the other covered groups.
	rig.sent = nil
	rig.comp.HandlePeer(8, &wire.GroupPrune{Group: gs[0]})
	if rig.comp.HasGroupState(gs[0]) {
		t.Fatal("pruned group should have no exact state")
	}
	foundPrune := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.GroupPrune); ok && s.to == 7 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("prune not propagated: %v", rig.sent)
	}
	// Other groups still forward via the prefix entry.
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), &wire.Data{Group: gs[1], Source: sourceS, TTL: 16})
	if len(rig.sent) == 0 {
		t.Fatal("sibling group lost forwarding after prune")
	}
}

func BenchmarkStateLookupExact(b *testing.B) {
	rig := newRig(1, 5, false)
	gs := buildManyGroups(rig, 200)
	d := &wire.Data{Group: gs[100], Source: sourceS, TTL: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sent = rig.sent[:0]
		rig.comp.Deliver(PeerTarget(7), d)
	}
}

func BenchmarkStateLookupCompressed(b *testing.B) {
	rig := newRig(1, 5, false)
	gs := buildManyGroups(rig, 200)
	rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))
	d := &wire.Data{Group: gs[100], Source: sourceS, TTL: 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.sent = rig.sent[:0]
		rig.comp.Deliver(PeerTarget(7), d)
	}
}

func BenchmarkCompressState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rig := newRig(1, 5, false)
		buildManyGroups(rig, 100)
		b.StartTimer()
		rig.comp.CompressState(addr.MustParsePrefix("224.0.128.0/24"))
	}
}
