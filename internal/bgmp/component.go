package bgmp

import (
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// MIGP is the interface between a border router's BGMP component and the
// domain's Multicast Interior Gateway Protocol component (paper §5: "The
// portion of the border router running an MIGP is referred to as the MIGP
// component"). Implementations live in internal/migp and internal/core.
//
// All methods are called without BGMP-internal locks held.
type MIGP interface {
	// JoinGroup registers interior interest in g at this border router
	// (e.g. a DVMRP Graft toward pruned sources, or joining the PIM-SM RP
	// tree) so interior data for g reaches it and members receive data it
	// injects.
	JoinGroup(g addr.Addr)
	// LeaveGroup undoes JoinGroup.
	LeaveGroup(g addr.Addr)
	// RelayToBorder carries a BGMP control or encapsulated data message
	// through the domain to another of its border routers, setting up
	// any transit state the interior protocol needs.
	RelayToBorder(to wire.RouterID, msg wire.Message)
	// Inject delivers a multicast packet into the domain at this border
	// router: the interior protocol distributes it to interior members
	// and to the other border routers with state for the group. The
	// return value is false when interior RPF would drop the packet
	// (the packet entered at the wrong border router for its source, the
	// encapsulation case of §5.3) — the caller must encapsulate instead.
	Inject(d *wire.Data) bool
	// ExpectedEntry returns the border router through which interior RPF
	// expects packets from src to enter the domain (the best exit toward
	// src).
	ExpectedEntry(src addr.Addr) wire.RouterID
}

// Config parameterizes a Component.
type Config struct {
	Router wire.RouterID
	Domain wire.DomainID
	// LookupGroup resolves a group address in the G-RIB.
	LookupGroup func(g addr.Addr) (bgp.Entry, bool)
	// LookupGroupBackup resolves the runner-up G-RIB candidate for a
	// group — the route the decision process would pick if the current
	// best's peer vanished. Set, it arms precomputed backup parents so
	// PeerDown can switch a tree over without re-querying the G-RIB; nil
	// disables them (repair then waits for the BGP withdrawal).
	LookupGroupBackup func(g addr.Addr) (bgp.Entry, bool)
	// LookupSource resolves a source address for RPF-style forwarding
	// (the M-RIB view, falling back to unicast).
	LookupSource func(s addr.Addr) (bgp.Entry, bool)
	// Internal reports whether a router ID is a border router of this
	// same domain.
	Internal func(r wire.RouterID) bool
	// SendPeer transmits a BGMP message to an external peer.
	SendPeer func(to wire.RouterID, msg wire.Message)
	// MIGP is the interior component; required.
	MIGP MIGP
	// BuildSourceBranches enables §5.3 source-specific branches: a border
	// router receiving encapsulated data may join toward the source to
	// stop the encapsulation. Disabled, BGMP uses pure bidirectional
	// trees (the ablation baseline).
	BuildSourceBranches bool
	// Obs observes joins, prunes, tree repairs, and data-plane hops,
	// scoped by Domain/Router. Nil disables observation.
	Obs *obs.Observer
}

// Component is the BGMP speaker of one border router. Safe for concurrent
// use.
type Component struct {
	cfg Config

	mu     sync.Mutex
	groups map[addr.Addr]*entry // guarded by mu
	srcs   map[sgKey]*entry     // guarded by mu
	// prefixes holds (*,G-prefix) aggregated forwarding state (§7); see
	// aggregate.go. guarded by mu
	prefixes map[addr.Prefix]*entry
	// encapFrom remembers, per (S,G), the internal border router that is
	// encapsulating data to us, so we can source-prune it once the
	// source-specific branch delivers. guarded by mu
	encapFrom map[sgKey]wire.RouterID
	// importedSG marks (S,G) flows this router itself encapsulates into
	// the domain: interior copies of them are its own reflux and must not
	// be re-exported up the shared tree (they would loop B2↔F1 in the
	// paper's Fig 3(b) topology). guarded by mu
	importedSG map[sgKey]bool
	// orphans parks (*,G) entries whose G-RIB route vanished (or never
	// existed at join time). The child list is kept so that when a
	// covering route reappears — a session recovered, BGP resynced —
	// RouteChanged can re-attach the tree without waiting for downstream
	// routers to re-issue joins. Orphans hold no forwarding state.
	// guarded by mu
	orphans map[addr.Addr]*entry
	// out buffers messages generated under the lock. guarded by mu
	out []outItem
	// evbuf collects events under the lock; they are emitted with the
	// out-queue after release so observers may call back into the router.
	// guarded by mu
	evbuf []obs.Event
	// cur is the causal trace context of the operation currently mutating
	// state under mu. drainLocked stamps it onto every buffered out message
	// and clears it, so propagated joins/prunes carry their cause
	// hop-by-hop. guarded by mu
	cur wire.TraceContext
}

type outItem struct {
	target Target
	msg    wire.Message
}

// New returns a Component.
func New(cfg Config) *Component {
	return &Component{
		cfg:        cfg,
		groups:     map[addr.Addr]*entry{},
		srcs:       map[sgKey]*entry{},
		encapFrom:  map[sgKey]wire.RouterID{},
		importedSG: map[sgKey]bool{},
		orphans:    map[addr.Addr]*entry{},
	}
}

// Router returns the component's router ID.
func (c *Component) Router() wire.RouterID { return c.cfg.Router }

// GroupEntry exposes the (*,G) target list for inspection: parent first,
// then children. ok is false when the router has no state for g.
func (c *Component) GroupEntry(g addr.Addr) (parent Target, children []Target, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.groups[g]
	if !ok {
		return Target{}, nil, false
	}
	for t := range e.children {
		children = append(children, t)
	}
	sortTargets(children)
	return e.parent, children, true
}

// SourceEntry exposes the (S,G) target list.
func (c *Component) SourceEntry(s, g addr.Addr) (parent Target, children []Target, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.srcs[sgKey{s, g}]
	if !ok {
		return Target{}, nil, false
	}
	for t := range e.children {
		children = append(children, t)
	}
	sortTargets(children)
	return e.parent, children, true
}

// sortTargets orders a target list by router ID, MIGP targets first on a
// tie, so entry listings never depend on map iteration order.
func sortTargets(ts []Target) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Router != ts[j].Router {
			return ts[i].Router < ts[j].Router
		}
		return ts[i].MIGP && !ts[j].MIGP
	})
}

// HasGroupState reports whether the router holds an exact (*,G) entry.
func (c *Component) HasGroupState(g addr.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.groups[g]
	return ok
}

// Orphaned reports whether g's tree interest is parked waiting for a
// G-RIB route (see Component.orphans).
func (c *Component) Orphaned(g addr.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.orphans[g]
	return ok
}

// Reset drops every piece of forwarding and bookkeeping state, modeling a
// router process crash: the restarted BGMP speaker comes back empty and
// relearns its trees from fresh joins and route updates.
func (c *Component) Reset() {
	c.mu.Lock()
	c.groups = map[addr.Addr]*entry{}
	c.srcs = map[sgKey]*entry{}
	c.prefixes = nil
	c.encapFrom = map[sgKey]wire.RouterID{}
	c.importedSG = map[sgKey]bool{}
	c.orphans = map[addr.Addr]*entry{}
	c.out, c.evbuf = nil, nil
	c.mu.Unlock()
}

// HasForwardingState reports whether the router can forward g's data from
// tree state: an exact (*,G) entry or covering (*,G-prefix) state.
func (c *Component) HasForwardingState(g addr.Addr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.groups[g]; ok {
		return true
	}
	return c.prefixEntryForLocked(g) != nil
}

// ---------------------------------------------------------------- joining

// LocalJoin is called by the MIGP component when a host in the domain has
// joined g and this router is the domain's best exit router for g. It adds
// the MIGP component as a child target, creating the (*,G) entry and
// propagating the join toward the root domain as needed.
func (c *Component) LocalJoin(g addr.Addr) {
	sp := c.cfg.Obs.Tracer().Begin(obs.SpanMemberJoin,
		obs.Event{Domain: c.cfg.Domain, Router: c.cfg.Router, Group: g})
	c.mu.Lock()
	c.cur = sp.Context()
	c.joinLocked(g, MIGPTarget)
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
	sp.End()
}

// LocalLeave undoes LocalJoin when no interior members remain.
func (c *Component) LocalLeave(g addr.Addr) {
	sp := c.cfg.Obs.Tracer().Begin(obs.SpanMemberLeave,
		obs.Event{Domain: c.cfg.Domain, Router: c.cfg.Router, Group: g})
	c.mu.Lock()
	c.cur = sp.Context()
	c.pruneLocked(g, MIGPTarget)
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
	sp.End()
}

// beginHop parents a per-hop span under the inbound message's trace
// context: join hops and prune hops get spans; other messages don't. The
// returned span is a no-op when the message is untraced or tracing is off.
func (c *Component) beginHop(from wire.RouterID, msg wire.Message) obs.Span {
	tr := c.cfg.Obs.Tracer()
	if tr == nil {
		return obs.Span{}
	}
	ctx := wire.ContextOf(msg)
	ev := obs.Event{Domain: c.cfg.Domain, Router: c.cfg.Router, Peer: from}
	switch m := msg.(type) {
	case *wire.GroupJoin:
		ev.Group = m.Group
		return tr.BeginChild(ctx, obs.SpanJoinHop, ev)
	case *wire.GroupPrune:
		ev.Group = m.Group
		return tr.BeginChild(ctx, obs.SpanPruneHop, ev)
	case *wire.SourceJoin:
		ev.Group = m.Group
		return tr.BeginChild(ctx, obs.SpanJoinHop, ev)
	case *wire.SourcePrune:
		ev.Group = m.Group
		return tr.BeginChild(ctx, obs.SpanPruneHop, ev)
	}
	return obs.Span{}
}

// HandlePeer processes a BGMP message from an external peer.
func (c *Component) HandlePeer(from wire.RouterID, msg wire.Message) {
	sp := c.beginHop(from, msg)
	defer sp.End()
	c.mu.Lock()
	c.cur = sp.Context()
	switch m := msg.(type) {
	case *wire.GroupJoin:
		c.joinLocked(m.Group, PeerTarget(from))
	case *wire.GroupPrune:
		c.pruneLocked(m.Group, PeerTarget(from))
	case *wire.SourceJoin:
		c.sourceJoinLocked(m.Source, m.Group, PeerTarget(from))
	case *wire.SourcePrune:
		c.sourcePruneLocked(m.Source, m.Group, PeerTarget(from))
	case *wire.Data:
		out, evs := c.drainLocked()
		c.mu.Unlock()
		c.flush(out, evs)
		c.Deliver(PeerTarget(from), m)
		return
	}
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
}

// HandleFromBorder processes a message relayed through the MIGP from
// another border router of the same domain (the "internal BGMP peer" path
// of §5.2).
func (c *Component) HandleFromBorder(from wire.RouterID, msg wire.Message) {
	sp := c.beginHop(from, msg)
	defer sp.End()
	c.mu.Lock()
	c.cur = sp.Context()
	switch m := msg.(type) {
	case *wire.GroupJoin:
		// Paper: A3, receiving the join from its MIGP component, adds the
		// MIGP component as child target. The relaying border is kept in
		// the target so its later prune removes only its own interest.
		c.joinLocked(m.Group, MIGPToward(from))
	case *wire.GroupPrune:
		c.pruneLocked(m.Group, MIGPToward(from))
	case *wire.SourceJoin:
		c.sourceJoinLocked(m.Source, m.Group, MIGPToward(from))
	case *wire.SourcePrune:
		c.sourcePruneLocked(m.Source, m.Group, MIGPToward(from))
	case *wire.Data:
		out, evs := c.drainLocked()
		c.mu.Unlock()
		c.flush(out, evs)
		c.Deliver(MIGPToward(from), m)
		return
	}
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
}

// joinLocked adds `child` to the (*,G) entry, creating it (and propagating
// the join toward the root domain) when absent. A group covered by
// aggregated (*,G-prefix) state is re-materialized first, keeping control
// traffic per-group precise.
func (c *Component) joinLocked(g addr.Addr, child Target) {
	c.eventLocked(obs.Event{Kind: obs.BGMPJoin, Group: g})
	e, ok := c.groups[g]
	if !ok {
		if me := c.materializeLocked(g); me != nil {
			me.addChild(child)
			c.observeGraftLocked()
			return
		}
	}
	// grafted marks the join terminating at this router — it met existing
	// tree state or the root — which is when the branch is complete and the
	// origin-to-graft latency is observable.
	grafted := ok
	if !ok {
		parent, root, ok2 := c.parentForGroup(g)
		if !ok2 {
			// No G-RIB route: park the interest as an orphan so the join
			// propagates the moment a covering route (re)appears.
			oe, had := c.orphans[g]
			if !had {
				oe = newEntry(Target{}, false)
				c.orphans[g] = oe
			}
			oe.addChild(child)
			return
		}
		e = newEntry(parent, root)
		e.backup, e.hasBackup = c.backupForGroup(g)
		c.groups[g] = e
		switch {
		case root:
			// Root domain: no BGP next hop; become an interior member.
			c.out = append(c.out, outItem{target: Target{MIGP: true, Router: 0}, msg: migpJoin{group: g}})
			grafted = true
		case parent.MIGP:
			// Next hop toward the root is another border router of this
			// domain: relay the join through the MIGP.
			c.out = append(c.out, outItem{target: parent, msg: &wire.GroupJoin{Group: g}})
		default:
			c.out = append(c.out, outItem{target: parent, msg: &wire.GroupJoin{Group: g}})
		}
	}
	e.addChild(child)
	if grafted {
		c.observeGraftLocked()
	}
}

// observeGraftLocked records the origin-to-graft latency for the traced
// join currently in flight (c.cur carries the chain root's start instant).
// Untraced joins, or tracers without a clock, observe nothing.
func (c *Component) observeGraftLocked() {
	if c.cur.Start == 0 {
		return
	}
	now := c.cfg.Obs.Tracer().Now()
	if now < c.cur.Start {
		return
	}
	c.cfg.Obs.Histogram(obs.HistJoinGraft, c.cfg.Domain, c.cfg.Router).Observe(now - c.cur.Start)
}

// pruneLocked removes `child` from the (*,G) entry, tearing the entry down
// (and propagating the prune) when the child list empties.
func (c *Component) pruneLocked(g addr.Addr, child Target) {
	c.eventLocked(obs.Event{Kind: obs.BGMPPrune, Group: g})
	e, ok := c.groups[g]
	if !ok {
		e = c.materializeLocked(g)
		if e == nil {
			// The group may be parked as an orphan (no route); retract the
			// child's interest there so a later rejoin is accurate.
			if oe, had := c.orphans[g]; had {
				oe.removeChild(child)
				if len(oe.children) == 0 {
					delete(c.orphans, g)
				}
			}
			return
		}
	}
	e.removeChild(child)
	if len(e.children) > 0 {
		return
	}
	delete(c.groups, g)
	// Tear down dependent (S,G) state inherited from this entry; branch
	// state stands on its own.
	for k, se := range c.srcs {
		if k.group == g && se.sharedClone {
			delete(c.srcs, k)
		}
	}
	for k := range c.importedSG {
		if k.group == g {
			delete(c.importedSG, k)
		}
	}
	switch {
	case e.root:
		c.out = append(c.out, outItem{target: MIGPTarget, msg: migpLeave{group: g}})
	default:
		c.out = append(c.out, outItem{target: e.parent, msg: &wire.GroupPrune{Group: g}})
	}
}

// parentForGroup resolves the parent target for group g from the G-RIB.
func (c *Component) parentForGroup(g addr.Addr) (Target, bool, bool) {
	ent, ok := c.cfg.LookupGroup(g)
	if !ok {
		return Target{}, false, false
	}
	if wire.DomainID(ent.Route.Origin) == c.cfg.Domain {
		return MIGPTarget, true, true
	}
	if ent.Local || ent.NextHop == c.cfg.Router {
		return MIGPTarget, true, true
	}
	if c.cfg.Internal != nil && c.cfg.Internal(ent.NextHop) {
		return MIGPToward(ent.NextHop), false, true
	}
	return PeerTarget(ent.NextHop), false, true
}

// backupForGroup resolves the precomputed fallback parent for g: the
// runner-up G-RIB candidate, mapped through the same target rules as
// parentForGroup. ok is false when backups are disabled or no second
// candidate exists.
func (c *Component) backupForGroup(g addr.Addr) (Target, bool) {
	if c.cfg.LookupGroupBackup == nil {
		return Target{}, false
	}
	ent, ok := c.cfg.LookupGroupBackup(g)
	if !ok {
		return Target{}, false
	}
	if wire.DomainID(ent.Route.Origin) == c.cfg.Domain || ent.Local || ent.NextHop == c.cfg.Router {
		return MIGPTarget, true
	}
	if c.cfg.Internal != nil && c.cfg.Internal(ent.NextHop) {
		return MIGPToward(ent.NextHop), true
	}
	return PeerTarget(ent.NextHop), true
}

// BackupParent exposes g's precomputed fallback parent; ok is false when
// none is armed.
func (c *Component) BackupParent(g addr.Addr) (Target, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.groups[g]
	if !ok || !e.hasBackup {
		return Target{}, false
	}
	return e.backup, true
}

// parentForSource resolves the next hop toward a source for (S,G) branches.
func (c *Component) parentForSource(s addr.Addr) (Target, bool /*sourceIsLocal*/, bool) {
	ent, ok := c.cfg.LookupSource(s)
	if !ok {
		return Target{}, false, false
	}
	if wire.DomainID(ent.Route.Origin) == c.cfg.Domain || ent.Local {
		return MIGPTarget, true, true
	}
	if c.cfg.Internal != nil && c.cfg.Internal(ent.NextHop) {
		return MIGPToward(ent.NextHop), false, true
	}
	return PeerTarget(ent.NextHop), false, true
}

// migpJoin/migpLeave are internal out-queue markers for MIGP group
// membership changes (they never hit the wire).
type migpJoin struct{ group addr.Addr }
type migpLeave struct{ group addr.Addr }

func (migpJoin) Type() wire.MsgType             { return wire.TypeInvalid }
func (migpJoin) AppendPayload(b []byte) []byte  { return b }
func (migpJoin) DecodePayload([]byte) error     { return nil }
func (migpLeave) Type() wire.MsgType            { return wire.TypeInvalid }
func (migpLeave) AppendPayload(b []byte) []byte { return b }
func (migpLeave) DecodePayload([]byte) error    { return nil }

// event queues an observability event for post-unlock emission, filling in
// the router's scope. Caller holds c.mu.
func (c *Component) eventLocked(e obs.Event) {
	if c.cfg.Obs == nil {
		return
	}
	e.Domain, e.Router = c.cfg.Domain, c.cfg.Router
	c.evbuf = append(c.evbuf, e)
}

func (c *Component) drainLocked() ([]outItem, []obs.Event) {
	out, evs := c.out, c.evbuf
	c.out, c.evbuf = nil, nil
	if !c.cur.Zero() {
		for _, it := range out {
			wire.Stamp(it.msg, c.cur)
		}
		c.cur = wire.TraceContext{}
	}
	return out, evs
}

func (c *Component) flush(items []outItem, evs []obs.Event) {
	for _, e := range evs {
		c.cfg.Obs.Emit(e)
	}
	for _, it := range items {
		switch m := it.msg.(type) {
		case migpJoin:
			c.cfg.MIGP.JoinGroup(m.group)
		case migpLeave:
			c.cfg.MIGP.LeaveGroup(m.group)
		default:
			if it.target.MIGP {
				c.cfg.MIGP.RelayToBorder(it.target.Router, it.msg)
			} else {
				c.cfg.SendPeer(it.target.Router, it.msg)
			}
		}
	}
}
