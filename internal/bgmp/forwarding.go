package bgmp

import (
	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// ------------------------------------------------ source-specific branches

// RequestSourceBranch starts a source-specific branch (§5.3): (S,G) state
// toward the source, used by a border router that wants data from S to
// arrive natively instead of encapsulated. The join propagates until it
// reaches a router on the group's bidirectional tree or the source domain.
func (c *Component) RequestSourceBranch(s, g addr.Addr) {
	c.mu.Lock()
	c.sourceJoinLocked(s, g, MIGPTarget)
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
}

// sourceJoinLocked adds `child` to the (S,G) entry, creating it when
// absent. Creation on a router already on the shared tree copies the (*,G)
// target list and does not propagate (the branch stops here); otherwise the
// join continues toward the source.
func (c *Component) sourceJoinLocked(s, g addr.Addr, child Target) {
	c.eventLocked(obs.Event{Kind: obs.BGMPJoin, Group: g, Source: s})
	k := sgKey{s, g}
	if e, ok := c.srcs[k]; ok {
		e.addChild(child)
		return
	}
	if ge, ok := c.groups[g]; ok {
		// On the shared tree: (S,G) inherits the (*,G) targets, plus the
		// new branch child. The join stops here.
		e := ge.clone()
		e.addChild(child)
		c.srcs[k] = e
		return
	}
	parent, sourceLocal, ok := c.parentForSource(s)
	if !ok {
		return
	}
	e := newEntry(parent, sourceLocal)
	e.addChild(child)
	c.srcs[k] = e
	if !sourceLocal {
		c.out = append(c.out, outItem{target: parent, msg: &wire.SourceJoin{Group: g, Source: s}})
	}
}

// sourcePruneLocked handles a source-specific prune from `child`: either
// tearing down branch state or recording that S's packets must no longer
// flow to `child` along the shared tree, propagating upstream when no other
// target needs them (§5.3).
func (c *Component) sourcePruneLocked(s, g addr.Addr, child Target) {
	c.eventLocked(obs.Event{Kind: obs.BGMPPrune, Group: g, Source: s})
	k := sgKey{s, g}
	e, ok := c.srcs[k]
	if !ok {
		ge, okG := c.groups[g]
		if !okG {
			return
		}
		e = ge.clone()
		c.srcs[k] = e
	}
	if child.MIGP {
		// The interior now receives S elsewhere (e.g. via a decapsulating
		// border's branch): all interior-side interest in S goes.
		e.removeMIGPChildren()
	} else {
		e.removeChild(child)
	}
	if len(e.children) > 0 {
		return
	}
	switch {
	case e.sharedClone:
		// Shared-tree prune state: tell the upstream to stop sending S's
		// packets and keep the entry as a negative cache so S's packets
		// are no longer forwarded through here at all.
		if !e.root {
			c.out = append(c.out, outItem{target: e.parent, msg: &wire.SourcePrune{Group: g, Source: s}})
		}
	case !e.root:
		// A torn-down branch: propagate toward the source and forget.
		c.out = append(c.out, outItem{target: e.parent, msg: &wire.SourcePrune{Group: g, Source: s}})
		delete(c.srcs, k)
	default:
		delete(c.srcs, k)
	}
}

// ----------------------------------------------------------- data plane

// Deliver is the single data-plane ingress: every multicast packet reaching
// this border router enters here, tagged with where it came from. src is
// MIGPTarget for interior-origin packets, MIGPToward(r) for packets relayed
// from sibling border r through the domain, and PeerTarget(r) for packets
// from external peer r. Encapsulated relays (§5.3) are recognized and
// decapsulated; everything else follows the (S,G)/(*,G)/off-tree rules.
//
// Deliver is the contract the pluggable data-plane backends implement
// (internal/dataplane); this is the shared-tree implementation.
func (c *Component) Deliver(src Target, d *wire.Data) {
	if d.Encap && src.MIGP && src.Router != 0 {
		c.handleEncap(src.Router, d)
		return
	}
	c.handleData(src, d)
}

// handleData forwards one packet according to the (S,G) entry when present,
// the (*,G) entry otherwise, and — with no state at all — toward the
// group's root domain ("any router must be able to forward a data packet
// towards group members", §3).
func (c *Component) handleData(from Target, d *wire.Data) {
	if d.TTL == 0 {
		return
	}
	k := sgKey{d.Source, d.Group}
	c.mu.Lock()
	if from.key() == MIGPTarget && c.importedSG[k] {
		// Interior copies of a flow this router encapsulates inward are
		// its own reflux: dropping them here breaks the B2↔F1 loop of
		// Fig 3(b) while the source-specific branch is being built.
		c.mu.Unlock()
		return
	}
	e, isSG := c.srcs[k], false
	if e != nil {
		isSG = true
	} else if e = c.groups[d.Group]; e == nil {
		// Aggregated (*,G-prefix) state (§7) serves covered groups.
		e = c.prefixEntryForLocked(d.Group)
	}
	var encapFrom wire.RouterID
	var hadEncap bool
	if isSG && from.key() == e.parent.key() {
		// Native data now arrives along the branch: stop the
		// encapsulated copies (§5.3).
		if r, ok := c.encapFrom[k]; ok {
			encapFrom, hadEncap = r, true
			delete(c.encapFrom, k)
		}
	}
	var targets []Target
	if e != nil && !(isSG && e.sharedClone && len(e.children) == 0) {
		// An empty shared-clone (S,G) entry is a negative cache: S's
		// packets stop here (every downstream pruned; the upstream was
		// pruned too).
		targets = e.forwardTargets(from)
	}
	c.mu.Unlock()

	// Per-packet forwarding work: how many copies this router fans out.
	c.cfg.Obs.Histogram(obs.HistForwardWork, c.cfg.Domain, c.cfg.Router).Observe(uint64(len(targets)))

	if hadEncap {
		c.cfg.MIGP.RelayToBorder(encapFrom, &wire.SourcePrune{Group: d.Group, Source: d.Source})
	}

	if e == nil {
		c.forwardOffTree(from, d)
		return
	}
	for _, t := range targets {
		c.forwardTo(t, d)
	}

}

// forwardOffTree implements the no-state rule: keep the packet moving
// toward the root domain until it hits the shared tree.
func (c *Component) forwardOffTree(from Target, d *wire.Data) {
	ent, ok := c.cfg.LookupGroup(d.Group)
	if !ok {
		return // no root domain known: drop
	}
	inRootDomain := wire.DomainID(ent.Route.Origin) == c.cfg.Domain || ent.Local || ent.NextHop == c.cfg.Router
	nextInternal := !inRootDomain && c.cfg.Internal != nil && c.cfg.Internal(ent.NextHop)
	if from.key() == MIGPTarget {
		// Interior-origin data (or data transiting the domain). Only the
		// best exit router pushes it onward; others drop, so the domain
		// emits a single copy.
		if inRootDomain || nextInternal {
			return
		}
		c.forwardTo(PeerTarget(ent.NextHop), d)
		return
	}
	// Data from an external peer at a stateless router.
	switch {
	case inRootDomain:
		// Let the interior deliver to any local members; on-tree border
		// routers of the root domain pick it up and forward along the
		// tree.
		c.forwardTo(MIGPTarget, d)
	case nextInternal:
		// Transit through the domain toward the best exit (the paper's
		// A1→A3 example: the packet crosses domain A via the MIGP).
		c.forwardTo(MIGPTarget, d)
	default:
		c.forwardTo(PeerTarget(ent.NextHop), d)
	}
}

// forwardTo sends a copy of d to one target, decrementing the TTL on
// inter-domain hops and handling interior RPF failures by encapsulating to
// the expected entry router (§5.3).
func (c *Component) forwardTo(t Target, d *wire.Data) {
	if t.MIGP {
		cp := *d
		if c.cfg.MIGP.Inject(&cp) {
			return
		}
		// Interior RPF failure: unicast-encapsulate to the border router
		// the interior expects packets from this source to enter at.
		exp := c.cfg.MIGP.ExpectedEntry(d.Source)
		if exp == c.cfg.Router || exp == 0 {
			return
		}
		c.mu.Lock()
		c.importedSG[sgKey{d.Source, d.Group}] = true
		c.mu.Unlock()
		enc := *d
		enc.Encap = true
		if c.cfg.Obs != nil {
			c.cfg.Obs.Emit(obs.Event{Kind: obs.DataEncap, Domain: c.cfg.Domain,
				Router: c.cfg.Router, Peer: exp, Group: d.Group, Source: d.Source})
		}
		c.cfg.MIGP.RelayToBorder(exp, &enc)
		return
	}
	if d.TTL <= 1 {
		return
	}
	cp := *d
	cp.TTL--
	if c.cfg.Obs != nil {
		c.cfg.Obs.Emit(obs.Event{Kind: obs.DataForwarded, Domain: c.cfg.Domain,
			Router: c.cfg.Router, Peer: t.Router, Group: d.Group, Source: d.Source})
	}
	c.cfg.SendPeer(t.Router, &cp)
}

// handleEncap processes an encapsulated packet relayed from another border
// router of this domain: decapsulate, inject (we are the expected entry, so
// interior RPF passes), and optionally start a source-specific branch so
// future packets arrive natively.
func (c *Component) handleEncap(from wire.RouterID, d *wire.Data) {
	cp := *d
	cp.Encap = false
	c.cfg.MIGP.Inject(&cp)
	if !c.cfg.BuildSourceBranches {
		return
	}
	k := sgKey{d.Source, d.Group}
	c.mu.Lock()
	_, have := c.srcs[k]
	if !have {
		c.encapFrom[k] = from
	}
	c.mu.Unlock()
	if !have {
		c.RequestSourceBranch(d.Source, d.Group)
	}
}
