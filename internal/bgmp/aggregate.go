package bgmp

import (
	"sort"

	"mascbgmp/internal/addr"
)

// Forwarding-state aggregation (paper §7, "Scaling forwarding entries"):
// "BGMP has provisions for this by allowing (*,G-prefix) ... state to be
// stored at the routers wherever the list of targets are the same."
//
// CompressState merges (*,G) entries whose group addresses fall inside a
// prefix and whose target lists are identical into a single (*,G-prefix)
// entry. Forwarding falls back to the longest-match prefix entry when no
// exact (*,G) entry exists; joins and prunes for a covered group
// re-materialize an exact entry from the prefix entry first, so control
// traffic keeps per-group precision.

// StateSize reports the number of forwarding entries of each kind.
func (c *Component) StateSize() (groups, sources, groupPrefixes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.groups), len(c.srcs), len(c.prefixes)
}

// CompressState merges the (*,G) entries covered by p that share an
// identical target list into one (*,G-prefix) entry, returning how many
// entries were absorbed. Entries with differing targets are left alone.
// A compression with fewer than two matching entries is skipped.
func (c *Component) CompressState(p addr.Prefix) int {
	p = p.Canonical()
	c.mu.Lock()
	defer c.mu.Unlock()

	// Partition covered groups by their canonical target signature,
	// visiting groups in address order so each signature's group list —
	// and hence the proto entry choice below — is deterministic.
	bySig := map[string][]addr.Addr{}
	for _, g := range sortedGroups(c.groups) {
		if !p.Contains(g) {
			continue
		}
		sig := entrySig(c.groups[g])
		bySig[sig] = append(bySig[sig], g)
	}
	var bestSig string
	for _, sig := range sortedSigs(bySig) {
		if len(bySig[sig]) > len(bySig[bestSig]) {
			bestSig = sig
		}
	}
	gs := bySig[bestSig]
	if len(gs) < 2 {
		return 0
	}
	proto := c.groups[gs[0]]
	agg := proto.clone()
	agg.sharedClone = false
	if c.prefixes == nil {
		c.prefixes = map[addr.Prefix]*entry{}
	}
	c.prefixes[p] = agg
	for _, g := range gs {
		delete(c.groups, g)
	}
	return len(gs)
}

// sortedSigs returns bySig's keys in lexicographic order, so ties between
// equally large partitions break the same way on every run.
func sortedSigs(bySig map[string][]addr.Addr) []string {
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs
}

// entrySig builds a canonical signature of an entry's parent and children.
func entrySig(e *entry) string {
	// targets() returns the list already sorted (MIGP first, then router).
	ts := e.targets()
	sig := e.parent.key().String() + "|"
	for _, t := range ts {
		sig += t.String() + ";"
	}
	if e.root {
		sig += "root"
	}
	return sig
}

// prefixEntryFor returns the longest-match (*,G-prefix) entry covering g.
// Caller holds c.mu.
func (c *Component) prefixEntryForLocked(g addr.Addr) *entry {
	var best *entry
	bestLen := -1
	for p, e := range c.prefixes {
		if p.Contains(g) && p.Len > bestLen {
			best, bestLen = e, p.Len
		}
	}
	return best
}

// materializeLocked re-creates an exact (*,G) entry from the covering
// prefix entry, so a join or prune can modify per-group state without
// disturbing sibling groups. Caller holds c.mu.
func (c *Component) materializeLocked(g addr.Addr) *entry {
	pe := c.prefixEntryForLocked(g)
	if pe == nil {
		return nil
	}
	e := pe.clone()
	e.sharedClone = false
	c.groups[g] = e
	return e
}
