package bgmp

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/wire"
)

func TestRouteChangedSwitchesParent(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	// The best route moves to peer 4.
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"))

	parent, _, ok := rig.comp.GroupEntry(groupG)
	if !ok || parent != PeerTarget(4) {
		t.Fatalf("parent = %v ok=%v, want peer 4", parent, ok)
	}
	var pruneTo, joinTo wire.RouterID
	for _, s := range rig.sent {
		switch s.msg.(type) {
		case *wire.GroupPrune:
			pruneTo = s.to
		case *wire.GroupJoin:
			joinTo = s.to
		}
	}
	if pruneTo != 7 || joinTo != 4 {
		t.Fatalf("prune to %d (want 7), join to %d (want 4)", pruneTo, joinTo)
	}
}

func TestRouteChangedNoopWhenPathSame(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"))
	if len(rig.sent) != 0 {
		t.Fatalf("stable route must not generate traffic: %v", rig.sent)
	}
}

func TestRouteChangedIgnoresUncoveredGroups(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.sent = nil
	rig.comp.RouteChanged(addr.MustParsePrefix("230.0.0.0/8")) // doesn't cover groupG
	parent, _, _ := rig.comp.GroupEntry(groupG)
	if parent != PeerTarget(7) {
		t.Fatalf("uncovered group was re-parented: %v", parent)
	}
}

func TestRouteChangedTearsDownOnTotalLoss(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	delete(rig.groups, groupG) // route withdrawn entirely
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"))
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("state survived route loss")
	}
	foundPrune := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.GroupPrune); ok && s.to == 7 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("old parent not pruned: %v", rig.sent)
	}
}

func TestRouteChangedToRootDomain(t *testing.T) {
	// The domain becomes the root (it claimed the covering range): the
	// parent flips to the MIGP and the interior is joined.
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 5}} // own domain
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"))
	parent, _, ok := rig.comp.GroupEntry(groupG)
	if !ok || !parent.MIGP {
		t.Fatalf("parent = %v, want MIGP (root)", parent)
	}
	if len(rig.migp.joins) != 1 {
		t.Fatalf("MIGP joins = %v", rig.migp.joins)
	}
}

func TestRouteChangedDropsStaleSGClones(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS}) // creates shared clone
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); !ok {
		t.Fatal("setup: clone missing")
	}
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"))
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("stale shared-clone (S,G) survived re-parenting")
	}
}

func TestPeerDownRemovesChildrenAndTearsEmpty(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	g2 := addr.MakeAddr(224, 0, 128, 99)
	rig.groups[g2] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: g2})
	rig.comp.HandlePeer(9, &wire.GroupJoin{Group: g2}) // second child on g2
	rig.sent = nil

	rig.comp.PeerDown(8)
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("entry with only the dead child must go")
	}
	if !rig.comp.HasGroupState(g2) {
		t.Fatal("entry with surviving children must stay")
	}
	foundPrune := false
	for _, s := range rig.sent {
		if m, ok := s.msg.(*wire.GroupPrune); ok && m.Group == groupG && s.to == 7 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("upstream prune missing: %v", rig.sent)
	}
}

func TestPeerDownUnknownPeerHarmless(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.PeerDown(99)
	if !rig.comp.HasGroupState(groupG) {
		t.Fatal("unrelated peer-down destroyed state")
	}
}
