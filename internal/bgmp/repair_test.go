package bgmp

import (
	"fmt"
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/wire"
)

func TestRouteChangedSwitchesParent(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	// The best route moves to peer 4.
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})

	parent, _, ok := rig.comp.GroupEntry(groupG)
	if !ok || parent != PeerTarget(4) {
		t.Fatalf("parent = %v ok=%v, want peer 4", parent, ok)
	}
	var pruneTo, joinTo wire.RouterID
	for _, s := range rig.sent {
		switch s.msg.(type) {
		case *wire.GroupPrune:
			pruneTo = s.to
		case *wire.GroupJoin:
			joinTo = s.to
		}
	}
	if pruneTo != 7 || joinTo != 4 {
		t.Fatalf("prune to %d (want 7), join to %d (want 4)", pruneTo, joinTo)
	}
}

func TestRouteChangedNoopWhenPathSame(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if len(rig.sent) != 0 {
		t.Fatalf("stable route must not generate traffic: %v", rig.sent)
	}
}

func TestRouteChangedIgnoresUncoveredGroups(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.sent = nil
	rig.comp.RouteChanged(addr.MustParsePrefix("230.0.0.0/8"), wire.TraceContext{}) // doesn't cover groupG
	parent, _, _ := rig.comp.GroupEntry(groupG)
	if parent != PeerTarget(7) {
		t.Fatalf("uncovered group was re-parented: %v", parent)
	}
}

func TestRouteChangedTearsDownOnTotalLoss(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	delete(rig.groups, groupG) // route withdrawn entirely
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("state survived route loss")
	}
	foundPrune := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.GroupPrune); ok && s.to == 7 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("old parent not pruned: %v", rig.sent)
	}
}

func TestRouteChangedToRootDomain(t *testing.T) {
	// The domain becomes the root (it claimed the covering range): the
	// parent flips to the MIGP and the interior is joined.
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 5}} // own domain
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	parent, _, ok := rig.comp.GroupEntry(groupG)
	if !ok || !parent.MIGP {
		t.Fatalf("parent = %v, want MIGP (root)", parent)
	}
	if len(rig.migp.joins) != 1 {
		t.Fatalf("MIGP joins = %v", rig.migp.joins)
	}
}

func TestRouteChangedDropsStaleSGClones(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS}) // creates shared clone
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); !ok {
		t.Fatal("setup: clone missing")
	}
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("stale shared-clone (S,G) survived re-parenting")
	}
}

func TestPeerDownRemovesChildrenAndTearsEmpty(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	g2 := addr.MakeAddr(224, 0, 128, 99)
	rig.groups[g2] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: g2})
	rig.comp.HandlePeer(9, &wire.GroupJoin{Group: g2}) // second child on g2
	rig.sent = nil

	rig.comp.PeerDown(8, wire.TraceContext{})
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("entry with only the dead child must go")
	}
	if !rig.comp.HasGroupState(g2) {
		t.Fatal("entry with surviving children must stay")
	}
	foundPrune := false
	for _, s := range rig.sent {
		if m, ok := s.msg.(*wire.GroupPrune); ok && m.Group == groupG && s.to == 7 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("upstream prune missing: %v", rig.sent)
	}
}

func TestPeerDownUnknownPeerHarmless(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.PeerDown(99, wire.TraceContext{})
	if !rig.comp.HasGroupState(groupG) {
		t.Fatal("unrelated peer-down destroyed state")
	}
}

func TestRouteChangedMidBatchPartialLoss(t *testing.T) {
	// Two groups under one covering prefix; mid-batch, the G-RIB lookup
	// fails for only one of them. The survivor is re-parented; the loser
	// is torn down (and orphaned), each with the right upstream traffic.
	rig := newRig(1, 5, false)
	g2 := addr.MakeAddr(224, 0, 128, 2)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.groups[g2] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: g2})
	rig.sent = nil

	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	delete(rig.groups, g2) // lookup now fails for g2 only
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})

	if parent, _, ok := rig.comp.GroupEntry(groupG); !ok || parent != PeerTarget(4) {
		t.Fatalf("survivor parent = %v ok=%v, want peer 4", parent, ok)
	}
	if rig.comp.HasGroupState(g2) {
		t.Fatal("torn group kept forwarding state")
	}
	if !rig.comp.Orphaned(g2) {
		t.Fatal("torn group was not orphaned")
	}
	prunes := map[wire.RouterID][]addr.Addr{}
	joins := map[wire.RouterID][]addr.Addr{}
	for _, s := range rig.sent {
		switch m := s.msg.(type) {
		case *wire.GroupPrune:
			prunes[s.to] = append(prunes[s.to], m.Group)
		case *wire.GroupJoin:
			joins[s.to] = append(joins[s.to], m.Group)
		}
	}
	if len(prunes[7]) != 2 {
		t.Fatalf("prunes to old parent 7 = %v, want both groups", prunes[7])
	}
	if len(joins[4]) != 1 || joins[4][0] != groupG {
		t.Fatalf("joins to new parent 4 = %v, want only survivor", joins[4])
	}
}

func TestRouteChangedTeardownDropsSharedClones(t *testing.T) {
	// Regression: the teardown branch used to `continue` before the
	// shared-clone sweep, leaking (S,G) state for torn-down groups.
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS})
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); !ok {
		t.Fatal("setup: clone missing")
	}
	delete(rig.groups, groupG) // total route loss
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("shared-clone (S,G) state survived group teardown")
	}
}

func TestSharedCloneReestablishedAfterRepair(t *testing.T) {
	// A shared clone dropped by re-parenting comes back — with the new
	// parent — when the downstream source prune is re-issued.
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS})
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("stale clone survived re-parenting")
	}
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS})
	parent, _, ok := rig.comp.SourceEntry(sourceS, groupG)
	if !ok {
		t.Fatal("clone not re-established by a fresh source prune")
	}
	if parent != PeerTarget(4) {
		t.Fatalf("re-established clone parent = %v, want new parent 4", parent)
	}
}

func TestOrphanRejoinsWhenRouteReturns(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})

	delete(rig.groups, groupG)
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if !rig.comp.Orphaned(groupG) {
		t.Fatal("group not orphaned on total route loss")
	}
	rig.sent = nil

	// The route comes back via a different peer: the orphan re-attaches
	// with its children intact and joins upstream on its own.
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if rig.comp.Orphaned(groupG) {
		t.Fatal("orphan not cleared on rejoin")
	}
	parent, children, ok := rig.comp.GroupEntry(groupG)
	if !ok || parent != PeerTarget(4) {
		t.Fatalf("rejoined parent = %v ok=%v, want peer 4", parent, ok)
	}
	if len(children) != 1 || children[0] != PeerTarget(8) {
		t.Fatalf("children = %v, want the pre-loss child [peer(8)]", children)
	}
	foundJoin := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.GroupJoin); ok && s.to == 4 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatalf("no upstream join on rejoin: %v", rig.sent)
	}
}

func TestJoinWithoutRouteParksOrphanAndRejoins(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG}) // no G-RIB route yet
	if rig.comp.HasGroupState(groupG) || len(rig.sent) != 0 {
		t.Fatal("routeless join must not create state or traffic")
	}
	if !rig.comp.Orphaned(groupG) {
		t.Fatal("routeless join interest was lost")
	}
	// A prune retracts the parked interest.
	rig.comp.HandlePeer(8, &wire.GroupPrune{Group: groupG})
	if rig.comp.Orphaned(groupG) {
		t.Fatal("prune did not retract orphan interest")
	}
	// Re-join and let the route appear.
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if parent, _, ok := rig.comp.GroupEntry(groupG); !ok || parent != PeerTarget(7) {
		t.Fatalf("parent = %v ok=%v after route appeared, want peer 7", parent, ok)
	}
}

func TestPeerDownClearsOrphanInterest(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG}) // orphan, child 8 only
	rig.comp.PeerDown(8, wire.TraceContext{})
	if rig.comp.Orphaned(groupG) {
		t.Fatal("dead peer's orphan interest survived")
	}
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.sent = nil
	rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
	if len(rig.sent) != 0 {
		t.Fatalf("route return rejoined on behalf of a dead peer: %v", rig.sent)
	}
}

func TestResetDropsAllState(t *testing.T) {
	rig := newRig(1, 5, true)
	buildTree(rig)
	rig.srcs[sourceS] = bgp.Entry{Route: wire.Route{Origin: 11}, NextHop: 4}
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})
	rig.comp.Reset()
	if rig.comp.HasGroupState(groupG) || rig.comp.HasForwardingState(groupG) {
		t.Fatal("(*,G) state survived Reset")
	}
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("(S,G) state survived Reset")
	}
	if rig.comp.Orphaned(groupG) {
		t.Fatal("orphan state survived Reset")
	}
	// The reset speaker relearns from fresh joins.
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	if !rig.comp.HasGroupState(groupG) {
		t.Fatal("reset speaker cannot relearn state")
	}
}

func TestRepairOrderDeterminism(t *testing.T) {
	// Same scripted failure, two runs: the exact message sequence (order
	// included) must match — RouteChanged and PeerDown iterate sorted
	// keys, never raw map order.
	run := func() []string {
		rig := newRig(1, 5, false)
		var gs []addr.Addr
		for i := 1; i <= 8; i++ {
			g := addr.MakeAddr(224, 0, 128, byte(i))
			gs = append(gs, g)
			rig.groups[g] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
			rig.comp.HandlePeer(8, &wire.GroupJoin{Group: g})
			rig.comp.HandlePeer(9, &wire.GroupJoin{Group: g})
		}
		rig.sent = nil
		for _, g := range gs[:4] {
			rig.groups[g] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 4}
		}
		for _, g := range gs[4:] {
			delete(rig.groups, g)
		}
		rig.comp.RouteChanged(addr.MustParsePrefix("224.0.128.0/24"), wire.TraceContext{})
		rig.comp.PeerDown(9, wire.TraceContext{})
		var trace []string
		for _, s := range rig.sent {
			trace = append(trace, fmt.Sprintf("%d:%T:%v", s.to, s.msg, s.msg))
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
