package bgmp

import (
	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Tree repair. When BGP's best route toward a group's root domain changes
// (a peering failed, a better path appeared, a group route was withdrawn),
// the (*,G) parent target recorded at join time goes stale. RouteChanged
// re-resolves the parent of every affected entry: it prunes the old parent
// and joins through the new one, keeping the shared tree attached to the
// root domain. The paper's stability requirement (§3) argues against
// *frequent* reshaping — repair only runs on actual route changes, never
// on membership churn.

// RouteChanged re-resolves the parent target of every (*,G) entry covered
// by prefix (the changed G-RIB route). Entries whose lookup now fails are
// torn down (children are pruned implicitly when data stops; explicit
// prunes go upstream where possible).
func (c *Component) RouteChanged(prefix addr.Prefix) {
	c.mu.Lock()
	type change struct {
		g         addr.Addr
		oldParent Target
		oldRoot   bool
		newParent Target
		newRoot   bool
		torn      bool
	}
	var changes []change
	for g, e := range c.groups {
		if !prefix.Contains(g) {
			continue
		}
		parent, root, ok := c.parentForGroup(g)
		if !ok {
			// No route at all anymore: tear the entry down.
			changes = append(changes, change{g: g, oldParent: e.parent, oldRoot: e.root, torn: true})
			delete(c.groups, g)
			continue
		}
		if parent.key() == e.parent.key() && root == e.root {
			continue // path unchanged
		}
		changes = append(changes, change{
			g: g, oldParent: e.parent, oldRoot: e.root,
			newParent: parent, newRoot: root,
		})
		e.parent = parent
		e.root = root
		// Dependent shared-clone (S,G) state inherited the old parent;
		// rebuild it lazily (drop it — prunes re-establish if needed).
		for k, se := range c.srcs {
			if k.group == g && se.sharedClone {
				delete(c.srcs, k)
			}
		}
	}
	for _, ch := range changes {
		c.event(obs.Event{Kind: obs.BGMPRepair, Group: ch.g, Prefix: prefix})
		// Prune away from the old parent.
		switch {
		case ch.oldRoot:
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpLeave{group: ch.g}})
		default:
			c.out = append(c.out, outItem{target: ch.oldParent, msg: &wire.GroupPrune{Group: ch.g}})
		}
		if ch.torn {
			continue
		}
		// Join through the new one.
		switch {
		case ch.newRoot:
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpJoin{group: ch.g}})
		default:
			c.out = append(c.out, outItem{target: ch.newParent, msg: &wire.GroupJoin{Group: ch.g}})
		}
	}
	out, evs := c.drain()
	c.mu.Unlock()
	c.flush(out, evs)
}

// PeerDown removes every child target pointing at a failed external peer
// and tears down entries that lose their last child, propagating prunes —
// the session-failure half of repair (RouteChanged handles the parent
// side once BGP withdraws the routes learned from the peer).
func (c *Component) PeerDown(peer wire.RouterID) {
	t := PeerTarget(peer)
	c.mu.Lock()
	for g, e := range c.groups {
		if !e.children[t] {
			continue
		}
		e.removeChild(t)
		if len(e.children) > 0 {
			continue
		}
		delete(c.groups, g)
		c.event(obs.Event{Kind: obs.BGMPRepair, Group: g})
		for k, se := range c.srcs {
			if k.group == g && se.sharedClone {
				delete(c.srcs, k)
			}
		}
		if e.root {
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpLeave{group: g}})
		} else {
			c.out = append(c.out, outItem{target: e.parent, msg: &wire.GroupPrune{Group: g}})
		}
	}
	for k, se := range c.srcs {
		if se.children[t] {
			se.removeChild(t)
		}
		_ = k
	}
	out, evs := c.drain()
	c.mu.Unlock()
	c.flush(out, evs)
}
