package bgmp

import (
	"sort"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Tree repair. When BGP's best route toward a group's root domain changes
// (a peering failed, a better path appeared, a group route was withdrawn),
// the (*,G) parent target recorded at join time goes stale. RouteChanged
// re-resolves the parent of every affected entry: it prunes the old parent
// and joins through the new one, keeping the shared tree attached to the
// root domain. The paper's stability requirement (§3) argues against
// *frequent* reshaping — repair only runs on actual route changes, never
// on membership churn.
//
// All repair paths iterate entry maps in sorted key order so that the
// emitted messages and obs events are identical across same-seed runs.

// sortedGroups returns m's keys in ascending order. Caller holds c.mu.
func sortedGroups(m map[addr.Addr]*entry) []addr.Addr {
	gs := make([]addr.Addr, 0, len(m))
	for g := range m {
		gs = append(gs, g)
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	return gs
}

// sortedSGKeys returns m's keys ordered by (group, source). Caller holds
// c.mu.
func sortedSGKeys(m map[sgKey]*entry) []sgKey {
	ks := make([]sgKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].group != ks[j].group {
			return ks[i].group < ks[j].group
		}
		return ks[i].src < ks[j].src
	})
	return ks
}

// dropSharedClonesLocked removes (S,G) shared-clone state for g: it
// inherited the (*,G) entry's now-stale target list and is rebuilt lazily
// from fresh prunes. Caller holds c.mu.
func (c *Component) dropSharedClonesLocked(g addr.Addr) {
	for _, k := range sortedSGKeys(c.srcs) {
		if k.group == g && c.srcs[k].sharedClone {
			delete(c.srcs, k)
		}
	}
}

// RouteChanged re-resolves the parent target of every (*,G) entry covered
// by prefix (the changed G-RIB route). Entries whose lookup now fails are
// parked as orphans — children retained, forwarding state gone — and
// orphans that regain a covering route are re-attached and re-joined
// upstream, the recovery half of session repair.
//
// ctx is the causal context of whatever made the route change (a BGP
// update's span, a session teardown); the repair span parents under it and
// every emitted prune/join carries the repair span onward.
func (c *Component) RouteChanged(prefix addr.Prefix, ctx wire.TraceContext) {
	sp := c.cfg.Obs.Tracer().BeginChild(ctx, obs.SpanRepair,
		obs.Event{Domain: c.cfg.Domain, Router: c.cfg.Router, Prefix: prefix})
	defer sp.End()
	c.mu.Lock()
	c.cur = sp.Context()
	type change struct {
		g         addr.Addr
		oldParent Target
		oldRoot   bool
		newParent Target
		newRoot   bool
		torn      bool
		rejoined  bool
	}
	var changes []change
	for _, g := range sortedGroups(c.groups) {
		if !prefix.Contains(g) {
			continue
		}
		e := c.groups[g]
		parent, root, ok := c.parentForGroup(g)
		if !ok {
			// No route at all anymore: tear the forwarding entry down but
			// remember the children, so a returning route re-attaches the
			// tree without waiting for downstream rejoins.
			changes = append(changes, change{g: g, oldParent: e.parent, oldRoot: e.root, torn: true})
			delete(c.groups, g)
			c.dropSharedClonesLocked(g)
			e.setParent(Target{})
			e.root = false
			c.orphans[g] = e
			continue
		}
		if parent.key() == e.parent.key() && root == e.root {
			// Path unchanged; the runner-up candidate set may still have
			// rotated, so refresh the precomputed backup incrementally.
			e.backup, e.hasBackup = c.backupForGroup(g)
			continue
		}
		changes = append(changes, change{
			g: g, oldParent: e.parent, oldRoot: e.root,
			newParent: parent, newRoot: root,
		})
		e.setParent(parent)
		e.root = root
		e.backup, e.hasBackup = c.backupForGroup(g)
		// Dependent shared-clone (S,G) state inherited the old parent;
		// rebuild it lazily (drop it — prunes re-establish if needed).
		c.dropSharedClonesLocked(g)
	}
	// Orphans covered by the changed prefix may have a route again.
	for _, g := range sortedGroups(c.orphans) {
		if !prefix.Contains(g) {
			continue
		}
		parent, root, ok := c.parentForGroup(g)
		if !ok {
			continue
		}
		e := c.orphans[g]
		delete(c.orphans, g)
		e.setParent(parent)
		e.root = root
		e.backup, e.hasBackup = c.backupForGroup(g)
		c.groups[g] = e
		changes = append(changes, change{g: g, newParent: parent, newRoot: root, rejoined: true})
	}
	for _, ch := range changes {
		c.eventLocked(obs.Event{Kind: obs.BGMPRepair, Group: ch.g, Prefix: prefix})
		if !ch.rejoined {
			// Prune away from the old parent.
			switch {
			case ch.oldRoot:
				c.out = append(c.out, outItem{target: MIGPTarget, msg: migpLeave{group: ch.g}})
			default:
				c.out = append(c.out, outItem{target: ch.oldParent, msg: &wire.GroupPrune{Group: ch.g}})
			}
		}
		if ch.torn {
			continue
		}
		// Join through the new one.
		switch {
		case ch.newRoot:
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpJoin{group: ch.g}})
		default:
			c.out = append(c.out, outItem{target: ch.newParent, msg: &wire.GroupJoin{Group: ch.g}})
		}
	}
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
}

// PeerDown removes every child target pointing at a failed external peer
// and tears down entries that lose their last child, propagating prunes —
// the session-failure half of repair (RouteChanged handles the parent
// side once BGP withdraws the routes learned from the peer).
func (c *Component) PeerDown(peer wire.RouterID, ctx wire.TraceContext) {
	sp := c.cfg.Obs.Tracer().BeginChild(ctx, obs.SpanPeerDown,
		obs.Event{Domain: c.cfg.Domain, Router: c.cfg.Router, Peer: peer})
	defer sp.End()
	t := PeerTarget(peer)
	c.mu.Lock()
	c.cur = sp.Context()
	for _, g := range sortedGroups(c.groups) {
		e := c.groups[g]
		if !e.children[t] {
			continue
		}
		e.removeChild(t)
		if len(e.children) > 0 {
			continue
		}
		delete(c.groups, g)
		c.eventLocked(obs.Event{Kind: obs.BGMPRepair, Group: g})
		c.dropSharedClonesLocked(g)
		if e.root {
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpLeave{group: g}})
		} else {
			c.out = append(c.out, outItem{target: e.parent, msg: &wire.GroupPrune{Group: g}})
		}
	}
	// Precomputed 1:1 protection: surviving entries whose parent died
	// switch to their backup target immediately, without re-querying the
	// G-RIB — the withdrawal-driven RouteChanged later confirms the new
	// parent (a no-op when it matches) and re-arms a fresh backup.
	for _, g := range sortedGroups(c.groups) {
		e := c.groups[g]
		if e.root || e.parent.key() != t {
			continue
		}
		if !e.hasBackup || e.backup.key() == t {
			// No precomputed alternative: the entry waits for RouteChanged
			// to re-resolve (or orphan) it.
			continue
		}
		bk := e.backup
		e.backup, e.hasBackup = Target{}, false
		e.setParent(bk)
		c.dropSharedClonesLocked(g)
		c.eventLocked(obs.Event{Kind: obs.BGMPFailover, Group: g, Peer: peer})
		if bk.MIGP && bk.Router == 0 {
			// The runner-up route makes this domain the best exit: the
			// entry becomes root and the interior supplies the tree.
			e.root = true
			c.out = append(c.out, outItem{target: MIGPTarget, msg: migpJoin{group: g}})
		} else {
			c.out = append(c.out, outItem{target: bk, msg: &wire.GroupJoin{Group: g}})
		}
	}
	for _, k := range sortedSGKeys(c.srcs) {
		if se := c.srcs[k]; se.children[t] {
			se.removeChild(t)
		}
	}
	// The dead peer's parked interest must not trigger a rejoin later.
	for _, g := range sortedGroups(c.orphans) {
		oe := c.orphans[g]
		if !oe.children[t] {
			continue
		}
		oe.removeChild(t)
		if len(oe.children) == 0 {
			delete(c.orphans, g)
		}
	}
	out, evs := c.drainLocked()
	c.mu.Unlock()
	c.flush(out, evs)
}
