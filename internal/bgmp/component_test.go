package bgmp

import (
	"reflect"
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/wire"
)

var (
	groupG  = addr.MakeAddr(224, 0, 128, 1)
	sourceS = addr.MakeAddr(10, 1, 2, 3)
)

// fakeMIGP records the component's interactions with the interior protocol.
type fakeMIGP struct {
	joins, leaves []addr.Addr
	relays        []relayed
	injected      []*wire.Data
	injectOK      bool
	expectedEntry wire.RouterID
}

type relayed struct {
	to  wire.RouterID
	msg wire.Message
}

func newFakeMIGP() *fakeMIGP { return &fakeMIGP{injectOK: true} }

func (f *fakeMIGP) JoinGroup(g addr.Addr)  { f.joins = append(f.joins, g) }
func (f *fakeMIGP) LeaveGroup(g addr.Addr) { f.leaves = append(f.leaves, g) }
func (f *fakeMIGP) RelayToBorder(to wire.RouterID, m wire.Message) {
	f.relays = append(f.relays, relayed{to, m})
}
func (f *fakeMIGP) Inject(d *wire.Data) bool {
	if !f.injectOK {
		return false
	}
	f.injected = append(f.injected, d)
	return true
}
func (f *fakeMIGP) ExpectedEntry(addr.Addr) wire.RouterID { return f.expectedEntry }

// testRig wires a Component with a fake MIGP, scripted RIB lookups, and a
// peer-message recorder.
type testRig struct {
	comp   *Component
	migp   *fakeMIGP
	sent   []relayed // to external peers
	groups map[addr.Addr]bgp.Entry
	srcs   map[addr.Addr]bgp.Entry
}

func newRig(router wire.RouterID, domain wire.DomainID, branches bool) *testRig {
	r := &testRig{
		migp:   newFakeMIGP(),
		groups: map[addr.Addr]bgp.Entry{},
		srcs:   map[addr.Addr]bgp.Entry{},
	}
	r.comp = New(Config{
		Router: router,
		Domain: domain,
		LookupGroup: func(g addr.Addr) (bgp.Entry, bool) {
			e, ok := r.groups[g]
			return e, ok
		},
		LookupSource: func(s addr.Addr) (bgp.Entry, bool) {
			e, ok := r.srcs[s]
			return e, ok
		},
		Internal: func(id wire.RouterID) bool { return id >= 100 }, // convention: IDs >= 100 are internal
		SendPeer: func(to wire.RouterID, m wire.Message) {
			r.sent = append(r.sent, relayed{to, m})
		},
		MIGP:                r.migp,
		BuildSourceBranches: branches,
	})
	return r
}

// Convention used in these tests: the component is router 1 in domain 5;
// external peers have IDs < 100; internal border routers have IDs >= 100.

func TestLocalJoinPropagatesTowardRoot(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7} // root domain 9 via external peer 7
	rig.comp.LocalJoin(groupG)

	parent, children, ok := rig.comp.GroupEntry(groupG)
	if !ok {
		t.Fatal("entry missing")
	}
	if parent != PeerTarget(7) {
		t.Fatalf("parent = %v", parent)
	}
	if len(children) != 1 || !children[0].MIGP {
		t.Fatalf("children = %v, want [migp]", children)
	}
	if len(rig.sent) != 1 || rig.sent[0].to != 7 {
		t.Fatalf("sent = %v", rig.sent)
	}
	if _, isJoin := rig.sent[0].msg.(*wire.GroupJoin); !isJoin {
		t.Fatalf("message = %T", rig.sent[0].msg)
	}
}

func TestJoinAtRootDomainJoinsInterior(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 5}} // we are the root domain
	rig.comp.HandlePeer(7, &wire.GroupJoin{Group: groupG})

	parent, _, ok := rig.comp.GroupEntry(groupG)
	if !ok || !parent.MIGP {
		t.Fatalf("parent = %v ok=%v, want MIGP (root domain)", parent, ok)
	}
	if len(rig.migp.joins) != 1 || rig.migp.joins[0] != groupG {
		t.Fatalf("MIGP joins = %v", rig.migp.joins)
	}
	if len(rig.sent) != 0 {
		t.Fatalf("root domain must not propagate joins: %v", rig.sent)
	}
}

func TestJoinWithInternalNextHopRelaysThroughMIGP(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 103} // via internal border 103
	rig.comp.HandlePeer(7, &wire.GroupJoin{Group: groupG})

	parent, _, _ := rig.comp.GroupEntry(groupG)
	if !parent.MIGP || parent.Router != 103 {
		t.Fatalf("parent = %v, want migp(->103)", parent)
	}
	if len(rig.migp.relays) != 1 || rig.migp.relays[0].to != 103 {
		t.Fatalf("relays = %v", rig.migp.relays)
	}
	if _, ok := rig.migp.relays[0].msg.(*wire.GroupJoin); !ok {
		t.Fatalf("relayed %T", rig.migp.relays[0].msg)
	}
}

func TestPruneTearsDownAndPropagates(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.comp.HandlePeer(9, &wire.GroupJoin{Group: groupG})
	rig.sent = nil

	rig.comp.HandlePeer(8, &wire.GroupPrune{Group: groupG})
	if !rig.comp.HasGroupState(groupG) {
		t.Fatal("entry must survive while children remain")
	}
	if len(rig.sent) != 0 {
		t.Fatalf("no upstream prune while children remain: %v", rig.sent)
	}
	rig.comp.HandlePeer(9, &wire.GroupPrune{Group: groupG})
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("entry must be deleted when the last child leaves")
	}
	if len(rig.sent) != 1 || rig.sent[0].to != 7 {
		t.Fatalf("sent = %v, want prune to parent 7", rig.sent)
	}
	if _, ok := rig.sent[0].msg.(*wire.GroupPrune); !ok {
		t.Fatalf("message = %T", rig.sent[0].msg)
	}
}

func TestPruneAtRootLeavesInterior(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 5}}
	rig.comp.HandlePeer(7, &wire.GroupJoin{Group: groupG})
	rig.comp.HandlePeer(7, &wire.GroupPrune{Group: groupG})
	if len(rig.migp.leaves) != 1 {
		t.Fatalf("MIGP leaves = %v", rig.migp.leaves)
	}
}

func TestJoinWithoutGRIBRouteIgnored(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.comp.HandlePeer(7, &wire.GroupJoin{Group: groupG})
	if rig.comp.HasGroupState(groupG) {
		t.Fatal("join without a G-RIB route must not create state")
	}
	if len(rig.sent) != 0 {
		t.Fatal("nothing should be sent")
	}
}

func data(ttl uint8) *wire.Data {
	return &wire.Data{Group: groupG, Source: sourceS, TTL: ttl, Payload: []byte("x")}
}

// buildTree creates a (*,G) entry at the rig with parent peer 7 and
// children peer 8 + MIGP.
func buildTree(rig *testRig) {
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandlePeer(8, &wire.GroupJoin{Group: groupG})
	rig.comp.LocalJoin(groupG)
	rig.sent = nil
	rig.migp.injected = nil
}

func TestBidirectionalForwarding(t *testing.T) {
	cases := []struct {
		name      string
		from      Target
		wantPeers []wire.RouterID
		wantMIGP  int
	}{
		{"from child peer", PeerTarget(8), []wire.RouterID{7}, 1},
		{"from parent peer", PeerTarget(7), []wire.RouterID{8}, 1},
		{"from interior", MIGPTarget, []wire.RouterID{7, 8}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rig := newRig(1, 5, false)
			buildTree(rig)
			rig.comp.Deliver(tc.from, data(16))
			var peers []wire.RouterID
			for _, s := range rig.sent {
				if d, ok := s.msg.(*wire.Data); ok {
					peers = append(peers, s.to)
					if d.TTL != 15 {
						t.Errorf("TTL = %d, want 15", d.TTL)
					}
				}
			}
			if !reflect.DeepEqual(peers, tc.wantPeers) {
				t.Errorf("forwarded to peers %v, want %v", peers, tc.wantPeers)
			}
			if len(rig.migp.injected) != tc.wantMIGP {
				t.Errorf("MIGP injections = %d, want %d", len(rig.migp.injected), tc.wantMIGP)
			}
		})
	}
}

func TestDataNeverEchoesToSender(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.Deliver(PeerTarget(8), data(16))
	for _, s := range rig.sent {
		if s.to == 8 {
			t.Fatal("data echoed to the target it came from")
		}
	}
}

func TestOffTreeDataFromPeerTransitsDomain(t *testing.T) {
	// The paper's E1→A1 example: stateless border injects into the MIGP so
	// the packet crosses the domain toward the best exit.
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 103} // best exit is internal 103
	rig.comp.Deliver(PeerTarget(7), data(16))
	if len(rig.migp.injected) != 1 {
		t.Fatalf("injections = %d, want 1 (transit)", len(rig.migp.injected))
	}
	if len(rig.sent) != 0 {
		t.Fatalf("sent = %v, want none", rig.sent)
	}
}

func TestOffTreeDataFromPeerForwardsTowardRoot(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.Deliver(PeerTarget(3), data(16))
	if len(rig.sent) != 1 || rig.sent[0].to != 7 {
		t.Fatalf("sent = %v, want data to 7", rig.sent)
	}
}

func TestOffTreeInteriorDataOnlyBestExitForwards(t *testing.T) {
	// Best exit (external next hop): forward.
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.Deliver(MIGPTarget, data(16))
	if len(rig.sent) != 1 || rig.sent[0].to != 7 {
		t.Fatalf("best exit: sent = %v", rig.sent)
	}
	// Not best exit (internal next hop): drop.
	rig2 := newRig(1, 5, false)
	rig2.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 103}
	rig2.comp.Deliver(MIGPTarget, data(16))
	if len(rig2.sent) != 0 || len(rig2.migp.injected) != 0 {
		t.Fatal("non-best-exit stateless border must drop interior data")
	}
}

func TestOffTreeDataAtRootDomainInjected(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 5}}
	rig.comp.Deliver(PeerTarget(3), data(16))
	if len(rig.migp.injected) != 1 {
		t.Fatal("root-domain border should hand off-tree data to the interior")
	}
}

func TestDataWithoutRouteDropped(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.comp.Deliver(PeerTarget(3), data(16))
	if len(rig.sent) != 0 || len(rig.migp.injected) != 0 {
		t.Fatal("data without G-RIB route must be dropped")
	}
}

func TestTTLExpiry(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.comp.Deliver(PeerTarget(8), data(1)) // TTL 1: still injectable interior, no peer hop
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.Data); ok {
			t.Fatal("TTL 1 packet must not cross another inter-domain hop")
		}
	}
	if len(rig.migp.injected) != 1 {
		t.Fatal("TTL 1 packet may still be delivered into the domain")
	}
	rig.comp.Deliver(PeerTarget(8), data(0))
	if len(rig.migp.injected) != 1 {
		t.Fatal("TTL 0 packet must be dropped entirely")
	}
}

func TestSourceJoinOnSharedTreeStopsAndCopies(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig) // parent 7, children {8, MIGP}
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})

	parent, children, ok := rig.comp.SourceEntry(sourceS, groupG)
	if !ok {
		t.Fatal("(S,G) entry missing")
	}
	if parent != PeerTarget(7) {
		t.Fatalf("(S,G) parent = %v, want copied shared-tree parent", parent)
	}
	has := map[Target]bool{}
	for _, c := range children {
		has[c] = true
	}
	if !has[PeerTarget(8)] || !has[MIGPTarget] || !has[PeerTarget(9)] {
		t.Fatalf("(S,G) children = %v", children)
	}
	if len(rig.sent) != 0 {
		t.Fatalf("on-tree source join must not propagate: %v", rig.sent)
	}
}

func TestSourceJoinOffTreePropagatesTowardSource(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.srcs[sourceS] = bgp.Entry{Route: wire.Route{Origin: 11}, NextHop: 4}
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})

	parent, _, ok := rig.comp.SourceEntry(sourceS, groupG)
	if !ok || parent != PeerTarget(4) {
		t.Fatalf("(S,G) parent = %v ok=%v, want peer 4", parent, ok)
	}
	if len(rig.sent) != 1 || rig.sent[0].to != 4 {
		t.Fatalf("sent = %v, want source join to 4", rig.sent)
	}
	if _, ok := rig.sent[0].msg.(*wire.SourceJoin); !ok {
		t.Fatalf("msg = %T", rig.sent[0].msg)
	}
}

func TestSourceJoinStopsAtSourceDomain(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.srcs[sourceS] = bgp.Entry{Route: wire.Route{Origin: 5}} // source in our domain
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})
	if len(rig.sent) != 0 {
		t.Fatalf("source-domain join must not propagate: %v", rig.sent)
	}
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); !ok {
		t.Fatal("(S,G) state missing at source domain")
	}
}

func TestSGDataPrefersSourceEntry(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig)
	// Branch child 9 joins (S,G); data from the shared-tree parent 7 must
	// now also reach 9.
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), data(16))
	got := map[wire.RouterID]bool{}
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.Data); ok {
			got[s.to] = true
		}
	}
	if !got[8] || !got[9] {
		t.Fatalf("data peers = %v, want 8 and 9", got)
	}
}

func TestSourcePruneStopsDuplicates(t *testing.T) {
	rig := newRig(1, 5, false)
	buildTree(rig) // parent 7, children {8, MIGP}
	// Child 8 prunes source S (it gets S via its own branch now).
	rig.comp.HandlePeer(8, &wire.SourcePrune{Group: groupG, Source: sourceS})
	rig.sent = nil
	rig.comp.Deliver(PeerTarget(7), data(16))
	for _, s := range rig.sent {
		if d, ok := s.msg.(*wire.Data); ok && s.to == 8 && d.Source == sourceS {
			t.Fatal("pruned child still received S's data")
		}
	}
	// Other sources still flow to 8 via the (*,G) entry.
	rig.sent = nil
	other := &wire.Data{Group: groupG, Source: addr.MakeAddr(10, 9, 9, 9), TTL: 16}
	rig.comp.Deliver(PeerTarget(7), other)
	found := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.Data); ok && s.to == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("(*,G) forwarding broken by source prune")
	}
}

func TestSourcePruneBranchTeardownPropagates(t *testing.T) {
	rig := newRig(1, 5, false)
	rig.srcs[sourceS] = bgp.Entry{Route: wire.Route{Origin: 11}, NextHop: 4}
	rig.comp.HandlePeer(9, &wire.SourceJoin{Group: groupG, Source: sourceS})
	rig.sent = nil
	rig.comp.HandlePeer(9, &wire.SourcePrune{Group: groupG, Source: sourceS})
	if _, _, ok := rig.comp.SourceEntry(sourceS, groupG); ok {
		t.Fatal("(S,G) branch state must be torn down")
	}
	if len(rig.sent) != 1 || rig.sent[0].to != 4 {
		t.Fatalf("sent = %v, want source prune to 4", rig.sent)
	}
	if _, ok := rig.sent[0].msg.(*wire.SourcePrune); !ok {
		t.Fatalf("msg = %T", rig.sent[0].msg)
	}
}

func TestRPFFailureEncapsulates(t *testing.T) {
	// Fig 3(b): F1 is on the shared tree; interior RPF for S expects entry
	// via F2 (internal router 103). Injection fails → encapsulate to 103.
	rig := newRig(1, 5, false)
	buildTree(rig)
	rig.migp.injectOK = false
	rig.migp.expectedEntry = 103
	rig.comp.Deliver(PeerTarget(7), data(16))
	found := false
	for _, r := range rig.migp.relays {
		if d, ok := r.msg.(*wire.Data); ok && d.Encap && r.to == 103 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected encapsulated relay to 103, got %v", rig.migp.relays)
	}
}

func TestEncapReceiverBuildsBranchAndPrunesEncapsulator(t *testing.T) {
	// F2's side: receives encapsulated data from F1 (internal 101),
	// injects it, joins toward the source, and once native data arrives
	// on the branch, source-prunes F1.
	rig := newRig(1, 5, true)
	rig.srcs[sourceS] = bgp.Entry{Route: wire.Route{Origin: 11}, NextHop: 4}
	enc := data(16)
	enc.Encap = true
	rig.comp.HandleFromBorder(101, enc)

	if len(rig.migp.injected) != 1 || rig.migp.injected[0].Encap {
		t.Fatalf("decapsulated injection missing: %v", rig.migp.injected)
	}
	// A source join went toward the source (peer 4).
	foundJoin := false
	for _, s := range rig.sent {
		if _, ok := s.msg.(*wire.SourceJoin); ok && s.to == 4 {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Fatalf("no source join toward the source: %v", rig.sent)
	}
	// Native data arrives along the branch (from parent 4): F1 gets a
	// source prune via the MIGP relay.
	rig.migp.relays = nil
	rig.comp.Deliver(PeerTarget(4), data(16))
	foundPrune := false
	for _, r := range rig.migp.relays {
		if _, ok := r.msg.(*wire.SourcePrune); ok && r.to == 101 {
			foundPrune = true
		}
	}
	if !foundPrune {
		t.Fatalf("encapsulator not pruned: %v", rig.migp.relays)
	}
}

func TestEncapWithoutBranchesJustDecapsulates(t *testing.T) {
	rig := newRig(1, 5, false)
	enc := data(16)
	enc.Encap = true
	rig.comp.HandleFromBorder(101, enc)
	if len(rig.migp.injected) != 1 {
		t.Fatal("decapsulation should inject")
	}
	if len(rig.sent) != 0 {
		t.Fatal("no branches should be built when disabled")
	}
}

func TestRelayedJoinFromBorder(t *testing.T) {
	// A3's side of the paper's example: join relayed through the MIGP
	// from A2 creates (*,G) with the MIGP as child and B1 (external 7)
	// as parent.
	rig := newRig(1, 5, false)
	rig.groups[groupG] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comp.HandleFromBorder(102, &wire.GroupJoin{Group: groupG})
	parent, children, ok := rig.comp.GroupEntry(groupG)
	if !ok || parent != PeerTarget(7) {
		t.Fatalf("parent = %v ok=%v", parent, ok)
	}
	if len(children) != 1 || !children[0].MIGP {
		t.Fatalf("children = %v", children)
	}
	if len(rig.sent) != 1 {
		t.Fatalf("join should continue to B1: %v", rig.sent)
	}
}

func TestTargetStringAndKey(t *testing.T) {
	if MIGPTarget.String() != "migp" || PeerTarget(5).String() != "peer(5)" || MIGPToward(3).String() != "migp(->3)" {
		t.Fatal("target strings")
	}
	if MIGPToward(3).key() != MIGPTarget {
		t.Fatal("MIGP targets must collapse under key()")
	}
	if PeerTarget(5).key() != PeerTarget(5) {
		t.Fatal("peer keys must be identity")
	}
}
