package experiments

import (
	"testing"

	"mascbgmp/internal/obs"
)

// Observability must not perturb the simulations, and the simulations must
// drive it deterministically: the same seed yields byte-identical metric
// snapshots across runs.

func TestFig2MetricsAreSeedStable(t *testing.T) {
	run := func() (Fig2Result, string) {
		cfg := scaledFig2()
		cfg.Days = 60
		cfg.Obs = obs.NewObserver()
		res := RunFig2(cfg)
		return res, cfg.Obs.Snapshot().String()
	}
	res1, snap1 := run()
	res2, snap2 := run()
	if snap1 != snap2 {
		t.Fatalf("same seed, different snapshots:\n--- run 1\n%s--- run 2\n%s", snap1, snap2)
	}
	if snap1 == "" {
		t.Fatal("observed run produced no counters")
	}
	if res1.Satisfied != res2.Satisfied || res1.LiveBlocks != res2.LiveBlocks {
		t.Fatalf("results diverged: %+v vs %+v", res1, res2)
	}
	s := cfgSnapshot(t, snap1)
	for _, name := range []string{"masc.claim", "masc.won", "bgp.announce", "maas.lease"} {
		if s.Total(name) == 0 {
			t.Fatalf("counter %q is zero:\n%s", name, snap1)
		}
	}
}

// cfgSnapshot re-runs the scaled config once more to get a Snapshot object
// for Total() assertions (String() was compared above).
func cfgSnapshot(t *testing.T, want string) obs.Snapshot {
	t.Helper()
	cfg := scaledFig2()
	cfg.Days = 60
	cfg.Obs = obs.NewObserver()
	RunFig2(cfg)
	s := cfg.Obs.Snapshot()
	if s.String() != want {
		t.Fatalf("third run diverged from first two")
	}
	return s
}

func TestFig4MetricsAreSeedStable(t *testing.T) {
	run := func() string {
		cfg := DefaultFig4Config()
		cfg.Domains, cfg.ExtraPeering, cfg.Trials = 300, 30, 2
		cfg.GroupSizes = []int{1, 5, 20}
		cfg.Obs = obs.NewObserver()
		RunFig4(cfg)
		return cfg.Obs.Snapshot().String()
	}
	snap1, snap2 := run(), run()
	if snap1 != snap2 {
		t.Fatalf("same seed, different snapshots:\n--- run 1\n%s--- run 2\n%s", snap1, snap2)
	}

	cfg := DefaultFig4Config()
	cfg.Domains, cfg.ExtraPeering, cfg.Trials = 300, 30, 2
	cfg.GroupSizes = []int{1, 5, 20}
	cfg.Obs = obs.NewObserver()
	RunFig4(cfg)
	s := cfg.Obs.Snapshot()
	for _, name := range []string{"bgmp.join", "bgmp.prune", "data.delivered", "data.forwarded"} {
		if s.Total(name) == 0 {
			t.Fatalf("counter %q is zero:\n%s", name, snap1)
		}
	}
	// Every join is matched by a teardown prune.
	if s.Total("bgmp.join") != s.Total("bgmp.prune") {
		t.Fatalf("joins %d != prunes %d", s.Total("bgmp.join"), s.Total("bgmp.prune"))
	}
}
