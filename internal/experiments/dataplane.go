package experiments

import (
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/topology"
)

// Data-plane comparison: the three forwarding backends (shared-tree, BIER
// bitstrings, map-and-encap) evaluated side by side on the scale-churn
// workload. One churn run builds the topology, the MASC allocations, and
// every group's membership; then each steady-state packet is costed under
// all three models at once, so the comparison is apples-to-apples — same
// groups, same members, same senders — and delivery equivalence holds by
// construction (every backend reaches exactly the member set).
//
// The axes the backends trade against each other (DESIGN.md §11):
//
//   - State: the shared tree holds a per-group forwarding entry at every
//     on-tree domain; the stateless backends hold zero per-group entries
//     at transit domains and move membership into the root domains'
//     overlay stores (one record per (group, member domain)).
//   - Path stretch: the shared tree enters at the sender's attach point;
//     the stateless backends detour every packet through the root, the
//     same root-rendezvous stretch the paper measures for unidirectional
//     trees (Fig 4).
//   - Header overhead: the shared tree forwards natively; BIER pays a
//     bitstring on every fan-out hop plus a unicast tunnel for the climb;
//     map-and-encap pays an outer header on every hop of every per-member
//     tunnel.

// BackendCost is one backend's totals over the comparison workload.
type BackendCost struct {
	// Backend is the dataplane backend name.
	Backend string
	// GroupEntries is the total per-group forwarding state across all
	// domains (shared-tree: Σ tree sizes; stateless backends: 0).
	GroupEntries int
	// TransitEntries is the subset of GroupEntries held outside the
	// group's root domain — the state the stateless backends eliminate.
	TransitEntries int
	// OverlayEntries counts (group, member-domain) records in the root
	// domains' overlay membership stores (stateless backends only).
	OverlayEntries int
	// ForwardHops counts inter-domain link crossings in the forwarding
	// phase; HeaderBytes the extra header spend across them; Encaps the
	// tunnels originated; Delivered the member deliveries (identical
	// across backends).
	ForwardHops uint64
	HeaderBytes uint64
	Encaps      uint64
	Delivered   uint64
	// MeanStretch and MaxStretch compare each delivery's path length to
	// the sender→member shortest path (deliveries with the sender inside
	// the member domain are skipped — stretch is undefined at distance 0).
	MeanStretch float64
	MaxStretch  float64
}

// DataPlaneResult is the deterministic outcome of RunDataPlane.
type DataPlaneResult struct {
	// Churn is the workload outcome under the default shared-tree model —
	// field for field what RunChurn returns for the same config with
	// DataPlane unset, including the obs event stream.
	Churn ChurnResult
	// Backends holds one row per backend, in dataplane.Names() order.
	Backends []BackendCost
}

// Cost returns the named backend's row.
func (r DataPlaneResult) Cost(backend string) (BackendCost, bool) {
	for _, c := range r.Backends {
		if c.Backend == backend {
			return c, true
		}
	}
	return BackendCost{}, false
}

// RunDataPlane runs the comparison. cfg.DataPlane is ignored — every
// backend is evaluated. Deterministic for a given config; the observer
// sees the same event stream as RunChurn with the default model.
func RunDataPlane(cfg ChurnConfig) DataPlaneResult {
	st := buildChurn(cfg)

	liveGroups := 0
	for _, gr := range st.groups {
		if gr != nil {
			liveGroups++
		}
	}

	names := dataplane.Names()
	costs := make([]BackendCost, len(names))
	stretchSum := make([]float64, len(names))
	stretchN := make([]uint64, len(names))
	for i, name := range names {
		costs[i].Backend = name
		if name == dataplane.SharedTreeName {
			// Every on-tree domain holds an entry; the root domain's is
			// the one entry per live group that is not transit state.
			costs[i].GroupEntries = st.res.ForwardingEntries
			costs[i].TransitEntries = st.res.ForwardingEntries - liveGroups
		} else {
			costs[i].OverlayEntries = st.res.MembersFinal
		}
	}

	models := make([]func(*churnGroup, *churnRoot, topology.DomainID) packetCost, len(names))
	for i, name := range names {
		models[i] = forwardModel(name)
	}

	for _, gr := range st.groups {
		if gr == nil {
			continue
		}
		rs := st.roots[gr.root]
		for s := 0; s < cfg.SendsPerGroup; s++ {
			src := topology.DomainID(st.rng.Intn(cfg.Domains))
			st.res.Packets++

			// Shortest-path distances from this sender, the stretch
			// denominators shared by every backend.
			sd, _ := st.g.BFS(src)

			// The shared tree's entry point: the first on-tree domain on
			// the sender's path toward the root.
			climb, attach := 0, src
			for gr.refs[attach] == 0 {
				attach = rs.parent[attach]
				climb++
			}

			for i, name := range names {
				pc := models[i](gr, rs, src)
				costs[i].ForwardHops += pc.Hops
				costs[i].HeaderBytes += pc.HeaderBytes
				costs[i].Encaps += pc.Encaps
				costs[i].Delivered += pc.Delivered
				if name == dataplane.SharedTreeName {
					st.res.ForwardHops += pc.Hops
					st.res.Delivered += pc.Delivered
					emitPacket(cfg.Obs, gr.addr, pc)
				}

				// Per-delivery stretch: path length under this backend
				// over the direct shortest path.
				shared := name == dataplane.SharedTreeName
				for _, m := range gr.members {
					if sd[m] <= 0 {
						continue
					}
					var plen int
					if shared {
						plen = climb + treeDist(rs, attach, m)
					} else {
						// Through the root: climb to it, then out along
						// its shortest-path tree.
						plen = rs.dist[src] + rs.dist[m]
					}
					ratio := float64(plen) / float64(sd[m])
					stretchSum[i] += ratio
					stretchN[i]++
					if ratio > costs[i].MaxStretch {
						costs[i].MaxStretch = ratio
					}
				}
			}
		}
	}

	for i := range costs {
		if stretchN[i] > 0 {
			costs[i].MeanStretch = stretchSum[i] / float64(stretchN[i])
		}
	}
	return DataPlaneResult{Churn: st.res, Backends: costs}
}

// treeDist is the hop distance between two domains of the root's BFS
// tree, via their lowest common ancestor.
func treeDist(rs *churnRoot, a, b topology.DomainID) int {
	x, y := a, b
	for rs.dist[x] > rs.dist[y] {
		x = rs.parent[x]
	}
	for rs.dist[y] > rs.dist[x] {
		y = rs.parent[y]
	}
	for x != y {
		x, y = rs.parent[x], rs.parent[y]
	}
	return rs.dist[a] + rs.dist[b] - 2*rs.dist[x]
}
