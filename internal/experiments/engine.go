package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/scenario"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// The scenario engine: runs a declarative scenario.Spec — topology,
// group population, and a pluggable membership generator — against the
// same machinery the scale-churn workload uses (refcounted shared
// trees, per-root MASC block allocators, the dataplane cost models).
// Where churn fixes the membership model to uniform toggles, the engine
// steps simulated time, so demand-shaped workloads (diurnal waves,
// flash crowds) can drive the allocator's §4.3.3 expand/collapse rules
// through lease expiry and sample occupancy as it moves.
//
// Everything is driven by the seeded rng and the simulated clock; a
// given (spec, seed) yields identical results on every run.

// WorkloadConfig parameterizes RunWorkload.
type WorkloadConfig struct {
	// Spec is the parsed scenario (topology + workload sections).
	Spec scenario.Spec
	// Seed drives the per-trial rng stream.
	Seed int64
	// DataPlane selects the forwarding-phase cost model, as in
	// ChurnConfig. Empty means the default shared-tree model.
	DataPlane string
	// Obs observes the run (same event kinds as the churn workload).
	// Nil disables observation.
	Obs *obs.Observer
}

// WorkloadResult is the engine's deterministic outcome.
type WorkloadResult struct {
	// Joins and Leaves count applied membership operations; JoinHops
	// and PruneHops the graft/prune message distances.
	Joins, Leaves       int
	JoinHops, PruneHops uint64
	// RootJoins counts joins whose graft walked all the way to the root
	// domain — joins no existing tree branch absorbed. FanIn is
	// Joins / max(1, RootJoins): how many joins the shared tree soaked
	// up per join the root had to see (§5.2 join aggregation).
	RootJoins int
	FanIn     float64
	// LeaseFailures counts address-lease requests the root's allocator
	// could not satisfy.
	LeaseFailures int
	// Expansions, Claims, and Collapses aggregate the §4.3.3 allocator
	// events across roots: prefix doublings, new claims beyond the
	// first (extra + replacement), and expired-empty prefix releases.
	Expansions, Claims, Collapses int
	// OccMax is the peak aggregate allocator occupancy
	// (demand/capacity) sampled per step; OccTrough is the minimum
	// after occupancy first reached the 75% target — together they
	// bound the excursion a demand wave drives.
	OccMax, OccTrough float64
	// GRIBPeak and GRIBFinal count live claimed prefixes across roots
	// (peak over steps, final value).
	GRIBPeak, GRIBFinal int
	// ForwardingEntries, MeanTreeSize, MembersPeak, and MembersFinal
	// describe tree state: total on-tree domain count at the end, its
	// per-group mean, and total membership (peak over steps, final).
	ForwardingEntries         int
	MeanTreeSize              float64
	MembersPeak, MembersFinal int
	// Packets, ForwardHops, HeaderBytes, Encaps, and Delivered describe
	// the steady-state forwarding phase, as in ChurnResult.
	Packets             int
	ForwardHops         uint64
	HeaderBytes, Encaps uint64
	Delivered           uint64
}

// workloadState is the engine's live state; it implements scenario.View
// so generators can consult membership while emitting.
type workloadState struct {
	cfg    WorkloadConfig
	g      *topology.Graph
	rng    *rand.Rand
	roots  []*churnRoot
	groups []*churnGroup
	// leaseExp tracks each group's address-lease expiry; the zero time
	// means no live lease.
	leaseExp []time.Time
	res      WorkloadResult
}

func (st *workloadState) Domains() int      { return st.g.NumDomains() }
func (st *workloadState) Active(g int) bool { return g >= 0 && g < len(st.groups) }
func (st *workloadState) IsMember(g int, d topology.DomainID) bool {
	_, ok := st.groups[g].mpos[d]
	return ok
}
func (st *workloadState) MemberCount(g int) int             { return len(st.groups[g].members) }
func (st *workloadState) Member(g, i int) topology.DomainID { return st.groups[g].members[i] }

// apply performs one membership op. Ops from unreachable domains (file
// topologies may be disconnected) are declined: the view's member count
// does not change, which the generators' retry budgets tolerate.
func (st *workloadState) apply(op scenario.Op) {
	gr := st.groups[op.Group]
	rs := st.roots[gr.root]
	if rs.dist[op.Domain] < 0 {
		return
	}
	if op.Join {
		if _, isMember := gr.mpos[op.Domain]; isMember {
			return
		}
		grafted := churnJoin(gr, rs, op.Domain)
		st.res.Joins++
		st.res.JoinHops += grafted
		if grafted == uint64(rs.dist[op.Domain]) {
			st.res.RootJoins++
		}
		if st.cfg.Obs != nil {
			st.cfg.Obs.Emit(obs.Event{Kind: obs.BGMPJoin, Group: gr.addr})
		}
		return
	}
	if _, isMember := gr.mpos[op.Domain]; !isMember {
		return
	}
	st.res.Leaves++
	st.res.PruneHops += churnLeave(gr, rs, op.Domain)
	if st.cfg.Obs != nil {
		st.cfg.Obs.Emit(obs.Event{Kind: obs.BGMPPrune, Group: gr.addr})
	}
}

// buildTopology realizes the spec's topology section. seed only drives
// the "as" generator, matching cmd/topogen.
func buildTopology(ts scenario.TopologySpec, seed int64) (*topology.Graph, error) {
	switch ts.Kind {
	case "as":
		return topology.ASGraph(ts.Domains, ts.Peering, seed), nil
	case "hierarchy":
		g, _, _ := topology.Hierarchy(ts.Top, ts.Children)
		return g, nil
	case "file":
		f, err := os.Open(ts.Path)
		if err != nil {
			return nil, fmt.Errorf("experiments: topology file: %w", err)
		}
		defer f.Close()
		g, err := topology.ReadEdgeList(f)
		if err != nil {
			return nil, fmt.Errorf("experiments: topology file %s: %w", ts.Path, err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("experiments: unknown topology kind %q", ts.Kind)
	}
}

// RunWorkload executes one scenario trial. Deterministic for a given
// (spec, seed): the generator and the forwarding phase draw from one
// rng stream, the allocators from per-root streams, exactly as the
// churn workload seeds them.
func RunWorkload(cfg WorkloadConfig) (WorkloadResult, error) {
	w := cfg.Spec.Workload
	gen, err := scenario.Compile(w)
	if err != nil {
		return WorkloadResult{}, err
	}
	g, err := buildTopology(cfg.Spec.Topology, cfg.Seed)
	if err != nil {
		return WorkloadResult{}, err
	}

	st := &workloadState{cfg: cfg, g: g, rng: rand.New(rand.NewSource(cfg.Seed))}
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

	// Root domains and their MASC allocators, seeded as in buildChurn.
	strat := masc.DefaultStrategy()
	strat.ClaimLifetime = w.ClaimLifetime
	global := masc.NewLedger(addr.MulticastSpace)
	roots := pickRoots(g, w.RootDomains)
	st.roots = make([]*churnRoot, len(roots))
	for i, id := range roots {
		dist, parent := g.BFS(id)
		ba := masc.NewBlockAllocator(strat, global,
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		ba.SetObserver(cfg.Obs, wire.DomainID(int(id)+1))
		st.roots[i] = &churnRoot{id: id, dist: dist, parent: parent, alloc: ba}
	}

	// Group slots: round-robin root assignment, fixed addresses out of
	// 224/4. Unlike churn, no address is leased up front — the lease
	// scan below allocates on demand, so allocator occupancy follows
	// the membership wave instead of the (static) group count.
	st.groups = make([]*churnGroup, w.Groups)
	st.leaseExp = make([]time.Time, w.Groups)
	for i := range st.groups {
		ri := i % len(st.roots)
		st.groups[i] = &churnGroup{
			root: ri,
			addr: addr.MulticastSpace.Base + addr.Addr(i),
			mpos: map[topology.DomainID]int{},
			refs: map[topology.DomainID]int{st.roots[ri].id: 1},
			size: 1,
		}
	}

	// The lease a live group holds: LeaseLifetime == 0 means one lease
	// for the whole run (plus a day so it cannot lapse on the last step).
	leaseLife := w.LeaseLifetime
	if leaseLife == 0 {
		leaseLife = w.Duration + 24*time.Hour
	}

	gen.Start(scenario.Env{Graph: g, Groups: w.Groups}, st.rng)
	steps := w.Steps()
	crossedTarget := false
	for s := 0; s < steps; s++ {
		now := start.Add(time.Duration(s) * w.Step)
		gen.Emit(s, st, st.rng, st.apply)

		// Lease scan: live groups (re-)lease their address block when
		// the previous lease has lapsed; idle groups let it expire.
		members := 0
		for i, gr := range st.groups {
			members += len(gr.members)
			if len(gr.members) == 0 {
				continue
			}
			if st.leaseExp[i].After(now) {
				continue
			}
			_, ok := st.roots[gr.root].alloc.Request(
				uint64(w.AddressesPerGroup), leaseLife, now)
			if !ok {
				st.res.LeaseFailures++
				continue
			}
			st.leaseExp[i] = now.Add(leaseLife)
			if cfg.Obs != nil {
				cfg.Obs.Emit(obs.Event{Kind: obs.MAASLease,
					Domain: wire.DomainID(int(st.roots[gr.root].id) + 1), Group: gr.addr})
			}
		}
		if members > st.res.MembersPeak {
			st.res.MembersPeak = members
		}

		// Advance the allocators and sample occupancy and G-RIB size.
		var demand, capacity uint64
		grib := 0
		for _, rs := range st.roots {
			rs.alloc.Tick(now)
			demand += rs.alloc.Demand()
			capacity += rs.alloc.Capacity()
			grib += len(rs.alloc.Holdings())
		}
		occ := 0.0
		if capacity > 0 {
			occ = float64(demand) / float64(capacity)
		}
		if occ > st.res.OccMax {
			st.res.OccMax = occ
		}
		if !crossedTarget && occ >= strat.TargetOccupancy {
			crossedTarget = true
			st.res.OccTrough = occ
		}
		if crossedTarget && occ < st.res.OccTrough {
			st.res.OccTrough = occ
		}
		if grib > st.res.GRIBPeak {
			st.res.GRIBPeak = grib
		}
	}

	// Final state and allocator event totals.
	for _, gr := range st.groups {
		st.res.ForwardingEntries += gr.size
		st.res.MembersFinal += len(gr.members)
	}
	if w.Groups > 0 {
		st.res.MeanTreeSize = float64(st.res.ForwardingEntries) / float64(w.Groups)
	}
	for _, rs := range st.roots {
		st.res.GRIBFinal += len(rs.alloc.Holdings())
		stats := rs.alloc.Stats
		st.res.Expansions += stats.Doublings
		st.res.Claims += stats.ExtraClaims + stats.Replacements
		st.res.Collapses += stats.Releases
	}
	st.res.FanIn = float64(st.res.Joins) / float64(max(1, st.res.RootJoins))

	// Steady-state forwarding phase over the surviving membership, with
	// the same cost models the churn workload uses.
	model := forwardModel(cfg.DataPlane)
	for _, gr := range st.groups {
		if len(gr.members) == 0 {
			continue
		}
		rs := st.roots[gr.root]
		for s := 0; s < w.SendsPerGroup; s++ {
			src := reachableDomain(st.rng, g.NumDomains(), rs)
			pc := model(gr, rs, src)
			st.res.Packets++
			st.res.ForwardHops += pc.Hops
			st.res.HeaderBytes += pc.HeaderBytes
			st.res.Encaps += pc.Encaps
			st.res.Delivered += pc.Delivered
			emitPacket(cfg.Obs, gr.addr, pc)
		}
	}
	return st.res, nil
}

// reachableDomain draws a uniform sender that can reach the root (file
// topologies may have unreachable components; cost models walk BFS
// parents and need a connected source). The retry is rng-consuming and
// therefore deterministic.
func reachableDomain(rng *rand.Rand, n int, rs *churnRoot) topology.DomainID {
	for {
		d := topology.DomainID(rng.Intn(n))
		if rs.dist[d] >= 0 {
			return d
		}
	}
}
