package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"mascbgmp/internal/scenario"
	"mascbgmp/internal/topology"
)

func builtinSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	for _, b := range scenario.Builtins() {
		if b.Name == name {
			return scenario.MustParseBuiltin(b)
		}
	}
	t.Fatalf("no builtin scenario %q", name)
	return scenario.Spec{}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	for _, b := range scenario.Builtins() {
		spec := scenario.MustParseBuiltin(b)
		// Shrink for test speed; determinism does not depend on scale.
		spec.Topology.Domains, spec.Topology.Peering = 128, 16
		w := &spec.Workload
		w.Duration = 20 * w.Step
		if w.Kind == scenario.KindDiurnal {
			w.Period = 16 * w.Step
			w.Groups, w.PeakGroups = 24, 24
		}
		if w.Kind == scenario.KindFlashCrowd {
			w.Ramp, w.Hold = 6*w.Step, 6*w.Step
			w.PeakMembers = 60
		}
		t.Run(b.Name, func(t *testing.T) {
			a, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 11})
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}
			bres, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if a != bres {
				t.Fatalf("same seed, different results:\n%+v\n%+v", a, bres)
			}
			if a.Joins == 0 {
				t.Fatal("workload produced no joins")
			}
			c, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 12})
			if err != nil {
				t.Fatal(err)
			}
			if a == c {
				t.Fatal("different seeds produced identical results")
			}
		})
	}
}

// TestDiurnalDrivesExpandAndCollapse is the issue's round-trip check:
// over two simulated days the demand wave must push the root allocators
// through at least one 75%-target prefix doubling on the way up and at
// least one empty-prefix release (collapse) in the trough — driven
// purely by the workload, with no direct allocator manipulation.
func TestDiurnalDrivesExpandAndCollapse(t *testing.T) {
	spec := builtinSpec(t, "diurnal")
	res, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 1})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if res.Expansions < 1 {
		t.Errorf("Expansions = %d, want >= 1 prefix doubling on the demand ramp", res.Expansions)
	}
	if res.Collapses < 1 {
		t.Errorf("Collapses = %d, want >= 1 drained-prefix release in the trough", res.Collapses)
	}
	if res.OccMax < 0.75 {
		t.Errorf("OccMax = %.3f, want >= 0.75 (wave never reached the doubling target)", res.OccMax)
	}
	if res.OccTrough >= 0.75 {
		t.Errorf("OccTrough = %.3f, want < 0.75 (occupancy never receded)", res.OccTrough)
	}
	if res.LeaseFailures != 0 {
		t.Errorf("LeaseFailures = %d, want 0 (224/4 cannot run out here)", res.LeaseFailures)
	}
}

// TestFlashCrowdFanIn: a crowd converging on few groups must aggregate
// joins — the root sees far fewer grafts than members joined.
func TestFlashCrowdFanIn(t *testing.T) {
	spec := builtinSpec(t, "flash-crowd")
	res, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 1})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if res.FanIn < 4 {
		t.Errorf("FanIn = %.2f, want >= 4 (join aggregation should absorb most of the crowd)", res.FanIn)
	}
	// 4 hot groups × 900 peak members ride on top of the background
	// churn; by the last step the crowd (and only the crowd) is gone.
	if res.MembersPeak < 3600 {
		t.Errorf("MembersPeak = %d, want >= 3600 (crowd never materialized)", res.MembersPeak)
	}
	if res.MembersPeak-res.MembersFinal < 2000 {
		t.Errorf("MembersPeak = %d vs final %d: crowd did not drain", res.MembersPeak, res.MembersFinal)
	}
}

// TestAffinityCompactsTrees: topology-correlated membership must build
// smaller trees than uniform-domain membership at the same event volume
// (zipf and affinity share group count, duration, and event rate).
func TestAffinityCompactsTrees(t *testing.T) {
	aff := builtinSpec(t, "affinity")
	zipf := builtinSpec(t, "zipf")
	ra, err := RunWorkload(WorkloadConfig{Spec: aff, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rz, err := RunWorkload(WorkloadConfig{Spec: zipf, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ra.MeanTreeSize >= rz.MeanTreeSize {
		t.Errorf("affinity mean tree %.2f >= zipf %.2f; locality should compact trees",
			ra.MeanTreeSize, rz.MeanTreeSize)
	}
}

func TestRunWorkloadFileTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.topo")
	g := topology.ASGraph(64, 8, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.WriteEdgeList(f, g, "as"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec := scenario.Spec{
		Name:     "filed",
		Trials:   1,
		Topology: scenario.TopologySpec{Kind: "file", Path: path},
		Workload: scenario.WorkloadSpec{Kind: scenario.KindUniform,
			Groups: 8, RootDomains: 2, Duration: 10, Step: 1,
			EventsPerStep: 40, SendsPerGroup: 1, AddressesPerGroup: 1,
			ClaimLifetime: 1 << 40},
	}
	res, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 2})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if res.Joins == 0 || res.Packets == 0 {
		t.Errorf("file-topology run did nothing: %+v", res)
	}

	spec.Topology.Path = filepath.Join(dir, "missing.topo")
	if _, err := RunWorkload(WorkloadConfig{Spec: spec, Seed: 2}); err == nil {
		t.Error("missing topology file did not error")
	}
}

// TestRunWorkloadMatchesChurnStream: the uniform generator through the
// engine and the churn workload consume the same rng discipline; this
// guards the refactor that routed churn through scenario.Uniform.
func TestChurnRefactorPinsMetrics(t *testing.T) {
	cfg := ChurnConfig{Domains: 200, ExtraPeering: 30, Groups: 50,
		RootDomains: 4, Events: 2000, BlockSize: 16, SendsPerGroup: 2, Seed: 7}
	a := RunChurn(cfg)
	b := RunChurn(cfg)
	if a != b {
		t.Fatalf("churn not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Joins+a.Leaves != cfg.Events {
		t.Errorf("joins+leaves = %d, want every one of %d events applied", a.Joins+a.Leaves, cfg.Events)
	}
}
