package experiments

import (
	"testing"

	"mascbgmp/internal/obs"
)

// scaledChurn keeps the workload cheap for CI while preserving its shape:
// hundreds of groups, thousands of events.
func scaledChurn() ChurnConfig {
	cfg := DefaultChurnConfig()
	cfg.Domains = 400
	cfg.ExtraPeering = 50
	cfg.Groups = 200
	cfg.RootDomains = 16
	cfg.Events = 4000
	cfg.SendsPerGroup = 2
	return cfg
}

func TestChurnShape(t *testing.T) {
	cfg := scaledChurn()
	res := RunChurn(cfg)
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn did nothing: %+v", res)
	}
	if res.Joins-res.Leaves != res.MembersFinal {
		t.Fatalf("membership accounting broken: joins %d - leaves %d != members %d",
			res.Joins, res.Leaves, res.MembersFinal)
	}
	// Every group keeps at least its root on the tree.
	if res.ForwardingEntries < cfg.Groups {
		t.Fatalf("forwarding entries %d < groups %d", res.ForwardingEntries, cfg.Groups)
	}
	if res.MeanTreeSize < 1 {
		t.Fatalf("mean tree size %.2f < 1", res.MeanTreeSize)
	}
	// Join grafts and leave prunes must balance with the surviving state:
	// every on-tree domain beyond the per-group root was grafted once.
	if res.JoinHops-res.PruneHops != uint64(res.ForwardingEntries-cfg.Groups) {
		t.Fatalf("graft/prune imbalance: %d - %d != %d",
			res.JoinHops, res.PruneHops, res.ForwardingEntries-cfg.Groups)
	}
	// G-RIB stays tiny relative to the group count: that is the paper's
	// aggregation claim carried into the churn workload.
	if res.GRIBSize == 0 || res.GRIBSize > cfg.Groups/4 {
		t.Fatalf("G-RIB size %d out of band for %d groups", res.GRIBSize, cfg.Groups)
	}
	if res.Packets != cfg.Groups*cfg.SendsPerGroup {
		t.Fatalf("packets = %d, want %d", res.Packets, cfg.Groups*cfg.SendsPerGroup)
	}
	if res.ForwardHops == 0 || res.Delivered == 0 {
		t.Fatalf("forwarding phase idle: %+v", res)
	}
}

func TestChurnDeterministic(t *testing.T) {
	cfg := scaledChurn()
	a, b := RunChurn(cfg), RunChurn(cfg)
	if a != b {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	if c := RunChurn(cfg); c == a {
		t.Fatal("different seed did not perturb the workload")
	}
}

func TestChurnMetricsAreSeedStable(t *testing.T) {
	run := func() string {
		cfg := scaledChurn()
		cfg.Obs = obs.NewObserver()
		RunChurn(cfg)
		return cfg.Obs.Snapshot().String()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed, different snapshots:\n--- run 1\n%s--- run 2\n%s", s1, s2)
	}

	cfg := scaledChurn()
	cfg.Obs = obs.NewObserver()
	res := RunChurn(cfg)
	s := cfg.Obs.Snapshot()
	for _, name := range []string{"maas.lease", "bgmp.join", "bgmp.prune", "masc.claim",
		"data.forwarded", "data.delivered"} {
		if s.Total(name) == 0 {
			t.Fatalf("counter %q is zero", name)
		}
	}
	if got := s.Total("bgmp.join"); got != uint64(res.Joins) {
		t.Fatalf("bgmp.join = %d, want %d", got, res.Joins)
	}
	if got := s.Total("data.delivered"); got != res.Delivered {
		t.Fatalf("data.delivered = %d, want %d", got, res.Delivered)
	}
}
