package experiments

import (
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// Scale-churn workload: thousands of multicast groups joining and leaving
// over a paper-scale (3326-domain) AS graph. This is this repository's
// production-scale extension of the paper's evaluation: Figure 4 measures
// static tree quality, while churn measures the dynamic costs the
// architecture was designed to bound — join/prune message hops on the
// bidirectional shared tree (§5.2), per-domain forwarding state, and the
// G-RIB footprint of the MASC block allocations the groups are drawn from
// (§4.3).
//
// The model:
//
//   - RootDomains provider domains (the best-connected domains, as real
//     exchanges would be) run MASC block allocators over the global 224/4
//     ledger; every group's address comes from its root domain's blocks,
//     so the G-RIB size is the number of live claimed prefixes.
//   - Each group maintains a bidirectional shared tree as the refcounted
//     union of member→root shortest paths. A join walks toward the root
//     until it hits the tree (§5.2); a leave prunes the now-unused tail.
//   - After the churn phase, a steady-state forwarding phase sends packets
//     from random (often non-member) domains: each packet climbs to its
//     attach point and floods the tree's branches, crossing size-1 links.
//
// Everything is driven by the seeded rng; a given config yields identical
// results and byte-identical obs snapshots on every run.

// ChurnConfig parameterizes RunChurn.
type ChurnConfig struct {
	// Domains and ExtraPeering parameterize the synthetic AS graph
	// (paper scale: 3326 / 350).
	Domains      int
	ExtraPeering int
	// Groups is the number of multicast groups.
	Groups int
	// RootDomains is the number of provider domains groups are rooted at
	// (the domains running MASC allocators).
	RootDomains int
	// Events is the number of join/leave operations in the churn phase.
	Events int
	// BlockSize is the MASC block request size backing group addresses
	// (paper: 256).
	BlockSize uint64
	// SendsPerGroup is the number of steady-state packets sent to each
	// group after the churn phase.
	SendsPerGroup int
	Seed          int64
	// Obs observes the workload: maas.lease per group, bgmp.join/prune
	// per membership change, data.forwarded/data.delivered for the
	// steady-state phase, plus the masc.* events of the block allocators.
	// Nil disables observation.
	Obs *obs.Observer
}

// DefaultChurnConfig returns the scale recorded in EXPERIMENTS.md:
// 2500 groups over the paper's 3326-domain topology, 40000 churn events.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Domains:       3326,
		ExtraPeering:  350,
		Groups:        2500,
		RootDomains:   64,
		Events:        40000,
		BlockSize:     256,
		SendsPerGroup: 4,
		Seed:          1998,
	}
}

// ChurnResult is the workload's deterministic outcome. Throughput rates
// (joins/sec, forwarded hops/sec) are derived from these counts and the
// measured wall time by the benchmark harness, not recorded here.
type ChurnResult struct {
	// Joins and Leaves count membership operations performed.
	Joins, Leaves int
	// JoinHops and PruneHops count the inter-domain hops join and prune
	// messages traveled (graft/prune tail lengths).
	JoinHops, PruneHops uint64
	// GRIBSize is the number of live claimed prefixes across all root
	// domains at the end — the group-route table the architecture keeps
	// small through aggregation.
	GRIBSize int
	// ForwardingEntries is the total per-domain forwarding state:
	// Σ over groups of on-tree domain count.
	ForwardingEntries int
	// MeanTreeSize is ForwardingEntries / Groups.
	MeanTreeSize float64
	// MembersFinal is the total membership at the end of the churn phase.
	MembersFinal int
	// Packets, ForwardHops, and Delivered describe the steady-state
	// forwarding phase: packets sent, inter-domain link crossings, and
	// member deliveries.
	Packets     int
	ForwardHops uint64
	Delivered   uint64
}

// churnGroup is one group's membership and refcounted shared tree.
type churnGroup struct {
	root    int // index into the roots slice
	addr    addr.Addr
	members []topology.DomainID
	mpos    map[topology.DomainID]int // member → index in members
	refs    map[topology.DomainID]int // on-tree refcounts (path-to-root counts)
	size    int                       // domains with refs > 0
}

// churnRoot is one provider domain running a MASC block allocator.
type churnRoot struct {
	id     topology.DomainID
	parent []topology.DomainID // BFS parents toward id
	alloc  *masc.BlockAllocator
	// next/end walk individual addresses out of the current block.
	next, end addr.Addr
}

// RunChurn runs the churn workload. Deterministic for a given config.
func RunChurn(cfg ChurnConfig) ChurnResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := topology.ASGraph(cfg.Domains, cfg.ExtraPeering, cfg.Seed)
	now := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	life := 365 * 24 * time.Hour

	// Root domains: the RootDomains highest-degree domains (ties broken by
	// ID), modeling the well-connected providers that host group roots.
	roots := pickRoots(g, cfg.RootDomains)
	global := masc.NewLedger(addr.MulticastSpace)
	rootState := make([]*churnRoot, len(roots))
	for i, id := range roots {
		_, parent := g.BFS(id)
		ba := masc.NewBlockAllocator(masc.DefaultStrategy(), global,
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		ba.SetObserver(cfg.Obs, wire.DomainID(int(id)+1))
		rootState[i] = &churnRoot{id: id, parent: parent, alloc: ba}
	}

	// Create the groups, leasing each an address from its root's blocks.
	groups := make([]*churnGroup, cfg.Groups)
	for i := range groups {
		ri := rng.Intn(len(rootState))
		rs := rootState[ri]
		if rs.next >= rs.end {
			blk, ok := rs.alloc.Request(cfg.BlockSize, life, now)
			if !ok {
				// 224/4 cannot run out at these scales; skip defensively.
				continue
			}
			rs.next = blk.Prefix.Base
			rs.end = blk.Prefix.Base + addr.Addr(blk.Size)
		}
		gr := &churnGroup{
			root: ri,
			addr: rs.next,
			mpos: map[topology.DomainID]int{},
			refs: map[topology.DomainID]int{rs.id: 1},
			size: 1,
		}
		rs.next++
		groups[i] = gr
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{Kind: obs.MAASLease,
				Domain: wire.DomainID(int(rs.id) + 1), Group: gr.addr})
		}
	}

	res := ChurnResult{}

	// Churn phase: random join/leave events. A domain that is already a
	// member leaves; anyone else joins — so each group's membership does a
	// random walk and the trees grow and shrink continuously.
	for e := 0; len(groups) > 0 && e < cfg.Events; e++ {
		gr := groups[rng.Intn(len(groups))]
		if gr == nil {
			continue
		}
		m := topology.DomainID(rng.Intn(cfg.Domains))
		if _, isMember := gr.mpos[m]; isMember {
			res.Leaves++
			res.PruneHops += churnLeave(gr, rootState[gr.root], m)
			if cfg.Obs != nil {
				cfg.Obs.Emit(obs.Event{Kind: obs.BGMPPrune, Group: gr.addr})
			}
		} else {
			res.Joins++
			res.JoinHops += churnJoin(gr, rootState[gr.root], m)
			if cfg.Obs != nil {
				cfg.Obs.Emit(obs.Event{Kind: obs.BGMPJoin, Group: gr.addr})
			}
		}
	}

	// Steady state: forwarding footprint and tree state.
	for _, gr := range groups {
		if gr == nil {
			continue
		}
		res.ForwardingEntries += gr.size
		res.MembersFinal += len(gr.members)
	}
	if cfg.Groups > 0 {
		res.MeanTreeSize = float64(res.ForwardingEntries) / float64(cfg.Groups)
	}
	for _, rs := range rootState {
		res.GRIBSize += len(rs.alloc.Holdings())
	}

	// Forwarding phase: packets from random senders climb to their attach
	// point (§5.2: "forward the data packets towards the root domain")
	// and flood the bidirectional tree, reaching every member.
	for _, gr := range groups {
		if gr == nil {
			continue
		}
		rs := rootState[gr.root]
		for s := 0; s < cfg.SendsPerGroup; s++ {
			src := topology.DomainID(rng.Intn(cfg.Domains))
			climb := uint64(0)
			for cur := src; gr.refs[cur] == 0; cur = rs.parent[cur] {
				climb++
			}
			res.Packets++
			hops := climb + uint64(gr.size-1)
			res.ForwardHops += hops
			res.Delivered += uint64(len(gr.members))
			if cfg.Obs != nil {
				if hops > 0 {
					cfg.Obs.Emit(obs.Event{Kind: obs.DataForwarded,
						Group: gr.addr, Count: hops})
				}
				if n := uint64(len(gr.members)); n > 0 {
					cfg.Obs.Emit(obs.Event{Kind: obs.DataDelivered,
						Group: gr.addr, Count: n})
				}
			}
		}
	}
	return res
}

// churnJoin adds member m, refcounting its path toward the root, and
// returns the number of domains newly grafted onto the tree (the hops the
// join message traveled before reaching an on-tree domain).
func churnJoin(gr *churnGroup, rs *churnRoot, m topology.DomainID) uint64 {
	gr.mpos[m] = len(gr.members)
	gr.members = append(gr.members, m)
	grafted := uint64(0)
	for cur := m; ; cur = rs.parent[cur] {
		gr.refs[cur]++
		if gr.refs[cur] == 1 {
			gr.size++
			grafted++
		}
		if cur == rs.id {
			break
		}
	}
	return grafted
}

// churnLeave removes member m, dropping refcounts along its path, and
// returns the number of domains pruned off the tree.
func churnLeave(gr *churnGroup, rs *churnRoot, m topology.DomainID) uint64 {
	pos := gr.mpos[m]
	last := len(gr.members) - 1
	gr.members[pos] = gr.members[last]
	gr.mpos[gr.members[pos]] = pos
	gr.members = gr.members[:last]
	delete(gr.mpos, m)
	pruned := uint64(0)
	for cur := m; ; cur = rs.parent[cur] {
		gr.refs[cur]--
		if gr.refs[cur] == 0 {
			gr.size--
			pruned++
			delete(gr.refs, cur)
		}
		if cur == rs.id {
			break
		}
	}
	return pruned
}

// pickRoots returns the n highest-degree domains, ties broken by lower ID
// (deterministic regardless of map iteration or seed).
func pickRoots(g *topology.Graph, n int) []topology.DomainID {
	if n > g.NumDomains() {
		n = g.NumDomains()
	}
	ids := make([]topology.DomainID, g.NumDomains())
	for i := range ids {
		ids[i] = topology.DomainID(i)
	}
	// Selection by repeated max keeps this O(V·n); n is small (≤ 64-ish).
	out := make([]topology.DomainID, 0, n)
	taken := make([]bool, g.NumDomains())
	for len(out) < n {
		best, bestDeg := topology.NoDomain, -1
		for _, id := range ids {
			if taken[id] {
				continue
			}
			if d := g.Degree(id); d > bestDeg {
				best, bestDeg = id, d
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}
