package experiments

import (
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/scenario"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// Scale-churn workload: thousands of multicast groups joining and leaving
// over a paper-scale (3326-domain) AS graph. This is this repository's
// production-scale extension of the paper's evaluation: Figure 4 measures
// static tree quality, while churn measures the dynamic costs the
// architecture was designed to bound — join/prune message hops on the
// bidirectional shared tree (§5.2), per-domain forwarding state, and the
// G-RIB footprint of the MASC block allocations the groups are drawn from
// (§4.3).
//
// The model:
//
//   - RootDomains provider domains (the best-connected domains, as real
//     exchanges would be) run MASC block allocators over the global 224/4
//     ledger; every group's address comes from its root domain's blocks,
//     so the G-RIB size is the number of live claimed prefixes.
//   - Each group maintains a bidirectional shared tree as the refcounted
//     union of member→root shortest paths. A join walks toward the root
//     until it hits the tree (§5.2); a leave prunes the now-unused tail.
//   - After the churn phase, a steady-state forwarding phase sends packets
//     from random (often non-member) domains: each packet climbs to its
//     attach point and floods the tree's branches, crossing size-1 links.
//
// Everything is driven by the seeded rng; a given config yields identical
// results and byte-identical obs snapshots on every run.

// ChurnConfig parameterizes RunChurn.
type ChurnConfig struct {
	// Domains and ExtraPeering parameterize the synthetic AS graph
	// (paper scale: 3326 / 350).
	Domains      int
	ExtraPeering int
	// Groups is the number of multicast groups.
	Groups int
	// RootDomains is the number of provider domains groups are rooted at
	// (the domains running MASC allocators).
	RootDomains int
	// Events is the number of join/leave operations in the churn phase.
	Events int
	// BlockSize is the MASC block request size backing group addresses
	// (paper: 256).
	BlockSize uint64
	// SendsPerGroup is the number of steady-state packets sent to each
	// group after the churn phase.
	SendsPerGroup int
	// DataPlane selects the forwarding-phase cost model: one of
	// dataplane.Names(). Empty (and any unknown value) means the default
	// shared-tree model; the membership/churn phases are identical for
	// every backend — only the per-packet hop and header accounting
	// changes. The cmds validate the name before it gets here.
	DataPlane string
	Seed      int64
	// Obs observes the workload: maas.lease per group, bgmp.join/prune
	// per membership change, data.forwarded/data.delivered for the
	// steady-state phase, plus the masc.* events of the block allocators.
	// Nil disables observation.
	Obs *obs.Observer
}

// DefaultChurnConfig returns the scale recorded in EXPERIMENTS.md:
// 2500 groups over the paper's 3326-domain topology, 40000 churn events.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Domains:       3326,
		ExtraPeering:  350,
		Groups:        2500,
		RootDomains:   64,
		Events:        40000,
		BlockSize:     256,
		SendsPerGroup: 4,
		Seed:          1998,
	}
}

// ChurnResult is the workload's deterministic outcome. Throughput rates
// (joins/sec, forwarded hops/sec) are derived from these counts and the
// measured wall time by the benchmark harness, not recorded here.
type ChurnResult struct {
	// Joins and Leaves count membership operations performed.
	Joins, Leaves int
	// JoinHops and PruneHops count the inter-domain hops join and prune
	// messages traveled (graft/prune tail lengths).
	JoinHops, PruneHops uint64
	// GRIBSize is the number of live claimed prefixes across all root
	// domains at the end — the group-route table the architecture keeps
	// small through aggregation.
	GRIBSize int
	// ForwardingEntries is the total per-domain forwarding state:
	// Σ over groups of on-tree domain count.
	ForwardingEntries int
	// MeanTreeSize is ForwardingEntries / Groups.
	MeanTreeSize float64
	// MembersFinal is the total membership at the end of the churn phase.
	MembersFinal int
	// Packets, ForwardHops, and Delivered describe the steady-state
	// forwarding phase: packets sent, inter-domain link crossings, and
	// member deliveries.
	Packets     int
	ForwardHops uint64
	Delivered   uint64
	// HeaderBytes and Encaps are the per-packet overhead the selected
	// data plane spent in the forwarding phase: extra header bytes on
	// inter-domain hops (tunnel outer headers, BIER bitstrings) and
	// tunnels originated. Always zero for the shared-tree model, which
	// forwards natively along tree state.
	HeaderBytes uint64
	Encaps      uint64
}

// churnGroup is one group's membership and refcounted shared tree.
type churnGroup struct {
	root    int // index into the roots slice
	addr    addr.Addr
	members []topology.DomainID
	mpos    map[topology.DomainID]int // member → index in members
	refs    map[topology.DomainID]int // on-tree refcounts (path-to-root counts)
	size    int                       // domains with refs > 0
}

// churnRoot is one provider domain running a MASC block allocator.
type churnRoot struct {
	id     topology.DomainID
	dist   []int               // BFS hop distances from id
	parent []topology.DomainID // BFS parents toward id
	alloc  *masc.BlockAllocator
	// next/end walk individual addresses out of the current block.
	next, end addr.Addr
}

// churnState is the workload after the churn phase: the topology, the
// root allocators, and every group's membership and refcounted tree.
// buildChurn produces it; RunChurn (one forwarding model) and RunDataPlane
// (all models side by side) both consume it, so the two entry points share
// setup and draw from the same rng stream in the same order.
type churnState struct {
	cfg    ChurnConfig
	rng    *rand.Rand
	g      *topology.Graph
	roots  []*churnRoot
	groups []*churnGroup
	// res has the membership, state-size, and G-RIB fields filled; the
	// forwarding-phase fields are still zero.
	res ChurnResult
}

// buildChurn runs the setup and churn phases: topology, root allocators,
// group creation, the join/leave event stream, and the steady-state
// accounting. Deterministic for a given config, and independent of
// cfg.DataPlane — the backends share the control plane by construction.
func buildChurn(cfg ChurnConfig) *churnState {
	st := &churnState{cfg: cfg}
	st.rng = rand.New(rand.NewSource(cfg.Seed))
	st.g = topology.ASGraph(cfg.Domains, cfg.ExtraPeering, cfg.Seed)
	now := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	life := 365 * 24 * time.Hour
	rng, g := st.rng, st.g

	// Root domains: the RootDomains highest-degree domains (ties broken by
	// ID), modeling the well-connected providers that host group roots.
	roots := pickRoots(g, cfg.RootDomains)
	global := masc.NewLedger(addr.MulticastSpace)
	rootState := make([]*churnRoot, len(roots))
	for i, id := range roots {
		dist, parent := g.BFS(id)
		ba := masc.NewBlockAllocator(masc.DefaultStrategy(), global,
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		ba.SetObserver(cfg.Obs, wire.DomainID(int(id)+1))
		rootState[i] = &churnRoot{id: id, dist: dist, parent: parent, alloc: ba}
	}

	// Create the groups, leasing each an address from its root's blocks.
	groups := make([]*churnGroup, cfg.Groups)
	for i := range groups {
		ri := rng.Intn(len(rootState))
		rs := rootState[ri]
		if rs.next >= rs.end {
			blk, ok := rs.alloc.Request(cfg.BlockSize, life, now)
			if !ok {
				// 224/4 cannot run out at these scales; skip defensively.
				continue
			}
			rs.next = blk.Prefix.Base
			rs.end = blk.Prefix.Base + addr.Addr(blk.Size)
		}
		gr := &churnGroup{
			root: ri,
			addr: rs.next,
			mpos: map[topology.DomainID]int{},
			refs: map[topology.DomainID]int{rs.id: 1},
			size: 1,
		}
		rs.next++
		groups[i] = gr
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{Kind: obs.MAASLease,
				Domain: wire.DomainID(int(rs.id) + 1), Group: gr.addr})
		}
	}

	st.roots = rootState
	st.groups = groups

	// Churn phase: the uniform membership generator toggles random
	// (group, domain) pairs, so each group's membership does a random
	// walk and the trees grow and shrink continuously. scenario.Uniform
	// reproduces this workload's historical rng stream exactly, so the
	// checked-in scale/dataplane baselines survive the refactor; richer
	// demand shapes run through the same generator interface via
	// RunWorkload.
	if cfg.Groups > 0 && cfg.Events > 0 {
		gen := &scenario.Uniform{PerStep: cfg.Events}
		gen.Start(scenario.Env{Graph: g, Groups: cfg.Groups}, rng)
		gen.Emit(0, (*churnView)(st), rng, st.applyOp)
	}

	// Steady state: forwarding footprint and tree state.
	for _, gr := range groups {
		if gr == nil {
			continue
		}
		st.res.ForwardingEntries += gr.size
		st.res.MembersFinal += len(gr.members)
	}
	if cfg.Groups > 0 {
		st.res.MeanTreeSize = float64(st.res.ForwardingEntries) / float64(cfg.Groups)
	}
	for _, rs := range rootState {
		st.res.GRIBSize += len(rs.alloc.Holdings())
	}
	return st
}

// churnView adapts churnState to scenario.View for the generator.
// A nil group slot (defensive allocation-failure path) is inactive.
type churnView churnState

func (v *churnView) Domains() int      { return v.cfg.Domains }
func (v *churnView) Active(g int) bool { return v.groups[g] != nil }
func (v *churnView) IsMember(g int, d topology.DomainID) bool {
	_, ok := v.groups[g].mpos[d]
	return ok
}
func (v *churnView) MemberCount(g int) int             { return len(v.groups[g].members) }
func (v *churnView) Member(g, i int) topology.DomainID { return v.groups[g].members[i] }

// applyOp performs one generated membership op with the churn
// accounting (hop counts and obs events).
func (st *churnState) applyOp(op scenario.Op) {
	gr := st.groups[op.Group]
	rs := st.roots[gr.root]
	if op.Join {
		st.res.Joins++
		st.res.JoinHops += churnJoin(gr, rs, op.Domain)
		if st.cfg.Obs != nil {
			st.cfg.Obs.Emit(obs.Event{Kind: obs.BGMPJoin, Group: gr.addr})
		}
		return
	}
	st.res.Leaves++
	st.res.PruneHops += churnLeave(gr, rs, op.Domain)
	if st.cfg.Obs != nil {
		st.cfg.Obs.Emit(obs.Event{Kind: obs.BGMPPrune, Group: gr.addr})
	}
}

// RunChurn runs the churn workload. Deterministic for a given config.
func RunChurn(cfg ChurnConfig) ChurnResult {
	st := buildChurn(cfg)
	model := forwardModel(cfg.DataPlane)

	// Forwarding phase: packets from random senders. Under the default
	// shared-tree model each packet climbs to its attach point (§5.2:
	// "forward the data packets towards the root domain") and floods the
	// bidirectional tree, reaching every member; the stateless models
	// tunnel to the root and fan out from there (see the cost functions).
	for _, gr := range st.groups {
		if gr == nil {
			continue
		}
		rs := st.roots[gr.root]
		for s := 0; s < cfg.SendsPerGroup; s++ {
			src := topology.DomainID(st.rng.Intn(cfg.Domains))
			pc := model(gr, rs, src)
			st.res.Packets++
			st.res.ForwardHops += pc.Hops
			st.res.HeaderBytes += pc.HeaderBytes
			st.res.Encaps += pc.Encaps
			st.res.Delivered += pc.Delivered
			emitPacket(cfg.Obs, gr.addr, pc)
		}
	}
	return st.res
}

// packetCost is what one steady-state packet costs under one backend's
// forwarding model.
type packetCost struct {
	// Hops counts inter-domain link crossings (climb plus fan-out).
	Hops uint64
	// HeaderBytes is the extra header spend across those crossings.
	HeaderBytes uint64
	// Encaps counts tunnels originated for the packet.
	Encaps uint64
	// Delivered counts member deliveries — identical for every backend,
	// which is the delivery-equivalence the tests pin down.
	Delivered uint64
}

// forwardModel maps a backend name to its per-packet cost function.
// Unknown names (including "") fall back to the shared-tree default, the
// same rule core applies to Config.DataPlane after validation.
func forwardModel(name string) func(*churnGroup, *churnRoot, topology.DomainID) packetCost {
	switch name {
	case dataplane.BIERName:
		return bierCost
	case dataplane.MapEncapName:
		return mapEncapCost
	default:
		return sharedTreeCost
	}
}

// sharedTreeCost: the packet climbs toward the root until it hits the
// tree, then floods the bidirectional tree's size-1 links natively — no
// extra headers, per-group state at every on-tree domain.
func sharedTreeCost(gr *churnGroup, rs *churnRoot, src topology.DomainID) packetCost {
	climb := uint64(0)
	for cur := src; gr.refs[cur] == 0; cur = rs.parent[cur] {
		climb++
	}
	return packetCost{
		Hops:      climb + uint64(gr.size-1),
		Delivered: uint64(len(gr.members)),
	}
}

// bierCost: the packet is tunneled all the way to the root domain (the
// overlay membership lives only there), which stamps a bitstring over the
// member domains and fans out along unicast shortest paths. The copies
// traverse exactly the union of root→member paths — the same size-1 links
// as the shared tree — but every fan-out hop carries the bitstring and
// transit domains keep zero per-group state.
func bierCost(gr *churnGroup, rs *churnRoot, src topology.DomainID) packetCost {
	pc := packetCost{Delivered: uint64(len(gr.members))}
	climb := uint64(rs.dist[src])
	pc.Hops = climb
	if climb > 0 {
		pc.Encaps = 1
		pc.HeaderBytes = climb * dataplane.EncapHeaderBytes
	}
	if fan := uint64(gr.size - 1); fan > 0 {
		words := int(maxMember(gr))/64 + 1
		pc.Hops += fan
		pc.HeaderBytes += fan * uint64(dataplane.BIERHeaderBytes(words))
	}
	return pc
}

// mapEncapCost: the packet is tunneled to the root domain, which
// originates one unicast tunnel per member domain. No fan-out sharing:
// hops that BIER and the shared tree traverse once are paid once per
// member whose path crosses them, and every hop carries the outer header.
func mapEncapCost(gr *churnGroup, rs *churnRoot, src topology.DomainID) packetCost {
	pc := packetCost{Delivered: uint64(len(gr.members))}
	climb := uint64(rs.dist[src])
	pc.Hops = climb
	if climb > 0 {
		pc.Encaps = 1
		pc.HeaderBytes = climb * dataplane.EncapHeaderBytes
	}
	for _, m := range gr.members {
		d := uint64(rs.dist[m])
		if d == 0 {
			// The member is the root domain itself: native delivery.
			continue
		}
		pc.Hops += d
		pc.HeaderBytes += d * dataplane.EncapHeaderBytes
		pc.Encaps++
	}
	return pc
}

// maxMember returns the highest member domain ID, sizing the BIER
// bitstring. Only called with at least one member (fan-out > 0).
func maxMember(gr *churnGroup) topology.DomainID {
	max := gr.members[0]
	for _, m := range gr.members[1:] {
		if m > max {
			max = m
		}
	}
	return max
}

// emitPacket reports one forwarding-phase packet to the observer using
// the same event kinds (and, for the default model, the same sequence)
// the data plane itself emits.
func emitPacket(ob *obs.Observer, g addr.Addr, pc packetCost) {
	if ob == nil {
		return
	}
	if pc.Hops > 0 {
		ob.Emit(obs.Event{Kind: obs.DataForwarded, Group: g, Count: pc.Hops})
	}
	if pc.Encaps > 0 {
		ob.Emit(obs.Event{Kind: obs.DataEncap, Group: g, Count: pc.Encaps})
	}
	if pc.Delivered > 0 {
		ob.Emit(obs.Event{Kind: obs.DataDelivered, Group: g, Count: pc.Delivered})
	}
	// Per-packet forwarding work (inter-domain crossings) feeds the
	// fan-out distribution benchsuite serializes for the churn suites.
	ob.Histogram(obs.HistForwardWork, 0, 0).Observe(pc.Hops)
}

// churnJoin adds member m, refcounting its path toward the root, and
// returns the number of domains newly grafted onto the tree (the hops the
// join message traveled before reaching an on-tree domain).
func churnJoin(gr *churnGroup, rs *churnRoot, m topology.DomainID) uint64 {
	gr.mpos[m] = len(gr.members)
	gr.members = append(gr.members, m)
	grafted := uint64(0)
	for cur := m; ; cur = rs.parent[cur] {
		gr.refs[cur]++
		if gr.refs[cur] == 1 {
			gr.size++
			grafted++
		}
		if cur == rs.id {
			break
		}
	}
	return grafted
}

// churnLeave removes member m, dropping refcounts along its path, and
// returns the number of domains pruned off the tree.
func churnLeave(gr *churnGroup, rs *churnRoot, m topology.DomainID) uint64 {
	pos := gr.mpos[m]
	last := len(gr.members) - 1
	gr.members[pos] = gr.members[last]
	gr.mpos[gr.members[pos]] = pos
	gr.members = gr.members[:last]
	delete(gr.mpos, m)
	pruned := uint64(0)
	for cur := m; ; cur = rs.parent[cur] {
		gr.refs[cur]--
		if gr.refs[cur] == 0 {
			gr.size--
			pruned++
			delete(gr.refs, cur)
		}
		if cur == rs.id {
			break
		}
	}
	return pruned
}

// pickRoots returns the n highest-degree domains, ties broken by lower ID
// (deterministic regardless of map iteration or seed).
func pickRoots(g *topology.Graph, n int) []topology.DomainID {
	if n > g.NumDomains() {
		n = g.NumDomains()
	}
	ids := make([]topology.DomainID, g.NumDomains())
	for i := range ids {
		ids[i] = topology.DomainID(i)
	}
	// Selection by repeated max keeps this O(V·n); n is small (≤ 64-ish).
	out := make([]topology.DomainID, 0, n)
	taken := make([]bool, g.NumDomains())
	for len(out) < n {
		best, bestDeg := topology.NoDomain, -1
		for _, id := range ids {
			if taken[id] {
				continue
			}
			if d := g.Degree(id); d > bestDeg {
				best, bestDeg = id, d
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}
