// Package experiments contains the harnesses that regenerate the paper's
// evaluation artifacts: Figure 2(a) address-space utilization, Figure 2(b)
// G-RIB size, and Figure 4 path-length overhead, plus the in-text
// steady-state numbers of §4.3.3 and §5.4. See DESIGN.md §4 for the
// experiment index.
package experiments

import (
	"container/heap"
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Fig2Config parameterizes the MASC claim-algorithm simulation of §4.3.3:
// "we simulated a network with 50 top-level domains, each with 50 child
// domains. Each child domain's allocation server requests blocks of 256
// addresses with a lifetime of 30 days for local usage. The inter-request
// times for each child domain are chosen uniformly and randomly from
// between 1 and 95 hours."
type Fig2Config struct {
	TopLevel    int           // paper: 50
	ChildrenPer int           // paper: 50
	Days        int           // paper: ~800
	BlockSize   uint64        // paper: 256
	BlockLife   time.Duration // paper: 30 days
	ReqMin      time.Duration // paper: 1 hour
	ReqMax      time.Duration // paper: 95 hours
	SampleEvery time.Duration // metric sampling period (e.g. 24h)
	Seed        int64
	// Strategy overrides the child-domain claim strategy; zero value uses
	// masc.DefaultStrategy (75 % occupancy target, ≤ 2 prefixes). Used by
	// the ablation benchmarks.
	Strategy masc.Strategy
	// Heterogeneous varies the topology and workload as the paper's
	// side experiment did ("We also examined more heterogeneous
	// topologies with similar results"): providers get between 20 % and
	// 180 % of ChildrenPer children, and children request blocks of 64,
	// 128, 256, or 512 addresses.
	Heterogeneous bool
	// Obs observes the allocation engines' protocol events (claims,
	// collisions, wins, renewals, releases, leases, and the mirrored BGP
	// route injections), scoped per provider domain. Nil disables
	// observation.
	Obs *obs.Observer
}

// DefaultFig2Config returns the paper's parameters.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		TopLevel:    50,
		ChildrenPer: 50,
		Days:        800,
		BlockSize:   256,
		BlockLife:   30 * 24 * time.Hour,
		ReqMin:      time.Hour,
		ReqMax:      95 * time.Hour,
		SampleEvery: 24 * time.Hour,
		Seed:        1998,
	}
}

// Fig2Sample is one point of the Figure 2 time series.
type Fig2Sample struct {
	Day float64
	// Utilization is the fraction of addresses claimed out of 224/4 that
	// are actually requested by allocation servers — Figure 2(a).
	Utilization float64
	// GRIBAvg and GRIBMax are the mean and maximum G-RIB sizes across
	// all domains — Figure 2(b).
	GRIBAvg float64
	GRIBMax int
	// GlobalPrefixes is the number of globally advertised (top-level,
	// aggregated) prefixes.
	GlobalPrefixes int
	// Demand and Claimed are absolute address counts.
	Demand  uint64
	Claimed uint64
}

// Fig2Result is the full simulation outcome.
type Fig2Result struct {
	Samples []Fig2Sample
	// Satisfied and Failed count block requests.
	Satisfied int
	Failed    int
	// LiveBlocks is the number of live block allocations at the end —
	// the paper's steady state has ≈ 37,500.
	LiveBlocks int
	// ChildStats aggregates expansion events over all child allocators.
	ChildStats masc.AllocStats
}

// event is a pending block request for one child.
type event struct {
	at    time.Time
	child int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, event(x.(event))) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// RunFig2 runs the claim-algorithm simulation and returns the time series.
// The run is deterministic for a given config.
func RunFig2(cfg Fig2Config) Fig2Result {
	if cfg.Strategy == (masc.Strategy{}) {
		cfg.Strategy = masc.DefaultStrategy()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(cfg.Days) * 24 * time.Hour)

	// The trace plane (if the observer carries a tracer) timestamps claim
	// spans from the simulation's event clock, not wall time.
	simNow := start
	cfg.Obs.Tracer().SetNow(func() time.Time { return simNow })

	global := masc.NewLedger(addr.MulticastSpace)
	providers := make([]*masc.SpaceProvider, cfg.TopLevel)
	children := make([]*masc.BlockAllocator, 0, cfg.TopLevel*cfg.ChildrenPer)
	parentOf := make([]int, 0, cfg.TopLevel*cfg.ChildrenPer)
	blockSize := make([]uint64, 0, cfg.TopLevel*cfg.ChildrenPer)
	for i := range providers {
		providers[i] = masc.NewSpaceProvider(cfg.Strategy, global, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)))
		// Scope events to the provider's domain; children share their
		// provider's scope so snapshots stay one row per top-level domain.
		providers[i].SetObserver(cfg.Obs, wire.DomainID(i+1))
		nc := cfg.ChildrenPer
		if cfg.Heterogeneous {
			// 20 %..180 % of the nominal child count, at least 1.
			nc = cfg.ChildrenPer*(20+rng.Intn(161))/100 + 1
		}
		for c := 0; c < nc; c++ {
			ba := masc.NewBlockAllocator(
				cfg.Strategy, providers[i].ChildLedger(),
				rand.New(rand.NewSource(cfg.Seed+int64(len(children))+1000)))
			ba.SetObserver(cfg.Obs, wire.DomainID(i+1))
			children = append(children, ba)
			parentOf = append(parentOf, i)
			bs := cfg.BlockSize
			if cfg.Heterogeneous {
				bs = cfg.BlockSize >> 2 << uint(rng.Intn(4)) // size/4 .. size*2
				if bs == 0 {
					bs = cfg.BlockSize
				}
			}
			blockSize = append(blockSize, bs)
		}
	}

	nextReq := func(now time.Time) time.Time {
		span := cfg.ReqMax - cfg.ReqMin
		return now.Add(cfg.ReqMin + time.Duration(rng.Int63n(int64(span)+1)))
	}

	var h eventHeap
	for c := range children {
		heap.Push(&h, event{at: nextReq(start), child: c})
	}

	res := Fig2Result{}
	nextSample := start.Add(cfg.SampleEvery)
	nextMaint := start.Add(24 * time.Hour)

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.at.After(end) {
			break
		}
		simNow = ev.at
		// Periodic maintenance and sampling catch up to the event time.
		for !nextMaint.After(ev.at) {
			for _, p := range providers {
				p.Tick(nextMaint)
				p.ShedIdle()
			}
			nextMaint = nextMaint.Add(24 * time.Hour)
		}
		for !nextSample.After(ev.at) {
			res.Samples = append(res.Samples, sampleFig2(nextSample.Sub(start), providers, children, parentOf, nextSample))
			nextSample = nextSample.Add(cfg.SampleEvery)
		}

		child := children[ev.child]
		parent := providers[parentOf[ev.child]]
		bs := blockSize[ev.child]
		if _, ok := child.Request(bs, cfg.BlockLife, ev.at); ok {
			res.Satisfied++
		} else {
			// The child could not expand within the parent's space: the
			// parent claims more (possibly from 224/4) and the child
			// retries — the paper's bottom-up demand propagation (§4.3.1).
			need := child.Demand() + bs
			parent.EnsureRoom(need, ev.at)
			if _, ok := child.Request(bs, cfg.BlockLife, ev.at); ok {
				res.Satisfied++
			} else {
				res.Failed++
			}
		}
		heap.Push(&h, event{at: nextReq(ev.at), child: ev.child})
	}

	for i, c := range children {
		c.Tick(end)
		res.LiveBlocks += int(c.Demand() / blockSize[i])
		res.ChildStats.Doublings += c.Stats.Doublings
		res.ChildStats.ExtraClaims += c.Stats.ExtraClaims
		res.ChildStats.Replacements += c.Stats.Replacements
		res.ChildStats.Failures += c.Stats.Failures
		res.ChildStats.Releases += c.Stats.Releases
	}
	return res
}

// sampleFig2 computes one time-series point.
func sampleFig2(elapsed time.Duration, providers []*masc.SpaceProvider, children []*masc.BlockAllocator, parentOf []int, now time.Time) Fig2Sample {
	var demand, claimed uint64
	for _, c := range children {
		c.Tick(now)
		demand += c.Demand()
	}
	// Globally advertised prefixes: every top-level domain's aggregated
	// advertisement.
	global := 0
	childPrefixes := make([]int, len(providers)) // per provider: Σ child claims
	for _, p := range providers {
		global += len(p.AdvertisedPrefixes())
		claimed += p.Capacity()
	}
	perChildCount := make([]int, len(children))
	for i, c := range children {
		perChildCount[i] = len(c.Holdings())
		childPrefixes[parentOf[i]] += perChildCount[i]
	}

	// G-RIB sizes: top-level domain = global + its children's prefixes;
	// child domain = global + its siblings' prefixes.
	sum, max, count := 0, 0, 0
	note := func(v int) {
		sum += v
		count++
		if v > max {
			max = v
		}
	}
	for pi := range providers {
		note(global + childPrefixes[pi])
	}
	for i := range children {
		note(global + childPrefixes[parentOf[i]] - perChildCount[i])
	}

	s := Fig2Sample{
		Day:            elapsed.Hours() / 24,
		GRIBAvg:        float64(sum) / float64(count),
		GRIBMax:        max,
		GlobalPrefixes: global,
		Demand:         demand,
		Claimed:        claimed,
	}
	if claimed > 0 {
		s.Utilization = float64(demand) / float64(claimed)
	}
	return s
}
