package experiments

import (
	"testing"
)

// scaledFig2 returns a small config that runs in well under a second.
func scaledFig2() Fig2Config {
	cfg := DefaultFig2Config()
	cfg.TopLevel = 8
	cfg.ChildrenPer = 8
	cfg.Days = 150
	return cfg
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	res := RunFig2(scaledFig2())
	if len(res.Samples) < 100 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.Satisfied == 0 {
		t.Fatal("no requests satisfied")
	}
	// Failures must be a negligible fraction of requests.
	if float64(res.Failed) > 0.01*float64(res.Satisfied) {
		t.Fatalf("failed=%d vs satisfied=%d", res.Failed, res.Satisfied)
	}
	// Steady state (after day 60): utilization converges near the paper's
	// ~50 % (two-level hierarchy with 75 % per-level target).
	var uSum float64
	var n int
	for _, s := range res.Samples {
		if s.Day > 60 {
			uSum += s.Utilization
			n++
		}
	}
	avg := uSum / float64(n)
	if avg < 0.40 || avg > 0.70 {
		t.Fatalf("steady-state utilization = %.3f, want ≈0.5", avg)
	}
	// Startup transient: the G-RIB peaks early then declines (paper: "the
	// G-RIB size then reduces rapidly as prefixes are recycled").
	peak, peakDay := 0.0, 0.0
	for _, s := range res.Samples {
		if s.GRIBAvg > peak {
			peak, peakDay = s.GRIBAvg, s.Day
		}
	}
	last := res.Samples[len(res.Samples)-1]
	if peakDay > 80 {
		t.Fatalf("G-RIB peak at day %.0f, want early transient", peakDay)
	}
	if last.GRIBAvg >= peak {
		t.Fatalf("G-RIB did not decline after the transient: peak %.1f, final %.1f", peak, last.GRIBAvg)
	}
	// Aggregation quality: in steady state, far fewer G-RIB routes than
	// live blocks.
	if float64(last.GRIBAvg) > float64(res.LiveBlocks)/3 {
		t.Fatalf("aggregation too weak: G-RIB %.1f vs %d live blocks", last.GRIBAvg, res.LiveBlocks)
	}
	// The expected number of live blocks: each child holds on average
	// lifetime/meanInterarrival = 720h/48h = 15 blocks.
	children := 8 * 8
	want := float64(children) * 15
	got := float64(res.LiveBlocks)
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("live blocks = %.0f, want ≈%.0f", got, want)
	}
}

func TestFig2Deterministic(t *testing.T) {
	cfg := scaledFig2()
	cfg.Days = 50
	a := RunFig2(cfg)
	b := RunFig2(cfg)
	if a.Satisfied != b.Satisfied || a.Failed != b.Failed || len(a.Samples) != len(b.Samples) {
		t.Fatal("same config must reproduce identical results")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestFig2SeedChangesOutcome(t *testing.T) {
	cfg := scaledFig2()
	cfg.Days = 50
	a := RunFig2(cfg)
	cfg.Seed++
	b := RunFig2(cfg)
	if a.Satisfied == b.Satisfied && a.Samples[len(a.Samples)-1] == b.Samples[len(b.Samples)-1] {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestFig2NoLifetimesLeak(t *testing.T) {
	// After the run ends plus one lifetime with no requests, all blocks
	// expire; claimed space persists only as long as providers hold it.
	cfg := scaledFig2()
	cfg.Days = 60
	res := RunFig2(cfg)
	_ = res
	// (Block expiry during the run is already covered by utilization
	// staying near 50%: without expiry it would keep climbing toward 75%.)
	var first, last Fig2Sample
	for _, s := range res.Samples {
		if s.Day > 40 && first.Day == 0 {
			first = s
		}
		last = s
	}
	if last.Demand > 2*first.Demand {
		t.Fatalf("demand kept growing (%d → %d): block expiry broken", first.Demand, last.Demand)
	}
}

func scaledFig4() Fig4Config {
	cfg := DefaultFig4Config()
	cfg.Domains = 600
	cfg.ExtraPeering = 80
	cfg.GroupSizes = []int{1, 5, 20, 100, 300}
	cfg.Trials = 4
	return cfg
}

func TestFig4OrderingMatchesPaper(t *testing.T) {
	pts := RunFig4(scaledFig4())
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts[1:] { // skip size 1 (single receiver, degenerate)
		if p.UniAvg < p.BidirAvg {
			t.Fatalf("unidirectional (%.2f) beat bidirectional (%.2f) at %d receivers",
				p.UniAvg, p.BidirAvg, p.Receivers)
		}
		// Hybrid tracks bidirectional closely (the paper's curves nearly
		// overlap). A small positive gap is possible per-sample: a branch
		// can attach at a domain that is tree-farther than the member
		// itself, so the averages may cross by a hair.
		if p.BidirAvg < p.HybridAvg-0.01 {
			t.Fatalf("bidirectional (%.2f) beat hybrid (%.2f) at %d receivers",
				p.BidirAvg, p.HybridAvg, p.Receivers)
		}
		if p.HybridAvg < 1.0 {
			t.Fatalf("hybrid ratio %.2f below the shortest-path bound", p.HybridAvg)
		}
		// The paper's bands: unidirectional ≈ 2×, bidirectional well
		// under it. Allow generous slack for the synthetic topology.
		if p.UniAvg < 1.3 || p.UniAvg > 4 {
			t.Fatalf("unidirectional average %.2f out of band at %d receivers", p.UniAvg, p.Receivers)
		}
		if p.BidirAvg > 2.0 {
			t.Fatalf("bidirectional average %.2f out of band", p.BidirAvg)
		}
	}
	// Tree footprint grows with membership.
	if pts[4].TreeSize <= pts[1].TreeSize {
		t.Fatal("tree size should grow with receivers")
	}
}

func TestFig4RandomRootAblationHurts(t *testing.T) {
	cfg := scaledFig4()
	base := RunFig4(cfg)
	cfg.RandomRoot = true
	abl := RunFig4(cfg)
	// Averaged over the larger group sizes, initiator rooting should beat
	// (or at worst match) random third-party rooting.
	var baseSum, ablSum float64
	for i := 2; i < len(base); i++ {
		baseSum += base[i].BidirAvg
		ablSum += abl[i].BidirAvg
	}
	if ablSum < baseSum*0.95 {
		t.Fatalf("random root (%.2f) clearly beat initiator root (%.2f)", ablSum, baseSum)
	}
}

func TestFig4SingleReceiverBidirIsShortestPath(t *testing.T) {
	// With one receiver and the root at that receiver, the bidirectional
	// path is exactly the shortest path (§5.1's root-placement argument).
	cfg := scaledFig4()
	cfg.GroupSizes = []int{1}
	pts := RunFig4(cfg)
	if pts[0].BidirAvg != 1.0 {
		t.Fatalf("single-receiver bidir avg = %.3f, want 1.0", pts[0].BidirAvg)
	}
}

func TestFig4Deterministic(t *testing.T) {
	cfg := scaledFig4()
	cfg.GroupSizes = []int{20}
	a := RunFig4(cfg)
	b := RunFig4(cfg)
	if a[0] != b[0] {
		t.Fatal("fig4 must be deterministic")
	}
}

func BenchmarkFig2Scaled(b *testing.B) {
	cfg := scaledFig2()
	cfg.Days = 60
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunFig2(cfg)
	}
}

func BenchmarkFig4Scaled(b *testing.B) {
	cfg := scaledFig4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RunFig4(cfg)
	}
}

func TestFig2HeterogeneousSimilarResults(t *testing.T) {
	// The paper: "We also examined more heterogeneous topologies with
	// similar results." Variable children per provider and variable block
	// sizes must keep utilization in the same band and the G-RIB shape.
	cfg := scaledFig2()
	cfg.Heterogeneous = true
	res := RunFig2(cfg)
	if res.Satisfied == 0 {
		t.Fatal("nothing satisfied")
	}
	if float64(res.Failed) > 0.02*float64(res.Satisfied) {
		t.Fatalf("failures %d vs %d", res.Failed, res.Satisfied)
	}
	var uSum float64
	var n int
	for _, s := range res.Samples {
		if s.Day > 60 {
			uSum += s.Utilization
			n++
		}
	}
	avg := uSum / float64(n)
	if avg < 0.35 || avg > 0.75 {
		t.Fatalf("heterogeneous utilization = %.3f, want similar to ~0.5", avg)
	}
	// The G-RIB still declines after the startup transient.
	peak, last := 0.0, res.Samples[len(res.Samples)-1].GRIBAvg
	for _, s := range res.Samples {
		if s.GRIBAvg > peak {
			peak = s.GRIBAvg
		}
	}
	if last >= peak {
		t.Fatal("heterogeneous G-RIB never declined")
	}
}

func TestFig2HeterogeneousDeterministic(t *testing.T) {
	cfg := scaledFig2()
	cfg.Heterogeneous = true
	cfg.Days = 40
	a := RunFig2(cfg)
	b := RunFig2(cfg)
	if a.Satisfied != b.Satisfied || a.LiveBlocks != b.LiveBlocks {
		t.Fatal("heterogeneous run must be deterministic")
	}
}
