package experiments

import (
	"math"
	"math/rand"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/harness"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/trees"
)

// Fig4Config parameterizes the tree-quality comparison of §5.4: "Our
// topology of 3326 nodes was derived from a dump of the BGP routing tables
// ... We studied the variation in path length from a source selected
// randomly to all the receivers of the group as the group size was
// increased from 1 to 1000."
//
// The original BGP-dump topology is unavailable; the synthetic ASGraph
// generator stands in (see DESIGN.md §2).
type Fig4Config struct {
	Domains      int // paper: 3326
	ExtraPeering int // extra peering links beyond the provider tree
	Seed         int64
	// GroupSizes lists the receiver counts to sample (the paper's x axis,
	// 1..1000).
	GroupSizes []int
	// Trials is the number of (source, receiver-set) draws per size.
	Trials int
	// RandomRoot forces the bidirectional tree's root to a random domain
	// instead of the group initiator's domain — the root-placement
	// ablation (§5.1 argues initiator rooting; this measures the cost of
	// getting it wrong).
	RandomRoot bool
	// Obs observes the tree construction and sampling: one bgmp.join per
	// receiver attached, one bgmp.prune per receiver at trial teardown,
	// and data.forwarded/data.delivered for the sampled paths. Nil
	// disables observation.
	Obs *obs.Observer
	// FaultLinks removes that many randomly chosen links (those whose
	// removal keeps the graph connected) before the sweep, degrading the
	// topology the trees must route over.
	FaultLinks int
	// FaultLoss is a per-hop data loss probability applied to each sampled
	// bidirectional-tree delivery; Fig4Point.DeliveryRatio reports the
	// surviving fraction. Zero disables loss (ratio 1.0).
	FaultLoss float64
	// Parallel bounds the worker pool fanning the per-size sweeps out
	// (<= 1: serial). Each group size draws from its own rng derived from
	// (Seed, size index), so results are identical at any Parallel value.
	Parallel int
}

// DefaultFig4Config returns parameters matching the paper's setup.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Domains:      3326,
		ExtraPeering: 350,
		Seed:         1998,
		GroupSizes:   []int{1, 2, 5, 10, 20, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
		Trials:       5,
	}
}

// Fig4Point is one x-axis point of Figure 4: path-length overhead ratios
// relative to the shortest-path tree (SPT = 1.0), averaged over trials.
type Fig4Point struct {
	Receivers int
	UniAvg    float64
	UniMax    float64
	BidirAvg  float64
	BidirMax  float64
	HybridAvg float64
	HybridMax float64
	// TreeSize is the mean number of on-tree domains (forwarding-state
	// footprint).
	TreeSize float64
	// DeliveryRatio is the fraction of sampled bidirectional-tree
	// deliveries surviving Fig4Config.FaultLoss (1.0 when no loss is
	// configured).
	DeliveryRatio float64
}

// RunFig4 runs the path-length comparison and returns one point per group
// size. Deterministic for a given config: each group size is one harness
// trial with its own (Seed, size index)-derived rng, so the sweep's
// results do not depend on Parallel or on scheduling. The shared topology
// is built once and only read concurrently.
func RunFig4(cfg Fig4Config) []Fig4Point {
	g := topology.ASGraph(cfg.Domains, cfg.ExtraPeering, cfg.Seed)
	if cfg.FaultLinks > 0 {
		degradeTopology(g, cfg.FaultLinks, cfg.Seed+13)
	}
	par := cfg.Parallel
	if par <= 0 {
		par = 1
	}
	results, _ := harness.Run(harness.Config{
		Trials:   len(cfg.GroupSizes),
		Parallel: par,
		Seed:     cfg.Seed + 7,
		Run: func(t harness.Trial) (any, error) {
			return fig4Size(cfg, g, cfg.GroupSizes[t.Index], t.Rng), nil
		},
	})
	out := make([]Fig4Point, 0, len(cfg.GroupSizes))
	for _, r := range results {
		out = append(out, r.Value.(Fig4Point))
	}
	return out
}

// fig4Size measures one x-axis point (one group size) of Figure 4 with the
// given per-size rng.
func fig4Size(cfg Fig4Config, g *topology.Graph, size int, rng *rand.Rand) Fig4Point {
	pt := Fig4Point{Receivers: size, DeliveryRatio: 1}
	var uniSum, bidirSum, hybridSum, treeSum float64
	samples, survived := 0, 0
	for trial := 0; trial < cfg.Trials; trial++ {
		receivers := pickDistinct(rng, cfg.Domains, size)
		src := topology.DomainID(rng.Intn(cfg.Domains))

		// BGMP root: the group initiator's domain — the first
		// receiver, which got the group address from its local MAAS
		// (§5.1). The ablation forces a random third-party root.
		root := receivers[0]
		if cfg.RandomRoot {
			root = topology.DomainID(rng.Intn(cfg.Domains))
		}
		bidirTree := trees.NewShared(g, root, receivers)

		// PIM-SM RP: hash the group over all domains — effectively a
		// random, often third-party, domain (§5.1).
		group := rng.Uint32()
		rp := migp.HashGroup(addrOf(group), g.NumDomains())
		uniTree := trees.NewShared(g, rp, receivers)

		// One span per sampled group: the tree build plus its delivery
		// sampling (timestamps stay zero — Fig 4 has no event clock — but
		// the span forest still maps groups to their join/prune events).
		sp := cfg.Obs.Tracer().Begin(obs.SpanMemberJoin, obs.Event{
			Group: addrOf(group), Count: uint64(len(receivers))})
		if cfg.Obs != nil {
			cfg.Obs.Emit(obs.Event{Kind: obs.BGMPJoin,
				Group: addrOf(group), Count: uint64(len(receivers))})
		}
		distSrc, parentSrc := g.BFS(src)
		treeSum += float64(bidirTree.Size())
		var delivered, hops uint64
		for _, m := range receivers {
			if m == src || distSrc[m] <= 0 {
				continue
			}
			spt := float64(distSrc[m])
			uni := uniTree.UniLen(distSrc, m)
			bidir := bidirTree.BidirLen(src, m)
			hybrid := bidirTree.HybridLen(src, distSrc, parentSrc, m)
			if uni < 0 || bidir < 0 || hybrid < 0 {
				continue
			}
			samples++
			// Per-hop loss on the bidirectional delivery path; the
			// draw only happens under fault so clean runs keep their
			// rng sequence (and their recorded bands) unchanged. Loss
			// affects delivery accounting only — path-length overheads
			// are properties of the tree, not of the packet's luck.
			if cfg.FaultLoss == 0 || rng.Float64() < math.Pow(1-cfg.FaultLoss, float64(bidir)) {
				survived++
				delivered++
				hops += uint64(bidir)
			}
			ru, rb, rh := float64(uni)/spt, float64(bidir)/spt, float64(hybrid)/spt
			uniSum += ru
			bidirSum += rb
			hybridSum += rh
			if ru > pt.UniMax {
				pt.UniMax = ru
			}
			if rb > pt.BidirMax {
				pt.BidirMax = rb
			}
			if rh > pt.HybridMax {
				pt.HybridMax = rh
			}
		}
		if cfg.Obs != nil {
			if hops > 0 {
				cfg.Obs.Emit(obs.Event{Kind: obs.DataForwarded,
					Group: addrOf(group), Count: hops})
			}
			if delivered > 0 {
				cfg.Obs.Emit(obs.Event{Kind: obs.DataDelivered,
					Group: addrOf(group), Count: delivered})
			}
			// Trial teardown: every receiver leaves the tree.
			cfg.Obs.Emit(obs.Event{Kind: obs.BGMPPrune,
				Group: addrOf(group), Count: uint64(len(receivers))})
		}
		sp.End()
	}
	if samples > 0 {
		pt.UniAvg = uniSum / float64(samples)
		pt.BidirAvg = bidirSum / float64(samples)
		pt.HybridAvg = hybridSum / float64(samples)
		pt.DeliveryRatio = float64(survived) / float64(samples)
	}
	pt.TreeSize = treeSum / float64(cfg.Trials)
	return pt
}

// degradeTopology removes up to n randomly chosen links whose removal
// keeps the graph connected (a disconnected receiver would measure the
// routing protocol's absence, not its repair).
func degradeTopology(g *topology.Graph, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	type link struct{ a, b topology.DomainID }
	var links []link
	for d := topology.DomainID(0); int(d) < g.NumDomains(); d++ {
		for _, e := range g.Neighbors(d) {
			if d < e.To {
				links = append(links, link{d, e.To})
			}
		}
	}
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	removed := 0
	for _, l := range links {
		if removed >= n {
			break
		}
		provAB, provBA := g.IsProviderOf(l.a, l.b), g.IsProviderOf(l.b, l.a)
		g.RemoveLink(l.a, l.b)
		if !g.Connected() {
			// The link was a bridge; put it back with its old relation.
			switch {
			case provAB:
				g.AddProviderLink(l.a, l.b)
			case provBA:
				g.AddProviderLink(l.b, l.a)
			default:
				g.AddLink(l.a, l.b)
			}
			continue
		}
		removed++
	}
}

// pickDistinct draws k distinct domain IDs.
func pickDistinct(rng *rand.Rand, n, k int) []topology.DomainID {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]topology.DomainID, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, topology.DomainID(v))
		}
	}
	return out
}

// addrOf widens a random value into a multicast group address for RP
// hashing.
func addrOf(v uint32) addr.Addr { return addr.Addr(0xe0000000 | v&0x0fffffff) }
