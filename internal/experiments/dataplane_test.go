package experiments

import (
	"reflect"
	"testing"

	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/obs"
)

func TestDataPlaneComparisonDeterministic(t *testing.T) {
	cfg := scaledChurn()
	a, b := RunDataPlane(cfg), RunDataPlane(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	if c := RunDataPlane(cfg); reflect.DeepEqual(c, a) {
		t.Fatal("different seed did not perturb the comparison")
	}
}

func TestDataPlaneSharedRowMatchesChurn(t *testing.T) {
	// The comparison's shared-tree row and Churn section are the same
	// workload RunChurn measures — results and obs stream included — so
	// the dataplane-compare suite extends scale-churn rather than forking
	// it.
	cfg := scaledChurn()
	obChurn, obCmp := obs.NewObserver(), obs.NewObserver()

	cfg.Obs = obChurn
	churn := RunChurn(cfg)
	cfg.Obs = obCmp
	cmp := RunDataPlane(cfg)

	if cmp.Churn != churn {
		t.Fatalf("Churn section diverged from RunChurn:\n%+v\n%+v", cmp.Churn, churn)
	}
	if s1, s2 := obChurn.Snapshot().String(), obCmp.Snapshot().String(); s1 != s2 {
		t.Fatalf("obs streams diverged:\n--- RunChurn\n%s--- RunDataPlane\n%s", s1, s2)
	}
	st, ok := cmp.Cost(dataplane.SharedTreeName)
	if !ok {
		t.Fatal("no shared-tree row")
	}
	if st.ForwardHops != churn.ForwardHops || st.Delivered != churn.Delivered {
		t.Fatalf("shared-tree row %+v does not match churn result %+v", st, churn)
	}
}

func TestDataPlaneBackendTradeoffs(t *testing.T) {
	cfg := scaledChurn()
	res := RunDataPlane(cfg)
	if len(res.Backends) != len(dataplane.Names()) {
		t.Fatalf("got %d backend rows, want %d", len(res.Backends), len(dataplane.Names()))
	}
	st, _ := res.Cost(dataplane.SharedTreeName)
	bier, _ := res.Cost(dataplane.BIERName)
	me, _ := res.Cost(dataplane.MapEncapName)

	// Delivery equivalence: every backend reaches exactly the member set.
	if st.Delivered == 0 || bier.Delivered != st.Delivered || me.Delivered != st.Delivered {
		t.Fatalf("deliveries diverge: shared=%d bier=%d map-encap=%d",
			st.Delivered, bier.Delivered, me.Delivered)
	}

	// State: the shared tree pays per-group entries everywhere; the
	// stateless backends pay zero group entries (none at transit, by
	// design) and overlay records at the roots instead.
	if st.GroupEntries == 0 || st.TransitEntries == 0 || st.OverlayEntries != 0 {
		t.Fatalf("shared-tree state row wrong: %+v", st)
	}
	for _, c := range []BackendCost{bier, me} {
		if c.GroupEntries != 0 || c.TransitEntries != 0 {
			t.Fatalf("%s holds per-group entries: %+v", c.Backend, c)
		}
		if c.OverlayEntries != res.Churn.MembersFinal {
			t.Fatalf("%s overlay entries = %d, want members %d",
				c.Backend, c.OverlayEntries, res.Churn.MembersFinal)
		}
	}

	// Hops: the shared tree attaches short of the root, BIER detours via
	// the root but shares fan-out links, map-and-encap shares nothing.
	if !(st.ForwardHops <= bier.ForwardHops && bier.ForwardHops <= me.ForwardHops) {
		t.Fatalf("hop ordering violated: shared=%d bier=%d map-encap=%d",
			st.ForwardHops, bier.ForwardHops, me.ForwardHops)
	}
	// Headers: native forwarding pays none; both stateless planes do.
	if st.HeaderBytes != 0 || st.Encaps != 0 {
		t.Fatalf("shared tree spent headers: %+v", st)
	}
	if bier.HeaderBytes == 0 || me.HeaderBytes == 0 {
		t.Fatalf("stateless planes spent no headers: bier=%+v map-encap=%+v", bier, me)
	}
	// Stretch: root detours can only lengthen delivery paths, and BIER
	// and map-and-encap traverse the same src→root→member routes.
	if st.MeanStretch < 1 || bier.MeanStretch < st.MeanStretch {
		t.Fatalf("stretch ordering violated: shared=%.3f bier=%.3f",
			st.MeanStretch, bier.MeanStretch)
	}
	if bier.MeanStretch != me.MeanStretch || bier.MaxStretch != me.MaxStretch {
		t.Fatalf("bier and map-encap stretch diverge: %.3f/%.3f vs %.3f/%.3f",
			bier.MeanStretch, bier.MaxStretch, me.MeanStretch, me.MaxStretch)
	}
}

func TestChurnBackendModels(t *testing.T) {
	// RunChurn with a backend set swaps only the forwarding-phase cost
	// model: the membership, state, and G-RIB outcome — and the member
	// deliveries — are identical for every backend.
	base := RunChurn(scaledChurn())
	for _, backend := range []string{dataplane.BIERName, dataplane.MapEncapName} {
		cfg := scaledChurn()
		cfg.DataPlane = backend
		res := RunChurn(cfg)
		if res.Joins != base.Joins || res.Leaves != base.Leaves ||
			res.GRIBSize != base.GRIBSize || res.ForwardingEntries != base.ForwardingEntries ||
			res.MembersFinal != base.MembersFinal {
			t.Fatalf("%s perturbed the control plane:\n%+v\n%+v", backend, res, base)
		}
		if res.Delivered != base.Delivered {
			t.Fatalf("%s delivered %d, want %d", backend, res.Delivered, base.Delivered)
		}
		if res.HeaderBytes == 0 || res.Encaps == 0 {
			t.Fatalf("%s spent no headers: %+v", backend, res)
		}
		if res.ForwardHops < base.ForwardHops {
			t.Fatalf("%s hops %d below shared-tree %d", backend, res.ForwardHops, base.ForwardHops)
		}
	}
}
