package dataplane

import (
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// overlay is the machinery shared by the two stateless backends. Both keep
// zero per-group forwarding entries at transit domains: membership lives
// in the root domain's Store (fed by MemberReport messages that transit
// routers relay without recording), and per-packet headers — a unicast
// tunnel address or a BIER bitstring — carry the forwarding decision.
// The backends differ only in how the root fans out: BIER stamps one
// bitstring and lets transit routers split it per next hop; map-and-encap
// originates one tunnel per member domain.
type overlay struct {
	cfg  Config
	mode string // BIERName or MapEncapName

	mu sync.Mutex
	// pending counts interior joins awaiting a G-RIB route toward the
	// root, flushed by RouteChanged — the analogue of bgmp's orphans.
	// guarded by mu
	pending map[addr.Addr]int
	stats   Stats // guarded by mu
}

// NewBIER returns the BIER-style bitstring backend.
func NewBIER(cfg Config) Backend {
	return &overlay{cfg: cfg, mode: BIERName, pending: map[addr.Addr]int{}}
}

// NewMapEncap returns the map-and-encap backend.
func NewMapEncap(cfg Config) Backend {
	return &overlay{cfg: cfg, mode: MapEncapName, pending: map[addr.Addr]int{}}
}

func (o *overlay) Name() string { return o.mode }

// HasForwardingState reports false always: holding no per-group forwarding
// entries is the point of these backends. (Root-domain overlay membership
// lives in the Store, not in the routers.)
func (o *overlay) HasForwardingState(g addr.Addr) bool { return false }

// Reset models a forwarding-process crash. Pending joins and counters are
// volatile; the Store is overlay state and survives, which is exactly the
// crash-resilience argument for moving membership out of routers.
func (o *overlay) Reset() {
	o.mu.Lock()
	o.pending = map[addr.Addr]int{}
	o.stats = Stats{}
	o.mu.Unlock()
}

func (o *overlay) Stats() Stats {
	o.mu.Lock()
	st := o.stats
	o.mu.Unlock()
	st.GroupEntries = 0
	st.OverlayEntries = o.cfg.Store.Entries()
	return st
}

// rootFor resolves g's G-RIB entry and reports whether this router sits in
// the group's root domain, using the same rule as bgmp.parentForGroup so
// exactly one border of the source domain exports each packet.
func (o *overlay) rootFor(g addr.Addr) (bgp.Entry, bool /*inRoot*/, bool /*ok*/) {
	ent, ok := o.cfg.LookupGroup(g)
	if !ok {
		return bgp.Entry{}, false, false
	}
	inRoot := wire.DomainID(ent.Route.Origin) == o.cfg.Domain || ent.Local || ent.NextHop == o.cfg.Router
	return ent, inRoot, true
}

// ---------------------------------------------------------- control plane

// LocalJoin reports the domain's membership toward the group's root. With
// no route yet, the join is parked and flushed by RouteChanged.
func (o *overlay) LocalJoin(g addr.Addr) {
	if !o.report(g, false) {
		o.mu.Lock()
		o.pending[g]++
		o.mu.Unlock()
	}
}

// LocalLeave retracts the membership.
func (o *overlay) LocalLeave(g addr.Addr) {
	o.mu.Lock()
	if o.pending[g] > 0 {
		o.pending[g]--
		if o.pending[g] == 0 {
			delete(o.pending, g)
		}
		o.mu.Unlock()
		return
	}
	o.mu.Unlock()
	o.report(g, true)
}

// report sends (or locally records) one membership assertion/retraction,
// returning false when no G-RIB route exists yet.
func (o *overlay) report(g addr.Addr, leave bool) bool {
	ent, inRoot, ok := o.rootFor(g)
	if !ok {
		return false
	}
	if inRoot {
		if leave {
			o.cfg.Store.Remove(g, o.cfg.Domain)
		} else {
			o.cfg.Store.Add(g, o.cfg.Domain)
		}
		return true
	}
	m := &wire.MemberReport{Group: g, Domain: o.cfg.Domain, Leave: leave}
	if o.cfg.Internal(ent.NextHop) {
		o.cfg.MIGP.RelayToBorder(ent.NextHop, m)
	} else {
		o.cfg.SendPeer(ent.NextHop, m)
	}
	return true
}

// HandleControl relays a MemberReport toward the root — statelessly — or
// records it when this router is a root-domain border.
func (o *overlay) HandleControl(src bgmp.Target, msg wire.Message) {
	m, ok := msg.(*wire.MemberReport)
	if !ok {
		return
	}
	ent, inRoot, ok := o.rootFor(m.Group)
	if !ok {
		return // no route toward the root: drop, the member will re-report
	}
	if inRoot {
		if m.Leave {
			o.cfg.Store.Remove(m.Group, m.Domain)
		} else {
			o.cfg.Store.Add(m.Group, m.Domain)
		}
		return
	}
	if o.cfg.Internal(ent.NextHop) {
		o.cfg.MIGP.RelayToBorder(ent.NextHop, msg)
	} else {
		o.cfg.SendPeer(ent.NextHop, msg)
	}
}

// RouteChanged flushes joins that were waiting for a route covered by p.
// The overlay sends fresh MemberReports rather than re-parenting state, so
// ctx is unused here; the reports root their own causality.
func (o *overlay) RouteChanged(p addr.Prefix, ctx wire.TraceContext) {
	o.mu.Lock()
	var flush []addr.Addr
	for g, n := range o.pending {
		if n > 0 && p.Contains(g) {
			flush = append(flush, g)
		}
	}
	sort.Slice(flush, func(i, j int) bool { return flush[i] < flush[j] })
	counts := make([]int, len(flush))
	for i, g := range flush {
		counts[i] = o.pending[g]
	}
	o.mu.Unlock()
	for i, g := range flush {
		for n := 0; n < counts[i]; n++ {
			if !o.report(g, false) {
				return // still no route; keep the rest parked too
			}
			o.mu.Lock()
			o.pending[g]--
			if o.pending[g] == 0 {
				delete(o.pending, g)
			}
			o.mu.Unlock()
		}
	}
}

// ------------------------------------------------------------- data plane

// Deliver dispatches on the packet's headers: bitstring packets and
// tunnels have their own forwarding rules; plain packets are classified by
// where they are relative to the group's root domain.
func (o *overlay) Deliver(src bgmp.Target, d *wire.Data) {
	if d.TTL == 0 {
		return
	}
	switch {
	case len(d.Bits) > 0:
		o.deliverBits(d)
	case d.TunnelTo != 0:
		o.deliverTunnel(d)
	case d.Encap && src.MIGP && src.Router != 0:
		// Interior-RPF handoff from a sibling border: we are the expected
		// entry, inject natively.
		cp := *d
		cp.Encap = false
		o.cfg.MIGP.Inject(&cp)
	default:
		o.deliverPlain(src, d)
	}
}

// deliverPlain handles a packet with no backend header yet: a fresh
// interior-origin packet, or (defensively) a native packet from a peer.
func (o *overlay) deliverPlain(src bgmp.Target, d *wire.Data) {
	ent, inRoot, ok := o.rootFor(d.Group)
	if !ok {
		return // no root known: drop
	}
	interiorOrigin := src.MIGP && src.Router == 0
	if inRoot {
		// Only one border of the root domain may run root replication per
		// packet. For interior-origin packets every border sees a copy;
		// the canonical one is the border holding the originated route.
		if interiorOrigin && !(ent.Local || ent.NextHop == o.cfg.Router) {
			return
		}
		// Interior members (and the source's own domain) already saw the
		// packet natively when it originated here.
		o.rootReplicate(d, !interiorOrigin)
		return
	}
	if interiorOrigin {
		// Only the best exit exports the packet; when the route points at
		// a sibling border the packet is not ours to forward.
		if o.cfg.Internal(ent.NextHop) {
			return
		}
		ta, ok := o.cfg.DomainAddr(wire.DomainID(ent.Route.Origin))
		if !ok {
			return
		}
		cp := *d
		cp.TunnelTo = ta
		o.mu.Lock()
		o.stats.Encaps++
		o.mu.Unlock()
		o.deliverTunnel(&cp)
		return
	}
	// A native packet reached a transit domain (possible transiently when
	// backends are mixed or routes flap): tunnel it toward the root.
	ta, ok := o.cfg.DomainAddr(wire.DomainID(ent.Route.Origin))
	if !ok {
		return
	}
	cp := *d
	cp.TunnelTo = ta
	o.deliverTunnel(&cp)
}

// deliverTunnel forwards or terminates a unicast tunnel. Egress copies
// (root → member, marked Encap) decapsulate where they land; climb copies
// (source → root, unmarked) may land short of the root when the G-RIB
// advertised only an aggregate — MASC ancestors aggregate their children's
// ranges (§4.2), so the tunnel target is re-resolved against this domain's
// more specific route and the climb continues.
func (o *overlay) deliverTunnel(d *wire.Data) {
	ue, ok := o.cfg.LookupUnicast(d.TunnelTo)
	if !ok {
		return
	}
	if wire.DomainID(ue.Route.Origin) == o.cfg.Domain || ue.Local {
		cp := *d
		cp.TunnelTo = 0
		if d.Encap {
			// The root's egress copy reached the member domain.
			o.injectLocal(&cp)
			return
		}
		ent, inRoot, okG := o.rootFor(d.Group)
		if !okG {
			return
		}
		if inRoot {
			o.rootReplicate(&cp, true)
			return
		}
		// Aggregation ancestor: continue toward the specific route's origin.
		ta, okA := o.cfg.DomainAddr(ent.Route.Origin)
		if !okA || ta == d.TunnelTo {
			return // no more specific route: drop
		}
		cp.TunnelTo = ta
		o.deliverTunnel(&cp)
		return
	}
	if o.cfg.Internal(ue.NextHop) {
		o.mu.Lock()
		o.stats.Relays++
		o.mu.Unlock()
		o.cfg.MIGP.RelayToBorder(ue.NextHop, d)
		return
	}
	o.sendPeer(ue.NextHop, d, EncapHeaderBytes)
}

// rootReplicate is the root domain's fan-out: compute the egress member
// set from the overlay store and emit per-backend copies. injectLocally
// controls whether a local membership is served here (false when the
// packet originated in this domain and the interior already has it).
func (o *overlay) rootReplicate(d *wire.Data, injectLocally bool) {
	members := o.cfg.Store.Members(d.Group)
	srcDom, haveSrcDom := o.cfg.SourceDomain(d.Source)
	egress := make([]wire.DomainID, 0, len(members))
	local := false
	for _, m := range members {
		switch {
		case m == o.cfg.Domain:
			local = true
		case haveSrcDom && m == srcDom:
			// The source's own domain delivered natively at origination.
		default:
			egress = append(egress, m)
		}
	}
	if local && injectLocally && !(haveSrcDom && srcDom == o.cfg.Domain) {
		o.injectLocal(d)
	}
	if len(egress) == 0 {
		return
	}
	if o.mode == BIERName {
		cp := *d
		cp.TunnelTo = 0
		cp.Bits = makeBits(egress)
		o.mu.Lock()
		o.stats.Encaps++
		o.mu.Unlock()
		o.forwardBits(&cp)
		return
	}
	for _, m := range egress {
		ta, ok := o.cfg.DomainAddr(m)
		if !ok {
			continue
		}
		cp := *d
		cp.TunnelTo = ta
		cp.Bits = nil
		cp.Encap = true // egress copy: decapsulate where the tunnel lands
		o.mu.Lock()
		o.stats.Encaps++
		o.mu.Unlock()
		o.deliverTunnel(&cp)
	}
}

// deliverBits handles a bitstring packet: serve the local bit, then split
// the remainder across unicast next hops.
func (o *overlay) deliverBits(d *wire.Data) {
	bits := append([]uint64(nil), d.Bits...)
	if clearBit(bits, uint32(o.cfg.Domain)) {
		cp := *d
		cp.Bits = nil
		o.injectLocal(&cp)
	}
	if anyBit(bits) {
		cp := *d
		cp.Bits = bits
		o.forwardBits(&cp)
	}
}

// forwardBits buckets the set bits by unicast next hop and sends one copy
// per bucket, each carrying only the bits that hop serves — the BIER
// forwarding rule, using nothing but the unicast RIB.
func (o *overlay) forwardBits(d *wire.Data) {
	type bucket struct {
		internal bool
		bits     []uint64
	}
	// Sized for the common fan-out: the distinct next hops of one packet
	// are bounded by the router's peer count, typically a handful.
	order := make([]wire.RouterID, 0, 8)
	buckets := make(map[wire.RouterID]*bucket, 8)
	for _, dom := range setBits(d.Bits) {
		ta, ok := o.cfg.DomainAddr(wire.DomainID(dom))
		if !ok {
			continue
		}
		ue, ok := o.cfg.LookupUnicast(ta)
		if !ok {
			continue
		}
		bk := buckets[ue.NextHop]
		if bk == nil {
			bk = &bucket{internal: o.cfg.Internal(ue.NextHop), bits: make([]uint64, len(d.Bits))}
			buckets[ue.NextHop] = bk
			order = append(order, ue.NextHop)
		}
		setBit(bk.bits, dom)
	}
	for _, nh := range order {
		bk := buckets[nh]
		cp := *d
		cp.Bits = trimBits(bk.bits)
		if bk.internal {
			o.mu.Lock()
			o.stats.Relays++
			o.mu.Unlock()
			o.cfg.MIGP.RelayToBorder(nh, &cp)
			continue
		}
		o.sendPeer(nh, &cp, BIERHeaderBytes(len(cp.Bits)))
	}
}

// injectLocal delivers a decapsulated packet to the domain interior,
// falling back to the §5.3 border-to-border encapsulation when interior
// RPF rejects this entry point.
func (o *overlay) injectLocal(d *wire.Data) {
	cp := *d
	cp.Bits, cp.TunnelTo, cp.Encap = nil, 0, false
	if o.cfg.MIGP.Inject(&cp) {
		return
	}
	exp := o.cfg.MIGP.ExpectedEntry(d.Source)
	if exp == 0 || exp == o.cfg.Router {
		return
	}
	enc := cp
	enc.Encap = true
	o.mu.Lock()
	o.stats.Encaps++
	o.mu.Unlock()
	if o.cfg.Obs != nil {
		o.cfg.Obs.Emit(obs.Event{Kind: obs.DataEncap, Domain: o.cfg.Domain,
			Router: o.cfg.Router, Peer: exp, Group: d.Group, Source: d.Source})
	}
	o.cfg.MIGP.RelayToBorder(exp, &enc)
}

// sendPeer emits one copy to an external peer, decrementing the TTL and
// accounting the header cost of this hop.
func (o *overlay) sendPeer(to wire.RouterID, d *wire.Data, headerBytes int) {
	if d.TTL <= 1 {
		return
	}
	cp := *d
	cp.TTL--
	o.mu.Lock()
	o.stats.PeerSends++
	o.stats.HeaderBytes += uint64(headerBytes)
	o.mu.Unlock()
	if o.cfg.Obs != nil {
		o.cfg.Obs.Emit(obs.Event{Kind: obs.DataForwarded, Domain: o.cfg.Domain,
			Router: o.cfg.Router, Peer: to, Group: d.Group, Source: d.Source})
	}
	o.cfg.SendPeer(to, &cp)
}

var (
	_ Backend = (*overlay)(nil)
)
