package dataplane

import (
	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/wire"
)

// sharedTree is the default backend: it delegates to the router's BGMP
// component, whose bidirectional shared trees are the paper's data plane.
type sharedTree struct {
	c *bgmp.Component
}

// NewSharedTree wraps an existing BGMP component as a Backend. The
// component keeps handling its own control plane (joins, prunes, source
// branches); the backend only fronts the data path and lifecycle hooks.
func NewSharedTree(c *bgmp.Component) Backend { return &sharedTree{c: c} }

func (s *sharedTree) Name() string { return SharedTreeName }

func (s *sharedTree) Deliver(src bgmp.Target, d *wire.Data) { s.c.Deliver(src, d) }

// HandleControl is a no-op: shared-tree control traffic (GroupJoin et al.)
// flows through the BGMP component directly, and MemberReport is only
// spoken by the stateless backends.
func (s *sharedTree) HandleControl(src bgmp.Target, msg wire.Message) {}

func (s *sharedTree) LocalJoin(g addr.Addr)  { s.c.LocalJoin(g) }
func (s *sharedTree) LocalLeave(g addr.Addr) { s.c.LocalLeave(g) }

func (s *sharedTree) HasForwardingState(g addr.Addr) bool { return s.c.HasForwardingState(g) }

func (s *sharedTree) RouteChanged(p addr.Prefix, ctx wire.TraceContext) { s.c.RouteChanged(p, ctx) }

func (s *sharedTree) Reset() { s.c.Reset() }

func (s *sharedTree) Stats() Stats {
	groups, srcs, prefixes := s.c.StateSize()
	return Stats{GroupEntries: groups + srcs + prefixes}
}

var _ Backend = (*sharedTree)(nil)
