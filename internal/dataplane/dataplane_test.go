package dataplane

import (
	"reflect"
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

func TestNames(t *testing.T) {
	want := []string{"shared-tree", "bier", "map-encap"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false", n)
		}
	}
	for _, n := range []string{"", "bgmp", "BIER", "shared"} {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true", n)
		}
	}
}

func TestBitstringHelpers(t *testing.T) {
	b := makeBits([]wire.DomainID{3, 64, 130})
	if len(b) != 3 {
		t.Fatalf("makeBits words = %d, want 3", len(b))
	}
	if got, want := setBits(b), []uint32{3, 64, 130}; !reflect.DeepEqual(got, want) {
		t.Errorf("setBits = %v, want %v", got, want)
	}
	if !clearBit(b, 64) || clearBit(b, 64) {
		t.Error("clearBit must report and clear exactly once")
	}
	if clearBit(b, 200) {
		t.Error("clearBit out of range must report false")
	}
	if got, want := setBits(b), []uint32{3, 130}; !reflect.DeepEqual(got, want) {
		t.Errorf("after clear, setBits = %v, want %v", got, want)
	}
	clearBit(b, 130)
	if got := trimBits(b); len(got) != 1 {
		t.Errorf("trimBits kept %d words, want 1", len(got))
	}
	clearBit(b, 3)
	if anyBit(b) {
		t.Error("anyBit on empty string")
	}
	if got := trimBits(b); len(got) != 0 {
		t.Errorf("trimBits on empty kept %d words", len(got))
	}
	// setBit must not grow the string (the caller sizes it).
	s := make([]uint64, 1)
	setBit(s, 70)
	if anyBit(s) {
		t.Error("setBit out of range must be a no-op")
	}
}

func TestStoreRefcounts(t *testing.T) {
	g := addr.MakeAddr(224, 1, 0, 1)
	g2 := addr.MakeAddr(224, 1, 0, 2)
	s := NewStore()
	s.Add(g, 5)
	s.Add(g, 3)
	s.Add(g, 5)
	s.Add(g2, 7)
	if got, want := s.Members(g), []wire.DomainID{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
	if s.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", s.Entries())
	}
	s.Remove(g, 5)
	if got, want := s.Members(g), []wire.DomainID{3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("refcounted Remove dropped the member early: %v, want %v", got, want)
	}
	s.Remove(g, 5)
	s.Remove(g, 3)
	if got := s.Members(g); len(got) != 0 {
		t.Errorf("Members after removal = %v, want empty", got)
	}
	s.Remove(g, 99) // unknown member: no-op
	if s.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", s.Entries())
	}
}

func TestHeaderCostModel(t *testing.T) {
	if BIERHeaderBytes(0) != BIERFixedHeaderBytes {
		t.Error("empty bitstring must cost only the fixed header")
	}
	if BIERHeaderBytes(4) != BIERFixedHeaderBytes+32 {
		t.Errorf("BIERHeaderBytes(4) = %d", BIERHeaderBytes(4))
	}
}
