// Package dataplane abstracts the multicast forwarding plane of a border
// router behind the Backend interface, so the repro can compare the
// paper's BGMP shared trees against the data planes the later literature
// proposes for the same problem:
//
//   - "shared-tree" (default): BGMP bidirectional shared trees — per-group
//     (*,G)/(S,G) state at every on-tree router (internal/bgmp).
//   - "bier": BIER-style bitstring forwarding — the group's root domain
//     stamps a per-packet domain bitmask computed from overlay membership;
//     transit domains forward per set bit using only unicast routes and
//     keep zero per-group forwarding entries.
//   - "map-encap": map-and-encap — senders' domains tunnel packets to the
//     MASC-derived root domain (the "map" is the G-RIB origin), which
//     decapsulates and re-tunnels one copy per member domain.
//
// All three backends share the control-plane substrate (BGP-lite RIBs,
// MASC allocation) and the MIGP interior contract; they differ only in
// where group state lives and what per-packet headers they spend. The
// BIER and map-and-encap backends move membership out of routers into a
// per-domain overlay Store fed by MemberReport messages, mirroring BIER's
// argument that multicast state belongs in the routing underlay/overlay
// rather than in per-hop tree entries.
package dataplane

import (
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Backend names, the values accepted by core's Config.DataPlane and the
// cmds' -backend flags.
const (
	SharedTreeName = "shared-tree"
	BIERName       = "bier"
	MapEncapName   = "map-encap"
)

// Names returns the valid backend names in presentation order.
func Names() []string { return []string{SharedTreeName, BIERName, MapEncapName} }

// ValidName reports whether name identifies a backend.
func ValidName(name string) bool {
	return name == SharedTreeName || name == BIERName || name == MapEncapName
}

// Per-packet header cost model, used by the Stats counters and the
// model-level comparison in internal/experiments.
const (
	// EncapHeaderBytes is the outer unicast header spent per inter-domain
	// hop of a map-and-encap tunnel (an IP-in-IP outer header plus the
	// tunnel endpoint fields our wire format carries).
	EncapHeaderBytes = 28
	// BIERFixedHeaderBytes is the bitstring-independent part of a BIER
	// header (BIFT id, entropy, protocol fields).
	BIERFixedHeaderBytes = 12
)

// BIERHeaderBytes returns the per-hop header cost of a bitstring of the
// given word count.
func BIERHeaderBytes(words int) int { return BIERFixedHeaderBytes + 8*words }

// Backend is the forwarding plane of one border router. Exactly one
// backend runs per router; core selects it from Config.DataPlane.
//
// Deliver is the single data ingress: src is bgmp.MIGPTarget for
// interior-origin packets, bgmp.MIGPToward(r) for packets relayed from
// sibling border r, and bgmp.PeerTarget(r) for packets from external peer
// r. Implementations must be safe for concurrent use and deterministic:
// fan-out order may not depend on map iteration.
type Backend interface {
	// Name returns the backend's registered name.
	Name() string
	// Deliver forwards one multicast packet that arrived from src.
	Deliver(src bgmp.Target, d *wire.Data)
	// HandleControl processes a backend-specific control message (today:
	// *wire.MemberReport). Messages of other types are ignored.
	HandleControl(src bgmp.Target, msg wire.Message)
	// LocalJoin reports that the domain interior gained its first member
	// of g and this router is the domain's best exit for g.
	LocalJoin(g addr.Addr)
	// LocalLeave undoes LocalJoin when the last interior member left.
	LocalLeave(g addr.Addr)
	// HasForwardingState reports whether this router holds per-group
	// forwarding state for g (the MIGP uses it to route interior packets
	// to interested borders; the comparison suites use it to count state).
	HasForwardingState(g addr.Addr) bool
	// RouteChanged reacts to a best-route change for prefix p (any RIB).
	// ctx is the change's causal trace context (zero when untraced);
	// backends that re-parent trees propagate it onto the repair traffic.
	RouteChanged(p addr.Prefix, ctx wire.TraceContext)
	// Reset models a forwarding-process crash: volatile state is dropped.
	Reset()
	// Stats snapshots the backend's comparison counters.
	Stats() Stats
}

// Stats are the per-router comparison counters every backend reports.
type Stats struct {
	// GroupEntries counts per-group forwarding entries held by this
	// router ((*,G) + (S,G) + aggregated prefixes for shared trees; zero
	// by design for the stateless backends).
	GroupEntries int
	// OverlayEntries counts (group, member-domain) membership records in
	// the domain's overlay store. Only root-domain borders hold any, and
	// the store is shared domain-wide (each border of the root domain
	// reports the same value).
	OverlayEntries int
	// PeerSends counts copies this backend sent to external peers.
	PeerSends uint64
	// Relays counts border-to-border relays through the domain interior.
	Relays uint64
	// Encaps counts tunnel or interior-RPF encapsulations originated.
	Encaps uint64
	// HeaderBytes sums the extra per-packet header bytes (tunnel outer
	// headers, BIER bitstrings) this backend put on inter-domain hops.
	HeaderBytes uint64
}

// Config parameterizes the stateless backends (BIER, map-and-encap). The
// shared-tree backend wraps an existing *bgmp.Component instead.
type Config struct {
	Router wire.RouterID
	Domain wire.DomainID
	// LookupGroup resolves a group address in the G-RIB (root-domain map).
	LookupGroup func(g addr.Addr) (bgp.Entry, bool)
	// LookupUnicast resolves a unicast address (tunnel endpoints, domain
	// anchor addresses).
	LookupUnicast func(a addr.Addr) (bgp.Entry, bool)
	// Internal reports whether a router ID is a border of this domain.
	Internal func(r wire.RouterID) bool
	// SendPeer transmits a message to an external peer.
	SendPeer func(to wire.RouterID, msg wire.Message)
	// MIGP is the interior component; required.
	MIGP bgmp.MIGP
	// DomainAddr returns the anchor (tunnel endpoint) address of a
	// domain — any address the unicast RIB routes to that domain.
	DomainAddr func(d wire.DomainID) (addr.Addr, bool)
	// SourceDomain maps a source address to its owning domain, so root
	// replication can skip the domain that already saw the packet
	// natively.
	SourceDomain func(s addr.Addr) (wire.DomainID, bool)
	// Store is the domain's shared overlay membership store; required.
	Store *Store
	// Obs observes data-plane hops; nil disables observation.
	Obs *obs.Observer
}

// Store is one domain's overlay membership table: for groups rooted at
// this domain, the set of member domains, refcounted per (group, domain).
// It models membership carried by the routing overlay rather than by
// per-router tree state, so — like BIER's BFIR state — it survives border
// router crashes (Backend.Reset does not clear it). All borders of a
// domain share one Store.
type Store struct {
	mu      sync.Mutex
	members map[addr.Addr]map[wire.DomainID]int // guarded by mu
}

// NewStore returns an empty membership store.
func NewStore() *Store {
	return &Store{members: map[addr.Addr]map[wire.DomainID]int{}}
}

// Add records one membership assertion for (g, d).
func (s *Store) Add(g addr.Addr, d wire.DomainID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[g]
	if m == nil {
		m = make(map[wire.DomainID]int, 2)
		s.members[g] = m
	}
	m[d]++
}

// Remove retracts one membership assertion for (g, d).
func (s *Store) Remove(g addr.Addr, d wire.DomainID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[g]
	if m == nil {
		return
	}
	m[d]--
	if m[d] <= 0 {
		delete(m, d)
	}
	if len(m) == 0 {
		delete(s.members, g)
	}
}

// Members returns g's member domains in ascending order.
func (s *Store) Members(g addr.Addr) []wire.DomainID {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[g]
	out := make([]wire.DomainID, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entries counts (group, member-domain) records across all groups.
func (s *Store) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, m := range s.members {
		n += len(m)
	}
	return n
}
