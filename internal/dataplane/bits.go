package dataplane

import (
	"math/bits"

	"mascbgmp/internal/wire"
)

// Bitstring helpers: bit i lives in word i/64, position i%64. Domain IDs
// index bits directly, so the bitstring length scales with the highest
// member domain ID rather than the member count — the BIER trade of
// header bytes for per-group state.

// makeBits builds a bitstring with one bit set per domain in ds.
func makeBits(ds []wire.DomainID) []uint64 {
	maxw := -1
	for _, d := range ds {
		if w := int(d / 64); w > maxw {
			maxw = w
		}
	}
	if maxw < 0 {
		return nil
	}
	out := make([]uint64, maxw+1)
	for _, d := range ds {
		out[d/64] |= 1 << (uint(d) % 64)
	}
	return out
}

// setBit sets bit i, growing nothing: the caller sized the string.
func setBit(b []uint64, i uint32) {
	w := int(i / 64)
	if w < len(b) {
		b[w] |= 1 << (i % 64)
	}
}

// clearBit clears bit i, reporting whether it was set.
func clearBit(b []uint64, i uint32) bool {
	w := int(i / 64)
	if w >= len(b) || b[w]&(1<<(i%64)) == 0 {
		return false
	}
	b[w] &^= 1 << (i % 64)
	return true
}

// anyBit reports whether any bit is set.
func anyBit(b []uint64) bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// setBits returns the set bit indices in ascending order.
func setBits(b []uint64) []uint32 {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	out := make([]uint32, 0, n)
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*64+i))
			w &^= 1 << uint(i)
		}
	}
	return out
}

// trimBits drops trailing zero words so header accounting reflects the
// bytes a real encoding would carry.
func trimBits(b []uint64) []uint64 {
	n := len(b)
	for n > 0 && b[n-1] == 0 {
		n--
	}
	return b[:n]
}
