package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mascbgmp/internal/addr"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&Open{Router: 7, Domain: 3, HoldSecs: 90},
		&Keepalive{},
		&Notification{Code: NoteHoldExpired, Reason: "hold timer expired"},
		&LivenessCtl{Generation: 3, IntervalUS: 100_000, Multiplier: 3, Demand: true},
		&LivenessCtl{Generation: 1, IntervalUS: 10_000_000},
		&Update{
			Table:     TableGRIB,
			Withdrawn: []addr.Prefix{addr.MustParsePrefix("224.0.1.0/24")},
			Routes: []Route{
				{
					Prefix:     addr.MustParsePrefix("224.0.0.0/16"),
					ASPath:     []DomainID{1, 2, 3},
					Origin:     3,
					ExpireUnix: 1234567890,
				},
				{
					Prefix: addr.MustParsePrefix("239.0.0.0/8"),
					Origin: 9,
				},
			},
		},
		&Claim{Claimer: 12, ClaimID: 42, Prefix: addr.MustParsePrefix("228.0.0.0/22"), LifeSecs: 86400},
		&Collision{From: 4, Loser: 12, Prefix: addr.MustParsePrefix("228.0.0.0/22"),
			Conflict: addr.MustParsePrefix("228.0.0.0/16"), Reason: CollideInUse},
		&Release{Claimer: 12, Prefix: addr.MustParsePrefix("228.0.0.0/22")},
		&RangeAdvert{Owner: 1, Ranges: []RangeLife{
			{Prefix: addr.MustParsePrefix("224.0.0.0/16"), LifeSecs: 3600},
			{Prefix: addr.MustParsePrefix("230.0.0.0/8"), LifeSecs: 60},
		}},
		&GroupJoin{Group: addr.MakeAddr(224, 0, 128, 1)},
		&GroupPrune{Group: addr.MakeAddr(224, 0, 128, 1)},
		&SourceJoin{Group: addr.MakeAddr(224, 0, 128, 1), Source: addr.MakeAddr(10, 1, 2, 3)},
		&SourcePrune{Group: addr.MakeAddr(224, 0, 128, 1), Source: addr.MakeAddr(10, 1, 2, 3)},
		&Data{Group: addr.MakeAddr(224, 0, 128, 1), Source: addr.MakeAddr(10, 1, 2, 3),
			TTL: 32, Encap: true, Payload: []byte("hello multicast")},
		&Data{Group: addr.MakeAddr(224, 0, 128, 1), Source: addr.MakeAddr(10, 1, 2, 3),
			TTL: 16, TunnelTo: addr.MakeAddr(10, 9, 0, 0), Payload: []byte("tunneled")},
		&Data{Group: addr.MakeAddr(224, 0, 128, 1), Source: addr.MakeAddr(10, 1, 2, 3),
			TTL: 16, Bits: []uint64{0x14, 1}, Payload: []byte("bier")},
		&MemberReport{Group: addr.MakeAddr(224, 0, 128, 1), Domain: 6},
		&MemberReport{Group: addr.MakeAddr(224, 0, 128, 1), Domain: 6, Leave: true},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, msg := range allMessages() {
		frame := Encode(msg)
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", msg.Type(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%v round trip:\n got %#v\nwant %#v", msg.Type(), got, msg)
		}
	}
}

func TestEmptyCollectionsRoundTrip(t *testing.T) {
	for _, msg := range []Message{
		&Update{Table: TableMRIB},
		&RangeAdvert{Owner: 5},
		&Data{Group: addr.MakeAddr(224, 1, 1, 1)},
	} {
		got, err := Decode(Encode(msg))
		if err != nil {
			t.Fatalf("%v: %v", msg.Type(), err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%v:\n got %#v\nwant %#v", msg.Type(), got, msg)
		}
	}
}

// The data-plane header extensions must not disturb the classic encoding:
// a frame without TunnelTo/Bits carries only the original fields, and
// undefined flag bits are still rejected.
func TestDataFlagCompatibility(t *testing.T) {
	classic := &Data{Group: addr.MakeAddr(224, 1, 1, 1), Source: addr.MakeAddr(10, 0, 0, 1),
		TTL: 8, Payload: []byte("x")}
	payload := classic.AppendPayload(nil)
	// group(4) + source(4) + ttl(1) + flags(1) + len(4) + payload(1)
	if len(payload) != 15 {
		t.Errorf("classic data payload is %d bytes, want 15", len(payload))
	}
	if payload[9] != 0 {
		t.Errorf("classic data flags byte = 0x%02x, want 0", payload[9])
	}

	bad := bytes.Clone(payload)
	bad[9] = 0x08 // first undefined flag bit
	var m Data
	if err := m.DecodePayload(bad); err == nil {
		t.Error("undefined data flag bits must fail decode")
	}

	// An explicitly empty (non-nil) bitstring survives a round trip.
	empty := &Data{Group: addr.MakeAddr(224, 1, 1, 1), TTL: 4, Bits: []uint64{}}
	got, err := Decode(Encode(empty))
	if err != nil {
		t.Fatalf("empty bits: %v", err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Errorf("empty bits round trip:\n got %#v\nwant %#v", got, empty)
	}

	badReport := (&MemberReport{Group: addr.MakeAddr(224, 1, 1, 1), Domain: 3}).AppendPayload(nil)
	badReport[len(badReport)-1] = 0x02
	var mr MemberReport
	if err := mr.DecodePayload(badReport); err == nil {
		t.Error("undefined member-report flag bits must fail decode")
	}
}

func TestDecodeNextStream(t *testing.T) {
	msgs := allMessages()
	var stream []byte
	for _, m := range msgs {
		stream = AppendFrame(stream, m)
	}
	var got []Message
	rest := stream
	for len(rest) > 0 {
		m, r, err := DecodeNext(rest)
		if err != nil {
			t.Fatalf("DecodeNext: %v", err)
		}
		got = append(got, m)
		rest = r
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(got[i], msgs[i]) {
			t.Errorf("message %d mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(&Keepalive{})

	short := good[:4]
	if _, err := Decode(short); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: %v", err)
	}

	badMagic := bytes.Clone(good)
	badMagic[0] = 0xFF
	if _, err := Decode(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	badVer := bytes.Clone(good)
	badVer[2] = 9
	if _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}

	badType := bytes.Clone(good)
	badType[3] = 0xEE
	if _, err := Decode(badType); !errors.Is(err, ErrUnknownType) {
		t.Errorf("bad type: %v", err)
	}

	badLen := bytes.Clone(good)
	badLen[7] = 200 // claims 200-byte payload that is not there
	if _, err := Decode(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}

	trailing := append(bytes.Clone(good), 0xAB)
	if _, err := Decode(trailing); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing: %v", err)
	}
}

func TestDecodeHugeLengthRejected(t *testing.T) {
	frame := Encode(&Keepalive{})
	frame[4], frame[5], frame[6], frame[7] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(frame); !errors.Is(err, ErrBadLength) {
		t.Errorf("huge length: %v", err)
	}
}

func TestTruncatedPayloads(t *testing.T) {
	for _, msg := range allMessages() {
		frame := Encode(msg)
		payloadLen := len(frame) - HeaderSize
		if payloadLen == 0 {
			continue
		}
		// Chop one byte off the payload and fix up the length field so the
		// frame parses but the payload decode must fail.
		trunc := bytes.Clone(frame[:len(frame)-1])
		trunc[4], trunc[5], trunc[6], trunc[7] = 0, 0, 0, 0
		trunc[7] = byte(payloadLen - 1)
		trunc[6] = byte((payloadLen - 1) >> 8)
		if _, err := Decode(trunc); err == nil {
			t.Errorf("%v: truncated payload decoded without error", msg.Type())
		}
	}
}

func TestTrailingPayloadBytesRejected(t *testing.T) {
	// A GroupJoin payload with an extra byte must be rejected by done().
	inner := (&GroupJoin{Group: addr.MakeAddr(224, 1, 2, 3)}).AppendPayload(nil)
	inner = append(inner, 0x00)
	var frame []byte
	frame = append(frame, 0x4D, 0x42, Version, byte(TypeGroupJoin), 0, 0, 0, byte(len(inner)))
	frame = append(frame, inner...)
	if _, err := Decode(frame); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing payload bytes: %v", err)
	}
}

func TestInvalidPrefixRejected(t *testing.T) {
	// Hand-craft a Claim whose prefix has host bits set.
	var payload []byte
	payload = appendU32(payload, 12)         // claimer
	payload = appendU64(payload, 1)          // claim id
	payload = appendU32(payload, 0xE0000001) // 224.0.0.1
	payload = append(payload, 24)            // /24 → host bits set
	payload = appendU32(payload, 60)
	var frame []byte
	frame = append(frame, 0x4D, 0x42, Version, byte(TypeClaim), 0, 0, 0, byte(len(payload)))
	frame = append(frame, payload...)
	if _, err := Decode(frame); err == nil {
		t.Error("invalid prefix must fail decode")
	}
}

func TestRouteHelpers(t *testing.T) {
	rt := Route{Prefix: addr.MustParsePrefix("224.0.0.0/16"), ASPath: []DomainID{1, 2}}
	if !rt.HasLoop(2) || rt.HasLoop(3) {
		t.Error("HasLoop wrong")
	}
	cp := rt.Clone()
	cp.ASPath[0] = 99
	if rt.ASPath[0] != 1 {
		t.Error("Clone must deep-copy ASPath")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	seen := map[string]MsgType{}
	for _, m := range allMessages() {
		s := m.Type().String()
		if prev, dup := seen[s]; s == "" || (dup && prev != m.Type()) {
			t.Errorf("bad or duplicate MsgType string %q", s)
		}
		seen[s] = m.Type()
	}
	if MsgType(0xEE).String() != "MsgType(0xee)" {
		t.Errorf("unknown type formatting: %s", MsgType(0xEE))
	}
	if TableUnicast.String() != "unicast" || TableGRIB.String() != "G-RIB" || TableMRIB.String() != "M-RIB" {
		t.Error("Table strings")
	}
	if Table(99).String() == "" {
		t.Error("unknown table should format")
	}
}

// Fuzz-style property: random byte garbage never panics and never returns a
// message together with a nil error for frames with corrupted internals.
func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := r.Intn(64)
		b := make([]byte, n)
		r.Read(b)
		_, _, _ = DecodeNext(b) // must not panic
	}
}

// Property: flipping any single byte of an encoded frame either fails to
// decode or decodes to a message that still re-encodes within bounds
// (no panics, no corruption-induced crashes).
func TestBitFlipRobustness(t *testing.T) {
	for _, msg := range allMessages() {
		frame := Encode(msg)
		for i := range frame {
			mut := bytes.Clone(frame)
			mut[i] ^= 0xFF
			m, err := Decode(mut)
			if err == nil && m != nil {
				_ = Encode(m) // must not panic
			}
		}
	}
}

func BenchmarkEncodeUpdate(b *testing.B) {
	msg := &Update{
		Table: TableGRIB,
		Routes: []Route{{
			Prefix: addr.MustParsePrefix("224.0.0.0/16"),
			ASPath: []DomainID{1, 2, 3, 4, 5},
			Origin: 5,
		}},
	}
	b.ReportAllocs()
	buf := make([]byte, 0, 256)
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], msg)
	}
}

func BenchmarkDecodeUpdate(b *testing.B) {
	frame := Encode(&Update{
		Table: TableGRIB,
		Routes: []Route{{
			Prefix: addr.MustParsePrefix("224.0.0.0/16"),
			ASPath: []DomainID{1, 2, 3, 4, 5},
			Origin: 5,
		}},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
