package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeNext feeds arbitrary bytes to the frame decoder: it must never
// panic, and any frame it accepts must re-encode to the identical bytes
// (round-trip stability). The seed corpus covers every message type.
func FuzzDecodeNext(f *testing.F) {
	for _, msg := range allMessages() {
		f.Add(Encode(msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0x4D, 0x42, 1, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, rest, err := DecodeNext(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		re := Encode(msg)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("round trip mismatch:\n in  %x\n out %x", consumed, re)
		}
	})
}
