// Package wire defines the binary message formats spoken between border
// routers in the MASC/BGMP architecture: BGP-lite session and update
// messages (carrying group routes for the G-RIB and multicast routes for
// the M-RIB), MASC claim/collision messages, and BGMP join/prune/data
// messages.
//
// Every message is framed as
//
//	magic   uint16  0x4D42 ("MB")
//	version uint8   1
//	type    uint8   MsgType
//	length  uint32  payload length in bytes (excludes this 8-byte header)
//	payload length bytes
//
// in big-endian byte order. Messages implement the Message interface with
// gopacket-style AppendPayload/DecodePayload codecs; Encode and Decode
// handle the frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mascbgmp/internal/addr"
)

// Protocol framing constants.
const (
	Magic      = 0x4D42 // "MB"
	Version    = 1
	HeaderSize = 8
	// TraceVersion marks a frame whose payload is preceded by a
	// TraceBlockSize-byte trace block (trace ID, span ID, root start).
	// Untraced messages keep emitting Version frames byte-for-byte, so
	// tracing is free when off.
	TraceVersion   = 2
	TraceBlockSize = 24
	// MaxPayload bounds a frame's payload so a corrupt length field cannot
	// force an unbounded allocation.
	MaxPayload = 1 << 20
)

// MsgType discriminates the message carried in a frame.
type MsgType uint8

// Message type codes. The numeric ranges group the sub-protocols: 0x1x
// BGP-lite, 0x2x MASC, 0x3x BGMP.
const (
	TypeInvalid      MsgType = 0x00
	TypeOpen         MsgType = 0x10
	TypeKeepalive    MsgType = 0x11
	TypeUpdate       MsgType = 0x12
	TypeNotification MsgType = 0x13
	TypeLiveness     MsgType = 0x14
	TypeClaim        MsgType = 0x20
	TypeCollision    MsgType = 0x21
	TypeRelease      MsgType = 0x22
	TypeRangeAdvert  MsgType = 0x23
	TypeGroupJoin    MsgType = 0x30
	TypeGroupPrune   MsgType = 0x31
	TypeSourceJoin   MsgType = 0x32
	TypeSourcePrune  MsgType = 0x33
	TypeData         MsgType = 0x34
	TypeMemberReport MsgType = 0x35
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeOpen:
		return "OPEN"
	case TypeKeepalive:
		return "KEEPALIVE"
	case TypeUpdate:
		return "UPDATE"
	case TypeNotification:
		return "NOTIFICATION"
	case TypeLiveness:
		return "LIVENESS"
	case TypeClaim:
		return "CLAIM"
	case TypeCollision:
		return "COLLISION"
	case TypeRelease:
		return "RELEASE"
	case TypeRangeAdvert:
		return "RANGE-ADVERT"
	case TypeGroupJoin:
		return "GROUP-JOIN"
	case TypeGroupPrune:
		return "GROUP-PRUNE"
	case TypeSourceJoin:
		return "SOURCE-JOIN"
	case TypeSourcePrune:
		return "SOURCE-PRUNE"
	case TypeData:
		return "DATA"
	case TypeMemberReport:
		return "MEMBER-REPORT"
	}
	return fmt.Sprintf("MsgType(0x%02x)", uint8(t))
}

// Message is a protocol message that can be framed by Encode and recovered
// by Decode.
type Message interface {
	// Type returns the frame type code.
	Type() MsgType
	// AppendPayload appends the encoded payload to b and returns the
	// extended slice.
	AppendPayload(b []byte) []byte
	// DecodePayload parses the payload, which must be consumed entirely.
	DecodePayload(b []byte) error
}

// Errors returned by Decode and the payload codecs.
var (
	ErrShortFrame  = errors.New("wire: frame shorter than header")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadLength   = errors.New("wire: length field exceeds limits or frame")
	ErrUnknownType = errors.New("wire: unknown message type")
	ErrTruncated   = errors.New("wire: truncated payload")
	ErrTrailing    = errors.New("wire: trailing bytes after payload")
)

// Encode frames msg into a fresh byte slice.
func Encode(msg Message) []byte {
	return AppendFrame(nil, msg)
}

// AppendFrame appends the framed encoding of msg to b. A message carrying
// a nonzero trace context is emitted as a TraceVersion frame with the
// trace block between header and payload (the block counts toward the
// length field); everything else stays a classic Version frame.
func AppendFrame(b []byte, msg Message) []byte {
	ctx := ContextOf(msg)
	ver := byte(Version)
	if !ctx.Zero() {
		ver = TraceVersion
	}
	start := len(b)
	b = append(b, 0, 0, ver, byte(msg.Type()), 0, 0, 0, 0)
	binary.BigEndian.PutUint16(b[start:], Magic)
	if ver == TraceVersion {
		b = appendU64(b, ctx.Trace)
		b = appendU64(b, ctx.Span)
		b = appendU64(b, ctx.Start)
	}
	b = msg.AppendPayload(b)
	binary.BigEndian.PutUint32(b[start+4:], uint32(len(b)-start-HeaderSize))
	return b
}

// Decode parses one frame from b, which must contain exactly one frame.
func Decode(b []byte) (Message, error) {
	msg, rest, err := DecodeNext(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return msg, nil
}

// DecodeNext parses the first frame in b and returns the remainder, so a
// byte stream of concatenated frames can be consumed incrementally.
func DecodeNext(b []byte) (Message, []byte, error) {
	if len(b) < HeaderSize {
		return nil, b, ErrShortFrame
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return nil, b, ErrBadMagic
	}
	if b[2] != Version && b[2] != TraceVersion {
		return nil, b, ErrBadVersion
	}
	t := MsgType(b[3])
	n := binary.BigEndian.Uint32(b[4:])
	if n > MaxPayload || uint64(HeaderSize)+uint64(n) > uint64(len(b)) {
		return nil, b, ErrBadLength
	}
	msg := newMessage(t)
	if msg == nil {
		return nil, b, fmt.Errorf("%w: 0x%02x", ErrUnknownType, uint8(t))
	}
	payload := b[HeaderSize : HeaderSize+int(n)]
	var ctx TraceContext
	if b[2] == TraceVersion {
		if n < TraceBlockSize {
			return nil, b, ErrBadLength
		}
		ctx.Trace = binary.BigEndian.Uint64(payload)
		ctx.Span = binary.BigEndian.Uint64(payload[8:])
		ctx.Start = binary.BigEndian.Uint64(payload[16:])
		payload = payload[TraceBlockSize:]
	}
	if err := msg.DecodePayload(payload); err != nil {
		return nil, b, err
	}
	Stamp(msg, ctx)
	return msg, b[HeaderSize+int(n):], nil
}

// newMessage returns a zero message of the given type, or nil when the type
// is unknown.
func newMessage(t MsgType) Message {
	switch t {
	case TypeOpen:
		return &Open{}
	case TypeKeepalive:
		return &Keepalive{}
	case TypeUpdate:
		return &Update{}
	case TypeNotification:
		return &Notification{}
	case TypeLiveness:
		return &LivenessCtl{}
	case TypeClaim:
		return &Claim{}
	case TypeCollision:
		return &Collision{}
	case TypeRelease:
		return &Release{}
	case TypeRangeAdvert:
		return &RangeAdvert{}
	case TypeGroupJoin:
		return &GroupJoin{}
	case TypeGroupPrune:
		return &GroupPrune{}
	case TypeSourceJoin:
		return &SourceJoin{}
	case TypeSourcePrune:
		return &SourcePrune{}
	case TypeData:
		return &Data{}
	case TypeMemberReport:
		return &MemberReport{}
	}
	return nil
}

// reader is a bounds-checked big-endian payload cursor.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) addr() addr.Addr { return addr.Addr(r.u32()) }

func (r *reader) prefix() addr.Prefix {
	p := addr.Prefix{Base: r.addr(), Len: int(r.u8())}
	if r.err == nil && !p.Valid() {
		r.err = fmt.Errorf("wire: invalid prefix %v", p)
	}
	return p
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, r.b)
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

// done returns the decode error, requiring full consumption of the payload.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrTrailing
	}
	return nil
}

// Append helpers.
func appendU16(b []byte, v uint16) []byte     { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte     { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte     { return binary.BigEndian.AppendUint64(b, v) }
func appendAddr(b []byte, a addr.Addr) []byte { return appendU32(b, uint32(a)) }

func appendPrefix(b []byte, p addr.Prefix) []byte {
	b = appendAddr(b, p.Base)
	return append(b, byte(p.Len))
}

func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func appendStr(b []byte, s string) []byte { return appendBytes(b, []byte(s)) }
