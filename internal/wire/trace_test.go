package wire

import (
	"bytes"
	"reflect"
	"testing"

	"mascbgmp/internal/addr"
)

// traceableMessages returns one instance of every message that embeds
// TraceCarrier.
func traceableMessages() []Message {
	var out []Message
	for _, m := range allMessages() {
		if _, ok := m.(Traceable); ok {
			out = append(out, m)
		}
	}
	return out
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := TraceContext{Trace: 0xdeadbeefcafe0001, Span: 0x1234, Start: 987654321}
	msgs := traceableMessages()
	if len(msgs) == 0 {
		t.Fatal("no traceable messages")
	}
	for _, msg := range msgs {
		Stamp(msg, ctx)
		frame := Encode(msg)
		if frame[2] != TraceVersion {
			t.Fatalf("%v: stamped frame version %d, want %d", msg.Type(), frame[2], TraceVersion)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", msg.Type(), err)
		}
		if gc := ContextOf(got); gc != ctx {
			t.Fatalf("%v: context %+v, want %+v", msg.Type(), gc, ctx)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%v stamped round trip:\n got %#v\nwant %#v", msg.Type(), got, msg)
		}
	}
}

func TestUntracedFramesStayVersion1(t *testing.T) {
	// The zero context must cost nothing on the wire: stamping it leaves
	// every frame byte-identical to the never-stamped encoding.
	for _, msg := range allMessages() {
		before := Encode(msg)
		Stamp(msg, TraceContext{})
		after := Encode(msg)
		if !bytes.Equal(before, after) {
			t.Fatalf("%v: zero stamp changed the frame", msg.Type())
		}
		if after[2] != Version {
			t.Fatalf("%v: untraced frame version %d, want %d", msg.Type(), after[2], Version)
		}
	}
}

func TestStampOnUntraceableMessageIsNoOp(t *testing.T) {
	msg := &Keepalive{}
	Stamp(msg, TraceContext{Trace: 1, Span: 2, Start: 3})
	if ctx := ContextOf(msg); !ctx.Zero() {
		t.Fatalf("keepalive carries context %+v", ctx)
	}
}

func TestTraceBlockTruncationRejected(t *testing.T) {
	msg := &GroupJoin{Group: addr.MakeAddr(224, 0, 128, 1)}
	Stamp(msg, TraceContext{Trace: 7, Span: 8, Start: 9})
	frame := Encode(msg)
	// Shrink the frame's length field and body so fewer than
	// TraceBlockSize payload bytes remain: the decoder must reject it
	// rather than read past the block.
	short := append([]byte(nil), frame[:len(frame)-(TraceBlockSize-4)]...)
	n := len(short) - 5 // payload length excluding the 5-byte header
	short[3], short[4] = byte(n>>8), byte(n)
	if _, err := Decode(short); err == nil {
		t.Fatal("truncated trace block decoded without error")
	}
}

func TestTraceContextZero(t *testing.T) {
	if !(TraceContext{}).Zero() {
		t.Fatal("zero context not Zero()")
	}
	if (TraceContext{Start: 1}).Zero() {
		t.Fatal("nonzero context reported Zero()")
	}
}
