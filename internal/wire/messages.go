package wire

import (
	"fmt"

	"mascbgmp/internal/addr"
)

// RouterID identifies a border router across the internetwork. IDs are
// assigned by configuration, like BGP router IDs.
type RouterID uint32

// DomainID identifies a domain (autonomous system) on the wire. It mirrors
// topology.DomainID but is pinned to 32 bits for encoding.
type DomainID uint32

// ---------------------------------------------------------------- BGP-lite

// Open starts a peering session, announcing the speaker's identity. It
// plays the role of BGP's OPEN message.
type Open struct {
	Router RouterID
	Domain DomainID
	// HoldSecs is the proposed hold time in seconds; keepalives must
	// arrive faster than this or the session drops.
	HoldSecs uint32
}

// Type implements Message.
func (*Open) Type() MsgType { return TypeOpen }

// AppendPayload implements Message.
func (m *Open) AppendPayload(b []byte) []byte {
	b = appendU32(b, uint32(m.Router))
	b = appendU32(b, uint32(m.Domain))
	return appendU32(b, m.HoldSecs)
}

// DecodePayload implements Message.
func (m *Open) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Router = RouterID(r.u32())
	m.Domain = DomainID(r.u32())
	m.HoldSecs = r.u32()
	return r.done()
}

// Keepalive refreshes a session's hold timer.
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MsgType { return TypeKeepalive }

// AppendPayload implements Message.
func (*Keepalive) AppendPayload(b []byte) []byte { return b }

// DecodePayload implements Message.
func (*Keepalive) DecodePayload(b []byte) error {
	r := reader{b: b}
	return r.done()
}

// Notification reports a fatal session error before closing, like BGP's
// NOTIFICATION.
type Notification struct {
	Code   uint8
	Reason string
}

// Notification codes.
const (
	NoteCeaseAdmin    = 1 // administrative shutdown
	NoteHoldExpired   = 2 // hold timer expired
	NoteBadMessage    = 3 // malformed or unexpected message
	NoteDupConnection = 4 // duplicate peering
)

// Type implements Message.
func (*Notification) Type() MsgType { return TypeNotification }

// AppendPayload implements Message.
func (m *Notification) AppendPayload(b []byte) []byte {
	b = append(b, m.Code)
	return appendStr(b, m.Reason)
}

// DecodePayload implements Message.
func (m *Notification) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Code = r.u8()
	m.Reason = r.str()
	return r.done()
}

// LivenessCtl is a BFD-style liveness probe (RFC 5880 in spirit). It rides
// its own fault-plane class, separate from session keepalives, so the
// fast-liveness detector and the hold-timer fallback fail independently.
type LivenessCtl struct {
	// Generation is the sender's session incarnation; probes from an
	// earlier incarnation are discarded on receipt.
	Generation uint32
	// IntervalUS advertises the sender's current transmit interval in
	// microseconds (the adaptive ramp from HoldTime/3 down to the floor).
	IntervalUS uint32
	// Multiplier is the sender's detect multiplier: the peer declares the
	// session dead after this many consecutive missed intervals.
	Multiplier uint8
	// Demand indicates the sender has quiesced to demand mode and probes
	// at the slow poll interval.
	Demand bool
}

// Type implements Message.
func (*LivenessCtl) Type() MsgType { return TypeLiveness }

// AppendPayload implements Message.
func (m *LivenessCtl) AppendPayload(b []byte) []byte {
	b = appendU32(b, m.Generation)
	b = appendU32(b, m.IntervalUS)
	b = append(b, m.Multiplier)
	var flags uint8
	if m.Demand {
		flags |= 0x01
	}
	return append(b, flags)
}

// DecodePayload implements Message.
func (m *LivenessCtl) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Generation = r.u32()
	m.IntervalUS = r.u32()
	m.Multiplier = r.u8()
	flags := r.u8()
	if r.err == nil && flags&^uint8(0x01) != 0 {
		return fmt.Errorf("wire: undefined liveness flags 0x%02x", flags)
	}
	m.Demand = flags&0x01 != 0
	return r.done()
}

// Table selects which logical routing table an Update affects — BGP-lite
// carries multiple route types per the multiprotocol extensions the paper
// builds on (§2).
type Table uint8

const (
	// TableUnicast is the ordinary unicast RIB.
	TableUnicast Table = iota
	// TableMRIB is the Multicast RIB used for RPF checks when multicast
	// and unicast topologies are incongruent.
	TableMRIB
	// TableGRIB is the Group RIB holding MASC-injected group routes that
	// map group prefixes to their root domains.
	TableGRIB
)

// String implements fmt.Stringer.
func (t Table) String() string {
	switch t {
	case TableUnicast:
		return "unicast"
	case TableMRIB:
		return "M-RIB"
	case TableGRIB:
		return "G-RIB"
	}
	return fmt.Sprintf("Table(%d)", uint8(t))
}

// Route is a single advertised route: a destination prefix plus the path
// attributes BGP-lite propagates.
type Route struct {
	// Prefix is the destination (for the G-RIB: a multicast group range).
	Prefix addr.Prefix
	// ASPath lists the domains the advertisement traversed, nearest
	// first. Loop detection rejects routes containing the local domain.
	ASPath []DomainID
	// Origin is the domain that injected the route: for group routes,
	// the root domain of the covered groups.
	Origin DomainID
	// ExpireUnix is the route's expiry as a Unix second, mirroring the
	// MASC lifetime of the underlying claim; zero means no expiry.
	ExpireUnix uint64
}

// Clone returns a deep copy of the route.
func (rt Route) Clone() Route {
	cp := rt
	cp.ASPath = append([]DomainID(nil), rt.ASPath...)
	return cp
}

// HasLoop reports whether d already appears in the AS path.
func (rt Route) HasLoop(d DomainID) bool {
	for _, h := range rt.ASPath {
		if h == d {
			return true
		}
	}
	return false
}

// Update advertises and withdraws routes in one logical table, like BGP's
// UPDATE with multiprotocol NLRI.
type Update struct {
	TraceCarrier
	Table     Table
	Withdrawn []addr.Prefix
	Routes    []Route
}

// Type implements Message.
func (*Update) Type() MsgType { return TypeUpdate }

// AppendPayload implements Message.
func (m *Update) AppendPayload(b []byte) []byte {
	b = append(b, byte(m.Table))
	b = appendU16(b, uint16(len(m.Withdrawn)))
	for _, p := range m.Withdrawn {
		b = appendPrefix(b, p)
	}
	b = appendU16(b, uint16(len(m.Routes)))
	for _, rt := range m.Routes {
		b = appendPrefix(b, rt.Prefix)
		b = appendU16(b, uint16(len(rt.ASPath)))
		for _, h := range rt.ASPath {
			b = appendU32(b, uint32(h))
		}
		b = appendU32(b, uint32(rt.Origin))
		b = appendU64(b, rt.ExpireUnix)
	}
	return b
}

// DecodePayload implements Message.
func (m *Update) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Table = Table(r.u8())
	nw := int(r.u16())
	m.Withdrawn = nil
	for i := 0; i < nw && r.err == nil; i++ {
		m.Withdrawn = append(m.Withdrawn, r.prefix())
	}
	nr := int(r.u16())
	m.Routes = nil
	for i := 0; i < nr && r.err == nil; i++ {
		var rt Route
		rt.Prefix = r.prefix()
		np := int(r.u16())
		for j := 0; j < np && r.err == nil; j++ {
			rt.ASPath = append(rt.ASPath, DomainID(r.u32()))
		}
		rt.Origin = DomainID(r.u32())
		rt.ExpireUnix = r.u64()
		m.Routes = append(m.Routes, rt)
	}
	return r.done()
}

// -------------------------------------------------------------------- MASC

// Claim announces that a domain claims an address range from its parent's
// space (or from 224/4 for top-level domains). Claims propagate to the
// parent and all siblings, who have the collision-listening period to
// object (paper §4.1).
type Claim struct {
	TraceCarrier
	Claimer DomainID
	// ClaimID orders competing claims: lower wins, with Claimer as the
	// tiebreak. Implementations use a timestamp-derived value, per the
	// paper's footnote on winner selection.
	ClaimID  uint64
	Prefix   addr.Prefix
	LifeSecs uint32
}

// Type implements Message.
func (*Claim) Type() MsgType { return TypeClaim }

// AppendPayload implements Message.
func (m *Claim) AppendPayload(b []byte) []byte {
	b = appendU32(b, uint32(m.Claimer))
	b = appendU64(b, m.ClaimID)
	b = appendPrefix(b, m.Prefix)
	return appendU32(b, m.LifeSecs)
}

// DecodePayload implements Message.
func (m *Claim) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Claimer = DomainID(r.u32())
	m.ClaimID = r.u64()
	m.Prefix = r.prefix()
	m.LifeSecs = r.u32()
	return r.done()
}

// Collision reasons.
const (
	// CollideInUse: the announced range overlaps a range the sender holds
	// or has a better claim on.
	CollideInUse uint8 = 1
	// CollideTooLarge: the parent rejects an excessive claim — the
	// enforcement mechanism sketched in the paper's §7 incentives
	// discussion.
	CollideTooLarge uint8 = 2
	// CollideOutsideParent: the claim falls outside the parent's
	// (possibly re-acquired) space (§4.4 start-up behavior).
	CollideOutsideParent uint8 = 3
)

// Collision announces that a claim conflicts with an existing allocation or
// a better claim; the losing claimer must select a different range.
type Collision struct {
	TraceCarrier
	From   DomainID // the objecting domain
	Loser  DomainID // whose claim is rejected
	Prefix addr.Prefix
	// Conflict is the objector's range that the claim collided with, so
	// the loser can avoid it (and only it) when re-selecting. For
	// rejections that are not about occupancy (too-large, outside the
	// parent space) it equals Prefix.
	Conflict addr.Prefix
	Reason   uint8
}

// Type implements Message.
func (*Collision) Type() MsgType { return TypeCollision }

// AppendPayload implements Message.
func (m *Collision) AppendPayload(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.Loser))
	b = appendPrefix(b, m.Prefix)
	b = appendPrefix(b, m.Conflict)
	return append(b, m.Reason)
}

// DecodePayload implements Message.
func (m *Collision) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.From = DomainID(r.u32())
	m.Loser = DomainID(r.u32())
	m.Prefix = r.prefix()
	m.Conflict = r.prefix()
	m.Reason = r.u8()
	return r.done()
}

// Release relinquishes a previously won range before its lifetime expires.
type Release struct {
	Claimer DomainID
	Prefix  addr.Prefix
}

// Type implements Message.
func (*Release) Type() MsgType { return TypeRelease }

// AppendPayload implements Message.
func (m *Release) AppendPayload(b []byte) []byte {
	b = appendU32(b, uint32(m.Claimer))
	return appendPrefix(b, m.Prefix)
}

// DecodePayload implements Message.
func (m *Release) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Claimer = DomainID(r.u32())
	m.Prefix = r.prefix()
	return r.done()
}

// RangeLife pairs a prefix with its remaining lifetime.
type RangeLife struct {
	Prefix   addr.Prefix
	LifeSecs uint32
}

// RangeAdvert is a parent domain advertising its currently held address
// ranges to its children, who claim sub-ranges from them.
type RangeAdvert struct {
	Owner  DomainID
	Ranges []RangeLife
}

// Type implements Message.
func (*RangeAdvert) Type() MsgType { return TypeRangeAdvert }

// AppendPayload implements Message.
func (m *RangeAdvert) AppendPayload(b []byte) []byte {
	b = appendU32(b, uint32(m.Owner))
	b = appendU16(b, uint16(len(m.Ranges)))
	for _, rl := range m.Ranges {
		b = appendPrefix(b, rl.Prefix)
		b = appendU32(b, rl.LifeSecs)
	}
	return b
}

// DecodePayload implements Message.
func (m *RangeAdvert) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Owner = DomainID(r.u32())
	n := int(r.u16())
	m.Ranges = nil
	for i := 0; i < n && r.err == nil; i++ {
		var rl RangeLife
		rl.Prefix = r.prefix()
		rl.LifeSecs = r.u32()
		m.Ranges = append(m.Ranges, rl)
	}
	return r.done()
}

// -------------------------------------------------------------------- BGMP

// GroupJoin asks the receiving BGMP peer to add the sender as a child
// target in its (*,G) entry, creating the entry (and propagating the join
// toward the root domain) if needed.
type GroupJoin struct {
	TraceCarrier
	Group addr.Addr
}

// Type implements Message.
func (*GroupJoin) Type() MsgType { return TypeGroupJoin }

// AppendPayload implements Message.
func (m *GroupJoin) AppendPayload(b []byte) []byte { return appendAddr(b, m.Group) }

// DecodePayload implements Message.
func (m *GroupJoin) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	return r.done()
}

// GroupPrune removes the sender from the receiver's (*,G) child targets.
type GroupPrune struct {
	TraceCarrier
	Group addr.Addr
}

// Type implements Message.
func (*GroupPrune) Type() MsgType { return TypeGroupPrune }

// AppendPayload implements Message.
func (m *GroupPrune) AppendPayload(b []byte) []byte { return appendAddr(b, m.Group) }

// DecodePayload implements Message.
func (m *GroupPrune) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	return r.done()
}

// SourceJoin establishes a source-specific branch: (S,G) state toward the
// source, terminating at the first router on the group's bidirectional
// tree or at the source domain (paper §5.3).
type SourceJoin struct {
	TraceCarrier
	Group  addr.Addr
	Source addr.Addr
}

// Type implements Message.
func (*SourceJoin) Type() MsgType { return TypeSourceJoin }

// AppendPayload implements Message.
func (m *SourceJoin) AppendPayload(b []byte) []byte {
	b = appendAddr(b, m.Group)
	return appendAddr(b, m.Source)
}

// DecodePayload implements Message.
func (m *SourceJoin) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	m.Source = r.addr()
	return r.done()
}

// SourcePrune removes source-specific state, or — sent up the shared tree —
// stops duplicate copies of S's packets arriving along the shared tree once
// a source-specific branch delivers them.
type SourcePrune struct {
	TraceCarrier
	Group  addr.Addr
	Source addr.Addr
}

// Type implements Message.
func (*SourcePrune) Type() MsgType { return TypeSourcePrune }

// AppendPayload implements Message.
func (m *SourcePrune) AppendPayload(b []byte) []byte {
	b = appendAddr(b, m.Group)
	return appendAddr(b, m.Source)
}

// DecodePayload implements Message.
func (m *SourcePrune) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	m.Source = r.addr()
	return r.done()
}

// Data flag bits (see Data.AppendPayload).
const (
	dataFlagEncap  uint8 = 1 << 0
	dataFlagTunnel uint8 = 1 << 1
	dataFlagBits   uint8 = 1 << 2
	dataFlagKnown        = dataFlagEncap | dataFlagTunnel | dataFlagBits
)

// Data carries one multicast datagram between BGMP peers. The optional
// TunnelTo and Bits headers serve the alternative data-plane backends
// (internal/dataplane): both are absent on classic shared-tree frames,
// which keeps the original encoding byte-for-byte unchanged.
type Data struct {
	Group  addr.Addr
	Source addr.Addr
	TTL    uint8
	// Encap marks a unicast-encapsulated copy sent between border routers
	// of one domain to dodge intra-domain RPF failures (paper §5.3).
	Encap bool
	// TunnelTo, when nonzero, marks a map-and-encap outer header: the
	// packet is unicast-tunneled to the domain owning this address (the
	// group's root domain, or a member domain on the way back down) and
	// decapsulated there.
	TunnelTo addr.Addr
	// Bits, when non-nil, is a BIER-style bitstring: bit i (word i/64, bit
	// i%64) set means the packet must still reach domain i. Transit
	// routers forward per set bit with no per-group state.
	Bits    []uint64
	Payload []byte
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

// AppendPayload implements Message.
func (m *Data) AppendPayload(b []byte) []byte {
	b = appendAddr(b, m.Group)
	b = appendAddr(b, m.Source)
	b = append(b, m.TTL)
	var flags uint8
	if m.Encap {
		flags |= dataFlagEncap
	}
	if m.TunnelTo != 0 {
		flags |= dataFlagTunnel
	}
	if m.Bits != nil {
		flags |= dataFlagBits
	}
	b = append(b, flags)
	if flags&dataFlagTunnel != 0 {
		b = appendAddr(b, m.TunnelTo)
	}
	if flags&dataFlagBits != 0 {
		b = appendU16(b, uint16(len(m.Bits)))
		for _, w := range m.Bits {
			b = appendU64(b, w)
		}
	}
	return appendBytes(b, m.Payload)
}

// DecodePayload implements Message.
func (m *Data) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	m.Source = r.addr()
	m.TTL = r.u8()
	flags := r.u8()
	if r.err == nil && flags&^dataFlagKnown != 0 {
		return fmt.Errorf("wire: data frame with undefined flag bits 0x%02x", flags)
	}
	m.Encap = flags&dataFlagEncap != 0
	m.TunnelTo = 0
	if flags&dataFlagTunnel != 0 {
		m.TunnelTo = r.addr()
	}
	m.Bits = nil
	if flags&dataFlagBits != 0 {
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			m.Bits = append(m.Bits, r.u64())
		}
		if m.Bits == nil {
			// A present-but-empty bitstring keeps flag round-trip fidelity.
			m.Bits = []uint64{}
		}
	}
	m.Payload = r.bytes()
	return r.done()
}

// MemberReport carries domain-level group membership toward the group's
// root domain for the stateless data-plane backends (BIER, map-and-encap):
// instead of per-hop join state, the root learns which domains are members
// and transit routers stay group-stateless. It is the inter-domain analogue
// of an IGMP report / BIER overlay signal.
type MemberReport struct {
	TraceCarrier
	Group addr.Addr
	// Domain is the member domain the report speaks for.
	Domain DomainID
	// Leave retracts the membership instead of asserting it.
	Leave bool
}

// Type implements Message.
func (*MemberReport) Type() MsgType { return TypeMemberReport }

// AppendPayload implements Message.
func (m *MemberReport) AppendPayload(b []byte) []byte {
	b = appendAddr(b, m.Group)
	b = appendU32(b, uint32(m.Domain))
	var flags uint8
	if m.Leave {
		flags |= 1
	}
	return append(b, flags)
}

// DecodePayload implements Message.
func (m *MemberReport) DecodePayload(b []byte) error {
	r := reader{b: b}
	m.Group = r.addr()
	m.Domain = DomainID(r.u32())
	flags := r.u8()
	if r.err == nil && flags&^uint8(1) != 0 {
		return fmt.Errorf("wire: member report with undefined flag bits 0x%02x", flags)
	}
	m.Leave = flags&1 != 0
	return r.done()
}
