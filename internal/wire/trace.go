package wire

// Causal trace propagation. A TraceContext is a compact causality stamp
// carried hop-by-hop on protocol messages: the trace ID names the causal
// chain (one member join, one fault detection, one claim round), the span
// ID names the emitting hop, and Start pins the chain's origin instant so
// any downstream hop can measure end-to-end latency without clock
// negotiation. IDs come from a deterministic seed stream (internal/obs),
// never from wall clock, so same-seed runs produce byte-identical traces.
//
// Messages opt in by embedding TraceCarrier; Stamp and ContextOf are the
// nil-safe accessors the protocol layers use. A zero context means "not
// traced" and costs nothing on the wire: AppendFrame emits the classic
// version-1 frame for it, and only nonzero contexts switch the frame to
// TraceVersion with the 24-byte trace block between header and payload.

// TraceContext is the per-message causality stamp.
type TraceContext struct {
	// Trace identifies the causal chain; all spans of one traced
	// operation share it.
	Trace uint64
	// Span is the ID of the span that emitted the message; the receiving
	// hop parents its own span under it.
	Span uint64
	// Start is the chain root's begin instant in nanoseconds on the
	// emitting simulation clock, propagated unchanged so any hop can
	// compute origin-to-here latency.
	Start uint64
}

// Zero reports whether the context is the untraced zero value.
func (c TraceContext) Zero() bool { return c == TraceContext{} }

// TraceCarrier is embedded by messages that propagate trace contexts.
type TraceCarrier struct {
	ctx TraceContext
}

// TraceCtx implements Traceable.
func (t *TraceCarrier) TraceCtx() *TraceContext { return &t.ctx }

// Traceable is implemented (via TraceCarrier) by messages that carry a
// trace context in their frame.
type Traceable interface {
	TraceCtx() *TraceContext
}

// Stamp sets msg's trace context when the message carries one; messages
// without a TraceCarrier (keepalives, data packets, internal markers) are
// left alone.
func Stamp(msg Message, ctx TraceContext) {
	if t, ok := msg.(Traceable); ok {
		*t.TraceCtx() = ctx
	}
}

// ContextOf returns msg's trace context, zero when the message carries
// none.
func ContextOf(msg Message) TraceContext {
	if t, ok := msg.(Traceable); ok {
		return *t.TraceCtx()
	}
	return TraceContext{}
}
