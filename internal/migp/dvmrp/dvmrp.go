// Package dvmrp implements the Distance Vector Multicast Routing Protocol
// delivery model (RFC 1075) as a MIGP for the MASC/BGMP architecture.
//
// DVMRP builds source-rooted reverse-shortest-path trees by flooding the
// first packet of each (source, group) to the whole domain and pruning
// branches without members. Interior routers apply strict RPF: a packet
// from source S is accepted only from the neighbor on the shortest path
// back to S, which is what forces BGMP border routers to encapsulate
// packets that arrive on the shared tree at the "wrong" border (§5.3).
package dvmrp

import (
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

// Protocol is a DVMRP instance for one domain. Safe for concurrent use.
type Protocol struct {
	mu sync.Mutex
	// pruned marks (source, group) pairs whose first-packet flood has
	// happened; later packets follow the pruned tree (members only).
	// guarded by mu
	pruned map[key]bool
	// floods counts first-packet floods (each reached every node).
	// guarded by mu
	floods int
}

type key struct {
	src   addr.Addr
	group addr.Addr
}

// New returns a DVMRP instance.
func New() *Protocol {
	return &Protocol{pruned: map[key]bool{}}
}

// Name implements migp.Protocol.
func (*Protocol) Name() string { return "DVMRP" }

// StrictRPF implements migp.Protocol: DVMRP drops wrong-entry packets.
func (*Protocol) StrictRPF() bool { return true }

// Deliver implements migp.Protocol. The first packet of a (source, group)
// floods the entire domain (every node pays the shortest-path cost from the
// entry); subsequent packets reach members only, along the same
// reverse-shortest-path branches.
func (p *Protocol) Deliver(g *topology.Graph, entry migp.Node, source, group addr.Addr, members []migp.Node) map[migp.Node]int {
	dist, _ := g.BFS(entry)
	k := key{source, group}
	p.mu.Lock()
	first := !p.pruned[k]
	if first {
		p.pruned[k] = true
		p.floods++
	}
	p.mu.Unlock()
	out := make(map[migp.Node]int, len(members))
	for _, m := range members {
		if dist[m] >= 0 {
			out[m] = dist[m]
		}
	}
	return out
}

// Graft clears prune state for a (source, group), as a DVMRP Graft after a
// new member appears on a pruned branch would; the next packet re-floods.
func (p *Protocol) Graft(source, group addr.Addr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.pruned, key{source, group})
}

// Floods returns the number of first-packet domain-wide floods — the
// broadcast overhead the paper holds against flood-and-prune protocols for
// inter-domain use (§1).
func (p *Protocol) Floods() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.floods
}

var _ migp.Protocol = (*Protocol)(nil)
