package dvmrp

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 1, 1)
	src = addr.MakeAddr(10, 0, 0, 1)
)

func line(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func TestReverseShortestPathDelivery(t *testing.T) {
	g := line(6)
	p := New()
	got := p.Deliver(g, 0, src, grp, []migp.Node{1, 3, 5})
	want := map[migp.Node]int{1: 1, 3: 3, 5: 5}
	for m, h := range want {
		if got[m] != h {
			t.Errorf("hops[%v] = %d, want %d", m, got[m], h)
		}
	}
}

func TestUnreachableMemberOmitted(t *testing.T) {
	g := topology.New(3)
	g.AddLink(0, 1) // node 2 isolated
	p := New()
	got := p.Deliver(g, 0, src, grp, []migp.Node{1, 2})
	if _, ok := got[2]; ok {
		t.Fatal("unreachable member delivered")
	}
	if got[1] != 1 {
		t.Fatal("reachable member missed")
	}
}

func TestFloodAccountingPerSourceGroup(t *testing.T) {
	g := line(4)
	p := New()
	p.Deliver(g, 0, src, grp, nil)
	p.Deliver(g, 0, src, grp, nil)
	other := addr.MakeAddr(224, 2, 2, 2)
	p.Deliver(g, 0, src, other, nil)
	if p.Floods() != 2 {
		t.Fatalf("floods = %d, want 2 (one per (S,G))", p.Floods())
	}
}

func TestGraftUnknownPairHarmless(t *testing.T) {
	p := New()
	p.Graft(src, grp) // nothing flooded yet: no-op
	if p.Floods() != 0 {
		t.Fatal("graft must not count as a flood")
	}
}

func TestStrictRPFContract(t *testing.T) {
	if !New().StrictRPF() {
		t.Fatal("DVMRP must be strict-RPF — BGMP's encapsulation depends on it")
	}
}

func BenchmarkDeliver(b *testing.B) {
	g := topology.ASGraph(100, 20, 1)
	p := New()
	members := []migp.Node{3, 17, 42, 77, 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Deliver(g, 0, src, grp, members)
	}
}
