package migp

import (
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// DeliveryStats aggregates data-plane activity inside one domain.
type DeliveryStats struct {
	// Injected counts packets accepted into the interior.
	Injected int
	// RPFDrops counts packets rejected at injection because they entered
	// at the wrong border for their source.
	RPFDrops int
	// HostDeliveries counts (packet, member-node) deliveries.
	HostDeliveries int
	// InteriorHops sums interior hop counts over all deliveries.
	InteriorHops int
}

// FabricConfig configures a domain fabric.
type FabricConfig struct {
	Domain wire.DomainID
	// Graph is the interior router topology.
	Graph *topology.Graph
	// Protocol supplies the interior delivery mechanics.
	Protocol Protocol
	// BestExit returns the domain's best exit border router for an
	// address (a G-RIB lookup for groups, M-RIB/unicast for sources);
	// zero when unknown. Interior joins are reported to the group's best
	// exit router — the Domain Wide Report role in DVMRP (§5).
	BestExit func(a addr.Addr) wire.RouterID
	// OnHostDeliver, if set, observes every member delivery (for tests
	// and example programs).
	OnHostDeliver func(member Node, d *wire.Data)
}

// Border is the fabric's view of one border router's forwarding plane.
// *bgmp.Component satisfies it directly (the shared-tree default); the
// pluggable backends in internal/dataplane satisfy it through core's
// adapter, so the fabric never depends on which data plane is running.
type Border interface {
	// LocalJoin reports the domain's first interior member of g; the
	// fabric calls it on the group's best exit border.
	LocalJoin(g addr.Addr)
	// LocalLeave undoes LocalJoin when the last interior member leaves.
	LocalLeave(g addr.Addr)
	// Deliver hands the border a packet from the domain interior
	// (bgmp.MIGPTarget) — the single data ingress of the forwarding API.
	Deliver(src bgmp.Target, d *wire.Data)
	// HandleFromBorder processes a message relayed from a sibling border
	// router through the domain.
	HandleFromBorder(from wire.RouterID, msg wire.Message)
	// HasForwardingState reports whether the border holds per-group
	// forwarding state for g (used to route border-entered packets only
	// to interested borders).
	HasForwardingState(g addr.Addr) bool
}

// Fabric is one domain's interior: the glue between its border routers'
// forwarding planes and the interior protocol. Safe for concurrent use.
type Fabric struct {
	cfg FabricConfig

	mu sync.Mutex
	// borders maps border router IDs to their interior attachment node.
	// guarded by mu
	borders map[wire.RouterID]Node
	// comps holds the forwarding plane of each border router.
	// guarded by mu
	comps map[wire.RouterID]Border
	// members tracks interior host membership per group, by node.
	// guarded by mu
	members map[addr.Addr]map[Node]int
	// borderJoined tracks which border routers joined a group via BGMP.
	// guarded by mu
	borderJoined map[addr.Addr]map[wire.RouterID]bool

	// stats accumulates data-plane counters. guarded by mu
	stats DeliveryStats
}

// Stats returns a snapshot of the fabric's data-plane counters.
func (f *Fabric) Stats() DeliveryStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// NewFabric returns an empty fabric; attach border routers with
// AttachBorder.
func NewFabric(cfg FabricConfig) *Fabric {
	return &Fabric{
		cfg:          cfg,
		borders:      map[wire.RouterID]Node{},
		comps:        map[wire.RouterID]Border{},
		members:      map[addr.Addr]map[Node]int{},
		borderJoined: map[addr.Addr]map[wire.RouterID]bool{},
	}
}

// AttachBorder registers a border router at an interior node and returns
// the bgmp.MIGP adapter to hand to its BGMP component. Call SetComponent
// once the component exists.
func (f *Fabric) AttachBorder(r wire.RouterID, at Node) bgmp.MIGP {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.borders[r] = at
	return &borderAdapter{fabric: f, router: r}
}

// SetComponent binds the forwarding plane of a previously attached border.
func (f *Fabric) SetComponent(r wire.RouterID, c Border) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.comps[r] = c
}

// HostJoin registers an interior host (attached at node) joining group g.
// The first member notifies the group's best exit border router, as a
// DVMRP Domain Wide Report / PIM join toward the exit would (§5).
func (f *Fabric) HostJoin(g addr.Addr, at Node) {
	f.mu.Lock()
	m := f.members[g]
	if m == nil {
		m = map[Node]int{}
		f.members[g] = m
	}
	m[at]++
	first := len(m) == 1 && m[at] == 1
	var exit Border
	if first && f.cfg.BestExit != nil {
		if r := f.cfg.BestExit(g); r != 0 {
			exit = f.comps[r]
		}
	}
	f.mu.Unlock()
	if exit != nil {
		exit.LocalJoin(g)
	}
}

// HostLeave removes an interior member; the last member triggers a
// LocalLeave at the best exit router.
func (f *Fabric) HostLeave(g addr.Addr, at Node) {
	f.mu.Lock()
	m := f.members[g]
	if m == nil {
		f.mu.Unlock()
		return
	}
	m[at]--
	if m[at] <= 0 {
		delete(m, at)
	}
	empty := len(m) == 0
	if empty {
		delete(f.members, g)
	}
	var exit Border
	if empty && f.cfg.BestExit != nil {
		if r := f.cfg.BestExit(g); r != 0 {
			exit = f.comps[r]
		}
	}
	f.mu.Unlock()
	if exit != nil {
		exit.LocalLeave(g)
	}
}

// SendFromHost originates a packet from an interior host attached at node:
// it is delivered to interior members and reaches the border routers per
// the interior protocol (the best exit forwards it toward the root domain;
// on-tree borders forward it along the shared tree). In IP multicast the
// sender need not be a member (§3).
func (f *Fabric) SendFromHost(at Node, d *wire.Data) {
	f.deliver(at, 0, d)
}

// MemberNodes returns the interior nodes with members of g.
func (f *Fabric) MemberNodes(g addr.Addr) []Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return sortedNodeSet(f.members[g])
}

// sortedNodeSet flattens a node set into an ascending slice; delivery and
// callback order must not depend on map iteration.
func sortedNodeSet(set map[Node]int) []Node {
	out := make([]Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// deliver distributes a packet within the domain from an entry node.
// fromBorder is nonzero when the packet entered through that border router.
func (f *Fabric) deliver(entry Node, fromBorder wire.RouterID, d *wire.Data) {
	f.mu.Lock()
	memberNodes := sortedNodeSet(f.members[d.Group])
	hops := f.cfg.Protocol.Deliver(f.cfg.Graph, entry, d.Source, d.Group, memberNodes)
	f.stats.Injected++
	for _, h := range hops {
		f.stats.HostDeliveries++
		f.stats.InteriorHops += h
	}
	// Border routers that joined the group (or that must see interior-
	// origin traffic to forward it off-domain) receive the packet too.
	handoffs := make([]Border, 0, len(f.comps))
	routers := make([]wire.RouterID, 0, len(f.comps))
	for r := range f.comps {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, r := range routers {
		comp := f.comps[r]
		if r == fromBorder || comp == nil {
			continue
		}
		// Interior-origin packets (fromBorder == 0) reach every border —
		// DVMRP floods them; stateless borders drop or forward toward
		// the root per BGMP's rules. Border-entered packets reach the
		// borders with interest: explicit joins or (*,G)/shared-tree
		// state ("Since the border routers A2, A3, and A4 are on the
		// shared tree for the group, they each forward the data packets
		// they receive", §5.2) — the others are pruned.
		joined := f.borderJoined[d.Group][r] || comp.HasForwardingState(d.Group)
		if joined || fromBorder == 0 {
			handoffs = append(handoffs, comp)
		}
	}
	onDeliver := f.cfg.OnHostDeliver
	f.mu.Unlock()

	if onDeliver != nil {
		delivered := make([]Node, 0, len(hops))
		for n := range hops {
			delivered = append(delivered, n)
		}
		sort.Slice(delivered, func(i, j int) bool { return delivered[i] < delivered[j] })
		for _, n := range delivered {
			onDeliver(n, d)
		}
	}
	for _, h := range handoffs {
		h.Deliver(bgmp.MIGPTarget, d)
	}
}

// borderAdapter implements bgmp.MIGP for one border router.
type borderAdapter struct {
	fabric *Fabric
	router wire.RouterID
}

// JoinGroup implements bgmp.MIGP.
func (b *borderAdapter) JoinGroup(g addr.Addr) {
	f := b.fabric
	f.mu.Lock()
	m := f.borderJoined[g]
	if m == nil {
		m = make(map[wire.RouterID]bool, 2)
		f.borderJoined[g] = m
	}
	m[b.router] = true
	f.mu.Unlock()
}

// LeaveGroup implements bgmp.MIGP.
func (b *borderAdapter) LeaveGroup(g addr.Addr) {
	f := b.fabric
	f.mu.Lock()
	delete(f.borderJoined[g], b.router)
	if len(f.borderJoined[g]) == 0 {
		delete(f.borderJoined, g)
	}
	f.mu.Unlock()
}

// RelayToBorder implements bgmp.MIGP: control messages and encapsulated
// data cross the domain as unicast between border routers.
func (b *borderAdapter) RelayToBorder(to wire.RouterID, msg wire.Message) {
	f := b.fabric
	f.mu.Lock()
	comp := f.comps[to]
	f.mu.Unlock()
	if comp != nil {
		comp.HandleFromBorder(b.router, msg)
	}
}

// Inject implements bgmp.MIGP: deliver a packet entering at this border,
// enforcing the protocol's RPF discipline.
func (b *borderAdapter) Inject(d *wire.Data) bool {
	f := b.fabric
	f.mu.Lock()
	entry, ok := f.borders[b.router]
	strict := f.cfg.Protocol.StrictRPF()
	f.mu.Unlock()
	if !ok {
		return false
	}
	if strict {
		if exp := b.ExpectedEntry(d.Source); exp != 0 && exp != b.router {
			f.mu.Lock()
			f.stats.RPFDrops++
			f.mu.Unlock()
			return false
		}
	}
	f.deliver(entry, b.router, d)
	return true
}

// ExpectedEntry implements bgmp.MIGP.
func (b *borderAdapter) ExpectedEntry(src addr.Addr) wire.RouterID {
	if b.fabric.cfg.BestExit == nil {
		return 0
	}
	return b.fabric.cfg.BestExit(src)
}

var _ bgmp.MIGP = (*borderAdapter)(nil)
