// Package migp models the Multicast Interior Gateway Protocols that run
// inside each domain (paper §5: DVMRP, PIM-SM, PIM-DM, CBT, MOSPF) and the
// fabric that connects them to the BGMP components of the domain's border
// routers.
//
// The MASC/BGMP architecture is explicitly MIGP-independent: BGMP only
// needs the interior protocol to (1) notify the group's best exit border
// router of interior joins, (2) carry joins/prunes/data between border
// routers across the domain, and (3) deliver injected packets to interior
// members, enforcing whatever RPF discipline the protocol has. Fabric
// implements that contract over an interior router graph, delegating the
// protocol-specific delivery mechanics to a Protocol implementation.
package migp

import (
	"mascbgmp/internal/addr"
	"mascbgmp/internal/topology"
)

// Node is an interior router in a domain's topology.
type Node = topology.DomainID

// Protocol captures the per-protocol delivery mechanics inside one domain.
// Implementations are stateless with respect to the fabric (prune and tree
// state lives inside the implementation).
type Protocol interface {
	// Name returns the protocol's name ("DVMRP", "PIM-SM", ...).
	Name() string
	// StrictRPF reports whether a packet that enters the domain at a
	// border router other than the reverse-path one toward its source is
	// dropped by interior routers — the property that forces BGMP's
	// encapsulation and source-specific branches (§5.3).
	StrictRPF() bool
	// Deliver computes the interior hop count from the entry node to
	// each member node for one packet, updating any protocol state
	// (prunes, tree joins). Members unreachable in the interior graph
	// are omitted.
	Deliver(g *topology.Graph, entry Node, source addr.Addr, group addr.Addr, members []Node) map[Node]int
}

// HashGroup maps a group to an interior node, the standard "hash the group
// address over the set of routers" used to pick PIM-SM RPs and CBT cores
// (§5.1).
func HashGroup(g addr.Addr, n int) Node {
	if n <= 0 {
		return 0
	}
	x := uint32(g)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	return Node(int(x) & 0x7fffffff % n)
}

// TreePath returns the hop count between two nodes along the tree defined
// by BFS parent pointers rooted at root, or -1 when either node is outside
// the tree. It walks both nodes' root paths and meets at the lowest common
// ancestor.
func TreePath(dist []int, parent []Node, a, b Node) int {
	if dist[a] < 0 || dist[b] < 0 {
		return -1
	}
	// Walk the deeper node up until both are at equal depth, then walk
	// both up until they meet.
	da, db := dist[a], dist[b]
	hops := 0
	for da > db {
		a = parent[a]
		da--
		hops++
	}
	for db > da {
		b = parent[b]
		db--
		hops++
	}
	for a != b {
		a = parent[a]
		b = parent[b]
		hops += 2
	}
	return hops
}
