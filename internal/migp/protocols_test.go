package migp_test

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/migp/cbt"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/migp/mospf"
	"mascbgmp/internal/migp/pimdm"
	"mascbgmp/internal/migp/pimsm"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 2, 3)
	src = addr.MakeAddr(10, 0, 0, 1)
)

// line5 returns the path graph 0-1-2-3-4.
func line5() *topology.Graph {
	g := topology.New(5)
	for i := 0; i < 4; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func allProtocols() map[string]migp.Protocol {
	return map[string]migp.Protocol{
		"dvmrp": dvmrp.New(),
		"pimsm": pimsm.New(0),
		"pimdm": pimdm.New(0),
		"cbt":   cbt.New(),
		"mospf": mospf.New(),
	}
}

func TestAllProtocolsDeliverToAllMembers(t *testing.T) {
	g := line5()
	members := []migp.Node{0, 2, 4}
	for name, p := range allProtocols() {
		got := p.Deliver(g, 1, src, grp, members)
		if len(got) != len(members) {
			t.Errorf("%s: delivered to %v, want all of %v", name, got, members)
		}
		for m, h := range got {
			if h < 0 {
				t.Errorf("%s: negative hops to %v", name, m)
			}
		}
	}
}

func TestShortestPathProtocolsUseExactDistances(t *testing.T) {
	g := line5()
	for _, name := range []string{"dvmrp", "pimdm", "mospf"} {
		p := allProtocols()[name]
		got := p.Deliver(g, 0, src, grp, []migp.Node{4, 1})
		if got[4] != 4 || got[1] != 1 {
			t.Errorf("%s: hops = %v, want map[1:1 4:4]", name, got)
		}
	}
}

func TestStrictRPFFlags(t *testing.T) {
	want := map[string]bool{"dvmrp": true, "pimdm": true, "mospf": true, "pimsm": false, "cbt": false}
	for name, p := range allProtocols() {
		if p.StrictRPF() != want[name] {
			t.Errorf("%s: StrictRPF = %v, want %v", name, p.StrictRPF(), want[name])
		}
	}
}

func TestProtocolNames(t *testing.T) {
	want := map[string]string{"dvmrp": "DVMRP", "pimsm": "PIM-SM", "pimdm": "PIM-DM", "cbt": "CBT", "mospf": "MOSPF"}
	for key, p := range allProtocols() {
		if p.Name() != want[key] {
			t.Errorf("%s: Name = %q", key, p.Name())
		}
	}
}

func TestDVMRPFloodsOncePerSourceGroup(t *testing.T) {
	g := line5()
	p := dvmrp.New()
	p.Deliver(g, 0, src, grp, []migp.Node{4})
	p.Deliver(g, 0, src, grp, []migp.Node{4})
	if p.Floods() != 1 {
		t.Fatalf("floods = %d, want 1", p.Floods())
	}
	// A different source floods again.
	p.Deliver(g, 0, addr.MakeAddr(10, 0, 0, 2), grp, []migp.Node{4})
	if p.Floods() != 2 {
		t.Fatalf("floods = %d, want 2", p.Floods())
	}
	// A graft clears prune state: next packet floods.
	p.Graft(src, grp)
	p.Deliver(g, 0, src, grp, []migp.Node{4})
	if p.Floods() != 3 {
		t.Fatalf("floods after graft = %d, want 3", p.Floods())
	}
}

func TestPIMDMPruneExpiry(t *testing.T) {
	g := line5()
	p := pimdm.New(2) // prunes live for 2 packets
	for i := 0; i < 6; i++ {
		p.Deliver(g, 0, src, grp, []migp.Node{4})
	}
	// Packets: flood, pruned, pruned(expires), flood, pruned, pruned.
	if p.Floods() != 2 {
		t.Fatalf("floods = %d, want 2", p.Floods())
	}
}

func TestPIMSMTrianglePathViaRP(t *testing.T) {
	g := line5()
	p := pimsm.New(0)
	rp := p.RP(g, grp)
	got := p.Deliver(g, 0, src, grp, []migp.Node{4})
	distEntryToRP := int(rp) // on a line from node 0, dist = node index
	want := distEntryToRP + (4 - int(rp))
	if rp > 4 {
		t.Fatalf("rp = %v out of range", rp)
	}
	if got[4] != want {
		t.Fatalf("hops via RP %v = %d, want %d", rp, got[4], want)
	}
}

func TestPIMSMSPTSwitchover(t *testing.T) {
	g := line5()
	p := pimsm.New(1) // switch after 1 packet
	first := p.Deliver(g, 0, src, grp, []migp.Node{4})
	second := p.Deliver(g, 0, src, grp, []migp.Node{4})
	if second[4] > first[4] {
		t.Fatalf("SPT switchover made the path longer: %d → %d", first[4], second[4])
	}
	if second[4] != 4 { // shortest path on the line
		t.Fatalf("post-switch hops = %d, want 4", second[4])
	}
}

func TestCBTBidirectionalShortcut(t *testing.T) {
	// Star: center 0, leaves 1..4. Core anywhere; path between two leaves
	// along the tree is 2 (leaf-center-leaf) unless one endpoint is the
	// core side. With bidirectional forwarding, entry at leaf 1 reaching
	// member leaf 2 must never exceed dist via core.
	g := topology.New(5)
	for i := 1; i < 5; i++ {
		g.AddLink(0, topology.DomainID(i))
	}
	p := cbt.New()
	core := p.Core(g, grp)
	got := p.Deliver(g, 1, src, grp, []migp.Node{2})
	wantMax := 2 // leaf→hub→leaf
	if core == 1 || core == 2 {
		wantMax = 2
	}
	if got[2] > wantMax {
		t.Fatalf("CBT path = %d (core %v), want <= %d (bidirectional shortcut)", got[2], core, wantMax)
	}
	// Compare with PIM-SM from the same entry: unidirectional must be
	// >= bidirectional.
	sm := pimsm.New(0).Deliver(g, 1, src, grp, []migp.Node{2})
	if sm[2] < got[2] {
		t.Fatalf("unidirectional (%d) beat bidirectional (%d)", sm[2], got[2])
	}
}

func TestMOSPFMembershipFloods(t *testing.T) {
	g := line5()
	p := mospf.New()
	p.Deliver(g, 0, src, grp, []migp.Node{4})
	p.Deliver(g, 0, src, grp, []migp.Node{4})
	if p.MembershipFloods() != 1 {
		t.Fatalf("floods = %d, want 1 (unchanged membership)", p.MembershipFloods())
	}
	p.Deliver(g, 0, src, grp, []migp.Node{4, 2})
	if p.MembershipFloods() != 2 {
		t.Fatalf("floods = %d, want 2 (membership changed)", p.MembershipFloods())
	}
	// Order must not matter.
	p.Deliver(g, 0, src, grp, []migp.Node{2, 4})
	if p.MembershipFloods() != 2 {
		t.Fatalf("floods = %d, want 2 (same membership, different order)", p.MembershipFloods())
	}
}

func TestHashGroupStableAndInRange(t *testing.T) {
	for n := 1; n < 50; n++ {
		a := migp.HashGroup(grp, n)
		b := migp.HashGroup(grp, n)
		if a != b {
			t.Fatal("hash must be deterministic")
		}
		if int(a) < 0 || int(a) >= n {
			t.Fatalf("hash %d out of range [0,%d)", a, n)
		}
	}
	if migp.HashGroup(grp, 0) != 0 {
		t.Fatal("n=0 should map to 0")
	}
	// Different groups should spread (not all identical) over 16 nodes.
	seen := map[migp.Node]bool{}
	for i := 0; i < 64; i++ {
		seen[migp.HashGroup(addr.Addr(0xe0000000+i*9973), 16)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("hash spread too poor: %d distinct of 16", len(seen))
	}
}

func TestTreePath(t *testing.T) {
	// Tree rooted at 0 over the line 0-1-2-3-4.
	g := line5()
	dist, parent := g.BFS(0)
	cases := []struct{ a, b, want migp.Node }{
		{0, 4, 4}, {4, 0, 4}, {2, 2, 0}, {1, 3, 2},
	}
	for _, c := range cases {
		if got := migp.TreePath(dist, parent, c.a, c.b); got != int(c.want) {
			t.Errorf("TreePath(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Unreachable node.
	g2 := topology.New(3)
	g2.AddLink(0, 1)
	d2, p2 := g2.BFS(0)
	if migp.TreePath(d2, p2, 0, 2) != -1 {
		t.Error("unreachable TreePath should be -1")
	}
}

func TestTreePathLCAOffCorePath(t *testing.T) {
	// Y-shape: 0-1, 1-2, 1-3. Root at 0. Path 2→3 via LCA 1 = 2 hops,
	// NOT via the root (which would be 4).
	g := topology.New(4)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(1, 3)
	dist, parent := g.BFS(0)
	if got := migp.TreePath(dist, parent, 2, 3); got != 2 {
		t.Fatalf("LCA path = %d, want 2", got)
	}
}
