// Package mospf implements the Multicast OSPF delivery model (RFC 1584) as
// a MIGP for the MASC/BGMP architecture.
//
// MOSPF floods group-membership information to every router via link-state
// advertisements, so each router can compute the source-rooted
// shortest-path tree for any (source, group) on demand: data follows exact
// shortest paths with no data-driven flooding, but every topology or
// membership change costs a domain-wide LSA flood.
package mospf

import (
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

// Protocol is an MOSPF instance for one domain. Safe for concurrent use.
type Protocol struct {
	mu sync.Mutex
	// memberLSAs counts membership-change floods: one per distinct
	// member set observed per group. guarded by mu
	memberLSAs int
	lastSet    map[addr.Addr]string // guarded by mu
}

// New returns an MOSPF instance.
func New() *Protocol {
	return &Protocol{lastSet: map[addr.Addr]string{}}
}

// Name implements migp.Protocol.
func (*Protocol) Name() string { return "MOSPF" }

// StrictRPF implements migp.Protocol: forwarding follows the computed
// source-rooted tree, so entry at the wrong border fails the computation.
func (*Protocol) StrictRPF() bool { return true }

// Deliver implements migp.Protocol: exact shortest paths from the entry.
func (p *Protocol) Deliver(g *topology.Graph, entry migp.Node, source, group addr.Addr, members []migp.Node) map[migp.Node]int {
	p.noteMembership(group, members)
	dist, _ := g.BFS(entry)
	out := make(map[migp.Node]int, len(members))
	for _, m := range members {
		if dist[m] >= 0 {
			out[m] = dist[m]
		}
	}
	return out
}

// MembershipFloods returns how many domain-wide membership LSA floods have
// happened — the scaling cost the paper cites against MOSPF (§1).
func (p *Protocol) MembershipFloods() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.memberLSAs
}

func (p *Protocol) noteMembership(group addr.Addr, members []migp.Node) {
	sorted := append([]migp.Node(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sig := make([]byte, 0, len(sorted)*4)
	for _, n := range sorted {
		sig = append(sig, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lastSet[group] != string(sig) {
		p.lastSet[group] = string(sig)
		p.memberLSAs++
	}
}

var _ migp.Protocol = (*Protocol)(nil)
