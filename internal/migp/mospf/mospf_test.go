package mospf

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 1, 1)
	src = addr.MakeAddr(10, 0, 0, 1)
)

func line(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func TestExactShortestPaths(t *testing.T) {
	g := line(6)
	p := New()
	got := p.Deliver(g, 2, src, grp, []migp.Node{0, 5})
	if got[0] != 2 || got[5] != 3 {
		t.Fatalf("hops = %v", got)
	}
}

func TestMembershipLSAPerChange(t *testing.T) {
	g := line(6)
	p := New()
	p.Deliver(g, 0, src, grp, []migp.Node{5})
	p.Deliver(g, 0, src, grp, []migp.Node{5})
	if p.MembershipFloods() != 1 {
		t.Fatalf("LSAs = %d, want 1", p.MembershipFloods())
	}
	p.Deliver(g, 0, src, grp, []migp.Node{5, 3})
	p.Deliver(g, 0, src, grp, []migp.Node{3, 5}) // same set, reordered
	if p.MembershipFloods() != 2 {
		t.Fatalf("LSAs = %d, want 2", p.MembershipFloods())
	}
	p.Deliver(g, 0, src, grp, []migp.Node{3})
	if p.MembershipFloods() != 3 {
		t.Fatalf("LSAs = %d, want 3 (shrink is a change)", p.MembershipFloods())
	}
}

func TestPerGroupLSATracking(t *testing.T) {
	g := line(6)
	p := New()
	p.Deliver(g, 0, src, grp, []migp.Node{5})
	p.Deliver(g, 0, src, addr.MakeAddr(224, 2, 2, 2), []migp.Node{5})
	if p.MembershipFloods() != 2 {
		t.Fatalf("LSAs = %d, want one per group", p.MembershipFloods())
	}
}

func TestStrictRPFContract(t *testing.T) {
	if !New().StrictRPF() {
		t.Fatal("MOSPF computes source-rooted trees: strict RPF")
	}
}
