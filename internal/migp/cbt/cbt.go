// Package cbt implements the Core Based Trees delivery model (RFC 2189) as
// a MIGP for the MASC/BGMP architecture.
//
// CBT builds one bidirectional shared tree per group, rooted at a core
// router chosen by hashing the group over the candidate routers. Data
// flows in both directions along tree branches — the design BGMP adopts at
// the inter-domain level (§5.2) — so packets need not detour through the
// core when sender and receiver share a branch, and any entry border is
// acceptable (no strict RPF).
package cbt

import (
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

// Protocol is a CBT instance for one domain. Safe for concurrent use.
type Protocol struct {
	mu sync.Mutex
	// trees caches the BFS tree rooted at each group's core.
	// guarded by mu
	trees map[addr.Addr]*coreTree
}

type coreTree struct {
	core   migp.Node
	dist   []int
	parent []migp.Node
}

// New returns a CBT instance.
func New() *Protocol {
	return &Protocol{trees: map[addr.Addr]*coreTree{}}
}

// Name implements migp.Protocol.
func (*Protocol) Name() string { return "CBT" }

// StrictRPF implements migp.Protocol: the bidirectional tree accepts data
// from any direction.
func (*Protocol) StrictRPF() bool { return false }

// Core returns the core router for a group.
func (p *Protocol) Core(g *topology.Graph, group addr.Addr) migp.Node {
	return migp.HashGroup(group, g.NumDomains())
}

// Deliver implements migp.Protocol: hops are counted along the
// bidirectional tree path between entry and member — through their lowest
// common ancestor on the core-rooted tree, not necessarily through the
// core itself.
func (p *Protocol) Deliver(g *topology.Graph, entry migp.Node, source, group addr.Addr, members []migp.Node) map[migp.Node]int {
	t := p.tree(g, group)
	out := make(map[migp.Node]int, len(members))
	for _, m := range members {
		if h := migp.TreePath(t.dist, t.parent, entry, m); h >= 0 {
			out[m] = h
		}
	}
	return out
}

func (p *Protocol) tree(g *topology.Graph, group addr.Addr) *coreTree {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.trees[group]; ok {
		return t
	}
	core := migp.HashGroup(group, g.NumDomains())
	dist, parent := g.BFS(core)
	t := &coreTree{core: core, dist: dist, parent: parent}
	p.trees[group] = t
	return t
}

var _ migp.Protocol = (*Protocol)(nil)
