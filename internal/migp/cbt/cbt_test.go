package cbt

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 1, 1)
	src = addr.MakeAddr(10, 0, 0, 1)
)

func star(leaves int) *topology.Graph {
	g := topology.New(leaves + 1)
	for i := 1; i <= leaves; i++ {
		g.AddLink(0, topology.DomainID(i))
	}
	return g
}

func TestCoreStablePerGroup(t *testing.T) {
	g := star(6)
	p := New()
	if p.Core(g, grp) != p.Core(g, grp) {
		t.Fatal("core must be stable")
	}
}

func TestBidirectionalNoCoreDetour(t *testing.T) {
	// On a star, any leaf-to-leaf tree path is exactly 2 regardless of
	// where the core landed — the bidirectional property.
	g := star(6)
	p := New()
	got := p.Deliver(g, 1, src, grp, []migp.Node{2, 3})
	for m, h := range got {
		want := 2
		if int(p.Core(g, grp)) == 1 || migp.Node(m) == p.Core(g, grp) {
			// entry or member at the hub side can shorten it
			if h > 2 {
				t.Fatalf("hops[%v] = %d", m, h)
			}
			continue
		}
		if h != want {
			t.Fatalf("hops[%v] = %d, want %d", m, h, want)
		}
	}
}

func TestTreeCachedAcrossPackets(t *testing.T) {
	g := star(6)
	p := New()
	a := p.Deliver(g, 1, src, grp, []migp.Node{3})
	b := p.Deliver(g, 1, src, grp, []migp.Node{3})
	if a[3] != b[3] {
		t.Fatal("tree must be stable across packets")
	}
}

func TestDifferentGroupsMayDiffer(t *testing.T) {
	g := star(16)
	p := New()
	cores := map[migp.Node]bool{}
	for i := 0; i < 64; i++ {
		cores[p.Core(g, addr.Addr(0xe0000000+i*7919))] = true
	}
	if len(cores) < 2 {
		t.Fatal("core hash never spreads groups")
	}
}

func TestNonStrictRPF(t *testing.T) {
	if New().StrictRPF() {
		t.Fatal("CBT accepts data from any direction on the tree")
	}
}

func BenchmarkDeliverCached(b *testing.B) {
	g := topology.ASGraph(100, 20, 1)
	p := New()
	members := []migp.Node{3, 17, 42, 77, 99}
	p.Deliver(g, 0, src, grp, members) // warm the tree cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Deliver(g, 0, src, grp, members)
	}
}
