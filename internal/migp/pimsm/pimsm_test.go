package pimsm

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 1, 1)
	src = addr.MakeAddr(10, 0, 0, 1)
)

func line(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func TestRPDeterministicPerGroup(t *testing.T) {
	g := line(8)
	p := New(0)
	rp1 := p.RP(g, grp)
	rp2 := p.RP(g, grp)
	if rp1 != rp2 {
		t.Fatal("RP must be stable for a group")
	}
	if int(rp1) < 0 || int(rp1) >= 8 {
		t.Fatalf("RP %v out of range", rp1)
	}
}

func TestPathAlwaysViaRPWithoutSwitchover(t *testing.T) {
	g := line(8)
	p := New(0)
	rp := int(p.RP(g, grp))
	got := p.Deliver(g, 0, src, grp, []migp.Node{7})
	want := rp + (7 - rp) // entry 0 → RP → member 7 on a line
	if rp > 7 {
		want = rp + (rp - 7)
	}
	if got[7] != want {
		t.Fatalf("hops = %d, want %d (via RP %d)", got[7], want, rp)
	}
}

func TestSwitchoverNeverWorsens(t *testing.T) {
	g := topology.ASGraph(60, 10, 3)
	p := New(1)
	members := []migp.Node{11, 23, 45}
	first := p.Deliver(g, 2, src, grp, members)
	second := p.Deliver(g, 2, src, grp, members)
	for m := range first {
		if second[m] > first[m] {
			t.Fatalf("switchover worsened member %v: %d → %d", m, first[m], second[m])
		}
	}
}

func TestSwitchoverIsPerSource(t *testing.T) {
	g := line(8)
	p := New(1)
	p.Deliver(g, 0, src, grp, []migp.Node{7})
	p.Deliver(g, 0, src, grp, []migp.Node{7}) // src now on SPT
	// A different source is still on the RP tree for its first packet.
	other := addr.MakeAddr(10, 0, 0, 2)
	rp := int(p.RP(g, grp))
	got := p.Deliver(g, 0, other, grp, []migp.Node{7})
	wantRP := rp + (7 - rp)
	if rp > 7 {
		wantRP = rp + (rp - 7)
	}
	if got[7] != wantRP && rp != 0 {
		t.Fatalf("new source skipped the RP tree: %d vs %d", got[7], wantRP)
	}
}

func TestNonStrictRPF(t *testing.T) {
	if New(0).StrictRPF() {
		t.Fatal("PIM-SM registers senders; any entry border is fine")
	}
}

func BenchmarkDeliverRPTree(b *testing.B) {
	g := topology.ASGraph(100, 20, 1)
	p := New(0)
	members := []migp.Node{3, 17, 42, 77, 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Deliver(g, 0, src, grp, members)
	}
}
