// Package pimsm implements the PIM Sparse-Mode delivery model (RFC 2117)
// as a MIGP for the MASC/BGMP architecture.
//
// PIM-SM builds a unidirectional shared tree rooted at a Rendezvous Point
// chosen by hashing the group over the candidate routers: data travels
// from the sender up to the RP and then down the tree to receivers.
// Receivers may switch to a source-rooted shortest-path tree after
// observing traffic (the SPT switchover). PIM-SM tolerates packets
// entering the domain at any border (senders register with the RP), so
// RPF is not strict at domain entry.
package pimsm

import (
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

// Protocol is a PIM-SM instance for one domain. Safe for concurrent use.
type Protocol struct {
	// SPTThreshold is the number of packets from a source after which a
	// receiver switches from the RP tree to the shortest-path tree;
	// zero keeps everyone on the RP tree forever; 1 switches after the
	// first packet.
	SPTThreshold int

	mu   sync.Mutex
	seen map[key]int // guarded by mu
}

type key struct {
	src   addr.Addr
	group addr.Addr
}

// New returns a PIM-SM instance with the given SPT switchover threshold.
func New(sptThreshold int) *Protocol {
	return &Protocol{SPTThreshold: sptThreshold, seen: map[key]int{}}
}

// Name implements migp.Protocol.
func (*Protocol) Name() string { return "PIM-SM" }

// StrictRPF implements migp.Protocol: registering senders makes any entry
// border acceptable.
func (*Protocol) StrictRPF() bool { return false }

// RP returns the Rendezvous Point for a group: the hash of the group
// address over the domain's routers (§5.1).
func (p *Protocol) RP(g *topology.Graph, group addr.Addr) migp.Node {
	return migp.HashGroup(group, g.NumDomains())
}

// Deliver implements migp.Protocol: entry→RP→member on the shared tree, or
// entry→member after the receiver's SPT switchover.
func (p *Protocol) Deliver(g *topology.Graph, entry migp.Node, source, group addr.Addr, members []migp.Node) map[migp.Node]int {
	rp := p.RP(g, group)
	distEntry, _ := g.BFS(entry)
	distRP, _ := g.BFS(rp)

	k := key{source, group}
	p.mu.Lock()
	p.seen[k]++
	onSPT := p.SPTThreshold > 0 && p.seen[k] > p.SPTThreshold
	p.mu.Unlock()

	out := make(map[migp.Node]int, len(members))
	for _, m := range members {
		if distRP[m] < 0 || distEntry[rp] < 0 {
			continue
		}
		hops := distEntry[rp] + distRP[m]
		if onSPT && distEntry[m] >= 0 && distEntry[m] < hops {
			hops = distEntry[m]
		}
		out[m] = hops
	}
	return out
}

var _ migp.Protocol = (*Protocol)(nil)
