package migp_test

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/migp/pimsm"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// fabricRig assembles one domain's fabric with real BGMP components wired
// to recorders instead of peers.
type fabricRig struct {
	fab       *migp.Fabric
	comps     map[wire.RouterID]*bgmp.Component
	peerSends map[wire.RouterID][]wire.Message // per-router external sends
	delivered []migp.Node
	bestExit  wire.RouterID
	gribs     map[addr.Addr]bgp.Entry
}

func newFabricRig(t *testing.T, proto migp.Protocol, borders ...wire.RouterID) *fabricRig {
	t.Helper()
	g := topology.New(len(borders) + 2)
	for i := 0; i < g.NumDomains()-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	rig := &fabricRig{
		comps:     map[wire.RouterID]*bgmp.Component{},
		peerSends: map[wire.RouterID][]wire.Message{},
		gribs:     map[addr.Addr]bgp.Entry{},
	}
	rig.fab = migp.NewFabric(migp.FabricConfig{
		Domain:   5,
		Graph:    g,
		Protocol: proto,
		BestExit: func(a addr.Addr) wire.RouterID { return rig.bestExit },
		OnHostDeliver: func(n migp.Node, d *wire.Data) {
			rig.delivered = append(rig.delivered, n)
		},
	})
	for i, r := range borders {
		r := r
		adapter := rig.fab.AttachBorder(r, migp.Node(i))
		comp := bgmp.New(bgmp.Config{
			Router: r,
			Domain: 5,
			LookupGroup: func(a addr.Addr) (bgp.Entry, bool) {
				e, ok := rig.gribs[a]
				return e, ok
			},
			LookupSource: func(a addr.Addr) (bgp.Entry, bool) { return bgp.Entry{}, false },
			Internal:     func(id wire.RouterID) bool { _, ok := rig.comps[id]; return ok },
			SendPeer: func(to wire.RouterID, m wire.Message) {
				rig.peerSends[r] = append(rig.peerSends[r], m)
			},
			MIGP: adapter,
		})
		rig.fab.SetComponent(r, comp)
		rig.comps[r] = comp
	}
	return rig
}

var (
	fGroup = addr.MakeAddr(224, 3, 3, 3)
	fSrc   = addr.MakeAddr(10, 9, 9, 9)
)

func TestHostJoinNotifiesBestExit(t *testing.T) {
	rig := newFabricRig(t, dvmrp.New(), 101, 102)
	rig.bestExit = 102
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.fab.HostJoin(fGroup, 1)
	// The best exit (102) must have created (*,G) and sent a join to its
	// external next hop; 101 must not have.
	if !rig.comps[102].HasGroupState(fGroup) {
		t.Fatal("best exit did not LocalJoin")
	}
	if rig.comps[101].HasGroupState(fGroup) {
		t.Fatal("non-exit border joined")
	}
	if len(rig.peerSends[102]) != 1 {
		t.Fatalf("exit sends = %v", rig.peerSends[102])
	}
	// A second member does not re-notify.
	rig.fab.HostJoin(fGroup, 2)
	if len(rig.peerSends[102]) != 1 {
		t.Fatal("second member re-triggered the join")
	}
	// Leaves: only the last one prunes.
	rig.fab.HostLeave(fGroup, 2)
	if !rig.comps[102].HasGroupState(fGroup) {
		t.Fatal("premature prune")
	}
	rig.fab.HostLeave(fGroup, 1)
	if rig.comps[102].HasGroupState(fGroup) {
		t.Fatal("last leave did not prune")
	}
}

func TestInjectStrictRPFRejectsWrongEntry(t *testing.T) {
	rig := newFabricRig(t, dvmrp.New(), 101, 102)
	rig.bestExit = 102 // RPF expects entry at 102
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.fab.HostJoin(fGroup, 1)

	// Simulate tree data arriving at the WRONG border (101): its
	// component has no state, looks up the G-RIB (next hop internal 102)
	// and injects — which must fail RPF and encapsulate to 102.
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 102}
	rig.comps[101].HandlePeer(7, &wire.Data{Group: fGroup, Source: fSrc, TTL: 16, Payload: []byte("x")})
	if got := rig.fab.Stats().RPFDrops; got != 1 {
		t.Fatalf("RPF drops = %d, want 1", got)
	}
	// The encapsulated copy was decapsulated at 102 and delivered.
	if len(rig.delivered) == 0 {
		t.Fatal("members never received the packet")
	}
}

func TestInjectRelaxedRPFAcceptsAnyEntry(t *testing.T) {
	rig := newFabricRig(t, pimsm.New(0), 101, 102)
	rig.bestExit = 102
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.fab.HostJoin(fGroup, 1)
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 102}
	rig.comps[101].HandlePeer(7, &wire.Data{Group: fGroup, Source: fSrc, TTL: 16})
	if rig.fab.Stats().RPFDrops != 0 {
		t.Fatal("PIM-SM fabric must accept any entry border")
	}
	if len(rig.delivered) == 0 {
		t.Fatal("no delivery")
	}
}

func TestSendFromHostReachesAllBorders(t *testing.T) {
	rig := newFabricRig(t, dvmrp.New(), 101, 102)
	rig.bestExit = 101
	// 102 is on the tree for the group (simulate a remote child join).
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 9}, NextHop: 7}
	rig.comps[102].HandlePeer(8, &wire.GroupJoin{Group: fGroup})
	rig.peerSends[102] = nil

	rig.fab.SendFromHost(2, &wire.Data{Group: fGroup, Source: fSrc, TTL: 16})
	// 102 (on tree) forwarded to its child 8; 101 (stateless best exit —
	// external next hop 7) forwarded toward the root.
	found102, found101 := false, false
	for _, m := range rig.peerSends[102] {
		if _, ok := m.(*wire.Data); ok {
			found102 = true
		}
	}
	for _, m := range rig.peerSends[101] {
		if _, ok := m.(*wire.Data); ok {
			found101 = true
		}
	}
	if !found102 || !found101 {
		t.Fatalf("interior-origin data: tree border sent=%v, best exit sent=%v", found102, found101)
	}
}

func TestMemberNodesAndStats(t *testing.T) {
	rig := newFabricRig(t, dvmrp.New(), 101)
	rig.bestExit = 101
	rig.gribs[fGroup] = bgp.Entry{Route: wire.Route{Origin: 5}} // root domain
	rig.fab.HostJoin(fGroup, 1)
	rig.fab.HostJoin(fGroup, 2)
	if got := rig.fab.MemberNodes(fGroup); len(got) != 2 {
		t.Fatalf("member nodes = %v", got)
	}
	rig.fab.SendFromHost(0, &wire.Data{Group: fGroup, Source: fSrc, TTL: 16})
	if rig.fab.Stats().HostDeliveries != 2 {
		t.Fatalf("host deliveries = %d", rig.fab.Stats().HostDeliveries)
	}
	if rig.fab.Stats().InteriorHops < 2 {
		t.Fatalf("interior hops = %d", rig.fab.Stats().InteriorHops)
	}
	if rig.fab.Stats().Injected != 1 {
		t.Fatalf("injected = %d", rig.fab.Stats().Injected)
	}
}

func TestHostLeaveUnknownGroupHarmless(t *testing.T) {
	rig := newFabricRig(t, dvmrp.New(), 101)
	rig.fab.HostLeave(fGroup, 1) // must not panic
}
