// Package pimdm implements the PIM Dense-Mode delivery model as a MIGP for
// the MASC/BGMP architecture.
//
// PIM-DM, like DVMRP, floods data and prunes branches without members, but
// relies on the unicast routing table instead of carrying its own routes.
// In this interior model the difference shows up as periodic re-flooding:
// prune state expires after PruneLife packets and the next packet floods
// the domain again.
package pimdm

import (
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

// Protocol is a PIM-DM instance for one domain. Safe for concurrent use.
type Protocol struct {
	// PruneLife is how many packets a prune suppresses before state
	// expires and the next packet re-floods; zero means prunes never
	// expire (DVMRP-equivalent).
	PruneLife int

	mu     sync.Mutex
	state  map[key]int // packets since last flood; guarded by mu
	floods int         // guarded by mu
}

type key struct {
	src   addr.Addr
	group addr.Addr
}

// New returns a PIM-DM instance.
func New(pruneLife int) *Protocol {
	return &Protocol{PruneLife: pruneLife, state: map[key]int{}}
}

// Name implements migp.Protocol.
func (*Protocol) Name() string { return "PIM-DM" }

// StrictRPF implements migp.Protocol.
func (*Protocol) StrictRPF() bool { return true }

// Deliver implements migp.Protocol.
func (p *Protocol) Deliver(g *topology.Graph, entry migp.Node, source, group addr.Addr, members []migp.Node) map[migp.Node]int {
	k := key{source, group}
	p.mu.Lock()
	n, flooded := p.state[k]
	if !flooded || (p.PruneLife > 0 && n >= p.PruneLife) {
		p.state[k] = 0 // the flood itself; suppression counting restarts
		p.floods++
	} else {
		p.state[k] = n + 1
	}
	p.mu.Unlock()

	dist, _ := g.BFS(entry)
	out := make(map[migp.Node]int, len(members))
	for _, m := range members {
		if dist[m] >= 0 {
			out[m] = dist[m]
		}
	}
	return out
}

// Floods returns the number of domain-wide floods so far.
func (p *Protocol) Floods() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.floods
}

var _ migp.Protocol = (*Protocol)(nil)
