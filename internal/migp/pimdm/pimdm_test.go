package pimdm

import (
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/topology"
)

var (
	grp = addr.MakeAddr(224, 1, 1, 1)
	src = addr.MakeAddr(10, 0, 0, 1)
)

func line(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func TestFloodThenPruneCycle(t *testing.T) {
	g := line(4)
	p := New(3)
	// flood, 3 suppressed, flood, 3 suppressed → 2 floods in 8 packets
	for i := 0; i < 8; i++ {
		p.Deliver(g, 0, src, grp, []migp.Node{3})
	}
	if p.Floods() != 2 {
		t.Fatalf("floods = %d, want 2", p.Floods())
	}
}

func TestZeroPruneLifeNeverRefloods(t *testing.T) {
	g := line(4)
	p := New(0)
	for i := 0; i < 50; i++ {
		p.Deliver(g, 0, src, grp, []migp.Node{3})
	}
	if p.Floods() != 1 {
		t.Fatalf("floods = %d, want 1", p.Floods())
	}
}

func TestDeliveryHopsAreShortestPath(t *testing.T) {
	g := line(5)
	p := New(2)
	got := p.Deliver(g, 1, src, grp, []migp.Node{4, 0})
	if got[4] != 3 || got[0] != 1 {
		t.Fatalf("hops = %v", got)
	}
}

func TestPerSourcePruneState(t *testing.T) {
	g := line(4)
	p := New(0)
	p.Deliver(g, 0, src, grp, nil)
	p.Deliver(g, 0, addr.MakeAddr(10, 0, 0, 2), grp, nil)
	if p.Floods() != 2 {
		t.Fatalf("floods = %d, want one per source", p.Floods())
	}
}

func TestStrictRPFContract(t *testing.T) {
	if !New(0).StrictRPF() {
		t.Fatal("PIM-DM is flood-and-prune: strict RPF")
	}
}
