// Package maas implements a Multicast Address Allocation Server (paper
// §1, §4; draft-handley-malloc-arch): the per-domain service that assigns
// individual multicast addresses to group initiators out of the address
// ranges MASC acquired for the domain, and reports demand back to the MASC
// node so it can keep "ahead of the demand for multicast addresses in its
// domain".
//
// A group initiator (the sdr session directory in the paper) calls Lease;
// the resulting address determines the group's root domain — normally the
// initiator's own domain, which is what roots BGMP's shared tree locally.
package maas

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/simclock"
)

// Lease is one allocated multicast address.
type Lease struct {
	Addr    addr.Addr
	Expires time.Time
}

// Errors returned by Server.
var (
	// ErrNoSpace means every address in the domain's ranges is leased or
	// no range is live; the demand callback has been invoked.
	ErrNoSpace = errors.New("maas: no free multicast addresses in domain ranges")
	// ErrUnknownLease is returned by Renew/Release for absent leases.
	ErrUnknownLease = errors.New("maas: unknown lease")
)

// ConfigError reports an invalid Config field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("maas: invalid Config.%s: %s", e.Field, e.Reason)
}

// Config parameterizes a Server.
type Config struct {
	// Clock drives lease expiry; defaults to the real clock.
	Clock simclock.Clock
	// Rand randomizes address selection (sdr-style). Required: every
	// randomized decision must trace back to an explicit seed, so there is
	// no silent fallback.
	Rand *rand.Rand
	// OnDemand, if set, is called when a lease request cannot be
	// satisfied, with the number of additional addresses wanted; the
	// owner forwards it to the MASC node (RequestSpace). Called without
	// locks held.
	OnDemand func(need uint64)
}

// Server is a MAAS for one domain. Safe for concurrent use.
type Server struct {
	cfg Config

	mu     sync.Mutex
	ranges []managedRange          // guarded by mu
	leases map[addr.Addr]time.Time // guarded by mu
}

type managedRange struct {
	prefix  addr.Prefix
	expires time.Time
}

// NewServer returns an empty Server; add ranges as MASC wins them. A nil
// cfg.Rand is a *ConfigError: address selection is randomized, and an
// implicit fixed seed would hide nondeterminism bugs in multi-server
// setups.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Rand == nil {
		return nil, &ConfigError{Field: "Rand", Reason: "required; pass an explicitly seeded *rand.Rand"}
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	return &Server{cfg: cfg, leases: map[addr.Addr]time.Time{}}, nil
}

// AddRange makes a MASC-won prefix available for leasing until it expires.
// Re-adding a prefix updates its expiry (claim renewal).
func (s *Server) AddRange(p addr.Prefix, expires time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.ranges {
		if s.ranges[i].prefix == p {
			s.ranges[i].expires = expires
			return
		}
	}
	s.ranges = append(s.ranges, managedRange{prefix: p, expires: expires})
	sort.Slice(s.ranges, func(i, j int) bool {
		return addr.Compare(s.ranges[i].prefix, s.ranges[j].prefix) < 0
	})
}

// RemoveRange withdraws a prefix (MASC lost or released it). Existing
// leases inside it are revoked.
func (s *Server) RemoveRange(p addr.Prefix) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.ranges {
		if s.ranges[i].prefix == p {
			s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
			break
		}
	}
	for a := range s.leases {
		if p.Contains(a) && !s.coveredLocked(a) {
			delete(s.leases, a)
		}
	}
}

// Ranges returns the live ranges.
func (s *Server) Ranges() []addr.Prefix {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	out := make([]addr.Prefix, 0, len(s.ranges))
	for _, r := range s.ranges {
		if r.expires.After(now) {
			out = append(out, r.prefix)
		}
	}
	return out
}

// Lease allocates a currently unused multicast address for the given
// lifetime. The lease's lifetime is capped by the covering range's
// remaining lifetime (§4.3.1: a domain "may only claim a range for a
// lifetime less than or equal to the lifetime of the parent's range");
// applications must renew or re-acquire when the lease ends early.
func (s *Server) Lease(lifetime time.Duration) (Lease, error) {
	s.mu.Lock()
	now := s.cfg.Clock.Now()
	s.expireLocked(now)
	var lease Lease
	found := false
	// sdr-style: try random picks first, then linear scan.
	for _, r := range s.ranges {
		if !r.expires.After(now) {
			continue
		}
		if a, ok := s.pickLocked(r, now); ok {
			exp := now.Add(lifetime)
			if exp.After(r.expires) {
				exp = r.expires // capped by the range lifetime
			}
			s.leases[a] = exp
			lease = Lease{Addr: a, Expires: exp}
			found = true
			break
		}
	}
	var needed uint64
	if !found {
		needed = s.demandEstimateLocked()
	}
	s.mu.Unlock()
	if !found {
		if s.cfg.OnDemand != nil {
			s.cfg.OnDemand(needed)
		}
		return Lease{}, ErrNoSpace
	}
	return lease, nil
}

// pickLocked finds a free address in r.
func (s *Server) pickLocked(r managedRange, now time.Time) (addr.Addr, bool) {
	size := r.prefix.Size()
	for tries := 0; tries < 16; tries++ {
		a := r.prefix.Base + addr.Addr(uint64(s.cfg.Rand.Int63())%size)
		if _, used := s.leases[a]; !used {
			return a, true
		}
	}
	for off := uint64(0); off < size; off++ {
		a := r.prefix.Base + addr.Addr(off)
		if _, used := s.leases[a]; !used {
			return a, true
		}
	}
	return 0, false
}

// demandEstimateLocked sizes the next MASC request: double the current
// capacity, or a minimum block when empty.
func (s *Server) demandEstimateLocked() uint64 {
	var cap uint64
	for _, r := range s.ranges {
		cap += r.prefix.Size()
	}
	if cap == 0 {
		return 256
	}
	return cap
}

// Renew extends a live lease, again capped by its covering range.
func (s *Server) Renew(a addr.Addr, lifetime time.Duration) (Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	s.expireLocked(now)
	if _, ok := s.leases[a]; !ok {
		return Lease{}, ErrUnknownLease
	}
	exp := now.Add(lifetime)
	for _, r := range s.ranges {
		if r.prefix.Contains(a) && exp.After(r.expires) {
			exp = r.expires
		}
	}
	s.leases[a] = exp
	return Lease{Addr: a, Expires: exp}, nil
}

// Release ends a lease early.
func (s *Server) Release(a addr.Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.leases[a]; !ok {
		return ErrUnknownLease
	}
	delete(s.leases, a)
	return nil
}

// Live returns the number of unexpired leases.
func (s *Server) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked(s.cfg.Clock.Now())
	return len(s.leases)
}

// Utilization returns live leases divided by total range capacity.
func (s *Server) Utilization() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Clock.Now()
	s.expireLocked(now)
	var cap uint64
	for _, r := range s.ranges {
		if r.expires.After(now) {
			cap += r.prefix.Size()
		}
	}
	if cap == 0 {
		return 0
	}
	return float64(len(s.leases)) / float64(cap)
}

func (s *Server) expireLocked(now time.Time) {
	for a, exp := range s.leases {
		if !exp.After(now) {
			delete(s.leases, a)
		}
	}
}

func (s *Server) coveredLocked(a addr.Addr) bool {
	for _, r := range s.ranges {
		if r.prefix.Contains(a) {
			return true
		}
	}
	return false
}

// String aids debugging.
func (s *Server) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("maas{ranges=%d leases=%d}", len(s.ranges), len(s.leases))
}
