package maas

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/simclock"
)

var t0 = time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC)

func newTestServer(onDemand func(uint64)) (*Server, *simclock.Sim) {
	clk := simclock.NewSim(t0)
	s, err := NewServer(Config{Clock: clk, Rand: rand.New(rand.NewSource(7)), OnDemand: onDemand})
	if err != nil {
		panic(err)
	}
	return s, clk
}

func TestNewServerRejectsNilRand(t *testing.T) {
	s, err := NewServer(Config{Clock: simclock.NewSim(t0)})
	if s != nil || err == nil {
		t.Fatalf("NewServer without Rand = (%v, %v), want config error", s, err)
	}
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("error type = %T, want *ConfigError", err)
	}
	if ce.Field != "Rand" {
		t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, "Rand")
	}
}

func TestLeaseFromRange(t *testing.T) {
	s, _ := newTestServer(nil)
	p := addr.MustParsePrefix("224.0.1.0/24")
	s.AddRange(p, t0.Add(30*24*time.Hour))
	l, err := s.Lease(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(l.Addr) {
		t.Fatalf("leased %v outside range %v", l.Addr, p)
	}
	if !l.Expires.Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("expiry = %v", l.Expires)
	}
	if s.Live() != 1 {
		t.Fatalf("Live = %d", s.Live())
	}
}

func TestLeaseUniqueness(t *testing.T) {
	s, _ := newTestServer(nil)
	p := addr.MustParsePrefix("224.0.1.0/26") // 64 addresses
	s.AddRange(p, t0.Add(time.Hour*1000))
	seen := map[addr.Addr]bool{}
	for i := 0; i < 64; i++ {
		l, err := s.Lease(time.Hour)
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if seen[l.Addr] {
			t.Fatalf("duplicate address %v", l.Addr)
		}
		seen[l.Addr] = true
	}
	if _, err := s.Lease(time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("65th lease: %v, want ErrNoSpace", err)
	}
}

func TestLeaseCappedByRangeLifetime(t *testing.T) {
	s, _ := newTestServer(nil)
	rangeExp := t0.Add(24 * time.Hour)
	s.AddRange(addr.MustParsePrefix("224.0.1.0/24"), rangeExp)
	l, err := s.Lease(30 * 24 * time.Hour) // wants more than the range has
	if err != nil {
		t.Fatal(err)
	}
	if !l.Expires.Equal(rangeExp) {
		t.Fatalf("lease expiry %v, want capped at range expiry %v", l.Expires, rangeExp)
	}
}

func TestLeaseExpiryFreesAddress(t *testing.T) {
	s, clk := newTestServer(nil)
	p := addr.MustParsePrefix("224.0.1.0/30") // 4 addrs
	s.AddRange(p, t0.Add(1000*time.Hour))
	for i := 0; i < 4; i++ {
		if _, err := s.Lease(time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(2 * time.Hour)
	if s.Live() != 0 {
		t.Fatalf("Live after expiry = %d", s.Live())
	}
	if _, err := s.Lease(time.Hour); err != nil {
		t.Fatalf("lease after expiry should work: %v", err)
	}
}

func TestRenew(t *testing.T) {
	s, _ := newTestServer(nil)
	s.AddRange(addr.MustParsePrefix("224.0.1.0/24"), t0.Add(48*time.Hour))
	l, _ := s.Lease(time.Hour)
	r, err := s.Renew(l.Addr, 10*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Expires.Equal(t0.Add(10 * time.Hour)) {
		t.Fatalf("renewed expiry %v", r.Expires)
	}
	// Renewal also capped by range lifetime.
	r, _ = s.Renew(l.Addr, 100*time.Hour)
	if !r.Expires.Equal(t0.Add(48 * time.Hour)) {
		t.Fatalf("capped renewal %v", r.Expires)
	}
	if _, err := s.Renew(addr.MakeAddr(225, 0, 0, 1), time.Hour); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("renew unknown: %v", err)
	}
}

func TestRelease(t *testing.T) {
	s, _ := newTestServer(nil)
	s.AddRange(addr.MustParsePrefix("224.0.1.0/32"), t0.Add(time.Hour*100))
	l, _ := s.Lease(time.Hour)
	if _, err := s.Lease(time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatal("range of one address should be exhausted")
	}
	if err := s.Release(l.Addr); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lease(time.Hour); err != nil {
		t.Fatalf("lease after release: %v", err)
	}
	if err := s.Release(addr.MakeAddr(9, 9, 9, 9)); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("release unknown: %v", err)
	}
}

func TestOnDemandCalledWhenOutOfSpace(t *testing.T) {
	var demands []uint64
	s, _ := newTestServer(func(n uint64) { demands = append(demands, n) })
	// Empty server: first lease fails, demanding a starter block.
	if _, err := s.Lease(time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatal("empty server must fail")
	}
	if len(demands) != 1 || demands[0] != 256 {
		t.Fatalf("demands = %v, want [256]", demands)
	}
	// With a full /32, demand asks to double capacity.
	s.AddRange(addr.MustParsePrefix("224.0.1.0/32"), t0.Add(time.Hour*100))
	s.Lease(time.Hour)
	s.Lease(time.Hour)
	if len(demands) != 2 || demands[1] != 1 {
		t.Fatalf("demands = %v, want [256 1]", demands)
	}
}

func TestRemoveRangeRevokesLeases(t *testing.T) {
	s, _ := newTestServer(nil)
	p := addr.MustParsePrefix("224.0.1.0/24")
	s.AddRange(p, t0.Add(time.Hour*100))
	l, _ := s.Lease(time.Hour)
	s.RemoveRange(p)
	if s.Live() != 0 {
		t.Fatal("leases in removed range must be revoked")
	}
	if _, err := s.Renew(l.Addr, time.Hour); !errors.Is(err, ErrUnknownLease) {
		t.Fatal("revoked lease must not renew")
	}
	if len(s.Ranges()) != 0 {
		t.Fatal("range should be gone")
	}
}

func TestExpiredRangeNotUsed(t *testing.T) {
	s, clk := newTestServer(nil)
	s.AddRange(addr.MustParsePrefix("224.0.1.0/24"), t0.Add(time.Hour))
	clk.RunFor(2 * time.Hour)
	if _, err := s.Lease(time.Hour); !errors.Is(err, ErrNoSpace) {
		t.Fatal("expired range must not serve leases")
	}
	if len(s.Ranges()) != 0 {
		t.Fatal("expired range must not be listed")
	}
}

func TestReAddRangeUpdatesExpiry(t *testing.T) {
	s, clk := newTestServer(nil)
	p := addr.MustParsePrefix("224.0.1.0/24")
	s.AddRange(p, t0.Add(time.Hour))
	s.AddRange(p, t0.Add(100*time.Hour)) // renewal
	clk.RunFor(2 * time.Hour)
	if _, err := s.Lease(time.Hour); err != nil {
		t.Fatalf("renewed range should serve: %v", err)
	}
}

func TestUtilization(t *testing.T) {
	s, _ := newTestServer(nil)
	if s.Utilization() != 0 {
		t.Fatal("empty server utilization should be 0")
	}
	s.AddRange(addr.MustParsePrefix("224.0.1.0/30"), t0.Add(time.Hour*100)) // 4
	s.Lease(time.Hour)
	s.Lease(time.Hour)
	if u := s.Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestThirdPartyLease(t *testing.T) {
	// §7 address allocation interface: an initiator that knows its
	// dominant sources are elsewhere leases from the remote domain's
	// MAAS, rooting the tree there.
	local, _ := newTestServer(nil)
	remote, _ := newTestServer(nil)
	remoteRange := addr.MustParsePrefix("224.5.0.0/24")
	remote.AddRange(remoteRange, t0.Add(time.Hour*100))
	local.AddRange(addr.MustParsePrefix("224.9.0.0/24"), t0.Add(time.Hour*100))

	l, err := remote.Lease(time.Hour) // initiator calls the remote MAAS
	if err != nil {
		t.Fatal(err)
	}
	if !remoteRange.Contains(l.Addr) {
		t.Fatal("third-party lease must come from the remote range")
	}
}

func TestConcurrentLeases(t *testing.T) {
	s, _ := newTestServer(nil)
	s.AddRange(addr.MustParsePrefix("224.0.0.0/16"), t0.Add(time.Hour*100))
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[addr.Addr]bool{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l, err := s.Lease(time.Hour)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[l.Addr] {
					t.Errorf("duplicate concurrent lease %v", l.Addr)
				}
				seen[l.Addr] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
