// Package wire is a lint fixture: map iteration order escaping a protocol
// package through appends, event emission, and encoder writes.
package wire

import (
	"bytes"
	"sort"

	"mascbgmp/internal/obs"
)

// Leaky lets map order escape three ways.
func Leaky(m map[string]int, ob *obs.Observer, buf *bytes.Buffer) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: unsorted append
	}
	for k := range m {
		ob.Emit(obs.Event{}) // want: event emission
		buf.WriteString(k)   // want: encoder write
	}
	return keys
}

// SortedAfter is clean: the slice is sorted before it escapes.
func SortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Buckets is clean: the append target is declared inside the range, so
// iteration order cannot escape.
func Buckets(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// Justified carries a reviewed justification and is suppressed.
func Justified(m map[string]int, ob *obs.Observer) {
	//lint:sorted events are counted, not ordered, by every consumer
	for range m {
		ob.Emit(obs.Event{})
	}
}

// Bare has an annotation with no justification, which is itself a finding.
func Bare(m map[string]int) []string {
	var keys []string
	//lint:sorted
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
