// Package obs is a lint fixture stand-in for the observability bus.
package obs

// Kind labels an event.
type Kind int

// String renders the kind.
func (k Kind) String() string { return "kind" }

// Event is one bus event.
type Event struct{ Kind Kind }

// Observer receives events.
type Observer struct{}

// Emit publishes an event.
func (o *Observer) Emit(e Event) {}
