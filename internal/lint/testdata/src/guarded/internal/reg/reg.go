package reg

import "sync"

// Table demonstrates the guarded analyzer's annotation grammar.
type Table struct {
	mu   sync.Mutex
	rows map[string]int // guarded by mu
	hits int            // guarded by mu
	name string         // guarded by lock — malformed: no such mutex field
}

// Get locks the guard before touching guarded fields: clean.
func (t *Table) Get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++
	return t.rows[k]
}

// bump touches a guarded field without ever taking the lock: flagged.
func (t *Table) bump() {
	t.hits++
}

// resetLocked follows the *Locked naming convention for helpers called
// with the lock already held: clean.
func (t *Table) resetLocked() {
	t.rows = map[string]int{}
	t.hits = 0
}
