// Package obs is a lint fixture stand-in for the observability bus.
package obs

// KindSession is the canonical constant callers must use.
const KindSession = "session.down"

// Metrics counts events.
type Metrics struct{}

// Counter bumps a per-router counter.
func (m *Metrics) Counter(name, domain, router string) {}

// Global bumps a module-wide counter.
func (m *Metrics) Global(name string) {}

// Snapshot is a read-only view of the counters.
type Snapshot struct{}

// Get reads one counter.
func (s Snapshot) Get(name string) int { return 0 }

// Total sums a counter across routers.
func (s Snapshot) Total(name string) int { return 0 }
