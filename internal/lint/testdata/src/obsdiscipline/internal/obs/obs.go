// Package obs is a lint fixture stand-in for the observability bus.
package obs

// KindSession is the canonical constant callers must use.
const KindSession = "session.down"

// SpanRepair is the canonical span-name constant.
const SpanRepair = "bgmp.repair"

// HistDetect is the canonical histogram-name constant.
const HistDetect = "detect_ns"

// Metrics counts events.
type Metrics struct{}

// Counter bumps a per-router counter.
func (m *Metrics) Counter(name, domain, router string) {}

// Global bumps a module-wide counter.
func (m *Metrics) Global(name string) {}

// Histogram returns the named latency histogram.
func (m *Metrics) Histogram(name, domain, router string) *Histogram { return nil }

// Histogram records a value distribution.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {}

// Snapshot is a read-only view of the counters.
type Snapshot struct{}

// Get reads one counter.
func (s Snapshot) Get(name string) int { return 0 }

// Total sums a counter across routers.
func (s Snapshot) Total(name string) int { return 0 }

// TraceContext propagates span identity hop by hop.
type TraceContext struct{}

// Event is the span payload.
type Event struct{}

// Span is one timed operation; End closes it.
type Span struct{}

// End closes the span.
func (s Span) End() {}

// Context returns the span's propagation context.
func (s Span) Context() TraceContext { return TraceContext{} }

// Tracer allocates spans.
type Tracer struct{}

// Begin opens a root span.
func (t *Tracer) Begin(name string, e Event) Span { return Span{} }

// BeginChild opens a span under a propagated parent context.
func (t *Tracer) BeginChild(ctx TraceContext, name string, e Event) Span { return Span{} }
