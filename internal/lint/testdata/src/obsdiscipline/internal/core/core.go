// Package core is a lint fixture: obs bus names passed as inline string
// literals instead of package-level constants, plus unpaired spans.
package core

import "mascbgmp/internal/obs"

// Report reads counters both ways; the inline literals are findings.
func Report(m *obs.Metrics, s obs.Snapshot) int {
	m.Global("conflicts")              // want: inline literal
	m.Counter("claims", "a", "r1")     // want: inline literal
	total := s.Total(obs.KindSession)  // clean: package-level constant
	return total + s.Get("session.up") // want: inline literal
}

// Measure exercises the histogram name check both ways.
func Measure(m *obs.Metrics) {
	m.Histogram("detect_ns", "a", "r1").Observe(1)    // want: inline literal
	m.Histogram(obs.HistDetect, "a", "r1").Observe(2) // clean: constant
}

// TraceOps exercises the span name and Begin/End pairing checks.
func TraceOps(t *obs.Tracer) {
	sp := t.Begin(obs.SpanRepair, obs.Event{})                        // clean: constant, paired
	child := t.BeginChild(sp.Context(), "bgmp.join.hop", obs.Event{}) // want: inline literal
	child.End()
	sp.End()
	t.Begin(obs.SpanRepair, obs.Event{})                    // want: discarded span
	t.BeginChild(sp.Context(), obs.SpanRepair, obs.Event{}) // want: discarded span
}
