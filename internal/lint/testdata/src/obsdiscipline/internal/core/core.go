// Package core is a lint fixture: obs bus names passed as inline string
// literals instead of package-level constants.
package core

import "mascbgmp/internal/obs"

// Report reads counters both ways; the inline literals are findings.
func Report(m *obs.Metrics, s obs.Snapshot) int {
	m.Global("conflicts")              // want: inline literal
	m.Counter("claims", "a", "r1")     // want: inline literal
	total := s.Total(obs.KindSession)  // clean: package-level constant
	return total + s.Get("session.up") // want: inline literal
}
