package wire

// Data is a per-event payload struct; boxing it into an interface on a
// hot path is what the hotalloc fixture demonstrates.
type Data struct {
	Seq int
}
