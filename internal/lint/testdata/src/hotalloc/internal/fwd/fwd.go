package fwd

import (
	"fmt"

	"mascbgmp/internal/wire"
)

type sink interface {
	accept(v any)
}

// Deliver is the fixture's hot root; every construct below it should be
// flagged except the explicitly waived one.
//
//lint:hotpath
func Deliver(s sink, d wire.Data, names map[int]string) string {
	msg := fmt.Sprintf("got %d", d.Seq) // want: fmt call
	msg = msg + names[0]                // want: string concat
	s.accept(d)                         // want: interface boxing of wire.Data
	tags := map[string]int{}            // want: map literal
	tags["a"]++
	var out []string
	for i := 0; i < 3; i++ {
		out = append(out, names[i]) // want: unsized append in loop
	}
	//lint:alloc error path only, never taken per event
	_ = fmt.Errorf("waived")
	helper()
	return msg + out[0]
}

// helper is hot transitively through Deliver.
func helper() {
	_ = fmt.Sprintln("hot via Deliver") // want: fmt call, attributed to the root
}

// Cold is unreachable from any hot root: nothing in it is flagged, and its
// waiver suppresses no finding — the stalewaiver analyzer reports it.
func Cold() string {
	//lint:alloc leftover waiver from a deleted hot path
	return fmt.Sprintf("cold")
}
