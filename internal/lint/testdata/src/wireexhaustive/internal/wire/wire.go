package wire

// MsgType is the fixture's wire message kind registry.
type MsgType uint8

const (
	TypeInvalid MsgType = 0 // zero sentinel: exempt from coverage
	TypeJoin    MsgType = 1 // fully registered: clean
	TypePrune   MsgType = 2 // missing from the decoder switch
	TypeGraft   MsgType = 3 // decoder round-trip mismatch (and no encoder)
	TypeHello   MsgType = 4 // missing from MsgType.String
	TypeDead    MsgType = 5 // decoded but nothing encodes it
)

type Join struct{}

func (*Join) Type() MsgType { return TypeJoin }

type Prune struct{}

func (*Prune) Type() MsgType { return TypePrune }

type Graft struct{}

// Type returns the wrong kind: re-encoding a decoded *Graft changes the
// frame type.
func (*Graft) Type() MsgType { return TypeHello }

type Hello struct{}

func (*Hello) Type() MsgType { return TypeHello }

// Dead has no Type method, so TypeDead frames can be decoded but never
// produced.
type Dead struct{}

func newMessage(t MsgType) any {
	switch t {
	case TypeJoin:
		return &Join{}
	case TypeGraft:
		return &Graft{}
	case TypeHello:
		return &Hello{}
	case TypeDead:
		return &Dead{}
	}
	return nil
}

func (t MsgType) String() string {
	switch t {
	case TypeJoin:
		return "join"
	case TypePrune:
		return "prune"
	case TypeGraft:
		return "graft"
	case TypeDead:
		return "dead"
	}
	return "invalid"
}
