module mascbgmp

go 1.22
