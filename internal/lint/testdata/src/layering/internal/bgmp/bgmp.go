// Package bgmp is a lint fixture: it imports simclock, which the layering
// table does not declare for internal/bgmp.
package bgmp

import "mascbgmp/internal/simclock"

// C leaks the undeclared dependency.
var C simclock.Clock
