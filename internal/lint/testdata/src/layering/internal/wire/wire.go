// Package wire is a lint fixture: it imports bgmp, which sits above it in
// the DAG.
package wire

import "mascbgmp/internal/bgmp"

// C is an upward dependency.
var C = bgmp.C
