// Package simclock is a lint fixture stand-in for the simulated clock.
package simclock

// Clock is a placeholder.
type Clock struct{}
