// Package rogue is a lint fixture: an internal package absent from the
// layering table.
package rogue

// X exists so the package is non-empty.
var X int
