// Package wire is a lint fixture with no violations.
package wire

import "sort"

// Keys returns the sorted keys of m.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
