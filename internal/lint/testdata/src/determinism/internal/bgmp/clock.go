// Package bgmp is a lint fixture: wall-clock and global-rand misuse in a
// protocol package.
package bgmp

import (
	"math/rand"
	"time"
)

// Jitter draws timing from the wall clock and the global rand source;
// both are determinism violations.
func Jitter() time.Duration {
	start := time.Now()          // want: wall clock
	time.Sleep(time.Millisecond) // want: wall clock
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10) // explicit generator: allowed
	n := rand.Intn(10)
	_ = n                    // want: global source
	return time.Since(start) // want: wall clock
}
