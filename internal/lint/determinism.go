package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or wait on the
// wall clock. Everything that drives simulation logic must go through
// simclock.Clock instead, so same-seed runs replay identically.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// globalRandAllowed are the math/rand package-level functions that only
// construct explicit generators; everything else draws from the shared
// global source and is banned.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *Rand
}

// DefaultDeterminismAllowlist names the module-relative files whose job is
// real wall-clock time. Everything else must route time and randomness
// through simclock.Clock or an explicit *rand.Rand.
var DefaultDeterminismAllowlist = map[string]string{
	"internal/harness/harness.go": "benchmark harness: wall-clock trial timing is the deliverable",
	"internal/bench/run.go":       "benchmark result model: wall-clock suite timing is the deliverable",
	"internal/transport/peer.go":  "real net.Conn deadlines and keepalive pacing",
	"internal/transport/track.go": "Quiesce bounds real goroutines with a wall-clock timeout",
	"cmd/bgmpd/main.go":           "interactive daemon demo paced in real time",
}

// DeterminismAnalyzer flags wall-clock time usage and global math/rand
// usage outside internal/simclock and the allowlisted files.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "flag time.Now/Sleep/Since/... and global math/rand use outside internal/simclock and allowlisted files",
		Run:  runDeterminism,
	}
}

func runDeterminism(m *Module, p *Package) []Finding {
	if p.Rel == "internal/simclock" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		if _, ok := DefaultDeterminismAllowlist[m.relFile(f.Pos())]; ok {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := selectorPackage(p.Info, sel)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "time":
				if wallClockFuncs[name] && isFuncObject(p.Info, sel.Sel) {
					out = append(out, Finding{
						Analyzer: "determinism",
						Pos:      m.Position(sel.Pos()),
						Package:  p.Path,
						Message:  fmt.Sprintf("time.%s reads the wall clock; route it through simclock.Clock (or allowlist this file in internal/lint/determinism.go)", name),
					})
				}
			case "math/rand", "math/rand/v2":
				if !globalRandAllowed[name] && isFuncObject(p.Info, sel.Sel) {
					out = append(out, Finding{
						Analyzer: "determinism",
						Pos:      m.Position(sel.Pos()),
						Package:  p.Path,
						Message:  fmt.Sprintf("rand.%s draws from the global source; use an explicit seeded *rand.Rand", name),
					})
				}
			}
			return true
		})
	}
	return out
}

// selectorPackage reports the import path of the package a selector's
// base identifier names, if it names a package at all.
func selectorPackage(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isFuncObject reports whether the identifier resolves to a function (as
// opposed to a type, const, or var of the same package).
func isFuncObject(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Func)
	return ok
}
