// Package lint is the repo's stdlib-only static-analysis pass. It loads
// the module with go/parser + go/types (resolving the standard library
// through the source importer, so no x/tools dependency) and enforces the
// invariants the paper reproduction depends on but that previously lived
// only as prose in CLAUDE.md:
//
//   - determinism: no wall-clock (time.Now/Sleep/Since/...) or global
//     math/rand calls outside internal/simclock and a short allowlist of
//     files whose job is real time (benchmark timing, socket deadlines);
//   - layering: the documented low→high internal import DAG (addr,
//     simclock, harness, topology, wire → transport, bgp, masc, maas,
//     migp, bgmp → trees, experiments → core → bench → facade) — every
//     internal import edge must be declared in the layering table;
//   - maporder: no `range` over a map in a protocol package whose body
//     lets iteration order escape (appending to an outer slice, emitting
//     an obs event, writing to a message/encoder) unless the result is
//     sorted afterwards or the site carries a `//lint:sorted` justification;
//   - obsdiscipline: counter names passed to the obs bus must come from
//     package-level constants, never inline string literals.
//
// The analyzers run over every non-test file of the module; cmd/masclint
// is the CLI and lint_test.go keeps `go test ./...` self-enforcing.
package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos is the module-relative "file:line:col" position.
	Pos string `json:"pos"`
	// Package is the import path of the offending package.
	Package string `json:"package"`
	// Message describes the violation and how to fix it.
	Message string `json:"message"`
}

// String renders the finding as one grep-friendly line.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Run is called once per loaded
// package, in dependency order.
type Analyzer struct {
	// Name is the analyzer's short identifier (the -<name> flag of
	// cmd/masclint).
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects one package and returns its findings.
	Run func(m *Module, p *Package) []Finding
}

// Analyzers returns all registered analyzers in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		GuardedAnalyzer(),
		HotAllocAnalyzer(),
		LayeringAnalyzer(),
		MapOrderAnalyzer(),
		ObsDisciplineAnalyzer(),
		StaleWaiverAnalyzer(),
		WireExhaustiveAnalyzer(),
	}
}

// AnalyzerByName returns the analyzer with the given name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies every analyzer to every package of the module and
// returns the findings sorted by (position, analyzer).
func RunAnalyzers(m *Module, as []*Analyzer) []Finding {
	var out []Finding
	for _, p := range m.Pkgs {
		for _, a := range as {
			out = append(out, a.Run(m, p)...)
		}
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by position (file, then numeric line and
// column) then analyzer name, so output is deterministic regardless of
// analyzer interleaving.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if c := comparePos(fs[i].Pos, fs[j].Pos); c != 0 {
			return c < 0
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// comparePos orders "file:line:col" strings with numeric line/col.
func comparePos(a, b string) int {
	af, al, ac := splitPos(a)
	bf, bl, bc := splitPos(b)
	switch {
	case af != bf:
		return strings.Compare(af, bf)
	case al != bl:
		return al - bl
	default:
		return ac - bc
	}
}

func splitPos(pos string) (file string, line, col int) {
	file = pos
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		col, _ = strconv.Atoi(file[i+1:])
		file = file[:i]
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		line, _ = strconv.Atoi(file[i+1:])
		file = file[:i]
	}
	return file, line, col
}
