package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// layerSpec declares one internal package's place in the import DAG: its
// layer (for upward-vs-undeclared messages) and the exact set of internal
// packages it may import.
type layerSpec struct {
	layer   int
	imports []string
}

// layerTable is the machine-readable form of the CLAUDE.md layering rule
// (low → high): addr, simclock, harness, topology, wire → obs → transport,
// bgp, masc, maas, faultinject → bgmp, liveness → migp (+ subpackages) → trees,
// experiments → core → bench → facade. Every internal package and every
// internal import edge must be declared here; adding a package or an edge
// is a deliberate one-line change reviewed with the code that needs it.
var layerTable = map[string]layerSpec{
	"internal/addr":     {layer: 0},
	"internal/simclock": {layer: 0},
	"internal/harness":  {layer: 0},
	"internal/topology": {layer: 0},
	"internal/lint":     {layer: 0},

	"internal/wire": {layer: 1, imports: []string{"internal/addr"}},

	// The declarative workload layer: scenario files and membership
	// generators. Sits directly above topology — it knows graphs and
	// membership, nothing about allocators or trees; the experiments
	// engine applies its op streams to protocol state.
	"internal/scenario": {layer: 1, imports: []string{"internal/topology"}},

	"internal/obs": {layer: 2, imports: []string{"internal/addr", "internal/wire"}},

	"internal/transport":   {layer: 3, imports: []string{"internal/obs", "internal/wire"}},
	"internal/bgp":         {layer: 3, imports: []string{"internal/addr", "internal/obs", "internal/simclock", "internal/wire"}},
	"internal/masc":        {layer: 3, imports: []string{"internal/addr", "internal/obs", "internal/simclock", "internal/wire"}},
	"internal/maas":        {layer: 3, imports: []string{"internal/addr", "internal/simclock"}},
	"internal/faultinject": {layer: 3, imports: []string{"internal/obs", "internal/simclock", "internal/wire"}},

	"internal/bgmp": {layer: 4, imports: []string{"internal/addr", "internal/bgp", "internal/obs", "internal/wire"}},

	// The fast-liveness detector sits beside bgmp: it rides the fault
	// plane (its own message class) and feeds core's session supervisor.
	"internal/liveness": {layer: 4, imports: []string{
		"internal/faultinject", "internal/obs", "internal/simclock", "internal/wire"}},

	"internal/migp": {layer: 5, imports: []string{"internal/addr", "internal/bgmp", "internal/topology", "internal/wire"}},

	// The pluggable forwarding planes sit beside migp: they build on bgmp
	// (shared-tree delegate, Target model) and the RIB types, and are wired
	// to the MIGP by core through migp's structural Border interface.
	"internal/dataplane": {layer: 5, imports: []string{
		"internal/addr", "internal/bgmp", "internal/bgp", "internal/obs", "internal/wire"}},

	"internal/migp/cbt":   {layer: 6, imports: []string{"internal/addr", "internal/migp", "internal/topology"}},
	"internal/migp/dvmrp": {layer: 6, imports: []string{"internal/addr", "internal/migp", "internal/topology"}},
	"internal/migp/mospf": {layer: 6, imports: []string{"internal/addr", "internal/migp", "internal/topology"}},
	"internal/migp/pimdm": {layer: 6, imports: []string{"internal/addr", "internal/migp", "internal/topology"}},
	"internal/migp/pimsm": {layer: 6, imports: []string{"internal/addr", "internal/migp", "internal/topology"}},

	"internal/trees": {layer: 7, imports: []string{"internal/topology"}},

	"internal/experiments": {layer: 8, imports: []string{
		"internal/addr", "internal/dataplane", "internal/harness", "internal/masc",
		"internal/migp", "internal/obs", "internal/scenario", "internal/topology",
		"internal/trees", "internal/wire"}},

	"internal/core": {layer: 9, imports: []string{
		"internal/addr", "internal/bgmp", "internal/bgp", "internal/dataplane",
		"internal/faultinject", "internal/harness", "internal/liveness", "internal/maas",
		"internal/masc", "internal/migp", "internal/migp/dvmrp", "internal/obs",
		"internal/simclock", "internal/topology", "internal/transport", "internal/wire"}},

	"internal/bench": {layer: 10, imports: []string{
		"internal/core", "internal/dataplane", "internal/experiments",
		"internal/harness", "internal/obs", "internal/scenario"}},
}

// LayeringAnalyzer enforces the documented internal import DAG: every
// internal package must appear in the layering table and may only import
// the internal packages its table entry declares.
func LayeringAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "enforce the documented low→high internal import DAG; fail on upward or undeclared imports",
		Run:  runLayering,
	}
}

func runLayering(m *Module, p *Package) []Finding {
	if !strings.HasPrefix(p.Rel, "internal/") {
		// The facade, cmd, and examples sit above every internal package
		// and may import any of them.
		return nil
	}
	spec, declared := layerTable[p.Rel]
	if !declared {
		pos := p.Path + ":1:1"
		if len(p.Files) > 0 {
			pos = m.Position(p.Files[0].Package)
		}
		return []Finding{{
			Analyzer: "layering",
			Pos:      pos,
			Package:  p.Path,
			Message:  fmt.Sprintf("internal package %s is not declared in the layering table; add it (and its allowed imports) to internal/lint/layering.go", p.Rel),
		}}
	}
	allowed := map[string]bool{}
	for _, imp := range spec.imports {
		allowed[imp] = true
	}
	var out []Finding
	for _, f := range p.Files {
		for _, spec2 := range f.Imports {
			ip, err := strconv.Unquote(spec2.Path.Value)
			if err != nil {
				continue
			}
			rel, local := m.relOf(ip)
			if !local {
				continue
			}
			if !strings.HasPrefix(rel, "internal/") {
				out = append(out, Finding{
					Analyzer: "layering",
					Pos:      m.Position(spec2.Pos()),
					Package:  p.Path,
					Message:  fmt.Sprintf("internal package %s imports %s above the internal tree; internal packages must not depend on the facade or command layer", p.Rel, ip),
				})
				continue
			}
			if allowed[rel] {
				continue
			}
			kind := "undeclared"
			if tgt, ok := layerTable[rel]; ok && tgt.layer >= spec.layer {
				kind = "upward"
			}
			out = append(out, Finding{
				Analyzer: "layering",
				Pos:      m.Position(spec2.Pos()),
				Package:  p.Path,
				Message: fmt.Sprintf("%s import: %s (layer %d) may not import %s; the DAG in internal/lint/layering.go declares its imports as [%s]",
					kind, p.Rel, spec.layer, rel, strings.Join(sortedStrings(spec.imports), " ")),
			})
		}
	}
	return out
}

// relOf converts a full import path to its module-relative form.
func (m *Module) relOf(importPath string) (rel string, local bool) {
	if importPath == m.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, m.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

func sortedStrings(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}
