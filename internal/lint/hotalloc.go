package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotRoot names one built-in hot-path entry point: a function (optionally a
// method of recv) in the package at the module-relative directory rel. The
// set mirrors the per-event entry points of the architecture: every
// data-plane Deliver implementation, the migp interior Protocol Delivers and
// the fabric's per-packet distribution loop, and the harness trial body.
// Additional roots are annotated in-source with `//lint:hotpath`.
type hotRoot struct {
	rel  string
	recv string // receiver type name; "" for plain functions
	name string
}

var defaultHotRoots = []hotRoot{
	{"internal/bgmp", "Component", "Deliver"},
	{"internal/dataplane", "sharedTree", "Deliver"},
	{"internal/dataplane", "overlay", "Deliver"},
	{"internal/migp", "Fabric", "deliver"},
	{"internal/migp/cbt", "Protocol", "Deliver"},
	{"internal/migp/dvmrp", "Protocol", "Deliver"},
	{"internal/migp/mospf", "Protocol", "Deliver"},
	{"internal/migp/pimdm", "Protocol", "Deliver"},
	{"internal/migp/pimsm", "Protocol", "Deliver"},
	{"internal/harness", "", "runTrial"},
}

// HotAllocAnalyzer flags allocation-heavy constructs in functions reachable
// from the forwarding/delivery hot paths: fmt.* calls, non-constant string
// concatenation, per-event map/slice composite literals, append growth in a
// loop without preallocated capacity, and interface boxing of wire/obs
// structs. Roots are the built-in entry points above plus any function
// annotated `//lint:hotpath`; a site is waived with `//lint:alloc <why>`.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "flag allocation-heavy constructs (fmt.*, string concat, map/slice literals, unsized append loops, interface boxing) reachable from //lint:hotpath roots and the Deliver hot paths",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(m *Module, p *Package) []Finding {
	st := hotAllocState(m)
	return st.findings[p.Path]
}

// hotState is the memoized whole-module hotalloc result: the hot function
// set with root attribution, per-package findings, and the waiver lines
// each file consumed (for stale-waiver detection).
type hotState struct {
	findings map[string][]Finding
	// usedWaivers maps module-relative file -> waiver comment line ->
	// consumed (a finding existed at or below the waiver).
	usedWaivers map[string]map[int]bool
}

func hotAllocState(m *Module) *hotState {
	return m.memoize("hotalloc", func() any { return buildHotState(m) }).(*hotState)
}

// funcInfo is one module function in the call graph.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// callees are the statically resolvable module-local callees plus the
	// interface-dispatch candidates.
	callees []*types.Func
	// hotRoot is the attribution label once the function is marked hot.
	hotRoot string
}

func buildHotState(m *Module) *hotState {
	funcs := map[*types.Func]*funcInfo{}
	var order []*funcInfo // deterministic iteration order (file position)
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{obj: obj, decl: fd, pkg: p}
				funcs[obj] = fi
				order = append(order, fi)
			}
		}
	}

	ifaceMethods := interfaceMethodIndex(m)
	for _, fi := range order {
		fi.callees = collectCallees(fi.pkg, fi.decl, ifaceMethods)
	}

	// Seed the hot set: built-in roots plus //lint:hotpath annotations.
	type seed struct {
		fi   *funcInfo
		root string
	}
	var seeds []seed
	for _, fi := range order {
		rel := strings.TrimPrefix(strings.TrimPrefix(fi.pkg.Path, m.Path), "/")
		for _, r := range defaultHotRoots {
			if rel == r.rel && fi.decl.Name.Name == r.name && recvTypeName(fi.decl) == r.recv {
				seeds = append(seeds, seed{fi, funcLabel(fi)})
			}
		}
		if hasHotPathComment(m, fi.decl) {
			seeds = append(seeds, seed{fi, funcLabel(fi)})
		}
	}

	// BFS from the seeds; first (deterministic) root wins the attribution.
	var queue []*funcInfo
	for _, s := range seeds {
		if s.fi.hotRoot == "" {
			s.fi.hotRoot = s.root
			queue = append(queue, s.fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range fi.callees {
			cfi, ok := funcs[callee]
			if !ok || cfi.hotRoot != "" {
				continue
			}
			cfi.hotRoot = fi.hotRoot
			queue = append(queue, cfi)
		}
	}

	st := &hotState{findings: map[string][]Finding{}, usedWaivers: map[string]map[int]bool{}}
	for _, fi := range order {
		if fi.hotRoot == "" {
			continue
		}
		w := &hotWalker{m: m, p: fi.pkg, root: fi.hotRoot}
		w.waivers = allocComments(m, fileOf(fi.pkg, fi.decl.Pos()))
		w.check(fi.decl)
		file := m.relFile(fi.decl.Pos())
		for line := range w.used {
			u := st.usedWaivers[file]
			if u == nil {
				u = map[int]bool{}
				st.usedWaivers[file] = u
			}
			u[line] = true
		}
		st.findings[fi.pkg.Path] = append(st.findings[fi.pkg.Path], w.findings...)
	}
	for path := range st.findings {
		SortFindings(st.findings[path])
	}
	return st
}

// interfaceMethodIndex maps (interface method name) to the module-local
// concrete methods that can stand behind it: for every module-local named
// type T and interface I it implements, T's implementation of each of I's
// methods. Interface dispatch in the call graph resolves through this
// index, so hotness propagates through Backend.Deliver-style calls.
func interfaceMethodIndex(m *Module) map[*types.Func][]*types.Func {
	// Collect the module's named types and interfaces.
	var named []*types.Named
	var ifaces []*types.Named
	for _, p := range m.Pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(n) {
				ifaces = append(ifaces, n)
			} else {
				named = append(named, n)
			}
		}
	}
	out := map[*types.Func][]*types.Func{}
	for _, in := range ifaces {
		iface := in.Underlying().(*types.Interface)
		for _, cn := range named {
			ptr := types.NewPointer(cn)
			if !types.Implements(cn, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, cn.Obj().Pkg(), im.Name())
				if cm, ok := obj.(*types.Func); ok && cm.Pkg() != nil {
					out[im] = append(out[im], cm)
				}
			}
		}
	}
	return out
}

// collectCallees resolves the calls in one function body: static calls to
// module-local functions, plus interface-dispatch candidates.
func collectCallees(p *Package, fd *ast.FuncDecl, ifaceMethods map[*types.Func][]*types.Func) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			fn, _ = p.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
		}
		if fn == nil {
			return true
		}
		if impls, ok := ifaceMethods[fn]; ok {
			out = append(out, impls...)
			return true
		}
		out = append(out, fn)
		return true
	})
	return out
}

// recvTypeName returns the receiver's type name ("" for plain functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// funcLabel renders a function for finding messages: pkg.(*Recv).Name.
func funcLabel(fi *funcInfo) string {
	pkg := fi.obj.Pkg().Name()
	if r := recvTypeName(fi.decl); r != "" {
		return fmt.Sprintf("%s.(*%s).%s", pkg, r, fi.decl.Name.Name)
	}
	return pkg + "." + fi.decl.Name.Name
}

// hasHotPathComment reports whether the declaration carries a
// `//lint:hotpath` annotation (in its doc comment or on the decl line).
func hasHotPathComment(m *Module, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "lint:hotpath") {
				return true
			}
		}
	}
	return false
}

func fileOf(p *Package, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// allocComments maps line numbers to the justification text of
// `//lint:alloc` comments in the file.
func allocComments(m *Module, f *ast.File) map[int]string {
	out := map[int]string{}
	if f == nil {
		return out
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:alloc"); ok {
				out[m.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// hotWalker scans one hot function body for allocation-heavy constructs.
type hotWalker struct {
	m        *Module
	p        *Package
	root     string
	waivers  map[int]string
	used     map[int]bool
	findings []Finding
}

func (w *hotWalker) check(fd *ast.FuncDecl) {
	w.used = map[int]bool{}
	decls := localSliceDecls(w.p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.checkFmtCall(n)
			w.checkBoxingCall(n)
		case *ast.BinaryExpr:
			w.checkConcat(n)
		case *ast.AssignStmt:
			w.checkConcatAssign(n)
		case *ast.CompositeLit:
			w.checkCompositeLit(n)
		}
		return true
	})
	w.checkAppendLoops(fd, decls)
}

// flag records a finding unless a `//lint:alloc <why>` waiver covers the
// site (same line or the line above); an empty justification is itself a
// finding, mirroring //lint:sorted.
func (w *hotWalker) flag(pos token.Pos, msg string) {
	line := w.m.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		if why, ok := w.waivers[l]; ok {
			w.used[l] = true
			if why == "" {
				w.findings = append(w.findings, Finding{
					Analyzer: "hotalloc",
					Pos:      w.m.Position(pos),
					Package:  w.p.Path,
					Message:  "//lint:alloc needs a one-line justification for why this hot-path allocation is acceptable",
				})
			}
			return
		}
	}
	w.findings = append(w.findings, Finding{
		Analyzer: "hotalloc",
		Pos:      w.m.Position(pos),
		Package:  w.p.Path,
		Message:  fmt.Sprintf("%s (hot path via %s; fix or add //lint:alloc <why>)", msg, w.root),
	})
}

func (w *hotWalker) checkFmtCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	w.flag(call.Pos(), fmt.Sprintf("fmt.%s allocates per call", fn.Name()))
}

// checkConcat flags non-constant string concatenation.
func (w *hotWalker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := w.p.Info.Types[ast.Expr(be)]
	if !ok || tv.Value != nil || tv.Type == nil {
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	w.flag(be.Pos(), "string concatenation allocates per event")
}

func (w *hotWalker) checkConcatAssign(as *ast.AssignStmt) {
	if as.Tok != token.ADD_ASSIGN || len(as.Lhs) != 1 {
		return
	}
	tv, ok := w.p.Info.Types[as.Lhs[0]]
	if !ok || tv.Type == nil {
		return
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return
	}
	w.flag(as.Pos(), "string concatenation allocates per event")
}

// checkCompositeLit flags map and slice composite literals: each evaluation
// is a fresh heap allocation. make() with a size hint is the sanctioned
// replacement (sized once, reused by append).
func (w *hotWalker) checkCompositeLit(cl *ast.CompositeLit) {
	tv, ok := w.p.Info.Types[ast.Expr(cl)]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		w.flag(cl.Pos(), "map literal allocates per event; hoist it or size it with make")
	case *types.Slice:
		w.flag(cl.Pos(), "slice literal allocates per event; hoist it or preallocate with make")
	}
}

// checkBoxingCall flags arguments that box a wire/obs struct value into an
// interface parameter: every such call heap-allocates a copy of the struct.
func (w *hotWalker) checkBoxingCall(call *ast.CallExpr) {
	tv, ok := w.p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() && !sig.Variadic() {
			break
		}
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else {
			pt = sig.Params().At(i).Type()
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := w.p.Info.Types[arg].Type
		if at == nil || !isWireObsStruct(at) {
			continue
		}
		w.flag(arg.Pos(), fmt.Sprintf("%s boxed into an interface argument allocates per event; pass a pointer or restructure", at.String()))
	}
}

// isWireObsStruct reports whether t is a non-pointer named struct from an
// internal/wire or internal/obs package (the per-event payload types).
func isWireObsStruct(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return strings.HasSuffix(pkg.Path(), "internal/wire") || strings.HasSuffix(pkg.Path(), "internal/obs")
}

// localSliceDecls records, for slices declared in this function, whether
// the declaration preallocates capacity: `var x []T`, `x := []T{}` and
// unsized `make` do not; `make([]T, n)` / `make([]T, 0, c)` do.
func localSliceDecls(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	prealloc := map[types.Object]bool{}
	record := func(id *ast.Ident, init ast.Expr) {
		obj := p.Info.Defs[id]
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		prealloc[obj] = sliceInitPreallocates(p, init)
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var init ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					init = n.Rhs[i]
				}
				record(id, init)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					record(id, init)
				}
			}
		}
		return true
	})
	return prealloc
}

// sliceInitPreallocates reports whether a slice initializer reserves
// capacity: a make with a nonzero length or an explicit capacity, or any
// expression other than an empty literal (copies, function results, and
// conversions carry their own backing array).
func sliceInitPreallocates(p *Package, init ast.Expr) bool {
	switch e := init.(type) {
	case nil:
		return false // var x []T
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		if len(e.Args) >= 3 {
			return true // explicit capacity
		}
		if len(e.Args) == 2 {
			// make([]T, n): preallocated unless n is the constant 0.
			tv := p.Info.Types[e.Args[1]]
			return tv.Value == nil || tv.Value.String() != "0"
		}
		return false
	default:
		return true
	}
}

// checkAppendLoops flags `x = append(x, ...)` inside a loop when x was
// declared in this function without preallocated capacity: every growth
// step reallocates and copies on the hot path.
func (w *hotWalker) checkAppendLoops(fd *ast.FuncDecl, prealloc map[types.Object]bool) {
	var walk func(n ast.Node, loop ast.Node)
	walk = func(n ast.Node, loop ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.ForStmt:
				if c != n {
					walk(c.Body, c)
					return false
				}
			case *ast.RangeStmt:
				if c != n {
					walk(c.Body, c)
					return false
				}
			case *ast.CallExpr:
				if loop == nil {
					return true
				}
				id, ok := c.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					return true
				}
				if b, ok := w.p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
					return true
				}
				if len(c.Args) == 0 {
					return true
				}
				obj := rootObject(w.p.Info, c.Args[0])
				if obj == nil {
					return true
				}
				pre, local := prealloc[obj]
				if !local || pre {
					return true
				}
				if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
					return true // declared inside the loop: per-iteration storage
				}
				w.flag(c.Pos(), fmt.Sprintf("append to %q grows an unsized slice inside a loop; preallocate its capacity", types.ExprString(c.Args[0])))
			}
			return true
		})
	}
	walk(fd.Body, nil)
}
