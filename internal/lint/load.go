package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Module is one loaded Go module: every non-test package parsed and
// typechecked in dependency order against a shared FileSet.
type Module struct {
	// Root is the absolute module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the FileSet all package positions resolve through.
	Fset *token.FileSet
	// Pkgs holds the packages in dependency order (imports first).
	Pkgs []*Package

	byPath map[string]*Package

	// memo caches cross-package analysis state (call graphs, guarded-field
	// tables) so analyzers that need a whole-module view compute it once.
	memoMu sync.Mutex
	memo   map[string]any
}

// memoize returns the cached value for key, computing it with f on first
// use. Safe for concurrent use by analyzers.
func (m *Module) memoize(key string, f func() any) any {
	m.memoMu.Lock()
	defer m.memoMu.Unlock()
	if m.memo == nil {
		m.memo = map[string]any{}
	}
	v, ok := m.memo[key]
	if !ok {
		v = f()
		m.memo[key] = v
	}
	return v
}

// Package is one parsed and typechecked package of the module.
type Package struct {
	// Path is the full import path (module path + "/" + Rel).
	Path string
	// Rel is the module-relative directory ("" for the root package).
	Rel string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// Imports holds the module-local import paths this package uses.
	Imports []string
}

// The standard library is typechecked from GOROOT/src through the source
// importer; sharing one importer (and its FileSet) across Load calls means
// each stdlib package is checked at most once per process.
var (
	sharedOnce sync.Once
	sharedFset *token.FileSet
	stdImp     types.ImporterFrom
)

func sharedImporter() (*token.FileSet, types.ImporterFrom) {
	sharedOnce.Do(func() {
		sharedFset = token.NewFileSet()
		stdImp = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	})
	return sharedFset, stdImp
}

// Load parses and typechecks the module containing dir (searching upward
// for go.mod), skipping _test.go files, testdata, vendor, and nested
// modules. Analyzer runs need full type information, so any parse or type
// error fails the load.
func Load(dir string) (*Module, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset, imp := sharedImporter()
	m := &Module{Root: root, Path: modPath, Fset: fset, byPath: map[string]*Package{}}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	parsed := map[string]*Package{} // by import path
	for _, d := range dirs {
		p, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			parsed[p.Path] = p
		}
	}

	order, err := dependencyOrder(parsed)
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		if err := m.check(p, imp); err != nil {
			return nil, err
		}
		m.byPath[p.Path] = p
		m.Pkgs = append(m.Pkgs, p)
	}
	return m, nil
}

// PackageByRel returns the package at the module-relative directory, or
// nil when absent.
func (m *Module) PackageByRel(rel string) *Package {
	if rel == "" {
		return m.byPath[m.Path]
	}
	return m.byPath[m.Path+"/"+rel]
}

// Position renders pos as a module-relative "file:line:col" string.
func (m *Module) Position(pos token.Pos) string {
	p := m.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d", file, p.Line, p.Column)
}

// relFile returns the module-relative path of the file containing pos.
func (m *Module) relFile(pos token.Pos) string {
	file := m.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found in or above %s", abs)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// packageDirs returns every directory under root that holds non-test .go
// files, excluding testdata, vendor, hidden directories, and nested
// modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isLintableFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isLintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// parseDir parses one directory into a Package (nil when it holds no
// lintable files after filtering).
func (m *Module) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isLintableFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	path := m.Path
	if rel != "" {
		path = m.Path + "/" + rel
	}

	p := &Package{Path: path, Rel: rel, Dir: dir}
	pkgName := ""
	seen := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed package names %q and %q", dir, pkgName, f.Name.Name)
		}
		p.Files = append(p.Files, f)
		for _, spec := range f.Imports {
			ip, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if ip == m.Path || strings.HasPrefix(ip, m.Path+"/") {
				if !seen[ip] {
					seen[ip] = true
					p.Imports = append(p.Imports, ip)
				}
			}
		}
	}
	sort.Strings(p.Imports)
	return p, nil
}

// dependencyOrder topologically sorts the parsed packages by their
// module-local imports (imports first), failing on cycles.
func dependencyOrder(parsed map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = gray
		p := parsed[path]
		for _, dep := range p.Imports {
			if dp, ok := parsed[dep]; ok {
				if err := visit(dp.Path); err != nil {
					return err
				}
			}
		}
		state[path] = black
		order = append(order, p)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-local packages from the already-checked
// set and everything else through the shared source importer.
type moduleImporter struct {
	m   *Module
	std types.ImporterFrom
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := mi.m.byPath[path]; ok {
		return p.Types, nil
	}
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		return nil, fmt.Errorf("module package %s not loaded (dependency order violated?)", path)
	}
	return mi.std.ImportFrom(path, dir, mode)
}

// check typechecks one package, populating p.Types and p.Info.
func (m *Module) check(p *Package, std types.ImporterFrom) error {
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: &moduleImporter{m: m, std: std},
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	tpkg, _ := conf.Check(p.Path, m.Fset, p.Files, p.Info)
	if len(errs) > 0 {
		return fmt.Errorf("lint: typecheck %s: %w", p.Path, errors.Join(errs...))
	}
	p.Types = tpkg
	return nil
}
