package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden expect.txt files from current analyzer output")

// TestGolden runs each fixture module under testdata/src through its
// analyzer (the fixture directory is named after the analyzer; "clean"
// runs all) and compares the rendered findings with expect.txt.
func TestGolden(t *testing.T) {
	fixtures := []struct {
		name      string
		analyzers []string // empty = all
	}{
		{"determinism", []string{"determinism"}},
		{"guarded", []string{"guarded"}},
		{"hotalloc", []string{"hotalloc", "stalewaiver"}},
		{"layering", []string{"layering"}},
		{"maporder", []string{"maporder"}},
		{"obsdiscipline", []string{"obsdiscipline"}},
		{"wireexhaustive", []string{"wireexhaustive"}},
		{"clean", nil},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fx.name)
			m, err := Load(dir)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			var as []*Analyzer
			if len(fx.analyzers) == 0 {
				as = Analyzers()
			} else {
				for _, name := range fx.analyzers {
					a := AnalyzerByName(name)
					if a == nil {
						t.Fatalf("unknown analyzer %q", name)
					}
					as = append(as, a)
				}
			}
			var lines []string
			for _, f := range RunAnalyzers(m, as) {
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}

			expectFile := filepath.Join(dir, "expect.txt")
			if *update {
				if err := os.WriteFile(expectFile, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(expectFile)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", fx.name, got, want)
			}
		})
	}
}
