package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// obsNameMethods are the internal/obs methods whose first argument is a
// metric/event name. Those names are join points between emitters and
// readers: if one side typos a raw literal the counter silently forks, so
// both sides must spell the name through a package-level constant (for
// events, the obs.Kind constants and their String() form).
var obsNameMethods = map[string]bool{
	"Counter": true, // (*Metrics).Counter(name, domain, router)
	"Global":  true, // (*Metrics).Global(name)
	"Get":     true, // Snapshot.Get(name, ...)
	"Total":   true, // Snapshot.Total(name)
}

// ObsDisciplineAnalyzer flags metric/event names passed to the obs bus as
// inline string literals instead of package-level constants.
func ObsDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "obsdiscipline",
		Doc:  "obs bus metric/event names must be package-level constants, not inline string literals",
		Run:  runObsDiscipline,
	}
}

func runObsDiscipline(m *Module, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !obsNameMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			arg := call.Args[0]
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Value == nil {
				// Not a compile-time constant (e.g. kind.String(), a
				// variable, a loop value): nothing to enforce here.
				return true
			}
			if usesPackageLevelConst(p.Info, arg) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "obsdiscipline",
				Pos:      m.Position(arg.Pos()),
				Package:  p.Path,
				Message: fmt.Sprintf("obs name %s passed to %s as an inline literal; use a package-level constant (e.g. an obs.Kind's String())",
					tv.Value.ExactString(), sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// usesPackageLevelConst reports whether any identifier inside e resolves
// to a constant declared at package scope (its own package's or an
// imported one).
func usesPackageLevelConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		c, ok := info.Uses[id].(*types.Const)
		if !ok || c.Pkg() == nil {
			return true
		}
		if c.Parent() == c.Pkg().Scope() {
			found = true
		}
		return true
	})
	return found
}
