package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// obsNameMethods maps internal/obs methods to the index of their
// metric/event/span name argument. Those names are join points between
// emitters and readers: if one side typos a raw literal the counter (or
// span tree) silently forks, so both sides must spell the name through a
// package-level constant (for events, the obs.Kind constants and their
// String() form; for spans and histograms, the obs.Span*/Hist*
// constants).
var obsNameMethods = map[string]int{
	"Counter":    0, // (*Metrics).Counter(name, domain, router)
	"Global":     0, // (*Metrics).Global(name)
	"Get":        0, // Snapshot.Get(name, ...)
	"Total":      0, // Snapshot.Total(name)
	"Histogram":  0, // (*Metrics).Histogram(name, domain, router), (*Observer).Histogram(...)
	"Begin":      0, // (*Tracer).Begin(name, event)
	"BeginChild": 1, // (*Tracer).BeginChild(ctx, name, event)
}

// obsSpanMethods are the obs methods returning a Span that the caller
// must End(): discarding the result leaves the span open forever, so the
// trace renderer would show a hole where the End event belongs.
var obsSpanMethods = map[string]bool{
	"Begin":      true,
	"BeginChild": true,
}

// ObsDisciplineAnalyzer flags metric/event/span names passed to the obs
// bus as inline string literals instead of package-level constants, and
// Begin/BeginChild spans whose result is discarded (unpaired spans).
func ObsDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "obsdiscipline",
		Doc:  "obs bus metric/span names must be package-level constants, and spans must be Begin/End paired",
		Run:  runObsDiscipline,
	}
}

func runObsDiscipline(m *Module, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// An expression statement whose value is a Span means the
			// span can never be Ended: flag the unpaired Begin.
			if stmt, ok := n.(*ast.ExprStmt); ok {
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := obsSpanCall(p, call); ok {
						out = append(out, Finding{
							Analyzer: "obsdiscipline",
							Pos:      m.Position(call.Pos()),
							Package:  p.Path,
							Message: fmt.Sprintf("span from %s discarded; assign the Span and call End() so the span is paired",
								name),
						})
					}
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, _, ok := obsMethodCall(p, call)
			if !ok {
				return true
			}
			nameIdx, ok := obsNameMethods[sel.Sel.Name]
			if !ok || len(call.Args) <= nameIdx {
				return true
			}
			arg := call.Args[nameIdx]
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Value == nil {
				// Not a compile-time constant (e.g. kind.String(), a
				// variable, a loop value): nothing to enforce here.
				return true
			}
			if usesPackageLevelConst(p.Info, arg) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "obsdiscipline",
				Pos:      m.Position(arg.Pos()),
				Package:  p.Path,
				Message: fmt.Sprintf("obs name %s passed to %s as an inline literal; use a package-level constant (e.g. an obs.Kind's String())",
					tv.Value.ExactString(), sel.Sel.Name),
			})
			return true
		})
	}
	return out
}

// obsMethodCall reports whether call is a method call on an internal/obs
// type and returns its selector and resolved *types.Func.
func obsMethodCall(p *Package, call *ast.CallExpr) (*ast.SelectorExpr, *types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		return nil, nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil, false
	}
	return sel, fn, true
}

// obsSpanCall reports whether call is an obs Begin/BeginChild call and
// returns the method name.
func obsSpanCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, _, ok := obsMethodCall(p, call)
	if !ok || !obsSpanMethods[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// usesPackageLevelConst reports whether any identifier inside e resolves
// to a constant declared at package scope (its own package's or an
// imported one).
func usesPackageLevelConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		c, ok := info.Uses[id].(*types.Const)
		if !ok || c.Pkg() == nil {
			return true
		}
		if c.Parent() == c.Pkg().Scope() {
			found = true
		}
		return true
	})
	return found
}
