package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// protocolPackage reports whether a module-relative package path is one of
// the protocol packages whose emitted messages and events must not depend
// on map iteration order.
func protocolPackage(rel string) bool {
	switch rel {
	case "internal/wire", "internal/bgp", "internal/masc", "internal/bgmp", "internal/trees", "internal/migp":
		return true
	}
	return strings.HasPrefix(rel, "internal/migp/")
}

// MapOrderAnalyzer flags `range` statements over maps in protocol packages
// whose body lets the (randomized) iteration order escape: appending to a
// slice declared outside the loop, emitting an obs event, or writing to a
// message/encoder. A site is clean when the appended slice is sorted later
// in the same function (sort./slices.Sort*, or a module-local sort*/Sort*
// helper), or when it carries a `//lint:sorted <why>` comment.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag protocol map ranges whose iteration order escapes unsorted (append/emit/write) without a //lint:sorted justification",
		Run:  runMapOrder,
	}
}

func runMapOrder(m *Module, p *Package) []Finding {
	return mapOrderState(m).findings[p.Path]
}

// moState is the memoized whole-module maporder result: per-package
// findings plus, for stale-waiver detection, the //lint:sorted lines that
// actually suppressed something (module-relative file -> comment line).
type moState struct {
	findings    map[string][]Finding
	usedWaivers map[string]map[int]bool
}

func mapOrderState(m *Module) *moState {
	return m.memoize("maporder", func() any { return buildMapOrderState(m) }).(*moState)
}

func buildMapOrderState(m *Module) *moState {
	st := &moState{findings: map[string][]Finding{}, usedWaivers: map[string]map[int]bool{}}
	for _, p := range m.Pkgs {
		if !protocolPackage(p.Rel) {
			continue
		}
		var out []Finding
		seen := map[string]bool{}
		for _, f := range p.Files {
			sorted := sortedComments(m, f)
			w := &mapOrderWalker{m: m, p: p, sorted: sorted, used: map[int]bool{}}
			w.walk(f, nil)
			// Nested map ranges can attribute one escape to both loops;
			// report each site once.
			for _, fd := range w.findings {
				key := fd.Pos + "\x00" + fd.Message
				if !seen[key] {
					seen[key] = true
					out = append(out, fd)
				}
			}
			if len(w.used) > 0 {
				rel := m.relFile(f.Pos())
				u := st.usedWaivers[rel]
				if u == nil {
					u = map[int]bool{}
					st.usedWaivers[rel] = u
				}
				for line := range w.used {
					u[line] = true
				}
			}
		}
		st.findings[p.Path] = out
	}
	return st
}

// sortedComments maps line numbers to the justification text of
// `//lint:sorted` comments in the file.
func sortedComments(m *Module, f *ast.File) map[int]string {
	out := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:sorted"); ok {
				out[m.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// mapOrderWalker walks one file keeping track of the innermost enclosing
// function body, so append targets can be checked for a later sort call.
type mapOrderWalker struct {
	m        *Module
	p        *Package
	sorted   map[int]string
	used     map[int]bool // //lint:sorted lines that suppressed a finding
	findings []Finding
}

func (w *mapOrderWalker) walk(n ast.Node, funcBody *ast.BlockStmt) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body != nil {
			w.walk(n.Body, n.Body)
		}
		return
	case *ast.FuncLit:
		w.walk(n.Body, n.Body)
		return
	case *ast.RangeStmt:
		w.checkRange(n, funcBody)
		w.walk(n.X, funcBody)
		w.walk(n.Body, funcBody)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		switch c := c.(type) {
		case *ast.FuncDecl, *ast.FuncLit, *ast.RangeStmt:
			w.walk(c, funcBody)
			return false
		}
		return true
	})
}

func (w *mapOrderWalker) checkRange(rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	tv, ok := w.p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Scan the body first so a waiver can be credited with the findings it
	// suppresses (stalewaiver flags the ones that suppress nothing).
	saved := w.findings
	w.findings = nil
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkAppend(rs, funcBody, call)
		w.checkEventEmit(rs, call)
		w.checkEncoderWrite(rs, call)
		return true
	})
	body := w.findings
	w.findings = saved

	line := w.m.Fset.Position(rs.Pos()).Line
	if why, wline, ok := w.justification(line); ok {
		if len(body) > 0 {
			w.used[wline] = true
		}
		if why == "" {
			w.findings = append(w.findings, Finding{
				Analyzer: "maporder",
				Pos:      w.m.Position(rs.Pos()),
				Package:  w.p.Path,
				Message:  "//lint:sorted needs a one-line justification for why iteration order cannot escape",
			})
		}
		return
	}
	w.findings = append(w.findings, body...)
}

// justification returns the //lint:sorted text attached to the range (on
// its own line or the line above) and the line the waiver sits on.
func (w *mapOrderWalker) justification(line int) (string, int, bool) {
	if why, ok := w.sorted[line]; ok {
		return why, line, true
	}
	why, ok := w.sorted[line-1]
	return why, line - 1, ok
}

// checkAppend flags `x = append(x, ...)` inside a map-range body when x is
// declared outside the range statement (so iteration order escapes the
// loop) and is not sorted later in the enclosing function.
func (w *mapOrderWalker) checkAppend(rs *ast.RangeStmt, funcBody *ast.BlockStmt, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if b, ok := w.p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	obj := rootObject(w.p.Info, call.Args[0])
	if obj == nil {
		return
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return // per-iteration or per-key storage: order cannot escape
	}
	if w.sortedLater(funcBody, rs, obj) {
		return
	}
	w.findings = append(w.findings, Finding{
		Analyzer: "maporder",
		Pos:      w.m.Position(call.Pos()),
		Package:  w.p.Path,
		Message:  fmt.Sprintf("append to %q inside a map range leaks iteration order; sort the result or iterate sorted keys (or add //lint:sorted <why>)", types.ExprString(call.Args[0])),
	})
}

// checkEventEmit flags obs-event emission inside a map-range body: any
// call carrying an obs.Event or obs.Kind argument, or an Observer.Emit
// call, publishes in iteration order.
func (w *mapOrderWalker) checkEventEmit(rs *ast.RangeStmt, call *ast.CallExpr) {
	emits := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Emit" {
		if fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
			emits = true
		}
	}
	for _, arg := range call.Args {
		if t := w.p.Info.Types[arg].Type; t != nil && isObsType(t, "Event", "Kind") {
			emits = true
		}
	}
	if !emits {
		return
	}
	w.findings = append(w.findings, Finding{
		Analyzer: "maporder",
		Pos:      w.m.Position(call.Pos()),
		Package:  w.p.Path,
		Message:  "obs event emitted inside a map range publishes in iteration order; iterate sorted keys (or add //lint:sorted <why>)",
	})
}

// checkEncoderWrite flags writes to messages, encoders, or writers inside
// a map-range body (Write*/Fprint*/binary.Write), which serialize in
// iteration order.
func (w *mapOrderWalker) checkEncoderWrite(rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	writes := false
	if fn, ok := w.p.Info.Uses[sel.Sel].(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case sig != nil && sig.Recv() != nil:
			switch name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "AppendPayload":
				writes = true
			}
		case fn.Pkg() != nil:
			switch {
			case fn.Pkg().Path() == "fmt" && strings.HasPrefix(name, "Fprint"):
				writes = true
			case fn.Pkg().Path() == "encoding/binary" && name == "Write":
				writes = true
			}
		}
	}
	if !writes {
		return
	}
	w.findings = append(w.findings, Finding{
		Analyzer: "maporder",
		Pos:      w.m.Position(call.Pos()),
		Package:  w.p.Path,
		Message:  fmt.Sprintf("%s inside a map range serializes in iteration order; iterate sorted keys (or add //lint:sorted <why>)", name),
	})
}

// sortedLater reports whether obj is passed to a sort call after the range
// statement within the same enclosing function.
func (w *mapOrderWalker) sortedLater(funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !w.isSortCall(call) {
			return true
		}
		if len(call.Args) > 0 && rootObject(w.p.Info, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

// isSortCall recognizes the calls that establish a deterministic order:
// the sort and slices packages, plus module-local helpers named sort*/Sort*
// (the convention for shared comparators like sortTargets).
func (w *mapOrderWalker) isSortCall(call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = w.p.Info.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = w.p.Info.Uses[fun].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
		return false
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	if fn.Pkg().Path() == w.m.Path || strings.HasPrefix(fn.Pkg().Path(), w.m.Path+"/") {
		return strings.HasPrefix(fn.Name(), "sort") || strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// rootObject resolves the variable at the base of an lvalue-ish
// expression: x, x.f.g, x[i] all resolve to x's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			// For pkg.Var selectors the base is a package name; the
			// selected object is the storage.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					return info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isObsType reports whether t (or its element) is one of the named types
// from the internal/obs package.
func isObsType(t types.Type, names ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}
