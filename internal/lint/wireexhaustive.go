package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// WireExhaustiveAnalyzer checks the wire message registry for coverage:
// every registered MsgType constant (except the zero TypeInvalid) must be
// handled by the decoder switch in newMessage, be produced by exactly the
// message type the decoder builds for it (the static form of the
// encode/decode round-trip: Encode writes Type(), Decode dispatches on
// it), and print through MsgType.String. Unhandled kinds fail decoding in
// the field; dead kinds are registry rot.
func WireExhaustiveAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wireexhaustive",
		Doc:  "every wire MsgType constant must be decoded by newMessage, returned by a Type() method of the decoded type, and named in MsgType.String",
		Run:  runWireExhaustive,
	}
}

func runWireExhaustive(m *Module, p *Package) []Finding {
	if p.Rel != "internal/wire" {
		return nil
	}
	tn, ok := p.Types.Scope().Lookup("MsgType").(*types.TypeName)
	if !ok {
		return nil
	}
	msgType := tn.Type()

	// The registered kinds: package-level MsgType constants, excluding the
	// zero value (the explicit "no kind" sentinel).
	type kind struct {
		c   *types.Const
		val string
	}
	var kinds []kind
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), msgType) {
			continue
		}
		if constant.Sign(c.Val()) == 0 {
			continue
		}
		kinds = append(kinds, kind{c, c.Val().ExactString()})
	}
	sort.Slice(kinds, func(i, j int) bool {
		vi, _ := constant.Uint64Val(kinds[i].c.Val())
		vj, _ := constant.Uint64Val(kinds[j].c.Val())
		return vi < vj
	})

	decoded := map[string]string{} // const value -> type name newMessage returns
	encodes := map[string]string{} // type name -> const value its Type() returns
	stringed := map[string]bool{}  // const values named in MsgType.String
	haveDecoder, haveString := false, false
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case fd.Recv == nil && fd.Name.Name == "newMessage":
				haveDecoder = true
				collectDecoderCases(p, fd, decoded)
			case fd.Recv != nil && fd.Name.Name == "Type" && returnsMsgType(p, fd, msgType):
				if v, ok := constReturnValue(p, fd); ok {
					encodes[recvTypeName(fd)] = v
				}
			case fd.Recv != nil && fd.Name.Name == "String" && recvTypeName(fd) == tn.Name():
				haveString = true
				collectSwitchCaseConsts(p, fd, msgType, stringed)
			}
		}
	}

	var out []Finding
	flag := func(c *types.Const, format string, a ...any) {
		out = append(out, Finding{
			Analyzer: "wireexhaustive",
			Pos:      m.Position(c.Pos()),
			Package:  p.Path,
			Message:  fmt.Sprintf(format, a...),
		})
	}
	for _, k := range kinds {
		name := k.c.Name()
		if haveDecoder {
			tname, ok := decoded[k.val]
			switch {
			case !ok:
				flag(k.c, "wire kind %s is not handled by the decoder switch in newMessage; frames of this kind fail to decode", name)
			case encodes[tname] != "" && encodes[tname] != k.val:
				flag(k.c, "round-trip mismatch: newMessage decodes %s into *%s, but (*%s).Type() returns a different kind; re-encoding changes the frame type", name, tname, tname)
			}
		}
		if encoded := anyEncoderFor(encodes, k.val); !encoded {
			flag(k.c, "dead wire kind: no message type's Type() method returns %s, so nothing can encode it; remove the constant or register its message", name)
		}
		if haveString && !stringed[k.val] {
			flag(k.c, "wire kind %s is missing from MsgType.String; it prints as a raw byte in traces and logs", name)
		}
	}
	return out
}

func anyEncoderFor(encodes map[string]string, val string) bool {
	for _, v := range encodes {
		if v == val {
			return true
		}
	}
	return false
}

// collectDecoderCases maps each case constant of newMessage's switch to the
// named type of the pointer its clause returns.
func collectDecoderCases(p *Package, fd *ast.FuncDecl, decoded map[string]string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		tname := ""
		for _, stmt := range cc.Body {
			ret, ok := stmt.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				continue
			}
			if t := p.Info.Types[ret.Results[0]].Type; t != nil {
				if ptr, ok := t.(*types.Pointer); ok {
					if named, ok := ptr.Elem().(*types.Named); ok {
						tname = named.Obj().Name()
					}
				}
			}
		}
		if tname == "" {
			return true
		}
		for _, e := range cc.List {
			if tv := p.Info.Types[e]; tv.Value != nil {
				decoded[tv.Value.ExactString()] = tname
			}
		}
		return true
	})
}

// returnsMsgType reports whether fd has the single result type msgType.
func returnsMsgType(p *Package, fd *ast.FuncDecl, msgType types.Type) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	tv, ok := p.Info.Types[fd.Type.Results.List[0].Type]
	return ok && tv.Type != nil && types.Identical(tv.Type, msgType)
}

// constReturnValue extracts the constant value a single-return function
// body yields, when its one return statement returns a constant.
func constReturnValue(p *Package, fd *ast.FuncDecl) (string, bool) {
	val, found := "", false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if tv := p.Info.Types[ret.Results[0]]; tv.Value != nil {
			val, found = tv.Value.ExactString(), true
		}
		return true
	})
	return val, found
}

// collectSwitchCaseConsts records the constant values of msgType appearing
// as case expressions anywhere in fd's body.
func collectSwitchCaseConsts(p *Package, fd *ast.FuncDecl, msgType types.Type, set map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			tv := p.Info.Types[e]
			if tv.Value != nil && tv.Type != nil && types.Identical(tv.Type, msgType) {
				set[tv.Value.ExactString()] = true
			}
		}
		return true
	})
}
