package lint

import "testing"

// TestModuleIsClean is the self-enforcing gate: every analyzer must report
// zero findings on the real module, so `go test ./...` fails the moment a
// wall-clock call, layering violation, order-leaking map range, inline obs
// name, hot-path allocation, unguarded field access, wire-registry gap, or
// stale waiver is introduced.
func TestModuleIsClean(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	findings := RunAnalyzers(m, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Fatalf("%d lint finding(s); run `go run ./cmd/masclint ./...` and fix or justify them", len(findings))
	}
}

// TestAnalyzerRegistry pins the analyzer set and name lookup.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"determinism", "guarded", "hotalloc", "layering", "maporder", "obsdiscipline", "stalewaiver", "wireexhaustive"}
	as := Analyzers()
	if len(as) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if AnalyzerByName(a.Name) == nil {
			t.Errorf("AnalyzerByName(%q) = nil", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName(nope) should be nil")
	}
}

// TestSortFindings pins the deterministic output order.
func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", Pos: "x.go:2:1", Message: "m"},
		{Analyzer: "a", Pos: "x.go:2:1", Message: "m"},
		{Analyzer: "z", Pos: "a.go:1:1", Message: "m"},
	}
	SortFindings(fs)
	if fs[0].Pos != "a.go:1:1" || fs[1].Analyzer != "a" || fs[2].Analyzer != "b" {
		t.Errorf("unexpected order: %+v", fs)
	}
}
