package lint

import (
	"fmt"
	"strings"
)

// StaleWaiverAnalyzer flags //lint:sorted and //lint:alloc comments that no
// longer suppress any finding: the waived code was fixed or deleted, or the
// waiver sits somewhere the analyzer never looks (a non-protocol package, a
// cold function). Waivers must not outlive their reason — a stale one reads
// as "this is known-unsafe" over code that is fine.
func StaleWaiverAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "stalewaiver",
		Doc:  "flag //lint:sorted and //lint:alloc waivers that no longer suppress any finding",
		Run:  runStaleWaiver,
	}
}

func runStaleWaiver(m *Module, p *Package) []Finding {
	// The waiver-consuming analyzers record which comment lines earned
	// their keep; both states are memoized, so this costs nothing extra
	// when maporder/hotalloc also run.
	mo := mapOrderState(m)
	ha := hotAllocState(m)
	var out []Finding
	for _, f := range p.Files {
		rel := m.relFile(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var kind string
				var used map[int]bool
				switch {
				case strings.HasPrefix(text, "lint:sorted"):
					kind, used = "sorted", mo.usedWaivers[rel]
				case strings.HasPrefix(text, "lint:alloc"):
					kind, used = "alloc", ha.usedWaivers[rel]
				default:
					continue
				}
				if used[m.Fset.Position(c.Pos()).Line] {
					continue
				}
				out = append(out, Finding{
					Analyzer: "stalewaiver",
					Pos:      m.Position(c.Pos()),
					Package:  p.Path,
					Message:  fmt.Sprintf("stale //lint:%s waiver: it suppresses no finding here; remove it so waivers don't outlive their reason", kind),
				})
			}
		}
	}
	return out
}
