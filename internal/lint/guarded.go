package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// guardedRe extracts the mutex name from a `// guarded by <mu>` field
// annotation.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_]\w*)`)

// GuardedAnalyzer enforces mutex-guard annotations: a struct field whose
// declaration carries `// guarded by <mu>` may only be accessed inside
// functions that lock that mutex on the same receiver (mu.Lock/RLock
// appears in the function body) or whose name ends in "Locked" (the
// convention for helpers called with the lock already held). The check is
// function-granular: it does not prove the lock is held at the access, but
// it catches the real concurrency hazards — fields touched in functions
// that never take the lock at all, including cross-package access to
// exported state.
func GuardedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "guarded",
		Doc:  "fields annotated `// guarded by <mu>` may only be accessed in functions that lock that mutex or are named *Locked",
		Run:  runGuarded,
	}
}

// guardSpec records one guarded field: the mutex field name in the same
// struct and the struct name for messages.
type guardSpec struct {
	mu    string
	owner string
}

// guardState is the memoized module-wide guarded-field table.
type guardState struct {
	fields map[*types.Var]*guardSpec
	// bad holds malformed-annotation findings, keyed by package path.
	bad map[string][]Finding
}

func guardedState(m *Module) *guardState {
	return m.memoize("guarded", func() any { return buildGuardState(m) }).(*guardState)
}

func buildGuardState(m *Module) *guardState {
	st := &guardState{fields: map[*types.Var]*guardSpec{}, bad: map[string][]Finding{}}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				stype, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				st.collectStruct(m, p, ts, stype)
				return true
			})
		}
	}
	return st
}

func (st *guardState) collectStruct(m *Module, p *Package, ts *ast.TypeSpec, stype *ast.StructType) {
	mutexes := map[string]bool{}
	for _, fl := range stype.Fields.List {
		tv, ok := p.Info.Types[fl.Type]
		if !ok || !isMutexType(tv.Type) {
			continue
		}
		for _, name := range fl.Names {
			mutexes[name.Name] = true
		}
	}
	for _, fl := range stype.Fields.List {
		mu := guardAnnotation(fl)
		if mu == "" {
			continue
		}
		if !mutexes[mu] {
			st.bad[p.Path] = append(st.bad[p.Path], Finding{
				Analyzer: "guarded",
				Pos:      m.Position(fl.Pos()),
				Package:  p.Path,
				Message:  fmt.Sprintf("`guarded by %s` names no sync.Mutex/RWMutex field of struct %s; fix the annotation", mu, ts.Name.Name),
			})
			continue
		}
		for _, name := range fl.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok {
				st.fields[v] = &guardSpec{mu: mu, owner: ts.Name.Name}
			}
		}
	}
}

// guardAnnotation returns the mutex name of a field's `guarded by <mu>`
// annotation (doc comment or trailing line comment), or "".
func guardAnnotation(fl *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if mm := guardedRe.FindStringSubmatch(c.Text); mm != nil {
				return mm[1]
			}
		}
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func runGuarded(m *Module, p *Package) []Finding {
	st := guardedState(m)
	out := append([]Finding(nil), st.bad[p.Path]...)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkGuardedFunc(m, p, st, fd)...)
		}
	}
	return out
}

// lockKey identifies one lock acquisition: the base variable the mutex
// hangs off and the mutex field name.
type lockKey struct {
	obj types.Object
	mu  string
}

func checkGuardedFunc(m *Module, p *Package, st *guardState, fd *ast.FuncDecl) []Finding {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	// Collect the (base, mutex) pairs this function locks anywhere in its
	// body (including deferred and closure-scoped acquisitions).
	locks := map[lockKey]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base := rootObject(p.Info, inner.X); base != nil {
			locks[lockKey{base, inner.Sel.Name}] = true
		}
		return true
	})

	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selinfo := p.Info.Selections[sel]
		if selinfo == nil || selinfo.Kind() != types.FieldVal {
			return true
		}
		v, ok := selinfo.Obj().(*types.Var)
		if !ok {
			return true
		}
		spec := st.fields[v]
		if spec == nil {
			return true
		}
		base := rootObject(p.Info, sel.X)
		if base != nil && locks[lockKey{base, spec.mu}] {
			return true
		}
		out = append(out, Finding{
			Analyzer: "guarded",
			Pos:      m.Position(sel.Sel.Pos()),
			Package:  p.Path,
			Message: fmt.Sprintf("%s.%s is guarded by %q but %s never locks it; lock %s.%s or give the function a *Locked name",
				spec.owner, v.Name(), spec.mu, fd.Name.Name, types.ExprString(sel.X), spec.mu),
		})
		return true
	})
	return out
}
