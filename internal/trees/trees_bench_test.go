package trees

import (
	"math/rand"
	"testing"

	"mascbgmp/internal/topology"
)

func benchSetup(nDomains, nMembers int) (*topology.Graph, *SharedTree, topology.DomainID, []topology.DomainID) {
	g := topology.ASGraph(nDomains, nDomains/10, 1998)
	r := rand.New(rand.NewSource(5))
	members := make([]topology.DomainID, nMembers)
	for i := range members {
		members[i] = topology.DomainID(r.Intn(nDomains))
	}
	t := NewShared(g, members[0], members)
	src := topology.DomainID(r.Intn(nDomains))
	return g, t, src, members
}

func BenchmarkNewShared1000Members(b *testing.B) {
	g := topology.ASGraph(3326, 350, 1998)
	r := rand.New(rand.NewSource(5))
	members := make([]topology.DomainID, 1000)
	for i := range members {
		members[i] = topology.DomainID(r.Intn(3326))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewShared(g, members[0], members)
	}
}

func BenchmarkMeasure1000Members(b *testing.B) {
	g, t, src, members := benchSetup(3326, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Measure(g, t, src, members)
	}
}

func BenchmarkBidirLen(b *testing.B) {
	g, t, src, members := benchSetup(3326, 200)
	_ = g
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.BidirLen(src, members[i%len(members)])
	}
}
