package trees

import (
	"math/rand"
	"testing"

	"mascbgmp/internal/topology"
)

// line returns the path graph 0-1-...-n-1.
func line(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}
	return g
}

func TestSharedTreeMarksJoinPaths(t *testing.T) {
	g := line(6)
	// Root at 0, members {3, 5}: tree = 0..5 (all on the member paths).
	tr := NewShared(g, 0, []topology.DomainID{3, 5})
	for d := 0; d <= 5; d++ {
		if !tr.OnTree(topology.DomainID(d)) {
			t.Fatalf("domain %d should be on tree", d)
		}
	}
	if tr.Size() != 6 {
		t.Fatalf("Size = %d", tr.Size())
	}
	// Root at 0, member {2}: 3..5 off tree.
	tr2 := NewShared(g, 0, []topology.DomainID{2})
	if tr2.OnTree(4) {
		t.Fatal("4 must be off tree")
	}
	if tr2.Size() != 3 {
		t.Fatalf("Size = %d, want 3", tr2.Size())
	}
}

func TestAttach(t *testing.T) {
	g := line(6)
	tr := NewShared(g, 0, []topology.DomainID{2})
	at, hops := tr.Attach(5) // 5 → 4 → 3 → 2 (first on-tree)
	if at != 2 || hops != 3 {
		t.Fatalf("Attach(5) = %v, %d; want 2, 3", at, hops)
	}
	at, hops = tr.Attach(1) // already on tree
	if at != 1 || hops != 0 {
		t.Fatalf("Attach(1) = %v, %d", at, hops)
	}
}

func TestBidirShortcutsThroughTree(t *testing.T) {
	// Y graph: root 0; members 3 (via 1) and 4 (via 1). Sender in 3's
	// domain reaching member 4 crosses the LCA 1, not the root.
	//     0 - 1 - 3
	//         `- 4
	g := topology.New(5)
	g.AddLink(0, 1)
	g.AddLink(1, 3)
	g.AddLink(1, 4)
	tr := NewShared(g, 0, []topology.DomainID{3, 4})
	if got := tr.BidirLen(3, 4); got != 2 {
		t.Fatalf("BidirLen(3,4) = %d, want 2 (via LCA 1)", got)
	}
	// Unidirectional pays the full climb to the root and back down.
	distSrc, _ := g.BFS(3)
	if got := tr.UniLen(distSrc, 4); got != 2+2 {
		t.Fatalf("UniLen = %d, want 4 (3→0 then 0→4)", got)
	}
}

func TestBidirFromOffTreeSender(t *testing.T) {
	//  5 - 2 on a line 0-1-2-3-4, root 0, member 4: sender 5 attaches at 2.
	g := line(5)
	s := g.AddDomains(1)
	g.AddLink(s, 2)
	tr := NewShared(g, 0, []topology.DomainID{4})
	if got := tr.BidirLen(s, 4); got != 1+2 {
		t.Fatalf("BidirLen(off-tree) = %d, want 3", got)
	}
}

func TestHybridReachesSourceDomainDirect(t *testing.T) {
	// Ring of 6: root 0, member 3. Source at 4: SPT dist(4,3)=1, but the
	// tree path 4→...→3 via root is longer. The source-specific branch
	// from 3 toward 4 reaches the source domain in one hop → direct path.
	g := topology.New(6)
	for i := 0; i < 6; i++ {
		g.AddLink(topology.DomainID(i), topology.DomainID((i+1)%6))
	}
	tr := NewShared(g, 0, []topology.DomainID{3})
	distSrc, parentSrc := g.BFS(4)
	if got := tr.HybridLen(4, distSrc, parentSrc, 3); got != 1 {
		t.Fatalf("HybridLen = %d, want 1 (branch reached source domain)", got)
	}
	if bidir := tr.BidirLen(4, 3); bidir <= 1 {
		t.Fatalf("test premise broken: bidir = %d should exceed SPT", bidir)
	}
}

func TestHybridStopsAtTree(t *testing.T) {
	// 0-1-2-3 line with root 0, members {1, 3}; source 5 hangs off 2:
	//        5
	//        |
	//  0-1-2-3
	// Branch from member 3 toward source 5: first hop 2 (off... 2 IS on
	// tree since member 3's join path is 3-2-1-0). So branch attaches at
	// 2 → hybrid = flow(5→2) + 1 = 1 + 1 = 2... and SPT(5,3) = 2.
	g := line(4)
	s := g.AddDomains(1)
	g.AddLink(s, 2)
	tr := NewShared(g, 0, []topology.DomainID{1, 3})
	distSrc, parentSrc := g.BFS(s)
	if got := tr.HybridLen(s, distSrc, parentSrc, 3); got != 2 {
		t.Fatalf("HybridLen = %d, want 2", got)
	}
}

func TestMeasureSkipsSelfAndComputesAll(t *testing.T) {
	g := line(6)
	tr := NewShared(g, 0, []topology.DomainID{2, 4})
	res := Measure(g, tr, 4, []topology.DomainID{2, 4})
	if len(res) != 1 || res[0].Member != 2 {
		t.Fatalf("Measure = %+v", res)
	}
	r := res[0]
	if r.SPT != 2 {
		t.Fatalf("SPT = %d", r.SPT)
	}
	if r.Bidir != 2 { // 4 and 2 both on tree; tree path = 2
		t.Fatalf("Bidir = %d", r.Bidir)
	}
	if r.Uni != 4+2 {
		t.Fatalf("Uni = %d", r.Uni)
	}
	if r.Hybrid > r.Bidir {
		t.Fatalf("Hybrid %d > Bidir %d on a line", r.Hybrid, r.Bidir)
	}
}

func TestTreeSizeGrowsWithMembers(t *testing.T) {
	g := topology.ASGraph(500, 50, 11)
	root := topology.DomainID(0)
	small := NewShared(g, root, []topology.DomainID{10, 20})
	big := NewShared(g, root, []topology.DomainID{10, 20, 30, 40, 50, 60, 70})
	if big.Size() < small.Size() {
		t.Fatal("tree must not shrink as members are added")
	}
}

// Property: on random AS-like graphs, every model's path is at least the
// shortest path; the unidirectional path equals dist(src,root)+dist(root,m)
// exactly; bidirectional never exceeds unidirectional... (not guaranteed
// per-receiver in theory, but with both flowing through the same tree the
// bidirectional attach point shortcut can only help).
func TestModelInvariantsOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 15; iter++ {
		g := topology.ASGraph(400, 60, r.Int63())
		n := g.NumDomains()
		members := make([]topology.DomainID, 0, 20)
		for len(members) < 20 {
			members = append(members, topology.DomainID(r.Intn(n)))
		}
		root := members[0] // BGMP: initiator's domain
		tr := NewShared(g, root, members)
		src := topology.DomainID(r.Intn(n))
		distRoot, _ := g.BFS(root)
		distSrc, _ := g.BFS(src)
		for _, pl := range Measure(g, tr, src, members) {
			if pl.Uni < pl.SPT || pl.Bidir < pl.SPT || pl.Hybrid < pl.SPT {
				t.Fatalf("model beat the shortest path: %+v", pl)
			}
			if want := distSrc[root] + distRoot[pl.Member]; pl.Uni != want {
				t.Fatalf("Uni = %d, want %d", pl.Uni, want)
			}
			if pl.Bidir > pl.Uni {
				t.Fatalf("bidirectional (%d) worse than unidirectional (%d) for %+v", pl.Bidir, pl.Uni, pl)
			}
		}
	}
}

// Property: with the root at the source's own domain, the bidirectional
// tree degenerates to the shortest-path tree (the paper's NASA-broadcast
// argument, §5.1).
func TestRootAtSourceGivesShortestPaths(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	g := topology.ASGraph(300, 40, 5)
	src := topology.DomainID(7)
	var members []topology.DomainID
	for len(members) < 30 {
		members = append(members, topology.DomainID(r.Intn(300)))
	}
	tr := NewShared(g, src, members)
	for _, pl := range Measure(g, tr, src, members) {
		if pl.Bidir != pl.SPT {
			t.Fatalf("root-at-source should equal SPT: %+v", pl)
		}
	}
}
