// Package trees models the inter-domain multicast distribution trees whose
// quality the paper compares in §5.4 / Figure 4:
//
//   - source-rooted shortest-path trees (DVMRP, PIM-DM, MOSPF) — the
//     baseline, ratio 1.0;
//   - unidirectional shared trees (PIM-SM): data climbs from the sender to
//     the root/RP and descends the tree to each receiver;
//   - bidirectional shared trees (BGMP, CBT): data enters the tree at the
//     nearest on-tree router on the sender's path toward the root and
//     flows along tree branches in both directions;
//   - hybrid trees (BGMP with §5.3 source-specific branches): receivers
//     join toward the source; the branch stops at the first on-tree router
//     or the source domain.
//
// Path lengths are counted in inter-domain hops on a topology.Graph, as in
// the paper's simulation.
package trees

import (
	"mascbgmp/internal/topology"
)

// SharedTree is a group's shared tree over the inter-domain graph: the
// union of every member's shortest path toward the root domain (the path
// BGMP group joins take, following the G-RIB).
type SharedTree struct {
	g          *topology.Graph
	root       topology.DomainID
	distRoot   []int
	parentRoot []topology.DomainID
	onTree     []bool
	size       int
}

// NewShared builds the shared tree for the given root and member domains.
// Members unreachable from the root are ignored.
func NewShared(g *topology.Graph, root topology.DomainID, members []topology.DomainID) *SharedTree {
	dist, parent := g.BFS(root)
	t := &SharedTree{
		g:          g,
		root:       root,
		distRoot:   dist,
		parentRoot: parent,
		onTree:     make([]bool, g.NumDomains()),
	}
	t.mark(root)
	for _, m := range members {
		if dist[m] < 0 {
			continue
		}
		for cur := m; cur != root && !t.onTree[cur]; cur = parent[cur] {
			t.mark(cur)
		}
	}
	return t
}

func (t *SharedTree) mark(d topology.DomainID) {
	if !t.onTree[d] {
		t.onTree[d] = true
		t.size++
	}
}

// Root returns the tree's root domain.
func (t *SharedTree) Root() topology.DomainID { return t.root }

// OnTree reports whether domain d lies on the shared tree.
func (t *SharedTree) OnTree(d topology.DomainID) bool { return t.onTree[d] }

// Size returns the number of domains on the tree — the forwarding-state
// footprint of the group.
func (t *SharedTree) Size() int { return t.size }

// Attach returns the first on-tree domain on src's shortest path toward
// the root (src itself when on the tree) and the number of hops to it —
// where a non-member sender's packets reach the tree ("the border router
// simply forwards the data packets towards the root domain", §5.2). hops
// is -1 when the root is unreachable from src.
func (t *SharedTree) Attach(src topology.DomainID) (at topology.DomainID, hops int) {
	if t.distRoot[src] < 0 {
		return topology.NoDomain, -1
	}
	h := 0
	cur := src
	for !t.onTree[cur] {
		cur = t.parentRoot[cur]
		h++
	}
	return cur, h
}

// treeDist returns the hop count between two on-tree domains along tree
// branches (through their lowest common ancestor toward the root).
func (t *SharedTree) treeDist(a, b topology.DomainID) int {
	da, db := t.distRoot[a], t.distRoot[b]
	if da < 0 || db < 0 {
		return -1
	}
	hops := 0
	for da > db {
		a = t.parentRoot[a]
		da--
		hops++
	}
	for db > da {
		b = t.parentRoot[b]
		db--
		hops++
	}
	for a != b {
		a = t.parentRoot[a]
		b = t.parentRoot[b]
		hops += 2
	}
	return hops
}

// BidirLen returns the bidirectional-tree path length from a sender in
// domain src to a member domain m: hops to the sender's attach point, then
// along tree branches to m. It returns -1 when unreachable.
func (t *SharedTree) BidirLen(src, m topology.DomainID) int {
	if !t.onTree[m] {
		return -1
	}
	at, h := t.Attach(src)
	if h < 0 {
		return -1
	}
	return h + t.treeDist(at, m)
}

// UniLen returns the unidirectional shared-tree path length (PIM-SM
// model): shortest path from the sender up to the root, then down the tree
// to m. distSrc must be the BFS distances from src.
func (t *SharedTree) UniLen(distSrc []int, m topology.DomainID) int {
	if !t.onTree[m] || distSrc[t.root] < 0 || t.distRoot[m] < 0 {
		return -1
	}
	return distSrc[t.root] + t.distRoot[m]
}

// HybridLen returns the path length with a §5.3 source-specific branch
// from member m toward src: the branch follows m's shortest path toward
// src and stops at the first on-tree domain past m (data then flows
// src→tree→branch→m) or reaches the source domain (data flows directly).
// distSrc/parentSrc must come from g.BFS(src).
func (t *SharedTree) HybridLen(src topology.DomainID, distSrc []int, parentSrc []topology.DomainID, m topology.DomainID) int {
	if !t.onTree[m] || distSrc[m] < 0 {
		return -1
	}
	// Walk from m toward src (parentSrc points one hop closer to src).
	branchHops := 0
	cur := m
	for cur != src {
		cur = parentSrc[cur]
		branchHops++
		if cur == src {
			// Branch reached the source domain: direct shortest path.
			return distSrc[m]
		}
		if t.onTree[cur] {
			// Branch attaches to the tree at cur.
			return t.BidirLen(src, cur) + branchHops
		}
	}
	return distSrc[m]
}

// PathLengths computes, for one sender and a member set, the per-member
// path lengths under all four models. The SPT column is the shortest-path
// distance (the paper's ratio denominator).
type PathLengths struct {
	Member topology.DomainID
	SPT    int
	Uni    int
	Bidir  int
	Hybrid int
}

// Measure computes path lengths from src to every member over the tree.
// Members equal to src or unreachable are skipped.
func Measure(g *topology.Graph, t *SharedTree, src topology.DomainID, members []topology.DomainID) []PathLengths {
	distSrc, parentSrc := g.BFS(src)
	var out []PathLengths
	for _, m := range members {
		if m == src || distSrc[m] <= 0 {
			continue
		}
		pl := PathLengths{
			Member: m,
			SPT:    distSrc[m],
			Uni:    t.UniLen(distSrc, m),
			Bidir:  t.BidirLen(src, m),
			Hybrid: t.HybridLen(src, distSrc, parentSrc, m),
		}
		if pl.Uni < 0 || pl.Bidir < 0 || pl.Hybrid < 0 {
			continue
		}
		out = append(out, pl)
	}
	return out
}
