package harness

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// trialValues runs a rng-consuming trial function at the given parallelism
// and returns the deterministic values in index order.
func trialValues(t *testing.T, parallel int) []any {
	t.Helper()
	res, err := Run(Config{
		Trials:   24,
		Parallel: parallel,
		Seed:     1998,
		Run: func(tr Trial) (any, error) {
			// Consume a trial-dependent amount of the stream so any
			// accidental sharing between trials would show immediately.
			sum := int64(0)
			for i := 0; i <= tr.Index%5; i++ {
				sum += tr.Rng.Int63()
			}
			return [2]int64{tr.Seed, sum}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]any, len(res))
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d has Index %d", i, r.Index)
		}
		vals[i] = r.Value
	}
	return vals
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	serial := trialValues(t, 1)
	for _, par := range []int{2, 4, 8, 0} {
		if got := trialValues(t, par); !reflect.DeepEqual(got, serial) {
			t.Fatalf("parallel=%d diverged from serial results", par)
		}
	}
}

func TestTrialSeedsAreDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := TrialSeed(1998, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("trials %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if TrialSeed(1998, 0) == TrialSeed(1999, 0) {
		t.Fatal("different suite seeds produced the same trial seed")
	}
}

func TestRunCancelsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	const trials = 1000
	_, err := Run(Config{
		Trials:   trials,
		Parallel: 2,
		Seed:     1,
		Run: func(tr Trial) (any, error) {
			started.Add(1)
			if tr.Index == 3 {
				return nil, boom
			}
			return tr.Index, nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := started.Load(); n >= trials {
		t.Fatalf("all %d trials started despite early error", n)
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	// Every trial fails; regardless of scheduling, the reported failure
	// must be a deterministic choice among the trials that ran — and with
	// trial 0 failing, it must be trial 0 (workers start from index 0).
	wantErr := errors.New("fail-0")
	_, err := Run(Config{
		Trials:   8,
		Parallel: 8,
		Seed:     1,
		Run: func(tr Trial) (any, error) {
			if tr.Index == 0 {
				return nil, wantErr
			}
			return nil, errors.New("fail-other")
		},
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the lowest-indexed trial's error", err)
	}
}

func TestRunTimingFieldsPopulated(t *testing.T) {
	res, err := Run(Config{
		Trials: 2,
		Seed:   7,
		Run: func(tr Trial) (any, error) {
			buf := make([]byte, 1<<20)
			for i := range buf {
				buf[i] = byte(tr.Rng.Intn(256))
			}
			return int(buf[0]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Wall <= 0 {
			t.Fatalf("trial %d: Wall = %v", r.Index, r.Wall)
		}
		if r.AllocBytes == 0 || r.PeakHeapBytes == 0 {
			t.Fatalf("trial %d: memory accounting empty: %+v", r.Index, r)
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(Config{Trials: 1}); err == nil {
		t.Fatal("nil Run must error")
	}
	if _, err := Run(Config{Trials: -1, Run: func(Trial) (any, error) { return nil, nil }}); err == nil {
		t.Fatal("negative Trials must error")
	}
	res, err := Run(Config{Trials: 0, Run: func(Trial) (any, error) { return nil, nil }})
	if err != nil || res != nil {
		t.Fatalf("zero trials: res=%v err=%v", res, err)
	}
}
