// Package harness runs N independent, seeded benchmark trials across a
// bounded worker pool.
//
// The paper's evaluation (§4.3.3 Figure 2, §5.4 Figure 4) and this
// repository's additions (the chaos sweep, the churn workload) are all
// sweeps of independent seeded trials. The harness gives every trial its
// own *rand.Rand derived purely from (suite seed, trial index) with a
// splitmix64 mix, so a suite's results are bit-identical regardless of the
// worker count or the order the scheduler happens to run trials in —
// parallelism changes wall time, never results.
//
// Per-trial wall time and approximate allocation / peak-heap figures are
// sampled around each trial with runtime.ReadMemStats. Those are the only
// non-deterministic outputs and are reported separately so callers (the
// internal/bench result model) can exclude them from determinism
// comparisons. ReadMemStats figures are process-global: with Parallel > 1
// the memory attribution of concurrently running trials overlaps, so treat
// AllocBytes/PeakHeapBytes as indicative, not exact, in parallel runs.
//
// This package deliberately uses time.Now for wall-clock measurement: a
// benchmark's timing is real time by definition. Everything that feeds
// simulation logic goes through the derived per-trial *rand.Rand.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Trial is the context handed to a TrialFunc: its index in the suite, the
// seed derived for it, and a rand.Rand freshly created from that seed.
// Trial functions must draw randomness only from Rng (or sub-seed their
// own generators from Seed) to stay deterministic under parallelism.
type Trial struct {
	Index int
	Seed  int64
	Rng   *rand.Rand
}

// TrialFunc runs one trial and returns its result value. Returning an
// error cancels the suite: no new trials start, and Run reports the error
// of the lowest-indexed failed trial.
type TrialFunc func(t Trial) (any, error)

// Config parameterizes Run.
type Config struct {
	// Trials is the number of independent trials.
	Trials int
	// Parallel bounds the worker pool; <= 0 uses GOMAXPROCS.
	Parallel int
	// Seed is the suite seed every per-trial seed derives from.
	Seed int64
	// Run is the trial body.
	Run TrialFunc
}

// Result is one completed trial. Value is deterministic for a given
// (suite seed, index); the remaining fields are timing measurements.
type Result struct {
	Index int
	Value any

	// Wall is the trial's wall-clock duration.
	Wall time.Duration
	// AllocBytes is the growth of runtime.MemStats.TotalAlloc across the
	// trial (approximate when trials run concurrently).
	AllocBytes uint64
	// PeakHeapBytes is the larger of HeapInuse sampled before and after
	// the trial (a cheap stand-in for true in-trial peak).
	PeakHeapBytes uint64
}

// TrialSeed derives the seed for one trial from the suite seed using a
// splitmix64 mix, so neighboring trial indices get uncorrelated streams
// and trial k's seed never depends on how many workers ran before it.
func TrialSeed(suiteSeed int64, trial int) int64 {
	z := uint64(suiteSeed) + 0x9e3779b97f4a7c15*(uint64(trial)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run executes cfg.Trials independent trials across the worker pool and
// returns their results ordered by trial index. On the first trial error
// the pool stops dispatching new trials, waits for in-flight trials, and
// returns the error of the lowest-indexed trial that failed (so the
// reported failure does not depend on scheduling).
func Run(cfg Config) ([]Result, error) {
	if cfg.Run == nil {
		return nil, errors.New("harness: Config.Run is nil")
	}
	if cfg.Trials < 0 {
		return nil, fmt.Errorf("harness: Trials = %d, want >= 0", cfg.Trials)
	}
	if cfg.Trials == 0 {
		return nil, nil
	}
	par := cfg.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}

	results := make([]Result, cfg.Trials)
	var (
		mu          sync.Mutex
		firstErr    error
		firstErrIdx = -1
		stop        atomic.Bool
	)

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := 0; i < cfg.Trials; i++ {
			if stop.Load() {
				return
			}
			idxCh <- i
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, err := runTrial(cfg, i)
				mu.Lock()
				if err != nil {
					if firstErrIdx < 0 || i < firstErrIdx {
						firstErr, firstErrIdx = err, i
					}
					stop.Store(true)
				} else {
					results[i] = res
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErrIdx >= 0 {
		return nil, fmt.Errorf("harness: trial %d: %w", firstErrIdx, firstErr)
	}
	return results, nil
}

// runTrial runs one trial with timing and memory sampling around it.
func runTrial(cfg Config, i int) (Result, error) {
	seed := TrialSeed(cfg.Seed, i)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	v, err := cfg.Run(Trial{Index: i, Seed: seed, Rng: rand.New(rand.NewSource(seed))})
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, err
	}
	peak := before.HeapInuse
	if after.HeapInuse > peak {
		peak = after.HeapInuse
	}
	return Result{
		Index:         i,
		Value:         v,
		Wall:          wall,
		AllocBytes:    after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes: peak,
	}, nil
}
