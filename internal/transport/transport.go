// Package transport carries wire messages between border routers over
// stream connections.
//
// BGP and BGMP peers "establish TCP peerings with each other to exchange
// routing information" (paper §2, §5.2). MsgConn wraps any net.Conn — a
// real TCP connection in cmd/bgmpd, a net.Pipe in tests and in-process
// networks — with the 8-byte frame header from package wire, a read loop
// friendly to incremental streams, and a write path safe for concurrent
// use.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mascbgmp/internal/wire"
)

// MsgConn is a framed message connection. It is safe for one concurrent
// reader plus any number of concurrent writers.
type MsgConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte // guarded by wmu

	closeOnce sync.Once
	closeErr  error
}

// NewMsgConn wraps conn. The caller must not read from or write to conn
// directly afterwards.
func NewMsgConn(conn net.Conn) *MsgConn {
	return &MsgConn{conn: conn, br: bufio.NewReaderSize(conn, 32*1024)}
}

// Pipe returns two MsgConns connected back-to-back in memory, for tests and
// single-process networks.
func Pipe() (*MsgConn, *MsgConn) {
	a, b := net.Pipe()
	return NewMsgConn(a), NewMsgConn(b)
}

// Write frames and sends msg. It is safe for concurrent use.
func (mc *MsgConn) Write(msg wire.Message) error {
	mc.wmu.Lock()
	defer mc.wmu.Unlock()
	mc.wbuf = wire.AppendFrame(mc.wbuf[:0], msg)
	_, err := mc.conn.Write(mc.wbuf)
	if err != nil {
		return fmt.Errorf("transport: write %v: %w", msg.Type(), err)
	}
	return nil
}

// Read blocks for the next message. On connection close it returns io.EOF
// (possibly wrapped); on any framing error the connection is poisoned and
// should be closed.
func (mc *MsgConn) Read() (wire.Message, error) {
	var hdr [wire.HeaderSize]byte
	if _, err := io.ReadFull(mc.br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[:]) != wire.Magic {
		return nil, wire.ErrBadMagic
	}
	if hdr[2] != wire.Version && hdr[2] != wire.TraceVersion {
		return nil, wire.ErrBadVersion
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > wire.MaxPayload {
		return nil, wire.ErrBadLength
	}
	frame := make([]byte, wire.HeaderSize+int(n))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(mc.br, frame[wire.HeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return wire.Decode(frame)
}

// SetReadDeadline forwards to the underlying connection.
func (mc *MsgConn) SetReadDeadline(t time.Time) error { return mc.conn.SetReadDeadline(t) }

// Close closes the underlying connection. It is idempotent.
func (mc *MsgConn) Close() error {
	mc.closeOnce.Do(func() { mc.closeErr = mc.conn.Close() })
	return mc.closeErr
}

// LocalAddr returns the underlying connection's local address.
func (mc *MsgConn) LocalAddr() net.Addr { return mc.conn.LocalAddr() }

// RemoteAddr returns the underlying connection's remote address.
func (mc *MsgConn) RemoteAddr() net.Addr { return mc.conn.RemoteAddr() }

// ErrHandshake is returned when the peer's first message is not a valid
// Open.
var ErrHandshake = errors.New("transport: handshake failed")

// Handshake exchanges Open messages: it sends local and waits for the
// peer's Open, which it returns. Both sides may call it concurrently.
func Handshake(mc *MsgConn, local wire.Open) (wire.Open, error) {
	errc := make(chan error, 1)
	go func() { errc <- mc.Write(&local) }()
	msg, err := mc.Read()
	if err != nil {
		return wire.Open{}, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	remote, ok := msg.(*wire.Open)
	if !ok {
		return wire.Open{}, fmt.Errorf("%w: first message was %v", ErrHandshake, msg.Type())
	}
	if err := <-errc; err != nil {
		return wire.Open{}, fmt.Errorf("%w: %v", ErrHandshake, err)
	}
	return *remote, nil
}
