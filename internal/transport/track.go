package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuiesceTimeout is returned (wrapped) when in-flight messages fail to
// drain within a Quiesce deadline.
var ErrQuiesceTimeout = errors.New("transport: quiesce timeout")

// Tracker counts messages in flight across a set of peering sessions so a
// caller can wait for the network to go quiet instead of sleeping a fixed
// duration. A message is in flight from the moment a sender commits to
// writing it until the receiver's handler has finished processing it —
// handler-generated follow-up messages are counted before the triggering
// message is released, so the count only reaches zero once every message
// cascade has fully drained.
//
// The zero value is ready to use; a nil *Tracker disables tracking.
type Tracker struct {
	mu sync.Mutex
	n  int64 // guarded by mu
	// waiters are closed and cleared whenever n returns to zero.
	// guarded by mu
	waiters []chan struct{}
}

// add adjusts the in-flight count, waking waiters at zero.
func (t *Tracker) add(delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.mu.Lock()
	t.n += delta
	if t.n < 0 { // defensive: never go negative on double-release
		t.n = 0
	}
	if t.n == 0 {
		for _, w := range t.waiters {
			close(w)
		}
		t.waiters = nil
	}
	t.mu.Unlock()
}

// InFlight returns the current number of tracked messages.
func (t *Tracker) InFlight() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Quiesce blocks until the in-flight count reaches zero, or until timeout
// elapses, in which case it reports the stuck count. A nil tracker is
// always quiescent.
func (t *Tracker) Quiesce(timeout time.Duration) error {
	if t == nil {
		return nil
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		t.mu.Lock()
		if t.n == 0 {
			t.mu.Unlock()
			return nil
		}
		w := make(chan struct{})
		t.waiters = append(t.waiters, w)
		n := t.n
		t.mu.Unlock()
		select {
		case <-w:
			// Re-check: another message may already be in flight, which
			// means the cascade has not drained — keep waiting.
		case <-deadline.C:
			return fmt.Errorf("%w: %d message(s) still in flight after %v", ErrQuiesceTimeout, n, timeout)
		}
	}
}

// NewFlight returns a Flight accounting one direction of one peering
// against this tracker. Safe on nil (returns a nil, no-op Flight).
func (t *Tracker) NewFlight() *Flight {
	if t == nil {
		return nil
	}
	return &Flight{t: t}
}

// Flight tracks the messages of one directed sender→receiver stream. The
// sender calls Sent when it commits a message to the stream; the receiver
// calls Handled after processing it. Close releases whatever is still in
// transit when the session dies, so lost messages cannot wedge Quiesce.
//
// A nil *Flight is a no-op.
type Flight struct {
	t      *Tracker
	mu     sync.Mutex
	n      int64 // guarded by mu
	closed bool  // guarded by mu
}

// Sent records one message entering the stream.
func (f *Flight) Sent() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.n++
	f.mu.Unlock()
	f.t.add(1)
}

// Handled records one message fully processed by the receiver.
func (f *Flight) Handled() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed || f.n == 0 {
		f.mu.Unlock()
		return
	}
	f.n--
	f.mu.Unlock()
	f.t.add(-1)
}

// Close releases any messages still in transit on this stream (the
// session died with them queued) and ignores further activity.
func (f *Flight) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	stuck := f.n
	f.n = 0
	f.mu.Unlock()
	f.t.add(-stuck)
}
