package transport

import (
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

func TestMsgConnRoundTripOverPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	want := &wire.Claim{Claimer: 9, ClaimID: 77, Prefix: addr.MustParsePrefix("228.0.0.0/22"), LifeSecs: 60}
	go func() {
		if err := a.Write(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}

func TestMsgConnManyMessagesOrdered(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Write(&wire.GroupJoin{Group: addr.Addr(0xe0000000 + i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		msg, err := b.Read()
		if err != nil {
			t.Fatal(err)
		}
		gj, ok := msg.(*wire.GroupJoin)
		if !ok || gj.Group != addr.Addr(0xe0000000+i) {
			t.Fatalf("message %d: %#v", i, msg)
		}
	}
}

func TestMsgConnConcurrentWriters(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Write(&wire.Keepalive{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < writers*per {
			if _, err := b.Read(); err != nil {
				t.Error(err)
				return
			}
			got++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reader did not drain all messages")
	}
	if got != writers*per {
		t.Fatalf("read %d messages, want %d", got, writers*per)
	}
}

func TestMsgConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		mc := NewMsgConn(c)
		defer mc.Close()
		msg, err := mc.Read()
		if err != nil {
			done <- err
			return
		}
		done <- mc.Write(msg) // echo
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMsgConn(c)
	defer mc.Close()
	want := &wire.Data{Group: addr.MakeAddr(224, 1, 2, 3), Source: addr.MakeAddr(10, 0, 0, 1), TTL: 16, Payload: []byte("payload over tcp")}
	if err := mc.Write(want); err != nil {
		t.Fatal(err)
	}
	got, err := mc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("echo mismatch: %#v", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMsgConnReadAfterClose(t *testing.T) {
	a, b := Pipe()
	b.Close()
	a.Close()
	if _, err := a.Read(); err == nil {
		t.Fatal("read on closed conn should fail")
	}
	if err := a.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestMsgConnRejectsGarbageStream(t *testing.T) {
	ca, cb := net.Pipe()
	mc := NewMsgConn(ca)
	defer mc.Close()
	go func() {
		cb.Write([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
		cb.Close()
	}()
	if _, err := mc.Read(); !errors.Is(err, wire.ErrBadMagic) {
		t.Fatalf("garbage stream: %v", err)
	}
}

func TestMsgConnRejectsTruncatedFrame(t *testing.T) {
	ca, cb := net.Pipe()
	mc := NewMsgConn(ca)
	defer mc.Close()
	go func() {
		// Valid header claiming 10-byte payload, then only 3 bytes.
		cb.Write([]byte{0x4D, 0x42, wire.Version, byte(wire.TypeGroupJoin), 0, 0, 0, 10, 1, 2, 3})
		cb.Close()
	}()
	if _, err := mc.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame: %v", err)
	}
}

func TestHandshake(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	openA := wire.Open{Router: 1, Domain: 10, HoldSecs: 90}
	openB := wire.Open{Router: 2, Domain: 20, HoldSecs: 90}
	var remoteAtA wire.Open
	var errA error
	done := make(chan struct{})
	go func() {
		remoteAtA, errA = Handshake(a, openA)
		close(done)
	}()
	remoteAtB, err := Handshake(b, openB)
	<-done
	if err != nil || errA != nil {
		t.Fatalf("handshake errors: %v, %v", err, errA)
	}
	if remoteAtA != openB || remoteAtB != openA {
		t.Fatalf("handshake identities wrong: %v / %v", remoteAtA, remoteAtB)
	}
}

func TestHandshakeRejectsNonOpen(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go b.Write(&wire.Keepalive{})
	if _, err := Handshake(a, wire.Open{Router: 1}); !errors.Is(err, ErrHandshake) {
		t.Fatalf("want handshake error, got %v", err)
	}
}

func startPeerPair(t *testing.T, hA, hB func(*Peer, wire.Message)) (*Peer, *Peer) {
	t.Helper()
	a, b := Pipe()
	var pa, pb *Peer
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		pa, ea = StartPeer(a, PeerConfig{Local: wire.Open{Router: 1, Domain: 10}, Handler: hA})
	}()
	go func() {
		defer wg.Done()
		pb, eb = StartPeer(b, PeerConfig{Local: wire.Open{Router: 2, Domain: 20}, Handler: hB})
	}()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("StartPeer: %v / %v", ea, eb)
	}
	t.Cleanup(func() { pa.Close(); pb.Close() })
	return pa, pb
}

func TestPeerDispatch(t *testing.T) {
	got := make(chan wire.Message, 1)
	pa, pb := startPeerPair(t, nil, func(_ *Peer, m wire.Message) { got <- m })
	if pa.Remote().Router != 2 || pb.Remote().Router != 1 {
		t.Fatal("handshake identities wrong")
	}
	want := &wire.GroupJoin{Group: addr.MakeAddr(224, 9, 9, 9)}
	if err := pa.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("got %#v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never saw the message")
	}
}

func TestPeerCloseRunsOnCloseOnce(t *testing.T) {
	a, b := Pipe()
	closes := make(chan error, 2)
	var pa, pb *Peer
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		pa, _ = StartPeer(a, PeerConfig{Local: wire.Open{Router: 1}, OnClose: func(_ *Peer, err error) { closes <- err }})
	}()
	go func() {
		defer wg.Done()
		pb, _ = StartPeer(b, PeerConfig{Local: wire.Open{Router: 2}})
	}()
	wg.Wait()
	pa.Close()
	pa.Close() // second close is a no-op
	select {
	case err := <-closes:
		if err != nil {
			t.Fatalf("OnClose error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnClose never ran")
	}
	select {
	case <-closes:
		t.Fatal("OnClose ran twice")
	case <-time.After(50 * time.Millisecond):
	}
	pb.Close()
	<-pa.Done()
}

func TestPeerRemoteCloseEndsSession(t *testing.T) {
	pa, pb := startPeerPair(t, nil, nil)
	pb.Close()
	select {
	case <-pa.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer A never noticed remote close")
	}
}

func TestPeerNotificationEndsSession(t *testing.T) {
	notes := make(chan wire.Message, 1)
	pa, pb := startPeerPair(t, nil, func(_ *Peer, m wire.Message) { notes <- m })
	pa.Send(&wire.Notification{Code: wire.NoteCeaseAdmin, Reason: "bye"})
	select {
	case <-pb.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("notification did not end session")
	}
	select {
	case m := <-notes:
		if n, ok := m.(*wire.Notification); !ok || n.Reason != "bye" {
			t.Fatalf("handler got %#v", m)
		}
	default:
		t.Fatal("handler never saw the notification")
	}
}

func TestPeerKeepalive(t *testing.T) {
	a, b := Pipe()
	var pa, pb *Peer
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		pa, _ = StartPeer(a, PeerConfig{
			Local:          wire.Open{Router: 1, HoldSecs: 2},
			KeepaliveEvery: 20 * time.Millisecond,
		})
	}()
	go func() {
		defer wg.Done()
		pb, _ = StartPeer(b, PeerConfig{
			Local:          wire.Open{Router: 2, HoldSecs: 2},
			KeepaliveEvery: 20 * time.Millisecond,
		})
	}()
	wg.Wait()
	defer pa.Close()
	defer pb.Close()
	// Sessions must stay alive well past several keepalive periods.
	select {
	case <-pa.Done():
		t.Fatal("session A died under keepalives")
	case <-pb.Done():
		t.Fatal("session B died under keepalives")
	case <-time.After(300 * time.Millisecond):
	}
}

func TestPeerHoldTimerExpiresOnSilentPeer(t *testing.T) {
	a, b := Pipe()
	// B handshakes but then goes silent (no keepalives): A's hold timer
	// (1s) must end the session.
	go func() {
		if _, err := Handshake(b, wire.Open{Router: 2, HoldSecs: 1}); err != nil {
			t.Error(err)
		}
		// hold the connection open, silently
	}()
	pa, err := StartPeer(a, PeerConfig{
		Local:          wire.Open{Router: 1, HoldSecs: 1},
		KeepaliveEvery: 10 * time.Second, // our keepalives don't refresh OUR read deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-pa.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("hold timer never expired")
	}
	b.Close()
}

func TestPeerSendAfterCloseErrors(t *testing.T) {
	pa, pb := startPeerPair(t, nil, nil)
	pa.Close()
	<-pa.Done()
	if err := pa.Send(&wire.Keepalive{}); err == nil {
		t.Fatal("send on closed session should error")
	}
	pb.Close()
}
