package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

func TestNilTrackerAndFlightAreNoOps(t *testing.T) {
	var tr *Tracker
	if err := tr.Quiesce(time.Millisecond); err != nil {
		t.Fatalf("nil tracker quiesce: %v", err)
	}
	f := tr.NewFlight()
	f.Sent()
	f.Handled()
	f.Close()
	if tr.InFlight() != 0 {
		t.Fatal("nil tracker counted")
	}
}

func TestQuiesceWaitsForCascade(t *testing.T) {
	tr := &Tracker{}
	f := tr.NewFlight()
	f.Sent()
	f.Sent()
	done := make(chan error, 1)
	go func() { done <- tr.Quiesce(5 * time.Second) }()
	select {
	case err := <-done:
		t.Fatalf("quiesce returned with messages in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.Handled()
	// Simulate a cascade: handling the last message spawns another.
	f.Sent()
	f.Handled()
	f.Handled()
	if err := <-done; err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

func TestQuiesceTimesOutOnStuckMessage(t *testing.T) {
	tr := &Tracker{}
	f := tr.NewFlight()
	f.Sent()
	err := tr.Quiesce(30 * time.Millisecond)
	if !errors.Is(err, ErrQuiesceTimeout) {
		t.Fatalf("err = %v, want ErrQuiesceTimeout", err)
	}
	// Closing the flight releases the stuck message.
	f.Close()
	if err := tr.Quiesce(time.Second); err != nil {
		t.Fatalf("quiesce after close: %v", err)
	}
}

func TestFlightCloseReleasesInTransit(t *testing.T) {
	tr := &Tracker{}
	f := tr.NewFlight()
	f.Sent()
	f.Sent()
	f.Sent()
	f.Handled()
	if got := tr.InFlight(); got != 2 {
		t.Fatalf("in flight = %d, want 2", got)
	}
	f.Close()
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("in flight after close = %d, want 0", got)
	}
	f.Sent() // post-close activity is ignored
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("post-close send counted: %d", got)
	}
}

// TestPeerTracksInFlightMessages runs two peers over a pipe and checks the
// tracker sees the message through to handler completion, and that the obs
// counters record the session traffic.
func TestPeerTracksInFlightMessages(t *testing.T) {
	tr := &Tracker{}
	ob := obs.NewObserver()
	ab, ba := tr.NewFlight(), tr.NewFlight()
	ca, cb := Pipe()

	handled := make(chan wire.Message, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	var pa *Peer
	go func() {
		defer wg.Done()
		var err error
		pa, err = StartPeer(ca, PeerConfig{
			Local: wire.Open{Router: 1, Domain: 10},
			Out:   ab, In: ba, Obs: ob,
			Handler: func(_ *Peer, m wire.Message) { handled <- m },
		})
		if err != nil {
			t.Error(err)
		}
	}()
	pb, err := StartPeer(cb, PeerConfig{
		Local: wire.Open{Router: 2, Domain: 20},
		Out:   ba, In: ab, Obs: ob,
		Handler: func(_ *Peer, m wire.Message) {
			time.Sleep(10 * time.Millisecond) // processing time visible to Quiesce
			handled <- m
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	defer pa.Close()
	defer pb.Close()

	if err := pa.Send(&wire.GroupJoin{Group: 0xe1000001}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Quiesce(5 * time.Second); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	select {
	case <-handled:
	default:
		t.Fatal("quiesce returned before the handler finished")
	}
	s := ob.Snapshot()
	if s.Get(obs.TransportSent.String(), 10, 1) != 1 {
		t.Fatalf("transport.sent@10/1 = %d, want 1\n%s", s.Get(obs.TransportSent.String(), 10, 1), s)
	}
	if s.Get(obs.TransportRecv.String(), 20, 2) != 1 {
		t.Fatalf("transport.recv@20/2 = %d, want 1\n%s", s.Get(obs.TransportRecv.String(), 20, 2), s)
	}
}
