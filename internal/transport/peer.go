package transport

import (
	"io"
	"sync"
	"time"

	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// Peer is an established peering session: a handshaken MsgConn with a
// background receive loop that dispatches inbound messages to a handler,
// optional keepalives, and hold-timer supervision.
//
// Peer is the shared session substrate for the BGP-lite, MASC, and BGMP
// speakers: all three run over persistent peerings between border routers.
type Peer struct {
	mc     *MsgConn
	local  wire.Open
	remote wire.Open

	handler func(*Peer, wire.Message)
	onClose func(*Peer, error)

	out, in *Flight
	obs     *obs.Observer
	sent    *obs.Counter
	recv    *obs.Counter

	mu     sync.Mutex
	closed bool // guarded by mu

	done chan struct{}
}

// PeerConfig configures StartPeer.
type PeerConfig struct {
	// Local identifies this speaker in the handshake.
	Local wire.Open
	// Handler receives every inbound message except Keepalive, called
	// sequentially from the receive goroutine.
	Handler func(*Peer, wire.Message)
	// OnClose, if set, runs once when the session ends, with nil on
	// clean shutdown or the fatal error otherwise.
	OnClose func(*Peer, error)
	// KeepaliveEvery, if positive, sends Keepalive messages on that
	// period and requires inbound traffic at least every Local.HoldSecs
	// seconds (enforced via read deadlines). Zero disables both, which
	// suits in-process pipes.
	KeepaliveEvery time.Duration
	// Out and In account this session's two directed streams against a
	// Tracker for quiescence detection: Out is the stream this peer
	// writes, In the stream it reads (the remote side's Out). Nil
	// disables tracking.
	Out, In *Flight
	// Obs, if set, counts every message written and read on this session
	// (transport.sent / transport.recv), scoped by Local.Domain/Router.
	Obs *obs.Observer
}

// StartPeer performs the Open handshake on mc and starts the receive loop.
// On handshake failure the connection is closed.
func StartPeer(mc *MsgConn, cfg PeerConfig) (*Peer, error) {
	remote, err := Handshake(mc, cfg.Local)
	if err != nil {
		mc.Close()
		return nil, err
	}
	p := &Peer{
		mc:      mc,
		local:   cfg.Local,
		remote:  remote,
		handler: cfg.Handler,
		onClose: cfg.OnClose,
		out:     cfg.Out,
		in:      cfg.In,
		obs:     cfg.Obs,
		sent:    cfg.Obs.Metrics().Counter(obs.TransportSent.String(), cfg.Local.Domain, cfg.Local.Router),
		recv:    cfg.Obs.Metrics().Counter(obs.TransportRecv.String(), cfg.Local.Domain, cfg.Local.Router),
		done:    make(chan struct{}),
	}
	if cfg.KeepaliveEvery > 0 {
		go p.keepaliveLoop(cfg.KeepaliveEvery)
	}
	go p.readLoop(cfg.KeepaliveEvery > 0)
	return p, nil
}

// Remote returns the peer's Open message from the handshake.
func (p *Peer) Remote() wire.Open { return p.remote }

// Local returns this side's Open message.
func (p *Peer) Local() wire.Open { return p.local }

// Send transmits msg to the peer.
func (p *Peer) Send(msg wire.Message) error {
	p.out.Sent()
	if err := p.mc.Write(msg); err != nil {
		p.out.Handled() // never entered the stream
		return err
	}
	p.sent.Inc()
	return nil
}

// Close terminates the session. The OnClose callback observes a nil error.
func (p *Peer) Close() error {
	p.finish(nil)
	return nil
}

// Done is closed when the session has fully terminated.
func (p *Peer) Done() <-chan struct{} { return p.done }

func (p *Peer) finish(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.mc.Close()
	// Messages still in transit on a dead session will never be handled;
	// release them so Quiesce cannot wedge.
	p.out.Close()
	p.in.Close()
	if p.onClose != nil {
		p.onClose(p, err)
	}
	close(p.done)
}

func (p *Peer) readLoop(useHold bool) {
	for {
		if useHold && p.local.HoldSecs > 0 {
			_ = p.mc.SetReadDeadline(time.Now().Add(time.Duration(p.local.HoldSecs) * time.Second))
		}
		msg, err := p.mc.Read()
		if err != nil {
			if err == io.EOF {
				err = nil // clean remote close
			}
			p.finish(err)
			return
		}
		p.recv.Inc()
		switch msg.(type) {
		case *wire.Keepalive:
			// refreshes the read deadline implicitly
			p.in.Handled()
		case *wire.Notification:
			if p.handler != nil {
				p.handler(p, msg)
			}
			p.in.Handled()
			p.finish(nil)
			return
		default:
			if p.handler != nil {
				p.handler(p, msg)
			}
			// Handled only after the handler returns: follow-up messages
			// the handler sent are already counted, so the tracker never
			// dips to zero mid-cascade.
			p.in.Handled()
		}
	}
}

func (p *Peer) keepaliveLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			if err := p.Send(&wire.Keepalive{}); err != nil {
				p.finish(err)
				return
			}
		}
	}
}
