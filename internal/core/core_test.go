package core

import (
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// paperNet builds the internetwork of the paper's Figures 1 and 3:
//
//	Domain A (1): routers A1=11 A2=12 A3=13 A4=14 — backbone
//	Domain B (2): B1=21 B2=22 — regional, customer of A, root for the demo group
//	Domain C (3): C1=31 C2=32 — regional, customer of A
//	Domain D (4): D1=41 — backbone
//	Domain E (5): E1=51 — backbone
//	Domain F (6): F1=61 F2=62 — customer of B
//	Domain G (7): G1=71 G2=72 — customer of C
//	Domain H (8): H1=81 — customer of G
//
// Links: E1–A1, C1–A2, B1–A3, D1–A4, F1–B2, G1–C2, H1–G2, plus the F2–A4
// link of Fig 3(b) when withF2A4 is set.
func paperNet(t *testing.T, withF2A4, sourceBranches bool) (*Network, *simclock.Sim) {
	return paperNetDP(t, withF2A4, sourceBranches, "", nil)
}

// paperNetDP is paperNet with a selectable forwarding backend and an
// optional observer (the data-plane comparison tests need both).
func paperNetDP(t *testing.T, withF2A4, sourceBranches bool, dataPlane string, ob *obs.Observer) (*Network, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	n, err := NewNetwork(Config{
		Clock:          clk,
		Seed:           42,
		Synchronous:    true,
		SourceBranches: sourceBranches,
		DataPlane:      dataPlane,
		Observer:       ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	add := func(id wire.DomainID, routers []wire.RouterID, top bool) *Domain {
		t.Helper()
		d, err := n.AddDomain(DomainConfig{
			ID:            id,
			Routers:       routers,
			InteriorNodes: len(routers) + 2,
			Protocol:      dvmrp.New(),
			TopLevel:      top,
			HostPrefix:    addr.Prefix{Base: addr.MakeAddr(10, byte(id), 0, 0), Len: 16},
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	add(1, []wire.RouterID{11, 12, 13, 14}, true) // A
	add(2, []wire.RouterID{21, 22}, false)        // B
	add(3, []wire.RouterID{31, 32}, false)        // C
	add(4, []wire.RouterID{41}, true)             // D
	add(5, []wire.RouterID{51}, true)             // E
	add(6, []wire.RouterID{61, 62}, false)        // F
	add(7, []wire.RouterID{71, 72}, false)        // G
	add(8, []wire.RouterID{81}, false)            // H

	links := [][2]wire.RouterID{
		{51, 11}, {31, 12}, {21, 13}, {41, 14}, // E1–A1, C1–A2, B1–A3, D1–A4
		{61, 22}, {71, 32}, {81, 72}, // F1–B2, G1–C2, H1–G2
	}
	if withF2A4 {
		links = append(links, [2]wire.RouterID{62, 14})
	}
	for _, l := range links {
		if err := n.Link(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}

	// MASC hierarchy: A, D, E top-level siblings; B, C under A; F under
	// B; G under C; H under G.
	for _, s := range [][2]wire.DomainID{{1, 4}, {1, 5}, {4, 5}} {
		if err := n.MASCPeerSiblings(s[0], s[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, pc := range [][2]wire.DomainID{{1, 2}, {1, 3}, {2, 6}, {3, 7}, {7, 8}} {
		if err := n.MASCPeerParentChild(pc[0], pc[1]); err != nil {
			t.Fatal(err)
		}
	}
	return n, clk
}

// allocateSpaces walks the MASC hierarchy: A claims a /16, then B and C
// claim sub-ranges, then F, G, H. Each level needs a waiting period.
func allocateSpaces(t *testing.T, n *Network, clk *simclock.Sim) {
	t.Helper()
	if !n.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour) {
		t.Fatal("A's claim selection failed")
	}
	clk.RunFor(49 * time.Hour)
	if len(n.Domain(1).MASC().Holdings()) != 1 {
		t.Fatal("A did not win its top-level range")
	}
	for _, d := range []wire.DomainID{2, 3} {
		if !n.Domain(d).MASC().RequestSpace(256, 30*24*time.Hour) {
			t.Fatalf("domain %d claim selection failed", d)
		}
	}
	clk.RunFor(49 * time.Hour)
	for _, d := range []wire.DomainID{2, 3} {
		if len(n.Domain(d).MASC().Holdings()) != 1 {
			t.Fatalf("domain %d did not win a range", d)
		}
	}
}

func TestMASCHierarchyAllocatesNestedRanges(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)

	aRange := n.Domain(1).MASC().Holdings()[0].Prefix
	if !aRange.IsMulticast() || aRange.Size() < 1<<16 {
		t.Fatalf("A's range %v unsuitable", aRange)
	}
	bRange := n.Domain(2).MASC().Holdings()[0].Prefix
	cRange := n.Domain(3).MASC().Holdings()[0].Prefix
	if !aRange.ContainsPrefix(bRange) || !aRange.ContainsPrefix(cRange) {
		t.Fatalf("children's ranges %v, %v outside parent %v", bRange, cRange, aRange)
	}
	if bRange.Overlaps(cRange) {
		t.Fatalf("sibling ranges overlap: %v / %v", bRange, cRange)
	}
}

func TestGRIBDistributionAndAggregation(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)

	aRange := n.Domain(1).MASC().Holdings()[0].Prefix
	bRange := n.Domain(2).MASC().Holdings()[0].Prefix

	// D's border sees A's covering range but not B's more-specific one
	// (paper §4.2: A's routers need not propagate 224.0.128.0/24).
	d1 := n.Router(41)
	gribD := d1.BGP().Table(wire.TableGRIB)
	for _, e := range gribD {
		if e.Route.Prefix == bRange {
			t.Fatalf("B's range leaked past A's aggregation: %v", gribD)
		}
	}
	if _, ok := d1.BGP().LookupPrefix(wire.TableGRIB, aRange); !ok {
		t.Fatal("D must hold A's aggregate")
	}

	// Inside A, the more specific route directs to B: A3's lookup of an
	// address in B's range points at B1 (21).
	a3 := n.Router(13)
	e, ok := a3.BGP().Lookup(wire.TableGRIB, bRange.First())
	if !ok || e.NextHop != 21 {
		t.Fatalf("A3 lookup: %+v ok=%v, want next hop B1(21)", e, ok)
	}
	// A2 reaches B's range via A3 (13) over the internal mesh.
	a2 := n.Router(12)
	e, ok = a2.BGP().Lookup(wire.TableGRIB, bRange.First())
	if !ok || e.NextHop != 13 {
		t.Fatalf("A2 lookup: %+v ok=%v, want next hop A3(13)", e, ok)
	}
}

func TestMAASLeaseRootsGroupLocally(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)

	b := n.Domain(2)
	lease, err := b.NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	bRange := b.MASC().Holdings()[0].Prefix
	if !bRange.Contains(lease.Addr) {
		t.Fatalf("group %v outside B's range %v", lease.Addr, bRange)
	}
}

func TestMAASDemandTriggersMASC(t *testing.T) {
	n, clk := paperNet(t, false, false)
	// Only A has space so far.
	if !n.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour) {
		t.Fatal("A claim failed")
	}
	clk.RunFor(49 * time.Hour)
	b := n.Domain(2)
	if _, err := b.NewGroup(time.Hour); err == nil {
		t.Fatal("lease should fail before B has a range")
	}
	// The failed lease demanded space from MASC; the claim matures after
	// the waiting period.
	clk.RunFor(49 * time.Hour)
	if _, err := b.NewGroup(time.Hour); err != nil {
		t.Fatalf("lease after MASC demand: %v", err)
	}
}

// establishGroup allocates spaces, leases a group in B, and joins members
// in the Fig 3(a) domains: B (local), C, D, F, H.
func establishGroup(t *testing.T, n *Network, clk *simclock.Sim) addr.Addr {
	t.Helper()
	allocateSpaces(t, n, clk)
	lease, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	g := lease.Addr
	for _, d := range []wire.DomainID{2, 3, 4, 6, 8} {
		n.Domain(d).Join(g, 1)
	}
	return g
}

func TestBidirectionalTreeConstruction(t *testing.T) {
	n, clk := paperNet(t, false, false)
	g := establishGroup(t, n, clk)

	// B1 (root-domain border) must have (*,G) state with the MIGP as
	// parent (no BGP next hop in the root domain).
	b1 := n.Router(21)
	parent, _, ok := b1.BGMP().GroupEntry(g)
	if !ok {
		t.Fatal("B1 missing (*,G) state")
	}
	if !parent.MIGP {
		t.Fatalf("B1 parent = %v, want MIGP (root domain)", parent)
	}
	// A3 is on the tree toward B; its parent is the external peer B1.
	a3 := n.Router(13)
	parent, _, ok = a3.BGMP().GroupEntry(g)
	if !ok {
		t.Fatal("A3 missing (*,G) state")
	}
	if parent.MIGP || parent.Router != 21 {
		t.Fatalf("A3 parent = %v, want peer B1(21)", parent)
	}
	// C1 joined through A2: A2 has C1 as child.
	a2 := n.Router(12)
	_, children, ok := a2.BGMP().GroupEntry(g)
	if !ok {
		t.Fatal("A2 missing (*,G) state")
	}
	foundC1 := false
	for _, c := range children {
		if !c.MIGP && c.Router == 31 {
			foundC1 = true
		}
	}
	if !foundC1 {
		t.Fatalf("A2 children = %v, want C1(31)", children)
	}
	// F1 (under B2) is on the tree; H1 under G under C as well.
	if !n.Router(61).BGMP().HasGroupState(g) {
		t.Fatal("F1 missing state")
	}
	if !n.Router(81).BGMP().HasGroupState(g) {
		t.Fatal("H1 missing state")
	}
}

func TestDataDeliveryAlongBidirectionalTree(t *testing.T) {
	n, clk := paperNet(t, false, false)
	g := establishGroup(t, n, clk)

	// A host in D (a member domain) sends: every member domain receives,
	// including D itself is not required (sender's own domain has the
	// member at another node — it does receive via the interior).
	src := n.Domain(4).HostAddr(1)
	n.Domain(4).Send(g, src, "hello from D", 1)

	for _, id := range []wire.DomainID{2, 3, 6, 8} {
		got := n.Domain(id).Received()
		if len(got) == 0 {
			t.Fatalf("domain %d received nothing", id)
		}
		for _, dv := range got {
			if dv.Group != g || dv.Source != src || dv.Payload != "hello from D" {
				t.Fatalf("domain %d bad delivery %+v", id, dv)
			}
		}
	}
	// Non-member domain E must receive nothing.
	if got := n.Domain(5).Received(); len(got) != 0 {
		t.Fatalf("E is not a member but received %v", got)
	}
}

func TestNonMemberSenderConformsToIPModel(t *testing.T) {
	// §3: senders need not be members. A host in E (no members) sends;
	// data flows toward the root domain and down the tree to all members.
	n, clk := paperNet(t, false, false)
	g := establishGroup(t, n, clk)

	src := n.Domain(5).HostAddr(1)
	n.Domain(5).Send(g, src, "sensor report", 1)

	for _, id := range []wire.DomainID{2, 3, 4, 6, 8} {
		if len(n.Domain(id).Received()) == 0 {
			t.Fatalf("member domain %d missed the non-member sender's data", id)
		}
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	n, clk := paperNet(t, false, false)
	g := establishGroup(t, n, clk)
	src := n.Domain(5).HostAddr(1)
	n.Domain(5).Send(g, src, "one", 1)
	for _, id := range []wire.DomainID{2, 3, 4, 6, 8} {
		got := n.Domain(id).Received()
		if len(got) != 1 {
			t.Fatalf("domain %d got %d copies, want exactly 1: %v", id, len(got), got)
		}
	}
}

func TestLeavePrunesTree(t *testing.T) {
	n, clk := paperNet(t, false, false)
	g := establishGroup(t, n, clk)

	// H leaves; the branch through G and C2 should wither where H was the
	// only downstream interest.
	n.Domain(8).Leave(g, 1)
	if n.Router(81).BGMP().HasGroupState(g) {
		t.Fatal("H1 should have pruned its state")
	}
	if n.Router(72).BGMP().HasGroupState(g) {
		t.Fatal("G2's branch existed only for H")
	}
	// C stays: it has its own member.
	if !n.Router(31).BGMP().HasGroupState(g) {
		t.Fatal("C1 must keep state for C's member")
	}
	// Data still reaches remaining members but not H.
	n.Domain(8).ClearReceived()
	src := n.Domain(4).HostAddr(1)
	n.Domain(4).Send(g, src, "after prune", 1)
	if len(n.Domain(8).Received()) != 0 {
		t.Fatal("H received data after leaving")
	}
	if len(n.Domain(3).Received()) == 0 {
		t.Fatal("C lost data after H's prune")
	}
}

func TestFig3bEncapsulationAndSourceBranch(t *testing.T) {
	// Fig 3(b): with the F2–A4 link, F's interior RPF for sources in D
	// expects entry via F2, but the shared tree delivers via F1. F1 must
	// encapsulate to F2; with source branches enabled F2 joins toward the
	// source and eventually prunes the shared-tree copies.
	n, clk := paperNet(t, true, true)
	g := establishGroup(t, n, clk)

	src := n.Domain(4).HostAddr(1) // source S in domain D
	n.Domain(4).Send(g, src, "pkt1", 1)

	// F still received (encapsulated or native).
	if len(n.Domain(6).Received()) == 0 {
		t.Fatal("F missed the data entirely")
	}
	// F2 built (S,G) state toward the source.
	f2 := n.Router(62)
	if _, _, ok := f2.BGMP().SourceEntry(src, g); !ok {
		t.Fatal("F2 has no source-specific state — branch not built")
	}
	// pkt2 is the transition packet: the shared-tree (encapsulated) copy
	// and the first native branch copy may both arrive, and the native
	// arrival triggers the source-specific prune toward F1 ("F2 sends a
	// source-specific prune to F1, and starts dropping the encapsulated
	// copies", §5.3).
	n.Domain(6).ClearReceived()
	n.Domain(4).Send(g, src, "pkt2", 1)
	if got := n.Domain(6).Received(); len(got) < 1 || len(got) > 2 {
		t.Fatalf("F got %d copies of pkt2, want 1..2 during the switchover: %v", len(got), got)
	}
	// From pkt3 on the branch is in place and the shared-tree copies are
	// pruned: exactly one native copy.
	n.Domain(6).ClearReceived()
	n.Domain(4).Send(g, src, "pkt3", 1)
	if got := n.Domain(6).Received(); len(got) != 1 {
		t.Fatalf("F got %d copies of pkt3, want exactly 1: %v", len(got), got)
	}
	// And every other member domain still gets exactly one copy.
	for _, id := range []wire.DomainID{2, 3, 4, 8} {
		n.Domain(id).ClearReceived()
	}
	n.Domain(4).Send(g, src, "pkt4", 1)
	for _, id := range []wire.DomainID{2, 3, 8} {
		if got := n.Domain(id).Received(); len(got) != 1 {
			t.Fatalf("domain %d got %d copies of pkt4: %v", id, len(got), got)
		}
	}
}

func TestAsyncNetworkConverges(t *testing.T) {
	// The same scenario over real framed pipes with background receive
	// loops: slower, nondeterministic ordering, same outcome.
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	n, err := NewNetwork(Config{Clock: clk, Seed: 42, Synchronous: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []struct {
		id      wire.DomainID
		routers []wire.RouterID
		top     bool
	}{
		{1, []wire.RouterID{11, 12}, true},
		{2, []wire.RouterID{21}, false},
		{3, []wire.RouterID{31}, false},
	} {
		if _, err := n.AddDomain(DomainConfig{
			ID: dc.id, Routers: dc.routers, Protocol: dvmrp.New(), TopLevel: dc.top,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, byte(dc.id), 0, 0), Len: 16},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Link(21, 11); err != nil {
		t.Fatal(err)
	}
	if err := n.Link(31, 12); err != nil {
		t.Fatal(err)
	}
	n.MASCPeerParentChild(1, 2)
	n.MASCPeerParentChild(1, 3)

	n.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	n.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}

	lease, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	n.Domain(3).Join(lease.Addr, 0)
	if err := n.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}

	src := n.Domain(2).HostAddr(1)
	n.Domain(2).Send(lease.Addr, src, "async hello", 0)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(n.Domain(3).Received()) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := n.Domain(3).Received()
	if len(got) == 0 {
		t.Fatal("async delivery never arrived")
	}
	if got[0].Payload != "async hello" {
		t.Fatalf("payload = %q", got[0].Payload)
	}
}
