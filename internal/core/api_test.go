package core

import (
	"errors"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" means valid
	}{
		{"zero value", Config{}, ""},
		{"synchronous", Config{Synchronous: true}, ""},
		{"tcp async", Config{TCP: true}, ""},
		{"negative masc wait", Config{MASCWait: -time.Hour}, "MASCWait"},
		{"negative claim lifetime", Config{ClaimLifetime: -time.Second}, "ClaimLifetime"},
		{"tcp with synchronous", Config{TCP: true, Synchronous: true}, "TCP"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
			// NewNetwork must reject the same config.
			if _, nerr := NewNetwork(tc.cfg); nerr == nil {
				t.Fatal("NewNetwork accepted an invalid config")
			}
		})
	}
}

func TestUnlinkNotLinked(t *testing.T) {
	n, err := NewNetwork(Config{Synchronous: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []DomainConfig{
		{ID: 1, Routers: []wire.RouterID{11}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 1, 0, 0), Len: 16}},
		{ID: 2, Routers: []wire.RouterID{21}, Protocol: dvmrp.New(),
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 2, 0, 0), Len: 16}},
	} {
		if _, err := n.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}

	// Never linked: typed error.
	if err := n.Unlink(11, 21); !errors.Is(err, ErrNotLinked) {
		t.Fatalf("Unlink(unlinked) = %v, want ErrNotLinked", err)
	}
	// Link, unlink, unlink again: second unlink reports not linked.
	if err := n.Link(11, 21); err != nil {
		t.Fatal(err)
	}
	if err := n.Unlink(11, 21); err != nil {
		t.Fatalf("Unlink(linked) = %v", err)
	}
	if err := n.Unlink(11, 21); !errors.Is(err, ErrNotLinked) {
		t.Fatalf("second Unlink = %v, want ErrNotLinked", err)
	}
	// Unknown routers are still a plain error, not ErrNotLinked's business.
	if err := n.Unlink(98, 99); err == nil {
		t.Fatal("Unlink(unknown routers) = nil, want error")
	}
}

// TestQuiesceDrainsAsyncNetwork replays the async convergence scenario but
// waits with Quiesce instead of sleep-polling, and checks the transport
// counters recorded real wire traffic.
func TestQuiesceDrainsAsyncNetwork(t *testing.T) {
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	ob := obs.NewObserver()
	n, err := NewNetwork(Config{Clock: clk, Seed: 42, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []struct {
		id      wire.DomainID
		routers []wire.RouterID
		top     bool
	}{
		{1, []wire.RouterID{11, 12}, true},
		{2, []wire.RouterID{21}, false},
		{3, []wire.RouterID{31}, false},
	} {
		if _, err := n.AddDomain(DomainConfig{
			ID: dc.id, Routers: dc.routers, Protocol: dvmrp.New(), TopLevel: dc.top,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, byte(dc.id), 0, 0), Len: 16},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Link(21, 11); err != nil {
		t.Fatal(err)
	}
	if err := n.Link(31, 12); err != nil {
		t.Fatal(err)
	}
	n.MASCPeerParentChild(1, 2)
	n.MASCPeerParentChild(1, 3)

	n.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	n.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatalf("Quiesce after MASC: %v", err)
	}

	lease, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	n.Domain(3).Join(lease.Addr, 0)
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatalf("Quiesce after join: %v", err)
	}

	src := n.Domain(2).HostAddr(1)
	n.Domain(2).Send(lease.Addr, src, "quiesce hello", 0)
	if err := n.Quiesce(5 * time.Second); err != nil {
		t.Fatalf("Quiesce after send: %v", err)
	}

	got := n.Domain(3).Received()
	if len(got) != 1 || got[0].Payload != "quiesce hello" {
		t.Fatalf("delivery after Quiesce = %v", got)
	}

	s := ob.Snapshot()
	if s.Total("transport.sent") == 0 || s.Total("transport.recv") == 0 {
		t.Fatalf("transport counters empty:\n%s", s)
	}
	if s.Total("data.delivered") == 0 {
		t.Fatalf("no data.delivered recorded:\n%s", s)
	}
}
