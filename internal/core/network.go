// Package core assembles the complete MASC/BGMP system: multi-domain
// networks of border routers running BGP-lite (with G-RIB and M-RIB
// views), the MASC claim-collide protocol, MAAS address servers, BGMP
// components, and an interior-protocol fabric per domain.
//
// It is the integration layer the examples, the bgmpd daemon, and the
// end-to-end tests build on: domains are added, linked, and then exercised
// through the small host-facing API (Join/Leave/Send/NewGroup).
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/liveness"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/transport"
	"mascbgmp/internal/wire"
)

// Config parameterizes a Network.
type Config struct {
	// Clock drives MASC waiting periods and lifetimes. Tests use a
	// simclock.Sim; defaults to the real clock.
	Clock simclock.Clock
	// Seed drives all randomized choices (claim selection, MAAS address
	// picks).
	Seed int64
	// MASCWait overrides the 48-hour claim waiting period.
	MASCWait time.Duration
	// ClaimLifetime is the lifetime for MASC claims; defaults to 30 days.
	ClaimLifetime time.Duration
	// SourceBranches enables §5.3 source-specific branches on every
	// border router.
	SourceBranches bool
	// AutoRenewClaims keeps domains' MASC holdings alive by renewing
	// them before expiry (§4.3.1). Off, ranges lapse at their lifetime
	// and the covering routes age out.
	AutoRenewClaims bool
	// Synchronous delivers inter-router messages by direct call (with an
	// encode/decode round trip) instead of background transport
	// goroutines, making tests deterministic. The bgmpd daemon and the
	// async integration test use real pipes.
	Synchronous bool
	// TCP, when set (and Synchronous is not), carries every peering over
	// a real loopback TCP connection instead of an in-memory pipe — the
	// deployment shape of cmd/bgmpd.
	TCP bool
	// Observer receives protocol events and feeds the metrics registry:
	// MASC claims and collisions, BGP route churn, BGMP joins/prunes and
	// repairs, data-plane hops and deliveries, transport traffic. Nil
	// disables observation at zero cost.
	Observer *obs.Observer
	// Faults, when set, routes every peering message (and session
	// keepalive) through the fault plane: per-link drop/duplicate/
	// reorder/delay, partitions, and peer crashes all apply. The plane
	// must share the network's Clock; NewNetwork wires its peer hooks.
	Faults *faultinject.Plane
	// HoldTime enables session supervision on links made with Link: each
	// side sends keepalives every HoldTime/3, and a session that hears
	// nothing for HoldTime is declared down — BGP withdraws the peer's
	// routes, BGMP repairs, and reconnects are retried with exponential
	// backoff. Zero disables supervision (links only fail via Unlink).
	HoldTime time.Duration
	// ReconnectBackoff is the first retry delay after a session drops;
	// it doubles per failed attempt up to 8×. Defaults to HoldTime/2.
	ReconnectBackoff time.Duration
	// Liveness, when set, additionally runs a BFD-style fast detector
	// (internal/liveness) on every supervised session: probe intervals
	// ramp from HoldTime/3 down to Params.Floor, detection fires after
	// Params.Multiplier missed intervals, and stable sessions quiesce
	// into demand mode. Hold timers keep running as the fallback
	// detector. Requires HoldTime (session supervision).
	Liveness *liveness.Params
	// DataPlane selects the forwarding backend every border router runs:
	// one of dataplane.Names() — "shared-tree" (BGMP shared trees, the
	// default when empty), "bier" (per-packet domain bitstrings computed
	// at the root), or "map-encap" (unicast tunnels to the root domain).
	// Control-plane behavior (MASC, BGP, BGMP joins) is unaffected; only
	// how data packets travel between domains changes.
	DataPlane string
}

// ConfigError reports an invalid Config field combination.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("core: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration for contradictions before any state is
// built. NewNetwork calls it; exported so callers can validate early.
func (c Config) Validate() error {
	if c.MASCWait < 0 {
		return &ConfigError{Field: "MASCWait", Reason: "must not be negative"}
	}
	if c.ClaimLifetime < 0 {
		return &ConfigError{Field: "ClaimLifetime", Reason: "must not be negative"}
	}
	if c.TCP && c.Synchronous {
		return &ConfigError{Field: "TCP", Reason: "TCP peerings need background transport; unset Synchronous"}
	}
	if c.HoldTime < 0 {
		return &ConfigError{Field: "HoldTime", Reason: "must not be negative"}
	}
	if c.ReconnectBackoff < 0 {
		return &ConfigError{Field: "ReconnectBackoff", Reason: "must not be negative"}
	}
	if c.ReconnectBackoff > 0 && c.HoldTime == 0 {
		return &ConfigError{Field: "ReconnectBackoff", Reason: "needs HoldTime to enable session supervision"}
	}
	if c.Liveness != nil {
		if c.HoldTime == 0 {
			return &ConfigError{Field: "Liveness", Reason: "needs HoldTime to enable session supervision"}
		}
		if c.Liveness.Floor < 0 || c.Liveness.Multiplier < 0 ||
			c.Liveness.DemandAfter < 0 || c.Liveness.DemandInterval < 0 {
			return &ConfigError{Field: "Liveness", Reason: "parameters must not be negative"}
		}
	}
	if c.DataPlane != "" && !dataplane.ValidName(c.DataPlane) {
		return &ConfigError{Field: "DataPlane", Reason: fmt.Sprintf(
			"unknown backend %q (valid: %s)", c.DataPlane, strings.Join(dataplane.Names(), ", "))}
	}
	return nil
}

// ErrNotLinked is returned (wrapped) by Unlink when the named routers have
// no peering to sever.
var ErrNotLinked = errors.New("core: routers not linked")

// Network is an in-process internetwork of MASC/BGMP domains.
type Network struct {
	cfg Config
	// tracker counts in-flight asynchronous messages for Quiesce.
	tracker *transport.Tracker

	mu       sync.Mutex
	domains  map[wire.DomainID]*Domain // guarded by mu
	routers  map[wire.RouterID]*Router // guarded by mu
	links    []link                    // guarded by mu
	sessions []*session                // guarded by mu
}

type link struct {
	a, b *Router
}

// NewNetwork returns an empty network, or a *ConfigError when cfg is
// contradictory.
func NewNetwork(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.MASCWait == 0 {
		cfg.MASCWait = 48 * time.Hour
	}
	if cfg.ClaimLifetime == 0 {
		cfg.ClaimLifetime = 30 * 24 * time.Hour
	}
	if cfg.HoldTime > 0 && cfg.ReconnectBackoff == 0 {
		cfg.ReconnectBackoff = cfg.HoldTime / 2
	}
	// An attached tracer times spans on the network's clock (obs sits
	// below simclock in the layering, so the clock is injected here).
	cfg.Observer.Tracer().SetNow(cfg.Clock.Now)
	n := &Network{
		cfg:     cfg,
		tracker: &transport.Tracker{},
		domains: map[wire.DomainID]*Domain{},
		routers: map[wire.RouterID]*Router{},
	}
	if cfg.Faults != nil {
		cfg.Faults.SetPeerHooks(n.onPeerCrash, n.onPeerRestart)
	}
	return n, nil
}

// Clock returns the network's time source.
func (n *Network) Clock() simclock.Clock { return n.cfg.Clock }

// Observer returns the network's observer, nil when observation is off.
func (n *Network) Observer() *obs.Observer { return n.cfg.Observer }

// Domain returns a domain by ID, or nil.
func (n *Network) Domain(id wire.DomainID) *Domain {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.domains[id]
}

// Router returns a router by ID, or nil.
func (n *Network) Router(id wire.RouterID) *Router {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.routers[id]
}

// domainAddr returns the tunnel anchor address of a domain — the base of
// its unicast host prefix, which every router can resolve through the
// unicast RIB. The map-and-encap backend tunnels packets to it; BIER uses
// it to pick the next hop toward a bitstring member. Domains without a
// host prefix are unreachable as overlay members.
func (n *Network) domainAddr(id wire.DomainID) (addr.Addr, bool) {
	d := n.Domain(id)
	if d == nil || !d.hostPrefix.Valid() || d.hostPrefix.Len == 0 {
		return 0, false
	}
	return d.hostPrefix.Base, true
}

// Domains returns all domains in insertion-independent map order.
func (n *Network) Domains() []*Domain {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Domain, 0, len(n.domains))
	for _, d := range n.domains {
		out = append(out, d)
	}
	return out
}

// Link connects two border routers of different domains with an external
// BGP+BGMP peering (TCP in spirit; net.Pipe or direct calls here).
func (n *Network) Link(a, b wire.RouterID) error {
	n.mu.Lock()
	ra, rb := n.routers[a], n.routers[b]
	n.mu.Unlock()
	if ra == nil || rb == nil {
		return fmt.Errorf("core: unknown router in link %d-%d", a, b)
	}
	if ra.domain == rb.domain {
		return fmt.Errorf("core: %d and %d are in the same domain; internal meshes are automatic", a, b)
	}
	if err := ra.connect(rb, n.cfg.Synchronous, n.cfg.TCP); err != nil {
		return err
	}
	n.mu.Lock()
	n.links = append(n.links, link{ra, rb})
	n.mu.Unlock()
	if n.cfg.HoldTime > 0 {
		s := newSession(n, ra, rb)
		n.mu.Lock()
		n.sessions = append(n.sessions, s)
		n.mu.Unlock()
		s.start()
	}
	return nil
}

// Unlink severs the peering between two border routers: both sides drop
// the session, BGP withdraws the routes learned over it, and BGMP repairs
// affected shared trees onto surviving paths.
func (n *Network) Unlink(a, b wire.RouterID) error {
	n.mu.Lock()
	ra, rb := n.routers[a], n.routers[b]
	linked := false
	for i, l := range n.links {
		if (l.a == ra && l.b == rb) || (l.a == rb && l.b == ra) {
			n.links = append(n.links[:i], n.links[i+1:]...)
			linked = true
			break
		}
	}
	var sess *session
	for i, s := range n.sessions {
		if (s.a == ra && s.b == rb) || (s.a == rb && s.b == ra) {
			n.sessions = append(n.sessions[:i], n.sessions[i+1:]...)
			sess = s
			break
		}
	}
	n.mu.Unlock()
	if sess != nil {
		sess.stop()
	}
	if ra == nil || rb == nil {
		return fmt.Errorf("core: unknown router in unlink %d-%d", a, b)
	}
	if !linked {
		return fmt.Errorf("%w: %d-%d", ErrNotLinked, a, b)
	}
	ra.dropPeer(b, wire.TraceContext{})
	rb.dropPeer(a, wire.TraceContext{})
	return nil
}

// MASCPeerParentChild establishes the MASC parent-child peering between two
// domains (the child claims sub-ranges of the parent's space) and registers
// the child with the parent's sibling group.
func (n *Network) MASCPeerParentChild(parent, child wire.DomainID) error {
	p, c := n.Domain(parent), n.Domain(child)
	if p == nil || c == nil {
		return fmt.Errorf("core: unknown domain in MASC peering %d-%d", parent, child)
	}
	c.masc.SetParent(parent)
	// Existing children become the new child's siblings, and vice versa.
	p.mu.Lock()
	for _, sib := range p.mascChildren {
		n.Domain(sib).masc.AddSibling(child)
		c.masc.AddSibling(sib)
	}
	p.mascChildren = append(p.mascChildren, child)
	p.mu.Unlock()
	p.masc.AddChild(child)
	return nil
}

// MASCPeerSiblings registers two top-level domains as MASC siblings
// claiming from the shared 224/4 space.
func (n *Network) MASCPeerSiblings(a, b wire.DomainID) error {
	da, db := n.Domain(a), n.Domain(b)
	if da == nil || db == nil {
		return fmt.Errorf("core: unknown domain in sibling peering %d-%d", a, b)
	}
	da.masc.AddSibling(b)
	db.masc.AddSibling(a)
	return nil
}

// mascDeliver carries a MASC message between domains, exercising the wire
// codec on the way (the bilateral MASC peerings of §4.4).
func (n *Network) mascDeliver(from, to wire.DomainID, msg wire.Message) {
	target := n.Domain(to)
	if target == nil {
		return
	}
	decoded, err := wire.Decode(wire.Encode(msg))
	if err != nil {
		return
	}
	target.masc.HandleMessage(from, decoded)
}

// Quiesce blocks until every in-flight asynchronous message — including
// cascades a handler triggers — has been fully processed, or until timeout
// elapses, returning an error wrapping transport.ErrQuiesceTimeout.
// Synchronous networks are always quiescent.
func (n *Network) Quiesce(timeout time.Duration) error {
	if n.cfg.Synchronous {
		return nil
	}
	return n.tracker.Quiesce(timeout)
}
