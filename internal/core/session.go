package core

import (
	"sync"
	"time"

	"mascbgmp/internal/bgp"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/liveness"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// Session supervision. When Config.HoldTime is set, every external peering
// made with Link is watched by a session object: both ends exchange
// keepalives every HoldTime/3 (routed through the fault plane as Keepalive
// class, so loss and partitions apply), and an end that hears nothing for
// HoldTime declares the session dead. A dead session is torn down exactly
// like Unlink — BGP withdraws the peer's routes, BGMP repairs or orphans
// the affected trees — but the session object stays and retries the
// connection with exponential backoff, re-running the BGP route exchange
// when it succeeds so orphaned groups rejoin through RouteChanged.
//
// Peer crashes injected through the fault plane are detected the same way:
// the crashed router exchanges no traffic, so its external peers' hold
// timers expire. The crash hook wipes the crashed process's forwarding
// state (dataplane.Backend.Reset) and severs its same-domain iBGP
// peerings (see onPeerCrash); everything else is relearned on reconnect.

// session supervises one supervised external peering.
type session struct {
	n    *Network
	a, b *Router
	// lv is the optional BFD-style fast detector (Config.Liveness); it
	// reports through down(), so hold timers stay the fallback.
	lv *liveness.Monitor

	// The session's own lock; never held while calling into routers or
	// the fault plane (both cascade into protocol handlers).
	mu      sync.Mutex
	up      bool // guarded by mu
	stopped bool // guarded by mu
	// gen counts session incarnations: keepalives delivered late carry
	// the generation they were sent under, so a delivery that straddles a
	// down()/retry() cycle cannot touch the new incarnation's timers.
	// guarded by mu
	gen uint64
	// heardA/heardB are the last instants a (resp. b) heard a keepalive
	// from the other end. guarded by mu
	heardA, heardB time.Time
	backoff        time.Duration  // guarded by mu
	timer          simclock.Timer // guarded by mu
}

func newSession(n *Network, a, b *Router) *session {
	s := &session{n: n, a: a, b: b}
	if p := n.cfg.Liveness; p != nil {
		s.lv = liveness.New(liveness.Config{
			Clock:   n.cfg.Clock,
			Initial: n.cfg.HoldTime / 3,
			Params:  *p,
			Domain:  a.domain.ID,
			A:       a.ID,
			B:       b.ID,
			Faults:  n.cfg.Faults,
			OnDown:  s.down,
			Obs:     n.cfg.Observer,
		})
	}
	return s
}

func (s *session) interval() time.Duration { return s.n.cfg.HoldTime / 3 }

// start arms the keepalive tick (and the fast-liveness monitor, when
// configured) on a freshly connected session.
func (s *session) start() {
	now := s.n.cfg.Clock.Now()
	s.mu.Lock()
	s.up = true
	s.gen++
	s.heardA, s.heardB = now, now
	s.backoff = s.n.cfg.ReconnectBackoff
	s.timer = s.n.cfg.Clock.AfterFunc(s.interval(), s.onTick)
	s.mu.Unlock()
	if s.lv != nil {
		s.lv.Start()
	}
}

// stop cancels all supervision (Unlink).
func (s *session) stop() {
	s.mu.Lock()
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
	s.mu.Unlock()
	if s.lv != nil {
		s.lv.Stop()
	}
}

// onTick exchanges keepalives in both directions and checks both hold
// timers. Runs in a clock callback.
func (s *session) onTick() {
	s.mu.Lock()
	if s.stopped || !s.up {
		s.mu.Unlock()
		return
	}
	gen := s.gen
	s.mu.Unlock()

	now := s.n.cfg.Clock.Now()
	s.keepalive(s.a, s.b, gen)
	s.keepalive(s.b, s.a, gen)

	s.mu.Lock()
	if s.stopped || !s.up {
		s.mu.Unlock()
		return
	}
	expired := now.Sub(s.heardA) >= s.n.cfg.HoldTime || now.Sub(s.heardB) >= s.n.cfg.HoldTime
	if !expired {
		s.timer = s.n.cfg.Clock.AfterFunc(s.interval(), s.onTick)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.down(wire.TraceContext{})
}

// keepalive sends one keepalive from -> to through the fault plane; on
// delivery the receiver's hold timer is touched. Without a plane the
// keepalive always arrives.
func (s *session) keepalive(from, to *Router, gen uint64) {
	touch := func() {
		// Credit the receiver as of delivery time, not transmit time: the
		// plane may delay the callback, and near the HoldTime boundary the
		// difference decides expiry. A delivery straddling a down()/retry()
		// cycle carries a stale generation and must not touch the new
		// incarnation's timers.
		now := s.n.cfg.Clock.Now()
		s.mu.Lock()
		if gen != s.gen {
			s.mu.Unlock()
			return
		}
		if to == s.a {
			if now.After(s.heardA) {
				s.heardA = now
			}
		} else if now.After(s.heardB) {
			s.heardB = now
		}
		s.mu.Unlock()
	}
	if p := s.n.cfg.Faults; p != nil {
		p.Deliver(from.ID, to.ID, faultinject.Keepalive, touch)
		return
	}
	touch()
}

// down declares the session dead: both sides drop the peering (routes
// withdraw, trees repair or orphan) and a reconnect is scheduled. ctx is
// the detection's trace context when the fast detector tripped; the hold
// timer path passes zero and the teardown roots its own trace.
func (s *session) down(ctx wire.TraceContext) {
	s.mu.Lock()
	if s.stopped || !s.up {
		s.mu.Unlock()
		return
	}
	s.up = false
	s.gen++ // in-flight keepalive credits die with the incarnation
	if s.timer != nil {
		s.timer.Stop()
	}
	backoff := s.backoff
	s.mu.Unlock()
	if s.lv != nil {
		s.lv.Stop()
	}

	tr := s.n.cfg.Observer.Tracer()
	ev := obs.Event{Domain: s.a.domain.ID, Router: s.a.ID, Peer: s.b.ID}
	var sp obs.Span
	if ctx.Zero() {
		sp = tr.Begin(obs.SpanSessionDown, ev)
	} else {
		sp = tr.BeginChild(ctx, obs.SpanSessionDown, ev)
	}
	s.n.emit(obs.Event{Kind: obs.SessionDown, Domain: s.a.domain.ID, Router: s.a.ID, Peer: s.b.ID})
	s.a.dropPeer(s.b.ID, sp.Context())
	s.b.dropPeer(s.a.ID, sp.Context())
	sp.End()

	s.mu.Lock()
	if !s.stopped {
		s.timer = s.n.cfg.Clock.AfterFunc(backoff, s.retry)
	}
	s.mu.Unlock()
}

// retry attempts to re-establish the peering. While the link is
// partitioned or either end is crashed the attempt fails and the backoff
// doubles (capped at 8× the configured initial); a successful attempt
// reconnects, resyncs BGP — which replays routes and lets orphaned trees
// rejoin — and resumes keepalives.
func (s *session) retry() {
	s.mu.Lock()
	if s.stopped || s.up {
		s.mu.Unlock()
		return
	}
	backoff := s.backoff
	s.mu.Unlock()

	p := s.n.cfg.Faults
	blocked := p != nil && (p.Partitioned(s.a.ID, s.b.ID) || p.Crashed(s.a.ID) || p.Crashed(s.b.ID))
	if !blocked {
		if err := s.a.connect(s.b, s.n.cfg.Synchronous, s.n.cfg.TCP); err != nil {
			blocked = true
		}
	}
	if blocked {
		s.n.emit(obs.Event{Kind: obs.SessionRetry, Domain: s.a.domain.ID, Router: s.a.ID, Peer: s.b.ID})
		s.mu.Lock()
		if !s.stopped {
			s.backoff = min(backoff*2, 8*s.n.cfg.ReconnectBackoff)
			s.timer = s.n.cfg.Clock.AfterFunc(s.backoff, s.retry)
		}
		s.mu.Unlock()
		return
	}

	s.n.emit(obs.Event{Kind: obs.SessionUp, Domain: s.a.domain.ID, Router: s.a.ID, Peer: s.b.ID})
	s.start()
}

// emit forwards a network-level event to the observer (nil-safe).
func (n *Network) emit(e obs.Event) { n.cfg.Observer.Emit(e) }

// onPeerCrash is the fault plane's crash hook: the crashed border router's
// process state is gone, so its forwarding backend resets (overlay
// membership lives in the domain's shared Store and survives). External
// peering sessions are not torn here — those peers notice through their
// hold timers, exactly as they would a real silent crash. Same-domain iBGP
// peers, whose mesh connections are not hold-timer supervised, see the TCP
// reset immediately and withdraw the crashed router's routes — without
// this the stateless data planes would tunnel packets into the dead router
// for the whole outage.
func (n *Network) onPeerCrash(id wire.RouterID) {
	n.mu.Lock()
	r := n.routers[id]
	n.mu.Unlock()
	if r == nil {
		return
	}
	r.backend.Reset()
	for _, p := range r.domain.Routers() {
		if p != r {
			p.bgp.RemoveNeighbor(id, wire.TraceContext{})
		}
	}
}

// onPeerRestart is the fault plane's restart hook. External sessions come
// back through their backoff-scheduled retries; the internal mesh —
// severed at crash time by onPeerCrash — reconnects eagerly, as loopback
// iBGP sessions to a rebooted process would, and resyncs both directions.
func (n *Network) onPeerRestart(id wire.RouterID) {
	n.mu.Lock()
	r := n.routers[id]
	n.mu.Unlock()
	if r == nil {
		return
	}
	for _, p := range r.domain.Routers() {
		if p == r {
			continue
		}
		p.bgp.AddNeighbor(bgp.Neighbor{Router: r.ID, Domain: r.domain.ID, Internal: true})
		p.bgp.Sync(r.ID)
		r.bgp.Sync(p.ID)
	}
}
