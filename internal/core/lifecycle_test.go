package core

import (
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/migp/cbt"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/migp/pimsm"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

func TestTwoGroupsIndependentTrees(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)

	// Group 1 rooted in B; group 2 rooted in C.
	leaseB, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	leaseC, err := n.Domain(3).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if leaseB.Addr == leaseC.Addr {
		t.Fatal("groups collided")
	}
	// D joins both; H joins only the C-rooted group.
	n.Domain(4).Join(leaseB.Addr, 0)
	n.Domain(4).Join(leaseC.Addr, 0)
	n.Domain(8).Join(leaseC.Addr, 0)

	// Send on each group from E.
	src := n.Domain(5).HostAddr(1)
	n.Domain(5).Send(leaseB.Addr, src, "to B-group", 0)
	n.Domain(5).Send(leaseC.Addr, src, "to C-group", 0)

	gotD := map[addr.Addr]int{}
	for _, d := range n.Domain(4).Received() {
		gotD[d.Group]++
	}
	if gotD[leaseB.Addr] != 1 || gotD[leaseC.Addr] != 1 {
		t.Fatalf("D deliveries = %v", gotD)
	}
	for _, d := range n.Domain(8).Received() {
		if d.Group == leaseB.Addr {
			t.Fatal("H received a group it never joined")
		}
	}
	if len(n.Domain(8).Received()) != 1 {
		t.Fatalf("H deliveries = %v", n.Domain(8).Received())
	}
}

func TestMixedMIGPsAcrossDomains(t *testing.T) {
	// The architecture's MIGP independence (§3): C runs PIM-SM, F runs
	// CBT, everyone else DVMRP — deliveries are unchanged.
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	n, err := NewNetwork(Config{Clock: clk, Seed: 42, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	add := func(id wire.DomainID, routers []wire.RouterID, top bool, proto migp.Protocol) {
		t.Helper()
		if _, err := n.AddDomain(DomainConfig{
			ID: id, Routers: routers, InteriorNodes: len(routers) + 2,
			TopLevel: top, Protocol: proto,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, byte(id), 0, 0), Len: 16},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(1, []wire.RouterID{11, 12, 13}, true, dvmrp.New())
	add(2, []wire.RouterID{21}, false, dvmrp.New())
	add(3, []wire.RouterID{31}, false, pimsm.New(1))
	add(6, []wire.RouterID{61}, false, cbt.New())
	for _, l := range [][2]wire.RouterID{{21, 11}, {31, 12}, {61, 13}} {
		if err := n.Link(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	n.MASCPeerParentChild(1, 2)
	n.MASCPeerParentChild(1, 3)
	n.MASCPeerParentChild(1, 6)

	n.Domain(1).MASC().RequestSpace(1<<16, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	n.Domain(2).MASC().RequestSpace(256, 30*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	lease, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 1)
	n.Domain(6).Join(lease.Addr, 1)
	src := n.Domain(2).HostAddr(1)
	n.Domain(2).Send(lease.Addr, src, "cross-MIGP", 1)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatalf("PIM-SM domain deliveries = %v", n.Domain(3).Received())
	}
	if len(n.Domain(6).Received()) != 1 {
		t.Fatalf("CBT domain deliveries = %v", n.Domain(6).Received())
	}
}

func TestRangeExpiryWithdrawsRoutesAndLeases(t *testing.T) {
	n, clk := paperNet(t, false, false)
	// A claims long; B claims with a SHORT lifetime.
	if !n.Domain(1).MASC().RequestSpace(1<<16, 90*24*time.Hour) {
		t.Fatal("A claim failed")
	}
	clk.RunFor(49 * time.Hour)
	if !n.Domain(2).MASC().RequestSpace(256, 60*time.Hour) {
		t.Fatal("B claim failed")
	}
	clk.RunFor(49 * time.Hour)

	bRange := n.Domain(2).MASC().Holdings()[0].Prefix
	lease, err := n.Domain(2).NewGroup(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !bRange.Contains(lease.Addr) {
		t.Fatal("lease outside range")
	}
	// After the range's lifetime passes, the G-RIB entry expires: lookups
	// inside A fall back to A's covering /16 and the MAAS range is dead.
	clk.RunFor(30 * 24 * time.Hour)
	a3 := n.Router(13)
	e, ok := a3.BGP().Lookup(wire.TableGRIB, lease.Addr)
	if !ok {
		t.Fatal("A should still resolve via its own /16")
	}
	if e.Route.Prefix == bRange {
		t.Fatalf("expired route still served: %+v", e)
	}
	if _, err := n.Domain(2).MAAS().Renew(lease.Addr, time.Hour); err == nil {
		t.Fatal("lease in expired range should not renew")
	}
}

func TestMASCReleaseWithdrawsRoute(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)
	bRange := n.Domain(2).MASC().Holdings()[0].Prefix

	a3 := n.Router(13)
	if _, ok := a3.BGP().LookupPrefix(wire.TableGRIB, bRange); !ok {
		t.Fatal("route missing before release")
	}
	n.Domain(2).MASC().Release(bRange)
	if _, ok := a3.BGP().LookupPrefix(wire.TableGRIB, bRange); ok {
		t.Fatal("released range still routed")
	}
	// The freed range can be re-claimed by the sibling C.
	if !n.Domain(3).MASC().RequestSpace(bRange.Size(), 30*24*time.Hour) {
		t.Fatal("C cannot claim after release")
	}
	clk.RunFor(49 * time.Hour)
	found := false
	for _, h := range n.Domain(3).MASC().Holdings() {
		if h.Prefix.Overlaps(bRange) {
			found = true
		}
	}
	// C may or may not land on the exact freed range (random choice), but
	// it must have won something.
	if len(n.Domain(3).MASC().Holdings()) < 2 && !found {
		t.Log("C claimed elsewhere — acceptable (random selection)")
	}
}

func TestMAASRenewalKeepsLeaseAlive(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)
	lease, err := n.Domain(2).NewGroup(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Hour)
	if _, err := n.Domain(2).MAAS().Renew(lease.Addr, 4*time.Hour); err != nil {
		t.Fatalf("renew: %v", err)
	}
	clk.RunFor(3 * time.Hour) // past the original expiry
	if _, err := n.Domain(2).MAAS().Renew(lease.Addr, time.Hour); err != nil {
		t.Fatal("renewed lease should still be alive")
	}
}

func TestExportPolicyInsideNetwork(t *testing.T) {
	// Transit domain 1 refuses to carry group routes between its peers 3
	// and 4 — the §4.2 policy through the assembled stack: 4's join for a
	// group rooted in 3 finds no route, so no tree and no data.
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	n, err := NewNetwork(Config{Clock: clk, Seed: 9, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	policy := bgp.TableExportFilter(wire.TableGRIB, bgp.CustomerExportFilter(1, nil))
	mustAdd := func(dc DomainConfig) {
		t.Helper()
		if _, err := n.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(DomainConfig{ID: 1, Routers: []wire.RouterID{11, 12}, Protocol: dvmrp.New(),
		TopLevel: true, Export: policy,
		HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 1, 0, 0), Len: 16}})
	mustAdd(DomainConfig{ID: 3, Routers: []wire.RouterID{31}, Protocol: dvmrp.New(),
		TopLevel: true, HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 3, 0, 0), Len: 16}})
	mustAdd(DomainConfig{ID: 4, Routers: []wire.RouterID{41}, Protocol: dvmrp.New(),
		TopLevel: true, HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 4, 0, 0), Len: 16}})
	if err := n.Link(11, 31); err != nil {
		t.Fatal(err)
	}
	if err := n.Link(12, 41); err != nil {
		t.Fatal(err)
	}
	n.MASCPeerSiblings(1, 3)
	n.MASCPeerSiblings(1, 4)
	n.MASCPeerSiblings(3, 4)

	n.Domain(3).MASC().RequestSpace(1<<12, 60*24*time.Hour)
	clk.RunFor(49 * time.Hour)
	lease, err := n.Domain(3).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Domain 4 must not even have a G-RIB route for 3's range.
	if _, ok := n.Router(41).BGP().Lookup(wire.TableGRIB, lease.Addr); ok {
		t.Fatal("policy leak: peer route crossed the transit domain")
	}
	n.Domain(4).Join(lease.Addr, 0)
	n.Domain(3).Send(lease.Addr, n.Domain(3).HostAddr(1), "blocked", 0)
	if len(n.Domain(4).Received()) != 0 {
		t.Fatal("data crossed a policy boundary")
	}
}

func TestJoinUnroutableGroupIsSafe(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)
	// Join an address no one's range covers: nothing should crash, no
	// state appears, and data to it goes nowhere.
	bogus := addr.MakeAddr(239, 255, 255, 1)
	n.Domain(3).Join(bogus, 0)
	if n.Router(31).BGMP().HasGroupState(bogus) {
		t.Fatal("state for unroutable group")
	}
	n.Domain(5).Send(bogus, n.Domain(5).HostAddr(1), "void", 0)
	for _, id := range []wire.DomainID{2, 3, 4, 6, 8} {
		if len(n.Domain(id).Received()) != 0 {
			t.Fatalf("domain %d received unroutable data", id)
		}
	}
}

func TestSendBeforeAnyJoinReachesNobody(t *testing.T) {
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)
	lease, _ := n.Domain(2).NewGroup(24 * time.Hour)
	n.Domain(5).Send(lease.Addr, n.Domain(5).HostAddr(1), "early", 0)
	total := 0
	for _, d := range n.Domains() {
		total += len(d.Received())
	}
	if total != 0 {
		t.Fatalf("deliveries before any join: %d", total)
	}
	// And joining afterwards starts delivery for new packets.
	n.Domain(3).Join(lease.Addr, 0)
	n.Domain(5).Send(lease.Addr, n.Domain(5).HostAddr(1), "late", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("late joiner missed subsequent data")
	}
}

func TestBGMPStateCompressionInNetwork(t *testing.T) {
	// Many groups in B's range joined by C through the same path: A2's
	// per-group state compresses into one (*,G-prefix) entry; data for
	// every group keeps flowing.
	n, clk := paperNet(t, false, false)
	allocateSpaces(t, n, clk)
	bRange := n.Domain(2).MASC().Holdings()[0].Prefix

	var groups []addr.Addr
	for i := 0; i < 8; i++ {
		lease, err := n.Domain(2).NewGroup(24 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		groups = append(groups, lease.Addr)
		n.Domain(3).Join(lease.Addr, 0)
	}
	a2 := n.Router(12)
	g0, _, p0 := a2.BGMP().StateSize()
	if g0 < 8 {
		t.Fatalf("expected >=8 exact entries, got %d", g0)
	}
	merged := a2.BGMP().CompressState(bRange)
	if merged < 8 {
		t.Fatalf("merged = %d", merged)
	}
	g1, _, p1 := a2.BGMP().StateSize()
	if g1 != g0-merged || p1 != p0+1 {
		t.Fatalf("state after compression: groups %d→%d prefixes %d→%d", g0, g1, p0, p1)
	}
	src := n.Domain(5).HostAddr(1)
	for _, g := range groups {
		n.Domain(3).ClearReceived()
		n.Domain(5).Send(g, src, "compressed", 0)
		if len(n.Domain(3).Received()) != 1 {
			t.Fatalf("group %v broken after compression", g)
		}
	}
}
