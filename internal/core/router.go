package core

import (
	"fmt"
	"net"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/transport"
	"mascbgmp/internal/wire"
)

// Router is one border router: a BGP-lite speaker, a BGMP component, and
// the forwarding backend selected by Config.DataPlane, attached to its
// domain's interior fabric.
type Router struct {
	ID     wire.RouterID
	domain *Domain

	bgp  *bgp.Speaker
	bgmp *bgmp.Component
	// backend is the router's forwarding plane: every data packet and
	// backend control message goes through it. The default shared-tree
	// backend delegates straight to bgmp.
	backend dataplane.Backend

	mu    sync.Mutex
	peers map[wire.RouterID]sender // guarded by mu
	// internalPeers marks same-domain peers. guarded by mu
	internalPeers map[wire.RouterID]bool
}

// sender abstracts the delivery path to one peer: a transport.Peer in
// asynchronous mode, a direct dispatch in synchronous mode.
type sender interface {
	Send(msg wire.Message) error
	Close() error
}

// directSender delivers by function call after an encode/decode round trip
// (same bytes as the pipe path, no goroutines).
type directSender struct {
	from wire.RouterID
	to   *Router
}

func (d directSender) Send(msg wire.Message) error {
	decoded, err := wire.Decode(wire.Encode(msg))
	if err != nil {
		return err
	}
	d.to.dispatch(d.from, decoded)
	return nil
}

func (directSender) Close() error { return nil }

// faultSender routes an outbound peering message through the fault plane
// before the real sender sees it: drops vanish, duplicates send twice,
// reordered and delayed messages arrive when the plane releases them.
// Data packets are classified Data; everything else (BGP updates, BGMP
// joins/prunes, notifications) is Control.
type faultSender struct {
	plane    *faultinject.Plane
	from, to wire.RouterID
	inner    sender
}

func (f *faultSender) Send(msg wire.Message) error {
	class := faultinject.Control
	if _, ok := msg.(*wire.Data); ok {
		class = faultinject.Data
	}
	f.plane.Deliver(f.from, f.to, class, func() { _ = f.inner.Send(msg) })
	return nil
}

func (f *faultSender) Close() error { return f.inner.Close() }

// newRouter builds a router and registers it with the fabric.
func newRouter(n *Network, d *Domain, id wire.RouterID, at migp.Node, export bgp.ExportFilter) (*Router, error) {
	n.mu.Lock()
	if _, dup := n.routers[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("core: duplicate router %d", id)
	}
	n.mu.Unlock()

	r := &Router{
		ID:            id,
		domain:        d,
		peers:         map[wire.RouterID]sender{},
		internalPeers: map[wire.RouterID]bool{},
	}
	r.bgp = bgp.New(bgp.Config{
		Router:           id,
		Domain:           d.ID,
		Clock:            n.cfg.Clock,
		Export:           export,
		AggregateCovered: true,
		Obs:              n.cfg.Observer,
		Send: func(to wire.RouterID, u *wire.Update) {
			r.sendTo(to, u)
		},
		OnBestChange: func(table wire.Table, p addr.Prefix, lost bool, ctx wire.TraceContext) {
			if table == wire.TableGRIB {
				// Re-attach shared trees whose path to the root domain
				// changed (BGMP tree repair), or flush overlay member
				// reports that were waiting for a route to the root.
				r.backend.RouteChanged(p, ctx)
			}
		},
	})
	migpAdapter := d.fabric.AttachBorder(id, at)
	r.bgmp = bgmp.New(bgmp.Config{
		Router: id,
		Domain: d.ID,
		LookupGroup: func(g addr.Addr) (bgp.Entry, bool) {
			return r.bgp.Lookup(wire.TableGRIB, g)
		},
		LookupGroupBackup: func(g addr.Addr) (bgp.Entry, bool) {
			return r.bgp.LookupBackup(wire.TableGRIB, g)
		},
		LookupSource: func(s addr.Addr) (bgp.Entry, bool) {
			if e, ok := r.bgp.Lookup(wire.TableMRIB, s); ok {
				return e, true
			}
			return r.bgp.Lookup(wire.TableUnicast, s)
		},
		Internal: r.isInternal,
		SendPeer: func(to wire.RouterID, msg wire.Message) {
			r.sendTo(to, msg)
		},
		MIGP:                migpAdapter,
		BuildSourceBranches: n.cfg.SourceBranches,
		Obs:                 n.cfg.Observer,
	})
	switch n.cfg.DataPlane {
	case "", dataplane.SharedTreeName:
		r.backend = dataplane.NewSharedTree(r.bgmp)
	default:
		dcfg := dataplane.Config{
			Router: id,
			Domain: d.ID,
			LookupGroup: func(g addr.Addr) (bgp.Entry, bool) {
				return r.bgp.Lookup(wire.TableGRIB, g)
			},
			LookupUnicast: func(a addr.Addr) (bgp.Entry, bool) {
				return r.bgp.Lookup(wire.TableUnicast, a)
			},
			Internal: r.isInternal,
			SendPeer: func(to wire.RouterID, msg wire.Message) {
				r.sendTo(to, msg)
			},
			MIGP:       migpAdapter,
			DomainAddr: n.domainAddr,
			SourceDomain: func(s addr.Addr) (wire.DomainID, bool) {
				e, ok := r.bgp.Lookup(wire.TableMRIB, s)
				if !ok {
					e, ok = r.bgp.Lookup(wire.TableUnicast, s)
				}
				if !ok {
					return 0, false
				}
				return e.Route.Origin, true
			},
			Store: d.dpStore,
			Obs:   n.cfg.Observer,
		}
		if n.cfg.DataPlane == dataplane.BIERName {
			r.backend = dataplane.NewBIER(dcfg)
		} else {
			r.backend = dataplane.NewMapEncap(dcfg)
		}
	}
	d.fabric.SetComponent(id, borderFront{r})
	return r, nil
}

// borderFront adapts the router's forwarding backend to migp.Border: the
// fabric's data and relay traffic reaches the selected data plane, while
// BGMP control messages relayed between sibling borders keep flowing to
// the BGMP component regardless of backend.
type borderFront struct{ r *Router }

func (f borderFront) LocalJoin(g addr.Addr)  { f.r.backend.LocalJoin(g) }
func (f borderFront) LocalLeave(g addr.Addr) { f.r.backend.LocalLeave(g) }

func (f borderFront) Deliver(src bgmp.Target, d *wire.Data) {
	f.r.backend.Deliver(src, d)
}

func (f borderFront) HandleFromBorder(from wire.RouterID, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Data:
		f.r.backend.Deliver(bgmp.MIGPToward(from), m)
	case *wire.MemberReport:
		f.r.backend.HandleControl(bgmp.MIGPToward(from), m)
	default:
		f.r.bgmp.HandleFromBorder(from, msg)
	}
}

func (f borderFront) HasForwardingState(g addr.Addr) bool {
	return f.r.backend.HasForwardingState(g)
}

// BGP returns the router's BGP speaker.
func (r *Router) BGP() *bgp.Speaker { return r.bgp }

// BGMP returns the router's BGMP component.
func (r *Router) BGMP() *bgmp.Component { return r.bgmp }

// DataPlane returns the router's forwarding backend.
func (r *Router) DataPlane() dataplane.Backend { return r.backend }

// Domain returns the owning domain.
func (r *Router) Domain() *Domain { return r.domain }

func (r *Router) isInternal(id wire.RouterID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.internalPeers[id]
}

func (r *Router) sendTo(to wire.RouterID, msg wire.Message) {
	r.mu.Lock()
	p := r.peers[to]
	r.mu.Unlock()
	if p != nil {
		_ = p.Send(msg)
	}
}

// dispatch demultiplexes an inbound message to the right component.
func (r *Router) dispatch(from wire.RouterID, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.Update:
		r.bgp.HandleUpdate(from, m)
	case *wire.GroupJoin, *wire.GroupPrune, *wire.SourceJoin, *wire.SourcePrune:
		r.bgmp.HandlePeer(from, msg)
	case *wire.Data:
		r.backend.Deliver(bgmp.PeerTarget(from), m)
	case *wire.MemberReport:
		r.backend.HandleControl(bgmp.PeerTarget(from), m)
	case *wire.Notification:
		// Session-level; the peer layer already tears down.
	}
}

// connect wires r and other with a bidirectional peering: loopback TCP or
// in-memory framed pipes with background receive loops, or direct dispatch
// in synchronous networks. Both speakers register the neighbor and run the
// initial route exchange.
func (r *Router) connect(other *Router, synchronous, tcp bool) error {
	internal := r.domain == other.domain
	// faulty wraps a sender in the network's fault plane, when one is
	// configured. Internal-mesh links pass through it too: per-link fault
	// settings default to clean, and a crashed router must go silent on
	// every interface.
	faulty := func(s sender, from, to wire.RouterID) sender {
		if p := r.domain.net.cfg.Faults; p != nil {
			return &faultSender{plane: p, from: from, to: to, inner: s}
		}
		return s
	}

	if synchronous {
		r.addPeer(other.ID, faulty(directSender{from: r.ID, to: other}, r.ID, other.ID), internal)
		other.addPeer(r.ID, faulty(directSender{from: other.ID, to: r}, other.ID, r.ID), internal)
	} else {
		ca, cb, err := dialPair(tcp)
		if err != nil {
			return err
		}
		nw := r.domain.net
		// Two directed streams shared by the session's two ends, so the
		// network tracker sees each message from send commit to handler
		// completion (Quiesce support).
		ab, ba := nw.tracker.NewFlight(), nw.tracker.NewFlight()
		done := make(chan error, 1)
		var pa, pb *transport.Peer
		go func() {
			var err2 error
			pa, err2 = transport.StartPeer(ca, transport.PeerConfig{
				Local:   wire.Open{Router: r.ID, Domain: r.domain.ID},
				Handler: func(_ *transport.Peer, m wire.Message) { r.dispatch(other.ID, m) },
				Out:     ab,
				In:      ba,
				Obs:     nw.cfg.Observer,
			})
			done <- err2
		}()
		pb, err = transport.StartPeer(cb, transport.PeerConfig{
			Local:   wire.Open{Router: other.ID, Domain: other.domain.ID},
			Handler: func(_ *transport.Peer, m wire.Message) { other.dispatch(r.ID, m) },
			Out:     ba,
			In:      ab,
			Obs:     nw.cfg.Observer,
		})
		if err != nil {
			return err
		}
		if err := <-done; err != nil {
			return err
		}
		r.addPeer(other.ID, faulty(pa, r.ID, other.ID), internal)
		other.addPeer(r.ID, faulty(pb, other.ID, r.ID), internal)
	}

	r.bgp.AddNeighbor(bgp.Neighbor{Router: other.ID, Domain: other.domain.ID, Internal: internal})
	other.bgp.AddNeighbor(bgp.Neighbor{Router: r.ID, Domain: r.domain.ID, Internal: internal})
	r.bgp.Sync(other.ID)
	other.bgp.Sync(r.ID)
	return nil
}

// dialPair returns two connected MsgConns: loopback TCP or an in-memory
// pipe.
func dialPair(tcp bool) (*transport.MsgConn, *transport.MsgConn, error) {
	if !tcp {
		a, b := transport.Pipe()
		return a, b, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	accepted := <-ch
	if accepted.err != nil {
		dialed.Close()
		return nil, nil, accepted.err
	}
	return transport.NewMsgConn(accepted.c), transport.NewMsgConn(dialed), nil
}

func (r *Router) addPeer(id wire.RouterID, s sender, internal bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.peers[id] = s
	if internal {
		r.internalPeers[id] = true
	}
}

// dropPeer severs the session with a peer: the sender closes, BGP forgets
// the neighbor (withdrawing its routes, which triggers BGMP tree repair),
// and BGMP drops child targets pointing at it. ctx carries the teardown's
// causal trace (zero for administrative unlinks).
func (r *Router) dropPeer(id wire.RouterID, ctx wire.TraceContext) {
	r.mu.Lock()
	s := r.peers[id]
	delete(r.peers, id)
	delete(r.internalPeers, id)
	r.mu.Unlock()
	if s != nil {
		_ = s.Close()
	}
	r.bgmp.PeerDown(id, ctx)
	r.bgp.RemoveNeighbor(id, ctx)
}
