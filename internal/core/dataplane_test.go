package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

func TestConfigRejectsUnknownDataPlane(t *testing.T) {
	_, err := NewNetwork(Config{DataPlane: "flooding"})
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "DataPlane" {
		t.Fatalf("NewNetwork(DataPlane: flooding) = %v, want *ConfigError{Field: DataPlane}", err)
	}
	for _, name := range dataplane.Names() {
		if err := (Config{DataPlane: name}).Validate(); err != nil {
			t.Errorf("Validate(DataPlane: %q) = %v, want nil", name, err)
		}
	}
}

// runPaperNetScenario drives one fixed membership-and-traffic sequence on
// the Fig 1/3 internetwork under the given backend and returns, per
// payload, the sorted list of "domain@node" deliveries, plus the obs
// counter snapshot of the whole run.
func runPaperNetScenario(t *testing.T, backend string) (map[string][]string, string) {
	t.Helper()
	ob := obs.NewObserver()
	n, clk := paperNetDP(t, false, false, backend, ob)
	g := establishGroup(t, n, clk) // members in B, C, D, F, H at node 1

	deliveries := map[string][]string{}
	record := func(payload string) {
		var got []string
		for _, id := range []wire.DomainID{1, 2, 3, 4, 5, 6, 7, 8} {
			for _, dv := range n.Domain(id).Received() {
				if dv.Payload == payload && dv.Group == g {
					got = append(got, fmt.Sprintf("%d@%d", id, dv.Node))
				}
			}
			n.Domain(id).ClearReceived()
		}
		sort.Strings(got)
		deliveries[payload] = got
	}

	n.Domain(4).Send(g, n.Domain(4).HostAddr(1), "from-member", 1)
	record("from-member")
	n.Domain(5).Send(g, n.Domain(5).HostAddr(1), "from-nonmember", 1)
	record("from-nonmember")
	n.Domain(8).Leave(g, 1)
	n.Domain(4).Send(g, n.Domain(4).HostAddr(1), "after-leave", 1)
	record("after-leave")
	return deliveries, ob.Snapshot().String()
}

func TestDataPlaneEquivalenceOnPaperNet(t *testing.T) {
	results := map[string]map[string][]string{}
	for _, b := range dataplane.Names() {
		r, snap1 := runPaperNetScenario(t, b)
		_, snap2 := runPaperNetScenario(t, b)
		if snap1 != snap2 {
			t.Errorf("backend %s: same-seed runs produced different obs snapshots", b)
		}
		results[b] = r
	}

	want := results[dataplane.SharedTreeName]
	for _, payload := range []string{"from-member", "from-nonmember", "after-leave"} {
		if len(want[payload]) == 0 {
			t.Fatalf("shared tree delivered %q to nobody", payload)
		}
	}
	for _, b := range []string{dataplane.BIERName, dataplane.MapEncapName} {
		if !reflect.DeepEqual(results[b], want) {
			t.Errorf("backend %s receiver sets diverge from shared-tree:\n got %v\nwant %v",
				b, results[b], want)
		}
	}
}

func TestBIERKeepsZeroTransitGroupState(t *testing.T) {
	n, clk := paperNetDP(t, false, false, dataplane.BIERName, nil)
	establishGroup(t, n, clk)

	// Transit domain A carries traffic for every group yet holds no
	// per-group forwarding entries and no overlay membership (it roots
	// nothing) — the BIER trade.
	for _, rid := range []wire.RouterID{11, 12, 13, 14} {
		st := n.Router(rid).DataPlane().Stats()
		if st.GroupEntries != 0 || st.OverlayEntries != 0 {
			t.Errorf("transit router %d: GroupEntries=%d OverlayEntries=%d, want 0/0",
				rid, st.GroupEntries, st.OverlayEntries)
		}
	}
	// The root domain's borders share the domain-wide overlay store: one
	// record per member domain (B, C, D, F, H).
	for _, rid := range []wire.RouterID{21, 22} {
		st := n.Router(rid).DataPlane().Stats()
		if st.GroupEntries != 0 || st.OverlayEntries != 5 {
			t.Errorf("root border %d: GroupEntries=%d OverlayEntries=%d, want 0/5",
				rid, st.GroupEntries, st.OverlayEntries)
		}
	}
}
