package core

import (
	"math/rand"
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/liveness"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// faultNet is failoverNet with a fault plane and session supervision: the
// triangle R(11,12)—T(21,22)—M(31) with the direct link 12–31, hold time
// 30s (10s keepalives) and a 15s initial reconnect backoff.
func faultNet(t *testing.T, seed int64) (*Network, *simclock.Sim, *faultinject.Plane, *obs.Observer) {
	t.Helper()
	return faultNetCfg(t, seed, nil)
}

// faultNetCfg is faultNet with a Config hook applied before NewNetwork —
// the liveness tests use it to arm the fast detector.
func faultNetCfg(t *testing.T, seed int64, mutate func(*Config)) (*Network, *simclock.Sim, *faultinject.Plane, *obs.Observer) {
	t.Helper()
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	ob := obs.NewObserver()
	plane, err := faultinject.New(faultinject.Config{
		Clock: clk,
		Rand:  rand.New(rand.NewSource(seed)),
		Obs:   ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clock:            clk,
		Seed:             seed,
		Synchronous:      true,
		Observer:         ob,
		Faults:           plane,
		HoldTime:         30 * time.Second,
		ReconnectBackoff: 15 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []DomainConfig{
		{ID: 1, Routers: []wire.RouterID{11, 12}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 1, 0, 0), Len: 16}},
		{ID: 2, Routers: []wire.RouterID{21, 22}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 2, 0, 0), Len: 16}},
		{ID: 3, Routers: []wire.RouterID{31}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 3, 0, 0), Len: 16}},
	} {
		if _, err := n.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]wire.RouterID{{11, 21}, {12, 31}, {22, 31}} {
		if err := n.Link(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	n.MASCPeerSiblings(1, 2)
	n.MASCPeerSiblings(1, 3)
	n.MASCPeerSiblings(2, 3)
	if !n.Domain(1).MASC().RequestSpace(1<<12, 90*24*time.Hour) {
		t.Fatal("claim failed")
	}
	clk.RunFor(49 * time.Hour)
	return n, clk, plane, ob
}

func TestPartitionDropsSessionAndRecovers(t *testing.T) {
	n, clk, plane, ob := faultNet(t, 3)
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)

	// The direct link partitions for two minutes: keepalives stop, the
	// hold timer expires, and the session is declared down.
	plane.PartitionFor(12, 31, 2*time.Minute)
	clk.RunFor(time.Minute)
	if ob.Snapshot().Total("session.down") == 0 {
		t.Fatal("hold timer never expired during partition")
	}
	// BGP withdrew the direct route; the tree repaired onto transit.
	parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(22) {
		t.Fatalf("mid-partition parent = %v ok=%v, want transit peer 22", parent, ok)
	}
	// Delivery keeps working over the surviving path.
	src := n.Domain(1).HostAddr(1)
	n.Domain(1).Send(lease.Addr, src, "during", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("delivery failed during partition")
	}

	// Retries fail (and back off) while the partition lasts, then succeed
	// after the heal: the session comes back and the tree returns to the
	// direct path.
	clk.RunFor(5 * time.Minute)
	s := ob.Snapshot()
	if s.Total("session.retry") == 0 {
		t.Fatal("no failed reconnect attempts observed")
	}
	if s.Total("session.up") == 0 {
		t.Fatal("session never re-established after heal")
	}
	parent, _, ok = n.Router(31).BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(12) {
		t.Fatalf("post-heal parent = %v ok=%v, want direct peer 12", parent, ok)
	}
	n.Domain(3).ClearReceived()
	n.Domain(1).Send(lease.Addr, src, "after", 0)
	if got := n.Domain(3).Received(); len(got) != 1 || got[0].Payload != "after" {
		t.Fatalf("post-heal delivery = %v", got)
	}
}

func TestPeerCrashDetectedByHoldTimerAndRecovered(t *testing.T) {
	n, clk, plane, ob := faultNet(t, 3)
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)
	if parent, _, _ := n.Router(31).BGMP().GroupEntry(lease.Addr); parent != bgmp.PeerTarget(12) {
		t.Fatalf("pre-crash parent = %v, want 12", parent)
	}

	// Border 12 crashes for ten minutes. Its process state is wiped; the
	// peer at 31 notices only when the hold timer expires.
	plane.CrashPeerFor(12, 10*time.Minute)
	if n.Router(12).BGMP().HasGroupState(lease.Addr) {
		t.Fatal("crashed router kept BGMP state")
	}
	clk.RunFor(time.Minute)
	if ob.Snapshot().Total("session.down") == 0 {
		t.Fatal("crash not detected via hold timer")
	}
	parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(22) {
		t.Fatalf("mid-crash parent = %v ok=%v, want transit peer 22", parent, ok)
	}
	src := n.Domain(1).HostAddr(1)
	n.Domain(1).Send(lease.Addr, src, "during", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("delivery failed while 12 was down")
	}

	// After the restart, a backoff retry reconnects, BGP resyncs, and the
	// restarted router relearns its tree state from the rejoin.
	clk.RunFor(15 * time.Minute)
	if ob.Snapshot().Total("session.up") == 0 {
		t.Fatal("session to restarted peer never came back")
	}
	parent, _, ok = n.Router(31).BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(12) {
		t.Fatalf("post-restart parent = %v ok=%v, want direct peer 12", parent, ok)
	}
	if !n.Router(12).BGMP().HasGroupState(lease.Addr) {
		t.Fatal("restarted router did not relearn tree state")
	}
	n.Domain(3).ClearReceived()
	n.Domain(1).Send(lease.Addr, src, "after", 0)
	if got := n.Domain(3).Received(); len(got) != 1 || got[0].Payload != "after" {
		t.Fatalf("post-restart delivery = %v", got)
	}
}

func TestDataLossDoesNotDropSessions(t *testing.T) {
	n, clk, plane, ob := faultNet(t, 3)
	// Heavy loss confined to the data class: keepalives and control are
	// exempt, so sessions must stay up.
	plane.SetDefault(faultinject.LinkFaults{Drop: 0.9, Classes: faultinject.MaskData})
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)
	clk.RunFor(10 * time.Minute)
	if got := ob.Snapshot().Total("session.down"); got != 0 {
		t.Fatalf("session.down = %d under data-only loss, want 0", got)
	}
}

// TestDelayedKeepalivesDoNotExpireSession is the regression test for the
// transmit-time stamping bug: keepalives used to credit the receiver with
// the clock reading at *send* time, so a delivery delayed close to the
// hold time recorded a stale instant and the session flapped even though
// keepalives were arriving steadily. With delivery-time crediting, a
// steady 28s-delayed stream keeps the receiver at most ~interval behind.
func TestDelayedKeepalivesDoNotExpireSession(t *testing.T) {
	n, clk, plane, ob := faultNet(t, 5)
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)

	// Ramp the delay in two steps so no *transition* gap exceeds the hold
	// time (jumping 0→28s would silence the link for interval+28s ≥ 30s
	// and legitimately expire the session); each steady state then lags
	// deliveries by only (delay mod interval) + interval.
	plane.SetLink(12, 31, faultinject.LinkFaults{Delay: 15 * time.Second, Classes: faultinject.MaskKeepalive})
	clk.RunFor(40 * time.Second)
	plane.SetLink(12, 31, faultinject.LinkFaults{Delay: 28 * time.Second, Classes: faultinject.MaskKeepalive})
	clk.RunFor(5 * time.Minute)

	if got := ob.Snapshot().Total("session.down"); got != 0 {
		t.Fatalf("session.down = %d under delayed-but-steady keepalives, want 0", got)
	}
	if parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr); !ok || parent != bgmp.PeerTarget(12) {
		t.Fatalf("parent = %v ok=%v, want direct peer 12 (session must have stayed up)", parent, ok)
	}
}

// TestStaleKeepalivesDoNotTouchNextIncarnation is the regression test for
// cross-incarnation touches: keepalives still in flight when a session
// goes down used to credit the *next* incarnation on delivery, postponing
// its (legitimate) hold expiry. With generation checking the reconnected
// incarnation hears nothing once the link eats all new keepalives, so its
// second down lands one hold time after the reconnect — not later.
func TestStaleKeepalivesDoNotTouchNextIncarnation(t *testing.T) {
	n, clk, plane, ob := faultNet(t, 5)
	_ = n

	// 40s-delayed keepalives silence the link past the hold time: the
	// session drops (down #1) while several old-incarnation keepalives are
	// still queued for delivery inside the next incarnation's lifetime.
	plane.SetLink(12, 31, faultinject.LinkFaults{Delay: 40 * time.Second, Classes: faultinject.MaskKeepalive})
	deadline := clk.Now().Add(time.Minute)
	for ob.Snapshot().Total("session.down") == 0 {
		if !clk.Now().Before(deadline) {
			t.Fatal("session never dropped under 40s keepalive delay")
		}
		clk.RunFor(time.Second)
	}

	// From now on every fresh keepalive is lost (the delayed ones already
	// in flight still arrive). The reconnect at +15s starts an incarnation
	// that must expire exactly one hold time later: down #2 at ~+45s. If
	// the stale deliveries (arriving up to +40s after down #1) credited
	// the new incarnation, the second down would slip past +50s.
	plane.SetLink(12, 31, faultinject.LinkFaults{Drop: 1, Classes: faultinject.MaskKeepalive})
	clk.RunFor(50 * time.Second)
	if got := ob.Snapshot().Total("session.down"); got != 2 {
		t.Fatalf("session.down = %d within 50s of the first drop, want 2 (stale keepalives must not feed the new incarnation)", got)
	}
}

// TestAsymmetricKeepaliveLossConvergesBothEnds starves exactly one
// direction (12→31) of keepalives and liveness probes: the end that stops
// hearing must expire, and — because the supervisor tears both sides of
// the peering down together — both ends converge to SessionDown within
// the detector's bound. Runs under both detectors: hold timers alone
// (HoldTime + an interval ≈ 40s) and the fast-liveness plane (a couple of
// demand polls plus Multiplier floor rounds ≈ 2.2s).
func TestAsymmetricKeepaliveLossConvergesBothEnds(t *testing.T) {
	for _, tc := range []struct {
		name  string
		lv    *liveness.Params
		bound time.Duration
	}{
		{"hold-timer", nil, 45 * time.Second},
		{"liveness", &liveness.Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 10}, 5 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n, clk, plane, ob := faultNetCfg(t, 7, func(c *Config) { c.Liveness = tc.lv })
			lease, err := n.Domain(1).NewGroup(24 * time.Hour)
			if err != nil {
				t.Fatal(err)
			}
			n.Domain(3).Join(lease.Addr, 0)

			start := clk.Now()
			var downAt time.Time
			var downEvt obs.Event
			cancel := ob.Subscribe(func(e obs.Event) {
				if e.Kind == obs.SessionDown && downAt.IsZero() {
					downAt = clk.Now()
					downEvt = e
				}
			})
			defer cancel()

			plane.SetLinkDirected(12, 31, faultinject.LinkFaults{
				Drop:    1,
				Classes: faultinject.MaskKeepalive | faultinject.MaskLiveness,
			})
			clk.RunFor(time.Minute)

			if downAt.IsZero() {
				t.Fatal("one-way keepalive loss never dropped the session")
			}
			if d := downAt.Sub(start); d > tc.bound {
				t.Fatalf("detection took %v, want ≤ %v", d, tc.bound)
			}
			if !(downEvt.Router == 12 && downEvt.Peer == 31) && !(downEvt.Router == 31 && downEvt.Peer == 12) {
				t.Fatalf("first session.down was %v, want the 12–31 peering", downEvt)
			}
			if tc.lv != nil && ob.Snapshot().Total("liveness.detect") == 0 {
				t.Fatal("liveness detector configured but hold timer made the detection")
			}

			// Heal the direction and let the backoff retries reconnect: both
			// ends must return to the direct path.
			plane.ClearLinkDirected(12, 31)
			clk.RunFor(5 * time.Minute)
			if ob.Snapshot().Total("session.up") == 0 {
				t.Fatal("session never re-established after heal")
			}
			if parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr); !ok || parent != bgmp.PeerTarget(12) {
				t.Fatalf("post-heal parent = %v ok=%v, want direct peer 12", parent, ok)
			}
		})
	}
}

// TestLivenessCrashFailsOverToBackupParent is the end-to-end fast-reroute
// path: with the liveness detector armed and BGMP's precomputed backup
// parents in place, a silent crash of the direct border router reroutes
// the tree onto transit within seconds — detection is the only latency,
// repair is a single precomputed switchover (bgmp.failover).
func TestLivenessCrashFailsOverToBackupParent(t *testing.T) {
	n, clk, plane, ob := faultNetCfg(t, 9, func(c *Config) {
		c.Liveness = &liveness.Params{Floor: 100 * time.Millisecond, Multiplier: 3, DemandAfter: 10}
	})
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)
	if parent, _, _ := n.Router(31).BGMP().GroupEntry(lease.Addr); parent != bgmp.PeerTarget(12) {
		t.Fatalf("pre-crash parent = %v, want 12", parent)
	}
	if backup, ok := n.Router(31).BGMP().BackupParent(lease.Addr); !ok || backup != bgmp.PeerTarget(22) {
		t.Fatalf("precomputed backup = %v ok=%v, want transit peer 22", backup, ok)
	}

	plane.CrashPeerFor(12, 10*time.Minute)
	clk.RunFor(5 * time.Second)

	s := ob.Snapshot()
	if s.Total("liveness.detect") == 0 {
		t.Fatal("liveness never detected the silent crash")
	}
	if s.Total("session.down") == 0 {
		t.Fatal("detection did not reach the session supervisor")
	}
	if s.Total("bgmp.failover") == 0 {
		t.Fatal("no precomputed failover happened")
	}
	if parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr); !ok || parent != bgmp.PeerTarget(22) {
		t.Fatalf("post-crash parent = %v ok=%v, want transit peer 22", parent, ok)
	}
	src := n.Domain(1).HostAddr(1)
	n.Domain(1).Send(lease.Addr, src, "fast", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("delivery failed after fast reroute")
	}
}

func TestSessionRecoveryDeterminism(t *testing.T) {
	// The full chaos sequence — partition, hold expiry, failed retries,
	// heal, reconnect — must emit byte-identical snapshots across
	// same-seed runs.
	run := func() string {
		n, clk, plane, ob := faultNet(t, 11)
		lease, err := n.Domain(1).NewGroup(24 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		n.Domain(3).Join(lease.Addr, 0)
		plane.SetDefault(faultinject.LinkFaults{Drop: 0.1, Classes: faultinject.MaskData})
		plane.PartitionFor(12, 31, 2*time.Minute)
		clk.RunFor(time.Minute)
		plane.CrashPeerFor(22, 3*time.Minute)
		clk.RunFor(10 * time.Minute)
		src := n.Domain(1).HostAddr(1)
		for i := 0; i < 20; i++ {
			n.Domain(1).Send(lease.Addr, src, "x", 0)
		}
		return ob.Snapshot().String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed chaos runs diverged:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}
