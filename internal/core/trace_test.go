package core

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"mascbgmp/internal/obs"
	"mascbgmp/internal/wire"
)

// TestGoldenJoinSpanTree pins the causal span tree of one member join on
// the paper's Fig 1 internetwork: H (domain 8) joins a group rooted in B
// (domain 2), and the join propagates hop by hop H1 → G2 → C2 → A2 → A3 →
// B1 toward the root. The rendered tree is a golden: if join propagation
// or trace stamping changes shape, this fails with a readable diff.
func TestGoldenJoinSpanTree(t *testing.T) {
	ob := obs.NewObserver()
	tr := obs.NewTracer(1998)
	ob.SetTracer(tr)
	n, clk := paperNetDP(t, false, false, "", ob)

	allocateSpaces(t, n, clk)
	lease, err := n.Domain(2).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	g := lease.Addr

	// One member joins in H; the join must travel the whole Fig 1 spine.
	n.Domain(8).Join(g, 1)

	// Isolate the join's trace: find H's member.join root, then keep only
	// spans in its causal chain.
	var trace uint64
	for _, r := range tr.Records() {
		if r.Name == obs.SpanMemberJoin && r.Domain == 8 {
			trace = r.Trace
			break
		}
	}
	if trace == 0 {
		t.Fatal("no member.join span for domain 8")
	}
	var joinSpans []obs.SpanRecord
	for _, r := range tr.Records() {
		if r.Trace == trace {
			joinSpans = append(joinSpans, r)
		}
	}

	// The join walks the Fig 1 spine toward the root domain B:
	// H1 → G2 → G1 → C2 → C1 → A2 → A3 → B1, each hop a child span of
	// the hop that sent it the join.
	g8 := groupLabel(t, joinSpans)
	got := obs.RenderTree(joinSpans)
	want := strings.Join([]string{
		"member.join domain=8 router=81 group=" + g8 + " +0ms",
		"  bgmp.join.hop domain=7 router=72 peer=81 group=" + g8 + " +0ms",
		"    bgmp.join.hop domain=7 router=71 peer=72 group=" + g8 + " +0ms",
		"      bgmp.join.hop domain=3 router=32 peer=71 group=" + g8 + " +0ms",
		"        bgmp.join.hop domain=3 router=31 peer=32 group=" + g8 + " +0ms",
		"          bgmp.join.hop domain=1 router=12 peer=31 group=" + g8 + " +0ms",
		"            bgmp.join.hop domain=1 router=13 peer=12 group=" + g8 + " +0ms",
		"              bgmp.join.hop domain=2 router=21 peer=13 group=" + g8 + " +0ms",
		"",
	}, "\n")
	if got != want {
		t.Errorf("join span tree:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// groupLabel renders the group address the way RenderTree does (its
// numeric addr value), taken from the recorded spans so the golden does
// not hard-code the allocator's choice.
func groupLabel(t *testing.T, recs []obs.SpanRecord) string {
	t.Helper()
	for _, r := range recs {
		if r.Group != 0 {
			return strconv.FormatUint(uint64(r.Group), 10)
		}
	}
	t.Fatal("no span carries a group")
	return ""
}

// TestJoinSpanTreeIsDeterministic renders the same traced join twice from
// scratch and requires byte-identical output.
func TestJoinSpanTreeIsDeterministic(t *testing.T) {
	render := func() string {
		ob := obs.NewObserver()
		tr := obs.NewTracer(1998)
		ob.SetTracer(tr)
		n, clk := paperNetDP(t, false, false, "", ob)
		allocateSpaces(t, n, clk)
		lease, err := n.Domain(2).NewGroup(24 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []wire.DomainID{8, 6, 4} {
			n.Domain(d).Join(lease.Addr, 1)
		}
		return obs.RenderTree(tr.Records())
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("renders differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, obs.SpanClaim) {
		t.Fatalf("render missing claim spans:\n%s", a)
	}
}
