package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgp"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/maas"
	"mascbgmp/internal/masc"
	"mascbgmp/internal/migp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/topology"
	"mascbgmp/internal/wire"
)

// DomainConfig describes one domain to add to a Network.
type DomainConfig struct {
	ID wire.DomainID
	// Routers lists the border router IDs (must be globally unique).
	Routers []wire.RouterID
	// InteriorNodes is the size of the interior router graph; border
	// routers attach to nodes 0..len(Routers)-1. Defaults to
	// len(Routers) when smaller.
	InteriorNodes int
	// Protocol is the domain's MIGP; required (the architecture's
	// MIGP-independence means any implementation plugs in here).
	Protocol migp.Protocol
	// TopLevel marks a backbone domain with no MASC parent.
	TopLevel bool
	// HostPrefix is the domain's unicast prefix (for source addresses),
	// originated into the unicast table and the M-RIB. Optional.
	HostPrefix addr.Prefix
	// Export is the domain's BGP export policy; nil exports everything.
	Export bgp.ExportFilter
}

// Domain is one autonomous system in the network.
type Domain struct {
	ID  wire.DomainID
	net *Network

	mu sync.Mutex
	// The unannotated fields below are assigned once inside AddDomain,
	// before the domain is published into Network.domains, and never
	// reassigned — immutable after construction, so they need no guard.
	routers      []*Router
	fabric       *migp.Fabric
	interior     *topology.Graph
	masc         *masc.Node
	maas         *maas.Server
	mascChildren []wire.DomainID // guarded by mu
	hostPrefix   addr.Prefix
	// dpStore is the overlay membership shared by the domain's border
	// routers when an overlay data plane (BIER / map-encap) is selected.
	// It models group state carried by the domain's routing underlay, so
	// it survives individual router crashes (dataplane.Backend.Reset).
	dpStore *dataplane.Store
	// received logs data deliveries to interior members, newest last.
	// guarded by mu
	received []Delivery
}

// Delivery records one packet reaching one interior member.
type Delivery struct {
	Group   addr.Addr
	Source  addr.Addr
	Node    migp.Node
	Payload string
}

// AddDomain creates a domain, its border routers (internally full-meshed),
// its MASC node, MAAS, and interior fabric.
func (n *Network) AddDomain(cfg DomainConfig) (*Domain, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("core: domain %d needs an interior protocol", cfg.ID)
	}
	if len(cfg.Routers) == 0 {
		return nil, fmt.Errorf("core: domain %d needs at least one border router", cfg.ID)
	}
	n.mu.Lock()
	if _, dup := n.domains[cfg.ID]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("core: duplicate domain %d", cfg.ID)
	}
	n.mu.Unlock()

	d := &Domain{ID: cfg.ID, net: n, hostPrefix: cfg.HostPrefix, dpStore: dataplane.NewStore()}

	// Interior topology: a path graph with borders at the front — small
	// and deterministic; examples needing richer interiors can grow it.
	in := cfg.InteriorNodes
	if in < len(cfg.Routers) {
		in = len(cfg.Routers)
	}
	d.interior = topology.New(in)
	for i := 0; i < in-1; i++ {
		d.interior.AddLink(topology.DomainID(i), topology.DomainID(i+1))
	}

	d.fabric = migp.NewFabric(migp.FabricConfig{
		Domain:   cfg.ID,
		Graph:    d.interior,
		Protocol: cfg.Protocol,
		BestExit: d.bestExit,
		OnHostDeliver: func(node migp.Node, data *wire.Data) {
			d.mu.Lock()
			d.received = append(d.received, Delivery{
				Group: data.Group, Source: data.Source, Node: node, Payload: string(data.Payload),
			})
			d.mu.Unlock()
			if n.cfg.Observer != nil {
				n.cfg.Observer.Emit(obs.Event{Kind: obs.DataDelivered,
					Domain: cfg.ID, Group: data.Group, Source: data.Source})
			}
		},
	})

	seedBase := n.cfg.Seed + int64(cfg.ID)*1000
	for i, rid := range cfg.Routers {
		r, err := newRouter(n, d, rid, migp.Node(i), cfg.Export)
		if err != nil {
			return nil, err
		}
		d.routers = append(d.routers, r)
		n.mu.Lock()
		n.routers[rid] = r
		n.mu.Unlock()
	}
	// Full internal mesh among the domain's border routers (§2: "All the
	// border routers of a domain peer with each other").
	for i := 0; i < len(d.routers); i++ {
		for j := i + 1; j < len(d.routers); j++ {
			if err := d.routers[i].connect(d.routers[j], n.cfg.Synchronous, n.cfg.TCP); err != nil {
				return nil, err
			}
		}
	}

	strat := masc.DefaultStrategy()
	strat.ClaimLifetime = n.cfg.ClaimLifetime
	d.masc = masc.NewNode(masc.NodeConfig{
		Domain:     cfg.ID,
		Clock:      n.cfg.Clock,
		Rand:       rand.New(rand.NewSource(seedBase + 1)),
		Strategy:   strat,
		WaitPeriod: n.cfg.MASCWait,
		TopLevel:   cfg.TopLevel,
		AutoRenew:  n.cfg.AutoRenewClaims,
		Obs:        n.cfg.Observer,
		Send: func(to wire.DomainID, msg wire.Message) {
			n.mascDeliver(cfg.ID, to, msg)
		},
		OnWon:     d.onRangeWon,
		OnRenewed: d.onRangeWon, // refresh the route expiry and MAAS range
		OnLost:    d.onRangeLost,
	})
	mserver, err := maas.NewServer(maas.Config{
		Clock: n.cfg.Clock,
		Rand:  rand.New(rand.NewSource(seedBase + 2)),
		OnDemand: func(need uint64) {
			d.masc.RequestSpace(need, n.cfg.ClaimLifetime)
		},
	})
	if err != nil {
		return nil, err
	}
	d.maas = mserver

	// Originate the domain's unicast prefix so sources resolve.
	if cfg.HostPrefix.Valid() && cfg.HostPrefix.Len > 0 {
		rt := wire.Route{Prefix: cfg.HostPrefix, Origin: cfg.ID}
		d.routers[0].bgp.Originate(wire.TableUnicast, rt)
		d.routers[0].bgp.Originate(wire.TableMRIB, rt)
	}

	n.mu.Lock()
	n.domains[cfg.ID] = d
	n.mu.Unlock()
	return d, nil
}

// MASC returns the domain's MASC node.
func (d *Domain) MASC() *masc.Node { return d.masc }

// MAAS returns the domain's address allocation server.
func (d *Domain) MAAS() *maas.Server { return d.maas }

// Fabric returns the domain's interior fabric.
func (d *Domain) Fabric() *migp.Fabric { return d.fabric }

// Routers returns the domain's border routers.
func (d *Domain) Routers() []*Router {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Router(nil), d.routers...)
}

// onRangeWon injects a won MASC range into BGP as a group route and makes
// it available to the MAAS — the §4.2 pipeline.
func (d *Domain) onRangeWon(p addr.Prefix, expires time.Time) {
	d.routers[0].bgp.Originate(wire.TableGRIB, wire.Route{
		Prefix:     p,
		Origin:     d.ID,
		ExpireUnix: uint64(expires.Unix()),
	})
	d.maas.AddRange(p, expires)
}

// onRangeLost withdraws the route and revokes the MAAS range.
func (d *Domain) onRangeLost(p addr.Prefix) {
	d.routers[0].bgp.WithdrawLocal(wire.TableGRIB, p)
	d.maas.RemoveRange(p)
}

// bestExit returns the domain's best exit border router for an address:
// the router whose table lookup resolves locally or to an external peer.
// Group addresses consult the G-RIB; unicast sources the M-RIB then the
// unicast table.
func (d *Domain) bestExit(a addr.Addr) wire.RouterID {
	tables := []wire.Table{wire.TableUnicast}
	if a.IsMulticast() {
		tables = []wire.Table{wire.TableGRIB}
	} else {
		tables = []wire.Table{wire.TableMRIB, wire.TableUnicast}
	}
	d.mu.Lock()
	routers := append([]*Router(nil), d.routers...)
	d.mu.Unlock()
	for _, table := range tables {
		for _, r := range routers {
			e, ok := r.bgp.Lookup(table, a)
			if !ok {
				continue
			}
			if e.Local || !r.isInternal(e.NextHop) {
				return r.ID
			}
		}
	}
	return 0
}

// NewGroup leases a multicast address from the domain's MAAS, making this
// domain the group's root domain. When the MAAS has no space it asks MASC
// and the caller should retry after the waiting period elapses.
func (d *Domain) NewGroup(lifetime time.Duration) (maas.Lease, error) {
	l, err := d.maas.Lease(lifetime)
	if err == nil && d.net.cfg.Observer != nil {
		d.net.cfg.Observer.Emit(obs.Event{Kind: obs.MAASLease, Domain: d.ID, Group: l.Addr})
	}
	return l, err
}

// Join subscribes an interior host (at interior node `at`) to group g.
func (d *Domain) Join(g addr.Addr, at migp.Node) { d.fabric.HostJoin(g, at) }

// Leave unsubscribes an interior host.
func (d *Domain) Leave(g addr.Addr, at migp.Node) { d.fabric.HostLeave(g, at) }

// Send originates a multicast packet from an interior host. Senders need
// not be members (§3).
func (d *Domain) Send(g addr.Addr, src addr.Addr, payload string, at migp.Node) {
	d.fabric.SendFromHost(at, &wire.Data{
		Group:   g,
		Source:  src,
		TTL:     32,
		Payload: []byte(payload),
	})
}

// HostAddr returns the i-th host address in the domain's unicast prefix.
func (d *Domain) HostAddr(i int) addr.Addr {
	return d.hostPrefix.Base + addr.Addr(i+1)
}

// Received returns the log of interior member deliveries.
func (d *Domain) Received() []Delivery {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Delivery(nil), d.received...)
}

// ClearReceived empties the delivery log.
func (d *Domain) ClearReceived() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.received = nil
}
