package core

import (
	"fmt"
	"math/rand"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/faultinject"
	"mascbgmp/internal/harness"
	"mascbgmp/internal/liveness"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// Chaos experiment (cmd/chaossim): the paper's stability argument (§3) and
// tree-repair machinery (§5.4) exercised under injected failure. A small
// three-domain internetwork with a redundant path runs with session
// supervision enabled while the fault plane drops data and keepalives at a
// swept loss rate and crashes one border router; the experiment measures
// the delivery ratio under loss, the sim-time to reroute onto the
// surviving path after the crash, and the sim-time to reconverge onto the
// direct path after the restart. Everything is driven by simclock.Sim and
// seeded rand, so a given config yields byte-identical obs snapshots.
//
// This lives in core (not internal/experiments) because it drives the full
// Network stack — sessions, fault plane, BGMP repair — and experiments may
// not import core (layering: experiments → core).

// ChaosConfig parameterizes RunChaos.
type ChaosConfig struct {
	// Seed drives the fault plane and the network's randomized choices.
	Seed int64
	// LossRates is the swept per-message drop probability applied to the
	// data and keepalive classes (control messages ride reliably, as TCP
	// peerings would).
	LossRates []float64
	// HoldTime / ReconnectBackoff configure session supervision
	// (Config.HoldTime, Config.ReconnectBackoff).
	HoldTime         time.Duration
	ReconnectBackoff time.Duration
	// Liveness enables the BFD-style fast detector (Config.Liveness) on
	// the supervised sessions; hold timers stay the fallback. The loss
	// sweep does not drop liveness probes (only data and keepalives), so
	// the fast detector measures pure detection latency, not loss
	// robustness.
	Liveness bool
	// LivenessFloor / LivenessMultiplier / LivenessDemandAfter tune the
	// detector; zero values take the liveness package defaults (100ms
	// floor, ×3 multiplier) and a DemandAfter of 10 stable rounds, so the
	// quiesced demand path is what the crash actually exercises.
	LivenessFloor       time.Duration
	LivenessMultiplier  int
	LivenessDemandAfter int
	// ProbeStep overrides the reroute/reconverge probing granularity;
	// zero uses the recorded 5s default, or 250ms when Liveness is on so
	// sub-second recovery resolves.
	ProbeStep time.Duration
	// CrashFor is how long the crashed border router stays down.
	CrashFor time.Duration
	// Groups is the number of multicast groups rooted in the source
	// domain and joined by both receiver domains.
	Groups int
	// Packets is the number of probe packets per group sent during the
	// lossy steady-state phase (one second apart).
	Packets int
	// MASCWait shortens the 48-hour claim waiting period so a sweep
	// stays cheap; the claim protocol is not under test here.
	MASCWait time.Duration
	// Obs, when set, receives every protocol and fault event of the whole
	// sweep; same-seed sweeps produce byte-identical snapshots. Nil uses
	// an internal observer.
	Obs *obs.Observer
	// Parallel bounds the worker pool running the loss-rate points
	// (<= 1: serial). Every point builds its own network with faults
	// seeded from (Seed, point index), so the measured ChaosPoints and
	// the Obs counter totals are identical at any Parallel value; only
	// the interleaving of the live event stream changes.
	Parallel int
	// DataPlane selects the forwarding backend under test
	// (core.Config.DataPlane); empty runs the default shared trees. The
	// stateless backends recover through BGP route withdrawal instead of
	// BGMP tree repair, so the reconvergence check follows the G-RIB.
	DataPlane string
	// Trace attaches a per-point deterministic tracer: every point's
	// detect→failover→reroute chain is recorded as a span tree and
	// returned in ChaosPoint.Spans. Point tracers are seeded from (Seed,
	// point index), so same-seed sweeps yield byte-identical traces.
	Trace bool
}

// DefaultChaosConfig returns the sweep recorded in EXPERIMENTS.md.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:             1998,
		LossRates:        []float64{0, 0.05, 0.10, 0.20},
		HoldTime:         30 * time.Second,
		ReconnectBackoff: 15 * time.Second,
		CrashFor:         5 * time.Minute,
		Groups:           3,
		Packets:          50,
		MASCWait:         time.Hour,
	}
}

// ChaosPoint is one loss rate's measurements.
type ChaosPoint struct {
	Loss float64
	// Sent and Delivered count lossy-phase probe deliveries (Packets ×
	// Groups × receiver domains attempted); DeliveryRatio is their
	// quotient.
	Sent, Delivered int
	DeliveryRatio   float64
	// Detect is the sim-time from the border-router crash until a
	// supervised session involving it was declared down (the first
	// SessionDown, whichever detector fired).
	Detect time.Duration
	// Reroute is the sim-time from the border-router crash until every
	// group delivers over the surviving transit path again (detection +
	// BGMP repair).
	Reroute time.Duration
	// Reconverge is the sim-time from the router's restart until every
	// group is re-attached on the direct path and the restarted router
	// has relearned its tree state (backoff retry + BGP resync + rejoin).
	Reconverge time.Duration
	// SessionDowns / SessionUps count supervision events at this point.
	SessionDowns, SessionUps uint64
	// Recovered reports full end-state health: faults cleared, all
	// groups on the direct path and delivering to every receiver.
	Recovered bool
	// Spans holds the point's recorded trace (ChaosConfig.Trace), sorted
	// deterministically; render with obs.ChromeTrace or obs.RenderTree.
	Spans []obs.SpanRecord `json:"-"`
}

// chaosStep is the probing granularity for the reroute/reconverge clocks.
const chaosStep = 5 * time.Second

// RunChaos runs the failure-recovery sweep and returns one point per loss
// rate. Deterministic for a given config. The points are independent
// seeded trials, so the sweep fans out across the harness worker pool:
// each point emits into its own observer (scoping the per-point session
// counters) and forwards every event to cfg.Obs, whose counter totals are
// order-independent sums.
func RunChaos(cfg ChaosConfig) ([]ChaosPoint, error) {
	ob := cfg.Obs
	if ob == nil {
		ob = obs.NewObserver()
	}
	par := cfg.Parallel
	if par <= 0 {
		par = 1
	}
	results, err := harness.Run(harness.Config{
		Trials:   len(cfg.LossRates),
		Parallel: par,
		Seed:     cfg.Seed,
		Run: func(t harness.Trial) (any, error) {
			loss := cfg.LossRates[t.Index]
			pointObs := obs.NewObserver()
			cancel := pointObs.Subscribe(ob.Emit)
			defer cancel()
			var tracer *obs.Tracer
			if cfg.Trace {
				// Per-point tracer: the point networks are single-threaded
				// (Synchronous), so span IDs allocate in a deterministic
				// order for a given (Seed, point) pair.
				tracer = obs.NewTracer(cfg.Seed + 104729*int64(t.Index))
				pointObs.SetTracer(tracer)
			}
			// The flight recorder retains each router's recent events; a
			// failed point dumps them with the error.
			fr := obs.NewFlightRecorder(64)
			pointObs.SetFlightRecorder(fr)
			pt, err := runChaosPoint(cfg, int64(t.Index), loss, pointObs)
			if err != nil {
				return nil, fmt.Errorf("chaos: loss %.2f: %w\nflight recorder:\n%s", loss, err, fr.Dump())
			}
			pt.Spans = tracer.Records()
			return pt, nil
		},
	})
	if err != nil {
		return nil, err
	}
	out := make([]ChaosPoint, 0, len(cfg.LossRates))
	for _, r := range results {
		pt := r.Value.(ChaosPoint)
		// Fold the point's recovery latencies into the sweep observer's
		// histograms (index order; merged snapshots are order-independent
		// anyway). BENCH_chaos percentiles come from these.
		ob.Histogram(obs.HistDetect, 0, 0).Observe(uint64(pt.Detect))
		ob.Histogram(obs.HistReroute, 0, 0).Observe(uint64(pt.Reroute))
		ob.Histogram(obs.HistReconverge, 0, 0).Observe(uint64(pt.Reconverge))
		out = append(out, pt)
	}
	return out, nil
}

// chaosNet is the experiment's fixed topology: source domain 1 (routers
// 11, 12), transit domain 2 (21, 22), receiver domain 3 (31), with the
// direct link 12–31 and the redundant path 11–21, 22–31. Router 12 is the
// crash victim; the transit path is what repair falls back on.
type chaosNet struct {
	n         *Network
	clk       *simclock.Sim
	plane     *faultinject.Plane
	groups    []addr.Addr
	src       addr.Addr
	dataPlane string
}

func buildChaosNet(cfg ChaosConfig, pointSeed int64, ob *obs.Observer) (*chaosNet, error) {
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	plane, err := faultinject.New(faultinject.Config{
		Clock: clk,
		Rand:  rand.New(rand.NewSource(cfg.Seed + 7919*pointSeed)),
		Obs:   ob,
	})
	if err != nil {
		return nil, err
	}
	var lv *liveness.Params
	if cfg.Liveness {
		lv = &liveness.Params{
			Floor:       cfg.LivenessFloor,
			Multiplier:  cfg.LivenessMultiplier,
			DemandAfter: cfg.LivenessDemandAfter,
		}
		if lv.DemandAfter == 0 {
			lv.DemandAfter = 10
		}
	}
	n, err := NewNetwork(Config{
		Clock:            clk,
		Seed:             cfg.Seed,
		MASCWait:         cfg.MASCWait,
		Synchronous:      true,
		Observer:         ob,
		Faults:           plane,
		HoldTime:         cfg.HoldTime,
		ReconnectBackoff: cfg.ReconnectBackoff,
		Liveness:         lv,
		DataPlane:        cfg.DataPlane,
	})
	if err != nil {
		return nil, err
	}
	for _, dc := range []DomainConfig{
		{ID: 1, Routers: []wire.RouterID{11, 12}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 1, 0, 0), Len: 16}},
		{ID: 2, Routers: []wire.RouterID{21, 22}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 2, 0, 0), Len: 16}},
		{ID: 3, Routers: []wire.RouterID{31}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 3, 0, 0), Len: 16}},
	} {
		if _, err := n.AddDomain(dc); err != nil {
			return nil, err
		}
	}
	for _, l := range [][2]wire.RouterID{{11, 21}, {12, 31}, {22, 31}} {
		if err := n.Link(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	for _, p := range [][2]wire.DomainID{{1, 2}, {1, 3}, {2, 3}} {
		if err := n.MASCPeerSiblings(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	if !n.Domain(1).MASC().RequestSpace(1<<12, 90*24*time.Hour) {
		return nil, fmt.Errorf("MASC claim selection failed")
	}
	clk.RunFor(cfg.MASCWait + time.Hour)

	cn := &chaosNet{n: n, clk: clk, plane: plane, src: n.Domain(1).HostAddr(1), dataPlane: cfg.DataPlane}
	for g := 0; g < cfg.Groups; g++ {
		lease, err := n.Domain(1).NewGroup(30 * 24 * time.Hour)
		if err != nil {
			return nil, err
		}
		cn.groups = append(cn.groups, lease.Addr)
		n.Domain(2).Join(lease.Addr, 0)
		n.Domain(3).Join(lease.Addr, 0)
	}
	return cn, nil
}

// probe sends one packet per group and counts deliveries at the receiver
// domains; ok means every group reached every receiver.
func (cn *chaosNet) probe() (delivered, sent int, ok bool) {
	cn.n.Domain(2).ClearReceived()
	cn.n.Domain(3).ClearReceived()
	for _, g := range cn.groups {
		cn.n.Domain(1).Send(g, cn.src, "probe", 0)
	}
	sent = 2 * len(cn.groups)
	delivered = len(cn.n.Domain(2).Received()) + len(cn.n.Domain(3).Received())
	return delivered, sent, delivered == sent
}

// directPath reports whether every group is attached to the root domain
// over the direct link again. Under shared trees that means the receiver's
// tree parent is the direct peer and the restarted router carries its tree
// state; the stateless backends hold no per-group state, so the equivalent
// condition is the receiver's G-RIB best route to the group pointing at
// the direct peer again (tunnels and bitstring copies follow the RIBs).
func (cn *chaosNet) directPath() bool {
	stateless := cn.dataPlane != "" && cn.dataPlane != dataplane.SharedTreeName
	for _, g := range cn.groups {
		if stateless {
			e, ok := cn.n.Router(31).BGP().Lookup(wire.TableGRIB, g)
			if !ok || e.NextHop != 12 {
				return false
			}
			continue
		}
		parent, _, ok := cn.n.Router(31).BGMP().GroupEntry(g)
		if !ok || parent != bgmp.PeerTarget(12) {
			return false
		}
		if !cn.n.Router(12).BGMP().HasGroupState(g) {
			return false
		}
	}
	return true
}

func runChaosPoint(cfg ChaosConfig, pointSeed int64, loss float64, ob *obs.Observer) (ChaosPoint, error) {
	cn, err := buildChaosNet(cfg, pointSeed, ob)
	if err != nil {
		return ChaosPoint{}, err
	}
	pt := ChaosPoint{Loss: loss}
	downs0 := ob.Snapshot().Total(obs.SessionDown.String())
	ups0 := ob.Snapshot().Total(obs.SessionUp.String())

	if _, _, ok := cn.probe(); !ok {
		return ChaosPoint{}, fmt.Errorf("baseline delivery failed before fault injection")
	}

	// Phase 1 — lossy steady state: data and keepalives drop at the swept
	// rate; control stays reliable (the TCP peering assumption).
	cn.plane.SetDefault(faultinject.LinkFaults{
		Drop:    loss,
		Classes: faultinject.MaskData | faultinject.MaskKeepalive,
	})
	for p := 0; p < cfg.Packets; p++ {
		d, s, _ := cn.probe()
		pt.Delivered += d
		pt.Sent += s
		cn.clk.RunFor(time.Second)
	}
	if pt.Sent > 0 {
		pt.DeliveryRatio = float64(pt.Delivered) / float64(pt.Sent)
	}

	// Phase 2 — crash the direct-path border router; measure the time to
	// detection (first SessionDown involving the victim, whichever
	// detector fired) and the time until delivery works again over
	// transit (detection + repair). Probes themselves are lossy, so a
	// step may fail on drops alone — the clock keeps stepping until one
	// full round gets through.
	step := cfg.ProbeStep
	if step <= 0 {
		step = chaosStep
		if cfg.Liveness {
			step = 250 * time.Millisecond
		}
	}
	crashAt := cn.clk.Now()
	detected := false
	cancel := ob.Subscribe(func(e obs.Event) {
		if !detected && e.Kind == obs.SessionDown && (e.Router == 12 || e.Peer == 12) {
			detected = true
			pt.Detect = cn.clk.Now().Sub(crashAt)
		}
	})
	defer cancel()
	cn.plane.CrashPeerFor(12, cfg.CrashFor)
	rerouteBudget := cfg.HoldTime + 2*time.Minute
	for {
		if _, _, ok := cn.probe(); ok {
			pt.Reroute = cn.clk.Now().Sub(crashAt)
			break
		}
		if cn.clk.Now().Sub(crashAt) > rerouteBudget {
			return ChaosPoint{}, fmt.Errorf("no reroute within %v of crash", rerouteBudget)
		}
		cn.clk.RunFor(step)
	}

	// Phase 3 — run past the restart; measure time from restart until all
	// groups are back on the direct path (backoff reconnect + resync +
	// orphan rejoin).
	restartAt := crashAt.Add(cfg.CrashFor)
	if remaining := restartAt.Sub(cn.clk.Now()); remaining > 0 {
		cn.clk.RunFor(remaining)
	}
	reconvergeBudget := cfg.HoldTime + 10*cfg.ReconnectBackoff + 2*time.Minute
	for !cn.directPath() {
		if cn.clk.Now().Sub(restartAt) > reconvergeBudget {
			return ChaosPoint{}, fmt.Errorf("no reconvergence within %v of restart", reconvergeBudget)
		}
		cn.clk.RunFor(step)
	}
	pt.Reconverge = cn.clk.Now().Sub(restartAt)

	// End state: faults off, everything healthy.
	cn.plane.SetDefault(faultinject.LinkFaults{})
	cn.clk.RunFor(time.Minute)
	_, _, ok := cn.probe()
	pt.Recovered = ok && cn.directPath()

	if !detected {
		// Even the stateless backends (which reroute on the iBGP
		// withdrawal before any session expires) must have detected the
		// dead session by the end of the outage.
		return ChaosPoint{}, fmt.Errorf("no SessionDown for the crashed router during the outage")
	}

	s := ob.Snapshot()
	pt.SessionDowns = s.Total(obs.SessionDown.String()) - downs0
	pt.SessionUps = s.Total(obs.SessionUp.String()) - ups0
	return pt, nil
}
