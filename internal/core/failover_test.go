package core

import (
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/bgmp"
	"mascbgmp/internal/migp/dvmrp"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// failoverNet builds a triangle with a redundant path to the root domain:
//
//	R (root, routers 11 12) — T (transit, 21 22) — M (member, 31)
//	 \__________________________________________/
//	            direct link 12–31
//
// M's best path to R is the direct link; when it fails, BGP fails over to
// the transit path and BGMP must re-attach the tree.
func failoverNet(t *testing.T) (*Network, *simclock.Sim) {
	t.Helper()
	clk := simclock.NewSim(time.Date(1998, 9, 1, 0, 0, 0, 0, time.UTC))
	n, err := NewNetwork(Config{Clock: clk, Seed: 3, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []DomainConfig{
		{ID: 1, Routers: []wire.RouterID{11, 12}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 1, 0, 0), Len: 16}},
		{ID: 2, Routers: []wire.RouterID{21, 22}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 2, 0, 0), Len: 16}},
		{ID: 3, Routers: []wire.RouterID{31}, Protocol: dvmrp.New(), TopLevel: true,
			HostPrefix: addr.Prefix{Base: addr.MakeAddr(10, 3, 0, 0), Len: 16}},
	} {
		if _, err := n.AddDomain(dc); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range [][2]wire.RouterID{{11, 21}, {12, 31}, {22, 31}} {
		if err := n.Link(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	n.MASCPeerSiblings(1, 2)
	n.MASCPeerSiblings(1, 3)
	n.MASCPeerSiblings(2, 3)
	// R claims space and roots a group.
	if !n.Domain(1).MASC().RequestSpace(1<<12, 90*24*time.Hour) {
		t.Fatal("claim failed")
	}
	clk.RunFor(49 * time.Hour)
	return n, clk
}

func TestTreeRepairAfterLinkFailure(t *testing.T) {
	n, _ := failoverNet(t)
	lease, err := n.Domain(1).NewGroup(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	n.Domain(3).Join(lease.Addr, 0)

	// Before the failure: M's border parent is the direct peer 12.
	m := n.Router(31)
	parent, _, ok := m.BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(12) {
		t.Fatalf("pre-failure parent = %v ok=%v, want peer 12", parent, ok)
	}
	// Baseline delivery.
	src := n.Domain(1).HostAddr(1)
	n.Domain(1).Send(lease.Addr, src, "before", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("baseline delivery failed")
	}

	// The direct link fails.
	if err := n.Unlink(12, 31); err != nil {
		t.Fatal(err)
	}
	// BGP failed over: M's G-RIB now points via the transit domain.
	e, ok := m.BGP().Lookup(wire.TableGRIB, lease.Addr)
	if !ok || e.NextHop != 22 {
		t.Fatalf("post-failure route: %+v ok=%v, want via 22", e, ok)
	}
	// BGMP repaired the tree: the parent target follows the new route.
	parent, _, ok = m.BGMP().GroupEntry(lease.Addr)
	if !ok || parent != bgmp.PeerTarget(22) {
		t.Fatalf("post-failure parent = %v ok=%v, want peer 22", parent, ok)
	}
	// Data still flows — now through the transit domain.
	n.Domain(3).ClearReceived()
	n.Domain(1).Send(lease.Addr, src, "after", 0)
	got := n.Domain(3).Received()
	if len(got) != 1 || got[0].Payload != "after" {
		t.Fatalf("post-failure delivery = %v", got)
	}
}

func TestRepairCleansOldPath(t *testing.T) {
	n, _ := failoverNet(t)
	lease, _ := n.Domain(1).NewGroup(24 * time.Hour)
	n.Domain(3).Join(lease.Addr, 0)
	n.Unlink(12, 31)

	// The old direct border (12) must not keep stale child state for M.
	_, children, ok := n.Router(12).BGMP().GroupEntry(lease.Addr)
	if ok {
		for _, c := range children {
			if c == bgmp.PeerTarget(31) {
				t.Fatal("stale child target on the failed link")
			}
		}
	}
	// The transit path holds the live branch.
	if !n.Router(22).BGMP().HasGroupState(lease.Addr) {
		t.Fatal("transit border has no tree state after repair")
	}
	if !n.Router(21).BGMP().HasGroupState(lease.Addr) {
		t.Fatal("transit-to-root border has no tree state after repair")
	}
}

func TestRouteWithdrawalTearsDownTree(t *testing.T) {
	n, _ := failoverNet(t)
	lease, _ := n.Domain(1).NewGroup(24 * time.Hour)
	n.Domain(3).Join(lease.Addr, 0)

	// Both paths fail: the group becomes unreachable and M's state must
	// be torn down rather than pointing into the void.
	n.Unlink(12, 31)
	n.Unlink(22, 31)
	if _, ok := n.Router(31).BGP().Lookup(wire.TableGRIB, lease.Addr); ok {
		t.Fatal("route should be gone")
	}
	if n.Router(31).BGMP().HasGroupState(lease.Addr) {
		t.Fatal("tree state survived total route loss")
	}
}

func TestUnlinkUnknownRouter(t *testing.T) {
	n, _ := failoverNet(t)
	if err := n.Unlink(99, 31); err == nil {
		t.Fatal("unlink of unknown router should error")
	}
}

func TestRejoinAfterHeal(t *testing.T) {
	n, _ := failoverNet(t)
	lease, _ := n.Domain(1).NewGroup(24 * time.Hour)
	n.Domain(3).Join(lease.Addr, 0)
	n.Unlink(12, 31)
	// Heal: re-link. BGP re-learns the direct path; the tree repairs back.
	if err := n.Link(12, 31); err != nil {
		t.Fatal(err)
	}
	parent, _, ok := n.Router(31).BGMP().GroupEntry(lease.Addr)
	if !ok {
		t.Fatal("no state after heal")
	}
	if parent != bgmp.PeerTarget(12) {
		t.Fatalf("parent after heal = %v, want direct peer 12", parent)
	}
	src := n.Domain(1).HostAddr(1)
	n.Domain(3).ClearReceived()
	n.Domain(1).Send(lease.Addr, src, "healed", 0)
	if len(n.Domain(3).Received()) != 1 {
		t.Fatal("delivery after heal failed")
	}
}
