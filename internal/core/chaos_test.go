package core

import (
	"reflect"
	"testing"
	"time"

	"mascbgmp/internal/dataplane"
	"mascbgmp/internal/obs"
)

// scaledChaos keeps the sweep cheap for CI: one lossy point, a short
// steady-state phase, and a short crash.
func scaledChaos() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.LossRates = []float64{0.10}
	cfg.Packets = 15
	cfg.CrashFor = 3 * time.Minute
	return cfg
}

func TestChaosReconvergence(t *testing.T) {
	// The acceptance scenario: 10% loss plus one injected border-router
	// crash. All groups must fall back to transit, re-attach to the root
	// domain after the restart, and end healthy — within the configured
	// hold + backoff budget (RunChaos errors if any phase blows it).
	cfg := scaledChaos()
	pts, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if !pt.Recovered {
		t.Fatal("network did not recover to the direct path with full delivery")
	}
	if pt.SessionDowns == 0 || pt.SessionUps == 0 {
		t.Fatalf("supervision events missing: downs=%d ups=%d", pt.SessionDowns, pt.SessionUps)
	}
	if pt.Reroute <= 0 || pt.Reroute > cfg.HoldTime+2*time.Minute {
		t.Fatalf("Reroute = %v, want within hold+2m", pt.Reroute)
	}
	if pt.Reconverge < 0 || pt.Reconverge > cfg.HoldTime+10*cfg.ReconnectBackoff+2*time.Minute {
		t.Fatalf("Reconverge = %v, want within hold+backoff budget", pt.Reconverge)
	}
	if pt.DeliveryRatio < 0.5 || pt.DeliveryRatio > 1 {
		t.Fatalf("DeliveryRatio = %.3f under 10%% loss, want (0.5, 1]", pt.DeliveryRatio)
	}
}

func TestChaosLossFreeBaseline(t *testing.T) {
	cfg := scaledChaos()
	cfg.LossRates = []float64{0}
	pts, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].DeliveryRatio != 1 {
		t.Fatalf("DeliveryRatio = %.3f at zero loss, want 1", pts[0].DeliveryRatio)
	}
	if !pts[0].Recovered {
		t.Fatal("zero-loss run did not recover")
	}
}

func TestChaosSweepDeterminism(t *testing.T) {
	// Same seed, same config → byte-identical obs snapshots for the whole
	// sweep, including every fault, session, and repair event.
	run := func() (string, []ChaosPoint) {
		cfg := scaledChaos()
		ob := obs.NewObserver()
		cfg.Obs = ob
		pts, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ob.Snapshot().String(), pts
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 {
		t.Fatalf("same-seed chaos sweeps diverged:\n--- run 1\n%s\n--- run 2\n%s", s1, s2)
	}
	for i := range p1 {
		if !reflect.DeepEqual(p1[i], p2[i]) {
			t.Fatalf("point %d diverged: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestChaosStatelessBackendsRecover(t *testing.T) {
	// The stateless data planes ride the RIBs instead of tree state: the
	// crash must still reroute onto transit (iBGP withdrawal at the
	// crashed router's siblings) and reconverge onto the direct route
	// after the restart.
	for _, backend := range []string{dataplane.BIERName, dataplane.MapEncapName} {
		cfg := scaledChaos()
		cfg.LossRates = []float64{0}
		cfg.DataPlane = backend
		pts, err := RunChaos(cfg)
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		pt := pts[0]
		if pt.DeliveryRatio != 1 {
			t.Errorf("backend %s: DeliveryRatio = %.3f at zero loss, want 1", backend, pt.DeliveryRatio)
		}
		if !pt.Recovered {
			t.Errorf("backend %s: network did not recover", backend)
		}
		// Reroute can be 0: the crashed router's iBGP siblings withdraw
		// its routes immediately, so the stateless planes swing onto the
		// transit route without waiting for any remote hold timer.
		if pt.Reroute < 0 || pt.Reroute > cfg.HoldTime+2*time.Minute {
			t.Errorf("backend %s: Reroute = %v, want within hold+2m", backend, pt.Reroute)
		}
	}
}

func TestChaosSweepParallelMatchesSerial(t *testing.T) {
	// The loss-rate points are independent seeded trials; fanning them
	// across workers must not change the measured points or the counter
	// totals (event interleaving may differ, counter sums may not).
	run := func(parallel int) (string, []ChaosPoint) {
		cfg := scaledChaos()
		cfg.LossRates = []float64{0, 0.10, 0.20}
		cfg.Packets = 10
		cfg.Parallel = parallel
		ob := obs.NewObserver()
		cfg.Obs = ob
		pts, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ob.Snapshot().String(), pts
	}
	sSerial, pSerial := run(1)
	sPar, pPar := run(3)
	if sSerial != sPar {
		t.Fatalf("parallel sweep changed counter totals:\n--- serial\n%s\n--- parallel\n%s", sSerial, sPar)
	}
	for i := range pSerial {
		if !reflect.DeepEqual(pSerial[i], pPar[i]) {
			t.Fatalf("point %d diverged under parallelism: %+v vs %+v", i, pSerial[i], pPar[i])
		}
	}
}
