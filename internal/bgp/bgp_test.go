package bgp

import (
	"testing"
	"time"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// net is a synchronous in-process BGP network: speakers deliver updates to
// each other through direct HandleUpdate calls. Because Speaker releases
// its lock before Send, recursive propagation terminates naturally.
type testNet struct {
	speakers map[wire.RouterID]*Speaker
}

func newTestNet() *testNet { return &testNet{speakers: map[wire.RouterID]*Speaker{}} }

func (tn *testNet) add(router wire.RouterID, domain wire.DomainID, opts ...func(*Config)) *Speaker {
	cfg := Config{
		Router:           router,
		Domain:           domain,
		AggregateCovered: true,
		Send: func(to wire.RouterID, u *wire.Update) {
			if peer, ok := tn.speakers[to]; ok {
				peer.HandleUpdate(router, u)
			}
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	s := New(cfg)
	tn.speakers[router] = s
	return s
}

// connect establishes a bidirectional peering: both sides register, then
// both run the initial route exchange.
func (tn *testNet) connect(a, b *Speaker, internal bool) {
	a.AddNeighbor(Neighbor{Router: b.Router(), Domain: b.Domain(), Internal: internal})
	b.AddNeighbor(Neighbor{Router: a.Router(), Domain: a.Domain(), Internal: internal})
	a.Sync(b.Router())
	b.Sync(a.Router())
}

func grib(s *Speaker) []Entry { return s.Table(wire.TableGRIB) }

func TestOriginateAndPropagate(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	tn.connect(a, b, false)

	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})

	e, ok := b.Lookup(wire.TableGRIB, addr.MakeAddr(224, 0, 5, 5))
	if !ok {
		t.Fatal("B should have learned the group route")
	}
	if e.NextHop != 1 {
		t.Fatalf("next hop = %d, want 1", e.NextHop)
	}
	if len(e.Route.ASPath) != 1 || e.Route.ASPath[0] != 10 {
		t.Fatalf("AS path = %v, want [10]", e.Route.ASPath)
	}
	if e.Route.Origin != 10 {
		t.Fatalf("origin = %d", e.Route.Origin)
	}
	// The originator's own lookup resolves locally.
	ea, ok := a.Lookup(wire.TableGRIB, addr.MakeAddr(224, 0, 5, 5))
	if !ok || !ea.Local || ea.NextHop != 1 {
		t.Fatalf("A's own entry: %+v ok=%v", ea, ok)
	}
}

func TestLatecomerNeighborGetsTable(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, 10)
	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})

	b := tn.add(2, 20)
	tn.connect(a, b, false) // peering established after origination
	if _, ok := b.LookupPrefix(wire.TableGRIB, p); !ok {
		t.Fatal("late neighbor should receive the existing table")
	}
}

func TestWithdrawPropagates(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	c := tn.add(3, 30)
	tn.connect(a, b, false)
	tn.connect(b, c, false)

	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})
	if _, ok := c.LookupPrefix(wire.TableGRIB, p); !ok {
		t.Fatal("C should learn via B")
	}
	a.WithdrawLocal(wire.TableGRIB, p)
	if _, ok := c.LookupPrefix(wire.TableGRIB, p); ok {
		t.Fatal("withdraw should reach C")
	}
	if _, ok := b.LookupPrefix(wire.TableGRIB, p); ok {
		t.Fatal("withdraw should reach B")
	}
}

func TestASPathGrowsAndPreventsLoops(t *testing.T) {
	// Triangle 10-20-30: routes must not loop and paths must reflect
	// traversed domains.
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	c := tn.add(3, 30)
	tn.connect(a, b, false)
	tn.connect(b, c, false)
	tn.connect(c, a, false)

	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})

	eb, _ := b.LookupPrefix(wire.TableGRIB, p)
	ec, _ := c.LookupPrefix(wire.TableGRIB, p)
	if len(eb.Route.ASPath) != 1 || eb.Route.ASPath[0] != 10 {
		t.Fatalf("B path %v", eb.Route.ASPath)
	}
	// C hears [10] from A directly and [20 10] via B: direct wins.
	if len(ec.Route.ASPath) != 1 || ec.NextHop != 1 {
		t.Fatalf("C path %v via %d, want direct [10] via 1", ec.Route.ASPath, ec.NextHop)
	}
}

func TestInternalMeshDistribution(t *testing.T) {
	// Paper §4.2: B1 advertises a group route to A3; A's other border
	// routers A1, A2, A4 learn it via the internal mesh with A3 as next
	// hop; they do not re-advertise internally learned routes to each
	// other (split horizon over the full mesh).
	tn := newTestNet()
	b1 := tn.add(31, 2) // domain B
	a1 := tn.add(11, 1)
	a2 := tn.add(12, 1)
	a3 := tn.add(13, 1)
	a4 := tn.add(14, 1)
	// Full internal mesh in A.
	as := []*Speaker{a1, a2, a3, a4}
	for i := 0; i < len(as); i++ {
		for j := i + 1; j < len(as); j++ {
			tn.connect(as[i], as[j], true)
		}
	}
	tn.connect(a3, b1, false)

	p := addr.MustParsePrefix("224.0.128.0/24")
	b1.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 2})

	e3, ok := a3.LookupPrefix(wire.TableGRIB, p)
	if !ok || e3.NextHop != 31 {
		t.Fatalf("A3 entry %+v ok=%v, want next hop B1(31)", e3, ok)
	}
	for _, r := range []*Speaker{a1, a2, a4} {
		e, ok := r.LookupPrefix(wire.TableGRIB, p)
		if !ok {
			t.Fatalf("router %d missing route", r.Router())
		}
		if e.NextHop != 13 {
			t.Fatalf("router %d next hop = %d, want A3(13)", r.Router(), e.NextHop)
		}
	}
}

func TestAggregationSuppressesCoveredChildRoute(t *testing.T) {
	// Paper §4.2/§4.3.2: A originates 224.0.0.0/16 which covers child B's
	// 224.0.128.0/24, so A must not propagate B's route to other domains;
	// packets toward the /24 in other domains follow the /16 to A, where
	// the more specific G-RIB entry directs them to B.
	tn := newTestNet()
	b1 := tn.add(31, 2)
	a3 := tn.add(13, 1)
	d1 := tn.add(41, 3)
	tn.connect(a3, b1, false)
	tn.connect(a3, d1, false)

	a3.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.0.0/16"), Origin: 1})
	b1.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.128.0/24"), Origin: 2})

	// D sees only the /16.
	entries := grib(d1)
	if len(entries) != 1 || entries[0].Route.Prefix.String() != "224.0.0.0/16" {
		t.Fatalf("D's G-RIB = %v, want only the /16", entries)
	}
	// A has both; longest match on a covered group address picks B.
	e, ok := a3.Lookup(wire.TableGRIB, addr.MakeAddr(224, 0, 128, 9))
	if !ok || e.NextHop != 31 {
		t.Fatalf("A3 LPM: %+v ok=%v, want next hop B1", e, ok)
	}
	// D's lookup of the same group resolves via the /16 toward A.
	ed, ok := d1.Lookup(wire.TableGRIB, addr.MakeAddr(224, 0, 128, 9))
	if !ok || ed.NextHop != 13 || ed.Route.Prefix.String() != "224.0.0.0/16" {
		t.Fatalf("D LPM: %+v ok=%v", ed, ok)
	}
}

func TestAggregationDisabledPropagatesChildRoute(t *testing.T) {
	tn := newTestNet()
	b1 := tn.add(31, 2, func(c *Config) { c.AggregateCovered = false })
	a3 := tn.add(13, 1, func(c *Config) { c.AggregateCovered = false })
	d1 := tn.add(41, 3, func(c *Config) { c.AggregateCovered = false })
	tn.connect(a3, b1, false)
	tn.connect(a3, d1, false)

	a3.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.0.0/16"), Origin: 1})
	b1.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.128.0/24"), Origin: 2})

	if len(grib(d1)) != 2 {
		t.Fatalf("without aggregation D should hold 2 routes, got %v", grib(d1))
	}
}

func TestCustomerExportPolicy(t *testing.T) {
	// Provider A (domain 1) has customer B (domain 2) and peers with
	// provider D (domain 3). A third domain E (domain 4) originates a
	// route that A learns from D; A must not re-export E's route to D
	// (no transit for non-customer routes) but must export B's.
	tn := newTestNet()
	policy := TableExportFilter(wire.TableGRIB, CustomerExportFilter(1, map[wire.DomainID]bool{2: true}))
	a := tn.add(13, 1, func(c *Config) { c.Export = policy })
	b := tn.add(31, 2)
	d := tn.add(41, 3)
	tn.connect(a, b, false)
	tn.connect(a, d, false)

	b.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.128.0/24"), Origin: 2})
	// Customer route reaches the peer.
	if _, ok := d.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.0.128.0/24")); !ok {
		t.Fatal("customer route should be exported to the peer")
	}
	// A route from the peer must not be exported back toward B? It CAN be:
	// customers receive full routes. Check the reverse direction: a route
	// originated by D reaches B (customers get everything).
	d.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("225.0.0.0/16"), Origin: 3})
	if _, ok := b.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("225.0.0.0/16")); !ok {
		t.Fatal("customers should receive peer routes")
	}
}

func TestNoTransitForPeerRoutes(t *testing.T) {
	// D1 -- A -- D2, both D's are peers (not customers) of A. A must not
	// give transit between them.
	tn := newTestNet()
	policy := TableExportFilter(wire.TableGRIB, CustomerExportFilter(1, nil))
	a := tn.add(13, 1, func(c *Config) { c.Export = policy })
	d1 := tn.add(41, 3)
	d2 := tn.add(51, 4)
	tn.connect(a, d1, false)
	tn.connect(a, d2, false)

	d1.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("226.0.0.0/16"), Origin: 3})
	if _, ok := a.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("226.0.0.0/16")); !ok {
		t.Fatal("A itself should learn the route")
	}
	if _, ok := d2.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("226.0.0.0/16")); ok {
		t.Fatal("A must not provide transit between peers")
	}
}

func TestDenyPrefixFilter(t *testing.T) {
	tn := newTestNet()
	deny := DenyPrefixFilter(addr.MustParsePrefix("239.0.0.0/8"))
	a := tn.add(1, 10, func(c *Config) { c.Export = deny })
	b := tn.add(2, 20)
	tn.connect(a, b, false)
	a.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("239.1.0.0/16"), Origin: 10})
	a.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.1.0.0/16"), Origin: 10})
	if _, ok := b.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("239.1.0.0/16")); ok {
		t.Fatal("denied prefix leaked")
	}
	if _, ok := b.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.1.0.0/16")); !ok {
		t.Fatal("permitted prefix missing")
	}
}

func TestAndFilters(t *testing.T) {
	f := AndFilters(
		DenyPrefixFilter(addr.MustParsePrefix("239.0.0.0/8")),
		func(Neighbor, wire.Table, wire.Route) bool { return true },
	)
	if f(Neighbor{}, wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("239.1.0.0/16")}) {
		t.Fatal("AndFilters should deny")
	}
	if !f(Neighbor{}, wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.1.0.0/16")}) {
		t.Fatal("AndFilters should permit")
	}
}

func TestRouteExpiry(t *testing.T) {
	clk := simclock.NewSim(time.Unix(1000, 0))
	tn := newTestNet()
	a := tn.add(1, 10, func(c *Config) { c.Clock = clk })
	b := tn.add(2, 20, func(c *Config) { c.Clock = clk })
	tn.connect(a, b, false)

	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10, ExpireUnix: 2000})
	if _, ok := b.LookupPrefix(wire.TableGRIB, p); !ok {
		t.Fatal("route should be live before expiry")
	}
	clk.RunFor(2000 * time.Second)
	if _, ok := b.LookupPrefix(wire.TableGRIB, p); ok {
		t.Fatal("expired route should not be returned")
	}
	if len(grib(b)) != 0 {
		t.Fatal("expired routes must not appear in snapshots")
	}
	a.Sweep()
	b.Sweep()
	if _, ok := a.LookupPrefix(wire.TableGRIB, p); ok {
		t.Fatal("sweep should remove the expired origination")
	}
}

func TestRemoveNeighborWithdrawsRoutes(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	c := tn.add(3, 30)
	tn.connect(a, b, false)
	tn.connect(b, c, false)
	a.Originate(wire.TableGRIB, wire.Route{Prefix: addr.MustParsePrefix("224.0.0.0/16"), Origin: 10})
	if _, ok := c.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.0.0.0/16")); !ok {
		t.Fatal("C should have the route")
	}
	// B loses its session with A.
	b.RemoveNeighbor(1, wire.TraceContext{})
	if _, ok := b.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.0.0.0/16")); ok {
		t.Fatal("B should drop routes from removed neighbor")
	}
	if _, ok := c.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.0.0.0/16")); ok {
		t.Fatal("C should receive the withdraw")
	}
}

func TestBestRouteSwitchover(t *testing.T) {
	// C hears the same prefix from A (path [10]) and from B (path [20 10]
	// after transit). When A's session drops, C fails over to B's path.
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	c := tn.add(3, 30)
	tn.connect(a, b, false)
	tn.connect(a, c, false)
	tn.connect(b, c, false)

	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})
	e, _ := c.LookupPrefix(wire.TableGRIB, p)
	if e.NextHop != 1 {
		t.Fatalf("initial next hop = %d, want A", e.NextHop)
	}
	c.RemoveNeighbor(1, wire.TraceContext{})
	e, ok := c.LookupPrefix(wire.TableGRIB, p)
	if !ok {
		t.Fatal("C should fail over to B's path")
	}
	if e.NextHop != 2 || len(e.Route.ASPath) != 2 {
		t.Fatalf("failover entry %+v", e)
	}
}

func TestOnBestChangeNotification(t *testing.T) {
	type ev struct {
		p    addr.Prefix
		lost bool
	}
	var events []ev
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20, func(c *Config) {
		c.OnBestChange = func(table wire.Table, p addr.Prefix, lost bool, ctx wire.TraceContext) {
			if table == wire.TableGRIB {
				events = append(events, ev{p, lost})
			}
		}
	})
	tn.connect(a, b, false)
	p := addr.MustParsePrefix("224.0.0.0/16")
	a.Originate(wire.TableGRIB, wire.Route{Prefix: p, Origin: 10})
	a.WithdrawLocal(wire.TableGRIB, p)
	if len(events) != 2 || events[0].lost || !events[1].lost {
		t.Fatalf("events = %v", events)
	}
}

func TestTablesAreIndependent(t *testing.T) {
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	tn.connect(a, b, false)
	p := addr.MustParsePrefix("10.0.0.0/8")
	a.Originate(wire.TableUnicast, wire.Route{Prefix: p, Origin: 10})
	if _, ok := b.LookupPrefix(wire.TableUnicast, p); !ok {
		t.Fatal("unicast route missing")
	}
	if _, ok := b.LookupPrefix(wire.TableGRIB, p); ok {
		t.Fatal("route leaked across tables")
	}
	if _, ok := b.LookupPrefix(wire.TableMRIB, p); ok {
		t.Fatal("route leaked across tables")
	}
}

func TestMRIBForIncongruentTopology(t *testing.T) {
	// Unicast next hop differs from multicast next hop: M-RIB lookups
	// must return the multicast-capable path.
	tn := newTestNet()
	a := tn.add(1, 10)
	b := tn.add(2, 20)
	c := tn.add(3, 30)
	tn.connect(a, b, false)
	tn.connect(a, c, false)
	p := addr.MustParsePrefix("10.0.0.0/8")
	b.Originate(wire.TableUnicast, wire.Route{Prefix: p, Origin: 20})
	c.Originate(wire.TableMRIB, wire.Route{Prefix: p, Origin: 30})
	eu, _ := a.Lookup(wire.TableUnicast, addr.MakeAddr(10, 1, 1, 1))
	em, _ := a.Lookup(wire.TableMRIB, addr.MakeAddr(10, 1, 1, 1))
	if eu.NextHop != 2 || em.NextHop != 3 {
		t.Fatalf("unicast via %d (want 2), mrib via %d (want 3)", eu.NextHop, em.NextHop)
	}
}

func TestLookupNoRoute(t *testing.T) {
	s := New(Config{Router: 1, Domain: 1})
	if _, ok := s.Lookup(wire.TableGRIB, addr.MakeAddr(224, 1, 1, 1)); ok {
		t.Fatal("empty table lookup should miss")
	}
	if _, ok := s.LookupPrefix(wire.TableGRIB, addr.MustParsePrefix("224.0.0.0/16")); ok {
		t.Fatal("empty table prefix lookup should miss")
	}
}

func TestUpdateFromUnknownPeerIgnored(t *testing.T) {
	s := New(Config{Router: 1, Domain: 1})
	s.HandleUpdate(99, &wire.Update{Table: wire.TableGRIB, Routes: []wire.Route{{
		Prefix: addr.MustParsePrefix("224.0.0.0/16"), Origin: 9,
	}}})
	if len(grib(s)) != 0 {
		t.Fatal("updates from unknown peers must be ignored")
	}
}

func TestLoopedRouteRejected(t *testing.T) {
	s := New(Config{Router: 1, Domain: 7})
	s.AddNeighbor(Neighbor{Router: 2, Domain: 8})
	s.HandleUpdate(2, &wire.Update{Table: wire.TableGRIB, Routes: []wire.Route{{
		Prefix: addr.MustParsePrefix("224.0.0.0/16"),
		ASPath: []wire.DomainID{8, 7, 9}, // contains our own domain 7
		Origin: 9,
	}}})
	if len(grib(s)) != 0 {
		t.Fatal("looped route must be rejected")
	}
}

func TestNeighborsSorted(t *testing.T) {
	s := New(Config{Router: 1, Domain: 1})
	s.AddNeighbor(Neighbor{Router: 5, Domain: 2})
	s.AddNeighbor(Neighbor{Router: 3, Domain: 3})
	ns := s.Neighbors()
	if len(ns) != 2 || ns[0].Router != 3 || ns[1].Router != 5 {
		t.Fatalf("Neighbors = %v", ns)
	}
}
