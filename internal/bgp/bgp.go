// Package bgp implements the BGP-lite speaker the MASC/BGMP architecture
// relies on (paper §2, §4.2).
//
// The speaker maintains three logical routing tables selected by
// wire.Table — the unicast RIB, the M-RIB (multicast RPF view), and the
// G-RIB (group routes injected by MASC, binding each multicast prefix to
// its root domain). It runs the usual BGP machinery over them: per-peer
// Adj-RIB-In, a decision process, Adj-RIB-Out with selective export
// (routing policy), AS-path loop suppression, and CIDR aggregation of group
// routes (a parent domain does not propagate children's routes that its own
// allocation covers).
//
// The speaker is a pure state machine: inbound updates arrive through
// HandleUpdate and outbound updates leave through the Send callback, so the
// same code runs over real TCP peerings (cmd/bgmpd), in-memory pipes, and
// direct function calls in tests.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/obs"
	"mascbgmp/internal/simclock"
	"mascbgmp/internal/wire"
)

// Neighbor describes a configured BGP peer.
type Neighbor struct {
	Router wire.RouterID
	Domain wire.DomainID
	// Internal marks a peer in the same domain (the full iBGP-like mesh
	// among a domain's border routers).
	Internal bool
}

// ExportFilter decides whether a route may be advertised to a neighbor.
// Filters implement the paper's multicast routing policies: "a provider
// domain could restrict the use of its resources by advertising only the
// group routes pertaining to its claimed address ranges and ... those
// received from its customer domains" (§4.2).
type ExportFilter func(to Neighbor, table wire.Table, rt wire.Route) bool

// ExportAll permits every route.
func ExportAll(Neighbor, wire.Table, wire.Route) bool { return true }

// Config parameterizes a Speaker.
type Config struct {
	Router wire.RouterID
	Domain wire.DomainID
	// Clock drives route-lifetime expiry; defaults to the real clock.
	Clock simclock.Clock
	// Send transmits an update to a configured neighbor. It is called
	// without internal locks held and must not block indefinitely.
	Send func(to wire.RouterID, u *wire.Update)
	// Export filters external advertisements; nil means ExportAll.
	Export ExportFilter
	// AggregateCovered, when true, suppresses external advertisement of
	// routes covered by one of this speaker's own originations — the
	// G-RIB aggregation of paper §4.3.2. (Enabled in all deployments;
	// exposed for the ablation benchmark.)
	AggregateCovered bool
	// OnBestChange, if set, is called after the best route for a prefix
	// changes, with lost=true when the prefix became unreachable. Called
	// without locks held. ctx is the causal trace context of whatever
	// triggered the change (an inbound update's span, a neighbor removal);
	// zero when untraced.
	OnBestChange func(table wire.Table, prefix addr.Prefix, lost bool, ctx wire.TraceContext)
	// Obs observes route advertisements, withdrawals, and best-route
	// changes, scoped by Domain/Router. Nil disables observation.
	Obs *obs.Observer
}

// Entry is a selected best route as exposed to lookups.
type Entry struct {
	Route wire.Route
	// NextHop is the peer to forward toward the route's origin; for
	// locally originated routes it is the speaker's own router ID.
	NextHop wire.RouterID
	// Local marks a route this speaker originated.
	Local bool
}

// Speaker is a BGP-lite speaker for one border router. Create with New;
// safe for concurrent use.
type Speaker struct {
	cfg Config

	mu        sync.Mutex
	neighbors map[wire.RouterID]Neighbor // guarded by mu
	tables    map[wire.Table]*rib        // guarded by mu
}

// New returns a configured Speaker.
func New(cfg Config) *Speaker {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Export == nil {
		cfg.Export = ExportAll
	}
	tables := map[wire.Table]*rib{}
	for _, t := range []wire.Table{wire.TableUnicast, wire.TableMRIB, wire.TableGRIB} {
		tables[t] = newRIB()
	}
	return &Speaker{
		cfg:       cfg,
		neighbors: map[wire.RouterID]Neighbor{},
		tables:    tables,
	}
}

// Router returns the speaker's router ID.
func (s *Speaker) Router() wire.RouterID { return s.cfg.Router }

// Domain returns the speaker's domain.
func (s *Speaker) Domain() wire.DomainID { return s.cfg.Domain }

// AddNeighbor registers a peer. Call Sync afterwards — once the remote side
// has also registered this speaker — to run the initial route exchange.
func (s *Speaker) AddNeighbor(n Neighbor) {
	s.mu.Lock()
	s.neighbors[n.Router] = n
	s.mu.Unlock()
}

// Sync sends the neighbor the exportable contents of every table: the
// initial route exchange after session establishment.
func (s *Speaker) Sync(to wire.RouterID) {
	s.mu.Lock()
	n, ok := s.neighbors[to]
	if !ok {
		s.mu.Unlock()
		return
	}
	var out []outUpdate
	for _, table := range []wire.Table{wire.TableUnicast, wire.TableMRIB, wire.TableGRIB} {
		r := s.tables[table]
		var routes []wire.Route
		for _, p := range r.sortedPrefixes() {
			b := r.best[p]
			if rt, ok := s.exportable(n, table, b); ok {
				routes = append(routes, rt)
				r.adjOutAdd(n.Router, p)
			}
		}
		if len(routes) > 0 {
			out = append(out, outUpdate{to: n.Router, u: &wire.Update{Table: table, Routes: routes}})
		}
	}
	s.mu.Unlock()
	s.deliver(out)
}

// RemoveNeighbor drops a peer and every route learned from it. ctx is the
// causal context of the teardown (the session-down span); the withdrawal
// reselection runs as a child span and the resulting updates carry it.
func (s *Speaker) RemoveNeighbor(id wire.RouterID, ctx wire.TraceContext) {
	sp := s.cfg.Obs.Tracer().BeginChild(ctx, obs.SpanBGPWithdraw,
		obs.Event{Domain: s.cfg.Domain, Router: s.cfg.Router, Peer: id})
	defer sp.End()
	s.mu.Lock()
	delete(s.neighbors, id)
	var changed []tablePrefix
	for table, r := range s.tables {
		for _, p := range r.withdrawPeer(id) {
			changed = append(changed, tablePrefix{table, p})
		}
		delete(r.adjOut, id)
	}
	sortTablePrefixes(changed)
	out, notes := s.reselectLocked(changed, sp.Context())
	s.mu.Unlock()
	s.deliver(out)
	s.notify(notes)
}

// Neighbors returns the configured neighbors sorted by router ID.
func (s *Speaker) Neighbors() []Neighbor {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Neighbor, 0, len(s.neighbors))
	for _, n := range s.neighbors {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Router < out[j].Router })
	return out
}

// Originate injects a locally sourced route (for the G-RIB: a MASC-won
// address range) and advertises it to peers.
func (s *Speaker) Originate(table wire.Table, rt wire.Route) {
	rt.Prefix = rt.Prefix.Canonical()
	s.mu.Lock()
	r := s.tables[table]
	r.local[rt.Prefix] = rt
	out, notes := s.reselectLocked([]tablePrefix{{table, rt.Prefix}}, wire.TraceContext{})
	s.mu.Unlock()
	s.deliver(out)
	s.notify(notes)
}

// WithdrawLocal removes a locally originated route.
func (s *Speaker) WithdrawLocal(table wire.Table, p addr.Prefix) {
	p = p.Canonical()
	s.mu.Lock()
	r := s.tables[table]
	delete(r.local, p)
	out, notes := s.reselectLocked([]tablePrefix{{table, p}}, wire.TraceContext{})
	s.mu.Unlock()
	s.deliver(out)
	s.notify(notes)
}

// HandleUpdate processes an update received from peer `from`. Unknown peers
// and looped routes are ignored. A traced update (stamped by the sender's
// reselection) gets a per-hop child span, and any updates this reselection
// propagates carry that span onward.
func (s *Speaker) HandleUpdate(from wire.RouterID, u *wire.Update) {
	sp := s.cfg.Obs.Tracer().BeginChild(wire.ContextOf(u), obs.SpanBGPUpdate,
		obs.Event{Domain: s.cfg.Domain, Router: s.cfg.Router, Peer: from, Table: u.Table})
	defer sp.End()
	s.mu.Lock()
	if _, ok := s.neighbors[from]; !ok {
		s.mu.Unlock()
		return
	}
	r := s.tables[u.Table]
	var changed []tablePrefix
	for _, p := range u.Withdrawn {
		p = p.Canonical()
		if r.adjInRemove(from, p) {
			changed = append(changed, tablePrefix{u.Table, p})
		}
	}
	for _, rt := range u.Routes {
		rt.Prefix = rt.Prefix.Canonical()
		if rt.HasLoop(s.cfg.Domain) {
			continue // AS-path loop: a route that already traversed us
		}
		if s.expired(rt) {
			continue
		}
		r.adjInAdd(from, rt)
		changed = append(changed, tablePrefix{u.Table, rt.Prefix})
	}
	out, notes := s.reselectLocked(changed, sp.Context())
	s.mu.Unlock()
	s.deliver(out)
	s.notify(notes)
}

// Lookup performs a longest-prefix-match in a table. ok is false when no
// covering unexpired route exists.
func (s *Speaker) Lookup(table wire.Table, a addr.Addr) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.tables[table]
	var best *selected
	for p, sel := range r.best {
		if !p.Contains(a) || s.expired(sel.route) {
			continue
		}
		if best == nil || p.Len > best.route.Prefix.Len {
			sel := sel
			best = &sel
		}
	}
	if best == nil {
		return Entry{}, false
	}
	return s.entryOf(*best), true
}

// LookupBackup longest-prefix-matches like Lookup, then returns the
// runner-up candidate for the matched prefix — the route the decision
// process would select if the current best's source vanished. BGMP uses it
// to precompute a backup parent target per (*,G) so a peer failure can
// switch the tree over without waiting for the withdrawal to propagate.
// ok is false when the best route has no independent alternative.
func (s *Speaker) LookupBackup(table wire.Table, a addr.Addr) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.tables[table]
	var cur *selected
	var bestPrefix addr.Prefix
	for p, sel := range r.best {
		if !p.Contains(a) || s.expired(sel.route) {
			continue
		}
		if cur == nil || p.Len > bestPrefix.Len {
			sel := sel
			cur, bestPrefix = &sel, p
		}
	}
	if cur == nil {
		return Entry{}, false
	}
	var second selected
	found := false
	consider := func(cand selected) {
		if !found || cand.better(second) {
			second = cand
			found = true
		}
	}
	if rt, ok := r.local[bestPrefix]; ok && !cur.local && !s.expired(rt) {
		consider(selected{route: rt, local: true})
	}
	peers := r.adjIn[bestPrefix]
	ids := make([]wire.RouterID, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !cur.local && id == cur.from {
			continue
		}
		if rt := peers[id]; !s.expired(rt) {
			consider(selected{route: rt, from: id})
		}
	}
	if !found {
		return Entry{}, false
	}
	return s.entryOf(second), true
}

// LookupPrefix returns the best route for an exact prefix.
func (s *Speaker) LookupPrefix(table wire.Table, p addr.Prefix) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sel, ok := s.tables[table].best[p.Canonical()]
	if !ok || s.expired(sel.route) {
		return Entry{}, false
	}
	return s.entryOf(sel), true
}

// Table returns a snapshot of a table's best routes sorted by prefix; the
// paper's "G-RIB size" is len(Table(wire.TableGRIB)).
func (s *Speaker) Table(table wire.Table) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.tables[table]
	out := make([]Entry, 0, len(r.best))
	for _, p := range r.sortedPrefixes() {
		sel := r.best[p]
		if s.expired(sel.route) {
			continue
		}
		out = append(out, s.entryOf(sel))
	}
	return out
}

// Sweep removes expired routes from every table, withdrawing them from
// peers. Call it periodically (MASC lifetimes are long, so hourly is fine).
func (s *Speaker) Sweep() {
	s.mu.Lock()
	var changed []tablePrefix
	for table, r := range s.tables {
		for p, rt := range r.local {
			if s.expired(rt) {
				delete(r.local, p)
				changed = append(changed, tablePrefix{table, p})
			}
		}
		for p, peers := range r.adjIn {
			for id, rt := range peers {
				if s.expired(rt) {
					delete(peers, id)
					changed = append(changed, tablePrefix{table, p})
				}
			}
			if len(peers) == 0 {
				delete(r.adjIn, p)
			}
		}
	}
	sortTablePrefixes(changed)
	out, notes := s.reselectLocked(changed, wire.TraceContext{})
	s.mu.Unlock()
	s.deliver(out)
	s.notify(notes)
}

func (s *Speaker) expired(rt wire.Route) bool {
	return rt.ExpireUnix != 0 && uint64(s.cfg.Clock.Now().Unix()) >= rt.ExpireUnix
}

func (s *Speaker) entryOf(sel selected) Entry {
	e := Entry{Route: sel.route.Clone(), NextHop: sel.from, Local: sel.local}
	if sel.local {
		e.NextHop = s.cfg.Router
	}
	return e
}

// tablePrefix names one possibly-changed table entry.
type tablePrefix struct {
	table  wire.Table
	prefix addr.Prefix
}

// sortTablePrefixes orders re-selection work by (table, prefix) so that
// update and notification order never depends on map iteration.
func sortTablePrefixes(ps []tablePrefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].table != ps[j].table {
			return ps[i].table < ps[j].table
		}
		return addr.Compare(ps[i].prefix, ps[j].prefix) < 0
	})
}

type outUpdate struct {
	to wire.RouterID
	u  *wire.Update
}

type note struct {
	table  wire.Table
	prefix addr.Prefix
	lost   bool
	ctx    wire.TraceContext
}

func (s *Speaker) deliver(out []outUpdate) {
	if s.cfg.Send == nil {
		return
	}
	for _, o := range out {
		s.cfg.Send(o.to, o.u)
		if s.cfg.Obs == nil {
			continue
		}
		for _, rt := range o.u.Routes {
			s.cfg.Obs.Emit(obs.Event{Kind: obs.BGPAnnounce, Domain: s.cfg.Domain,
				Router: s.cfg.Router, Peer: o.to, Table: o.u.Table, Prefix: rt.Prefix})
		}
		for _, p := range o.u.Withdrawn {
			s.cfg.Obs.Emit(obs.Event{Kind: obs.BGPWithdraw, Domain: s.cfg.Domain,
				Router: s.cfg.Router, Peer: o.to, Table: o.u.Table, Prefix: p})
		}
	}
}

func (s *Speaker) notify(notes []note) {
	if s.cfg.Obs != nil {
		for _, n := range notes {
			s.cfg.Obs.Emit(obs.Event{Kind: obs.BGPBestChange, Domain: s.cfg.Domain,
				Router: s.cfg.Router, Table: n.table, Prefix: n.prefix})
		}
	}
	if s.cfg.OnBestChange == nil {
		return
	}
	for _, n := range notes {
		s.cfg.OnBestChange(n.table, n.prefix, n.lost, n.ctx)
	}
}

// reselectLocked re-runs the decision process for the given prefixes and
// computes the updates to emit, stamping them (and the best-change notes)
// with ctx so downstream speakers and tree repair inherit the cause.
// Caller holds s.mu.
func (s *Speaker) reselectLocked(changed []tablePrefix, ctx wire.TraceContext) ([]outUpdate, []note) {
	seen := map[tablePrefix]bool{}
	// Pending per-peer updates, keyed by peer then table.
	pend := map[wire.RouterID]map[wire.Table]*wire.Update{}
	var notes []note
	add := func(to wire.RouterID, table wire.Table, f func(u *wire.Update)) {
		m := pend[to]
		if m == nil {
			m = map[wire.Table]*wire.Update{}
			pend[to] = m
		}
		u := m[table]
		if u == nil {
			u = &wire.Update{Table: table}
			wire.Stamp(u, ctx)
			m[table] = u
		}
		f(u)
	}
	for _, tp := range changed {
		if seen[tp] {
			continue
		}
		seen[tp] = true
		r := s.tables[tp.table]
		oldSel, hadOld := r.best[tp.prefix]
		newSel, hasNew := s.decide(r, tp.prefix)
		if hadOld && hasNew && oldSel.equal(newSel) {
			continue
		}
		if hasNew {
			r.best[tp.prefix] = newSel
		} else {
			delete(r.best, tp.prefix)
		}
		notes = append(notes, note{tp.table, tp.prefix, !hasNew, ctx})
		// Advertise or withdraw to each neighbor.
		for id, n := range s.neighbors {
			if hasNew {
				if rt, ok := s.exportable(n, tp.table, newSel); ok {
					r.adjOutAdd(id, tp.prefix)
					add(id, tp.table, func(u *wire.Update) { u.Routes = append(u.Routes, rt) })
					continue
				}
			}
			if r.adjOutHas(id, tp.prefix) {
				r.adjOutRemove(id, tp.prefix)
				add(id, tp.table, func(u *wire.Update) { u.Withdrawn = append(u.Withdrawn, tp.prefix) })
			}
		}
	}
	var out []outUpdate
	ids := make([]wire.RouterID, 0, len(pend))
	for id := range pend {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, table := range []wire.Table{wire.TableUnicast, wire.TableMRIB, wire.TableGRIB} {
			if u, ok := pend[id][table]; ok {
				out = append(out, outUpdate{to: id, u: u})
			}
		}
	}
	return out, notes
}

// decide runs the decision process for one prefix: a local origination
// wins; otherwise the shortest AS path, tie-broken by lowest advertising
// router ID. Expired candidates are skipped.
func (s *Speaker) decide(r *rib, p addr.Prefix) (selected, bool) {
	if rt, ok := r.local[p]; ok && !s.expired(rt) {
		return selected{route: rt, local: true}, true
	}
	var best selected
	found := false
	peers := r.adjIn[p]
	ids := make([]wire.RouterID, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rt := peers[id]
		if s.expired(rt) {
			continue
		}
		cand := selected{route: rt, from: id}
		if !found || cand.better(best) {
			best = cand
			found = true
		}
	}
	return best, found
}

// exportable applies the advertisement rules for neighbor n and returns the
// route as it should appear on the wire.
func (s *Speaker) exportable(n Neighbor, table wire.Table, sel selected) (wire.Route, bool) {
	if s.expired(sel.route) {
		return wire.Route{}, false
	}
	// Never echo a route to the peer it was learned from.
	if !sel.local && sel.from == n.Router {
		return wire.Route{}, false
	}
	if n.Internal {
		// iBGP split horizon over the full mesh: only locally originated
		// and externally learned routes go to internal peers.
		if !sel.local && s.isInternalLocked(sel.from) {
			return wire.Route{}, false
		}
		return sel.route.Clone(), true
	}
	// External export.
	if s.cfg.AggregateCovered && s.coveredByOwnOriginationLocked(table, sel) {
		return wire.Route{}, false
	}
	rt := sel.route.Clone()
	if !s.cfg.Export(n, table, rt) {
		return wire.Route{}, false
	}
	rt.ASPath = append([]wire.DomainID{s.cfg.Domain}, rt.ASPath...)
	if rt.HasLoop(n.Domain) {
		return wire.Route{}, false // would be rejected anyway
	}
	return rt, true
}

// coveredByOwnOrigination reports whether a route originated by this
// speaker's own domain (locally, or by another of the domain's border
// routers and learned over the internal mesh) strictly covers sel's prefix
// — in which case the paper's aggregation rule says not to advertise the
// more-specific route externally (§4.3.2: "the border routers of the
// parent domain need not propagate their children's group routes").
func (s *Speaker) coveredByOwnOriginationLocked(table wire.Table, sel selected) bool {
	r := s.tables[table]
	for p, rt := range r.local {
		if p.Len < sel.route.Prefix.Len && p.ContainsPrefix(sel.route.Prefix) && !s.expired(rt) {
			return true
		}
	}
	for p, b := range r.best {
		if wire.DomainID(b.route.Origin) == s.cfg.Domain &&
			p.Len < sel.route.Prefix.Len && p.ContainsPrefix(sel.route.Prefix) && !s.expired(b.route) {
			return true
		}
	}
	return false
}

func (s *Speaker) isInternalLocked(id wire.RouterID) bool {
	n, ok := s.neighbors[id]
	return ok && n.Internal
}

// selected is a best-route record.
type selected struct {
	route wire.Route
	from  wire.RouterID // zero for local
	local bool
}

func (a selected) equal(b selected) bool {
	if a.local != b.local || a.from != b.from {
		return false
	}
	if a.route.Prefix != b.route.Prefix || a.route.Origin != b.route.Origin ||
		a.route.ExpireUnix != b.route.ExpireUnix || len(a.route.ASPath) != len(b.route.ASPath) {
		return false
	}
	for i := range a.route.ASPath {
		if a.route.ASPath[i] != b.route.ASPath[i] {
			return false
		}
	}
	return true
}

// better implements the route preference order.
func (a selected) better(b selected) bool {
	if a.local != b.local {
		return a.local
	}
	if len(a.route.ASPath) != len(b.route.ASPath) {
		return len(a.route.ASPath) < len(b.route.ASPath)
	}
	return a.from < b.from
}

// String aids debugging.
func (e Entry) String() string {
	return fmt.Sprintf("%v via %d origin %d path %v", e.Route.Prefix, e.NextHop, e.Route.Origin, e.Route.ASPath)
}
