package bgp

import (
	"sort"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// rib holds one logical routing table's state: per-peer Adj-RIB-In, local
// originations, selected best routes, and per-peer Adj-RIB-Out bookkeeping
// (which prefixes we advertised, so withdraws can be generated).
type rib struct {
	local  map[addr.Prefix]wire.Route
	adjIn  map[addr.Prefix]map[wire.RouterID]wire.Route
	best   map[addr.Prefix]selected
	adjOut map[wire.RouterID]map[addr.Prefix]bool
}

func newRIB() *rib {
	return &rib{
		local:  map[addr.Prefix]wire.Route{},
		adjIn:  map[addr.Prefix]map[wire.RouterID]wire.Route{},
		best:   map[addr.Prefix]selected{},
		adjOut: map[wire.RouterID]map[addr.Prefix]bool{},
	}
}

func (r *rib) adjInAdd(from wire.RouterID, rt wire.Route) {
	m := r.adjIn[rt.Prefix]
	if m == nil {
		m = map[wire.RouterID]wire.Route{}
		r.adjIn[rt.Prefix] = m
	}
	m[from] = rt.Clone()
}

func (r *rib) adjInRemove(from wire.RouterID, p addr.Prefix) bool {
	m := r.adjIn[p]
	if m == nil {
		return false
	}
	if _, ok := m[from]; !ok {
		return false
	}
	delete(m, from)
	if len(m) == 0 {
		delete(r.adjIn, p)
	}
	return true
}

// withdrawPeer removes all routes learned from a peer and returns the
// affected prefixes.
func (r *rib) withdrawPeer(id wire.RouterID) []addr.Prefix {
	var out []addr.Prefix
	for p, m := range r.adjIn {
		if _, ok := m[id]; ok {
			delete(m, id)
			if len(m) == 0 {
				delete(r.adjIn, p)
			}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return addr.Compare(out[i], out[j]) < 0 })
	return out
}

func (r *rib) adjOutAdd(id wire.RouterID, p addr.Prefix) {
	m := r.adjOut[id]
	if m == nil {
		m = map[addr.Prefix]bool{}
		r.adjOut[id] = m
	}
	m[p] = true
}

func (r *rib) adjOutHas(id wire.RouterID, p addr.Prefix) bool { return r.adjOut[id][p] }

func (r *rib) adjOutRemove(id wire.RouterID, p addr.Prefix) { delete(r.adjOut[id], p) }

// sortedPrefixes returns the best-route prefixes in deterministic order.
func (r *rib) sortedPrefixes() []addr.Prefix {
	out := make([]addr.Prefix, 0, len(r.best))
	for p := range r.best {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return addr.Compare(out[i], out[j]) < 0 })
	return out
}
