package bgp

import (
	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// CustomerExportFilter implements the canonical provider-customer policy of
// paper §3/§4.2: toward providers and peers, a domain advertises only
// routes originated by itself or by its customer domains (so only traffic
// to/from its customers transits it); toward its own customers it
// advertises everything.
//
// self is the local domain; customers the set of (transitively reachable)
// customer domains; providerOrPeer the set of neighbor domains that are not
// customers. Neighbor domains absent from both sets are treated as
// providers/peers (the conservative choice).
func CustomerExportFilter(self wire.DomainID, customers map[wire.DomainID]bool) ExportFilter {
	return func(to Neighbor, table wire.Table, rt wire.Route) bool {
		if customers[to.Domain] {
			return true // customers receive full routes
		}
		return rt.Origin == self || customers[rt.Origin]
	}
}

// TableExportFilter restricts a filter to one table, permitting everything
// in the others. The paper's multicast policies act on group routes, so
// provider policies are usually wrapped as
// TableExportFilter(wire.TableGRIB, CustomerExportFilter(...)).
func TableExportFilter(table wire.Table, f ExportFilter) ExportFilter {
	return func(to Neighbor, t wire.Table, rt wire.Route) bool {
		if t != table {
			return true
		}
		return f(to, t, rt)
	}
}

// DenyPrefixFilter blocks routes covered by any of the given prefixes —
// selective non-propagation, the basic policy primitive ("if border router
// X does not advertise group route R to neighbor Y then Y will not be aware
// that it can use X to reach the root domain for R").
func DenyPrefixFilter(deny ...addr.Prefix) ExportFilter {
	return func(to Neighbor, table wire.Table, rt wire.Route) bool {
		for _, d := range deny {
			if d.ContainsPrefix(rt.Prefix) {
				return false
			}
		}
		return true
	}
}

// AndFilters permits a route only when every filter permits it.
func AndFilters(filters ...ExportFilter) ExportFilter {
	return func(to Neighbor, table wire.Table, rt wire.Route) bool {
		for _, f := range filters {
			if !f(to, table, rt) {
				return false
			}
		}
		return true
	}
}
