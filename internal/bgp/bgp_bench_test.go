package bgp

import (
	"fmt"
	"testing"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// loadedSpeaker returns a speaker with n G-RIB routes learned from one
// peer, roughly the paper's steady-state G-RIB scale at n≈175.
func loadedSpeaker(n int) *Speaker {
	s := New(Config{Router: 1, Domain: 1, AggregateCovered: true})
	s.AddNeighbor(Neighbor{Router: 2, Domain: 2})
	routes := make([]wire.Route, 0, n)
	for i := 0; i < n; i++ {
		routes = append(routes, wire.Route{
			Prefix: addr.Prefix{Base: addr.MakeAddr(224, byte(i/256), byte(i%256), 0), Len: 24}.Canonical(),
			ASPath: []wire.DomainID{2, 3},
			Origin: 3,
		})
	}
	s.HandleUpdate(2, &wire.Update{Table: wire.TableGRIB, Routes: routes})
	return s
}

func BenchmarkGRIBLookup175(b *testing.B) {
	s := loadedSpeaker(175) // the paper's steady-state G-RIB size
	a := addr.MakeAddr(224, 0, 87, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(wire.TableGRIB, a); !ok {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkGRIBLookup5000(b *testing.B) {
	s := loadedSpeaker(5000)
	a := addr.MakeAddr(224, 7, 87, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(wire.TableGRIB, a); !ok {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkHandleUpdateChurn(b *testing.B) {
	s := loadedSpeaker(500)
	up := &wire.Update{Table: wire.TableGRIB, Routes: []wire.Route{{
		Prefix: addr.MustParsePrefix("239.1.0.0/16"),
		ASPath: []wire.DomainID{2, 4},
		Origin: 4,
	}}}
	wd := &wire.Update{Table: wire.TableGRIB, Withdrawn: []addr.Prefix{addr.MustParsePrefix("239.1.0.0/16")}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HandleUpdate(2, up)
		s.HandleUpdate(2, wd)
	}
}

func BenchmarkDecisionProcessManyPeers(b *testing.B) {
	s := New(Config{Router: 1, Domain: 1})
	const peers = 8
	for p := 0; p < peers; p++ {
		s.AddNeighbor(Neighbor{Router: wire.RouterID(10 + p), Domain: wire.DomainID(10 + p)})
	}
	prefix := addr.MustParsePrefix("224.5.0.0/16")
	// Pre-load alternatives from every peer.
	for p := 0; p < peers; p++ {
		path := make([]wire.DomainID, 1+p%4)
		for j := range path {
			path[j] = wire.DomainID(20 + j)
		}
		s.HandleUpdate(wire.RouterID(10+p), &wire.Update{Table: wire.TableGRIB, Routes: []wire.Route{{
			Prefix: prefix, ASPath: path, Origin: 99,
		}}})
	}
	flip := &wire.Update{Table: wire.TableGRIB, Routes: []wire.Route{{
		Prefix: prefix, ASPath: []wire.DomainID{20}, Origin: 99,
	}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HandleUpdate(10, flip)
	}
}

func TestTableSnapshotSorted(t *testing.T) {
	s := loadedSpeaker(50)
	entries := s.Table(wire.TableGRIB)
	if len(entries) != 50 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if addr.Compare(entries[i-1].Route.Prefix, entries[i].Route.Prefix) >= 0 {
			t.Fatal("snapshot not sorted")
		}
	}
}

func TestSyncUnknownNeighborNoop(t *testing.T) {
	s := loadedSpeaker(5)
	s.Sync(99) // must not panic or send
}

func TestEntryString(t *testing.T) {
	s := loadedSpeaker(1)
	e := s.Table(wire.TableGRIB)[0]
	if e.String() == "" {
		t.Fatal("empty Entry string")
	}
	if fmt.Sprint(e) == "" {
		t.Fatal("unformattable entry")
	}
}
