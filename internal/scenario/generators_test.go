package scenario

import (
	"fmt"
	"math/rand"
	"testing"

	"mascbgmp/internal/topology"
)

// memView is the reference View: every group active, ops applied
// immediately — the same contract the experiments engine provides.
type memView struct {
	domains int
	members []map[topology.DomainID]bool
	order   [][]topology.DomainID
}

func newMemView(domains, groups int) *memView {
	v := &memView{domains: domains,
		members: make([]map[topology.DomainID]bool, groups),
		order:   make([][]topology.DomainID, groups)}
	for g := range v.members {
		v.members[g] = map[topology.DomainID]bool{}
	}
	return v
}

func (v *memView) Domains() int      { return v.domains }
func (v *memView) Active(g int) bool { return g >= 0 && g < len(v.members) }
func (v *memView) MemberCount(g int) int {
	return len(v.order[g])
}
func (v *memView) IsMember(g int, d topology.DomainID) bool { return v.members[g][d] }
func (v *memView) Member(g, i int) topology.DomainID        { return v.order[g][i] }

func (v *memView) apply(op Op) {
	if op.Join {
		if !v.members[op.Group][op.Domain] {
			v.members[op.Group][op.Domain] = true
			v.order[op.Group] = append(v.order[op.Group], op.Domain)
		}
		return
	}
	if v.members[op.Group][op.Domain] {
		delete(v.members[op.Group], op.Domain)
		ord := v.order[op.Group]
		for i, d := range ord {
			if d == op.Domain {
				v.order[op.Group] = append(ord[:i], ord[i+1:]...)
				break
			}
		}
	}
}

// run drives one generator over the workload's steps and returns the
// op stream as a single string (the byte-identity unit of comparison).
func run(t *testing.T, w WorkloadSpec, g *topology.Graph, seed int64) string {
	t.Helper()
	gen, err := Compile(w)
	if err != nil {
		t.Fatalf("Compile(%s): %v", w.Kind, err)
	}
	rng := rand.New(rand.NewSource(seed))
	gen.Start(Env{Graph: g, Groups: w.Groups}, rng)
	v := newMemView(g.NumDomains(), w.Groups)
	var stream []byte
	for s := 0; s < w.Steps(); s++ {
		gen.Emit(s, v, rng, func(op Op) {
			v.apply(op)
			join := byte('-')
			if op.Join {
				join = '+'
			}
			stream = append(stream, []byte(fmt.Sprintf("%d:%c%d@%d\n", s, join, op.Group, op.Domain))...)
		})
	}
	return string(stream)
}

func testGraph(t *testing.T) *topology.Graph {
	t.Helper()
	return topology.ASGraph(128, 16, 7)
}

// TestGeneratorDeterminism: same spec + seed => byte-identical op
// streams, and different seeds actually differ. This is the generator
// half of the -parallel 1 vs 8 guarantee (the bench half re-checks it
// through RunSuite).
func TestGeneratorDeterminism(t *testing.T) {
	g := testGraph(t)
	for _, b := range Builtins() {
		spec := MustParseBuiltin(b)
		w := spec.Workload
		// Shrink the exemplars so the sweep stays fast; shape knobs and
		// rng discipline are what matter here.
		w.Duration = 30 * w.Step
		if w.Kind == KindDiurnal {
			w.Period = 20 * w.Step
			w.PeakGroups, w.Groups = 12, 12
			w.BaseGroups = 0
		}
		if w.Kind == KindFlashCrowd {
			w.Ramp, w.Hold = 8*w.Step, 8*w.Step
			w.PeakMembers = 40
		}
		t.Run(b.Name, func(t *testing.T) {
			a := run(t, w, g, 42)
			if b := run(t, w, g, 42); a != b {
				t.Fatal("same seed produced different op streams")
			}
			if a == "" {
				t.Fatal("empty op stream")
			}
			if c := run(t, w, g, 43); a == c {
				t.Fatal("different seeds produced identical op streams")
			}
		})
	}
}

func TestDiurnalWaveShape(t *testing.T) {
	d := &Diurnal{StepsPerPeriod: 96, Base: 3, Peak: 51, Members: 4, groups: 51}
	if got := d.active(0); got != 3 {
		t.Errorf("active(trough) = %d, want base 3", got)
	}
	if got := d.active(48); got != 51 {
		t.Errorf("active(crest) = %d, want peak 51", got)
	}
	if got := d.active(96); got != 3 {
		t.Errorf("active(next trough) = %d, want base 3", got)
	}
	for s := 1; s <= 48; s++ {
		if d.active(s) < d.active(s-1) {
			t.Fatalf("wave not monotone on the rise at step %d", s)
		}
	}
}

func TestFlashCrowdTargetShape(t *testing.T) {
	f := &FlashCrowd{Hot: 2, Peak: 100, RampSteps: 10, HoldSteps: 5, Steps: 30}
	if got := f.target(9); got != 100 {
		t.Errorf("end of ramp = %d, want 100", got)
	}
	if got := f.target(12); got != 100 {
		t.Errorf("hold = %d, want 100", got)
	}
	if got := f.target(29); got != 0 {
		t.Errorf("last step = %d, want 0 (crowd fully drained)", got)
	}
	for s := 1; s < 10; s++ {
		if f.target(s) < f.target(s-1) {
			t.Fatalf("ramp not monotone at step %d", s)
		}
	}
	for s := 16; s < 30; s++ {
		if f.target(s) > f.target(s-1) {
			t.Fatalf("decay not monotone at step %d", s)
		}
	}
}

// TestFlashCrowdReachesPeak runs the generator end to end and checks
// the hot groups actually hit the (possibly capped) peak during hold.
func TestFlashCrowdReachesPeak(t *testing.T) {
	g := testGraph(t)
	w := WorkloadSpec{Kind: KindFlashCrowd, Groups: 8, HotGroups: 2,
		PeakMembers: 500, // above the 90% cap of 128 domains
		Duration:    30, Step: 1, Ramp: 10, Hold: 10}
	gen, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	gen.Start(Env{Graph: g, Groups: w.Groups}, rng)
	cap90 := 128 * 9 / 10
	v := newMemView(128, w.Groups)
	peak := 0
	for s := 0; s < w.Steps(); s++ {
		gen.Emit(s, v, rng, v.apply)
		if c := v.MemberCount(0); c > peak {
			peak = c
		}
	}
	if peak != cap90 {
		t.Errorf("hot group peaked at %d members, want capped peak %d", peak, cap90)
	}
	if final := v.MemberCount(0); final != 0 {
		t.Errorf("hot group still has %d members after decay", final)
	}
}

// TestAffinityLocality: with P=1 every member comes from the group's
// home locality; with P=0 membership spreads beyond any 8-domain ball.
func TestAffinityLocality(t *testing.T) {
	g := testGraph(t)
	w := WorkloadSpec{Kind: KindAffinity, Groups: 4, EventsPerStep: 200,
		Affinity: 1.0, Locality: 8, Duration: 10, Step: 1}
	gen, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	aff := gen.(*Affinity)
	rng := rand.New(rand.NewSource(5))
	gen.Start(Env{Graph: g, Groups: w.Groups}, rng)
	v := newMemView(128, w.Groups)
	for s := 0; s < w.Steps(); s++ {
		gen.Emit(s, v, rng, v.apply)
	}
	for gi := 0; gi < w.Groups; gi++ {
		home := map[topology.DomainID]bool{}
		for _, d := range aff.home[gi] {
			home[d] = true
		}
		if len(aff.home[gi]) != 8 {
			t.Errorf("group %d home locality has %d domains, want 8", gi, len(aff.home[gi]))
		}
		for _, d := range v.order[gi] {
			if !home[d] {
				t.Errorf("group %d member %d outside its home locality", gi, d)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := testGraph(t)
	w := WorkloadSpec{Kind: KindZipf, Groups: 64, EventsPerStep: 500,
		ZipfS: 1.5, ZipfV: 1, Duration: 4, Step: 1}
	gen, err := Compile(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	gen.Start(Env{Graph: g, Groups: w.Groups}, rng)
	v := newMemView(128, w.Groups)
	counts := make([]int, w.Groups)
	for s := 0; s < w.Steps(); s++ {
		gen.Emit(s, v, rng, func(op Op) { v.apply(op); counts[op.Group]++ })
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	total := 0
	for _, c := range counts {
		total += c
	}
	if head*2 < total {
		t.Errorf("top-4 groups got %d of %d ops; zipf skew too weak", head, total)
	}
}

func TestCompileRejectsBadSpecs(t *testing.T) {
	cases := []WorkloadSpec{
		{Kind: "mystery"},
		{Kind: KindZipf, Groups: 8, ZipfS: 0.5, ZipfV: 1, EventsPerStep: 1},
		{Kind: KindFlashCrowd, Groups: 8, HotGroups: 1, PeakMembers: 5,
			Duration: 10, Step: 1, Ramp: 6, Hold: 6},
		{Kind: KindDiurnal, Groups: 8, Step: 1, Period: 1, BaseGroups: 0, PeakGroups: 8},
	}
	for _, w := range cases {
		if _, err := Compile(w); err == nil {
			t.Errorf("Compile accepted %+v", w)
		}
	}
}
