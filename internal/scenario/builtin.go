package scenario

// The exemplar workload configs. The checked-in scenarios/ directory
// holds these same bytes as files (a test pins the equivalence), and
// internal/bench parses the constants to register the built-in
// `workloads` suite — so the exemplars are exercised by every test run
// and stay valid as the grammar evolves.

// BuiltinFlashCrowdTOML is scenarios/flash-crowd.toml: a crowd of
// receiver domains converging on a few groups, the join-aggregation
// stress case.
const BuiltinFlashCrowdTOML = `# Flash crowd: most of a 1024-domain internetwork converges on four hot
# groups in forty simulated minutes, holds, then drains away. The
# simultaneous joins collapse onto shared tree branches, so the root
# domains absorb almost all of them — join-aggregation fan-in is the
# headline metric. The other sixty groups churn uniformly underneath.

name = "flash-crowd"
description = "crowd of receiver domains converging on a few hot groups, stressing root-domain join aggregation"
trials = 3

[topology]
kind = "as"
domains = 1024
peering = 128

[workload]
kind = "flash-crowd"
groups = 64
hot-groups = 4
root-domains = 4
duration = "2h"
step = "1m"
ramp = "40m"
hold = "20m"
peak-members = 900
background-events-per-step = 20
sends-per-group = 4
`

// BuiltinDiurnalTOML is scenarios/diurnal.toml: the MASC
// expand/collapse round trip over two simulated days.
const BuiltinDiurnalTOML = `# Diurnal wave: live-group demand swings from zero to 192 groups and
# back once per simulated day, for two days. The morning ramp forces
# the root allocators through the 75%-occupancy prefix-doubling rules;
# the overnight trough lets the two-hour leases and four-hour claims
# expire, so drained prefixes collapse back to the ledger before the
# second day re-expands them.

name = "diurnal"
description = "two-day sinusoidal demand wave driving MASC 75%-occupancy prefix expansion and collapse"
trials = 3

[topology]
kind = "as"
domains = 512
peering = 64

[workload]
kind = "diurnal"
groups = 192
root-domains = 4
duration = "48h"
step = "15m"
period = "24h"
base-groups = 0
peak-groups = 192
members-per-group = 6
addresses-per-group = 4
lease-lifetime = "2h"
claim-lifetime = "4h"
sends-per-group = 2
`

// BuiltinZipfTOML is scenarios/zipf.toml: Zipf-skewed group popularity.
const BuiltinZipfTOML = `# Zipf popularity: group picks follow a Zipf(1.3) draw, so a handful of
# heavy-hitter groups receive most of the 24000 membership toggles and
# grow internetwork-spanning trees while the tail stays nearly idle.

name = "zipf"
description = "Zipf-skewed group popularity: heavy-hitter groups dominate the membership stream"
trials = 3

[topology]
kind = "as"
domains = 512
peering = 64

[workload]
kind = "zipf"
groups = 256
root-domains = 8
duration = "2h"
step = "1m"
events-per-step = 200
zipf-s = 1.3
zipf-v = 1.0
sends-per-group = 2
`

// BuiltinAffinityTOML is scenarios/affinity.toml: topology-correlated
// membership.
const BuiltinAffinityTOML = `# Affinity: every group has a home locality (the 24 domains nearest a
# random center), and 85% of joins come from it. Correlated members
# share most of their path to the root, so trees stay compact — compare
# mean tree size against the zipf scenario at the same event volume.

name = "affinity"
description = "topology-correlated membership: 85% of joins come from each group's home locality"
trials = 3

[topology]
kind = "as"
domains = 512
peering = 64

[workload]
kind = "affinity"
groups = 256
root-domains = 8
duration = "2h"
step = "1m"
events-per-step = 200
affinity = 0.85
locality = 24
sends-per-group = 2
`

// Builtin is one named exemplar config.
type Builtin struct {
	Name string
	TOML string
}

// Builtins returns the exemplar configs in presentation order.
func Builtins() []Builtin {
	return []Builtin{
		{KindFlashCrowd, BuiltinFlashCrowdTOML},
		{KindDiurnal, BuiltinDiurnalTOML},
		{KindZipf, BuiltinZipfTOML},
		{KindAffinity, BuiltinAffinityTOML},
	}
}

// MustParseBuiltin parses one of the Builtin* constants; it panics on
// error because the constants are compiled into the binary and covered
// by tests — a failure is a programming error.
func MustParseBuiltin(b Builtin) Spec {
	spec, err := Parse("builtin:"+b.Name, []byte(b.TOML))
	if err != nil {
		panic("scenario: builtin " + b.Name + ": " + err.Error())
	}
	return spec
}
