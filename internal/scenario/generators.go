package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mascbgmp/internal/topology"
)

// Op is one membership operation a generator emits: domain d joins or
// leaves group g.
type Op struct {
	Group  int
	Domain topology.DomainID
	Join   bool
}

// View is the read-only membership state a generator consults while
// emitting. The engine applies each emitted op immediately, so the view
// reflects ops emitted earlier in the same step.
type View interface {
	// Domains is the topology size.
	Domains() int
	// Active reports whether group slot g exists (engines may have
	// dead slots when address allocation failed).
	Active(g int) bool
	// IsMember reports whether d is a member of group g.
	IsMember(g int, d topology.DomainID) bool
	// MemberCount is group g's current member count.
	MemberCount(g int) int
	// Member returns group g's i-th member (0 <= i < MemberCount(g)),
	// for random leave selection.
	Member(g, i int) topology.DomainID
}

// Env is the fixed context a generator binds to before stepping.
type Env struct {
	Graph  *topology.Graph
	Groups int
}

// Generator produces a workload's membership-op stream, one Emit per
// engine step. Implementations draw randomness only from the rng they
// are handed — the engine passes the same per-trial stream to Start and
// every Emit, so (spec, seed) fully determines the op sequence. A
// Generator is single-use: Compile a fresh one per run.
type Generator interface {
	Name() string
	// Start binds the generator to the run's topology and group count.
	Start(env Env, rng *rand.Rand)
	// Emit appends step s's ops via emit. Ops take effect immediately:
	// v reflects everything emitted so far.
	Emit(s int, v View, rng *rand.Rand, emit func(Op))
}

// Compile builds the generator a validated workload spec names. It
// rejects specs that did not come through Parse-level validation.
func Compile(w WorkloadSpec) (Generator, error) {
	switch w.Kind {
	case KindUniform:
		return &Uniform{PerStep: w.EventsPerStep}, nil
	case KindZipf:
		if w.ZipfS <= 1 || w.ZipfV < 1 || w.Groups < 2 {
			return nil, fmt.Errorf("scenario: zipf needs s > 1, v >= 1, groups >= 2 (s=%g v=%g groups=%d)",
				w.ZipfS, w.ZipfV, w.Groups)
		}
		return &Zipf{PerStep: w.EventsPerStep, S: w.ZipfS, V: w.ZipfV}, nil
	case KindAffinity:
		if w.ZipfS != 0 && (w.ZipfS <= 1 || w.ZipfV < 1) {
			return nil, fmt.Errorf("scenario: affinity zipf group pick needs s > 1, v >= 1 (s=%g v=%g)", w.ZipfS, w.ZipfV)
		}
		return &Affinity{PerStep: w.EventsPerStep, P: w.Affinity, Locality: w.Locality,
			S: w.ZipfS, V: w.ZipfV}, nil
	case KindFlashCrowd:
		steps := w.Steps()
		ramp := int(w.Ramp / w.Step)
		hold := int(w.Hold / w.Step)
		if ramp < 1 || ramp+hold >= steps {
			return nil, fmt.Errorf("scenario: flash-crowd phases do not fit: ramp=%d hold=%d of %d steps", ramp, hold, steps)
		}
		return &FlashCrowd{Hot: w.HotGroups, Peak: w.PeakMembers,
			RampSteps: ramp, HoldSteps: hold, Steps: steps,
			BackgroundPerStep: w.BackgroundPerStep}, nil
	case KindDiurnal:
		if w.Step <= 0 || w.Period < 2*w.Step || w.BaseGroups >= w.PeakGroups {
			return nil, fmt.Errorf("scenario: diurnal needs period >= 2*step and base < peak")
		}
		return &Diurnal{StepsPerPeriod: float64(w.Period) / float64(w.Step),
			Base: w.BaseGroups, Peak: w.PeakGroups, Members: w.MembersPerGroup}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown workload kind %q", w.Kind)
	}
}

// Uniform is the classic churn model: per event, a uniform group and a
// uniform domain, toggling membership. It reproduces the scale-churn
// suite's historical rng stream exactly (group draw, activity check,
// domain draw), so feeding it through the engine leaves the checked-in
// BENCH_scale.json baseline bit-identical.
type Uniform struct {
	// PerStep is the number of toggle events per engine step.
	PerStep int
	groups  int
}

func (u *Uniform) Name() string { return KindUniform }

func (u *Uniform) Start(env Env, _ *rand.Rand) { u.groups = env.Groups }

func (u *Uniform) Emit(_ int, v View, rng *rand.Rand, emit func(Op)) {
	per := u.PerStep
	if per < 1 {
		per = 1
	}
	for i := 0; i < per; i++ {
		g := rng.Intn(u.groups)
		if !v.Active(g) {
			continue
		}
		d := topology.DomainID(rng.Intn(v.Domains()))
		emit(Op{Group: g, Domain: d, Join: !v.IsMember(g, d)})
	}
}

// Zipf skews group popularity: the group index is drawn from a Zipf
// distribution (rank 0 hottest), the domain uniformly, toggling
// membership. Heavy-hitter groups grow large trees while the tail stays
// nearly idle — the skew the dynamic-multicast-routing comparison papers
// use to separate algorithms.
type Zipf struct {
	PerStep int
	S, V    float64
	groups  int
	z       *rand.Zipf
}

func (z *Zipf) Name() string { return KindZipf }

func (z *Zipf) Start(env Env, rng *rand.Rand) {
	z.groups = env.Groups
	z.z = rand.NewZipf(rng, z.S, z.V, uint64(env.Groups-1))
}

func (z *Zipf) Emit(_ int, v View, rng *rand.Rand, emit func(Op)) {
	for i := 0; i < z.PerStep; i++ {
		g := int(z.z.Uint64())
		if !v.Active(g) {
			continue
		}
		d := topology.DomainID(rng.Intn(v.Domains()))
		emit(Op{Group: g, Domain: d, Join: !v.IsMember(g, d)})
	}
}

// Affinity correlates membership with topology: each group gets a home
// locality (the Locality domains nearest a random center, BFS metric),
// and a join draws its domain from that locality with probability P.
// Correlated members share most of their path to the root, so trees
// stay compact — the locality effect the uniform model cannot show.
type Affinity struct {
	PerStep  int
	P        float64
	Locality int
	// S and V enable a Zipf group pick when S > 0; S == 0 keeps it
	// uniform so locality is measured orthogonally to popularity skew.
	S, V   float64
	groups int
	z      *rand.Zipf
	home   [][]topology.DomainID
}

func (a *Affinity) Name() string { return KindAffinity }

func (a *Affinity) Start(env Env, rng *rand.Rand) {
	a.groups = env.Groups
	if a.S > 0 {
		a.z = rand.NewZipf(rng, a.S, a.V, uint64(env.Groups-1))
	}
	n := env.Graph.NumDomains()
	size := a.Locality
	if size > n {
		size = n
	}
	a.home = make([][]topology.DomainID, env.Groups)
	for g := range a.home {
		center := topology.DomainID(rng.Intn(n))
		dist, _ := env.Graph.BFS(center)
		ids := make([]topology.DomainID, n)
		for i := range ids {
			ids[i] = topology.DomainID(i)
		}
		// Nearest-first, ties by ID; unreachable (-1) domains sort last
		// and are trimmed below.
		sort.Slice(ids, func(i, j int) bool {
			di, dj := dist[ids[i]], dist[ids[j]]
			if di < 0 {
				di = n + 1
			}
			if dj < 0 {
				dj = n + 1
			}
			if di != dj {
				return di < dj
			}
			return ids[i] < ids[j]
		})
		reach := size
		for reach > 0 && dist[ids[reach-1]] < 0 {
			reach--
		}
		if reach == 0 {
			reach = 1 // the center itself
		}
		a.home[g] = ids[:reach:reach]
	}
}

func (a *Affinity) Emit(_ int, v View, rng *rand.Rand, emit func(Op)) {
	for i := 0; i < a.PerStep; i++ {
		var g int
		if a.z != nil {
			g = int(a.z.Uint64())
		} else {
			g = rng.Intn(a.groups)
		}
		if !v.Active(g) {
			continue
		}
		var d topology.DomainID
		if rng.Float64() < a.P {
			d = a.home[g][rng.Intn(len(a.home[g]))]
		} else {
			d = topology.DomainID(rng.Intn(v.Domains()))
		}
		emit(Op{Group: g, Domain: d, Join: !v.IsMember(g, d)})
	}
}

// FlashCrowd converges a crowd on a few hot groups: groups 0..Hot-1 ramp
// linearly to Peak member domains over RampSteps, hold for HoldSteps,
// and decay linearly back to zero by the last step, while the remaining
// groups see BackgroundPerStep uniform toggles per step. The
// simultaneous joins along shared paths are exactly what BGMP join
// aggregation at the root domain is supposed to absorb.
type FlashCrowd struct {
	Hot               int
	Peak              int
	RampSteps         int
	HoldSteps         int
	Steps             int
	BackgroundPerStep int
	groups            int
}

func (f *FlashCrowd) Name() string { return KindFlashCrowd }

func (f *FlashCrowd) Start(env Env, _ *rand.Rand) {
	f.groups = env.Groups
	// The crowd cannot exceed the topology; cap at 90% so random
	// non-member draws keep a workable hit rate at the peak.
	if limit := env.Graph.NumDomains() * 9 / 10; f.Peak > limit {
		f.Peak = limit
	}
	if f.Peak < 1 {
		f.Peak = 1
	}
}

// target returns the hot-group member target at step s.
func (f *FlashCrowd) target(s int) int {
	switch {
	case s < f.RampSteps:
		return f.Peak * (s + 1) / f.RampSteps
	case s < f.RampSteps+f.HoldSteps:
		return f.Peak
	default:
		decay := f.Steps - f.RampSteps - f.HoldSteps
		left := f.Steps - 1 - s
		return f.Peak * left / decay
	}
}

func (f *FlashCrowd) Emit(s int, v View, rng *rand.Rand, emit func(Op)) {
	tgt := f.target(s)
	for g := 0; g < f.Hot; g++ {
		if !v.Active(g) {
			continue
		}
		moveToward(g, tgt, v, rng, emit)
	}
	for i := 0; i < f.BackgroundPerStep; i++ {
		g := f.Hot + rng.Intn(f.groups-f.Hot)
		if !v.Active(g) {
			continue
		}
		d := topology.DomainID(rng.Intn(v.Domains()))
		emit(Op{Group: g, Domain: d, Join: !v.IsMember(g, d)})
	}
}

// Diurnal swings the live-group count between Base and Peak on a
// (1-cos)/2 wave: groups 0..A(t)-1 hold Members member domains each,
// the rest are empty. Rising demand makes every root allocator lease
// more blocks — forcing §4.3.3 prefix doublings once occupancy passes
// the 75% target — and the trough lets leases and then claims expire,
// draining holdings until they collapse back to the ledger.
type Diurnal struct {
	StepsPerPeriod float64
	Base, Peak     int
	Members        int
	groups         int
}

func (d *Diurnal) Name() string { return KindDiurnal }

func (d *Diurnal) Start(env Env, _ *rand.Rand) { d.groups = env.Groups }

// active returns the live-group target at step s: Base at the trough
// (t = 0 mod period), Peak at the crest (t = period/2).
func (d *Diurnal) active(s int) int {
	phase := 2 * math.Pi * float64(s) / d.StepsPerPeriod
	wave := (1 - math.Cos(phase)) / 2
	a := d.Base + int(math.Round(float64(d.Peak-d.Base)*wave))
	if a > d.groups {
		a = d.groups
	}
	return a
}

func (d *Diurnal) Emit(s int, v View, rng *rand.Rand, emit func(Op)) {
	live := d.active(s)
	for g := 0; g < d.groups; g++ {
		if !v.Active(g) {
			continue
		}
		want := 0
		if g < live {
			want = d.Members
		}
		moveToward(g, want, v, rng, emit)
	}
}

// moveToward emits joins of random non-member domains (or leaves of
// random members) until group g's member count reaches want. The count
// is re-read from the view after every op — the engine may decline an
// op (unreachable domain in a file topology) — and join draws carry a
// deterministic attempt budget so a near-full topology cannot spin.
func moveToward(g, want int, v View, rng *rand.Rand, emit func(Op)) {
	if cur := v.MemberCount(g); want > cur {
		for budget := 20 * (want - cur + 5); v.MemberCount(g) < want && budget > 0; budget-- {
			d := topology.DomainID(rng.Intn(v.Domains()))
			if v.IsMember(g, d) {
				continue
			}
			emit(Op{Group: g, Domain: d, Join: true})
		}
		return
	}
	for v.MemberCount(g) > want {
		d := v.Member(g, rng.Intn(v.MemberCount(g)))
		emit(Op{Group: g, Domain: d, Join: false})
	}
}
