package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Spec is one parsed, validated scenario file: a topology to build, a
// workload to run over it, and the suite metadata the benchmark registry
// needs. Seeds are deliberately absent — per-trial seeds always derive
// from the harness suite seed so file-loaded scenarios obey the same
// determinism discipline as built-in suites.
type Spec struct {
	// Name is the registry name the scenario runs under.
	Name string
	// Description is the one-line summary benchsuite -list prints.
	Description string
	// Trials is the suite's default trial count.
	Trials int

	Topology TopologySpec
	Workload WorkloadSpec
}

// TopologySpec selects the inter-domain graph.
type TopologySpec struct {
	// Kind is "as" (preferential-attachment AS graph), "hierarchy"
	// (the regular Fig 2 provider hierarchy), or "file" (a topogen
	// edge-list file).
	Kind string
	// Domains and Peering parameterize kind "as".
	Domains, Peering int
	// Top and Children parameterize kind "hierarchy".
	Top, Children int
	// Path locates the edge-list file for kind "file". ParseFile
	// resolves it relative to the scenario file's directory.
	Path string
}

// Workload kinds.
const (
	KindUniform    = "uniform"
	KindFlashCrowd = "flash-crowd"
	KindDiurnal    = "diurnal"
	KindZipf       = "zipf"
	KindAffinity   = "affinity"
)

// WorkloadSpec is the composable workload section: the knobs every
// generator shares plus the kind-specific ones. Validation rejects keys
// that do not belong to the declared kind, so a config cannot silently
// carry a dead knob.
type WorkloadSpec struct {
	// Kind names the membership generator (Kind* constants).
	Kind string
	// Groups is the number of group slots.
	Groups int
	// RootDomains is how many best-connected domains run MASC
	// allocators and root the groups (round-robin assignment).
	RootDomains int
	// Duration is the simulated span; Step is the engine tick. The
	// run executes Duration/Step steps.
	Duration, Step time.Duration
	// SendsPerGroup is the steady-state packets per live group after
	// the membership phase.
	SendsPerGroup int
	// AddressesPerGroup is the MAAS block size a live group leases
	// from its root's allocator.
	AddressesPerGroup int
	// LeaseLifetime bounds each group's address lease; live groups
	// re-lease when it lapses, idle groups let it expire — that decay
	// is what drives allocator occupancy back down. Zero means the
	// whole run.
	LeaseLifetime time.Duration
	// ClaimLifetime is the MASC claim lifetime the root allocators
	// use (the paper's default is 30 days; diurnal runs use hours so
	// drained claims collapse within the simulated window).
	ClaimLifetime time.Duration

	// EventsPerStep is the op rate for uniform/zipf/affinity.
	EventsPerStep int
	// ZipfS and ZipfV parameterize the Zipf group-popularity draw
	// (s > 1, v >= 1). For affinity, ZipfS == 0 keeps the group pick
	// uniform.
	ZipfS, ZipfV float64
	// Affinity and Locality parameterize affinity: each group gets a
	// home locality of the Locality nearest domains around a random
	// center, and a new member is drawn from it with probability
	// Affinity (uniform otherwise).
	Affinity float64
	Locality int

	// HotGroups, PeakMembers, Ramp, Hold, and BackgroundPerStep
	// parameterize flash-crowd: HotGroups groups ramp to PeakMembers
	// member domains over Ramp, stay for Hold, and decay for the rest
	// of the run while BackgroundPerStep uniform ops churn the other
	// groups.
	HotGroups         int
	PeakMembers       int
	Ramp, Hold        time.Duration
	BackgroundPerStep int

	// Period, BaseGroups, PeakGroups, and MembersPerGroup
	// parameterize diurnal: the live-group count swings between
	// BaseGroups and PeakGroups on a (1-cos)/2 wave of the given
	// Period, each live group holding MembersPerGroup members.
	Period                 time.Duration
	BaseGroups, PeakGroups int
	MembersPerGroup        int
}

// Steps returns the number of engine steps the workload runs.
func (w WorkloadSpec) Steps() int {
	if w.Step <= 0 {
		return 1
	}
	n := int(w.Duration / w.Step)
	if n < 1 {
		n = 1
	}
	return n
}

// ParseFile reads and parses a scenario file, resolving a file-kind
// topology path relative to the scenario file's directory.
func ParseFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, &ParseError{File: path, Msg: err.Error()}
	}
	spec, err := Parse(path, data)
	if err != nil {
		return Spec{}, err
	}
	if spec.Topology.Kind == "file" && !filepath.IsAbs(spec.Topology.Path) {
		spec.Topology.Path = filepath.Join(filepath.Dir(path), spec.Topology.Path)
	}
	return spec, nil
}

// Parse parses scenario-file bytes. file labels error positions.
func Parse(file string, data []byte) (Spec, error) {
	d, err := parseTOML(file, data)
	if err != nil {
		return Spec{}, err
	}
	var spec Spec

	top := newReader(d, "")
	spec.Name = top.requiredStr("name")
	spec.Description = top.str("description", "")
	spec.Trials = top.num("trials", 3)
	if err := top.finish(); err != nil {
		return Spec{}, err
	}
	if spec.Name != "" && !validName(spec.Name) {
		return Spec{}, &ParseError{file, top.sec.keys["name"].line,
			fmt.Sprintf("scenario name %q: use lowercase letters, digits, dashes", spec.Name)}
	}
	if spec.Trials < 1 {
		return Spec{}, &ParseError{file, top.sec.keys["trials"].line, "trials must be >= 1"}
	}

	if err := decodeTopology(d, &spec.Topology); err != nil {
		return Spec{}, err
	}
	if err := decodeWorkload(d, &spec.Workload); err != nil {
		return Spec{}, err
	}
	for _, name := range d.order {
		if name != "" && name != "topology" && name != "workload" {
			return Spec{}, &ParseError{file, d.sections[name].line,
				fmt.Sprintf("unknown section [%s] (expected [topology] and [workload])", name)}
		}
	}
	return spec, nil
}

func decodeTopology(d *doc, ts *TopologySpec) error {
	r := newReader(d, "topology")
	if r.sec == nil {
		return &ParseError{d.file, 0, "missing [topology] section"}
	}
	ts.Kind = r.requiredStr("kind")
	switch ts.Kind {
	case "as":
		ts.Domains = r.num("domains", 512)
		ts.Peering = r.num("peering", 64)
	case "hierarchy":
		ts.Top = r.num("top", 8)
		ts.Children = r.num("children", 8)
	case "file":
		ts.Path = r.requiredStr("path")
	case "":
		// requiredStr already recorded the error.
	default:
		return &ParseError{d.file, r.sec.keys["kind"].line,
			fmt.Sprintf("unknown topology kind %q (want as, hierarchy, or file)", ts.Kind)}
	}
	if err := r.finish(); err != nil {
		return err
	}
	if ts.Kind == "as" && (ts.Domains < 2 || ts.Peering < 0) {
		return &ParseError{d.file, r.sec.line, "as topology needs domains >= 2 and peering >= 0"}
	}
	if ts.Kind == "hierarchy" && (ts.Top < 1 || ts.Children < 0) {
		return &ParseError{d.file, r.sec.line, "hierarchy topology needs top >= 1 and children >= 0"}
	}
	return nil
}

func decodeWorkload(d *doc, w *WorkloadSpec) error {
	r := newReader(d, "workload")
	if r.sec == nil {
		return &ParseError{d.file, 0, "missing [workload] section"}
	}
	w.Kind = r.requiredStr("kind")
	w.Groups = r.num("groups", 64)
	w.RootDomains = r.num("root-domains", 4)
	w.Duration = r.dur("duration", time.Hour)
	w.Step = r.dur("step", time.Minute)
	w.SendsPerGroup = r.num("sends-per-group", 2)
	w.AddressesPerGroup = r.num("addresses-per-group", 1)
	w.LeaseLifetime = r.dur("lease-lifetime", 0)
	w.ClaimLifetime = r.dur("claim-lifetime", 30*24*time.Hour)

	switch w.Kind {
	case KindUniform:
		w.EventsPerStep = r.num("events-per-step", 1)
	case KindZipf:
		w.EventsPerStep = r.num("events-per-step", 1)
		w.ZipfS = r.float("zipf-s", 1.2)
		w.ZipfV = r.float("zipf-v", 1.0)
	case KindAffinity:
		w.EventsPerStep = r.num("events-per-step", 1)
		w.ZipfS = r.float("zipf-s", 0)
		w.ZipfV = r.float("zipf-v", 1.0)
		w.Affinity = r.float("affinity", 0.8)
		w.Locality = r.num("locality", 16)
	case KindFlashCrowd:
		w.HotGroups = r.num("hot-groups", 1)
		w.PeakMembers = r.num("peak-members", 0)
		w.Ramp = r.dur("ramp", w.Duration/4)
		w.Hold = r.dur("hold", w.Duration/4)
		w.BackgroundPerStep = r.num("background-events-per-step", 0)
	case KindDiurnal:
		w.Period = r.dur("period", 24*time.Hour)
		w.BaseGroups = r.num("base-groups", 0)
		w.PeakGroups = r.num("peak-groups", w.Groups)
		w.MembersPerGroup = r.num("members-per-group", 4)
	case "":
		// requiredStr already recorded the error.
	default:
		return &ParseError{d.file, r.sec.keys["kind"].line,
			fmt.Sprintf("unknown workload kind %q (want %s, %s, %s, %s, or %s)",
				w.Kind, KindUniform, KindFlashCrowd, KindDiurnal, KindZipf, KindAffinity)}
	}
	if err := r.finish(); err != nil {
		return err
	}
	return validateWorkload(d, r, w)
}

// validateWorkload applies the cross-field rules. Errors point at the
// [workload] section header line: by this point every key has parsed,
// so the failure is about the combination.
func validateWorkload(d *doc, r *reader, w *WorkloadSpec) error {
	bad := func(msg string) error { return &ParseError{d.file, r.sec.line, msg} }
	switch {
	case w.Groups < 1:
		return bad("groups must be >= 1")
	case w.RootDomains < 1:
		return bad("root-domains must be >= 1")
	case w.Step <= 0 || w.Duration < w.Step:
		return bad("need step > 0 and duration >= step")
	case w.SendsPerGroup < 0 || w.AddressesPerGroup < 1:
		return bad("need sends-per-group >= 0 and addresses-per-group >= 1")
	case w.LeaseLifetime < 0 || w.ClaimLifetime <= 0:
		return bad("need lease-lifetime >= 0 and claim-lifetime > 0")
	}
	switch w.Kind {
	case KindUniform:
		if w.EventsPerStep < 1 {
			return bad("events-per-step must be >= 1")
		}
	case KindZipf:
		if w.EventsPerStep < 1 {
			return bad("events-per-step must be >= 1")
		}
		if w.ZipfS <= 1 || w.ZipfV < 1 {
			return bad("zipf needs zipf-s > 1 and zipf-v >= 1")
		}
		if w.Groups < 2 {
			return bad("zipf needs groups >= 2")
		}
	case KindAffinity:
		if w.EventsPerStep < 1 {
			return bad("events-per-step must be >= 1")
		}
		if w.ZipfS != 0 && (w.ZipfS <= 1 || w.ZipfV < 1) {
			return bad("affinity with a zipf group pick needs zipf-s > 1 and zipf-v >= 1")
		}
		if w.Affinity < 0 || w.Affinity > 1 {
			return bad("affinity must be in [0, 1]")
		}
		if w.Locality < 1 {
			return bad("locality must be >= 1")
		}
	case KindFlashCrowd:
		if w.HotGroups < 1 || w.HotGroups >= w.Groups {
			return bad("flash-crowd needs 1 <= hot-groups < groups")
		}
		if w.PeakMembers < 1 {
			return bad("flash-crowd needs peak-members >= 1")
		}
		if w.Ramp < w.Step || w.Hold < 0 || w.Ramp+w.Hold >= w.Duration {
			return bad("flash-crowd needs ramp >= step, hold >= 0, and ramp + hold < duration (the rest is the decay)")
		}
		if w.BackgroundPerStep < 0 {
			return bad("background-events-per-step must be >= 0")
		}
	case KindDiurnal:
		if w.Period < 2*w.Step {
			return bad("diurnal needs period >= 2*step")
		}
		if w.BaseGroups < 0 || w.PeakGroups > w.Groups || w.BaseGroups >= w.PeakGroups {
			return bad("diurnal needs 0 <= base-groups < peak-groups <= groups")
		}
		if w.MembersPerGroup < 1 {
			return bad("members-per-group must be >= 1")
		}
	}
	return nil
}

// reader is a typed, consumption-tracking view of one section: every
// get marks its key used, and finish rejects the leftovers so configs
// cannot carry knobs their kind ignores. The first error wins; later
// getters no-op so decode code stays linear.
type reader struct {
	d    *doc
	sec  *section
	name string
	used map[string]bool
	err  error
}

func newReader(d *doc, name string) *reader {
	return &reader{d: d, sec: d.section(name), name: name, used: map[string]bool{}}
}

func (r *reader) get(key string) (value, bool) {
	if r.sec == nil {
		return value{}, false
	}
	r.used[key] = true
	v, ok := r.sec.keys[key]
	return v, ok
}

func (r *reader) fail(line int, format string, args ...any) {
	if r.err == nil {
		r.err = &ParseError{r.d.file, line, fmt.Sprintf(format, args...)}
	}
}

func (r *reader) str(key, def string) string {
	v, ok := r.get(key)
	if !ok || r.err != nil {
		return def
	}
	if !v.str {
		r.fail(v.line, "key %q: expected a quoted string", key)
		return def
	}
	return v.raw
}

func (r *reader) requiredStr(key string) string {
	v, ok := r.get(key)
	if r.err != nil {
		return ""
	}
	if !ok {
		line := 0
		if r.sec != nil {
			line = r.sec.line
		}
		where := "at top level"
		if r.name != "" {
			where = "in [" + r.name + "]"
		}
		r.fail(line, "missing required key %q %s", key, where)
		return ""
	}
	if !v.str {
		r.fail(v.line, "key %q: expected a quoted string", key)
		return ""
	}
	return v.raw
}

func (r *reader) num(key string, def int) int {
	v, ok := r.get(key)
	if !ok || r.err != nil {
		return def
	}
	n, err := strconv.Atoi(v.raw)
	if err != nil || v.str {
		r.fail(v.line, "key %q: invalid integer %q", key, v.raw)
		return def
	}
	return n
}

func (r *reader) float(key string, def float64) float64 {
	v, ok := r.get(key)
	if !ok || r.err != nil {
		return def
	}
	f, err := strconv.ParseFloat(v.raw, 64)
	if err != nil || v.str {
		r.fail(v.line, "key %q: invalid number %q", key, v.raw)
		return def
	}
	return f
}

func (r *reader) dur(key string, def time.Duration) time.Duration {
	v, ok := r.get(key)
	if !ok || r.err != nil {
		return def
	}
	if !v.str {
		r.fail(v.line, "key %q: durations are quoted strings like \"30m\"", key)
		return def
	}
	dur, err := time.ParseDuration(v.raw)
	if err != nil {
		r.fail(v.line, "key %q: invalid duration %q", key, v.raw)
		return def
	}
	if dur < 0 {
		r.fail(v.line, "key %q: negative duration %q", key, v.raw)
		return def
	}
	return dur
}

// finish reports the first accumulated error, or flags the first unused
// key (in file order) as unknown for this section/kind.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.sec == nil {
		return nil
	}
	for _, key := range r.sec.order {
		if !r.used[key] {
			v := r.sec.keys[key]
			where := "at top level"
			if r.name != "" {
				where = "in [" + r.name + "]"
			}
			return &ParseError{r.d.file, v.line, fmt.Sprintf("unknown key %q %s", key, where)}
		}
	}
	return nil
}
