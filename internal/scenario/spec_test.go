package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	spec, err := Parse("s.toml", []byte(BuiltinDiurnalTOML))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Name != "diurnal" || spec.Trials != 3 {
		t.Errorf("meta = %q/%d", spec.Name, spec.Trials)
	}
	if spec.Topology.Kind != "as" || spec.Topology.Domains != 512 || spec.Topology.Peering != 64 {
		t.Errorf("topology = %+v", spec.Topology)
	}
	w := spec.Workload
	if w.Kind != KindDiurnal || w.Groups != 192 || w.PeakGroups != 192 || w.BaseGroups != 0 {
		t.Errorf("workload = %+v", w)
	}
	if w.Period != 24*time.Hour || w.LeaseLifetime != 2*time.Hour || w.ClaimLifetime != 4*time.Hour {
		t.Errorf("durations = %v/%v/%v", w.Period, w.LeaseLifetime, w.ClaimLifetime)
	}
	if got := w.Steps(); got != 192 { // 48h / 15m
		t.Errorf("Steps() = %d, want 192", got)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse("s.toml", []byte(`
name = "tiny"
[topology]
kind = "hierarchy"
[workload]
kind = "uniform"
`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Trials != 3 || spec.Topology.Top != 8 || spec.Topology.Children != 8 {
		t.Errorf("defaults: %+v", spec)
	}
	w := spec.Workload
	if w.Groups != 64 || w.RootDomains != 4 || w.Duration != time.Hour || w.Step != time.Minute {
		t.Errorf("workload defaults: %+v", w)
	}
	if w.AddressesPerGroup != 1 || w.LeaseLifetime != 0 || w.ClaimLifetime != 30*24*time.Hour {
		t.Errorf("address defaults: %+v", w)
	}
	if w.EventsPerStep != 1 {
		t.Errorf("events-per-step default = %d", w.EventsPerStep)
	}
}

// TestParseSpecErrors pins validation errors and their line numbers:
// unknown keys point at the key's own line, cross-field failures at the
// section header.
func TestParseSpecErrors(t *testing.T) {
	base := func(workload string) string {
		return "name = \"x\"\n[topology]\nkind = \"as\"\n[workload]\n" + workload
	}
	cases := []struct {
		name string
		in   string
		want string
		line int
	}{
		{"missing-name", "[topology]\nkind = \"as\"\n[workload]\nkind = \"uniform\"\n",
			`missing required key "name"`, 0},
		{"missing-topology", "name = \"x\"\n[workload]\nkind = \"uniform\"\n",
			"missing [topology] section", 0},
		{"missing-workload", "name = \"x\"\n[topology]\nkind = \"as\"\n",
			"missing [workload] section", 0},
		{"unknown-section", base("kind = \"uniform\"\n") + "[extra]\na = 1\n",
			"unknown section [extra]", 6},
		{"bad-topo-kind", "name = \"x\"\n[topology]\nkind = \"ring\"\n[workload]\nkind = \"uniform\"\n",
			`unknown topology kind "ring"`, 3},
		{"bad-workload-kind", base("kind = \"bursty\"\n"),
			`unknown workload kind "bursty"`, 5},
		{"unknown-key", base("kind = \"uniform\"\nzipf-s = 1.3\n"),
			`unknown key "zipf-s"`, 6},
		{"foreign-knob", base("kind = \"diurnal\"\nevents-per-step = 9\n"),
			`unknown key "events-per-step"`, 6},
		{"bad-int", "name = \"x\"\n[topology]\nkind = \"as\"\ndomains = \"lots\"\n[workload]\nkind = \"uniform\"\n",
			`key "domains": invalid integer`, 4},
		{"bare-duration", base("kind = \"uniform\"\nduration = 30\n"),
			"durations are quoted strings", 6},
		{"bad-duration", base("kind = \"uniform\"\nduration = \"forever\"\n"),
			`invalid duration "forever"`, 6},
		{"zipf-s-low", base("kind = \"zipf\"\nzipf-s = 0.5\n"),
			"zipf needs zipf-s > 1", 4},
		{"flash-phases", base("kind = \"flash-crowd\"\npeak-members = 10\nramp = \"50m\"\nhold = \"20m\"\n"),
			"ramp + hold < duration", 4},
		{"diurnal-range", base("kind = \"diurnal\"\nbase-groups = 64\npeak-groups = 32\n"),
			"base-groups < peak-groups", 4},
		{"trials", "name = \"x\"\ntrials = 0\n[topology]\nkind = \"as\"\n[workload]\nkind = \"uniform\"\n",
			"trials must be >= 1", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("s.toml", []byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.want)
			}
			if tc.line > 0 {
				pe := err.(*ParseError)
				if pe.Line != tc.line {
					t.Errorf("line = %d, want %d (%v)", pe.Line, tc.line, err)
				}
			}
		})
	}
}

func TestParseFileResolvesTopologyPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.toml")
	body := "name = \"filed\"\n[topology]\nkind = \"file\"\npath = \"net.topo\"\n[workload]\nkind = \"uniform\"\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if want := filepath.Join(dir, "net.topo"); spec.Topology.Path != want {
		t.Errorf("path = %q, want %q", spec.Topology.Path, want)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.toml")); err == nil {
		t.Error("ParseFile on a missing file succeeded")
	}
}

// TestBuiltinsParse guards the compiled-in exemplars, and
// TestBuiltinsMatchCheckedInFiles pins scenarios/*.toml to the same
// bytes so docs, files, and the workloads suite cannot drift apart.
func TestBuiltinsParse(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range Builtins() {
		spec := MustParseBuiltin(b)
		if spec.Name != b.Name {
			t.Errorf("builtin %q parses to name %q", b.Name, spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("builtin %q has no description", b.Name)
		}
		if seen[spec.Name] {
			t.Errorf("duplicate builtin name %q", spec.Name)
		}
		seen[spec.Name] = true
		if _, err := Compile(spec.Workload); err != nil {
			t.Errorf("builtin %q does not compile: %v", b.Name, err)
		}
	}
}

func TestBuiltinsMatchCheckedInFiles(t *testing.T) {
	for _, b := range Builtins() {
		path := filepath.Join("..", "..", "scenarios", b.Name+".toml")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("builtin %q: %v", b.Name, err)
			continue
		}
		if string(data) != b.TOML {
			t.Errorf("%s differs from the Builtin%sTOML constant; keep them byte-identical", path, b.Name)
		}
	}
}
