package scenario

import (
	"strings"
	"testing"
)

func TestParseTOMLBasics(t *testing.T) {
	d, err := parseTOML("x.toml", []byte(`
name = "demo" # trailing comment
trials = 5

[topology]
kind = "as"   # quoted "#" below must survive
note-free = 3.5

[workload]
flag = true
label = "a # not a comment"
`))
	if err != nil {
		t.Fatalf("parseTOML: %v", err)
	}
	if got := d.section("").keys["name"]; got.raw != "demo" || !got.str {
		t.Fatalf("name = %+v, want quoted demo", got)
	}
	if got := d.section("").keys["trials"]; got.raw != "5" || got.str {
		t.Fatalf("trials = %+v, want bare 5", got)
	}
	if got := d.section("topology").keys["note-free"]; got.raw != "3.5" {
		t.Fatalf("note-free = %+v", got)
	}
	if got := d.section("workload").keys["label"]; got.raw != "a # not a comment" {
		t.Fatalf("label = %q, comment stripping entered a string", got.raw)
	}
	if got := d.section("workload").keys["flag"]; got.raw != "true" || got.str {
		t.Fatalf("flag = %+v", got)
	}
}

// TestParseTOMLErrors pins the error line numbers: benchsuite surfaces
// these verbatim and verify.sh greps for file:line.
func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		line int
		want string
	}{
		{"no-equals", "name = \"x\"\njunk line\n", 2, "expected key = value"},
		{"bad-section", "[topology\nkind = \"as\"\n", 1, "malformed section header"},
		{"bad-section-name", "[Topology]\n", 1, "invalid section name"},
		{"dup-section", "[topology]\n[workload]\n[topology]\n", 3, "duplicate section"},
		{"dup-key", "a = 1\na = 2\n", 2, `duplicate key "a"`},
		{"bad-key", "Name = \"x\"\n", 1, "invalid key"},
		{"missing-value", "a =\n", 1, "missing value"},
		{"unterminated", "a = \"oops\n", 1, "unterminated string"},
		{"array", "a = [1, 2]\n", 1, "arrays and inline tables"},
		{"bare-word", "\n\nkind = as\n", 3, "not a string, number, or bool"},
		{"trailing", "a = 1 2\n", 1, "unexpected text after value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML("bad.toml", []byte(tc.in))
			if err == nil {
				t.Fatalf("parseTOML accepted %q", tc.in)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error type %T, want *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d (%v)", pe.Line, tc.line, err)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Errorf("msg %q does not mention %q", pe.Msg, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "bad.toml:") {
				t.Errorf("Error() = %q, want file:line prefix", err.Error())
			}
		})
	}
}

func TestParseErrorFormat(t *testing.T) {
	withLine := &ParseError{File: "s.toml", Line: 7, Msg: "boom"}
	if got := withLine.Error(); got != "s.toml:7: boom" {
		t.Errorf("Error() = %q", got)
	}
	noLine := &ParseError{File: "s.toml", Msg: "unreadable"}
	if got := noLine.Error(); got != "s.toml: unreadable" {
		t.Errorf("Error() = %q", got)
	}
}
