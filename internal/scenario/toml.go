// Package scenario is the declarative workload layer: a TOML-subset
// config format parsed into a validated Spec, and the pluggable
// membership generators the Spec compiles to — uniform churn,
// flash crowds, diurnal demand waves, and Zipf/affinity-skewed
// membership. The package sits directly above internal/topology: it
// knows graphs and membership, nothing about allocators, trees, or
// benchmarks. The experiments engine applies the generated operations
// to protocol state; internal/bench registers parsed specs beside the
// built-in suites so new workloads are data files, not Go code.
//
// Determinism: generators draw randomness only from the *rand.Rand the
// engine hands them (one stream per trial, seeded by the harness), so a
// given (spec, seed) yields a byte-identical operation stream at any
// parallelism.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a config-file error with its source position. The Error
// form is "file:line: message", so tooling (and the verify.sh golden
// check) can point at the offending line.
type ParseError struct {
	File string
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.File, e.Msg)
}

// value is one parsed key's raw value and source line. str records
// whether the value was written quoted — "30m" is a string (durations
// are written as quoted strings, TOML-style), 30 is a number.
type value struct {
	raw  string
	str  bool
	line int
}

// section is one [name] table (top-level keys live in section "").
type section struct {
	keys  map[string]value
	order []string
	line  int
}

// doc is a parsed TOML-subset document.
type doc struct {
	file     string
	sections map[string]*section
	order    []string
}

func (d *doc) section(name string) *section { return d.sections[name] }

// parseTOML parses the supported TOML subset: comments, [section]
// headers, and key = value lines where a value is a quoted string, an
// integer, a float, or a bool. That is exactly the shape of the
// spacemesh-style config files this format is modeled on; arrays and
// nested inline tables are rejected rather than half-supported.
func parseTOML(file string, data []byte) (*doc, error) {
	d := &doc{file: file, sections: map[string]*section{}}
	cur := &section{keys: map[string]value{}}
	d.sections[""] = cur
	d.order = append(d.order, "")

	for i, line := range strings.Split(string(data), "\n") {
		ln := i + 1
		text := stripComment(line)
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "[") {
			if !strings.HasSuffix(text, "]") {
				return nil, &ParseError{file, ln, fmt.Sprintf("malformed section header %q", text)}
			}
			name := strings.TrimSpace(text[1 : len(text)-1])
			if !validName(name) {
				return nil, &ParseError{file, ln, fmt.Sprintf("invalid section name %q", name)}
			}
			if _, dup := d.sections[name]; dup {
				return nil, &ParseError{file, ln, fmt.Sprintf("duplicate section [%s]", name)}
			}
			cur = &section{keys: map[string]value{}, line: ln}
			d.sections[name] = cur
			d.order = append(d.order, name)
			continue
		}
		eq := strings.Index(text, "=")
		if eq < 0 {
			return nil, &ParseError{file, ln, fmt.Sprintf("expected key = value, got %q", text)}
		}
		key := strings.TrimSpace(text[:eq])
		if !validName(key) {
			return nil, &ParseError{file, ln, fmt.Sprintf("invalid key %q", key)}
		}
		if _, dup := cur.keys[key]; dup {
			return nil, &ParseError{file, ln, fmt.Sprintf("duplicate key %q", key)}
		}
		v, err := parseValue(file, ln, strings.TrimSpace(text[eq+1:]))
		if err != nil {
			return nil, err
		}
		cur.keys[key] = v
		cur.order = append(cur.order, key)
	}
	return d, nil
}

// stripComment drops a trailing # comment, respecting quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// parseValue classifies one raw value. Quoted strings keep their str
// flag so the typed getters can insist on (or reject) string form.
func parseValue(file string, ln int, raw string) (value, error) {
	if raw == "" {
		return value{}, &ParseError{file, ln, "missing value after ="}
	}
	if raw[0] == '"' {
		if len(raw) < 2 || raw[len(raw)-1] != '"' {
			return value{}, &ParseError{file, ln, fmt.Sprintf("unterminated string %s", raw)}
		}
		body := raw[1 : len(raw)-1]
		if strings.Contains(body, `"`) {
			return value{}, &ParseError{file, ln, fmt.Sprintf("stray quote inside string %s", raw)}
		}
		return value{raw: body, str: true, line: ln}, nil
	}
	if raw[0] == '[' || raw[0] == '{' {
		return value{}, &ParseError{file, ln, "arrays and inline tables are not part of the scenario grammar"}
	}
	// Bare value: must be a single token (int, float, or bool).
	if strings.ContainsAny(raw, " \t") {
		return value{}, &ParseError{file, ln, fmt.Sprintf("unexpected text after value %q", raw)}
	}
	switch raw {
	case "true", "false":
		return value{raw: raw, line: ln}, nil
	}
	if _, err := strconv.ParseFloat(raw, 64); err != nil {
		return value{}, &ParseError{file, ln, fmt.Sprintf("value %q is not a string, number, or bool (quote strings and durations)", raw)}
	}
	return value{raw: raw, line: ln}, nil
}

// validName accepts the conservative key/section charset: lowercase
// letters, digits, dash, dot.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
