package obs

import (
	"strings"
	"testing"

	"mascbgmp/internal/wire"
)

func TestNilFlightRecorderIgnoresRecords(t *testing.T) {
	var f *FlightRecorder
	f.Record(Event{Kind: BGMPJoin, Domain: 1, Router: 11})
	if d := f.Dump(); d != "" {
		t.Fatalf("nil dump = %q", d)
	}
}

func TestFlightRecorderRetainsBoundedTail(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		f.Record(Event{Kind: BGMPJoin, Domain: 1, Router: 11, Peer: wire.RouterID(20 + i)})
	}
	dump := f.Dump()
	// Only the last 3 events (seq 8, 9, 10) survive the ring.
	for _, want := range []string{"#8 ", "#9 ", "#10 "} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(dump, "#7 ") {
		t.Fatalf("dump retained evicted entry:\n%s", dump)
	}
}

func TestFlightRecorderDumpOrdersScopes(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(Event{Kind: BGMPJoin, Domain: 2, Router: 21})
	f.Record(Event{Kind: BGMPJoin, Domain: 1, Router: 12})
	f.Record(Event{Kind: BGMPJoin, Domain: 1, Router: 11})
	dump := f.Dump()
	i11 := strings.Index(dump, "domain=1 router=11")
	i12 := strings.Index(dump, "domain=1 router=12")
	i21 := strings.Index(dump, "domain=2 router=21")
	if i11 < 0 || i12 < 0 || i21 < 0 || !(i11 < i12 && i12 < i21) {
		t.Fatalf("scopes out of order (%d, %d, %d):\n%s", i11, i12, i21, dump)
	}
}

func TestObserverEmitFeedsFlightRecorder(t *testing.T) {
	ob := NewObserver()
	fr := NewFlightRecorder(8)
	ob.SetFlightRecorder(fr)
	ob.Emit(Event{Kind: BGMPJoin, Domain: 3, Router: 31})
	if dump := fr.Dump(); !strings.Contains(dump, "domain=3 router=31") {
		t.Fatalf("recorder missed emitted event:\n%s", dump)
	}
}
