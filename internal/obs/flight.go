package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FlightRecorder keeps a bounded ring of the most recent events per
// (domain, router) scope. When a chaos fault or a test failure needs
// context, Dump renders the retained tail deterministically — the "what
// was each router doing just before it died" record the paper's failure
// analysis (§5.2 peering teardown) calls for.
//
// A nil *FlightRecorder ignores records, so it can be attached (or not)
// without guarding call sites.
type FlightRecorder struct {
	mu    sync.Mutex
	cap   int                        // guarded by mu
	seq   uint64                     // global arrival order across all scopes; guarded by mu
	rings map[CounterKey]*flightRing // guarded by mu
}

type flightRing struct {
	buf  []flightEntry // ring storage, len == cap once full
	next int           // index the next entry lands in
	full bool
}

type flightEntry struct {
	seq uint64
	ev  Event
}

// NewFlightRecorder returns a recorder retaining the last perScope events
// for each (domain, router) pair. perScope values below 1 become 64.
func NewFlightRecorder(perScope int) *FlightRecorder {
	if perScope < 1 {
		perScope = 64
	}
	return &FlightRecorder{cap: perScope, rings: map[CounterKey]*flightRing{}}
}

// Record retains e in its scope's ring. Safe on nil and for concurrent
// use.
func (f *FlightRecorder) Record(e Event) {
	if f == nil {
		return
	}
	k := CounterKey{Domain: e.Domain, Router: e.Router}
	f.mu.Lock()
	r := f.rings[k]
	if r == nil {
		r = &flightRing{buf: make([]flightEntry, f.cap)}
		f.rings[k] = r
	}
	f.seq++
	r.buf[r.next] = flightEntry{seq: f.seq, ev: e}
	r.next++
	if r.next == f.cap {
		r.next, r.full = 0, true
	}
	f.mu.Unlock()
}

// Dump renders every scope's retained events, scopes sorted by
// (domain, router) and events in arrival order, each line prefixed with
// its global sequence number. Deterministic for a given recording.
func (f *FlightRecorder) Dump() string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]CounterKey, 0, len(f.rings))
	for k := range f.rings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.Router < b.Router
	})
	var b strings.Builder
	for _, k := range keys {
		r := f.rings[k]
		fmt.Fprintf(&b, "-- flight domain=%d router=%d --\n", k.Domain, k.Router)
		start, n := 0, r.next
		if r.full {
			start, n = r.next, f.cap
		}
		for i := 0; i < n; i++ {
			e := r.buf[(start+i)%f.cap]
			fmt.Fprintf(&b, "#%d %s\n", e.seq, e.ev)
		}
	}
	return b.String()
}
