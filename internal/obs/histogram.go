package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"mascbgmp/internal/wire"
)

// histBuckets is the fixed bucket count: bucket 0 holds the value 0,
// bucket i (1..64) holds [2^(i-1), 2^i). Power-of-two bucketing keeps
// observation lock-free (one bits.Len64 plus an atomic add) and makes
// snapshots mergeable by plain addition, so multi-trial benchmark
// percentiles stay deterministic regardless of observation order.
const histBuckets = 65

// Histogram is a fixed-bucket latency/size histogram. The zero value is
// ready to use; a nil *Histogram ignores observations, so instrumented hot
// paths can hold one unconditionally.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value. Safe on nil and for concurrent use.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: a plain value that
// merges by addition and answers quantile queries.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Merge adds other into s. Because buckets are fixed, merging is exact and
// commutative — trial order cannot change the merged distribution.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i, v := range other.Buckets {
		s.Buckets[i] += v
	}
}

// bucketBounds returns bucket i's value range [lo, hi].
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<i - 1
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) by linear
// interpolation within the covering bucket. Zero when the histogram is
// empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based position of the target observation.
	rank := uint64(q*float64(s.Count-1)) + 1
	var seen uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketBounds(i)
			// Interpolate the rank's position inside the bucket.
			frac := float64(rank-seen-1) / float64(n)
			return lo + uint64(frac*float64(hi-lo))
		}
		seen += n
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// Mean returns the exact mean of all observations (sums are exact even
// though quantiles are bucketed). Zero when empty.
func (s HistSnapshot) Mean() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Histogram returns the histogram registered under (name, domain, router),
// creating it on first use. Safe on nil (returns a nil histogram).
func (m *Metrics) Histogram(name string, domain wire.DomainID, router wire.RouterID) *Histogram {
	if m == nil {
		return nil
	}
	k := CounterKey{Name: name, Domain: domain, Router: router}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hists == nil {
		//lint:alloc one-time lazy init per Metrics, not per event
		m.hists = map[CounterKey]*Histogram{}
	}
	h := m.hists[k]
	if h == nil {
		h = &Histogram{}
		m.hists[k] = h
	}
	return h
}

// Hist returns the snapshotted histogram for one key (the zero snapshot
// when it was never registered).
func (s Snapshot) Hist(name string, domain wire.DomainID, router wire.RouterID) HistSnapshot {
	return s.hists[CounterKey{Name: name, Domain: domain, Router: router}]
}

// HistTotals merges each histogram name's snapshots across every scope —
// the per-suite distributions the benchmark result model serializes.
func (s Snapshot) HistTotals() map[string]HistSnapshot {
	totals := make(map[string]HistSnapshot, len(s.hists))
	for k, h := range s.hists {
		t := totals[k.Name]
		t.Merge(h)
		totals[k.Name] = t
	}
	return totals
}

// sortedHistKeys returns the snapshot's histogram keys ordered by
// (name, domain, router).
func (s Snapshot) sortedHistKeys() []CounterKey {
	keys := make([]CounterKey, 0, len(s.hists))
	for k := range s.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.Router < b.Router
	})
	return keys
}

// PromName rewrites a metric name into the Prometheus alphabet
// ([a-zA-Z0-9_:]), mapping every other rune to '_'. Exported for layers
// that render their own expositions from snapshot-derived data (bench).
func PromName(name string) string { return promName(name) }

// promName rewrites a metric name into the Prometheus alphabet
// ([a-z0-9_:]), mapping '.' and '-' to '_'.
func promName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a key's scope as a Prometheus label set.
func promLabels(k CounterKey, extra string) string {
	var parts []string
	if k.Domain != 0 {
		parts = append(parts, fmt.Sprintf("domain=%q", fmt.Sprint(k.Domain)))
	}
	if k.Router != 0 {
		parts = append(parts, fmt.Sprintf("router=%q", fmt.Sprint(k.Router)))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Prometheus renders the snapshot as Prometheus text exposition format:
// every counter as a `_total` counter and every histogram as cumulative
// `_bucket`/`_sum`/`_count` series with power-of-two `le` bounds. The
// output is sorted and deterministic: equal snapshots render to identical
// bytes, so two same-seed runs produce byte-identical files.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	lastHelp := ""
	for _, k := range s.sortedKeys() {
		v := s.counts[k]
		if v == 0 {
			continue
		}
		name := promName(k.Name) + "_total"
		if name != lastHelp {
			fmt.Fprintf(&b, "# TYPE %s counter\n", name)
			lastHelp = name
		}
		fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(k, ""), v)
	}
	lastHelp = ""
	for _, k := range s.sortedHistKeys() {
		h := s.hists[k]
		if h.Count == 0 {
			continue
		}
		name := promName(k.Name)
		if name != lastHelp {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			lastHelp = name
		}
		var cum uint64
		for i := 0; i < histBuckets-1; i++ {
			n := h.Buckets[i]
			if n == 0 {
				continue
			}
			cum += n
			_, hi := bucketBounds(i)
			le := fmt.Sprintf("le=%q", fmt.Sprint(hi))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabels(k, le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabels(k, `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %d\n", name, promLabels(k, ""), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", name, promLabels(k, ""), h.Count)
	}
	return b.String()
}
