package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mascbgmp/internal/wire"
)

// CounterKey identifies one counter: a metric name plus its scope. Router
// is zero for domain-level counters; both are zero for global counters.
type CounterKey struct {
	Name   string
	Domain wire.DomainID
	Router wire.RouterID
}

// String renders the key deterministically, e.g.
// "bgmp.join domain=2 router=21".
func (k CounterKey) String() string {
	s := k.Name
	if k.Domain != 0 {
		s += fmt.Sprintf(" domain=%d", k.Domain)
	}
	if k.Router != 0 {
		s += fmt.Sprintf(" router=%d", k.Router)
	}
	return s
}

// Counter is one atomic counter. The zero value is ready to use; a nil
// *Counter ignores all operations so callers can hold one unconditionally.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Metrics is a registry of named, scoped counters. Registration takes a
// mutex; increments on retrieved counters are lock-free atomics. A nil
// *Metrics is a no-op registry whose lookups return nil counters.
type Metrics struct {
	mu       sync.Mutex
	counters map[CounterKey]*Counter   // guarded by mu
	hists    map[CounterKey]*Histogram // guarded by mu
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: map[CounterKey]*Counter{}}
}

// Counter returns the counter for key, creating it at zero on first use.
// The returned handle may be cached and incremented without locks. Safe on
// nil (returns a nil counter).
func (m *Metrics) Counter(name string, domain wire.DomainID, router wire.RouterID) *Counter {
	if m == nil {
		return nil
	}
	k := CounterKey{Name: name, Domain: domain, Router: router}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[k]
	if c == nil {
		c = &Counter{}
		m.counters[k] = c
	}
	return c
}

// Global returns the unscoped counter for name.
func (m *Metrics) Global(name string) *Counter { return m.Counter(name, 0, 0) }

// Snapshot captures every counter's value at one instant. Snapshots are
// plain values: comparable with Diff, renderable with String/Totals.
type Snapshot struct {
	counts map[CounterKey]uint64
	hists  map[CounterKey]HistSnapshot
}

// Snapshot returns the current values of all registered counters and
// histograms. Safe on nil (returns an empty snapshot).
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{counts: map[CounterKey]uint64{}, hists: map[CounterKey]HistSnapshot{}}
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, c := range m.counters {
		s.counts[k] = c.Value()
	}
	for k, h := range m.hists {
		s.hists[k] = h.Snapshot()
	}
	return s
}

// Get returns the snapshotted value for one key.
func (s Snapshot) Get(name string, domain wire.DomainID, router wire.RouterID) uint64 {
	return s.counts[CounterKey{Name: name, Domain: domain, Router: router}]
}

// Total sums the snapshotted value of name across every scope.
func (s Snapshot) Total(name string) uint64 {
	var n uint64
	for k, v := range s.counts {
		if k.Name == name {
			n += v
		}
	}
	return n
}

// Len returns the number of counters captured.
func (s Snapshot) Len() int { return len(s.counts) }

// Diff returns a snapshot holding, for every key in s, the increase since
// prev (keys that did not grow are omitted). Counters are monotonic, so a
// diff is itself a valid snapshot of "what happened in between".
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{counts: map[CounterKey]uint64{}}
	for k, v := range s.counts {
		if dv := v - prev.counts[k]; dv > 0 {
			d.counts[k] = dv
		}
	}
	return d
}

// sortedKeys returns the snapshot's keys ordered by (name, domain, router).
func (s Snapshot) sortedKeys() []CounterKey {
	keys := make([]CounterKey, 0, len(s.counts))
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.Router < b.Router
	})
	return keys
}

// String renders every nonzero counter, one per line, sorted by
// (name, domain, router). The rendering is deterministic: equal snapshots
// produce identical strings.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, k := range s.sortedKeys() {
		if v := s.counts[k]; v > 0 {
			fmt.Fprintf(&b, "%s %d\n", k, v)
		}
	}
	return b.String()
}

// NameTotals returns per-name totals across all scopes. The benchmark
// result model (internal/bench) serializes these alongside each suite's
// metrics; totals are order-independent sums, so they stay deterministic
// even when trials emit concurrently.
func (s Snapshot) NameTotals() map[string]uint64 {
	totals := make(map[string]uint64, len(s.counts))
	for k, v := range s.counts {
		totals[k.Name] += v
	}
	return totals
}

// Totals renders per-name totals across all scopes, one per line, sorted
// by name — the compact form the simulation commands print.
func (s Snapshot) Totals() string {
	totals := s.NameTotals()
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if totals[n] > 0 {
			fmt.Fprintf(&b, "%-18s %d\n", n, totals[n])
		}
	}
	return b.String()
}
