package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilHistogramIgnoresObservations(t *testing.T) {
	var h *Histogram
	h.Observe(42)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty mean = %d", m)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 50 {
		t.Fatalf("mean = %d, want 50", m)
	}
	// Quantiles are bucket-interpolated: p50 of 1..100 must land inside
	// [33..64] (the bucket holding rank 50) and below p99.
	p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
	if p50 < 33 || p50 > 64 {
		t.Fatalf("p50 = %d, want within bucket [33,64]", p50)
	}
	if p99 < p50 || p99 > 127 {
		t.Fatalf("p99 = %d (p50 %d)", p99, p50)
	}
	if min := s.Quantile(0); min != 1 {
		t.Fatalf("p0 = %d, want 1", min)
	}
}

func TestHistSnapshotMergeIsCommutative(t *testing.T) {
	var a, b Histogram
	for _, v := range []uint64{1, 2, 3, 100} {
		a.Observe(v)
	}
	for _, v := range []uint64{0, 7, 4096} {
		b.Observe(v)
	}
	ab := a.Snapshot()
	ab.Merge(b.Snapshot())
	ba := b.Snapshot()
	ba.Merge(a.Snapshot())
	if ab != ba {
		t.Fatalf("merge not commutative:\n%+v\n%+v", ab, ba)
	}
	if ab.Count != 7 || ab.Sum != 4209 {
		t.Fatalf("merged count/sum = %d/%d", ab.Count, ab.Sum)
	}
}

func TestHistogramConcurrentObserveIsExact(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.Histogram(HistForwardWork, 1, 11)
			for i := 0; i < per; i++ {
				h.Observe(uint64(i % 16))
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot().Hist(HistForwardWork, 1, 11)
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

func TestHistTotalsMergesScopes(t *testing.T) {
	m := NewMetrics()
	m.Histogram(HistJoinGraft, 1, 11).Observe(100)
	m.Histogram(HistJoinGraft, 2, 21).Observe(300)
	totals := m.Snapshot().HistTotals()
	s := totals[HistJoinGraft]
	if s.Count != 2 || s.Sum != 400 {
		t.Fatalf("totals = %+v", s)
	}
}

func TestPrometheusExpositionIsDeterministic(t *testing.T) {
	build := func() string {
		m := NewMetrics()
		m.Counter(BGMPJoin.String(), 1, 11).Add(3)
		m.Counter(BGMPJoin.String(), 2, 21).Add(1)
		m.Histogram(HistDetect, 0, 0).Observe(5_000_000_000)
		m.Histogram(HistDetect, 0, 0).Observe(25_000_000_000)
		return m.Snapshot().Prometheus()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("exposition differs:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"# TYPE bgmp_join_total counter",
		`bgmp_join_total{domain="1",router="11"} 3`,
		"# TYPE detect_ns histogram",
		`detect_ns_bucket{le="+Inf"} 2`,
		"detect_ns_sum 30000000000",
		"detect_ns_count 2",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("exposition missing %q:\n%s", want, a)
		}
	}
	// Cumulative bucket counts must be nondecreasing.
	cum := uint64(0)
	for _, line := range strings.Split(a, "\n") {
		if !strings.HasPrefix(line, "detect_ns_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < cum {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		cum = v
	}
}
