package obs

import (
	"strings"
	"sync"
	"testing"

	"mascbgmp/internal/addr"
)

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.Emit(Event{Kind: MASCClaim, Domain: 1}) // must not panic
	cancel := o.Subscribe(func(Event) { t.Fatal("subscriber on nil observer") })
	cancel()
	if got := o.Metrics().Snapshot().Len(); got != 0 {
		t.Fatalf("nil observer snapshot has %d counters", got)
	}
	var m *Metrics
	m.Counter("x", 1, 2).Add(5) // nil registry, nil counter: no-ops
	if m.Counter("x", 1, 2).Value() != 0 {
		t.Fatal("nil counter read nonzero")
	}
}

func TestEmitCountsByKindAndScope(t *testing.T) {
	o := NewObserver()
	o.Emit(Event{Kind: BGMPJoin, Domain: 2, Router: 21})
	o.Emit(Event{Kind: BGMPJoin, Domain: 2, Router: 21})
	o.Emit(Event{Kind: BGMPJoin, Domain: 3, Router: 31})
	o.Emit(Event{Kind: DataForwarded, Domain: 2, Router: 21, Count: 7})
	s := o.Snapshot()
	if got := s.Get("bgmp.join", 2, 21); got != 2 {
		t.Fatalf("bgmp.join@2/21 = %d, want 2", got)
	}
	if got := s.Total("bgmp.join"); got != 3 {
		t.Fatalf("bgmp.join total = %d, want 3", got)
	}
	if got := s.Total("data.forwarded"); got != 7 {
		t.Fatalf("data.forwarded total = %d, want 7 (Count magnitude)", got)
	}
}

func TestSubscribeAndCancel(t *testing.T) {
	o := NewObserver()
	var got []Event
	cancel := o.Subscribe(func(e Event) { got = append(got, e) })
	o.Emit(Event{Kind: MASCWon, Domain: 1, Prefix: addr.MustParsePrefix("224.1.0.0/16")})
	cancel()
	o.Emit(Event{Kind: MASCWon, Domain: 1})
	if len(got) != 1 {
		t.Fatalf("subscriber saw %d events, want 1", len(got))
	}
	if want := "masc.won domain=1 prefix=224.1.0.0/16"; got[0].String() != want {
		t.Fatalf("event string = %q, want %q", got[0].String(), want)
	}
}

func TestSnapshotDiffAndDeterministicRendering(t *testing.T) {
	o := NewObserver()
	o.Emit(Event{Kind: BGPAnnounce, Domain: 1, Router: 11})
	before := o.Snapshot()
	o.Emit(Event{Kind: BGPAnnounce, Domain: 1, Router: 11})
	o.Emit(Event{Kind: BGPWithdraw, Domain: 1, Router: 11})
	after := o.Snapshot()
	d := after.Diff(before)
	if d.Get("bgp.announce", 1, 11) != 1 || d.Get("bgp.withdraw", 1, 11) != 1 {
		t.Fatalf("diff wrong: %v", d.String())
	}
	// Rendering is sorted and stable.
	want := "bgp.announce domain=1 router=11 1\nbgp.withdraw domain=1 router=11 1\n"
	if d.String() != want {
		t.Fatalf("diff rendering = %q, want %q", d.String(), want)
	}
	if after.String() != o.Snapshot().String() {
		t.Fatal("identical state rendered differently")
	}
	if !strings.Contains(after.Totals(), "bgp.announce") {
		t.Fatalf("totals missing name: %q", after.Totals())
	}
}

func TestConcurrentEmitIsRaceFreeAndExact(t *testing.T) {
	o := NewObserver()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Emit(Event{Kind: TransportSent, Domain: 1, Router: 11})
				o.Metrics().Counter("custom", 0, 0).Inc()
			}
		}(g)
	}
	// Subscribe and cancel concurrently with emission.
	for i := 0; i < 100; i++ {
		o.Subscribe(func(Event) {})()
	}
	wg.Wait()
	s := o.Snapshot()
	if got := s.Get("transport.sent", 1, 11); got != goroutines*per {
		t.Fatalf("transport.sent = %d, want %d", got, goroutines*per)
	}
	if got := s.Get("custom", 0, 0); got != goroutines*per {
		t.Fatalf("custom = %d, want %d", got, goroutines*per)
	}
}
