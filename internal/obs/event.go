// Package obs is the protocol observability layer: a typed event bus and
// an atomic-counter metrics registry shared by every protocol subsystem
// (MASC, BGP-lite, BGMP, the transport, and the network assembly).
//
// The paper's entire evaluation is about observable protocol behavior —
// address-space utilization, G-RIB size, claim/collision churn, join/prune
// traffic (§4.3.3, §5.4) — and the instrumented layers report exactly
// those quantities. Components hold an *Observer and call Emit; a nil
// Observer (and a nil Metrics, Counter, …) is a no-op everywhere, so
// un-observed hot paths pay a single branch.
//
// Layering: obs sits below transport and above wire/addr/simclock in the
// internal import DAG. It imports only wire, addr, and the standard
// library; every protocol package may import it.
package obs

import (
	"fmt"

	"mascbgmp/internal/addr"
	"mascbgmp/internal/wire"
)

// Kind enumerates the event types the protocol layers emit.
type Kind uint8

const (
	// KindInvalid is the zero Kind; Emit ignores events carrying it.
	KindInvalid Kind = iota

	// MASC address-allocation events (§4.1, §4.3).
	MASCClaim     // a claim was selected and announced
	MASCCollision // a collision was received for one of our claims
	MASCWon       // a claim survived its waiting period
	MASCExpired   // a holding lapsed at its lifetime
	MASCRenewed   // a holding's lifetime was extended
	MASCReleased  // a holding was given up before expiry

	// BGP-lite route events (§4.2).
	BGPAnnounce   // a route was advertised to a peer
	BGPWithdraw   // a route was withdrawn from a peer
	BGPBestChange // the best route for a prefix changed (lost when Count==0 handled via Event.Lost)

	// BGMP tree events (§5).
	BGMPJoin   // a (*,G) or (S,G) join was processed
	BGMPPrune  // a (*,G) or (S,G) prune was processed
	BGMPRepair // a shared tree re-attached after a route change or peer failure

	// Data-plane events.
	DataForwarded // a data packet crossed an inter-domain peering
	DataEncap     // a data packet was unicast-encapsulated to another border router (§5.3)
	DataDelivered // a data packet reached an interior member

	// Transport events.
	TransportSent // a wire message was written to a peering session
	TransportRecv // a wire message was read from a peering session

	// MAAS events.
	MAASLease // a group address was leased to an application

	// Fault-injection events (internal/faultinject): every fault the
	// plane applies is observable, so chaos experiments can reconcile
	// injected faults against the recovery actions they provoked.
	FaultDrop      // a message was silently dropped on a link
	FaultDup       // a message was delivered twice
	FaultReorder   // a message was held and delivered out of order
	FaultDelay     // a message's delivery was delayed through the clock
	FaultPartition // a link was partitioned (all traffic dropped)
	FaultHeal      // a partition healed
	FaultCrash     // a peer (border router process) crashed
	FaultRestart   // a crashed peer restarted

	// Peering-session lifecycle events (core session supervision).
	SessionDown  // a peering session was declared dead (hold timer expired or peer crashed)
	SessionRetry // a reconnect attempt failed; backoff grows
	SessionUp    // a peering session (re-)established and resynced

	// MASCRestored marks a MASC node whose claim state was restored after
	// a restart (holdings and pending claims survived).
	MASCRestored

	// Fast-liveness detector events (internal/liveness).
	LivenessDetect // the liveness monitor declared a peering dead
	LivenessDemand // a stable session quiesced into demand mode
	LivenessResume // a missed probe pulled a session out of demand mode

	// BGMPFailover marks a (*,G) parent switched to its precomputed backup
	// target on peer death, without re-querying the G-RIB.
	BGMPFailover

	kindCount // sentinel; keep last
)

var kindNames = [kindCount]string{
	MASCClaim:      "masc.claim",
	MASCCollision:  "masc.collision",
	MASCWon:        "masc.won",
	MASCExpired:    "masc.expired",
	MASCRenewed:    "masc.renewed",
	MASCReleased:   "masc.released",
	BGPAnnounce:    "bgp.announce",
	BGPWithdraw:    "bgp.withdraw",
	BGPBestChange:  "bgp.best_change",
	BGMPJoin:       "bgmp.join",
	BGMPPrune:      "bgmp.prune",
	BGMPRepair:     "bgmp.repair",
	DataForwarded:  "data.forwarded",
	DataEncap:      "data.encap",
	DataDelivered:  "data.delivered",
	TransportSent:  "transport.sent",
	TransportRecv:  "transport.recv",
	MAASLease:      "maas.lease",
	FaultDrop:      "fault.drop",
	FaultDup:       "fault.dup",
	FaultReorder:   "fault.reorder",
	FaultDelay:     "fault.delay",
	FaultPartition: "fault.partition",
	FaultHeal:      "fault.heal",
	FaultCrash:     "fault.crash",
	FaultRestart:   "fault.restart",
	SessionDown:    "session.down",
	SessionRetry:   "session.retry",
	SessionUp:      "session.up",
	MASCRestored:   "masc.restored",
	LivenessDetect: "liveness.detect",
	LivenessDemand: "liveness.demand",
	LivenessResume: "liveness.resume",
	BGMPFailover:   "bgmp.failover",
}

// String returns the event kind's counter name, e.g. "masc.claim".
func (k Kind) String() string {
	if k == KindInvalid || k >= kindCount || kindNames[k] == "" {
		//lint:alloc invalid-kind fallback only; every registered kind returns its interned name below
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
	return kindNames[k]
}

// Event is one observed protocol occurrence. Kind and the two scope fields
// are always meaningful; the rest are set per kind (zero values mean "not
// applicable"). Event is a plain value so emission never allocates.
type Event struct {
	Kind Kind

	// Domain and Router scope the event to the emitting protocol entity.
	// Router is zero for domain-level events (MASC, MAAS, deliveries).
	Domain wire.DomainID
	Router wire.RouterID

	// Peer is the counterpart router for peering-scoped events (BGP
	// announce/withdraw, BGMP join/prune to a peer, transport, data hops).
	Peer wire.RouterID

	// Table selects the routing table for BGP events.
	Table wire.Table

	// Prefix carries the address range for MASC and BGP events.
	Prefix addr.Prefix

	// Group and Source carry the multicast flow for BGMP and data events.
	Group  addr.Addr
	Source addr.Addr

	// Count is the event's magnitude for aggregated emissions (e.g. hop
	// counts); zero means 1.
	Count uint64
}

// N returns the event's magnitude (Count, or 1 when Count is zero).
func (e Event) N() uint64 {
	if e.Count == 0 {
		return 1
	}
	return e.Count
}

// String renders the event as one deterministic trace line.
func (e Event) String() string {
	s := e.Kind.String()
	if e.Domain != 0 {
		s += fmt.Sprintf(" domain=%d", e.Domain)
	}
	if e.Router != 0 {
		s += fmt.Sprintf(" router=%d", e.Router)
	}
	if e.Peer != 0 {
		s += fmt.Sprintf(" peer=%d", e.Peer)
	}
	if e.Prefix.Valid() && e.Prefix.Len > 0 {
		s += fmt.Sprintf(" prefix=%v", e.Prefix)
	}
	if e.Group != 0 {
		s += fmt.Sprintf(" group=%v", e.Group)
	}
	if e.Source != 0 {
		s += fmt.Sprintf(" source=%v", e.Source)
	}
	if e.Count > 1 {
		s += fmt.Sprintf(" n=%d", e.Count)
	}
	return s
}
